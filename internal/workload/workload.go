// Package workload generates the synthetic data the experiments run on:
// a concept space with topic clusters, document corpora with per-source
// specialization, simulated users with ground-truth interests and QoS
// archetypes, social graphs, and query streams. The paper's scenario has no
// public dataset (museum holdings, auction catalogs, fashion magazines), so
// this generator produces workloads with the same *structure*: topically
// clustered multimedia documents spread over specialized, independently
// owned sources — with ground truth retained so experiments can score
// personalization and completeness exactly.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/docstore"
	"repro/internal/feature"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/uncertainty"
)

// topicNames seed the synthetic domain with the paper's flavor.
var topicNames = []string{
	"jewelry", "folkdance", "costume", "ceramics", "tapestry",
	"drawing", "sculpture", "manuscript", "coin", "furniture",
	"icon", "embroidery", "glasswork", "weaponry", "music",
	"architecture",
}

// Topic is one cluster in concept space with its own vocabulary.
type Topic struct {
	ID     int
	Name   string
	Center feature.Vector
	Vocab  []string
}

// Generator produces deterministic synthetic workloads from a seed.
type Generator struct {
	rng    *rand.Rand
	Dim    int
	Topics []Topic
	// Common vocabulary shared by all topics (stopword-ish noise).
	Common []string
}

// NewGenerator builds a generator with the given concept dimensionality and
// number of topics (capped at the dimension for separable clusters).
func NewGenerator(seed int64, dim, numTopics int) *Generator {
	if dim < 8 {
		dim = 8
	}
	if numTopics <= 0 || numTopics > len(topicNames) {
		numTopics = len(topicNames)
	}
	if numTopics > dim {
		numTopics = dim
	}
	g := &Generator{rng: rand.New(rand.NewSource(seed)), Dim: dim}
	for i := 0; i < numTopics; i++ {
		center := make(feature.Vector, dim)
		center[i] = 1
		// Slight off-axis component so topics are not perfectly orthogonal
		// (real topics overlap).
		center[(i+1)%dim] = 0.25
		center.Normalize()
		vocab := make([]string, 0, 24)
		for w := 0; w < 24; w++ {
			vocab = append(vocab, fmt.Sprintf("%s%s", topicNames[i], syllable(g.rng, w)))
		}
		g.Topics = append(g.Topics, Topic{ID: i, Name: topicNames[i], Center: center, Vocab: vocab})
	}
	for w := 0; w < 40; w++ {
		g.Common = append(g.Common, fmt.Sprintf("common%s", syllable(g.rng, w)))
	}
	return g
}

var syllables = []string{"ba", "ko", "ri", "ta", "mu", "se", "lo", "vi", "ne", "dra", "phi", "ster", "gon", "lith", "mar"}

func syllable(r *rand.Rand, n int) string {
	a := syllables[n%len(syllables)]
	b := syllables[r.Intn(len(syllables))]
	return a + b + fmt.Sprint(n)
}

// Doc is a generated document plus its ground truth.
type Doc struct {
	Doc     *docstore.Document
	TopicID int
}

// SampleConcept draws a document/user concept vector near a topic center
// with Gaussian noise of total magnitude ~noise (scaled by 1/sqrt(dim) per
// coordinate so the parameter is dimension-independent).
func (g *Generator) SampleConcept(topicID int, noise float64) feature.Vector {
	c := g.Topics[topicID].Center.Clone()
	per := noise / math.Sqrt(float64(len(c)))
	for i := range c {
		c[i] += g.rng.NormFloat64() * per
	}
	return c.Normalize()
}

// GenText produces nWords of text: topical words mixed with common noise.
func (g *Generator) GenText(topicID, nWords int) string {
	t := g.Topics[topicID]
	out := ""
	for i := 0; i < nWords; i++ {
		if i > 0 {
			out += " "
		}
		if g.rng.Float64() < 0.7 {
			out += t.Vocab[g.rng.Intn(len(t.Vocab))]
		} else {
			out += g.Common[g.rng.Intn(len(g.Common))]
		}
	}
	return out
}

// GenCorpus produces n documents with Zipf-skewed topic popularity, stamped
// with increasing CreatedAt times spread over the given span (nanos).
func (g *Generator) GenCorpus(n int, skew float64, span int64) []Doc {
	return g.GenCorpusNoisy(n, skew, span, 0.15, nil)
}

// GenCorpusNoisy is GenCorpus with explicit concept noise and, when a
// visual extractor is supplied, simulated image features (color histogram
// and texture) rendered from each document's latent topic — the "visible
// features" the paper's jewelry scenario matches on.
func (g *Generator) GenCorpusNoisy(n int, skew float64, span int64, conceptNoise float64, ve *feature.VisualExtractor) []Doc {
	zipf := sim.NewZipfSource(g.rng, skew, len(g.Topics))
	kinds := []docstore.Kind{
		docstore.KindArticle, docstore.KindHolding, docstore.KindCatalogEntry,
		docstore.KindMagazine, docstore.KindThesis,
	}
	docs := make([]Doc, 0, n)
	for i := 0; i < n; i++ {
		topic := zipf.Next()
		t := g.Topics[topic]
		at := int64(0)
		if span > 0 {
			at = int64(float64(span) * float64(i) / float64(n))
		}
		d := &docstore.Document{
			ID:        fmt.Sprintf("doc%05d", i),
			Kind:      kinds[g.rng.Intn(len(kinds))],
			Title:     fmt.Sprintf("%s %s", t.Name, g.GenText(topic, 3)),
			Text:      g.GenText(topic, 30),
			Topics:    []string{t.Name},
			Concept:   g.SampleConcept(topic, conceptNoise),
			CreatedAt: at,
		}
		if ve != nil {
			// Photograph the item, not the topic prototype: visuals
			// inherit the document's own concept noise plus extraction
			// noise, like a real camera-and-extractor pipeline.
			vf := ve.Extract(g.rng, d.Concept)
			d.ColorHist = vf.ColorHist
			d.Texture = vf.Texture
		}
		docs = append(docs, Doc{Doc: d, TopicID: topic})
	}
	return docs
}

// AssignToSources distributes docs over numSources sources. specialization
// in [0,1]: 0 = uniform random, 1 = each source holds only its own topics
// (topics are partitioned round-robin over sources). Provenance is set on
// each document.
func (g *Generator) AssignToSources(docs []Doc, numSources int, specialization float64) [][]Doc {
	if numSources <= 0 {
		numSources = 1
	}
	out := make([][]Doc, numSources)
	for _, d := range docs {
		var src int
		if g.rng.Float64() < specialization {
			src = d.TopicID % numSources
		} else {
			src = g.rng.Intn(numSources)
		}
		d.Doc.Provenance = SourceName(src)
		out[src] = append(out[src], d)
	}
	return out
}

// SourceName renders the canonical name for source i.
func SourceName(i int) string { return fmt.Sprintf("source%02d", i) }

// Archetype is a QoS preference profile from the paper's examples: Iris is
// "quick and goal-driven" when shopping for clothes, relaxed elsewhere.
type Archetype int

// User archetypes.
const (
	ArchBalanced Archetype = iota
	ArchSpeedFirst
	ArchQualityFirst
	ArchFrugal
)

// Weights maps an archetype to QoS weights.
func (a Archetype) Weights() qos.Weights {
	switch a {
	case ArchSpeedFirst:
		return qos.Weights{Latency: 5, Completeness: 1, Freshness: 1, Trust: 1, Price: 1}
	case ArchQualityFirst:
		return qos.Weights{Latency: 1, Completeness: 4, Freshness: 2, Trust: 3, Price: 0.5}
	case ArchFrugal:
		return qos.Weights{Latency: 1, Completeness: 1, Freshness: 1, Trust: 1, Price: 5}
	default:
		return qos.DefaultWeights()
	}
}

// User is a simulated user with ground truth.
type User struct {
	ID        string
	Interests []int // topic ids, primary first
	Concept   feature.Vector
	Archetype Archetype
	Risk      uncertainty.RiskAttitude
}

// GenUsers produces n users, each interested in 1-3 topics.
func (g *Generator) GenUsers(n int) []User {
	users := make([]User, 0, n)
	for i := 0; i < n; i++ {
		k := 1 + g.rng.Intn(3)
		seen := map[int]bool{}
		var topics []int
		for len(topics) < k {
			t := g.rng.Intn(len(g.Topics))
			if !seen[t] {
				seen[t] = true
				topics = append(topics, t)
			}
		}
		concept := make(feature.Vector, g.Dim)
		for rank, t := range topics {
			w := 1.0 / float64(rank+1)
			c := g.Topics[t].Center
			for j := range concept {
				concept[j] += w * c[j]
			}
		}
		concept.Normalize()
		var risk uncertainty.RiskAttitude
		switch g.rng.Intn(3) {
		case 0:
			risk = uncertainty.Neutral()
		case 1:
			risk = uncertainty.Averse(0.5 + g.rng.Float64())
		default:
			risk = uncertainty.Seeking(0.3 + 0.5*g.rng.Float64())
		}
		users = append(users, User{
			ID:        fmt.Sprintf("user%03d", i),
			Interests: topics,
			Concept:   concept,
			Archetype: Archetype(g.rng.Intn(4)),
			Risk:      risk,
		})
	}
	return users
}

// QueryFor generates a query for a user: a topic drawn from their interests
// (primary topic with probability ~0.6), query text from that topic's
// vocabulary, and the topic's concept with noise.
func (g *Generator) QueryFor(u User) (text string, concept feature.Vector, topicID int) {
	topicID = u.Interests[0]
	if len(u.Interests) > 1 && g.rng.Float64() > 0.6 {
		topicID = u.Interests[1+g.rng.Intn(len(u.Interests)-1)]
	}
	return g.GenText(topicID, 4), g.SampleConcept(topicID, 0.1), topicID
}

// RelevantSet returns the ids of documents about the given topic — the
// ground-truth relevant set for completeness/NDCG scoring.
func RelevantSet(docs []Doc, topicID int) map[string]bool {
	out := make(map[string]bool)
	for _, d := range docs {
		if d.TopicID == topicID {
			out[d.Doc.ID] = true
		}
	}
	return out
}

// GradedRelevance returns graded relevance for NDCG: docs of the user's
// primary topic grade 3, secondary topics grade 1.
func GradedRelevance(docs []Doc, u User) map[string]float64 {
	grade := make(map[int]float64)
	for rank, t := range u.Interests {
		if rank == 0 {
			grade[t] = 3
		} else {
			grade[t] = 1
		}
	}
	out := make(map[string]float64)
	for _, d := range docs {
		if gr, ok := grade[d.TopicID]; ok {
			out[d.Doc.ID] = gr
		}
	}
	return out
}

// WattsStrogatz generates a small-world social graph over the user ids:
// ring lattice of degree k, each edge rewired with probability beta.
// Returned as undirected pairs.
func (g *Generator) WattsStrogatz(ids []string, k int, beta float64) [][2]string {
	n := len(ids)
	if n < 3 || k < 2 {
		return nil
	}
	if k >= n {
		k = n - 1
	}
	type edge struct{ a, b int }
	var edges []edge
	seen := make(map[[2]int]bool)
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			return
		}
		seen[[2]int{a, b}] = true
		edges = append(edges, edge{a, b})
	}
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			target := (i + j) % n
			if beta > 0 && g.rng.Float64() < beta {
				target = g.rng.Intn(n)
			}
			addEdge(i, target)
		}
	}
	out := make([][2]string, 0, len(edges))
	for _, e := range edges {
		out = append(out, [2]string{ids[e.a], ids[e.b]})
	}
	return out
}

// BarabasiAlbert generates a preferential-attachment social graph over the
// user ids: each new node attaches m edges to existing nodes with
// probability proportional to their degree, producing the hub-dominated
// degree distribution of real social networks (contrast with the
// small-world Watts–Strogatz generator).
func (g *Generator) BarabasiAlbert(ids []string, m int) [][2]string {
	n := len(ids)
	if n < 3 || m < 1 {
		return nil
	}
	if m >= n {
		m = n - 1
	}
	var edges [][2]string
	// degreeBag holds node indices repeated by degree; sampling from it is
	// sampling proportional to degree.
	var degreeBag []int
	// Seed clique among the first m+1 nodes.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			edges = append(edges, [2]string{ids[i], ids[j]})
			degreeBag = append(degreeBag, i, j)
		}
	}
	for v := m + 1; v < n; v++ {
		attached := map[int]bool{}
		for len(attached) < m {
			u := degreeBag[g.rng.Intn(len(degreeBag))]
			if u == v || attached[u] {
				continue
			}
			attached[u] = true
			edges = append(edges, [2]string{ids[v], ids[u]})
			degreeBag = append(degreeBag, v, u)
		}
	}
	return edges
}

// Rand exposes the generator's random stream for callers needing coupled
// randomness (e.g. visual extraction noise).
func (g *Generator) Rand() *rand.Rand { return g.rng }
