package workload

import (
	"strings"
	"testing"

	"repro/internal/feature"
)

func TestGeneratorDeterministic(t *testing.T) {
	g1 := NewGenerator(7, 32, 8)
	g2 := NewGenerator(7, 32, 8)
	d1 := g1.GenCorpus(50, 1.2, 1000)
	d2 := g2.GenCorpus(50, 1.2, 1000)
	for i := range d1 {
		if d1[i].Doc.ID != d2[i].Doc.ID || d1[i].TopicID != d2[i].TopicID || d1[i].Doc.Text != d2[i].Doc.Text {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestTopicsSeparable(t *testing.T) {
	g := NewGenerator(1, 32, 8)
	for i, a := range g.Topics {
		for j, b := range g.Topics {
			c := feature.Cosine(a.Center, b.Center)
			if i == j && c < 0.99 {
				t.Fatalf("self cosine %v", c)
			}
			if i != j && c > 0.7 {
				t.Fatalf("topics %d,%d too close: %v", i, j, c)
			}
		}
	}
}

func TestCorpusZipfSkew(t *testing.T) {
	g := NewGenerator(2, 32, 8)
	docs := g.GenCorpus(2000, 1.3, 0)
	counts := make([]int, 8)
	for _, d := range docs {
		counts[d.TopicID]++
	}
	max, min := counts[0], counts[0]
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max < min*3 {
		t.Fatalf("zipf not skewed: %v", counts)
	}
	// Documents carry their topic vocabulary.
	d := docs[0]
	topicName := g.Topics[d.TopicID].Name
	if !strings.Contains(d.Doc.Title, topicName) {
		t.Fatalf("title %q missing topic %q", d.Doc.Title, topicName)
	}
	if len(d.Doc.Concept) != 32 {
		t.Fatal("concept dim wrong")
	}
}

func TestCorpusTimestampsMonotone(t *testing.T) {
	g := NewGenerator(3, 32, 4)
	docs := g.GenCorpus(100, 1.2, 1_000_000)
	for i := 1; i < len(docs); i++ {
		if docs[i].Doc.CreatedAt < docs[i-1].Doc.CreatedAt {
			t.Fatal("timestamps not monotone")
		}
	}
	if docs[len(docs)-1].Doc.CreatedAt >= 1_000_000 {
		t.Fatal("timestamps exceed span")
	}
}

func TestAssignToSourcesSpecialization(t *testing.T) {
	g := NewGenerator(4, 32, 8)
	docs := g.GenCorpus(1000, 1.1, 0)
	perfect := g.AssignToSources(docs, 4, 1.0)
	for src, list := range perfect {
		for _, d := range list {
			if d.TopicID%4 != src {
				t.Fatalf("specialized source %d holds topic %d", src, d.TopicID)
			}
			if d.Doc.Provenance != SourceName(src) {
				t.Fatalf("provenance = %q", d.Doc.Provenance)
			}
		}
	}
	// Uniform: every source holds a mix of topics.
	g2 := NewGenerator(5, 32, 8)
	docs2 := g2.GenCorpus(1000, 1.1, 0)
	uniform := g2.AssignToSources(docs2, 4, 0)
	for src, list := range uniform {
		topics := map[int]bool{}
		for _, d := range list {
			topics[d.TopicID] = true
		}
		if len(topics) < 4 {
			t.Fatalf("uniform source %d too specialized: %d topics", src, len(topics))
		}
	}
}

func TestGenUsers(t *testing.T) {
	g := NewGenerator(6, 32, 8)
	users := g.GenUsers(50)
	if len(users) != 50 {
		t.Fatal("count")
	}
	for _, u := range users {
		if len(u.Interests) < 1 || len(u.Interests) > 3 {
			t.Fatalf("interests = %v", u.Interests)
		}
		// Concept aligns best with the primary topic among the user's topics.
		primary := feature.Cosine(u.Concept, g.Topics[u.Interests[0]].Center)
		for _, other := range u.Interests[1:] {
			if feature.Cosine(u.Concept, g.Topics[other].Center) > primary+1e-9 {
				t.Fatal("primary interest should dominate concept")
			}
		}
	}
	// Archetype weights differ.
	if ArchSpeedFirst.Weights() == ArchQualityFirst.Weights() {
		t.Fatal("archetype weights identical")
	}
}

func TestQueryForUsesInterestTopics(t *testing.T) {
	g := NewGenerator(7, 32, 8)
	users := g.GenUsers(10)
	for _, u := range users {
		for i := 0; i < 10; i++ {
			_, concept, topic := g.QueryFor(u)
			found := false
			for _, t2 := range u.Interests {
				if t2 == topic {
					found = true
				}
			}
			if !found {
				t.Fatalf("query topic %d not in interests %v", topic, u.Interests)
			}
			if feature.Cosine(concept, g.Topics[topic].Center) < 0.8 {
				t.Fatal("query concept far from topic center")
			}
		}
	}
}

func TestRelevantAndGraded(t *testing.T) {
	g := NewGenerator(8, 32, 8)
	docs := g.GenCorpus(300, 1.1, 0)
	rel := RelevantSet(docs, 2)
	for _, d := range docs {
		if rel[d.Doc.ID] != (d.TopicID == 2) {
			t.Fatal("relevant set wrong")
		}
	}
	u := User{ID: "u", Interests: []int{1, 4}}
	graded := GradedRelevance(docs, u)
	for _, d := range docs {
		want := 0.0
		switch d.TopicID {
		case 1:
			want = 3
		case 4:
			want = 1
		}
		if graded[d.Doc.ID] != want {
			t.Fatalf("grade for topic %d = %v", d.TopicID, graded[d.Doc.ID])
		}
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := NewGenerator(9, 32, 8)
	ids := make([]string, 30)
	for i := range ids {
		ids[i] = SourceName(i)
	}
	edges := g.WattsStrogatz(ids, 4, 0.1)
	if len(edges) == 0 {
		t.Fatal("no edges")
	}
	// Roughly n*k/2 edges (some lost to dedup on rewiring).
	if len(edges) < 30*4/2-15 {
		t.Fatalf("edge count = %d", len(edges))
	}
	for _, e := range edges {
		if e[0] == e[1] {
			t.Fatal("self edge")
		}
	}
	if got := g.WattsStrogatz(ids[:2], 4, 0.1); got != nil {
		t.Fatal("tiny graph should be nil")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := NewGenerator(10, 32, 8)
	ids := make([]string, 60)
	for i := range ids {
		ids[i] = SourceName(i)
	}
	edges := g.BarabasiAlbert(ids, 2)
	if len(edges) == 0 {
		t.Fatal("no edges")
	}
	// m(n-m-1) + m(m+1)/2 edges expected.
	want := 2*(60-3) + 3
	if len(edges) != want {
		t.Fatalf("edges = %d, want %d", len(edges), want)
	}
	deg := map[string]int{}
	for _, e := range edges {
		if e[0] == e[1] {
			t.Fatal("self edge")
		}
		deg[e[0]]++
		deg[e[1]]++
	}
	// Preferential attachment produces hubs: max degree well above the
	// mean (which is ~2m ≈ 4).
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	if max < 8 {
		t.Fatalf("no hubs formed: max degree %d", max)
	}
	if got := g.BarabasiAlbert(ids[:2], 2); got != nil {
		t.Fatal("tiny graph should be nil")
	}
}
