package negotiate

import (
	"errors"
	"sort"

	"repro/internal/qos"
)

// Multi-attribute auctions: the other trading mechanism an agora market
// supports besides bilateral alternating offers. The consumer issues a
// call-for-offers with a scoring rule (its own multi-issue utility);
// providers submit sealed package bids; the best-scoring package wins. In
// the second-score variant the winner only has to match the runner-up's
// score, so it can relax its package back to a more profitable point on
// its own iso-score curve — the multi-attribute analogue of a Vickrey
// auction, which makes truthful bidding the sensible provider strategy.

// Bid is one provider's sealed offer.
type Bid struct {
	Provider string
	Package  qos.Vector
}

// AuctionKind selects the payment/score rule.
type AuctionKind int

// Auction kinds.
const (
	// FirstScore: the winning package binds as bid.
	FirstScore AuctionKind = iota
	// SecondScore: the winner may degrade its package until its score
	// matches the second-best bid (it keeps the surplus).
	SecondScore
)

func (k AuctionKind) String() string {
	if k == SecondScore {
		return "second-score"
	}
	return "first-score"
}

// AuctionResult reports the outcome.
type AuctionResult struct {
	Winner       string
	Package      qos.Vector
	BuyerScore   float64
	SecondScore  float64
	Participants int
}

// Auction errors.
var (
	ErrNoBids          = errors.New("negotiate: no bids submitted")
	ErrAllBelowReserve = errors.New("negotiate: every bid scored below the reserve")
)

// SealedBid picks each provider's bid: the candidate package maximizing the
// buyer's announced scoring rule subject to the provider's own reservation
// utility — the straightforward strategy under a scoring auction.
func SealedBid(provider *Negotiator, scoring Utility) (qos.Vector, bool) {
	best := qos.Vector{}
	bestScore := -1.0
	found := false
	for _, c := range provider.Candidates {
		if provider.U.Of(c) < provider.Reservation {
			continue
		}
		if s := scoring.Of(c); s > bestScore {
			bestScore = s
			best = c
			found = true
		}
	}
	return best, found
}

// RunAuction collects sealed bids from the sellers under the buyer's
// scoring rule and resolves the winner. reserve is the minimum buyer score
// an acceptable package must reach.
func RunAuction(kind AuctionKind, buyer *Negotiator, sellers []*Negotiator, reserve float64) (AuctionResult, error) {
	var bids []Bid
	for _, s := range sellers {
		pkg, ok := SealedBid(s, buyer.U)
		if !ok {
			continue
		}
		bids = append(bids, Bid{Provider: s.Name, Package: pkg})
	}
	if len(bids) == 0 {
		return AuctionResult{}, ErrNoBids
	}
	sort.Slice(bids, func(i, j int) bool {
		si, sj := buyer.U.Of(bids[i].Package), buyer.U.Of(bids[j].Package)
		if si != sj {
			return si > sj
		}
		return bids[i].Provider < bids[j].Provider
	})
	best := bids[0]
	bestScore := buyer.U.Of(best.Package)
	if bestScore < reserve {
		return AuctionResult{Participants: len(bids)}, ErrAllBelowReserve
	}
	second := reserve
	if len(bids) > 1 {
		if s := buyer.U.Of(bids[1].Package); s > second {
			second = s
		}
	}
	res := AuctionResult{
		Winner:       best.Provider,
		Package:      best.Package,
		BuyerScore:   bestScore,
		SecondScore:  second,
		Participants: len(bids),
	}
	if kind == SecondScore {
		// Let the winner slide to the cheapest (for it) package that still
		// scores at least `second` for the buyer.
		winner := findSeller(sellers, best.Provider)
		if winner != nil {
			relaxed := best.Package
			relaxedProfit := winner.U.Of(best.Package)
			for _, c := range winner.Candidates {
				if buyer.U.Of(c) < second {
					continue
				}
				if p := winner.U.Of(c); p > relaxedProfit {
					relaxedProfit = p
					relaxed = c
				}
			}
			res.Package = relaxed
			res.BuyerScore = buyer.U.Of(relaxed)
		}
	}
	return res, nil
}

func findSeller(sellers []*Negotiator, name string) *Negotiator {
	for _, s := range sellers {
		if s.Name == name {
			return s
		}
	}
	return nil
}
