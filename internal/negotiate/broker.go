package negotiate

import (
	"sort"
	"time"

	"repro/internal/qos"
)

// Subcontracting. The paper: "such trading may also occur recursively, in
// the sense that some nodes may play the role of intermediaries between
// other nodes (subcontracting)." A Broker fulfills the parts of a
// decomposed query from the providers it knows directly; parts it cannot
// cover are delegated to sub-brokers, who add their own margin. Deeper
// chains reach more of the market (higher completeness) at higher cost —
// the trade-off experiment E5 measures.

// Part is one decomposed piece of a query, labelled by topic.
type Part struct {
	Topic string
	Value float64 // the consumer's value for covering this part
}

// Provider is a leaf market participant able to serve certain topics.
type Provider struct {
	Name   string
	Topics map[string]bool
	// Seller economics.
	CostBase   float64
	CostEffort float64
	Tactic     Tactic
}

// sellerFor builds the provider's negotiator over the shared grid.
func (p *Provider) sellerFor(grid []qos.Vector) *Negotiator {
	t := p.Tactic
	if t == nil {
		t = Linear()
	}
	return &Negotiator{
		Name:        p.Name,
		U:           SellerUtility{Cost: StandardCost(p.CostBase, p.CostEffort), Scale: 8},
		Reservation: 0.05,
		Tactic:      t,
		Candidates:  grid,
	}
}

// Broker is an intermediary that procures parts from direct providers and,
// failing that, from sub-brokers.
type Broker struct {
	Name      string
	Providers []*Provider
	Subs      []*Broker
	// Margin is the multiplicative markup the broker adds when it
	// subcontracts on someone's behalf.
	Margin float64
	// Weights are the broker's buying preferences when negotiating
	// upstream.
	Weights qos.Weights
	Tactic  Tactic
}

// PartOutcome reports how one part was procured.
type PartOutcome struct {
	Part     Part
	Covered  bool
	Price    float64
	Provider string
	Depth    int // 0 = direct provider, 1 = via one sub-broker, ...
	Rounds   int
}

// ProcureResult aggregates a procurement run.
type ProcureResult struct {
	Outcomes     []PartOutcome
	TotalPrice   float64
	Completeness float64 // fraction of parts covered
	TotalRounds  int
}

// defaultGrid is the package space brokers and providers negotiate over.
func defaultGrid() []qos.Vector {
	completeness := []float64{0.6, 0.7, 0.8, 0.9, 1.0}
	prices := []float64{0.5, 1, 1.5, 2, 3, 4, 6, 8}
	return CandidateGrid(qos.Vector{Latency: time.Second, Trust: 0.8}, completeness, prices)
}

// Procure attempts to cover every part, descending at most maxDepth levels
// of subcontracting. maxRounds bounds each bilateral negotiation.
func (b *Broker) Procure(parts []Part, maxRounds, maxDepth int) ProcureResult {
	var res ProcureResult
	grid := defaultGrid()
	for _, part := range parts {
		out := b.procurePart(part, grid, maxRounds, maxDepth)
		res.Outcomes = append(res.Outcomes, out)
		if out.Covered {
			res.TotalPrice += out.Price
			res.TotalRounds += out.Rounds
		}
	}
	if len(parts) > 0 {
		covered := 0
		for _, o := range res.Outcomes {
			if o.Covered {
				covered++
			}
		}
		res.Completeness = float64(covered) / float64(len(parts))
	}
	return res
}

func (b *Broker) procurePart(part Part, grid []qos.Vector, maxRounds, maxDepth int) PartOutcome {
	// Direct providers first: negotiate with every capable one, take the
	// cheapest successful deal.
	type bid struct {
		price    float64
		provider string
		rounds   int
	}
	var bids []bid
	for _, p := range b.Providers {
		if !p.Topics[part.Topic] {
			continue
		}
		buyer := b.buyer()
		deal, err := Run(buyer, p.sellerFor(grid), maxRounds)
		if err != nil {
			continue
		}
		bids = append(bids, bid{price: deal.Package.Price, provider: p.Name, rounds: deal.Rounds})
	}
	sort.Slice(bids, func(i, j int) bool {
		if bids[i].price != bids[j].price {
			return bids[i].price < bids[j].price
		}
		return bids[i].provider < bids[j].provider
	})
	if len(bids) > 0 {
		return PartOutcome{Part: part, Covered: true, Price: bids[0].price, Provider: bids[0].provider, Rounds: bids[0].rounds}
	}
	// Delegate to sub-brokers.
	if maxDepth <= 0 {
		return PartOutcome{Part: part}
	}
	best := PartOutcome{Part: part}
	for _, sub := range b.Subs {
		out := sub.procurePart(part, grid, maxRounds, maxDepth-1)
		if !out.Covered {
			continue
		}
		margin := sub.Margin
		if margin < 1 {
			margin = 1.2
		}
		out.Price *= margin
		out.Depth++
		if !best.Covered || out.Price < best.Price {
			best = out
		}
	}
	return best
}

func (b *Broker) buyer() *Negotiator {
	w := b.Weights
	if w == (qos.Weights{}) {
		w = qos.Weights{Price: 3, Completeness: 2, Trust: 1, Latency: 1, Freshness: 1}
	}
	t := b.Tactic
	if t == nil {
		t = Linear()
	}
	return &Negotiator{
		Name:        b.Name,
		U:           BuyerUtility{W: w},
		Reservation: 0.3,
		Tactic:      t,
		Candidates:  defaultGrid(),
	}
}
