// Package negotiate implements trading negotiation for the Open Agora. The
// paper's Negotiation section: queries and their results are commodities;
// query answers are "traded in the network until deals are struck and
// contracts are signed with some information sources for specific levels of
// QoS", possibly recursively through intermediaries (subcontracting).
//
// The protocol is alternating offers over multi-issue packages (QoS
// vectors). Concession tactics follow the classic families from the
// automated-negotiation literature the paper cites (Rosenschein & Zlotkin):
// time-dependent (Boulware / Linear / Conceder), behaviour-dependent
// (tit-for-tat), plus non-negotiating baselines (take-first, posted-price).
package negotiate

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/qos"
)

// Utility scores a package (a full QoS vector including price) in [0,1]
// from one party's perspective.
type Utility interface {
	Of(p qos.Vector) float64
}

// BuyerUtility evaluates packages with the consumer's QoS weights.
type BuyerUtility struct {
	W qos.Weights
}

// Of implements Utility.
func (b BuyerUtility) Of(p qos.Vector) float64 { return b.W.Scalarize(p) }

// SellerUtility is profit-oriented: utility grows with price and shrinks
// with the cost of the promised service level. Cost returns the provider's
// cost of delivering the promise; Scale normalizes profit into (0,1).
type SellerUtility struct {
	Cost  func(qos.Vector) float64
	Scale float64 // profit at which utility saturates toward 1
}

// Of implements Utility.
func (s SellerUtility) Of(p qos.Vector) float64 {
	profit := p.Price - s.Cost(p)
	if profit <= 0 {
		return 0
	}
	sc := s.Scale
	if sc <= 0 {
		sc = 10
	}
	u := profit / sc
	if u > 1 {
		u = 1
	}
	return u
}

// StandardCost is a convenient provider cost model: base cost plus
// convex effort in completeness and trust, plus a rush premium for tight
// latency promises.
func StandardCost(base, effort float64) func(qos.Vector) float64 {
	return func(v qos.Vector) float64 {
		c := base + effort*(v.Completeness*v.Completeness+v.Trust*v.Trust)
		if v.Latency > 0 && v.Latency < time.Second {
			c += effort * float64(time.Second-v.Latency) / float64(time.Second)
		}
		return c
	}
}

// Tactic decides the target utility (fraction of the distance between the
// reservation utility and 1) an agent demands at a given round.
type Tactic interface {
	// Target returns the demanded utility in [0,1] at round (0-based) of
	// maxRounds. oppConcession is the opponent's total observed concession
	// so far in the agent's own utility terms (0 if unknown).
	Target(round, maxRounds int, oppConcession float64) float64
	Name() string
}

// TimeDependent implements the polynomial concession family:
// demanded(t) = 1 - (t/T)^(1/Beta). Beta < 1 concedes late (Boulware),
// Beta = 1 linearly, Beta > 1 early (Conceder).
type TimeDependent struct {
	Beta  float64
	Label string
}

// Boulware returns a stubborn time-dependent tactic.
func Boulware() Tactic { return TimeDependent{Beta: 0.3, Label: "boulware"} }

// Linear returns a linear-concession tactic.
func Linear() Tactic { return TimeDependent{Beta: 1, Label: "linear"} }

// Conceder returns an eager-concession tactic.
func Conceder() Tactic { return TimeDependent{Beta: 3, Label: "conceder"} }

// Target implements Tactic.
func (td TimeDependent) Target(round, maxRounds int, _ float64) float64 {
	if maxRounds <= 1 {
		return 0
	}
	t := float64(round) / float64(maxRounds-1)
	if t > 1 {
		t = 1
	}
	beta := td.Beta
	if beta <= 0 {
		beta = 1
	}
	return 1 - math.Pow(t, 1/beta)
}

// Name implements Tactic.
func (td TimeDependent) Name() string {
	if td.Label != "" {
		return td.Label
	}
	return fmt.Sprintf("time(%.2g)", td.Beta)
}

// ResourcePool is bargaining stamina shared across an agent's concurrent
// negotiations: every round spent burns one unit. Resource-dependent
// tactics concede as the pool drains — an agent juggling many negotiations
// (or short on time) softens faster, regardless of the round count of any
// single session.
type ResourcePool struct {
	Total     float64
	remaining float64
	set       bool
}

// NewResourcePool returns a pool with the given stamina units.
func NewResourcePool(total float64) *ResourcePool {
	if total <= 0 {
		total = 1
	}
	return &ResourcePool{Total: total, remaining: total, set: true}
}

// Spend burns units (floored at zero).
func (rp *ResourcePool) Spend(units float64) {
	rp.remaining -= units
	if rp.remaining < 0 {
		rp.remaining = 0
	}
}

// Fraction returns the remaining fraction in [0,1].
func (rp *ResourcePool) Fraction() float64 {
	if !rp.set || rp.Total <= 0 {
		return 1
	}
	return rp.remaining / rp.Total
}

// ResourceDependent concedes with the pool: demanded fraction equals the
// remaining resource fraction (full pool = demand everything, empty pool =
// accept anything), with each Target call spending one unit per round so
// standalone use still converges.
type ResourceDependent struct {
	Pool *ResourcePool
}

// Target implements Tactic.
func (rd ResourceDependent) Target(round, maxRounds int, _ float64) float64 {
	if rd.Pool == nil {
		// Degenerate: behave linearly on rounds.
		return Linear().Target(round, maxRounds, 0)
	}
	rd.Pool.Spend(1)
	f := rd.Pool.Fraction()
	// Spend the last scraps fast so sessions close before exhaustion.
	return f * f
}

// Name implements Tactic.
func (rd ResourceDependent) Name() string { return "resource" }

// TitForTat mirrors the opponent's concessions: it starts demanding
// everything and lowers its demand by the concession the opponent has made,
// scaled by Reciprocity. A time-dependent floor guarantees progress against
// stonewallers.
type TitForTat struct {
	Reciprocity float64
}

// Target implements Tactic.
func (tt TitForTat) Target(round, maxRounds int, oppConcession float64) float64 {
	rec := tt.Reciprocity
	if rec <= 0 {
		rec = 1
	}
	demand := 1 - rec*oppConcession
	// Late-game floor: concede linearly over the last third regardless, so
	// two stubborn TFTs still close.
	if maxRounds > 1 {
		t := float64(round) / float64(maxRounds-1)
		if t > 2.0/3 {
			floor := 1 - (t-2.0/3)*3
			if demand > floor {
				demand = floor
			}
		}
	}
	if demand < 0 {
		demand = 0
	}
	if demand > 1 {
		demand = 1
	}
	return demand
}

// Name implements Tactic.
func (tt TitForTat) Name() string { return "tit-for-tat" }

// Negotiator is one party in a session.
type Negotiator struct {
	Name        string
	U           Utility
	Reservation float64 // walk-away utility in [0,1)
	Tactic      Tactic
	Candidates  []qos.Vector // the package space this party can propose

	bestSeen  float64 // opponent's best offer so far, in own utility
	firstSeen float64 // opponent's first offer, in own utility
	haveSeen  bool
}

// demanded converts a tactic target (fraction above reservation) into an
// absolute utility demand.
func (n *Negotiator) demanded(round, maxRounds int) float64 {
	opp := 0.0
	if n.haveSeen {
		opp = n.bestSeen - n.firstSeen
		if opp < 0 {
			opp = 0
		}
	}
	frac := n.Tactic.Target(round, maxRounds, opp)
	return n.Reservation + frac*(1-n.Reservation)
}

// observe records an incoming offer for behaviour-dependent tactics.
func (n *Negotiator) observe(offer qos.Vector) {
	u := n.U.Of(offer)
	if !n.haveSeen {
		n.haveSeen = true
		n.firstSeen = u
		n.bestSeen = u
		return
	}
	if u > n.bestSeen {
		n.bestSeen = u
	}
}

// propose picks the candidate with own utility >= demand that is most
// attractive so far to the opponent, approximated by similarity to the
// opponent's last offer (the classic trade-off heuristic). With no
// qualifying candidate it proposes its own best package.
func (n *Negotiator) propose(demand float64, oppLast *qos.Vector) (qos.Vector, error) {
	if len(n.Candidates) == 0 {
		return qos.Vector{}, ErrNoCandidates
	}
	bestIdx := -1
	bestKey := math.Inf(-1)
	ownBest := 0
	for i, c := range n.Candidates {
		u := n.U.Of(c)
		if u > n.U.Of(n.Candidates[ownBest]) {
			ownBest = i
		}
		if u < demand {
			continue
		}
		var key float64
		if oppLast != nil {
			key = -packageDistance(c, *oppLast)
		} else {
			key = -u // first round: least excess over demand (leave room)
		}
		if key > bestKey {
			bestKey = key
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		bestIdx = ownBest
	}
	return n.Candidates[bestIdx], nil
}

// packageDistance is a scale-normalized distance between packages.
func packageDistance(a, b qos.Vector) float64 {
	dl := float64(a.Latency-b.Latency) / float64(10*time.Second)
	dc := a.Completeness - b.Completeness
	df := float64(a.Freshness-b.Freshness) / float64(24*time.Hour)
	dt := a.Trust - b.Trust
	dp := (a.Price - b.Price) / 20
	return math.Sqrt(dl*dl + dc*dc + df*df + dt*dt + dp*dp)
}

// Negotiation errors.
var (
	ErrNoCandidates = errors.New("negotiate: negotiator has no candidate packages")
	ErrNoDeal       = errors.New("negotiate: no deal reached")
)

// Deal is a successful negotiation result.
type Deal struct {
	Package       qos.Vector
	Rounds        int
	BuyerUtility  float64
	SellerUtility float64
	Transcript    []qos.Vector // offers in order, buyer first
}

// JointUtility is the sum of both parties' utilities — the efficiency
// measure experiment E4 reports.
func (d Deal) JointUtility() float64 { return d.BuyerUtility + d.SellerUtility }

// Run executes an alternating-offers session: buyer proposes on even
// rounds, seller on odd, up to maxRounds. An agent accepts an incoming
// offer if it meets what it would demand next round (the AC-next rule).
func Run(buyer, seller *Negotiator, maxRounds int) (Deal, error) {
	if maxRounds <= 0 {
		maxRounds = 20
	}
	var transcript []qos.Vector
	var lastOffer *qos.Vector
	for round := 0; round < maxRounds; round++ {
		proposer, responder := buyer, seller
		if round%2 == 1 {
			proposer, responder = seller, buyer
		}
		offer, err := proposer.propose(proposer.demanded(round, maxRounds), lastOffer)
		if err != nil {
			return Deal{}, err
		}
		transcript = append(transcript, offer)
		responder.observe(offer)
		// Responder accepts if the offer meets its next-round demand, or
		// beats its reservation on the final round.
		nextDemand := responder.demanded(round+1, maxRounds)
		accept := responder.U.Of(offer) >= nextDemand
		if round == maxRounds-1 {
			accept = responder.U.Of(offer) >= responder.Reservation
		}
		if accept {
			return Deal{
				Package:       offer,
				Rounds:        round + 1,
				BuyerUtility:  buyer.U.Of(offer),
				SellerUtility: seller.U.Of(offer),
				Transcript:    transcript,
			}, nil
		}
		o := offer
		lastOffer = &o
	}
	return Deal{Rounds: maxRounds, Transcript: transcript}, ErrNoDeal
}

// TakeFirst is the no-negotiation baseline: the consumer accepts the
// provider's opening offer if it clears the consumer's reservation.
func TakeFirst(buyer, seller *Negotiator) (Deal, error) {
	offer, err := seller.propose(seller.demanded(0, 2), nil)
	if err != nil {
		return Deal{}, err
	}
	if buyer.U.Of(offer) < buyer.Reservation {
		return Deal{Rounds: 1, Transcript: []qos.Vector{offer}}, ErrNoDeal
	}
	return Deal{
		Package:       offer,
		Rounds:        1,
		BuyerUtility:  buyer.U.Of(offer),
		SellerUtility: seller.U.Of(offer),
		Transcript:    []qos.Vector{offer},
	}, nil
}

// PostedPrice is the fixed-menu baseline: the provider posts a package (its
// median candidate by own utility); the consumer takes it or leaves it.
func PostedPrice(buyer, seller *Negotiator) (Deal, error) {
	if len(seller.Candidates) == 0 {
		return Deal{}, ErrNoCandidates
	}
	// Median-by-own-utility posted package.
	best, worst := 0, 0
	for i := range seller.Candidates {
		if seller.U.Of(seller.Candidates[i]) > seller.U.Of(seller.Candidates[best]) {
			best = i
		}
		if seller.U.Of(seller.Candidates[i]) < seller.U.Of(seller.Candidates[worst]) {
			worst = i
		}
	}
	mid := (seller.U.Of(seller.Candidates[best]) + seller.U.Of(seller.Candidates[worst])) / 2
	posted := seller.Candidates[best]
	bestGap := math.Inf(1)
	for _, c := range seller.Candidates {
		gap := math.Abs(seller.U.Of(c) - mid)
		if gap < bestGap {
			bestGap = gap
			posted = c
		}
	}
	if buyer.U.Of(posted) < buyer.Reservation {
		return Deal{Rounds: 1, Transcript: []qos.Vector{posted}}, ErrNoDeal
	}
	return Deal{
		Package:       posted,
		Rounds:        1,
		BuyerUtility:  buyer.U.Of(posted),
		SellerUtility: seller.U.Of(posted),
		Transcript:    []qos.Vector{posted},
	}, nil
}

// CandidateGrid builds the shared package space: a grid over completeness
// and price with the remaining dimensions fixed by the template.
func CandidateGrid(template qos.Vector, completeness []float64, prices []float64) []qos.Vector {
	out := make([]qos.Vector, 0, len(completeness)*len(prices))
	for _, c := range completeness {
		for _, p := range prices {
			v := template
			v.Completeness = c
			v.Price = p
			out = append(out, v)
		}
	}
	return out
}
