package negotiate

import (
	"errors"
	"testing"
	"time"

	"repro/internal/qos"
)

func stdGrid() []qos.Vector {
	return CandidateGrid(
		qos.Vector{Latency: time.Second, Trust: 0.8},
		[]float64{0.6, 0.7, 0.8, 0.9, 1.0},
		[]float64{0.5, 1, 2, 3, 4, 6, 8},
	)
}

func stdBuyer(t Tactic) *Negotiator {
	return &Negotiator{
		Name:        "iris",
		U:           BuyerUtility{W: qos.Weights{Price: 2, Completeness: 3, Trust: 1, Latency: 1, Freshness: 1}},
		Reservation: 0.3,
		Tactic:      t,
		Candidates:  stdGrid(),
	}
}

func stdSeller(t Tactic) *Negotiator {
	return &Negotiator{
		Name:        "museum",
		U:           SellerUtility{Cost: StandardCost(0.3, 1.5), Scale: 6},
		Reservation: 0.05,
		Tactic:      t,
		Candidates:  stdGrid(),
	}
}

func TestRunReachesDeal(t *testing.T) {
	deal, err := Run(stdBuyer(Linear()), stdSeller(Linear()), 20)
	if err != nil {
		t.Fatal(err)
	}
	if deal.Rounds < 1 || deal.Rounds > 20 {
		t.Fatalf("rounds = %d", deal.Rounds)
	}
	if deal.BuyerUtility < 0.3 {
		t.Fatalf("buyer below reservation: %v", deal.BuyerUtility)
	}
	if deal.SellerUtility < 0.05 {
		t.Fatalf("seller below reservation: %v", deal.SellerUtility)
	}
	if len(deal.Transcript) != deal.Rounds {
		t.Fatalf("transcript %d vs rounds %d", len(deal.Transcript), deal.Rounds)
	}
}

func TestAllTacticPairsReachDeals(t *testing.T) {
	tactics := []Tactic{Boulware(), Linear(), Conceder(), TitForTat{Reciprocity: 1}}
	for _, bt := range tactics {
		for _, st := range tactics {
			deal, err := Run(stdBuyer(bt), stdSeller(st), 30)
			if err != nil {
				t.Fatalf("%s vs %s: %v", bt.Name(), st.Name(), err)
			}
			if deal.JointUtility() <= 0 {
				t.Fatalf("%s vs %s: joint utility %v", bt.Name(), st.Name(), deal.JointUtility())
			}
		}
	}
}

func TestBoulwareExtractsMoreThanConceder(t *testing.T) {
	// Against the same linear opponent, the stubborn buyer should close at
	// a deal at least as good for itself as the eager one.
	stub, err := Run(stdBuyer(Boulware()), stdSeller(Linear()), 30)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := Run(stdBuyer(Conceder()), stdSeller(Linear()), 30)
	if err != nil {
		t.Fatal(err)
	}
	if stub.BuyerUtility < eager.BuyerUtility-1e-9 {
		t.Fatalf("boulware buyer %v worse than conceder %v", stub.BuyerUtility, eager.BuyerUtility)
	}
	// And the eager one should close no later.
	if eager.Rounds > stub.Rounds {
		t.Fatalf("conceder took longer: %d vs %d", eager.Rounds, stub.Rounds)
	}
}

func TestTimeDependentTargets(t *testing.T) {
	b := Boulware()
	c := Conceder()
	// Early in the session the Boulware demand must exceed the Conceder's.
	if b.Target(2, 20, 0) <= c.Target(2, 20, 0) {
		t.Fatal("boulware should demand more early")
	}
	// Both end at zero demand.
	if b.Target(19, 20, 0) > 1e-9 || c.Target(19, 20, 0) > 1e-9 {
		t.Fatal("final-round demand should hit 0")
	}
	// Demands must be in [0,1] and non-increasing.
	for _, tac := range []Tactic{b, c, Linear()} {
		prev := 2.0
		for r := 0; r < 20; r++ {
			d := tac.Target(r, 20, 0)
			if d < 0 || d > 1 {
				t.Fatalf("%s target out of range: %v", tac.Name(), d)
			}
			if d > prev+1e-9 {
				t.Fatalf("%s target increased at %d", tac.Name(), r)
			}
			prev = d
		}
	}
}

func TestTitForTatRespondsToConcession(t *testing.T) {
	tt := TitForTat{Reciprocity: 1}
	early := tt.Target(1, 30, 0)
	afterConcession := tt.Target(1, 30, 0.3)
	if afterConcession >= early {
		t.Fatal("tit-for-tat should mirror opponent concessions")
	}
	// Floor forces closure late.
	if tt.Target(29, 30, 0) > 0.05 {
		t.Fatalf("late-game floor missing: %v", tt.Target(29, 30, 0))
	}
}

func TestNoDealWhenZonesDisjoint(t *testing.T) {
	// Buyer insists on near-perfect utility; seller's grid can't deliver.
	buyer := stdBuyer(Boulware())
	buyer.Reservation = 0.99
	seller := stdSeller(Boulware())
	seller.Reservation = 0.99
	_, err := Run(buyer, seller, 10)
	if !errors.Is(err, ErrNoDeal) {
		t.Fatalf("err = %v, want ErrNoDeal", err)
	}
}

func TestEmptyCandidatesError(t *testing.T) {
	buyer := stdBuyer(Linear())
	buyer.Candidates = nil
	if _, err := Run(buyer, stdSeller(Linear()), 10); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v", err)
	}
}

func TestNegotiationBeatsTakeFirstOnJointUtility(t *testing.T) {
	// Averaged over the deterministic package space, alternating offers
	// should find higher joint utility than accepting the seller's opener.
	nego, err := Run(stdBuyer(Linear()), stdSeller(Linear()), 30)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := TakeFirst(stdBuyer(Linear()), stdSeller(Linear()))
	if err == nil {
		if nego.JointUtility() < tf.JointUtility()-1e-9 {
			t.Fatalf("negotiation joint %v < take-first %v", nego.JointUtility(), tf.JointUtility())
		}
		if nego.BuyerUtility <= tf.BuyerUtility {
			t.Fatalf("negotiating buyer should beat take-first: %v vs %v", nego.BuyerUtility, tf.BuyerUtility)
		}
	}
	// take-first may legitimately fail (opener below buyer reservation);
	// that is itself the point of negotiating.
}

func TestPostedPrice(t *testing.T) {
	deal, err := PostedPrice(stdBuyer(Linear()), stdSeller(Linear()))
	if err != nil {
		// Posted package may be unacceptable; then error must be ErrNoDeal.
		if !errors.Is(err, ErrNoDeal) {
			t.Fatalf("err = %v", err)
		}
		return
	}
	if deal.Rounds != 1 {
		t.Fatalf("posted price rounds = %d", deal.Rounds)
	}
}

func TestSellerUtilityProfit(t *testing.T) {
	u := SellerUtility{Cost: StandardCost(1, 1), Scale: 5}
	cheapPromise := qos.Vector{Completeness: 0.5, Price: 4}
	bigPromise := qos.Vector{Completeness: 1.0, Price: 4}
	if u.Of(cheapPromise) <= u.Of(bigPromise) {
		t.Fatal("same price, bigger promise should mean lower seller utility")
	}
	if u.Of(qos.Vector{Completeness: 1, Price: 0.1}) != 0 {
		t.Fatal("unprofitable package should have zero utility")
	}
}

func TestBrokerDirectProcurement(t *testing.T) {
	b := &Broker{
		Name: "b0",
		Providers: []*Provider{
			{Name: "p1", Topics: map[string]bool{"jewelry": true}, CostBase: 0.3, CostEffort: 1},
			{Name: "p2", Topics: map[string]bool{"dance": true}, CostBase: 0.3, CostEffort: 1},
		},
	}
	res := b.Procure([]Part{{Topic: "jewelry", Value: 5}, {Topic: "dance", Value: 5}}, 20, 0)
	if res.Completeness != 1 {
		t.Fatalf("completeness = %v", res.Completeness)
	}
	if res.TotalPrice <= 0 {
		t.Fatalf("total price = %v", res.TotalPrice)
	}
	for _, o := range res.Outcomes {
		if o.Depth != 0 {
			t.Fatalf("direct procurement at depth %d", o.Depth)
		}
	}
}

func TestBrokerSubcontractingExtendsReach(t *testing.T) {
	leaf := &Broker{
		Name: "b1", Margin: 1.3,
		Providers: []*Provider{
			{Name: "far", Topics: map[string]bool{"costume": true}, CostBase: 0.3, CostEffort: 1},
		},
	}
	root := &Broker{
		Name: "b0", Margin: 1.3,
		Providers: []*Provider{
			{Name: "near", Topics: map[string]bool{"jewelry": true}, CostBase: 0.3, CostEffort: 1},
		},
		Subs: []*Broker{leaf},
	}
	parts := []Part{{Topic: "jewelry", Value: 5}, {Topic: "costume", Value: 5}}
	shallow := root.Procure(parts, 20, 0)
	deep := root.Procure(parts, 20, 1)
	if shallow.Completeness >= deep.Completeness {
		t.Fatalf("depth should add coverage: %v vs %v", shallow.Completeness, deep.Completeness)
	}
	if deep.Completeness != 1 {
		t.Fatalf("deep completeness = %v", deep.Completeness)
	}
	// The delegated part must carry the margin and depth marker.
	var viaSub *PartOutcome
	for i := range deep.Outcomes {
		if deep.Outcomes[i].Part.Topic == "costume" {
			viaSub = &deep.Outcomes[i]
		}
	}
	if viaSub == nil || viaSub.Depth != 1 {
		t.Fatalf("costume outcome = %+v", viaSub)
	}
	// Direct price for jewelry should be below the margined costume price
	// given identical provider economics.
	var direct *PartOutcome
	for i := range deep.Outcomes {
		if deep.Outcomes[i].Part.Topic == "jewelry" {
			direct = &deep.Outcomes[i]
		}
	}
	if viaSub.Price <= direct.Price {
		t.Fatalf("margin missing: sub %v <= direct %v", viaSub.Price, direct.Price)
	}
}

func TestBrokerPicksCheapestProvider(t *testing.T) {
	b := &Broker{
		Name: "b0",
		Providers: []*Provider{
			{Name: "pricey", Topics: map[string]bool{"art": true}, CostBase: 3, CostEffort: 2},
			{Name: "cheap", Topics: map[string]bool{"art": true}, CostBase: 0.1, CostEffort: 0.5},
		},
	}
	res := b.Procure([]Part{{Topic: "art", Value: 5}}, 20, 0)
	if res.Completeness != 1 {
		t.Fatalf("completeness = %v", res.Completeness)
	}
	if res.Outcomes[0].Provider != "cheap" {
		t.Fatalf("picked %s", res.Outcomes[0].Provider)
	}
}

func TestBrokerUncoverableTopic(t *testing.T) {
	b := &Broker{Name: "b0"}
	res := b.Procure([]Part{{Topic: "nonexistent", Value: 1}}, 10, 3)
	if res.Completeness != 0 || res.Outcomes[0].Covered {
		t.Fatalf("res = %+v", res)
	}
}

func TestResourceDependentTactic(t *testing.T) {
	pool := NewResourcePool(20)
	rd := ResourceDependent{Pool: pool}
	// Demands fall as the pool drains; in [0,1] throughout.
	prev := 1.1
	for i := 0; i < 25; i++ {
		d := rd.Target(i, 100, 0)
		if d < 0 || d > 1 {
			t.Fatalf("target out of range: %v", d)
		}
		if d > prev {
			t.Fatalf("resource demand increased: %v after %v", d, prev)
		}
		prev = d
	}
	if pool.Fraction() != 0 {
		t.Fatalf("pool should be exhausted, fraction=%v", pool.Fraction())
	}
	// Nil pool falls back to linear behaviour.
	nilRD := ResourceDependent{}
	if nilRD.Target(0, 10, 0) <= nilRD.Target(9, 10, 0) {
		t.Fatal("nil-pool fallback should decay")
	}
	if rd.Name() != "resource" {
		t.Fatal("name")
	}
}

func TestResourceDependentReachesDeals(t *testing.T) {
	buyer := stdBuyer(ResourceDependent{Pool: NewResourcePool(12)})
	deal, err := Run(buyer, stdSeller(Linear()), 20)
	if err != nil {
		t.Fatal(err)
	}
	if deal.BuyerUtility < buyer.Reservation {
		t.Fatalf("deal below reservation: %v", deal.BuyerUtility)
	}
}

func TestSharedPoolSoftensAcrossSessions(t *testing.T) {
	// One pool across two sequential negotiations: the second one starts
	// with less stamina and closes no later than the first.
	pool := NewResourcePool(30)
	d1, err := Run(stdBuyer(ResourceDependent{Pool: pool}), stdSeller(Boulware()), 20)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Run(stdBuyer(ResourceDependent{Pool: pool}), stdSeller(Boulware()), 20)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Rounds > d1.Rounds {
		t.Fatalf("drained pool should close no later: %d then %d", d1.Rounds, d2.Rounds)
	}
}
