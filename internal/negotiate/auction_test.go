package negotiate

import (
	"errors"
	"fmt"
	"testing"
)

func auctionSellers(n int) []*Negotiator {
	var out []*Negotiator
	for i := 0; i < n; i++ {
		s := stdSeller(Linear())
		s.Name = fmt.Sprintf("seller%02d", i)
		// Vary economics so bids differ.
		s.U = SellerUtility{Cost: StandardCost(0.2+0.15*float64(i), 1.0+0.2*float64(i)), Scale: 6}
		out = append(out, s)
	}
	return out
}

func TestAuctionPicksBestForBuyer(t *testing.T) {
	buyer := stdBuyer(Linear())
	sellers := auctionSellers(4)
	res, err := RunAuction(FirstScore, buyer, sellers, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Participants != 4 {
		t.Fatalf("participants = %d", res.Participants)
	}
	// The winning package's buyer score must be >= any other seller's best
	// possible bid.
	for _, s := range sellers {
		pkg, ok := SealedBid(s, buyer.U)
		if !ok {
			continue
		}
		if buyer.U.Of(pkg) > res.BuyerScore+1e-9 {
			t.Fatalf("auction missed a better bid from %s", s.Name)
		}
	}
}

func TestAuctionReserve(t *testing.T) {
	buyer := stdBuyer(Linear())
	sellers := auctionSellers(2)
	if _, err := RunAuction(FirstScore, buyer, sellers, 0.999); !errors.Is(err, ErrAllBelowReserve) {
		t.Fatalf("err = %v", err)
	}
	if _, err := RunAuction(FirstScore, buyer, nil, 0.2); !errors.Is(err, ErrNoBids) {
		t.Fatalf("err = %v", err)
	}
}

func TestSecondScoreGivesWinnerSurplus(t *testing.T) {
	buyer := stdBuyer(Linear())
	sellers := auctionSellers(4)
	first, err := RunAuction(FirstScore, buyer, sellers, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunAuction(SecondScore, buyer, sellers, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if first.Winner != second.Winner {
		t.Fatalf("winner changed: %s vs %s", first.Winner, second.Winner)
	}
	// Winner's profit under second-score >= under first-score.
	winner := findSeller(sellers, first.Winner)
	if winner.U.Of(second.Package) < winner.U.Of(first.Package)-1e-9 {
		t.Fatal("second-score should not hurt the winner")
	}
	// And the buyer still gets at least the runner-up's score.
	if second.BuyerScore < second.SecondScore-1e-9 {
		t.Fatalf("buyer score %v below second score %v", second.BuyerScore, second.SecondScore)
	}
}

func TestAuctionCompetitionHelpsBuyer(t *testing.T) {
	buyer := stdBuyer(Linear())
	// Average buyer score should not fall as more sellers compete.
	few, err := RunAuction(FirstScore, buyer, auctionSellers(1), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunAuction(FirstScore, buyer, auctionSellers(6), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if many.BuyerScore < few.BuyerScore-1e-9 {
		t.Fatalf("more competition lowered buyer score: %v vs %v", many.BuyerScore, few.BuyerScore)
	}
}

func TestSealedBidRespectsReservation(t *testing.T) {
	s := stdSeller(Linear())
	// Costs exceed every price on the grid: nothing clears reservation.
	s.U = SellerUtility{Cost: StandardCost(100, 1), Scale: 6}
	if _, ok := SealedBid(s, stdBuyer(Linear()).U); ok {
		t.Fatal("seller below reservation should not bid")
	}
}

func TestAuctionKindString(t *testing.T) {
	if FirstScore.String() != "first-score" || SecondScore.String() != "second-score" {
		t.Fatal("names")
	}
}
