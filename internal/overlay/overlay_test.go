package overlay

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/feature"
	"repro/internal/sim"
)

// testHandler answers queries whose concept matches its own vector.
type testHandler struct {
	vec       feature.Vector
	threshold float64
}

func (h *testHandler) HandleQuery(q QueryMsg) any {
	if feature.Cosine(h.vec, q.Concept) >= h.threshold {
		return "hit"
	}
	return nil
}

func (h *testHandler) ContentVector() feature.Vector { return h.vec }

func buildOverlay(t *testing.T, n int, seed int64) (*sim.Kernel, *Overlay) {
	t.Helper()
	k := sim.NewKernel(seed)
	net := sim.NewNetwork(k, sim.FixedLatency(5*time.Millisecond), 0)
	ov := New(net, DefaultConfig())
	for i := 0; i < n; i++ {
		vec := make(feature.Vector, 8)
		vec[i%8] = 1
		ov.AddNode(i, &testHandler{vec: vec, threshold: 0.9})
	}
	ov.Bootstrap()
	return k, ov
}

func runQuery(k *sim.Kernel, ov *Overlay, q QueryMsg, dur time.Duration) []Answer {
	var answers []Answer
	ov.Query(q, func(a Answer) { answers = append(answers, a) })
	_ = k.RunUntil(k.Now() + dur)
	ov.CloseQuery(q.ID)
	return answers
}

func conceptFor(dim int) feature.Vector {
	v := make(feature.Vector, 8)
	v[dim] = 1
	return v
}

func TestFloodReachesMatchingNodes(t *testing.T) {
	k, ov := buildOverlay(t, 64, 1)
	q := QueryMsg{ID: "q1", Origin: 0, Concept: conceptFor(3), TTL: 6, Strategy: Flood}
	answers := runQuery(k, ov, q, 5*time.Second)
	// 64 nodes, 8 concept buckets: 8 nodes match concept 3.
	if len(answers) < 6 {
		t.Fatalf("flood found only %d of ~8 matches", len(answers))
	}
	seen := map[int]bool{}
	for _, a := range answers {
		if seen[a.From] {
			t.Fatalf("duplicate answer from %d", a.From)
		}
		seen[a.From] = true
		if a.From%8 != 3 {
			t.Fatalf("non-matching node %d answered", a.From)
		}
	}
}

func TestRandomWalkFindsSome(t *testing.T) {
	k, ov := buildOverlay(t, 64, 2)
	q := QueryMsg{ID: "q1", Origin: 0, Concept: conceptFor(2), TTL: 40, Strategy: RandomWalk, Walkers: 4}
	answers := runQuery(k, ov, q, 30*time.Second)
	if len(answers) == 0 {
		t.Fatal("random walk found nothing")
	}
}

func TestSemanticBeatsFloodOnTraffic(t *testing.T) {
	k, ov := buildOverlay(t, 128, 3)
	// Let gossip + shortcut refresh settle.
	_ = k.RunUntil(k.Now() + time.Minute)

	before := ov.QueryMsgs
	fa := runQuery(k, ov, QueryMsg{ID: "qf", Origin: 1, Concept: conceptFor(5), TTL: 5, Strategy: Flood}, 5*time.Second)
	floodMsgs := ov.QueryMsgs - before

	before = ov.QueryMsgs
	sa := runQuery(k, ov, QueryMsg{ID: "qs", Origin: 1, Concept: conceptFor(5), TTL: 5, Strategy: Semantic, Fanout: 3}, 5*time.Second)
	semMsgs := ov.QueryMsgs - before

	if len(fa) == 0 || len(sa) == 0 {
		t.Fatalf("answers: flood=%d semantic=%d", len(fa), len(sa))
	}
	if semMsgs >= floodMsgs {
		t.Fatalf("semantic traffic %d not below flood %d", semMsgs, floodMsgs)
	}
	// Semantic should retain a decent fraction of flood's recall here.
	if float64(len(sa)) < 0.3*float64(len(fa)) {
		t.Fatalf("semantic recall too low: %d vs flood %d", len(sa), len(fa))
	}
}

func TestGossipKeepsViewsFresh(t *testing.T) {
	k, ov := buildOverlay(t, 32, 4)
	_ = k.RunUntil(k.Now() + 2*time.Minute)
	if ov.GossipMsgs == 0 {
		t.Fatal("no gossip happened")
	}
	for _, id := range ov.IDs() {
		n := ov.Node(id)
		if len(n.view) == 0 {
			t.Fatalf("node %d has empty view", id)
		}
		for _, p := range n.view {
			if p == id {
				t.Fatalf("node %d has self in view", id)
			}
		}
		if len(n.view) > ov.cfg.ViewSize {
			t.Fatalf("node %d view overflow: %d", id, len(n.view))
		}
	}
}

func TestShortcutsAreSemanticallyClose(t *testing.T) {
	k, ov := buildOverlay(t, 64, 5)
	_ = k.RunUntil(k.Now() + 2*time.Minute)
	better, total := 0, 0
	for _, id := range ov.IDs() {
		n := ov.Node(id)
		self := n.handler.ContentVector()
		for _, sc := range n.shortcuts {
			total++
			if feature.Cosine(self, ov.Node(sc).handler.ContentVector()) > 0.9 {
				better++
			}
		}
	}
	if total == 0 {
		t.Fatal("no shortcuts formed")
	}
	// With 8 nodes per concept bucket and 64 nodes, gossip sampling should
	// find same-bucket peers for most nodes over time.
	if float64(better)/float64(total) < 0.5 {
		t.Fatalf("only %d/%d shortcuts are semantically close", better, total)
	}
}

func TestQueryUnderChurn(t *testing.T) {
	k := sim.NewKernel(6)
	net := sim.NewNetwork(k, sim.FixedLatency(5*time.Millisecond), 0)
	ov := New(net, DefaultConfig())
	n := 64
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		ids[i] = i
		vec := make(feature.Vector, 8)
		vec[i%8] = 1
		ov.AddNode(i, &testHandler{vec: vec, threshold: 0.9})
	}
	ov.Bootstrap()
	sim.StartChurn(net, ids[1:], 20, 10*time.Second, nil) // spare the origin
	_ = k.RunUntil(30 * time.Second)
	answers := runQuery(k, ov, QueryMsg{ID: "q1", Origin: 0, Concept: conceptFor(1), TTL: 6, Strategy: Flood}, 10*time.Second)
	// Churn costs some completeness but not everything.
	if len(answers) == 0 {
		t.Fatal("churn wiped out all answers")
	}
}

func TestTTLBoundsPropagation(t *testing.T) {
	k, ov := buildOverlay(t, 64, 7)
	before := ov.QueryMsgs
	runQuery(k, ov, QueryMsg{ID: "q0", Origin: 0, Concept: conceptFor(0), TTL: 0, Strategy: Flood}, 5*time.Second)
	if ov.QueryMsgs != before {
		t.Fatal("TTL=0 query was forwarded")
	}
}

func TestManyQueriesIndependent(t *testing.T) {
	k, ov := buildOverlay(t, 32, 8)
	for i := 0; i < 5; i++ {
		q := QueryMsg{ID: fmt.Sprintf("q%d", i), Origin: i, Concept: conceptFor(i % 8), TTL: 5, Strategy: Flood}
		answers := runQuery(k, ov, q, 5*time.Second)
		if len(answers) == 0 {
			t.Fatalf("query %d found nothing", i)
		}
	}
}

func TestResetSeenAllowsRepeatQueryIDs(t *testing.T) {
	k, ov := buildOverlay(t, 32, 9)
	q := QueryMsg{ID: "repeat", Origin: 0, Concept: conceptFor(2), TTL: 5, Strategy: Flood}
	first := runQuery(k, ov, q, 5*time.Second)
	if len(first) == 0 {
		t.Fatal("first run found nothing")
	}
	// Same id again without reset: dedup suppresses everything.
	second := runQuery(k, ov, q, 5*time.Second)
	if len(second) != 0 {
		t.Fatalf("dedup failed: %d answers", len(second))
	}
	// After ResetSeen the same id works again (experiment repetitions).
	ov.ResetSeen()
	third := runQuery(k, ov, q, 5*time.Second)
	if len(third) == 0 {
		t.Fatal("ResetSeen did not clear dedup state")
	}
}
