// Package overlay implements the unstructured peer-to-peer overlay that an
// Open Agora runs on: independent nodes with partial views of the
// membership, maintained by gossip, plus semantic shortcut links to peers
// with similar content. Queries are disseminated by flooding, random walks,
// or semantic routing — the three strategies experiment E12 compares.
//
// The overlay is transport-agnostic at the node level but this package
// drives it over the deterministic sim.Network.
package overlay

import (
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/feature"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Strategy selects how a query spreads through the overlay.
type Strategy int

// Dissemination strategies.
const (
	Flood Strategy = iota
	RandomWalk
	Semantic
)

func (s Strategy) String() string {
	switch s {
	case Flood:
		return "flood"
	case RandomWalk:
		return "randomwalk"
	case Semantic:
		return "semantic"
	default:
		return "strategy(?)"
	}
}

// QueryMsg travels the overlay. Trace is the distributed-trace context of
// the ask that issued the probe (zero = untraced); it rides every
// forwarded copy so per-hop spans land in the right trace.
type QueryMsg struct {
	ID       string
	Origin   int
	Concept  feature.Vector
	Text     string
	TTL      int
	Strategy Strategy
	Walkers  int // for RandomWalk fan-out at origin
	Fanout   int // for Semantic forwarding degree
	Trace    telemetry.TraceContext
}

// Answer is a node's local response to a query, reported to the origin's
// collector.
type Answer struct {
	QueryID string
	From    int
	Payload any
	HopAt   sim.Time
}

// Handler is the application living on a node: it answers queries and
// exposes the node's content profile for semantic link formation.
type Handler interface {
	// HandleQuery produces this node's local answer payload (nil = no
	// relevant content).
	HandleQuery(q QueryMsg) any
	// ContentVector advertises the node's expertise in concept space.
	ContentVector() feature.Vector
}

// Node is one overlay participant.
type Node struct {
	ID      int
	ov      *Overlay
	handler Handler

	view      []int // random partial view (gossip-maintained)
	shortcuts []int // semantic neighbors
	seenQuery map[string]bool

	// Stats
	Forwarded uint64
	Answered  uint64
}

// Config tunes the overlay.
type Config struct {
	ViewSize      int           // gossip partial view size
	ShortcutCount int           // semantic neighbor count
	GossipPeriod  time.Duration // membership exchange period
	RefreshPeriod time.Duration // semantic shortcut refresh period
}

// DefaultConfig returns production-ish defaults.
func DefaultConfig() Config {
	return Config{
		ViewSize:      8,
		ShortcutCount: 5,
		GossipPeriod:  5 * time.Second,
		RefreshPeriod: 30 * time.Second,
	}
}

// Overlay owns the node set and drives gossip.
type Overlay struct {
	net    *sim.Network
	cfg    Config
	nodes  map[int]*Node
	ids    []int
	rng    *rand.Rand
	answer map[string]func(Answer)    // per-query collectors at origins
	spans  map[string]*telemetry.Span // per-query parent spans for hop tracing

	// Stats
	QueryMsgs  uint64
	GossipMsgs uint64

	tel overlayTel
}

// overlayTel mirrors the overlay's routing effort into a telemetry
// registry so operators can see dissemination cost per strategy.
type overlayTel struct {
	queryMsgs, gossipMsgs, answers *telemetry.Counter
}

// SetTelemetry registers routing counters (overlay.query.msgs,
// overlay.gossip.msgs, overlay.answers) in reg. Nil disables.
func (ov *Overlay) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		ov.tel = overlayTel{}
		return
	}
	ov.tel = overlayTel{
		queryMsgs:  reg.Counter("overlay.query.msgs"),
		gossipMsgs: reg.Counter("overlay.gossip.msgs"),
		answers:    reg.Counter("overlay.answers"),
	}
}

// New creates an overlay over the given simulated network.
func New(net *sim.Network, cfg Config) *Overlay {
	if cfg.ViewSize <= 0 {
		cfg = DefaultConfig()
	}
	ov := &Overlay{
		net:    net,
		cfg:    cfg,
		nodes:  make(map[int]*Node),
		rng:    net.Kernel().Stream("overlay"),
		answer: make(map[string]func(Answer)),
		spans:  make(map[string]*telemetry.Span),
	}
	return ov
}

// AddNode joins a node with the given handler. Initial views are wired when
// Bootstrap is called.
func (ov *Overlay) AddNode(id int, h Handler) *Node {
	n := &Node{ID: id, ov: ov, handler: h, seenQuery: make(map[string]bool)}
	ov.nodes[id] = n
	ov.ids = append(ov.ids, id)
	ov.net.Attach(id, (*nodeEndpoint)(n))
	return n
}

// Node returns the node with the given id, or nil.
func (ov *Overlay) Node(id int) *Node { return ov.nodes[id] }

// Size returns the number of nodes.
func (ov *Overlay) Size() int { return len(ov.ids) }

// IDs returns all node ids (shared slice; do not mutate).
func (ov *Overlay) IDs() []int { return ov.ids }

// Bootstrap wires initial random views and semantic shortcuts, then starts
// the periodic gossip and refresh processes.
func (ov *Overlay) Bootstrap() {
	for _, n := range ov.nodes {
		n.view = ov.sampleIDs(n.ID, ov.cfg.ViewSize)
	}
	ov.refreshShortcuts()
	k := ov.net.Kernel()
	k.Every(ov.cfg.GossipPeriod, ov.gossipRound)
	k.Every(ov.cfg.RefreshPeriod, ov.refreshShortcuts)
}

// sampleIDs picks up to k distinct ids excluding self.
func (ov *Overlay) sampleIDs(self, k int) []int {
	if k >= len(ov.ids) {
		k = len(ov.ids) - 1
	}
	if k <= 0 {
		return nil
	}
	perm := ov.rng.Perm(len(ov.ids))
	out := make([]int, 0, k)
	for _, p := range perm {
		id := ov.ids[p]
		if id == self {
			continue
		}
		out = append(out, id)
		if len(out) == k {
			break
		}
	}
	return out
}

// gossipRound has every live node exchange a view sample with one random
// view member (Cyclon-style shuffle, simplified: symmetric merge + trim).
func (ov *Overlay) gossipRound() {
	for _, n := range ov.nodes {
		if ov.net.IsDown(n.ID) || len(n.view) == 0 {
			continue
		}
		peer := n.view[ov.rng.Intn(len(n.view))]
		sample := n.sampleView(ov.cfg.ViewSize / 2)
		ov.GossipMsgs++
		ov.tel.gossipMsgs.Inc()
		ov.net.Send(sim.Message{
			From: n.ID, To: peer, Kind: "gossip",
			Payload: gossipPayload{from: n.ID, sample: sample},
			Size:    8 * (len(sample) + 1),
		})
	}
}

type gossipPayload struct {
	from   int
	sample []int
}

func (n *Node) sampleView(k int) []int {
	ids := append([]int{n.ID}, n.view...)
	n.ov.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	if len(ids) > k {
		ids = ids[:k]
	}
	return ids
}

// mergeView folds incoming ids into the view, dropping self and duplicates,
// trimming uniformly at random to the configured size.
func (n *Node) mergeView(incoming []int) {
	seen := map[int]bool{n.ID: true}
	merged := make([]int, 0, len(n.view)+len(incoming))
	for _, id := range n.view {
		if !seen[id] {
			seen[id] = true
			merged = append(merged, id)
		}
	}
	for _, id := range incoming {
		if !seen[id] {
			seen[id] = true
			merged = append(merged, id)
		}
	}
	for len(merged) > n.ov.cfg.ViewSize {
		i := n.ov.rng.Intn(len(merged))
		merged[i] = merged[len(merged)-1]
		merged = merged[:len(merged)-1]
	}
	n.view = merged
}

// refreshShortcuts recomputes each node's semantic neighbors: the
// ShortcutCount nodes (from a gossip-sized candidate sample plus current
// shortcuts) whose content vectors are most similar to its own. With a
// global membership directory this would be cheating; sampling keeps it
// honest to what gossip can discover.
func (ov *Overlay) refreshShortcuts() {
	for _, n := range ov.nodes {
		self := n.handler.ContentVector()
		cands := map[int]bool{}
		for _, id := range n.view {
			cands[id] = true
		}
		for _, id := range n.shortcuts {
			cands[id] = true
		}
		for _, id := range ov.sampleIDs(n.ID, ov.cfg.ViewSize) {
			cands[id] = true
		}
		type scoredPeer struct {
			id int
			s  float64
		}
		var scoredPeers []scoredPeer
		for id := range cands {
			peer := ov.nodes[id]
			if peer == nil {
				continue
			}
			scoredPeers = append(scoredPeers, scoredPeer{id, feature.Cosine(self, peer.handler.ContentVector())})
		}
		sort.Slice(scoredPeers, func(i, j int) bool {
			if scoredPeers[i].s != scoredPeers[j].s {
				return scoredPeers[i].s > scoredPeers[j].s
			}
			return scoredPeers[i].id < scoredPeers[j].id
		})
		k := ov.cfg.ShortcutCount
		if k > len(scoredPeers) {
			k = len(scoredPeers)
		}
		n.shortcuts = n.shortcuts[:0]
		for i := 0; i < k; i++ {
			n.shortcuts = append(n.shortcuts, scoredPeers[i].id)
		}
	}
}

// Query injects a query at origin and registers collect for its answers.
// Answers stream in as overlay messages arrive; callers decide when to stop
// listening via CloseQuery.
func (ov *Overlay) Query(q QueryMsg, collect func(Answer)) {
	ov.QueryTraced(q, nil, collect)
}

// QueryTraced is Query with hop tracing: while the query is open, every
// forwarded copy and every answering node records a child span under
// parent (`overlay.forward from→to`, `overlay.answer node`), exposing the
// dissemination tree of the probe inside the ask's trace. The overlay runs
// single-threaded under the kernel lock, so the span map needs no lock of
// its own. Nil parent traces nothing.
func (ov *Overlay) QueryTraced(q QueryMsg, parent *telemetry.Span, collect func(Answer)) {
	ov.answer[q.ID] = collect
	if parent != nil {
		ov.spans[q.ID] = parent
	}
	origin := ov.nodes[q.Origin]
	if origin == nil {
		return
	}
	origin.receiveQuery(q)
}

// CloseQuery stops collecting answers (and hop spans) for a query id.
func (ov *Overlay) CloseQuery(id string) {
	delete(ov.answer, id)
	delete(ov.spans, id)
}

// nodeEndpoint adapts Node to sim.Endpoint.
type nodeEndpoint Node

// Deliver implements sim.Endpoint.
func (ne *nodeEndpoint) Deliver(msg sim.Message) {
	n := (*Node)(ne)
	switch p := msg.Payload.(type) {
	case gossipPayload:
		n.mergeView(p.sample)
	case QueryMsg:
		n.receiveQuery(p)
	case Answer:
		if collect, ok := n.ov.answer[p.QueryID]; ok {
			collect(p)
		}
	}
}

// receiveQuery handles a query at a node: answer locally, then forward per
// strategy.
func (n *Node) receiveQuery(q QueryMsg) {
	if n.seenQuery[q.ID] {
		if q.Strategy == RandomWalk {
			// Walkers bounce off visited nodes instead of dying.
			n.forwardWalk(q)
		}
		return
	}
	n.seenQuery[q.ID] = true
	if payload := n.handler.HandleQuery(q); payload != nil {
		n.Answered++
		n.ov.tel.answers.Inc()
		if sp := n.ov.spans[q.ID]; sp != nil {
			sp.Child("overlay.answer", "node "+strconv.Itoa(n.ID)).End()
		}
		ans := Answer{QueryID: q.ID, From: n.ID, Payload: payload, HopAt: n.ov.net.Kernel().Now()}
		if n.ID == q.Origin {
			if collect, ok := n.ov.answer[q.ID]; ok {
				collect(ans)
			}
		} else {
			n.ov.net.Send(sim.Message{From: n.ID, To: q.Origin, Kind: "answer", Payload: ans, Size: 256})
		}
	}
	if q.TTL <= 0 {
		return
	}
	q.TTL--
	switch q.Strategy {
	case Flood:
		for _, peer := range n.neighbors() {
			n.sendQuery(peer, q)
		}
	case RandomWalk:
		walkers := 1
		if n.ID == q.Origin && q.Walkers > 1 {
			walkers = q.Walkers
		}
		for i := 0; i < walkers; i++ {
			n.forwardWalk(q)
		}
	case Semantic:
		n.forwardSemantic(q)
	}
}

// neighbors returns the union of the random view and semantic shortcuts.
func (n *Node) neighbors() []int {
	seen := make(map[int]bool, len(n.view)+len(n.shortcuts))
	out := make([]int, 0, len(n.view)+len(n.shortcuts))
	for _, id := range n.view {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range n.shortcuts {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

func (n *Node) forwardWalk(q QueryMsg) {
	if q.TTL <= 0 {
		return
	}
	nbrs := n.neighbors()
	if len(nbrs) == 0 {
		return
	}
	peer := nbrs[n.ov.rng.Intn(len(nbrs))]
	n.sendQuery(peer, q)
}

func (n *Node) forwardSemantic(q QueryMsg) {
	nbrs := n.neighbors()
	if len(nbrs) == 0 {
		return
	}
	type scoredPeer struct {
		id int
		s  float64
	}
	scoredPeers := make([]scoredPeer, 0, len(nbrs))
	for _, id := range nbrs {
		peer := n.ov.nodes[id]
		if peer == nil {
			continue
		}
		scoredPeers = append(scoredPeers, scoredPeer{id, feature.Cosine(q.Concept, peer.handler.ContentVector())})
	}
	sort.Slice(scoredPeers, func(i, j int) bool {
		if scoredPeers[i].s != scoredPeers[j].s {
			return scoredPeers[i].s > scoredPeers[j].s
		}
		return scoredPeers[i].id < scoredPeers[j].id
	})
	fanout := q.Fanout
	if fanout <= 0 {
		fanout = 3
	}
	if fanout > len(scoredPeers) {
		fanout = len(scoredPeers)
	}
	for i := 0; i < fanout; i++ {
		n.sendQuery(scoredPeers[i].id, q)
	}
}

func (n *Node) sendQuery(peer int, q QueryMsg) {
	n.Forwarded++
	n.ov.QueryMsgs++
	n.ov.tel.queryMsgs.Inc()
	if sp := n.ov.spans[q.ID]; sp != nil {
		sp.Child("overlay.forward", strconv.Itoa(n.ID)+"→"+strconv.Itoa(peer)).End()
	}
	n.ov.net.Send(sim.Message{
		From: n.ID, To: peer, Kind: "query", Payload: q,
		Size: 64 + 8*len(q.Concept) + len(q.Text),
	})
}

// ResetSeen clears per-query dedup state (between experiment repetitions).
func (ov *Overlay) ResetSeen() {
	for _, n := range ov.nodes {
		n.seenQuery = make(map[string]bool)
	}
}
