// Package ctxmodel implements the paper's Contextualization pillar: a
// context model over the dimensions Dey & Abowd identify (time, location,
// task, other people's presence, preceding activity), rules that activate
// context-conditioned profile variants, and inference of the current
// context from the interaction stream (e.g., Iris browses at the start of a
// project but poses direct queries when writing papers at the end).
package ctxmodel

import (
	"sort"
	"strings"
)

// Context captures the situation a user is operating in.
type Context struct {
	// Hour is the local hour of day, 0-23 (-1 = unknown).
	Hour int
	// Location is a coarse place label ("office", "home", "travel:paris").
	Location string
	// Task is what the user is doing ("explore", "write", "teach").
	Task string
	// Companions lists who else is present.
	Companions []string
	// Device is the interaction device ("desktop", "mobile").
	Device string
	// Preceding is the immediately preceding activity.
	Preceding string
}

// HasCompanion reports whether the named person is present.
func (c Context) HasCompanion(name string) bool {
	for _, x := range c.Companions {
		if x == name {
			return true
		}
	}
	return false
}

// Similarity scores two contexts in [0,1]: fraction of comparable dimensions
// that agree, with hours agreeing when within 3.
func Similarity(a, b Context) float64 {
	var agree, total float64
	if a.Hour >= 0 && b.Hour >= 0 {
		total++
		d := a.Hour - b.Hour
		if d < 0 {
			d = -d
		}
		if d > 12 {
			d = 24 - d
		}
		if d <= 3 {
			agree++
		}
	}
	cmp := func(x, y string) {
		if x == "" || y == "" {
			return
		}
		total++
		if x == y {
			agree++
		}
	}
	cmp(a.Location, b.Location)
	cmp(a.Task, b.Task)
	cmp(a.Device, b.Device)
	cmp(a.Preceding, b.Preceding)
	if len(a.Companions) > 0 || len(b.Companions) > 0 {
		total++
		inter := 0
		for _, x := range a.Companions {
			if (Context{Companions: b.Companions}).HasCompanion(x) {
				inter++
			}
		}
		union := len(a.Companions) + len(b.Companions) - inter
		if union > 0 && float64(inter)/float64(union) >= 0.5 {
			agree++
		}
	}
	if total == 0 {
		return 0
	}
	return agree / total
}

// Condition is a conjunctive pattern over context dimensions; empty fields
// are wildcards. HourFrom/HourTo define an inclusive circular range (e.g.
// 22..6 covers the night); both -1 means any hour.
type Condition struct {
	HourFrom, HourTo int
	Location         string
	Task             string
	Device           string
	RequireCompanion string
	ForbidCompanion  string
}

// Any matches every context.
func Any() Condition { return Condition{HourFrom: -1, HourTo: -1} }

// Matches reports whether ctx satisfies the condition.
func (cd Condition) Matches(ctx Context) bool {
	if cd.HourFrom >= 0 && cd.HourTo >= 0 && ctx.Hour >= 0 {
		inRange := false
		if cd.HourFrom <= cd.HourTo {
			inRange = ctx.Hour >= cd.HourFrom && ctx.Hour <= cd.HourTo
		} else {
			inRange = ctx.Hour >= cd.HourFrom || ctx.Hour <= cd.HourTo
		}
		if !inRange {
			return false
		}
	}
	if cd.Location != "" && !matchLabel(cd.Location, ctx.Location) {
		return false
	}
	if cd.Task != "" && cd.Task != ctx.Task {
		return false
	}
	if cd.Device != "" && cd.Device != ctx.Device {
		return false
	}
	if cd.RequireCompanion != "" && !ctx.HasCompanion(cd.RequireCompanion) {
		return false
	}
	if cd.ForbidCompanion != "" && ctx.HasCompanion(cd.ForbidCompanion) {
		return false
	}
	return true
}

// matchLabel supports prefix wildcards: "travel:*" matches "travel:paris".
func matchLabel(pattern, value string) bool {
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(value, strings.TrimSuffix(pattern, "*"))
	}
	return pattern == value
}

// Rule activates a profile variant when its condition matches; among
// matching rules the highest Priority wins (ties: earlier registration).
type Rule struct {
	Condition Condition
	Variant   string
	Priority  int
}

// RuleSet is an ordered rule collection.
type RuleSet struct {
	rules []Rule
}

// Add appends a rule.
func (rs *RuleSet) Add(r Rule) { rs.rules = append(rs.rules, r) }

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// Activate returns the variant label for ctx, or "" when no rule matches.
func (rs *RuleSet) Activate(ctx Context) string {
	bestIdx := -1
	for i, r := range rs.rules {
		if !r.Condition.Matches(ctx) {
			continue
		}
		if bestIdx == -1 || r.Priority > rs.rules[bestIdx].Priority {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return ""
	}
	return rs.rules[bestIdx].Variant
}

// ActivateAll returns every matching variant ordered by priority desc (then
// registration order), for callers that blend variants.
func (rs *RuleSet) ActivateAll(ctx Context) []string {
	type match struct {
		idx int
		r   Rule
	}
	var ms []match
	for i, r := range rs.rules {
		if r.Condition.Matches(ctx) {
			ms = append(ms, match{i, r})
		}
	}
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].r.Priority != ms[j].r.Priority {
			return ms[i].r.Priority > ms[j].r.Priority
		}
		return ms[i].idx < ms[j].idx
	})
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.r.Variant
	}
	return out
}
