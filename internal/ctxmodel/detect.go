package ctxmodel

// Context inference from interaction streams. "Such context identification
// will also be needed at run time so that the appropriate parts of the
// user's profile become activated" (§8). The detector watches the mix of
// recent interaction modes and classifies the user's task phase: a
// browse-heavy window looks like project-start exploration, a query-heavy
// window like end-of-project writing — the paper's own example.

// Action is one observed interaction mode.
type Action int

// Interaction modes the detector distinguishes.
const (
	ActionQuery Action = iota
	ActionBrowse
	ActionFeedRead
	ActionAnnotate
)

// Detector classifies task phase over a sliding window of actions.
type Detector struct {
	window []Action
	size   int
}

// NewDetector returns a detector with the given sliding-window size.
func NewDetector(windowSize int) *Detector {
	if windowSize <= 0 {
		windowSize = 20
	}
	return &Detector{size: windowSize}
}

// Observe appends an action, evicting the oldest beyond the window.
func (d *Detector) Observe(a Action) {
	d.window = append(d.window, a)
	if len(d.window) > d.size {
		d.window = d.window[len(d.window)-d.size:]
	}
}

// Counts returns the action histogram over the window.
func (d *Detector) Counts() map[Action]int {
	out := make(map[Action]int, 4)
	for _, a := range d.window {
		out[a]++
	}
	return out
}

// Task phases the detector emits.
const (
	TaskExplore = "explore"
	TaskWrite   = "write"
	TaskMonitor = "monitor"
	TaskCurate  = "curate"
)

// Task classifies the current phase. With no observations it returns "".
func (d *Detector) Task() string {
	n := len(d.window)
	if n == 0 {
		return ""
	}
	c := d.Counts()
	frac := func(a Action) float64 { return float64(c[a]) / float64(n) }
	switch {
	case frac(ActionAnnotate) >= 0.4:
		return TaskCurate
	case frac(ActionFeedRead) >= 0.5:
		return TaskMonitor
	case frac(ActionQuery) >= 0.6:
		return TaskWrite
	case frac(ActionBrowse) >= 0.5:
		return TaskExplore
	default:
		// Mixed: lean on the plurality mode.
		best, bestN := TaskExplore, c[ActionBrowse]
		if c[ActionQuery] > bestN {
			best, bestN = TaskWrite, c[ActionQuery]
		}
		if c[ActionFeedRead] > bestN {
			best, bestN = TaskMonitor, c[ActionFeedRead]
		}
		if c[ActionAnnotate] > bestN {
			best = TaskCurate
		}
		return best
	}
}

// Infer builds a Context by combining explicitly known dimensions with the
// detected task.
func (d *Detector) Infer(base Context) Context {
	out := base
	if out.Task == "" {
		out.Task = d.Task()
	}
	return out
}
