package ctxmodel

import "testing"

func TestConditionMatching(t *testing.T) {
	ctx := Context{Hour: 22, Location: "home", Task: "explore", Companions: []string{"kids"}, Device: "desktop"}

	if !Any().Matches(ctx) {
		t.Fatal("Any should match everything")
	}
	night := Condition{HourFrom: 21, HourTo: 6}
	if !night.Matches(ctx) {
		t.Fatal("circular hour range failed")
	}
	day := Condition{HourFrom: 8, HourTo: 18}
	if day.Matches(ctx) {
		t.Fatal("day range matched night context")
	}
	if !(Condition{HourFrom: -1, HourTo: -1, Location: "home"}).Matches(ctx) {
		t.Fatal("location match failed")
	}
	if (Condition{HourFrom: -1, HourTo: -1, Location: "office"}).Matches(ctx) {
		t.Fatal("wrong location matched")
	}
	// The paper's thriller example: forbidden companion.
	noKids := Condition{HourFrom: -1, HourTo: -1, ForbidCompanion: "kids"}
	if noKids.Matches(ctx) {
		t.Fatal("forbidden companion present but matched")
	}
	withJason := Condition{HourFrom: -1, HourTo: -1, RequireCompanion: "jason"}
	if withJason.Matches(ctx) {
		t.Fatal("required companion absent but matched")
	}
}

func TestConditionWildcardLocation(t *testing.T) {
	c := Condition{HourFrom: -1, HourTo: -1, Location: "travel:*"}
	if !c.Matches(Context{Location: "travel:paris"}) {
		t.Fatal("prefix wildcard failed")
	}
	if c.Matches(Context{Location: "home"}) {
		t.Fatal("wildcard overmatched")
	}
}

func TestRuleSetPriority(t *testing.T) {
	var rs RuleSet
	rs.Add(Rule{Condition: Any(), Variant: "default", Priority: 0})
	rs.Add(Rule{Condition: Condition{HourFrom: -1, HourTo: -1, Task: "write"}, Variant: "writing", Priority: 10})
	rs.Add(Rule{Condition: Condition{HourFrom: -1, HourTo: -1, Location: "travel:*"}, Variant: "travel", Priority: 5})

	if got := rs.Activate(Context{Task: "write", Location: "travel:rome"}); got != "writing" {
		t.Fatalf("activate = %q", got)
	}
	if got := rs.Activate(Context{Location: "travel:rome"}); got != "travel" {
		t.Fatalf("activate = %q", got)
	}
	if got := rs.Activate(Context{Location: "office"}); got != "default" {
		t.Fatalf("activate = %q", got)
	}
	all := rs.ActivateAll(Context{Task: "write", Location: "travel:rome"})
	if len(all) != 3 || all[0] != "writing" || all[1] != "travel" || all[2] != "default" {
		t.Fatalf("activateAll = %v", all)
	}
}

func TestRuleSetNoMatch(t *testing.T) {
	var rs RuleSet
	rs.Add(Rule{Condition: Condition{HourFrom: -1, HourTo: -1, Task: "teach"}, Variant: "teaching"})
	if got := rs.Activate(Context{Task: "write"}); got != "" {
		t.Fatalf("activate = %q, want empty", got)
	}
}

func TestSimilarity(t *testing.T) {
	a := Context{Hour: 10, Location: "office", Task: "write", Device: "desktop"}
	same := Context{Hour: 11, Location: "office", Task: "write", Device: "desktop"}
	diff := Context{Hour: 23, Location: "home", Task: "explore", Device: "mobile"}
	if Similarity(a, same) <= Similarity(a, diff) {
		t.Fatal("similar context should score higher")
	}
	if s := Similarity(a, same); s < 0.99 {
		t.Fatalf("near-identical similarity = %v", s)
	}
	if s := Similarity(Context{Hour: -1}, Context{Hour: -1}); s != 0 {
		t.Fatalf("no-dimension similarity = %v", s)
	}
	// Hour circularity: 23 vs 1 are 2 apart.
	if Similarity(Context{Hour: 23}, Context{Hour: 1}) != 1 {
		t.Fatal("circular hour distance broken")
	}
}

func TestSimilarityCompanions(t *testing.T) {
	a := Context{Companions: []string{"jason", "zoe"}}
	b := Context{Companions: []string{"jason", "zoe"}}
	c := Context{Companions: []string{"boss"}}
	if Similarity(a, b) <= Similarity(a, c) {
		t.Fatal("companion overlap should raise similarity")
	}
}

func TestDetectorPhases(t *testing.T) {
	d := NewDetector(10)
	if d.Task() != "" {
		t.Fatal("empty detector should return empty task")
	}
	for i := 0; i < 10; i++ {
		d.Observe(ActionBrowse)
	}
	if d.Task() != TaskExplore {
		t.Fatalf("task = %q", d.Task())
	}
	// Shift to query-heavy: window slides.
	for i := 0; i < 10; i++ {
		d.Observe(ActionQuery)
	}
	if d.Task() != TaskWrite {
		t.Fatalf("task = %q", d.Task())
	}
	for i := 0; i < 10; i++ {
		d.Observe(ActionFeedRead)
	}
	if d.Task() != TaskMonitor {
		t.Fatalf("task = %q", d.Task())
	}
	for i := 0; i < 6; i++ {
		d.Observe(ActionAnnotate)
	}
	if d.Task() != TaskCurate {
		t.Fatalf("task = %q", d.Task())
	}
}

func TestDetectorWindowBounded(t *testing.T) {
	d := NewDetector(5)
	for i := 0; i < 100; i++ {
		d.Observe(ActionQuery)
	}
	if len(d.window) != 5 {
		t.Fatalf("window len = %d", len(d.window))
	}
	c := d.Counts()
	if c[ActionQuery] != 5 {
		t.Fatalf("counts = %v", c)
	}
}

func TestDetectorInfer(t *testing.T) {
	d := NewDetector(10)
	for i := 0; i < 10; i++ {
		d.Observe(ActionBrowse)
	}
	ctx := d.Infer(Context{Location: "office"})
	if ctx.Task != TaskExplore || ctx.Location != "office" {
		t.Fatalf("inferred = %+v", ctx)
	}
	// Explicit task wins.
	ctx = d.Infer(Context{Task: "teach"})
	if ctx.Task != "teach" {
		t.Fatalf("explicit task overridden: %+v", ctx)
	}
}

func TestDetectorMixedPlurality(t *testing.T) {
	d := NewDetector(10)
	// 4 queries, 3 browses, 3 feed reads: no dominant mode, plurality = query.
	for i := 0; i < 4; i++ {
		d.Observe(ActionQuery)
	}
	for i := 0; i < 3; i++ {
		d.Observe(ActionBrowse)
		d.Observe(ActionFeedRead)
	}
	if d.Task() != TaskWrite {
		t.Fatalf("plurality task = %q", d.Task())
	}
}
