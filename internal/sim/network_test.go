package sim

import (
	"testing"
	"time"
)

type collector struct {
	got []Message
}

func (c *collector) Deliver(m Message) { c.got = append(c.got, m) }

func TestNetworkDelivery(t *testing.T) {
	k := NewKernel(1)
	net := NewNetwork(k, FixedLatency(10*time.Millisecond), 0)
	a, b := &collector{}, &collector{}
	net.Attach(1, a)
	net.Attach(2, b)
	net.Send(Message{From: 1, To: 2, Kind: "ping", Size: 10})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(b.got) != 1 || b.got[0].Kind != "ping" {
		t.Fatalf("b got %v", b.got)
	}
	if len(a.got) != 0 {
		t.Fatal("a should receive nothing")
	}
	if k.Now() != 10*time.Millisecond {
		t.Fatalf("delivery latency wrong: %v", k.Now())
	}
	if net.Delivered != 1 || net.Sent != 1 {
		t.Fatalf("stats: %+v", net)
	}
}

func TestNetworkLoss(t *testing.T) {
	k := NewKernel(1)
	net := NewNetwork(k, FixedLatency(time.Millisecond), 1.0)
	c := &collector{}
	net.Attach(2, c)
	for i := 0; i < 50; i++ {
		net.Send(Message{From: 1, To: 2})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(c.got) != 0 {
		t.Fatalf("loss=1.0 but delivered %d", len(c.got))
	}
	if net.Dropped != 50 {
		t.Fatalf("dropped = %d", net.Dropped)
	}
}

func TestNetworkDownNode(t *testing.T) {
	k := NewKernel(1)
	net := NewNetwork(k, FixedLatency(time.Millisecond), 0)
	c := &collector{}
	net.Attach(2, c)
	net.SetDown(2, true)
	net.Send(Message{From: 1, To: 2})
	_ = k.Run()
	if len(c.got) != 0 {
		t.Fatal("down node received a message")
	}
	net.SetDown(2, false)
	net.Send(Message{From: 1, To: 2})
	_ = k.Run()
	if len(c.got) != 1 {
		t.Fatal("recovered node should receive")
	}
}

func TestNetworkDownSender(t *testing.T) {
	k := NewKernel(1)
	net := NewNetwork(k, FixedLatency(time.Millisecond), 0)
	c := &collector{}
	net.Attach(2, c)
	net.SetDown(1, true)
	net.Send(Message{From: 1, To: 2})
	_ = k.Run()
	if len(c.got) != 0 {
		t.Fatal("message from down sender delivered")
	}
}

func TestWANLatencySymmetricAndPositive(t *testing.T) {
	k := NewKernel(1)
	lm := WANLatency{Base: 100 * time.Millisecond, Nodes: 64}
	r := k.Stream("t")
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j += 7 {
			d1 := lm.Delay(r, i, j, 0)
			d2 := lm.Delay(r, j, i, 0)
			if d1 != d2 {
				t.Fatalf("asymmetric latency %v vs %v", d1, d2)
			}
			if d1 <= 0 {
				t.Fatalf("non-positive latency between %d and %d", i, j)
			}
			if d1 > 110*time.Millisecond {
				t.Fatalf("latency above base: %v", d1)
			}
		}
	}
}

func TestWANLatencySizeTerm(t *testing.T) {
	lm := WANLatency{Base: 10 * time.Millisecond, Nodes: 8, BytesPerSec: 1e6}
	k := NewKernel(1)
	small := lm.Delay(k.Rand(), 0, 1, 0)
	big := lm.Delay(k.Rand(), 0, 1, 1e6)
	if big-small < 900*time.Millisecond {
		t.Fatalf("1MB at 1MB/s should add ~1s, got %v", big-small)
	}
}

func TestChurnProcess(t *testing.T) {
	k := NewKernel(5)
	net := NewNetwork(k, FixedLatency(time.Millisecond), 0)
	ids := make([]int, 100)
	for i := range ids {
		ids[i] = i
	}
	downs, ups := 0, 0
	cp := StartChurn(net, ids, 30, 5*time.Second, func(id int, down bool) {
		if down {
			downs++
		} else {
			ups++
		}
	})
	if err := k.RunUntil(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	cp.Stop()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 30%/min over 2 min on 100 nodes ~ 60 events (minus repeats on
	// already-down nodes); expect a healthy number.
	if downs < 20 {
		t.Fatalf("churn produced only %d failures", downs)
	}
	if ups != downs {
		t.Fatalf("every failure should recover: downs=%d ups=%d", downs, ups)
	}
	for _, id := range ids {
		if net.IsDown(id) {
			t.Fatalf("node %d still down after full recovery run", id)
		}
	}
}

func TestChurnZeroRate(t *testing.T) {
	k := NewKernel(1)
	net := NewNetwork(k, FixedLatency(time.Millisecond), 0)
	cp := StartChurn(net, []int{1, 2, 3}, 0, time.Second, nil)
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if cp.Events != 0 {
		t.Fatal("zero-rate churn produced events")
	}
}
