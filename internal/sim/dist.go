package sim

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Distributions used across the agora simulations. Every sampler takes an
// explicit *rand.Rand so that callers control which kernel stream feeds it.

// Exp samples an exponential duration with the given mean.
func Exp(r *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(r.ExpFloat64() * float64(mean))
}

// Pareto samples a Pareto-distributed duration with minimum xm and shape
// alpha. Heavy-tailed latencies (alpha near 2) model wide-area links.
func Pareto(r *rand.Rand, xm time.Duration, alpha float64) time.Duration {
	if xm <= 0 || alpha <= 0 {
		return xm
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return time.Duration(float64(xm) / math.Pow(u, 1/alpha))
}

// LogNormal samples exp(N(mu, sigma)) scaled into a duration where mu/sigma
// are in log-nanoseconds space of the supplied median.
func LogNormal(r *rand.Rand, median time.Duration, sigma float64) time.Duration {
	if median <= 0 {
		return 0
	}
	return time.Duration(float64(median) * math.Exp(r.NormFloat64()*sigma))
}

// Zipf draws ranks in [0, n) with exponent s >= 1 skew via the stdlib
// generator. A fresh generator per (r, s, n) would churn allocations, so
// callers that sample in a loop should construct a ZipfSource.
type ZipfSource struct {
	z *rand.Zipf
	n int
}

// NewZipfSource returns a Zipf rank sampler over [0, n). The skew parameter
// s must be > 1 per math/rand; s around 1.1 gives the classic web-like skew.
func NewZipfSource(r *rand.Rand, s float64, n int) *ZipfSource {
	if n <= 0 {
		n = 1
	}
	if s <= 1 {
		s = 1.0001
	}
	return &ZipfSource{z: rand.NewZipf(r, s, 1, uint64(n-1)), n: n}
}

// Next returns the next rank in [0, n).
func (zs *ZipfSource) Next() int { return int(zs.z.Uint64()) }

// N returns the size of the rank space.
func (zs *ZipfSource) N() int { return zs.n }

// Bernoulli reports true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Beta samples from a Beta(a, b) distribution using Jöhnk/gamma method.
// Source quality beliefs in the uncertainty package are Beta-distributed,
// and workload generation draws hidden source qualities from here.
func Beta(r *rand.Rand, a, b float64) float64 {
	x := Gamma(r, a)
	y := Gamma(r, b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Gamma samples from a Gamma(shape, 1) distribution using the
// Marsaglia–Tsang method.
func Gamma(r *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return Gamma(r, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Percentile returns the p-quantile (0..1) of samples using linear
// interpolation. It sorts a copy; callers on hot paths should pre-sort and
// use PercentileSorted.
func Percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	cp := make([]time.Duration, len(samples))
	copy(cp, samples)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return PercentileSorted(cp, p)
}

// PercentileSorted is Percentile over already-sorted samples.
func PercentileSorted(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}
