package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestExpMean(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var sum time.Duration
	n := 20000
	for i := 0; i < n; i++ {
		sum += Exp(r, 100*time.Millisecond)
	}
	mean := float64(sum) / float64(n)
	want := float64(100 * time.Millisecond)
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("exp mean %.0f, want ~%.0f", mean, want)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		d := Pareto(r, 10*time.Millisecond, 2.0)
		if d < 10*time.Millisecond {
			t.Fatalf("pareto sample %v below minimum", d)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	zs := NewZipfSource(r, 1.2, 100)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		counts[zs.Next()]++
	}
	if counts[0] <= counts[50]*2 {
		t.Fatalf("zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
}

func TestBetaRange(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(a, b uint8) bool {
		av := float64(a%50)/10 + 0.1
		bv := float64(b%50)/10 + 0.1
		x := Beta(r, av, bv)
		return x >= 0 && x <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBetaMean(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a, b := 8.0, 2.0
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += Beta(r, a, b)
	}
	mean := sum / float64(n)
	want := a / (a + b)
	if math.Abs(mean-want) > 0.01 {
		t.Fatalf("beta mean %.3f, want %.3f", mean, want)
	}
}

func TestGammaMean(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, shape := range []float64{0.5, 1, 2, 5} {
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			sum += Gamma(r, shape)
		}
		mean := sum / float64(n)
		if math.Abs(mean-shape)/shape > 0.06 {
			t.Fatalf("gamma(%v) mean %.3f, want %.3f", shape, mean, shape)
		}
	}
}

func TestPercentile(t *testing.T) {
	var s []time.Duration
	for i := 1; i <= 100; i++ {
		s = append(s, time.Duration(i)*time.Millisecond)
	}
	if p := Percentile(s, 0.5); p < 50*time.Millisecond || p > 51*time.Millisecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(s, 0.99); p < 99*time.Millisecond {
		t.Fatalf("p99 = %v", p)
	}
	if p := Percentile(s, 0); p != time.Millisecond {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(s, 1); p != 100*time.Millisecond {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %v", p)
	}
}

func TestPercentileSortedProperty(t *testing.T) {
	f := func(raw []int16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := make([]time.Duration, len(raw))
		for i, v := range raw {
			s[i] = time.Duration(int(v)+40000) * time.Microsecond
		}
		p := float64(pRaw) / 255
		got := Percentile(s, p)
		// The percentile must lie within [min, max].
		min, max := s[0], s[0]
		for _, v := range s {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return got >= min && got <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
