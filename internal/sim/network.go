package sim

import (
	"math/rand"
	"time"
)

// LatencyModel assigns a one-way delay to a message between two simulated
// endpoints. Models must be deterministic given the kernel's random stream.
type LatencyModel interface {
	// Delay returns the one-way latency for a message from src to dst of
	// the given size in bytes.
	Delay(r *rand.Rand, src, dst int, size int) time.Duration
}

// FixedLatency delays every message by the same amount. Useful in tests.
type FixedLatency time.Duration

// Delay implements LatencyModel.
func (f FixedLatency) Delay(_ *rand.Rand, _, _ int, _ int) time.Duration {
	return time.Duration(f)
}

// WANLatency models wide-area links: a per-pair base delay derived from
// coordinates on a ring (so that latency is a metric and stable per pair),
// plus log-normal jitter, plus a bandwidth term per byte.
type WANLatency struct {
	// Base is the mean base one-way delay between antipodal nodes.
	Base time.Duration
	// Jitter is the sigma of the log-normal jitter factor (0 = none).
	Jitter float64
	// BytesPerSec models serialization delay; 0 disables the size term.
	BytesPerSec float64
	// Nodes is the size of the ring used to derive pairwise distance.
	Nodes int
}

// Delay implements LatencyModel.
func (w WANLatency) Delay(r *rand.Rand, src, dst int, size int) time.Duration {
	n := w.Nodes
	if n <= 1 {
		n = 2
	}
	d := src - dst
	if d < 0 {
		d = -d
	}
	if d > n/2 {
		d = n - d
	}
	frac := float64(d)/float64(n/2)*0.9 + 0.1 // never exactly zero
	base := time.Duration(frac * float64(w.Base))
	if w.Jitter > 0 {
		base = LogNormal(r, base, w.Jitter)
	}
	if w.BytesPerSec > 0 && size > 0 {
		base += time.Duration(float64(size) / w.BytesPerSec * float64(time.Second))
	}
	return base
}

// Message is an opaque payload delivered between simulated endpoints.
type Message struct {
	From    int
	To      int
	Kind    string
	Payload any
	Size    int
	SentAt  Time
}

// Endpoint receives messages delivered by a Network.
type Endpoint interface {
	// Deliver is invoked inside the simulation loop when a message
	// arrives. Implementations must not block.
	Deliver(msg Message)
}

// Network delivers messages between registered endpoints with latency and
// loss, driven by a Kernel.
type Network struct {
	k         *Kernel
	latency   LatencyModel
	lossProb  float64
	endpoints map[int]Endpoint
	down      map[int]bool
	rng       *rand.Rand

	// Stats
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Bytes     uint64
}

// NewNetwork creates a network on kernel k using the given latency model and
// message loss probability (0..1).
func NewNetwork(k *Kernel, lm LatencyModel, lossProb float64) *Network {
	return &Network{
		k:         k,
		latency:   lm,
		lossProb:  lossProb,
		endpoints: make(map[int]Endpoint),
		down:      make(map[int]bool),
		rng:       k.Stream("network"),
	}
}

// Attach registers an endpoint under id, replacing any previous endpoint.
func (n *Network) Attach(id int, ep Endpoint) { n.endpoints[id] = ep }

// Detach removes an endpoint; in-flight messages to it are dropped on
// arrival.
func (n *Network) Detach(id int) { delete(n.endpoints, id) }

// SetDown marks a node as crashed (true) or recovered (false). Messages to
// and from down nodes are dropped, modeling churn.
func (n *Network) SetDown(id int, down bool) {
	if down {
		n.down[id] = true
	} else {
		delete(n.down, id)
	}
}

// IsDown reports whether a node is currently marked down.
func (n *Network) IsDown(id int) bool { return n.down[id] }

// Send schedules delivery of msg. Loss and churn are applied at send and
// delivery time respectively.
func (n *Network) Send(msg Message) {
	n.Sent++
	n.Bytes += uint64(msg.Size)
	if n.down[msg.From] {
		n.Dropped++
		return
	}
	if n.lossProb > 0 && Bernoulli(n.rng, n.lossProb) {
		n.Dropped++
		return
	}
	msg.SentAt = n.k.Now()
	delay := n.latency.Delay(n.rng, msg.From, msg.To, msg.Size)
	n.k.After(delay, func() {
		if n.down[msg.To] {
			n.Dropped++
			return
		}
		ep, ok := n.endpoints[msg.To]
		if !ok {
			n.Dropped++
			return
		}
		n.Delivered++
		ep.Deliver(msg)
	})
}

// Kernel returns the kernel driving this network.
func (n *Network) Kernel() *Kernel { return n.k }

// ChurnProcess repeatedly crashes and recovers random nodes.
type ChurnProcess struct {
	net      *Network
	ids      []int
	rate     float64 // fraction of nodes cycled per minute
	downFor  time.Duration
	ticker   *Ticker
	rng      *rand.Rand
	onChange func(id int, down bool)
	Events   int
}

// StartChurn begins a churn process over the given node ids: ratePerMin is
// the percentage of the population that fails per simulated minute (e.g. 10
// means 10%/min); each failed node recovers after downFor. onChange
// (optional) observes transitions.
func StartChurn(net *Network, ids []int, ratePerMin float64, downFor time.Duration, onChange func(id int, down bool)) *ChurnProcess {
	cp := &ChurnProcess{
		net:      net,
		ids:      ids,
		rate:     ratePerMin,
		downFor:  downFor,
		rng:      net.k.Stream("churn"),
		onChange: onChange,
	}
	if ratePerMin <= 0 || len(ids) == 0 {
		return cp
	}
	// Tick once a second; expected failures per tick = (rate%/100)*n/60.
	perTick := ratePerMin / 100 * float64(len(ids)) / 60.0
	cp.ticker = net.k.Every(time.Second, func() {
		failures := int(perTick)
		if Bernoulli(cp.rng, perTick-float64(failures)) {
			failures++
		}
		for i := 0; i < failures; i++ {
			id := cp.ids[cp.rng.Intn(len(cp.ids))]
			if cp.net.IsDown(id) {
				continue
			}
			cp.Events++
			cp.net.SetDown(id, true)
			if cp.onChange != nil {
				cp.onChange(id, true)
			}
			cp.net.k.After(cp.downFor, func() {
				cp.net.SetDown(id, false)
				if cp.onChange != nil {
					cp.onChange(id, false)
				}
			})
		}
	})
	return cp
}

// Stop halts the churn process; already-failed nodes still recover.
func (cp *ChurnProcess) Stop() {
	if cp.ticker != nil {
		cp.ticker.Stop()
	}
}
