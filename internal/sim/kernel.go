// Package sim provides a deterministic discrete-event simulation kernel.
//
// The Open Agora of the paper is a distributed environment of independent
// information systems. To evaluate its protocols reproducibly we run them on
// a simulated network: virtual time, a single event loop, and seeded random
// streams. The kernel is deliberately single-threaded — determinism is the
// point — and all concurrency in the simulated world is expressed as events.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual simulation time. It uses time.Duration since the start of
// the simulation so that latency arithmetic reads naturally.
type Time = time.Duration

// Event is a scheduled callback in virtual time.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	fn   func()
	dead bool
	idx  int
}

// Handle identifies a scheduled event and allows cancellation.
type Handle struct {
	ev *event
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. It reports whether the event was
// still pending.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.dead {
		return false
	}
	h.ev.dead = true
	return true
}

// Pending reports whether the event has not yet fired or been cancelled.
func (h Handle) Pending() bool { return h.ev != nil && !h.ev.dead }

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Kernel is a discrete-event simulator. The zero value is not usable; use
// NewKernel.
type Kernel struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	seed    int64
	stopped bool
	fired   uint64
	streams map[string]*rand.Rand
}

// NewKernel returns a kernel whose randomness derives entirely from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:     rand.New(rand.NewSource(seed)),
		seed:    seed,
		streams: make(map[string]*rand.Rand),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of events still scheduled (including cancelled
// events not yet reaped).
func (k *Kernel) Pending() int { return len(k.queue) }

// Rand returns the kernel's root random stream.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Stream returns a named random stream derived deterministically from the
// kernel seed and the name. Separate subsystems should use separate streams
// so that adding randomness in one does not perturb another.
func (k *Kernel) Stream(name string) *rand.Rand {
	if r, ok := k.streams[name]; ok {
		return r
	}
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	r := rand.New(rand.NewSource(k.seed ^ int64(h)))
	k.streams[name] = r
	return r
}

// ErrStopped is returned by Run variants when Stop was called.
var ErrStopped = errors.New("sim: kernel stopped")

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it is always a logic error in a discrete-event model.
func (k *Kernel) At(t Time, fn func()) Handle {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, k.now))
	}
	ev := &event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	return Handle{ev: ev}
}

// After schedules fn to run d after the current virtual time. Negative d is
// clamped to zero.
func (k *Kernel) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Every schedules fn to run now+d and then every d thereafter until the
// returned handle is cancelled. fn observes the tick's scheduled time via
// Now.
func (k *Kernel) Every(d time.Duration, fn func()) *Ticker {
	if d <= 0 {
		panic("sim: Every requires positive period")
	}
	t := &Ticker{k: k, period: d, fn: fn}
	t.h = k.After(d, t.tick)
	return t
}

// Ticker is a recurring event created by Every.
type Ticker struct {
	k       *Kernel
	period  time.Duration
	fn      func()
	h       Handle
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.h = t.k.After(t.period, t.tick)
	}
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	t.h.Cancel()
}

// Stop halts Run after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// step executes the next pending event, returning false when none remain.
func (k *Kernel) step() bool {
	for len(k.queue) > 0 {
		ev := heap.Pop(&k.queue).(*event)
		if ev.dead {
			continue
		}
		if ev.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = ev.at
		ev.dead = true
		k.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called. It returns
// ErrStopped in the latter case.
func (k *Kernel) Run() error {
	k.stopped = false
	for !k.stopped {
		if !k.step() {
			return nil
		}
	}
	return ErrStopped
}

// RunUntil executes events with scheduled time <= deadline. Events beyond
// the deadline remain queued; virtual time advances to deadline if the queue
// drains earlier. Returns ErrStopped if Stop was called.
func (k *Kernel) RunUntil(deadline Time) error {
	k.stopped = false
	for !k.stopped {
		if len(k.queue) == 0 {
			break
		}
		next := k.queue[0]
		if next.dead {
			heap.Pop(&k.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		k.step()
	}
	if k.stopped {
		return ErrStopped
	}
	if k.now < deadline {
		k.now = deadline
	}
	return nil
}

// RunFor advances the simulation by d of virtual time.
func (k *Kernel) RunFor(d time.Duration) error { return k.RunUntil(k.now + d) }
