package sim

import (
	"testing"
	"time"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.After(30*time.Millisecond, func() { order = append(order, 3) })
	k.After(10*time.Millisecond, func() { order = append(order, 1) })
	k.After(20*time.Millisecond, func() { order = append(order, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if k.Now() != 30*time.Millisecond {
		t.Fatalf("clock at %v, want 30ms", k.Now())
	}
}

func TestKernelFIFOAtSameTime(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(time.Second, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	h := k.After(time.Second, func() { fired = true })
	if !h.Pending() {
		t.Fatal("handle should be pending")
	}
	if !h.Cancel() {
		t.Fatal("cancel should succeed")
	}
	if h.Cancel() {
		t.Fatal("second cancel should fail")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel(1)
	count := 0
	var rec func()
	rec = func() {
		count++
		if count < 5 {
			k.After(time.Millisecond, rec)
		}
	}
	k.After(0, rec)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if k.Now() != 4*time.Millisecond {
		t.Fatalf("clock = %v, want 4ms", k.Now())
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []int
	k.After(time.Second, func() { fired = append(fired, 1) })
	k.After(3*time.Second, func() { fired = append(fired, 2) })
	if err := k.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 {
		t.Fatalf("fired = %v, want only first", fired)
	}
	if k.Now() != 2*time.Second {
		t.Fatalf("clock = %v, want 2s", k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want both", fired)
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel(1)
	n := 0
	k.After(time.Second, func() { n++; k.Stop() })
	k.After(2*time.Second, func() { n++ })
	if err := k.Run(); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
}

func TestKernelSchedulePastPanics(t *testing.T) {
	k := NewKernel(1)
	k.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		k.At(0, func() {})
	})
	_ = k.Run()
}

func TestTicker(t *testing.T) {
	k := NewKernel(1)
	n := 0
	var tk *Ticker
	tk = k.Every(time.Second, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", k.Now())
	}
}

func TestStreamsAreIndependentAndDeterministic(t *testing.T) {
	k1 := NewKernel(42)
	k2 := NewKernel(42)
	a1 := k1.Stream("a").Int63()
	_ = k1.Stream("b").Int63()
	// Interleave differently on k2; stream "a" must still match.
	_ = k2.Stream("b").Int63()
	a2 := k2.Stream("a").Int63()
	if a1 != a2 {
		t.Fatal("named streams are not independent of creation order")
	}
	k3 := NewKernel(43)
	if k3.Stream("a").Int63() == a1 {
		t.Fatal("different seeds should give different streams")
	}
}

func TestKernelDeterminism(t *testing.T) {
	run := func() []Time {
		k := NewKernel(7)
		var times []Time
		r := k.Stream("x")
		for i := 0; i < 20; i++ {
			k.After(Exp(r, time.Second), func() { times = append(times, k.Now()) })
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
