package optimizer

import (
	"math"
	"sort"

	"repro/internal/qos"
	"repro/internal/uncertainty"
)

// Plan search. For small candidate sets we enumerate exhaustively; larger
// ones use greedy marginal-gain construction (the classic submodular
// heuristic — completeness composes with diminishing returns, so greedy is
// near-optimal) and a beam refinement.

// maxExhaustive bounds exhaustive enumeration (2^n subsets).
const maxExhaustive = 12

// Best returns the highest-scoring plan under the objective, with at most
// maxSources sources (0 = unbounded).
func Best(cands []SourceEstimate, obj Objective, maxSources int) (Plan, error) {
	if len(cands) == 0 {
		return Plan{}, ErrNoSources
	}
	if len(cands) <= maxExhaustive {
		return bestExhaustive(cands, obj, maxSources), nil
	}
	return bestGreedy(cands, obj, maxSources), nil
}

func bestExhaustive(cands []SourceEstimate, obj Objective, maxSources int) Plan {
	n := len(cands)
	var best Plan
	bestScore := math.Inf(-1)
	for mask := 1; mask < 1<<n; mask++ {
		if maxSources > 0 && popcount(mask) > maxSources {
			continue
		}
		var p Plan
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				p.Sources = append(p.Sources, cands[i])
			}
		}
		if s := obj.Score(p); s > bestScore {
			bestScore = s
			best = p
		}
	}
	return best
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func bestGreedy(cands []SourceEstimate, obj Objective, maxSources int) Plan {
	var plan Plan
	used := make([]bool, len(cands))
	cur := math.Inf(-1)
	for {
		if maxSources > 0 && len(plan.Sources) >= maxSources {
			break
		}
		bestIdx, bestScore := -1, cur
		for i, c := range cands {
			if used[i] {
				continue
			}
			trial := Plan{Sources: append(append([]SourceEstimate{}, plan.Sources...), c)}
			if s := obj.Score(trial); s > bestScore {
				bestScore = s
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		used[bestIdx] = true
		plan.Sources = append(plan.Sources, cands[bestIdx])
		cur = bestScore
	}
	return plan
}

// ParetoPlans enumerates candidate plans (bounded subsets) and returns the
// Pareto-optimal set over (price asc, completeness desc, latency asc). This
// is the "set of rational choices" a user picks a trade-off from — the
// paper's multi-objective optimization combined with QoS policies.
func ParetoPlans(cands []SourceEstimate, maxSources int) []Plan {
	if len(cands) == 0 {
		return nil
	}
	n := len(cands)
	var plans []Plan
	if n <= maxExhaustive {
		for mask := 1; mask < 1<<n; mask++ {
			if maxSources > 0 && popcount(mask) > maxSources {
				continue
			}
			var p Plan
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					p.Sources = append(p.Sources, cands[i])
				}
			}
			plans = append(plans, p)
		}
	} else {
		// Sample the lattice: singletons, prefix-greedy chains by each
		// criterion.
		for i := range cands {
			plans = append(plans, Plan{Sources: []SourceEstimate{cands[i]}})
		}
		orders := []func(a, b SourceEstimate) bool{
			func(a, b SourceEstimate) bool { return a.Price.Mid() < b.Price.Mid() },
			func(a, b SourceEstimate) bool { return a.Coverage.Mean() > b.Coverage.Mean() },
			func(a, b SourceEstimate) bool { return a.Latency.Hi < b.Latency.Hi },
		}
		for _, less := range orders {
			sorted := append([]SourceEstimate{}, cands...)
			sort.Slice(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
			limit := maxSources
			if limit <= 0 || limit > len(sorted) {
				limit = len(sorted)
			}
			for k := 2; k <= limit; k++ {
				plans = append(plans, Plan{Sources: append([]SourceEstimate{}, sorted[:k]...)})
			}
		}
	}
	return paretoFilter(plans)
}

func paretoFilter(plans []Plan) []Plan {
	preds := make([]qos.Vector, len(plans))
	for i := range plans {
		preds[i] = plans[i].Predicted()
	}
	var out []Plan
	for i := range plans {
		dominated := false
		for j := range plans {
			if i == j {
				continue
			}
			if preds[j].Dominates(preds[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, plans[i])
		}
	}
	return out
}

// Hypervolume computes the 3D hypervolume (price, completeness, latency)
// dominated by the plan set relative to a reference point (refPrice,
// 0 completeness, refLatencySec) — the standard multi-objective quality
// indicator experiment E13 reports. Larger is better.
func Hypervolume(plans []Plan, refPrice, refLatencySec float64) float64 {
	type pt struct{ price, comp, lat float64 }
	var pts []pt
	for _, p := range plans {
		v := p.Predicted()
		lat := v.Latency.Seconds()
		if v.Price > refPrice || lat > refLatencySec {
			continue
		}
		pts = append(pts, pt{v.Price, v.Completeness, lat})
	}
	if len(pts) == 0 {
		return 0
	}
	// Monte-Carlo-free exact-ish computation by grid sweep over the two
	// "cost" axes; completeness is the value axis.
	// Sort by price; for each price cell, the best achievable completeness
	// among plans within (price, latency) bounds integrates the volume.
	const grid = 64
	var vol float64
	for i := 0; i < grid; i++ {
		price := refPrice * (float64(i) + 0.5) / grid
		for j := 0; j < grid; j++ {
			lat := refLatencySec * (float64(j) + 0.5) / grid
			best := 0.0
			for _, p := range pts {
				if p.price <= price && p.lat <= lat && p.comp > best {
					best = p.comp
				}
			}
			vol += best
		}
	}
	cell := (refPrice / grid) * (refLatencySec / grid)
	return vol * cell
}

// Reoptimize re-plans mid-flight: sources in `failed` are dropped from the
// remaining candidate pool and a fresh plan is chosen for the uncovered
// completeness mass. alreadyCovered is the completeness fraction delivered
// so far.
func Reoptimize(cands []SourceEstimate, failed map[string]bool, alreadyCovered float64, obj Objective, maxSources int) (Plan, error) {
	var remaining []SourceEstimate
	for _, c := range cands {
		if !failed[c.Source] {
			remaining = append(remaining, c)
		}
	}
	if len(remaining) == 0 {
		return Plan{}, ErrNoSources
	}
	// Shrink each candidate's marginal value by what is already covered:
	// coverage' = coverage * (1 - alreadyCovered).
	if alreadyCovered > 0 {
		scale := 1 - alreadyCovered
		if scale < 0 {
			scale = 0
		}
		for i := range remaining {
			b := remaining[i].Coverage
			m := b.Mean() * scale
			remaining[i].Coverage = uncertainty.PriorBelief(m, b.Strength()+2)
		}
	}
	return Best(remaining, obj, maxSources)
}
