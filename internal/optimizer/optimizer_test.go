package optimizer

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/qos"
	"repro/internal/uncertainty"
)

func est(name string, coverage, price, latSec float64) SourceEstimate {
	return SourceEstimate{
		Source:   name,
		Coverage: uncertainty.PriorBelief(coverage, 30),
		Price:    uncertainty.MakeInterval(price*0.8, price*1.2),
		Latency:  uncertainty.MakeInterval(latSec*0.8, latSec*1.2),
		Trust:    uncertainty.PriorBelief(0.8, 20),
		Premium:  1.2, PenaltyRate: 0.4,
	}
}

func balancedObj() Objective {
	return Objective{Weights: qos.DefaultWeights(), Risk: uncertainty.Neutral()}
}

func TestPredictedComposition(t *testing.T) {
	p := Plan{Sources: []SourceEstimate{est("a", 0.5, 2, 1), est("b", 0.5, 3, 2)}}
	v := p.Predicted()
	// Completeness 1 - 0.5*0.5 (approximately, beliefs have priors).
	if v.Completeness < 0.6 || v.Completeness > 0.85 {
		t.Fatalf("completeness = %v", v.Completeness)
	}
	// Latency = max hi.
	if v.Latency < 2*time.Second {
		t.Fatalf("latency = %v", v.Latency)
	}
	// Price = sum with premium.
	if v.Price < 5 {
		t.Fatalf("price = %v (should include premium)", v.Price)
	}
	if empty := (Plan{}).Predicted(); empty.Completeness != 0 {
		t.Fatalf("empty plan predicted = %+v", empty)
	}
}

func TestMoreSourcesMoreCompleteMoreExpensive(t *testing.T) {
	one := Plan{Sources: []SourceEstimate{est("a", 0.4, 2, 1)}}
	two := Plan{Sources: []SourceEstimate{est("a", 0.4, 2, 1), est("b", 0.4, 2, 1)}}
	if two.Predicted().Completeness <= one.Predicted().Completeness {
		t.Fatal("adding a source should raise completeness")
	}
	if two.Predicted().Price <= one.Predicted().Price {
		t.Fatal("adding a source should raise price")
	}
}

func TestBestExhaustiveBeatsSingles(t *testing.T) {
	cands := []SourceEstimate{
		est("cheap-partial", 0.3, 1, 0.5),
		est("rich-pricey", 0.8, 6, 1),
		est("mid", 0.5, 2, 1),
	}
	obj := balancedObj()
	best, err := Best(cands, obj, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		single := Plan{Sources: []SourceEstimate{c}}
		if obj.Score(best) < obj.Score(single)-1e-12 {
			t.Fatalf("best plan scored below single %s", c.Source)
		}
	}
}

func TestBestRespectsMaxSources(t *testing.T) {
	var cands []SourceEstimate
	for i := 0; i < 6; i++ {
		cands = append(cands, est(fmt.Sprintf("s%d", i), 0.4, 1, 1))
	}
	best, err := Best(cands, balancedObj(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Sources) > 2 {
		t.Fatalf("plan has %d sources", len(best.Sources))
	}
}

func TestBestEmpty(t *testing.T) {
	if _, err := Best(nil, balancedObj(), 0); !errors.Is(err, ErrNoSources) {
		t.Fatalf("err = %v", err)
	}
}

func TestGreedyOnLargeSet(t *testing.T) {
	var cands []SourceEstimate
	for i := 0; i < 30; i++ {
		cands = append(cands, est(fmt.Sprintf("s%02d", i), 0.1+0.02*float64(i%10), 1+float64(i%5), 1))
	}
	best, err := Best(cands, balancedObj(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Sources) == 0 || len(best.Sources) > 5 {
		t.Fatalf("greedy plan size = %d", len(best.Sources))
	}
}

func TestBudgetConstraint(t *testing.T) {
	cands := []SourceEstimate{est("pricey", 0.9, 50, 1), est("cheap", 0.4, 1, 1)}
	obj := balancedObj()
	obj.Budget = 5
	best, err := Best(cands, obj, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Sources) != 1 || best.Sources[0].Source != "cheap" {
		t.Fatalf("budget ignored: %+v", best.Sources)
	}
}

func TestRiskAversionPrefersLowVariance(t *testing.T) {
	// Same mean coverage; one belief is much weaker (higher variance).
	confident := SourceEstimate{
		Source: "confident", Coverage: uncertainty.PriorBelief(0.6, 200),
		Price: uncertainty.Point(2), Latency: uncertainty.Point(1),
		Trust: uncertainty.PriorBelief(0.8, 20), Premium: 1,
	}
	shaky := SourceEstimate{
		Source: "shaky", Coverage: uncertainty.PriorBelief(0.6, 2),
		Price: uncertainty.Point(2), Latency: uncertainty.Point(1),
		Trust: uncertainty.PriorBelief(0.8, 20), Premium: 1,
	}
	averse := Objective{Weights: qos.DefaultWeights(), Risk: uncertainty.Averse(30)}
	pc := Plan{Sources: []SourceEstimate{confident}}
	ps := Plan{Sources: []SourceEstimate{shaky}}
	if averse.Score(pc) <= averse.Score(ps) {
		t.Fatalf("risk-averse should prefer confident source: %v vs %v", averse.Score(pc), averse.Score(ps))
	}
	neutral := balancedObj()
	diff := neutral.Score(pc) - neutral.Score(ps)
	if diff < -0.05 || diff > 0.05 {
		t.Fatalf("risk-neutral gap should be small: %v", diff)
	}
}

func TestExpectedShortfallCost(t *testing.T) {
	strong := Plan{Sources: []SourceEstimate{{
		Source: "s", Coverage: uncertainty.PriorBelief(0.5, 500),
		Price: uncertainty.Point(10), Premium: 1, PenaltyRate: 0.5,
	}}}
	weak := Plan{Sources: []SourceEstimate{{
		Source: "s", Coverage: uncertainty.PriorBelief(0.5, 2),
		Price: uncertainty.Point(10), Premium: 1, PenaltyRate: 0.5,
	}}}
	if strong.ExpectedShortfallCost() >= weak.ExpectedShortfallCost() {
		t.Fatal("shakier promises should carry higher expected compensation")
	}
	noPenalty := Plan{Sources: []SourceEstimate{{
		Source: "s", Coverage: uncertainty.PriorBelief(0.5, 2),
		Price: uncertainty.Point(10), Premium: 1, PenaltyRate: 0,
	}}}
	if noPenalty.ExpectedShortfallCost() != 0 {
		t.Fatal("zero penalty rate should mean zero compensation")
	}
}

func TestParetoPlans(t *testing.T) {
	cands := []SourceEstimate{
		est("a", 0.3, 1, 0.5),
		est("b", 0.6, 3, 1),
		est("c", 0.8, 7, 2),
	}
	front := ParetoPlans(cands, 0)
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	// No front member dominates another.
	for i := range front {
		for j := range front {
			if i != j && front[i].Predicted().Dominates(front[j].Predicted()) {
				t.Fatalf("front member %d dominates %d", i, j)
			}
		}
	}
	if got := ParetoPlans(nil, 0); got != nil {
		t.Fatal("nil candidates should yield nil front")
	}
}

func TestParetoSamplingLargeSet(t *testing.T) {
	var cands []SourceEstimate
	for i := 0; i < 20; i++ {
		cands = append(cands, est(fmt.Sprintf("s%02d", i), 0.1+0.04*float64(i%10), 1+float64(i%7), 0.5+0.2*float64(i%4)))
	}
	front := ParetoPlans(cands, 6)
	if len(front) == 0 {
		t.Fatal("sampled front empty")
	}
}

func TestHypervolume(t *testing.T) {
	cands := []SourceEstimate{est("a", 0.3, 1, 0.5), est("b", 0.6, 3, 1), est("c", 0.8, 7, 2)}
	front := ParetoPlans(cands, 0)
	hvFront := Hypervolume(front, 20, 10)
	// A single mediocre plan must not beat the full front.
	single := []Plan{{Sources: []SourceEstimate{cands[0]}}}
	hvSingle := Hypervolume(single, 20, 10)
	if hvFront < hvSingle {
		t.Fatalf("front hv %v < single hv %v", hvFront, hvSingle)
	}
	if hvFront <= 0 {
		t.Fatalf("hv = %v", hvFront)
	}
	if Hypervolume(nil, 20, 10) != 0 {
		t.Fatal("empty hv should be 0")
	}
}

func TestReoptimizeDropsFailedSources(t *testing.T) {
	cands := []SourceEstimate{est("a", 0.6, 2, 1), est("b", 0.5, 2, 1), est("c", 0.4, 2, 1)}
	plan, err := Reoptimize(cands, map[string]bool{"a": true}, 0.3, balancedObj(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan.Sources {
		if s.Source == "a" {
			t.Fatal("failed source re-selected")
		}
	}
	// All failed -> error.
	if _, err := Reoptimize(cands, map[string]bool{"a": true, "b": true, "c": true}, 0, balancedObj(), 0); !errors.Is(err, ErrNoSources) {
		t.Fatalf("err = %v", err)
	}
}

func TestReoptimizeShrinksMarginalValue(t *testing.T) {
	cands := []SourceEstimate{est("a", 0.6, 2, 1)}
	fresh, err := Reoptimize(cands, nil, 0, balancedObj(), 0)
	if err != nil {
		t.Fatal(err)
	}
	late, err := Reoptimize(cands, nil, 0.9, balancedObj(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if late.Predicted().Completeness >= fresh.Predicted().Completeness {
		t.Fatal("already-covered mass should shrink predicted marginal completeness")
	}
}
