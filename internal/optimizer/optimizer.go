// Package optimizer implements agora query optimization: choosing which
// information sources to contract, at what QoS levels, for a decomposed
// query — under uncertainty about source coverage, cost and behaviour. It
// is where three of the paper's threads meet: uncertainty (estimates are
// beliefs and intervals, not numbers), QoS (plans are points in QoS space,
// optimization is multi-objective), and negotiation (plan cost reflects SLA
// premiums and expected breach compensation).
package optimizer

import (
	"errors"
	"math"
	"time"

	"repro/internal/qos"
	"repro/internal/uncertainty"
)

// SourceEstimate is what the optimizer believes about one candidate source
// for the query at hand.
type SourceEstimate struct {
	Source string
	// Coverage is the belief about the fraction of the relevant answer set
	// this source alone can deliver.
	Coverage uncertainty.BetaBelief
	// Price is the uncertain price the source will charge (post-
	// negotiation estimate).
	Price uncertainty.Interval
	// Latency is the uncertain response latency in seconds.
	Latency uncertainty.Interval
	// Trust is the belief the source delivers correct content.
	Trust uncertainty.BetaBelief
	// Staleness is the typical age of this source's content.
	Staleness time.Duration
	// Premium and PenaltyRate are the SLA terms the source offers.
	Premium     float64
	PenaltyRate float64
}

// Plan is a chosen subset of sources.
type Plan struct {
	Sources []SourceEstimate
}

// Predicted aggregates a plan's expected QoS vector. Completeness composes
// as 1-Π(1-c_i) under an independence assumption (sources hold overlapping
// but independently drawn slices of the answer set); latency is the max
// (sources run in parallel); price and premium costs add; trust is the
// coverage-weighted mean; freshness is the worst staleness.
func (p Plan) Predicted() qos.Vector {
	if len(p.Sources) == 0 {
		return qos.Vector{}
	}
	missing := 1.0
	var price, lat float64
	var trustW, trustSum float64
	var worstStale time.Duration
	for _, s := range p.Sources {
		// Deliverable coverage is the advertised coverage discounted by the
		// belief the source honors its promises: a shirker's shop window
		// counts for less (how the greengrocer loop steers future plans).
		c := s.Coverage.Mean() * s.Trust.Mean()
		missing *= 1 - c
		premium := s.Premium
		if premium < 1 {
			premium = 1
		}
		price += s.Price.Mid() * premium
		if l := s.Latency.Hi; l > lat {
			lat = l
		}
		trustSum += c * s.Trust.Mean()
		trustW += c
		if s.Staleness > worstStale {
			worstStale = s.Staleness
		}
	}
	trust := 0.5
	if trustW > 0 {
		trust = trustSum / trustW
	}
	return qos.Vector{
		Latency:      time.Duration(lat * float64(time.Second)),
		Completeness: 1 - missing,
		Freshness:    worstStale,
		Trust:        trust,
		Price:        price,
	}
}

// Variance approximates the variance of the plan's completeness (the main
// uncertain payoff dimension) by propagating per-source Beta variances
// through the product form.
func (p Plan) Variance() float64 {
	// Var(1-Π(1-C_i)) = Var(Π(1-C_i)); first-order delta method:
	// Π terms treated independently.
	prod := 1.0
	var rel float64 // sum of relative variances
	for _, s := range p.Sources {
		m := 1 - s.Coverage.Mean()
		v := s.Coverage.Variance()
		prod *= m
		if m > 1e-9 {
			rel += v / (m * m)
		}
	}
	return prod * prod * rel
}

// ExpectedShortfallCost estimates the expected compensation the plan's
// contracts return on breach (negotiation-aware optimization): each source
// breaches its coverage promise with probability ~P(coverage < promised),
// refunding penalty*premium*price*E[shortfall|breach]. We promise each
// source its posterior-mean coverage, so breach probability ≈ 0.5 scaled by
// belief confidence.
func (p Plan) ExpectedShortfallCost() float64 {
	var total float64
	for _, s := range p.Sources {
		sd := math.Sqrt(s.Coverage.Variance())
		premium := s.Premium
		if premium < 1 {
			premium = 1
		}
		paid := s.Price.Mid() * premium
		// Expected shortfall of a promise at the mean is ~sd/sqrt(2*pi)
		// (normal approximation, one-sided).
		expectedShortfall := sd / math.Sqrt(2*math.Pi)
		total += s.PenaltyRate * paid * expectedShortfall
	}
	return total
}

// Optimizer errors.
var ErrNoSources = errors.New("optimizer: no candidate sources")

// Objective scores a plan for a particular user.
type Objective struct {
	Weights qos.Weights
	Risk    uncertainty.RiskAttitude
	// Budget caps acceptable plan price (0 = unlimited).
	Budget float64
}

// Score evaluates a plan: the scalarized QoS utility of the predicted
// vector, risk-adjusted by the completeness variance through the certainty
// equivalent, minus normalized expected breach compensation already folded
// into effective price.
func (o Objective) Score(p Plan) float64 {
	pred := p.Predicted()
	// Breach compensation flows back to the consumer, lowering the
	// effective price.
	pred.Price -= p.ExpectedShortfallCost()
	if pred.Price < 0 {
		pred.Price = 0
	}
	if o.Budget > 0 && pred.Price > o.Budget {
		return -1
	}
	base := o.Weights.Scalarize(pred)
	return o.Risk.CertaintyEquivalent(base, p.Variance())
}
