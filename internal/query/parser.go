package query

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/docstore"
	"repro/internal/qos"
)

// Query is the parsed AST of an AQL query.
type Query struct {
	// Kind restricts the document kind; nil means any.
	Kind *docstore.Kind
	// Text is the free-text relevance predicate (empty = none).
	Text string
	// Topics must all be present on matching documents.
	Topics []string
	// NotTopics excludes documents carrying any of these topics.
	NotTopics []string
	// Sources restricts provenance (empty = any).
	Sources []string
	// NotSources excludes documents from these sources.
	NotSources []string
	// SimThreshold > 0 requires concept similarity above it (the concept
	// vector itself is supplied at execution time).
	SimThreshold float64
	// MaxAge > 0 requires documents newer than now - MaxAge.
	MaxAge time.Duration
	// TopK bounds the result size (default 10).
	TopK int
	// Want is the QoS requirement vector (zero fields = don't care).
	Want qos.Vector
}

var kindNames = map[string]docstore.Kind{
	"articles": docstore.KindArticle, "holdings": docstore.KindHolding,
	"catalogs": docstore.KindCatalogEntry, "magazines": docstore.KindMagazine,
	"annotations": docstore.KindAnnotation, "theses": docstore.KindThesis,
}

// Parse parses an AQL query string.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseQuery()
}

// MustParse parses or panics; for tests and static queries.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expectIdent(word string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != word {
		return &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("expected %q, got %q", word, t.text)}
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{TopK: 10}
	if err := p.expectIdent("find"); err != nil {
		return nil, err
	}
	// Optional kind.
	if t := p.cur(); t.kind == tokIdent {
		if k, ok := kindNames[t.text]; ok {
			q.Kind = &k
			p.next()
		} else if t.text == "documents" {
			p.next()
		}
	}
	for {
		t := p.cur()
		if t.kind == tokEOF {
			break
		}
		if t.kind != tokIdent {
			return nil, &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("expected clause keyword, got %q", t.text)}
		}
		switch t.text {
		case "where":
			p.next()
			if err := p.parseConds(q); err != nil {
				return nil, err
			}
		case "top":
			p.next()
			nt := p.next()
			if nt.kind != tokNumber {
				return nil, &SyntaxError{Pos: nt.pos, Msg: "TOP requires a number"}
			}
			k, err := strconv.Atoi(nt.text)
			if err != nil || k <= 0 {
				return nil, &SyntaxError{Pos: nt.pos, Msg: "TOP requires a positive integer"}
			}
			q.TopK = k
		case "qos":
			p.next()
			if err := p.parseQoS(q); err != nil {
				return nil, err
			}
		default:
			return nil, &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("unexpected keyword %q", t.text)}
		}
	}
	return q, nil
}

func (p *parser) parseConds(q *Query) error {
	for {
		if err := p.parseCond(q); err != nil {
			return err
		}
		if t := p.cur(); t.kind == tokIdent && t.text == "and" {
			p.next()
			continue
		}
		return nil
	}
}

func (p *parser) parseCond(q *Query) error {
	t := p.next()
	if t.kind != tokIdent {
		return &SyntaxError{Pos: t.pos, Msg: "expected condition field"}
	}
	if t.text == "not" {
		return p.parseNegatedCond(q)
	}
	switch t.text {
	case "text":
		if err := p.expectOp("~"); err != nil {
			return err
		}
		st := p.next()
		if st.kind != tokString {
			return &SyntaxError{Pos: st.pos, Msg: "text ~ requires a string"}
		}
		q.Text = st.text
	case "topic":
		if err := p.expectOp("="); err != nil {
			return err
		}
		st := p.next()
		if st.kind != tokString {
			return &SyntaxError{Pos: st.pos, Msg: "topic = requires a string"}
		}
		q.Topics = append(q.Topics, st.text)
	case "source":
		if err := p.expectOp("="); err != nil {
			return err
		}
		st := p.next()
		if st.kind != tokString {
			return &SyntaxError{Pos: st.pos, Msg: "source = requires a string"}
		}
		q.Sources = append(q.Sources, st.text)
	case "similar":
		if err := p.expectOp(">"); err != nil {
			return err
		}
		nt := p.next()
		if nt.kind != tokNumber {
			return &SyntaxError{Pos: nt.pos, Msg: "similar > requires a number"}
		}
		v, err := strconv.ParseFloat(nt.text, 64)
		if err != nil || v < 0 || v > 1 {
			return &SyntaxError{Pos: nt.pos, Msg: "similar threshold must be in [0,1]"}
		}
		q.SimThreshold = v
	case "fresh":
		if err := p.expectOp("<"); err != nil {
			return err
		}
		dt := p.next()
		if dt.kind != tokDuration {
			return &SyntaxError{Pos: dt.pos, Msg: "fresh < requires a duration (e.g. 7d)"}
		}
		d, err := parseDuration(dt.text)
		if err != nil {
			return &SyntaxError{Pos: dt.pos, Msg: err.Error()}
		}
		q.MaxAge = d
	default:
		return &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("unknown condition field %q", t.text)}
	}
	return nil
}

// parseNegatedCond handles NOT topic = "..." and NOT source = "...".
func (p *parser) parseNegatedCond(q *Query) error {
	t := p.next()
	if t.kind != tokIdent || (t.text != "topic" && t.text != "source") {
		return &SyntaxError{Pos: t.pos, Msg: "NOT supports only topic and source conditions"}
	}
	if err := p.expectOp("="); err != nil {
		return err
	}
	st := p.next()
	if st.kind != tokString {
		return &SyntaxError{Pos: st.pos, Msg: "NOT " + t.text + " = requires a string"}
	}
	if t.text == "topic" {
		q.NotTopics = append(q.NotTopics, st.text)
	} else {
		q.NotSources = append(q.NotSources, st.text)
	}
	return nil
}

func (p *parser) expectOp(op string) error {
	t := p.next()
	if t.kind != tokOp || t.text != op {
		return &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("expected %q, got %q", op, t.text)}
	}
	return nil
}

func (p *parser) parseQoS(q *Query) error {
	for {
		t := p.next()
		if t.kind != tokIdent {
			return &SyntaxError{Pos: t.pos, Msg: "expected QoS dimension"}
		}
		op := p.next()
		if op.kind != tokOp || (op.text != "<=" && op.text != ">=") {
			return &SyntaxError{Pos: op.pos, Msg: "QoS conditions use <= or >="}
		}
		val := p.next()
		switch t.text {
		case "latency":
			if val.kind != tokDuration {
				return &SyntaxError{Pos: val.pos, Msg: "latency needs a duration"}
			}
			d, err := parseDuration(val.text)
			if err != nil {
				return &SyntaxError{Pos: val.pos, Msg: err.Error()}
			}
			q.Want.Latency = d
		case "freshness":
			if val.kind != tokDuration {
				return &SyntaxError{Pos: val.pos, Msg: "freshness needs a duration"}
			}
			d, err := parseDuration(val.text)
			if err != nil {
				return &SyntaxError{Pos: val.pos, Msg: err.Error()}
			}
			q.Want.Freshness = d
		case "completeness", "trust", "price":
			if val.kind != tokNumber {
				return &SyntaxError{Pos: val.pos, Msg: t.text + " needs a number"}
			}
			v, err := strconv.ParseFloat(val.text, 64)
			if err != nil {
				return &SyntaxError{Pos: val.pos, Msg: err.Error()}
			}
			switch t.text {
			case "completeness":
				q.Want.Completeness = v
			case "trust":
				q.Want.Trust = v
			case "price":
				q.Want.Price = v
			}
		default:
			return &SyntaxError{Pos: t.pos, Msg: fmt.Sprintf("unknown QoS dimension %q", t.text)}
		}
		if c := p.cur(); c.kind == tokOp && c.text == "," {
			p.next()
			continue
		}
		return nil
	}
}

func parseDuration(s string) (time.Duration, error) {
	// Accept ms, s, m, h plus d and w which time.ParseDuration lacks.
	unitStart := len(s)
	for unitStart > 0 && !(s[unitStart-1] >= '0' && s[unitStart-1] <= '9' || s[unitStart-1] == '.') {
		unitStart--
	}
	num, unit := s[:unitStart], s[unitStart:]
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	switch unit {
	case "ms":
		return time.Duration(v * float64(time.Millisecond)), nil
	case "s":
		return time.Duration(v * float64(time.Second)), nil
	case "m":
		return time.Duration(v * float64(time.Minute)), nil
	case "h":
		return time.Duration(v * float64(time.Hour)), nil
	case "d":
		return time.Duration(v * 24 * float64(time.Hour)), nil
	case "w":
		return time.Duration(v * 7 * 24 * float64(time.Hour)), nil
	default:
		return 0, fmt.Errorf("unknown duration unit %q", unit)
	}
}

// formatDuration renders a duration in AQL's single-unit syntax, choosing
// the largest unit that divides evenly (falling back to fractional seconds).
func formatDuration(d time.Duration) string {
	units := []struct {
		u    time.Duration
		name string
	}{
		{7 * 24 * time.Hour, "w"},
		{24 * time.Hour, "d"},
		{time.Hour, "h"},
		{time.Minute, "m"},
		{time.Second, "s"},
		{time.Millisecond, "ms"},
	}
	for _, u := range units {
		if d >= u.u && d%u.u == 0 {
			return fmt.Sprintf("%d%s", d/u.u, u.name)
		}
	}
	return fmt.Sprintf("%g s", d.Seconds())
}

// String renders the query back to approximately canonical AQL.
func (q *Query) String() string {
	s := "FIND"
	if q.Kind != nil {
		for name, k := range kindNames {
			if k == *q.Kind {
				s += " " + name
				break
			}
		}
	} else {
		s += " documents"
	}
	var conds []string
	if q.Text != "" {
		conds = append(conds, fmt.Sprintf("text ~ %q", q.Text))
	}
	for _, t := range q.Topics {
		conds = append(conds, fmt.Sprintf("topic = %q", t))
	}
	for _, src := range q.Sources {
		conds = append(conds, fmt.Sprintf("source = %q", src))
	}
	for _, t := range q.NotTopics {
		conds = append(conds, fmt.Sprintf("NOT topic = %q", t))
	}
	for _, src := range q.NotSources {
		conds = append(conds, fmt.Sprintf("NOT source = %q", src))
	}
	if q.SimThreshold > 0 {
		conds = append(conds, fmt.Sprintf("similar > %g", q.SimThreshold))
	}
	if q.MaxAge > 0 {
		conds = append(conds, fmt.Sprintf("fresh < %s", formatDuration(q.MaxAge)))
	}
	if len(conds) > 0 {
		s += " WHERE " + conds[0]
		for _, c := range conds[1:] {
			s += " AND " + c
		}
	}
	s += fmt.Sprintf(" TOP %d", q.TopK)
	return s
}
