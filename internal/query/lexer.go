// Package query implements AQL, the small query language agora consumers
// speak, along with query decomposition into per-source subqueries and
// top-k result merging. An AQL query looks like:
//
//	FIND catalogs
//	WHERE text ~ "byzantine gold ring"
//	  AND topic = "jewelry"
//	  AND similar > 0.7
//	  AND fresh < 7d
//	TOP 10
//	QOS completeness >= 0.8, latency <= 2s, price <= 5
//
// The similar predicate applies to the concept vector attached to the query
// at execution time (e.g. extracted from an image Iris is holding).
package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokDuration
	tokOp // ~ = < > <= >= ,
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// SyntaxError reports a lexing or parsing failure with position context.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("query: syntax error at %d: %s", e.Pos, e.Msg)
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < n && input[j] != '"' {
				if input[j] == '\\' && j+1 < n {
					j++
				}
				sb.WriteByte(input[j])
				j++
			}
			if j >= n {
				return nil, &SyntaxError{Pos: i, Msg: "unterminated string"}
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c == ',' || c == '~' || c == '=':
			toks = append(toks, token{tokOp, string(c), i})
			i++
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < n && input[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				j++
			}
			num := input[i:j]
			// Duration suffix?
			k := j
			for k < n && isLetterByte(input[k]) {
				k++
			}
			if k > j {
				suffix := strings.ToLower(input[j:k])
				switch suffix {
				case "ms", "s", "m", "h", "d", "w":
					toks = append(toks, token{tokDuration, num + suffix, i})
					i = k
					continue
				default:
					return nil, &SyntaxError{Pos: j, Msg: fmt.Sprintf("unknown duration unit %q", suffix)}
				}
			}
			toks = append(toks, token{tokNumber, num, i})
			i = j
		case isLetterByte(c):
			j := i
			for j < n && (isLetterByte(input[j]) || input[j] >= '0' && input[j] <= '9' || input[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, strings.ToLower(input[i:j]), i})
			i = j
		default:
			return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", rune(c))}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isLetterByte(b byte) bool {
	return unicode.IsLetter(rune(b))
}
