package query

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/docstore"
	"repro/internal/feature"
)

func TestParseFull(t *testing.T) {
	q, err := Parse(`FIND catalogs
		WHERE text ~ "byzantine gold ring"
		  AND topic = "jewelry"
		  AND similar > 0.7
		  AND fresh < 7d
		TOP 10
		QOS completeness >= 0.8, latency <= 2s, price <= 5`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind == nil || *q.Kind != docstore.KindCatalogEntry {
		t.Fatalf("kind = %v", q.Kind)
	}
	if q.Text != "byzantine gold ring" {
		t.Fatalf("text = %q", q.Text)
	}
	if len(q.Topics) != 1 || q.Topics[0] != "jewelry" {
		t.Fatalf("topics = %v", q.Topics)
	}
	if q.SimThreshold != 0.7 {
		t.Fatalf("sim = %v", q.SimThreshold)
	}
	if q.MaxAge != 7*24*time.Hour {
		t.Fatalf("maxAge = %v", q.MaxAge)
	}
	if q.TopK != 10 {
		t.Fatalf("topK = %d", q.TopK)
	}
	if q.Want.Completeness != 0.8 || q.Want.Latency != 2*time.Second || q.Want.Price != 5 {
		t.Fatalf("qos = %+v", q.Want)
	}
}

func TestParseMinimal(t *testing.T) {
	q, err := Parse(`FIND documents WHERE text ~ "folk dance"`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != nil || q.TopK != 10 {
		t.Fatalf("q = %+v", q)
	}
	q2, err := Parse(`FIND`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Text != "" {
		t.Fatal("bare FIND should parse")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse(`find HOLDINGS where TOPIC = "dance" top 3`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind == nil || *q.Kind != docstore.KindHolding || q.TopK != 3 {
		t.Fatalf("q = %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`WHERE text ~ "x"`,              // missing FIND
		`FIND WHERE text = "x"`,         // wrong operator for text
		`FIND WHERE text ~ unquoted`,    // not a string
		`FIND WHERE similar > 2`,        // out of range
		`FIND WHERE fresh < 10`,         // number, not duration
		`FIND WHERE fresh < "7d"`,       // string, not duration
		`FIND TOP 0`,                    // non-positive
		`FIND TOP many`,                 // not a number
		`FIND QOS completeness > 0.5`,   // wrong op
		`FIND QOS sparkle >= 1`,         // unknown dimension
		`FIND WHERE text ~ "x`,          // unterminated string
		`FIND WHERE elevation = "high"`, // unknown field
		`FIND WHERE fresh < 7y`,         // unknown unit
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Fatalf("expected error for %q", in)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("error for %q is not SyntaxError: %v", in, err)
			}
		}
	}
}

func TestStringRoundtrip(t *testing.T) {
	q := MustParse(`FIND magazines WHERE text ~ "gold" AND topic = "fashion" AND similar > 0.5 AND fresh < 2h TOP 7`)
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if q2.Text != q.Text || q2.TopK != q.TopK || q2.SimThreshold != q.SimThreshold || q2.MaxAge != q.MaxAge {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", q, q2)
	}
}

func buildStore(t *testing.T) *docstore.Store {
	t.Helper()
	s, err := docstore.Open(docstore.Options{ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id string, kind docstore.Kind, title string, topics []string, hot int, at int64, prov string) {
		v := make(feature.Vector, 8)
		v[hot] = 1
		if err := s.Put(&docstore.Document{
			ID: id, Kind: kind, Title: title, Topics: topics,
			Concept: v, CreatedAt: at, Provenance: prov,
		}); err != nil {
			t.Fatal(err)
		}
	}
	hour := int64(time.Hour)
	mk("d1", docstore.KindCatalogEntry, "byzantine gold ring", []string{"jewelry"}, 1, 100*hour, "auction")
	mk("d2", docstore.KindCatalogEntry, "celtic silver brooch", []string{"jewelry"}, 2, 99*hour, "auction")
	mk("d3", docstore.KindArticle, "byzantine gold hoard found", []string{"archaeology"}, 1, 50*hour, "magazine")
	mk("d4", docstore.KindHolding, "gold ring holding", []string{"jewelry"}, 1, 10*hour, "museum")
	return s
}

func TestExecuteFilters(t *testing.T) {
	s := buildStore(t)
	now := int64(100 * time.Hour)

	// Kind filter.
	res := Execute(s, MustParse(`FIND catalogs WHERE text ~ "gold byzantine"`), nil, now)
	for _, r := range res {
		if r.Doc.Kind != docstore.KindCatalogEntry {
			t.Fatalf("kind filter leaked %v", r.Doc.Kind)
		}
	}
	if len(res) == 0 || res[0].Doc.ID != "d1" {
		t.Fatalf("res = %+v", res)
	}

	// Topic filter.
	res = Execute(s, MustParse(`FIND documents WHERE text ~ "gold" AND topic = "jewelry"`), nil, now)
	for _, r := range res {
		if r.Doc.Topics[0] != "jewelry" {
			t.Fatal("topic filter leaked")
		}
	}

	// Source filter.
	res = Execute(s, MustParse(`FIND documents WHERE text ~ "gold" AND source = "museum"`), nil, now)
	if len(res) != 1 || res[0].Doc.ID != "d4" {
		t.Fatalf("source filter: %+v", res)
	}

	// Freshness: only docs newer than 20h.
	res = Execute(s, MustParse(`FIND documents WHERE fresh < 20h`), nil, now)
	for _, r := range res {
		if now-r.Doc.CreatedAt > int64(20*time.Hour) {
			t.Fatalf("stale doc %s leaked", r.Doc.ID)
		}
	}
	if len(res) != 2 {
		t.Fatalf("fresh filter size = %d", len(res))
	}
}

func TestExecuteSimilarity(t *testing.T) {
	s := buildStore(t)
	concept := make(feature.Vector, 8)
	concept[1] = 1
	res := Execute(s, MustParse(`FIND documents WHERE similar > 0.9 TOP 10`), concept, 1<<50)
	if len(res) != 3 {
		t.Fatalf("similar hits = %d, want 3 (d1,d3,d4)", len(res))
	}
	// No concept vector at execution: similarity predicate rejects all.
	res = Execute(s, MustParse(`FIND documents WHERE similar > 0.9`), nil, 1<<50)
	if len(res) != 0 {
		t.Fatal("similarity without concept should match nothing")
	}
}

func TestExecuteTopK(t *testing.T) {
	s := buildStore(t)
	res := Execute(s, MustParse(`FIND documents WHERE text ~ "gold" TOP 1`), nil, 1<<50)
	if len(res) != 1 {
		t.Fatalf("topk = %d", len(res))
	}
}

func TestMergeDedupAndNormalize(t *testing.T) {
	d := func(id string) *docstore.Document { return &docstore.Document{ID: id} }
	listA := []Result{{Doc: d("x"), Score: 10, Source: "a"}, {Doc: d("y"), Score: 5, Source: "a"}}
	listB := []Result{{Doc: d("x"), Score: 0.2, Source: "b"}, {Doc: d("z"), Score: 0.1, Source: "b"}}
	merged := Merge([][]Result{listA, listB}, 10)
	if len(merged) != 3 {
		t.Fatalf("merged = %d", len(merged))
	}
	// x appears once with normalized score 1 (max in both lists).
	if merged[0].Doc.ID != "x" || merged[0].Score != 1 {
		t.Fatalf("best = %+v", merged[0])
	}
	// y normalized to 0.5 within list A beats z's 0.5? z = 0.1/0.2 = 0.5,
	// y = 5/10 = 0.5: tie broken by ID -> y before z.
	if merged[1].Doc.ID != "y" || merged[2].Doc.ID != "z" {
		t.Fatalf("order: %v %v", merged[1].Doc.ID, merged[2].Doc.ID)
	}
	// topK cap.
	if got := Merge([][]Result{listA, listB}, 2); len(got) != 2 {
		t.Fatalf("capped merge = %d", len(got))
	}
}

func TestSplitByTopics(t *testing.T) {
	q := MustParse(`FIND documents WHERE topic = "jewelry" AND topic = "dance" AND text ~ "folk"`)
	subs := q.SplitByTopics()
	if len(subs) != 2 {
		t.Fatalf("subs = %d", len(subs))
	}
	for _, sub := range subs {
		if len(sub.Topics) != 1 || sub.Text != "folk" {
			t.Fatalf("sub = %+v", sub)
		}
	}
	single := MustParse(`FIND documents WHERE text ~ "x"`)
	if got := single.SplitByTopics(); len(got) != 1 {
		t.Fatalf("single split = %d", len(got))
	}
}

func TestCompletenessAndStaleness(t *testing.T) {
	d := func(id string, at int64) Result {
		return Result{Doc: &docstore.Document{ID: id, CreatedAt: at}}
	}
	rel := map[string]bool{"a": true, "b": true, "c": true, "d": true}
	res := []Result{d("a", 100), d("b", 50), d("x", 10)}
	if got := Completeness(res, rel); got != 0.5 {
		t.Fatalf("completeness = %v", got)
	}
	if got := Completeness(nil, nil); got != 1 {
		t.Fatalf("vacuous completeness = %v", got)
	}
	if got := MaxStaleness(res, 110); got != 100*time.Nanosecond {
		t.Fatalf("staleness = %v", got)
	}
	if got := MaxStaleness(nil, 10); got != 0 {
		t.Fatalf("empty staleness = %v", got)
	}
}

func TestExecuteNoTextNoConceptUsesFreshest(t *testing.T) {
	s := buildStore(t)
	res := Execute(s, MustParse(`FIND documents TOP 2`), nil, 1<<50)
	if len(res) != 2 {
		t.Fatalf("res = %d", len(res))
	}
	// Freshest two are d1 (100h) and d2 (99h).
	ids := []string{res[0].Doc.ID, res[1].Doc.ID}
	joined := strings.Join(ids, ",")
	if !strings.Contains(joined, "d1") || !strings.Contains(joined, "d2") {
		t.Fatalf("freshest ids = %v", ids)
	}
}

func TestManyParsedQueriesExecute(t *testing.T) {
	s := buildStore(t)
	queries := []string{
		`FIND documents WHERE text ~ "gold"`,
		`FIND catalogs TOP 2`,
		`FIND documents WHERE topic = "jewelry" AND fresh < 200h`,
		`FIND holdings WHERE text ~ "ring"`,
		`FIND documents QOS completeness >= 0.5`,
	}
	for i, in := range queries {
		q, err := Parse(in)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		_ = Execute(s, q, nil, 1<<50)
	}
	// Fuzz-ish: junk inputs never panic, only error.
	for i := 0; i < 100; i++ {
		junk := fmt.Sprintf("FIND %d WHERE ~ %d", i, i)
		_, _ = Parse(junk)
	}
}

func TestParseNegation(t *testing.T) {
	q, err := Parse(`FIND documents WHERE text ~ "gold" AND NOT topic = "archaeology" AND NOT source = "spamhub"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.NotTopics) != 1 || q.NotTopics[0] != "archaeology" {
		t.Fatalf("notTopics = %v", q.NotTopics)
	}
	if len(q.NotSources) != 1 || q.NotSources[0] != "spamhub" {
		t.Fatalf("notSources = %v", q.NotSources)
	}
	// Negation only supports topic/source.
	if _, err := Parse(`FIND WHERE NOT text ~ "x"`); err == nil {
		t.Fatal("NOT text should be rejected")
	}
	if _, err := Parse(`FIND WHERE NOT topic ~ "x"`); err == nil {
		t.Fatal("NOT topic with wrong op should be rejected")
	}
	// Roundtrips through String().
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if len(q2.NotTopics) != 1 || len(q2.NotSources) != 1 {
		t.Fatalf("roundtrip lost negations: %+v", q2)
	}
}

func TestExecuteNegation(t *testing.T) {
	s := buildStore(t)
	now := int64(1) << 50
	res := Execute(s, MustParse(`FIND documents WHERE text ~ "gold" AND NOT topic = "archaeology"`), nil, now)
	for _, r := range res {
		if r.Doc.ID == "d3" {
			t.Fatal("excluded topic leaked")
		}
	}
	if len(res) == 0 {
		t.Fatal("negation excluded everything")
	}
	res = Execute(s, MustParse(`FIND documents WHERE text ~ "gold" AND NOT source = "museum"`), nil, now)
	for _, r := range res {
		if r.Doc.Provenance == "museum" {
			t.Fatal("excluded source leaked")
		}
	}
}

func TestTopicOnlyQueryFindsBuriedDocs(t *testing.T) {
	s, err := docstore.Open(docstore.Options{ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	old := &docstore.Document{ID: "buried", Title: "old jewel", Topics: []string{"jewelry"}, CreatedAt: 1}
	if err := s.Put(old); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := s.Put(&docstore.Document{
			ID: fmt.Sprintf("f%03d", i), Title: "filler",
			Topics: []string{"news"}, CreatedAt: int64(1000 + i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	res := Execute(s, MustParse(`FIND documents WHERE topic = "jewelry" TOP 5`), nil, 1<<50)
	if len(res) != 1 || res[0].Doc.ID != "buried" {
		t.Fatalf("buried topical doc not found: %v", res)
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(input string) bool {
		// Any input must either parse or return a SyntaxError — never panic.
		q, err := Parse(input)
		if err != nil {
			var se *SyntaxError
			return errors.As(err, &se)
		}
		return q != nil && q.TopK > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// And structured-ish junk around real keywords.
	fragments := []string{"FIND", "WHERE", "AND", "NOT", "TOP", "QOS", `"x"`, "~", "=", "<", ">=", "7d", "0.5", "topic", "text", "fresh"}
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		n := 1 + r.Intn(8)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = fragments[r.Intn(len(fragments))]
		}
		_, _ = Parse(strings.Join(parts, " "))
	}
}
