package query

import (
	"sort"
	"time"

	"repro/internal/docstore"
	"repro/internal/feature"
)

// Local execution of a query against one docstore, plus decomposition and
// merging across sources.

// Result is a scored document from some source.
type Result struct {
	Doc    *docstore.Document
	Score  float64
	Source string
}

// Execute evaluates q against a store. concept is the query's concept
// vector (may be nil when the query has no similarity predicate and text
// scoring suffices). now anchors freshness.
func Execute(s *docstore.Store, q *Query, concept feature.Vector, now int64) []Result {
	// Candidate generation: text search if present, vector search if a
	// concept is given, else freshest documents.
	pool := q.TopK * 5
	if pool < 50 {
		pool = 50
	}
	var hits []docstore.Hit
	switch {
	case q.Text != "" && len(concept) > 0:
		hits = s.SearchHybrid(q.Text, concept, 0.5, pool)
	case q.Text != "":
		hits = s.SearchText(q.Text, pool)
	case len(concept) > 0:
		hits = s.SearchVector(concept, pool)
	case len(q.Topics) > 0:
		// Topic-only query: the topic index finds every carrier, not just
		// whatever happens to be freshest.
		for _, d := range s.ByTopic(q.Topics[0], pool) {
			hits = append(hits, docstore.Hit{Doc: d, Score: 1})
		}
	default:
		for _, d := range s.Freshest(pool) {
			hits = append(hits, docstore.Hit{Doc: d, Score: 1})
		}
	}
	var out []Result
	for _, h := range hits {
		if !matchesFilters(h.Doc, q, concept, now) {
			continue
		}
		out = append(out, Result{Doc: h.Doc, Score: h.Score, Source: h.Doc.Provenance})
	}
	sortResults(out)
	if len(out) > q.TopK {
		out = out[:q.TopK]
	}
	return out
}

func matchesFilters(d *docstore.Document, q *Query, concept feature.Vector, now int64) bool {
	if q.Kind != nil && d.Kind != *q.Kind {
		return false
	}
	for _, want := range q.Topics {
		found := false
		for _, t := range d.Topics {
			if t == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for _, not := range q.NotTopics {
		for _, t := range d.Topics {
			if t == not {
				return false
			}
		}
	}
	for _, not := range q.NotSources {
		if d.Provenance == not {
			return false
		}
	}
	if len(q.Sources) > 0 {
		ok := false
		for _, src := range q.Sources {
			if d.Provenance == src {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if q.SimThreshold > 0 {
		if len(concept) == 0 || feature.Cosine(concept, d.Concept) < q.SimThreshold {
			return false
		}
	}
	if q.MaxAge > 0 {
		cutoff := now - int64(q.MaxAge)
		if d.CreatedAt < cutoff {
			return false
		}
	}
	return true
}

// Merge combines per-source result lists into one ranked top-k, normalizing
// each source's scores into [0,1] (sources use incomparable raw scales) and
// deduplicating by document ID keeping the best score.
func Merge(lists [][]Result, topK int) []Result {
	best := make(map[string]Result)
	for _, list := range lists {
		var max float64
		for _, r := range list {
			if r.Score > max {
				max = r.Score
			}
		}
		for _, r := range list {
			score := r.Score
			if max > 0 {
				score /= max
			}
			cur, ok := best[r.Doc.ID]
			if !ok || score > cur.Score {
				r.Score = score
				best[r.Doc.ID] = r
			}
		}
	}
	out := make([]Result, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	sortResults(out)
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Doc.ID < rs[j].Doc.ID
	})
}

// SplitByTopics decomposes a multi-topic query into one subquery per topic
// — the units brokers subcontract for. A query without topics decomposes
// into itself.
func (q *Query) SplitByTopics() []*Query {
	if len(q.Topics) <= 1 {
		cp := *q
		return []*Query{&cp}
	}
	out := make([]*Query, 0, len(q.Topics))
	for _, t := range q.Topics {
		cp := *q
		cp.Topics = []string{t}
		out = append(out, &cp)
	}
	return out
}

// Completeness measures |returned ∩ relevant| / |relevant| — the QoS
// completeness dimension, given ground-truth relevant ids.
func Completeness(results []Result, relevant map[string]bool) float64 {
	if len(relevant) == 0 {
		return 1
	}
	found := 0
	for _, r := range results {
		if relevant[r.Doc.ID] {
			found++
		}
	}
	return float64(found) / float64(len(relevant))
}

// MaxStaleness returns the maximum age of any result at now (the delivered
// freshness QoS dimension). Empty results are perfectly fresh.
func MaxStaleness(results []Result, now int64) time.Duration {
	var worst int64
	for _, r := range results {
		if age := now - r.Doc.CreatedAt; age > worst {
			worst = age
		}
	}
	if worst < 0 {
		worst = 0
	}
	return time.Duration(worst)
}
