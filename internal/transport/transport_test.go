package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/docstore"
	"repro/internal/feature"
	"repro/internal/wire"
)

func startServer(t testing.TB) (*Server, string) {
	t.Helper()
	st, err := docstore.Open(docstore.Options{ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		v := make(feature.Vector, 8)
		v[i%8] = 1
		if err := st.Put(&docstore.Document{
			ID:      fmt.Sprintf("d%02d", i),
			Title:   fmt.Sprintf("gold ring number %d", i),
			Text:    "byzantine filigree ancient jewelry",
			Concept: v, CreatedAt: int64(i), Provenance: "srv",
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer("museum-tcp", st)
	srv.Logf = t.Logf
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func TestHandshakeAndPing(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, "iris", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.RemoteID != "museum-tcp" {
		t.Fatalf("remote id = %q", c.RemoteID)
	}
	rtt, err := c.Ping(2 * time.Second)
	if err != nil || rtt <= 0 {
		t.Fatalf("ping: %v %v", rtt, err)
	}
}

func TestQueryOverTCP(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, "iris", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("gold ring byzantine", nil, 5, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) == 0 {
		t.Fatal("no items")
	}
	if res.From != "museum-tcp" || res.Items[0].Source != "museum-tcp" {
		t.Fatalf("res = %+v", res)
	}
	if res.Elapsed < 0 {
		t.Fatal("negative elapsed")
	}
}

func TestAQLOverTCP(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, "iris", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query(`FIND documents WHERE text ~ "gold ring" TOP 2`, nil, 10, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2 {
		t.Fatalf("AQL TOP ignored: %d items", len(res.Items))
	}
}

func TestConcurrentQueries(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, "iris", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := c.Query("gold", nil, 3, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if len(res.Items) == 0 {
				errs <- fmt.Errorf("empty result")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFeedSubscription(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr, "iris", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Subscribe("s1", []string{"auction"}, nil, 0); err != nil {
		t.Fatal(err)
	}
	// Give the server a beat to register the subscription.
	time.Sleep(50 * time.Millisecond)
	srv.PublishFeed(&docstore.Document{ID: "new1", Title: "auction catalog item"}, 1)
	srv.PublishFeed(&docstore.Document{ID: "new2", Title: "unrelated magazine"}, 2)
	select {
	case item := <-c.Feed:
		if item.DocID != "new1" {
			t.Fatalf("item = %+v", item)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no feed item")
	}
	// The non-matching item must not arrive.
	select {
	case item := <-c.Feed:
		t.Fatalf("unexpected item %+v", item)
	case <-time.After(200 * time.Millisecond):
	}
	// Unsubscribe stops deliveries.
	if err := c.Unsubscribe("s1"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	srv.PublishFeed(&docstore.Document{ID: "new3", Title: "auction again"}, 3)
	select {
	case item := <-c.Feed:
		t.Fatalf("delivered after unsubscribe: %+v", item)
	case <-time.After(200 * time.Millisecond):
	}
}

func TestMultipleClients(t *testing.T) {
	_, addr := startServer(t)
	var clients []*Client
	for i := 0; i < 5; i++ {
		c, err := Dial(addr, fmt.Sprintf("u%d", i), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	for _, c := range clients {
		if _, err := c.Query("gold", nil, 2, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr, "iris", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Close()
	// Further queries fail promptly rather than hanging.
	if _, err := c.Query("gold", nil, 2, 2*time.Second); err == nil {
		t.Fatal("query after server close should fail")
	}
}

func TestServerSurvivesGarbageBytes(t *testing.T) {
	srv, addr := startServer(t)
	// Raw connection spewing garbage: the server must drop it without
	// crashing or wedging other clients.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("this is not an agora frame at all 1234567890")); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	// A frame with a corrupted checksum likewise.
	raw2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	frame := wire.EncodeFrame(nil, wire.KindQuery, []byte("payload"))
	frame[len(frame)-1] ^= 0xFF
	if _, err := raw2.Write(frame); err != nil {
		t.Fatal(err)
	}
	raw2.Close()

	// A healthy client still gets service.
	c, err := Dial(addr, "iris", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("gold", nil, 3, 2*time.Second); err != nil {
		t.Fatalf("healthy client starved after garbage: %v", err)
	}
	_ = srv
}
