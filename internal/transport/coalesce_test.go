package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/docstore"
	"repro/internal/wire"
)

// gatedWriter blocks every Write until the test releases the gate, and
// records each Write call separately so tests can see batch boundaries.
type gatedWriter struct {
	entered chan struct{} // signalled when a Write starts
	gate    chan struct{} // received once per Write before it completes
	mu      sync.Mutex
	writes  [][]byte
}

func newGatedWriter() *gatedWriter {
	return &gatedWriter{entered: make(chan struct{}, 16), gate: make(chan struct{})}
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	g.entered <- struct{}{}
	<-g.gate
	g.mu.Lock()
	g.writes = append(g.writes, append([]byte(nil), p...))
	g.mu.Unlock()
	return len(p), nil
}

// frames decodes every recorded Write into its constituent frames.
func (g *gatedWriter) frames(t *testing.T) [][]wire.Frame {
	t.Helper()
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([][]wire.Frame, len(g.writes))
	for i, w := range g.writes {
		rest := w
		for len(rest) > 0 {
			f, n, err := wire.DecodeFrame(rest)
			if err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			out[i] = append(out[i], f)
			rest = rest[n:]
		}
	}
	return out
}

// TestCoalescerBatchesWhileWriteInFlight pins the core batching behavior:
// frames staged while a Write is in flight leave together in the next
// Write, and an idle coalescer flushes a lone frame immediately.
func TestCoalescerBatchesWhileWriteInFlight(t *testing.T) {
	g := newGatedWriter()
	q := newCoalescer(g)

	stage := func(id string) {
		if err := q.stage(wire.KindQuery, &wire.Query{ID: id}); err != nil {
			t.Errorf("stage %s: %v", id, err)
		}
	}

	// The first stager finds the link idle, becomes the leader, and blocks
	// inside Write on its own goroutine.
	leaderDone := make(chan struct{})
	go func() { //lint:allow goroutine test leader; joined via leaderDone below
		stage("a")
		close(leaderDone)
	}()
	<-g.entered // leader is now blocked inside Write carrying frame a
	stage("b")  // followers stage and return while the Write is in flight
	stage("c")
	stage("d")
	g.gate <- struct{}{} // release Write(a); the leader loops for the batch
	<-g.entered          // leader re-entered Write with the staged batch
	g.gate <- struct{}{} // release Write(b c d)
	<-leaderDone
	q.close()

	writes := g.frames(t)
	if len(writes) != 2 {
		t.Fatalf("got %d Writes, want 2 (one per batch)", len(writes))
	}
	if len(writes[0]) != 1 || len(writes[1]) != 3 {
		t.Fatalf("batch sizes %d,%d, want 1,3", len(writes[0]), len(writes[1]))
	}
	for i, id := range []string{"b", "c", "d"} {
		got, err := wire.UnmarshalQuery(writes[1][i].Payload)
		if err != nil || got.ID != id {
			t.Fatalf("batch frame %d: id %q err %v, want %q", i, got.ID, err, id)
		}
	}
	st := q.stats()
	if st.Frames != 4 || st.Flushes != 2 {
		t.Fatalf("stats = %+v, want 4 frames over 2 flushes", st)
	}
}

// TestCoalescerCloseDrains pins the no-lost-flush rule: frames staged
// behind an in-flight Write are still written before close returns.
func TestCoalescerCloseDrains(t *testing.T) {
	g := newGatedWriter()
	q := newCoalescer(g)
	leaderDone := make(chan struct{})
	go func() { //lint:allow goroutine test leader; joined via leaderDone below
		if err := q.stage(wire.KindQuery, &wire.Query{ID: "a"}); err != nil {
			t.Error(err)
		}
		close(leaderDone)
	}()
	<-g.entered // leader blocked inside Write(a)
	if err := q.stage(wire.KindQuery, &wire.Query{ID: "b"}); err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() { //lint:allow goroutine test helper; joined via closed channel below
		q.close()
		close(closed)
	}()
	g.gate <- struct{}{} // release Write(a); the leader's drain then writes b
	<-g.entered
	g.gate <- struct{}{}
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("close did not return after drain")
	}
	<-leaderDone
	writes := g.frames(t)
	total := 0
	for _, w := range writes {
		total += len(w)
	}
	if total != 2 {
		t.Fatalf("%d frames written, want 2 (frame staged before close was lost)", total)
	}
	if err := q.stage(wire.KindQuery, &wire.Query{ID: "late"}); !errors.Is(err, errCoalescerClosed) {
		t.Fatalf("stage after close = %v, want errCoalescerClosed", err)
	}
}

// errWriter fails every Write.
type errWriter struct{ calls atomic.Uint64 }

func (e *errWriter) Write(p []byte) (int, error) {
	e.calls.Add(1)
	return 0, errors.New("boom")
}

// TestCoalescerWriteErrorSticks pins error propagation: after a Write
// fails, staging reports the error instead of buffering forever.
func TestCoalescerWriteErrorSticks(t *testing.T) {
	w := &errWriter{}
	q := newCoalescer(w)
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := q.stage(wire.KindQuery, &wire.Query{ID: "x"})
		if err != nil {
			if err.Error() != "boom" {
				t.Fatalf("stage error = %v, want the write error", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stage never surfaced the write error")
		}
		time.Sleep(time.Millisecond)
	}
	if err := q.close(); err == nil || err.Error() != "boom" {
		t.Fatalf("close error = %v, want the sticky write error", err)
	}
	if w.calls.Load() == 0 {
		t.Fatal("writer never called")
	}
}

// TestClientCoalescerStress drives concurrent Query, TermStats, and a
// feed subscription over ONE client connection — under -race this is the
// demux-correctness and coalescer-interleaving test the satellite asks
// for. Every response must come back on the right channel with the right
// content while frames from all senders share batches.
func TestClientCoalescerStress(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr, "stress", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Subscribe("s1", []string{"emerald"}, nil, 0); err != nil {
		t.Fatal(err)
	}
	// The subscribe frame is on the wire, but the server registers it
	// asynchronously; wait for that before publishing.
	for deadline := time.Now().Add(2 * time.Second); ; {
		srv.mu.Lock()
		n := len(srv.subs)
		srv.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(time.Millisecond)
	}
	feedDone := make(chan int)
	go func() { //lint:allow goroutine test feed consumer; joined via feedDone below
		n := 0
		timeout := time.After(5 * time.Second)
		for n < 10 {
			select {
			case <-c.Feed:
				n++
			case <-timeout:
				feedDone <- n
				return
			}
		}
		feedDone <- n
	}()

	var wg sync.WaitGroup
	errc := make(chan error, 128)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() { //lint:allow goroutine test load generator; joined via wg.Wait below
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := c.Query("gold ring", nil, 5, 5*time.Second)
				if err != nil {
					errc <- fmt.Errorf("query: %w", err)
					return
				}
				if len(res.Items) == 0 || res.From != "museum-tcp" {
					errc <- fmt.Errorf("query demux: %d items from %q", len(res.Items), res.From)
					return
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() { //lint:allow goroutine test load generator; joined via wg.Wait below
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := c.TermStats([]string{"gold", "ring"}, 5*time.Second)
				if err != nil {
					errc <- fmt.Errorf("termstats: %w", err)
					return
				}
				if resp.Total != 20 || len(resp.DF) != 2 {
					errc <- fmt.Errorf("termstats demux: total=%d df=%d", resp.Total, len(resp.DF))
					return
				}
			}
		}()
	}
	// Feed pushes interleave with the request/response traffic.
	for i := 0; i < 10; i++ {
		srv.PublishFeed(&docstore.Document{
			ID:    fmt.Sprintf("feed%02d", i),
			Title: fmt.Sprintf("emerald pendant %d", i),
			Text:  "emerald",
		}, uint64(i))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if n := <-feedDone; n != 10 {
		t.Errorf("feed items received = %d, want 10", n)
	}
	st := c.WireStats()
	if st.Frames < 200 { // hello + subscribe + 160 queries + 40 stats
		t.Errorf("client staged %d frames, expected >= 200", st.Frames)
	}
	if st.Flushes > st.Frames {
		t.Errorf("flushes %d > frames %d", st.Flushes, st.Frames)
	}
}

// TestCloseFlushesStagedQueries pins the client-side no-lost-flush rule
// end to end: queries staged immediately before Close still reach the
// server, observable through its Served counter (which survives the
// connection teardown).
func TestCloseFlushesStagedQueries(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr, "closer", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		q := wire.Query{ID: fmt.Sprintf("fire%d", i), Text: "gold", TopK: 1}
		if err := c.out.stage(wire.KindQuery, &q); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Served() < n {
		if time.Now().After(deadline) {
			t.Fatalf("server served %d of %d queries staged before Close", srv.Served(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := srv.WireStats()
	if st.Frames == 0 {
		t.Error("server WireStats recorded no frames")
	}
}

// TestServerBatchesConcurrentResults sanity-checks the server-side
// coalescer: under concurrent queries on one connection, results go out
// in fewer Writes than frames (batching engaged), visible in WireStats.
func TestServerBatchesConcurrentResults(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr, "batcher", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() { //lint:allow goroutine test load generator; joined via wg.Wait below
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := c.Query("gold ring", nil, 5, 5*time.Second); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := srv.WireStats()
	if st.Frames < 160 {
		t.Fatalf("server staged %d frames, want >= 160", st.Frames)
	}
	// Not asserting a batching ratio: on an unloaded fast loopback the
	// leader can keep up frame-for-frame. The ratio is measured (not
	// asserted) in E27 where contention is deliberately induced.
	t.Logf("server wire stats: %d frames in %d flushes (%.2f frames/syscall)",
		st.Frames, st.Flushes, float64(st.Frames)/float64(st.Flushes))
}

// legacyDial opens a raw connection speaking the pre-coalescer protocol:
// one WriteFrame per message, ReadFrame for everything, allocating
// Marshal buffers — exactly what an old peer does on the wire.
func legacyDial(addr string) (net.Conn, *bufio.Reader, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, nil, err
	}
	hello := wire.Hello{NodeID: "legacy"}
	if err := wire.WriteFrame(conn, wire.KindHello, hello.Marshal()); err != nil {
		conn.Close()
		return nil, nil, err
	}
	r := bufio.NewReader(conn)
	f, err := wire.ReadFrame(r)
	if err != nil || f.Kind != wire.KindHelloAck {
		conn.Close()
		return nil, nil, fmt.Errorf("legacy handshake: %v", err)
	}
	return conn, r, nil
}

// TestLegacyClientAgainstCoalescedServer verifies the legacy single-frame
// writer still interoperates with the coalesced server read path (old
// peer -> new server): same bytes, same answers.
func TestLegacyClientAgainstCoalescedServer(t *testing.T) {
	_, addr := startServer(t)
	conn, r, err := legacyDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := wire.Query{ID: "legacy1", Text: "gold ring", TopK: 3}
	if err := wire.WriteFrame(conn, wire.KindQuery, q.Marshal()); err != nil {
		t.Fatal(err)
	}
	for {
		f, err := wire.ReadFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if f.Kind != wire.KindQueryResult {
			continue
		}
		res, err := wire.UnmarshalQueryResult(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if res.QueryID != "legacy1" || len(res.Items) == 0 {
			t.Fatalf("legacy roundtrip: id=%q items=%d", res.QueryID, len(res.Items))
		}
		return
	}
}
