package transport

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// errCoalescerClosed reports a stage after Close.
var errCoalescerClosed = errors.New("transport: connection closed")

// maxStagingBuf bounds how much staging capacity a connection retains after
// a flush; a batch that grew past this (a burst of large results) is
// released back to the allocator rather than pinned forever.
const maxStagingBuf = 1 << 20

// coalescer batches frame writes on one connection using the same
// leader/follower shape as the WAL group commit: a sender that finds no
// flush in flight becomes the leader and issues the Write from its own
// goroutine; senders that stage while the leader's syscall is in flight
// return immediately, and the leader loops to carry their frames in the
// next Write — one syscall per batch, not per frame. Flush-on-idle is
// structural: a lone frame under light load goes out synchronously on the
// stager's own goroutine, exactly like the unbatched path. Batching
// emerges only while a Write is already in flight, which is exactly when
// it pays.
//
// Leader-flush rather than a dedicated flusher goroutine matters on small
// hosts: handing every frame to another goroutine costs a scheduler
// wakeup per syscall, and when a CPU-bound epoch freeze is hogging the
// only core each handoff can stall for a full preemption quantum — the
// tail of every ask racing an ingest. The leader path keeps the idle-link
// frame count at zero handoffs, same as writing the socket directly.
//
// The two staging buffers ping-pong: while the leader writes one, senders
// append to the other, so the steady state stages frames with zero
// allocations (wire.AppendFrame + the append-style marshals).
type coalescer struct {
	w io.Writer

	mu       sync.Mutex
	idle     sync.Cond // signalled when flushing drops to false
	buf      []byte    // frames staged since the last swap
	spare    []byte    // buffer the leader returns for reuse
	err      error     // first write error, sticky
	closed   bool
	flushing bool // a leader is draining the staging buffer

	// frames staged / Write syscalls issued, for the syscalls-per-frame
	// trajectory in E27 and the coalescer tests.
	frames  atomic.Uint64
	flushes atomic.Uint64
}

func newCoalescer(w io.Writer) *coalescer {
	q := &coalescer{w: w}
	q.idle.L = &q.mu
	return q
}

// stage appends one framed message to the staging buffer and ensures a
// flush is in motion: the caller becomes the leader if none is active.
// The message is fully encoded before stage returns, so callers may pass
// Appenders whose fields alias reused buffers (FrameReader payloads) —
// nothing is retained.
func (q *coalescer) stage(kind wire.Kind, m wire.Appender) error {
	q.mu.Lock()
	if err := q.stageErr(); err != nil {
		q.mu.Unlock()
		return err
	}
	q.buf = wire.AppendFrame(q.buf, kind, m)
	q.frames.Add(1)
	return q.flushLocked()
}

// stageBytes is stage for the cold messages that still marshal to a
// standalone payload slice (hello, ping, subscribe control frames).
func (q *coalescer) stageBytes(kind wire.Kind, payload []byte) error {
	q.mu.Lock()
	if err := q.stageErr(); err != nil {
		q.mu.Unlock()
		return err
	}
	q.buf = wire.EncodeFrame(q.buf, kind, payload)
	q.frames.Add(1)
	return q.flushLocked()
}

// stageErr reports why staging is refused; callers hold q.mu.
func (q *coalescer) stageErr() error {
	if q.closed {
		return errCoalescerClosed
	}
	return q.err
}

// flushLocked is called with q.mu held and releases it. If a leader is
// already draining, the staged frame rides that leader's next Write and
// the caller returns immediately (its write error, if any, surfaces on a
// later stage or on close — same fire-and-forget contract as before). If
// the link is idle the caller takes the leader role: swap the staging
// buffer, Write it without the lock, and loop until nothing new was
// staged during the syscall.
func (q *coalescer) flushLocked() error {
	if q.flushing {
		q.mu.Unlock()
		return nil
	}
	q.flushing = true
	for len(q.buf) > 0 && q.err == nil {
		batch := q.buf
		q.buf = q.spare[:0]
		q.spare = nil
		q.mu.Unlock()

		_, err := q.w.Write(batch)
		q.flushes.Add(1)

		q.mu.Lock()
		if err != nil && q.err == nil {
			q.err = err
		}
		if cap(batch) <= maxStagingBuf {
			q.spare = batch[:0]
		}
	}
	if q.err != nil {
		q.buf = q.buf[:0] // the connection is dead; drop what's staged
	}
	q.flushing = false
	err := q.err
	q.idle.Broadcast()
	q.mu.Unlock()
	return err
}

// close waits for any in-flight leader to drain the staged frames, then
// returns the connection's sticky write error, if any. No frame staged
// before close is lost: a non-empty staging buffer always has an active
// leader (stage never returns without one), so once the leader exits the
// buffer is either fully written or abandoned to a sticky error.
func (q *coalescer) close() error {
	q.mu.Lock()
	q.closed = true
	for q.flushing {
		q.idle.Wait()
	}
	err := q.err
	q.mu.Unlock()
	return err
}

// WireStats counts traffic through one coalesced connection: Frames staged
// and Flushes (Write syscalls) that carried them. Flushes/Frames < 1 is
// the batching win; == 1 means every frame went out alone (idle link).
type WireStats struct {
	Frames  uint64
	Flushes uint64
}

func (q *coalescer) stats() WireStats {
	return WireStats{Frames: q.frames.Load(), Flushes: q.flushes.Load()}
}
