package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestTelemetryUnderLoad drives one server from 8 concurrent clients and
// checks the telemetry snapshot for coherence: the request counter must
// equal the number of queries issued, the latency histogram must have
// observed exactly that many samples, and quantiles must be monotone.
// Run with -race: this is the tentpole's concurrency proof.
func TestTelemetryUnderLoad(t *testing.T) {
	srv, addr := startServer(t)
	reg := telemetry.NewRegistry()
	srv.SetTelemetry(reg)

	const (
		goroutines = 8
		perClient  = 25
	)
	var issued atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := DialWithTelemetry(addr, "load-client", 5*time.Second, reg)
			if err != nil {
				t.Errorf("client %d: dial: %v", id, err)
				return
			}
			defer c.Close()
			for q := 0; q < perClient; q++ {
				if _, err := c.Query("gold ring byzantine", nil, 5, 5*time.Second); err != nil {
					t.Errorf("client %d query %d: %v", id, q, err)
					return
				}
				issued.Add(1)
			}
		}(g)
	}
	// A concurrent reader exercises snapshot-vs-write races under -race.
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = reg.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()

	want := issued.Load()
	if want != goroutines*perClient {
		t.Fatalf("only %d of %d queries issued (earlier errors above)", want, goroutines*perClient)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["transport.server.queries"]; got != want {
		t.Fatalf("server query counter = %d, want %d", got, want)
	}
	if got := snap.Counters["transport.client.queries"]; got != want {
		t.Fatalf("client query counter = %d, want %d", got, want)
	}
	if got := srv.Served(); got != want {
		t.Fatalf("srv.Served() = %d, want %d", got, want)
	}
	h, ok := snap.Histograms["transport.server.query"]
	if !ok {
		t.Fatal("no server query histogram")
	}
	if h.Count != want {
		t.Fatalf("histogram count = %d, want counter %d", h.Count, want)
	}
	if !(h.P50 <= h.P95 && h.P95 <= h.P99 && h.P99 <= h.Max) {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v max=%v", h.P50, h.P95, h.P99, h.Max)
	}
	if h.Min < 0 || h.Min > h.P50 {
		t.Fatalf("min incoherent: min=%v p50=%v", h.Min, h.P50)
	}
	rtt, ok := snap.Histograms["transport.client.query"]
	if !ok || rtt.Count != want {
		t.Fatalf("client RTT histogram count = %d, want %d", rtt.Count, want)
	}
}

// TestServedCountersRaceFree is the regression test for the bare-uint64
// counter race: Served/Delivered are read concurrently with serving
// goroutines incrementing them. Before the atomic.Uint64 migration this
// failed under -race.
func TestServedCountersRaceFree(t *testing.T) {
	srv, addr := startServer(t)

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = srv.Served()
				_ = srv.Delivered()
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, "race-client", 5*time.Second)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			for q := 0; q < 10; q++ {
				if _, err := c.Query("gold ring", nil, 3, 5*time.Second); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	if got := srv.Served(); got != 40 {
		t.Fatalf("served = %d, want 40", got)
	}
}
