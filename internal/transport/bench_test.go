package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/docstore"
	"repro/internal/feature"
	"repro/internal/query"
	"repro/internal/wire"
)

// BenchmarkQueryRoundtrip measures one query round-trip over real TCP on
// the coalesced zero-alloc path (AppendTo staging on both sides,
// FrameReader pooled reads). allocs/op is process-wide — it counts the
// server's search and response encode too — which is exactly the number
// the legacy benchmark below is compared against.
func BenchmarkQueryRoundtrip(b *testing.B) {
	_, addr := startServer(b)
	c, err := Dial(addr, "bench", 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("gold ring", nil, 5, 5*time.Second); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query("gold ring", nil, 5, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryRoundtripLegacy is the pre-batching wire path end to end:
// a raw WriteFrame/ReadFrame client against a mini-server replicating the
// old transport loop (Marshal per response, WriteFrame per frame,
// allocating reads). The delta against BenchmarkQueryRoundtrip is the
// tentpole's allocs/op and ns/op win on identical search work.
func BenchmarkQueryRoundtripLegacy(b *testing.B) {
	addr := startLegacyServer(b)
	conn, r, err := legacyDial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	// Per-query bookkeeping replicates the PR-9 client faithfully: a
	// fmt.Sprintf-minted id, a fresh result channel registered in a pending
	// map, a time.After timer armed per wait, and the allocating
	// Marshal/WriteFrame/ReadFrame/Unmarshal wire path.
	var (
		mu      sync.Mutex
		nextID  uint64
		pending = map[string]chan wire.QueryResult{}
	)
	roundtrip := func() {
		mu.Lock()
		nextID++
		id := fmt.Sprintf("q%d", nextID)
		ch := make(chan wire.QueryResult, 1)
		pending[id] = ch
		mu.Unlock()
		q := wire.Query{ID: id, Text: "gold ring", TopK: 5}
		if err := wire.WriteFrame(conn, wire.KindQuery, q.Marshal()); err != nil {
			b.Fatal(err)
		}
		f, err := wire.ReadFrame(r)
		if err != nil || f.Kind != wire.KindQueryResult {
			b.Fatalf("legacy roundtrip: %v %v", f.Kind, err)
		}
		res, err := wire.UnmarshalQueryResult(f.Payload)
		if err != nil {
			b.Fatal(err)
		}
		mu.Lock()
		rch, ok := pending[res.QueryID]
		delete(pending, res.QueryID)
		mu.Unlock()
		if !ok {
			b.Fatalf("legacy demux: unknown id %q", res.QueryID)
		}
		rch <- res
		timeout := time.After(5 * time.Second)
		select {
		case <-rch:
		case <-timeout:
			b.Fatal("legacy wait timed out")
		}
	}
	roundtrip()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundtrip()
	}
}

// BenchmarkQueryRoundtripBatched drives 8 concurrent askers over one
// client connection: the coalescer's natural batching regime, where
// frames staged during an in-flight Write share the next syscall.
func BenchmarkQueryRoundtripBatched(b *testing.B) {
	srv, addr := startServer(b)
	c, err := Dial(addr, "bench", 2*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("gold ring", nil, 5, 5*time.Second); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / 8
	for g := 0; g < 8; g++ {
		n := per
		if g == 0 {
			n += b.N % 8
		}
		wg.Add(1)
		go func(n int) { //lint:allow goroutine bench load generator; joined via wg.Wait below
			defer wg.Done()
			for i := 0; i < n; i++ {
				if _, err := c.Query("gold ring", nil, 5, 5*time.Second); err != nil {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	b.StopTimer()
	// The client's sends are response-paced (each asker waits before asking
	// again), so batching mostly materializes on the server's result path.
	if st := srv.WireStats(); st.Flushes > 0 {
		b.ReportMetric(float64(st.Frames)/float64(st.Flushes), "srv-frames/flush")
	}
	if st := c.WireStats(); st.Flushes > 0 {
		b.ReportMetric(float64(st.Frames)/float64(st.Flushes), "cli-frames/flush")
	}
}

// startLegacyServer serves the pre-coalescer transport loop on a fresh
// listener: the "before" half of the wire-path before/after comparison.
func startLegacyServer(b *testing.B) string {
	b.Helper()
	st, err := docstore.Open(docstore.Options{ConceptDim: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := st.Put(&docstore.Document{
			ID: "d" + string(rune('a'+i%26)) + string(rune('a'+i/26)), Title: "gold ring",
			Text: "byzantine filigree ancient jewelry", CreatedAt: int64(i), Provenance: "srv",
		}); err != nil {
			b.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { //lint:allow goroutine bench legacy accept loop; joined via wg.Wait in Cleanup
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() { //lint:allow goroutine bench legacy conn loop; joined via wg.Wait in Cleanup
				defer wg.Done()
				legacyServe(conn, st, stop)
			}()
		}
	}()
	b.Cleanup(func() {
		close(stop)
		ln.Close()
		wg.Wait()
	})
	return ln.Addr().String()
}

// legacyServe replicates the old per-connection loop byte for byte: one
// allocating ReadFrame per message, Marshal + WriteFrame (one syscall)
// per response, under a per-connection write mutex.
func legacyServe(conn net.Conn, st *docstore.Store, stop chan struct{}) {
	defer conn.Close()
	var wmu sync.Mutex
	send := func(kind wire.Kind, payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		return wire.WriteFrame(conn, kind, payload)
	}
	r := bufio.NewReader(conn)
	for {
		select {
		case <-stop:
			return
		default:
		}
		f, err := wire.ReadFrame(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				return
			}
			return
		}
		switch f.Kind {
		case wire.KindHello:
			ack := wire.Hello{NodeID: "legacy-srv"}
			if send(wire.KindHelloAck, ack.Marshal()) != nil {
				return
			}
		case wire.KindQuery:
			wq, err := wire.UnmarshalQuery(f.Payload)
			if err != nil {
				return
			}
			q := &query.Query{Text: wq.Text, TopK: int(wq.TopK)}
			if q.TopK <= 0 {
				q.TopK = 10
			}
			resp := wire.QueryResult{QueryID: wq.ID, From: "legacy-srv"}
			for _, res := range query.Execute(st, q, feature.Vector(wq.Concept), 0) {
				resp.Items = append(resp.Items, wire.ResultItem{
					DocID: res.Doc.ID, Source: "legacy-srv", Score: res.Score, Snippet: res.Doc.Snippet(80),
				})
			}
			if send(wire.KindQueryResult, resp.Marshal()) != nil {
				return
			}
		}
	}
}
