// Package transport runs agora nodes over real TCP sockets using the wire
// codec — the deployment path proving the protocols work outside the
// simulator. cmd/agora-node serves a document store; cmd/agora-query is the
// matching consumer CLI.
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/docstore"
	"repro/internal/feature"
	"repro/internal/query"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Server exposes one docstore as an agora provider on TCP.
type Server struct {
	NodeID string
	Store  *docstore.Store
	// ShardStart/ShardEnd advertise the shard key range this node's corpus
	// partition covers (announced in the HelloAck). Both zero = unsharded.
	ShardStart uint64
	ShardEnd   uint64
	// Log is the leveled logger for server events (read errors, malformed
	// frames). Defaults to telemetry.DefaultLogger(); nil silences.
	Log *telemetry.Logger
	// Logf, when set, overrides Log for every message (test hook).
	Logf func(format string, args ...any)
	// TuneConn, when set, is applied to every accepted connection before
	// serving — socket-level tuning (SetNoDelay, SetWriteBuffer, …). Set
	// it before calling Serve; it is read from the accept loop without
	// locking.
	TuneConn func(net.Conn)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]*connState
	subs   map[string]*subscription // subID -> sub
	closed bool
	wg     sync.WaitGroup

	// served/delivered are incremented from per-connection goroutines and
	// read by operators mid-flight (shutdown logging, debug endpoints) —
	// atomics, not bare fields, or -race rightly objects.
	served    atomic.Uint64
	delivered atomic.Uint64
	telPtr    atomic.Pointer[serverTel]

	// Coalescer counters for connections already torn down; WireStats adds
	// the live ones on top.
	retiredFrames  atomic.Uint64
	retiredFlushes atomic.Uint64
}

// serverTel caches resolved telemetry instruments for the request path.
// reg is kept so serveQuery can continue an inbound distributed trace.
type serverTel struct {
	queries, feedDelivered, conns, readErrors *telemetry.Counter
	queryLat                                  *telemetry.Histogram
	reg                                       *telemetry.Registry
}

// SetTelemetry registers the server's instruments in reg. Safe to call at
// any time, including while serving. Nil reg disables instrumentation.
func (s *Server) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.telPtr.Store(nil)
		return
	}
	s.telPtr.Store(&serverTel{
		queries:       reg.Counter("transport.server.queries"),
		feedDelivered: reg.Counter("transport.server.feed.delivered"),
		conns:         reg.Counter("transport.server.conns"),
		readErrors:    reg.Counter("transport.server.read.errors"),
		queryLat:      reg.Histogram("transport.server.query"),
		reg:           reg,
	})
}

// tel returns the current instrument set; the zero value (all nil
// instruments, every call a no-op) when telemetry is disabled.
func (s *Server) tel() serverTel {
	if t := s.telPtr.Load(); t != nil {
		return *t
	}
	return serverTel{}
}

// Served returns how many queries the server has answered.
func (s *Server) Served() uint64 { return s.served.Load() }

// Delivered returns how many feed items have been pushed to subscribers.
func (s *Server) Delivered() uint64 { return s.delivered.Load() }

type connState struct {
	conn net.Conn
	out  *coalescer
}

type subscription struct {
	sub  wire.Subscribe
	conn *connState
}

// NewServer wraps a store.
func NewServer(nodeID string, store *docstore.Store) *Server {
	return &Server{
		NodeID: nodeID,
		Store:  store,
		Log:    telemetry.DefaultLogger(),
		conns:  make(map[net.Conn]*connState),
		subs:   make(map[string]*subscription),
	}
}

// warnf routes a warning through Logf when set (tests), the leveled logger
// otherwise.
func (s *Server) warnf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	s.Log.Warnf(format, args...)
}

// Serve accepts connections on ln until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("transport: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		if s.TuneConn != nil {
			s.TuneConn(conn)
		}
		cs := &connState{conn: conn, out: newCoalescer(conn)}
		s.tel().conns.Inc()
		s.mu.Lock()
		s.conns[conn] = cs
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(cs)
		}()
	}
}

// Close stops the server and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) dropConn(cs *connState) {
	s.mu.Lock()
	delete(s.conns, cs.conn)
	for id, sub := range s.subs {
		if sub.conn == cs {
			delete(s.subs, id)
		}
	}
	s.mu.Unlock()
	// Bound the drain like Client.Close does: the read side already
	// failed, and a peer that stopped reading must not wedge teardown.
	// During Server.Close the conn is already closed — the drain below
	// is a no-op then, so a failed arm is only worth a warning when the
	// conn was live.
	if err := cs.conn.SetWriteDeadline(time.Now().Add(2 * time.Second)); err != nil && !errors.Is(err, net.ErrClosed) {
		s.warnf("transport: arming teardown deadline: %v", err)
	}
	//lint:allow checkederr the conn is being dropped because it already failed; the drain error repeats that failure
	cs.out.close()
	st := cs.out.stats()
	s.retiredFrames.Add(st.Frames)
	s.retiredFlushes.Add(st.Flushes)
	cs.conn.Close()
}

// send stages a cold control frame; hot responses stage Appenders through
// cs.out directly.
func (s *Server) send(cs *connState, kind wire.Kind, payload []byte) error {
	return cs.out.stageBytes(kind, payload)
}

// WireStats aggregates coalescer counters across every connection the
// server has carried, live and retired.
func (s *Server) WireStats() WireStats {
	st := WireStats{
		Frames:  s.retiredFrames.Load(),
		Flushes: s.retiredFlushes.Load(),
	}
	s.mu.Lock()
	for _, cs := range s.conns {
		c := cs.out.stats()
		st.Frames += c.Frames
		st.Flushes += c.Flushes
	}
	s.mu.Unlock()
	return st
}

func (s *Server) handle(cs *connState) {
	defer s.dropConn(cs)
	fr := wire.NewFrameReader(bufio.NewReader(cs.conn))
	for {
		f, err := fr.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.tel().readErrors.Inc()
				s.warnf("transport: %s: read: %v", cs.conn.RemoteAddr(), err)
			}
			return
		}
		switch f.Kind {
		case wire.KindHello:
			hello, err := wire.UnmarshalHello(f.Payload)
			if err != nil {
				s.warnf("transport: bad hello: %v", err)
				return
			}
			ack := wire.Hello{
				NodeID: s.NodeID, Topics: nil, Capacity: int64(s.Store.Len()),
				ShardStart: s.ShardStart, ShardEnd: s.ShardEnd,
			}
			if err := s.send(cs, wire.KindHelloAck, ack.Marshal()); err != nil {
				return
			}
			_ = hello
		case wire.KindPing:
			if err := s.send(cs, wire.KindPong, f.Payload); err != nil {
				return
			}
		case wire.KindQuery:
			s.serveQuery(cs, f.Payload)
		case wire.KindTermStats:
			req, err := wire.UnmarshalTermStatsReqShared(f.Payload)
			if err != nil {
				s.warnf("transport: bad term stats req: %v", err)
				continue
			}
			total, epoch, stats := s.Store.TermStats(req.Terms)
			resp := wire.TermStatsResp{
				ID: req.ID, Total: total, Epoch: epoch,
				DF:       make([]uint64, len(stats)),
				MaxRatio: make([]float64, len(stats)),
			}
			for i, st := range stats {
				resp.DF[i] = st.DF
				resp.MaxRatio[i] = st.MaxRatio
			}
			if err := cs.out.stage(wire.KindTermStatsResult, &resp); err != nil {
				s.warnf("transport: send term stats: %v", err)
			}
		case wire.KindSubscribe:
			sub, err := wire.UnmarshalSubscribe(f.Payload)
			if err != nil {
				s.warnf("transport: bad subscribe: %v", err)
				continue
			}
			s.mu.Lock()
			s.subs[sub.SubID] = &subscription{sub: sub, conn: cs}
			s.mu.Unlock()
		case wire.KindUnsubscribe:
			s.mu.Lock()
			delete(s.subs, string(f.Payload))
			s.mu.Unlock()
		default:
			s.warnf("transport: unexpected frame %v", f.Kind)
		}
	}
}

func (s *Server) serveQuery(cs *connState, payload []byte) {
	// Shared-string decode: payload is the FrameReader's pooled buffer,
	// valid only for this call; the shared backing is an owned copy.
	wq, err := wire.UnmarshalQueryShared(payload)
	if err != nil {
		s.warnf("transport: bad query: %v", err)
		return
	}
	start := time.Now()
	tel := s.tel()
	// Continue the caller's distributed trace (fresh local trace when the
	// query carried no context). Everything no-ops if telemetry is off.
	tr := tel.reg.StartTraceFrom(telemetry.TraceContext{
		TraceID: telemetry.TraceID(wq.TraceID),
		SpanID:  telemetry.SpanID(wq.SpanID),
	}, "serve", wq.Text)
	resp := wire.QueryResult{
		QueryID: wq.ID, From: s.NodeID,
		TraceID: uint64(tr.ID()), Epoch: s.Store.Epoch(),
	}
	if wq.GlobalDocs > 0 {
		// Scatter path: a shard router supplied corpus-wide statistics, so
		// score the plain-text query directly against the store under global
		// idf weights (the AQL/fusion pipeline is a single-node concern).
		topK := int(wq.TopK)
		if topK <= 0 {
			topK = 10
		}
		gs := &docstore.GlobalStats{TotalDocs: wq.GlobalDocs, Terms: wq.StatsTerms, DF: wq.StatsDF}
		sp := tr.Span("search-global", wq.ID)
		hits := s.Store.SearchTextGlobal(wq.Text, topK, gs)
		sp.End()
		resp.Items = make([]wire.ResultItem, 0, len(hits))
		for _, h := range hits {
			resp.Items = append(resp.Items, wire.ResultItem{
				DocID: h.Doc.ID, Source: s.NodeID, Score: h.Score, Snippet: h.Doc.Snippet(80),
			})
		}
	} else {
		var q *query.Query
		if wq.Text != "" && wq.Text[0] == 'F' || len(wq.Text) > 5 && wq.Text[:5] == "find " {
			// Allow full AQL in the text field.
			if parsed, perr := query.Parse(wq.Text); perr == nil {
				q = parsed
			}
		}
		if q == nil {
			q = &query.Query{Text: wq.Text, TopK: int(wq.TopK)}
			if q.TopK <= 0 {
				q.TopK = 10
			}
		}
		sp := tr.Span("search", wq.ID)
		results := query.Execute(s.Store, q, feature.Vector(wq.Concept), time.Now().UnixNano())
		sp.End()
		resp.Items = make([]wire.ResultItem, 0, len(results))
		for _, r := range results {
			resp.Items = append(resp.Items, wire.ResultItem{
				DocID: r.Doc.ID, Source: s.NodeID, Score: r.Score, Snippet: r.Doc.Snippet(80),
			})
		}
	}
	resp.Elapsed = time.Since(start).Seconds()
	s.served.Add(1)
	tel.queries.Inc()
	tel.queryLat.ObserveExemplar(time.Since(start), tr.ID())
	if err := cs.out.stage(wire.KindQueryResult, &resp); err != nil {
		s.warnf("transport: send result: %v", err)
		tr.Fail(err)
	}
	tr.Finish()
}

// PublishFeed pushes a new document to matching subscribers (callers invoke
// it after ingesting content).
func (s *Server) PublishFeed(d *docstore.Document, seq uint64) {
	item := wire.FeedItem{
		FeedID: s.NodeID, DocID: d.ID, Source: s.NodeID,
		Text: d.Title + " " + d.Text, Concept: d.Concept, Seq: seq,
	}
	tokens := feature.Tokenize(item.Text)
	tokenSet := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		tokenSet[t] = true
	}
	s.mu.Lock()
	var targets []*connState
	for _, sub := range s.subs {
		if matchesSub(sub.sub, tokenSet, d.Concept) {
			targets = append(targets, sub.conn)
		}
	}
	s.mu.Unlock()
	for _, cs := range targets {
		if err := cs.out.stage(wire.KindFeedItem, &item); err == nil {
			s.delivered.Add(1)
			s.tel().feedDelivered.Inc()
		}
	}
}

func matchesSub(sub wire.Subscribe, tokenSet map[string]bool, concept feature.Vector) bool {
	for _, t := range sub.Terms {
		for _, tok := range feature.Tokenize(t) {
			if !tokenSet[tok] {
				return false
			}
		}
	}
	if len(sub.Concept) > 0 {
		if len(concept) == 0 {
			return false
		}
		if feature.Cosine(feature.Vector(sub.Concept), concept) < sub.Threshold {
			return false
		}
	}
	return true
}
