package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/feature"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Client is a consumer connection to one agora node over TCP. All sends
// ride a per-connection write coalescer (see coalescer): concurrent
// queries, stats requests, and hedges staged while a Write is in flight
// leave in one batched syscall.
type Client struct {
	conn   net.Conn
	r      *bufio.Reader
	out    *coalescer
	mu     sync.Mutex
	nextID uint64

	// pending query results by query id.
	pending map[string]chan wire.QueryResult
	// pendingStats demuxes term-stats responses by request id.
	pendingStats map[string]chan wire.TermStatsResp
	// pongs signals pong arrival; the payload echoes the ping and carries
	// no information, so only the event crosses (the frame payload aliases
	// the demux loop's pooled read buffer and must not be retained).
	pongs chan struct{}
	// Feed delivers pushed feed items; buffered, drops when full.
	Feed chan wire.FeedItem
	// RemoteID is the server's node id from the handshake.
	RemoteID string
	// RemoteStart/RemoteEnd is the shard key range the server announced in
	// its handshake ack (both zero when the server is unsharded).
	RemoteStart uint64
	RemoteEnd   uint64
	closed      bool
	readErr     error
	done        chan struct{}
	tel         clientTel
}

// clientTel caches resolved telemetry instruments for client round-trips.
type clientTel struct {
	queries, timeouts, feedDropped *telemetry.Counter
	queryRTT, pingRTT              *telemetry.Histogram
}

func newClientTel(reg *telemetry.Registry) clientTel {
	if reg == nil {
		return clientTel{}
	}
	return clientTel{
		queries:     reg.Counter("transport.client.queries"),
		timeouts:    reg.Counter("transport.client.timeouts"),
		feedDropped: reg.Counter("transport.client.feed.dropped"),
		queryRTT:    reg.Histogram("transport.client.query"),
		pingRTT:     reg.Histogram("transport.client.ping"),
	}
}

// Dial connects and performs the hello handshake.
func Dial(addr, clientID string, timeout time.Duration) (*Client, error) {
	return DialWithTelemetry(addr, clientID, timeout, nil)
}

// DialWithTelemetry is Dial with client round-trip instruments (query/ping
// RTT histograms, timeout and feed-drop counters) registered in reg before
// the demux loop starts, keeping the accounting race-free.
func DialWithTelemetry(addr, clientID string, timeout time.Duration, reg *telemetry.Registry) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:         conn,
		r:            bufio.NewReader(conn),
		out:          newCoalescer(conn),
		pending:      make(map[string]chan wire.QueryResult),
		pendingStats: make(map[string]chan wire.TermStatsResp),
		pongs:        make(chan struct{}, 4),
		Feed:         make(chan wire.FeedItem, 64),
		done:         make(chan struct{}),
		tel:          newClientTel(reg),
	}
	// abort tears down a half-built connection; the handshake error being
	// returned to the caller is the failure, so teardown errors are
	// secondary.
	abort := func() {
		//lint:allow checkederr dial returns the handshake error; drain errors on the aborted connection are secondary
		c.out.close()
		conn.Close()
	}
	hello := wire.Hello{NodeID: clientID}
	if err := c.out.stageBytes(wire.KindHello, hello.Marshal()); err != nil {
		abort()
		return nil, err
	}
	// Synchronous ack before starting the demux loop.
	if timeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			abort()
			return nil, fmt.Errorf("transport: arming handshake deadline: %w", err)
		}
	}
	f, err := wire.ReadFrame(c.r)
	if err != nil || f.Kind != wire.KindHelloAck {
		abort()
		return nil, fmt.Errorf("transport: handshake failed: %v", err)
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		abort()
		return nil, fmt.Errorf("transport: clearing handshake deadline: %w", err)
	}
	ack, err := wire.UnmarshalHello(f.Payload)
	if err != nil {
		abort()
		return nil, err
	}
	c.RemoteID = ack.NodeID
	c.RemoteStart = ack.ShardStart
	c.RemoteEnd = ack.ShardEnd
	go c.readLoop() //lint:allow goroutine connection demux loop; Close joins it via <-c.done
	return c, nil
}

// send stages a cold control frame (hello, ping, subscribe) through the
// coalescer; the hot paths stage Appenders directly via c.out.stage.
func (c *Client) send(kind wire.Kind, payload []byte) error {
	return c.out.stageBytes(kind, payload)
}

// WireStats reports frames staged and Write syscalls issued on this
// connection's coalesced send path.
func (c *Client) WireStats() WireStats { return c.out.stats() }

func (c *Client) readLoop() {
	defer close(c.done)
	fr := wire.NewFrameReader(c.r)
	for {
		f, err := fr.Next()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for _, ch := range c.pending {
				close(ch)
			}
			c.pending = make(map[string]chan wire.QueryResult)
			for _, ch := range c.pendingStats {
				close(ch)
			}
			c.pendingStats = make(map[string]chan wire.TermStatsResp)
			c.mu.Unlock()
			close(c.Feed)
			return
		}
		switch f.Kind {
		case wire.KindQueryResult:
			// Shared-string decode: f.Payload is the FrameReader's pooled
			// buffer; the decoded result owns its (single) string backing.
			res, err := wire.UnmarshalQueryResultShared(f.Payload)
			if err != nil {
				continue
			}
			c.mu.Lock()
			ch, ok := c.pending[res.QueryID]
			if ok {
				delete(c.pending, res.QueryID)
			}
			c.mu.Unlock()
			if ok {
				ch <- res
				close(ch)
			}
		case wire.KindFeedItem:
			item, err := wire.UnmarshalFeedItemShared(f.Payload)
			if err != nil {
				continue
			}
			select {
			case c.Feed <- item:
			default: // drop on backpressure
				c.tel.feedDropped.Inc()
			}
		case wire.KindTermStatsResult:
			resp, err := wire.UnmarshalTermStatsResp(f.Payload)
			if err != nil {
				continue
			}
			c.mu.Lock()
			ch, ok := c.pendingStats[resp.ID]
			if ok {
				delete(c.pendingStats, resp.ID)
			}
			c.mu.Unlock()
			if ok {
				ch <- resp
				close(ch)
			}
		case wire.KindPong:
			select {
			case c.pongs <- struct{}{}:
			default:
			}
		}
	}
}

// ErrTimeout reports an expired client-side wait.
var ErrTimeout = errors.New("transport: timeout")

// timerPool recycles the per-wait timeout timers: every roundtrip arms
// one, and under load that is one avoidable allocation per query. Timers
// are returned stopped and drained, so Reset is safe.
var timerPool sync.Pool

func acquireTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func releaseTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C: // fired while we held it: drain so Reset starts clean
		default:
		}
	}
	timerPool.Put(t)
}

// newID mints a connection-unique request id; the caller holds c.mu.
// strconv instead of fmt keeps it to the one unavoidable allocation.
func (c *Client) newID(prefix byte) string {
	c.nextID++
	var buf [24]byte
	b := append(buf[:0], prefix)
	return string(strconv.AppendUint(b, c.nextID, 10))
}

// Ping round-trips a ping.
func (c *Client) Ping(timeout time.Duration) (time.Duration, error) {
	start := time.Now()
	if err := c.send(wire.KindPing, []byte("ping")); err != nil {
		return 0, err
	}
	t := acquireTimer(timeout)
	defer releaseTimer(t)
	select {
	case <-c.pongs:
		rtt := time.Since(start)
		c.tel.pingRTT.Observe(rtt)
		return rtt, nil
	case <-t.C:
		c.tel.timeouts.Inc()
		return 0, ErrTimeout
	case <-c.done:
		return 0, c.err()
	}
}

func (c *Client) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return c.readErr
	}
	return errors.New("transport: connection closed")
}

// Query sends a query (free text or full AQL in text) and waits for the
// result.
func (c *Client) Query(text string, concept feature.Vector, topK int, timeout time.Duration) (wire.QueryResult, error) {
	return c.QueryTraced(text, concept, topK, timeout, telemetry.TraceContext{})
}

// QueryTraced is Query with distributed-trace injection: tc (usually the
// Context() of the span covering this call) rides the wire so the server
// continues the caller's trace; the returned result echoes the trace ID
// the server served under. A zero tc sends an untraced query.
func (c *Client) QueryTraced(text string, concept feature.Vector, topK int, timeout time.Duration, tc telemetry.TraceContext) (wire.QueryResult, error) {
	q := wire.Query{
		Text: text, Concept: concept, TopK: uint32(topK),
		TraceID: uint64(tc.TraceID), SpanID: uint64(tc.SpanID),
	}
	return c.roundtripQuery(q, timeout)
}

// QueryGlobal sends a query carrying router-supplied corpus-wide statistics
// (see docstore.GlobalStats): the server scores it with global idf weights
// instead of its local ones, which is what makes per-shard results merge
// bit-identically to a single node holding the whole corpus. statsTerms and
// statsDF are parallel; globalDocs must be > 0.
func (c *Client) QueryGlobal(text string, topK int, timeout time.Duration, tc telemetry.TraceContext, globalDocs uint64, statsTerms []string, statsDF []uint64) (wire.QueryResult, error) {
	q := wire.Query{
		Text: text, TopK: uint32(topK),
		TraceID: uint64(tc.TraceID), SpanID: uint64(tc.SpanID),
		GlobalDocs: globalDocs, StatsTerms: statsTerms, StatsDF: statsDF,
	}
	return c.roundtripQuery(q, timeout)
}

func (c *Client) roundtripQuery(q wire.Query, timeout time.Duration) (wire.QueryResult, error) {
	start := time.Now()
	c.mu.Lock()
	q.ID = c.newID('q')
	ch := make(chan wire.QueryResult, 1)
	c.pending[q.ID] = ch
	c.mu.Unlock()
	id := q.ID
	if err := c.out.stage(wire.KindQuery, &q); err != nil {
		// The query never left, so the demux loop will never resolve this
		// id: drop the pending entry or it leaks until Close.
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return wire.QueryResult{}, err
	}
	t := acquireTimer(timeout)
	defer releaseTimer(t)
	select {
	case res, ok := <-ch:
		if !ok {
			return wire.QueryResult{}, c.err()
		}
		c.tel.queries.Inc()
		c.tel.queryRTT.Observe(time.Since(start))
		return res, nil
	case <-t.C:
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.tel.timeouts.Inc()
		return wire.QueryResult{}, ErrTimeout
	}
}

// TermStats asks the server for its live document count, snapshot epoch,
// and per-term document frequency / score-bound statistics (parallel to
// terms). Scatter routers call this once per unseen (term set, epoch) and
// cache the answer.
func (c *Client) TermStats(terms []string, timeout time.Duration) (wire.TermStatsResp, error) {
	return c.TermStatsAsync(terms, timeout)()
}

// TermStatsAsync stages the stats request immediately and returns a wait
// function for the response. Scatter routers stage every shard's request
// back-to-back — the frames ride one coalesced batch per connection — and
// only then start waiting, overlapping the round-trips instead of paying
// them one by one. The wait function must be called exactly once.
func (c *Client) TermStatsAsync(terms []string, timeout time.Duration) func() (wire.TermStatsResp, error) {
	c.mu.Lock()
	id := c.newID('s')
	ch := make(chan wire.TermStatsResp, 1)
	c.pendingStats[id] = ch
	c.mu.Unlock()
	req := wire.TermStatsReq{ID: id, Terms: terms}
	if err := c.out.stage(wire.KindTermStats, &req); err != nil {
		// Same leak hazard as roundtripQuery: an unsent request is never
		// demuxed, so remove it before reporting the failure.
		c.mu.Lock()
		delete(c.pendingStats, id)
		c.mu.Unlock()
		return func() (wire.TermStatsResp, error) { return wire.TermStatsResp{}, err }
	}
	return func() (wire.TermStatsResp, error) {
		t := acquireTimer(timeout)
		defer releaseTimer(t)
		select {
		case resp, ok := <-ch:
			if !ok {
				return wire.TermStatsResp{}, c.err()
			}
			return resp, nil
		case <-t.C:
			c.mu.Lock()
			delete(c.pendingStats, id)
			c.mu.Unlock()
			c.tel.timeouts.Inc()
			return wire.TermStatsResp{}, ErrTimeout
		}
	}
}

// Subscribe registers a standing subscription; matching feed items arrive
// on c.Feed.
func (c *Client) Subscribe(subID string, terms []string, concept feature.Vector, threshold float64) error {
	s := wire.Subscribe{SubID: subID, Terms: terms, Concept: concept, Threshold: threshold}
	return c.send(wire.KindSubscribe, s.Marshal())
}

// Unsubscribe cancels a subscription.
func (c *Client) Unsubscribe(subID string) error {
	return c.send(wire.KindUnsubscribe, []byte(subID))
}

// Close drains staged frames to the wire, then tears down the connection.
// A write deadline bounds the drain so a peer that stopped reading cannot
// wedge Close; a healthy drain finishes in microseconds.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	if derr := c.out.close(); err == nil {
		err = derr
	}
	if cerr := c.conn.Close(); err == nil {
		err = cerr
	}
	<-c.done
	return err
}
