package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/feature"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Client is a consumer connection to one agora node over TCP.
type Client struct {
	conn   net.Conn
	r      *bufio.Reader
	wmu    sync.Mutex
	mu     sync.Mutex
	nextID uint64

	// pending query results by query id.
	pending map[string]chan wire.QueryResult
	// pendingStats demuxes term-stats responses by request id.
	pendingStats map[string]chan wire.TermStatsResp
	pongs        chan []byte
	// Feed delivers pushed feed items; buffered, drops when full.
	Feed chan wire.FeedItem
	// RemoteID is the server's node id from the handshake.
	RemoteID string
	// RemoteStart/RemoteEnd is the shard key range the server announced in
	// its handshake ack (both zero when the server is unsharded).
	RemoteStart uint64
	RemoteEnd   uint64
	closed      bool
	readErr     error
	done        chan struct{}
	tel         clientTel
}

// clientTel caches resolved telemetry instruments for client round-trips.
type clientTel struct {
	queries, timeouts, feedDropped *telemetry.Counter
	queryRTT, pingRTT              *telemetry.Histogram
}

func newClientTel(reg *telemetry.Registry) clientTel {
	if reg == nil {
		return clientTel{}
	}
	return clientTel{
		queries:     reg.Counter("transport.client.queries"),
		timeouts:    reg.Counter("transport.client.timeouts"),
		feedDropped: reg.Counter("transport.client.feed.dropped"),
		queryRTT:    reg.Histogram("transport.client.query"),
		pingRTT:     reg.Histogram("transport.client.ping"),
	}
}

// Dial connects and performs the hello handshake.
func Dial(addr, clientID string, timeout time.Duration) (*Client, error) {
	return DialWithTelemetry(addr, clientID, timeout, nil)
}

// DialWithTelemetry is Dial with client round-trip instruments (query/ping
// RTT histograms, timeout and feed-drop counters) registered in reg before
// the demux loop starts, keeping the accounting race-free.
func DialWithTelemetry(addr, clientID string, timeout time.Duration, reg *telemetry.Registry) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:         conn,
		r:            bufio.NewReader(conn),
		pending:      make(map[string]chan wire.QueryResult),
		pendingStats: make(map[string]chan wire.TermStatsResp),
		pongs:        make(chan []byte, 4),
		Feed:         make(chan wire.FeedItem, 64),
		done:         make(chan struct{}),
		tel:          newClientTel(reg),
	}
	hello := wire.Hello{NodeID: clientID}
	if err := c.send(wire.KindHello, hello.Marshal()); err != nil {
		conn.Close()
		return nil, err
	}
	// Synchronous ack before starting the demux loop.
	if timeout > 0 {
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: arming handshake deadline: %w", err)
		}
	}
	f, err := wire.ReadFrame(c.r)
	if err != nil || f.Kind != wire.KindHelloAck {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake failed: %v", err)
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: clearing handshake deadline: %w", err)
	}
	ack, err := wire.UnmarshalHello(f.Payload)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.RemoteID = ack.NodeID
	c.RemoteStart = ack.ShardStart
	c.RemoteEnd = ack.ShardEnd
	go c.readLoop() //lint:allow goroutine connection demux loop; Close joins it via <-c.done
	return c, nil
}

func (c *Client) send(kind wire.Kind, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return wire.WriteFrame(c.conn, kind, payload)
}

func (c *Client) readLoop() {
	defer close(c.done)
	for {
		f, err := wire.ReadFrame(c.r)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for _, ch := range c.pending {
				close(ch)
			}
			c.pending = make(map[string]chan wire.QueryResult)
			for _, ch := range c.pendingStats {
				close(ch)
			}
			c.pendingStats = make(map[string]chan wire.TermStatsResp)
			c.mu.Unlock()
			close(c.Feed)
			return
		}
		switch f.Kind {
		case wire.KindQueryResult:
			res, err := wire.UnmarshalQueryResult(f.Payload)
			if err != nil {
				continue
			}
			c.mu.Lock()
			ch, ok := c.pending[res.QueryID]
			if ok {
				delete(c.pending, res.QueryID)
			}
			c.mu.Unlock()
			if ok {
				ch <- res
				close(ch)
			}
		case wire.KindFeedItem:
			item, err := wire.UnmarshalFeedItem(f.Payload)
			if err != nil {
				continue
			}
			select {
			case c.Feed <- item:
			default: // drop on backpressure
				c.tel.feedDropped.Inc()
			}
		case wire.KindTermStatsResult:
			resp, err := wire.UnmarshalTermStatsResp(f.Payload)
			if err != nil {
				continue
			}
			c.mu.Lock()
			ch, ok := c.pendingStats[resp.ID]
			if ok {
				delete(c.pendingStats, resp.ID)
			}
			c.mu.Unlock()
			if ok {
				ch <- resp
				close(ch)
			}
		case wire.KindPong:
			select {
			case c.pongs <- f.Payload:
			default:
			}
		}
	}
}

// ErrTimeout reports an expired client-side wait.
var ErrTimeout = errors.New("transport: timeout")

// Ping round-trips a ping.
func (c *Client) Ping(timeout time.Duration) (time.Duration, error) {
	start := time.Now()
	if err := c.send(wire.KindPing, []byte("ping")); err != nil {
		return 0, err
	}
	select {
	case <-c.pongs:
		rtt := time.Since(start)
		c.tel.pingRTT.Observe(rtt)
		return rtt, nil
	case <-time.After(timeout):
		c.tel.timeouts.Inc()
		return 0, ErrTimeout
	case <-c.done:
		return 0, c.err()
	}
}

func (c *Client) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return c.readErr
	}
	return errors.New("transport: connection closed")
}

// Query sends a query (free text or full AQL in text) and waits for the
// result.
func (c *Client) Query(text string, concept feature.Vector, topK int, timeout time.Duration) (wire.QueryResult, error) {
	return c.QueryTraced(text, concept, topK, timeout, telemetry.TraceContext{})
}

// QueryTraced is Query with distributed-trace injection: tc (usually the
// Context() of the span covering this call) rides the wire so the server
// continues the caller's trace; the returned result echoes the trace ID
// the server served under. A zero tc sends an untraced query.
func (c *Client) QueryTraced(text string, concept feature.Vector, topK int, timeout time.Duration, tc telemetry.TraceContext) (wire.QueryResult, error) {
	q := wire.Query{
		Text: text, Concept: concept, TopK: uint32(topK),
		TraceID: uint64(tc.TraceID), SpanID: uint64(tc.SpanID),
	}
	return c.roundtripQuery(q, timeout)
}

// QueryGlobal sends a query carrying router-supplied corpus-wide statistics
// (see docstore.GlobalStats): the server scores it with global idf weights
// instead of its local ones, which is what makes per-shard results merge
// bit-identically to a single node holding the whole corpus. statsTerms and
// statsDF are parallel; globalDocs must be > 0.
func (c *Client) QueryGlobal(text string, topK int, timeout time.Duration, tc telemetry.TraceContext, globalDocs uint64, statsTerms []string, statsDF []uint64) (wire.QueryResult, error) {
	q := wire.Query{
		Text: text, TopK: uint32(topK),
		TraceID: uint64(tc.TraceID), SpanID: uint64(tc.SpanID),
		GlobalDocs: globalDocs, StatsTerms: statsTerms, StatsDF: statsDF,
	}
	return c.roundtripQuery(q, timeout)
}

func (c *Client) roundtripQuery(q wire.Query, timeout time.Duration) (wire.QueryResult, error) {
	start := time.Now()
	c.mu.Lock()
	c.nextID++
	q.ID = fmt.Sprintf("q%d", c.nextID)
	ch := make(chan wire.QueryResult, 1)
	c.pending[q.ID] = ch
	c.mu.Unlock()
	id := q.ID
	if err := c.send(wire.KindQuery, q.Marshal()); err != nil {
		return wire.QueryResult{}, err
	}
	select {
	case res, ok := <-ch:
		if !ok {
			return wire.QueryResult{}, c.err()
		}
		c.tel.queries.Inc()
		c.tel.queryRTT.Observe(time.Since(start))
		return res, nil
	case <-time.After(timeout):
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.tel.timeouts.Inc()
		return wire.QueryResult{}, ErrTimeout
	}
}

// TermStats asks the server for its live document count, snapshot epoch,
// and per-term document frequency / score-bound statistics (parallel to
// terms). Scatter routers call this once per unseen (term set, epoch) and
// cache the answer.
func (c *Client) TermStats(terms []string, timeout time.Duration) (wire.TermStatsResp, error) {
	c.mu.Lock()
	c.nextID++
	id := fmt.Sprintf("s%d", c.nextID)
	ch := make(chan wire.TermStatsResp, 1)
	c.pendingStats[id] = ch
	c.mu.Unlock()
	req := wire.TermStatsReq{ID: id, Terms: terms}
	if err := c.send(wire.KindTermStats, req.Marshal()); err != nil {
		return wire.TermStatsResp{}, err
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return wire.TermStatsResp{}, c.err()
		}
		return resp, nil
	case <-time.After(timeout):
		c.mu.Lock()
		delete(c.pendingStats, id)
		c.mu.Unlock()
		c.tel.timeouts.Inc()
		return wire.TermStatsResp{}, ErrTimeout
	}
}

// Subscribe registers a standing subscription; matching feed items arrive
// on c.Feed.
func (c *Client) Subscribe(subID string, terms []string, concept feature.Vector, threshold float64) error {
	s := wire.Subscribe{SubID: subID, Terms: terms, Concept: concept, Threshold: threshold}
	return c.send(wire.KindSubscribe, s.Marshal())
}

// Unsubscribe cancels a subscription.
func (c *Client) Unsubscribe(subID string) error {
	return c.send(wire.KindUnsubscribe, []byte(subID))
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}
