package transport

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/docstore"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// startObsServer boots a TCP server with its own seeded telemetry registry
// and returns its address, registry, and a shutdown func.
func startObsServer(t *testing.T, nodeID string, seed uint64) (string, *telemetry.Registry) {
	t.Helper()
	store := seededStore(t, nodeID)
	srv := NewServer(nodeID, store)
	srv.Logf = t.Logf
	reg := telemetry.NewRegistrySeeded(seed)
	srv.SetTelemetry(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), reg
}

func seededStore(t *testing.T, nodeID string) *docstore.Store {
	t.Helper()
	store, err := docstore.Open(docstore.Options{ConceptDim: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	docs := []*docstore.Document{
		{ID: nodeID + "-1", Title: "byzantine ring", Text: "a gold ring from the byzantine era", Provenance: nodeID},
		{ID: nodeID + "-2", Title: "auction notes", Text: "auction drawing of a silver cup", Provenance: nodeID},
	}
	if err := store.PutBatch(docs); err != nil {
		t.Fatal(err)
	}
	return store
}

// TestDistributedTraceAcrossProcesses is the tentpole acceptance check: an
// agora-query-style ask served by remote nodes produces ONE trace ID
// visible on both sides of the wire, and the per-process snapshots stitch
// into a single tree.
func TestDistributedTraceAcrossProcesses(t *testing.T) {
	addrA, regA := startObsServer(t, "museum", 101)
	addrB, regB := startObsServer(t, "gallery", 202)

	clientReg := telemetry.NewRegistrySeeded(7)
	tr := clientReg.StartTrace("agora-query", "byzantine ring")

	var results []wire.QueryResult
	var spanIDs []telemetry.SpanID
	for _, addr := range []string{addrA, addrB} {
		c, err := DialWithTelemetry(addr, "obs-test", 2*time.Second, clientReg)
		if err != nil {
			t.Fatal(err)
		}
		sp := tr.Span("query", addr)
		res, err := c.QueryTraced("byzantine ring", nil, 5, 2*time.Second, sp.Context())
		sp.End()
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
		spanIDs = append(spanIDs, sp.ID())
	}
	tr.Finish()

	// One trace ID on every process: the result echoes the ID the server
	// served under, and it is the client's own.
	for i, res := range results {
		if telemetry.TraceID(res.TraceID) != tr.ID() {
			t.Fatalf("result %d trace id %016x, client trace %s", i, res.TraceID, tr.ID())
		}
	}

	// Each server retained the continuation, parented at the client span
	// that issued the query.
	var remote []telemetry.TraceSnapshot
	for i, reg := range []*telemetry.Registry{regA, regB} {
		snaps := reg.TraceByID(tr.ID())
		if len(snaps) == 0 {
			t.Fatalf("server %d retained no snapshot for trace %s", i, tr.ID())
		}
		for _, s := range snaps {
			if s.ParentSpan != spanIDs[i].String() {
				t.Fatalf("server %d parent span %q, want %q", i, s.ParentSpan, spanIDs[i])
			}
		}
		remote = append(remote, snaps...)
	}

	// The stitched tree nests both serve continuations under the client's
	// query spans, with per-node search spans visible.
	local := clientReg.TraceByID(tr.ID())
	if len(local) == 0 {
		t.Fatal("client registry lost its own trace")
	}
	var sb strings.Builder
	telemetry.RenderStitched(&sb, append(local, remote...))
	tree := sb.String()
	if strings.Count(tree, "↘ serve") != 2 {
		t.Fatalf("stitched tree should nest 2 serve continuations:\n%s", tree)
	}
	if !strings.Contains(tree, "search") {
		t.Fatalf("stitched tree missing server-side search span:\n%s", tree)
	}

	// Scrape /metrics off one server's debug mux and hold it to the strict
	// parser; the query latency histogram must carry the trace as exemplar.
	ts := httptest.NewServer(telemetry.DebugMux(regA))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	fams, err := telemetry.ParsePrometheus(string(body))
	if err != nil {
		t.Fatalf("strict parse of /metrics failed: %v\n%s", err, body)
	}
	fam := fams["agora_transport_server_query_seconds"]
	if fam == nil {
		t.Fatalf("query latency family missing; got %d families", len(fams))
	}
	wantEx := tr.ID().String()
	foundEx := false
	for _, s := range fam.Samples {
		if s.Exemplar != nil && s.Exemplar.Labels["trace_id"] == wantEx {
			foundEx = true
		}
	}
	if !foundEx {
		t.Fatalf("no bucket carries exemplar trace_id=%q:\n%s", wantEx, body)
	}

	// CI artifact hook: when OBS_ARTIFACT_DIR is set, persist the rendered
	// trace and scraped exposition for upload.
	if dir := os.Getenv("OBS_ARTIFACT_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "trace.txt"), []byte(tree), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "metrics.prom"), body, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("observability artifacts written to %s", dir)
	}
}

// TestUntracedQueryStillServed pins the backward path: a client sending no
// trace context gets served under a fresh server-local trace.
func TestUntracedQueryStillServed(t *testing.T) {
	addr, reg := startObsServer(t, "museum", 55)
	c, err := Dial(addr, "plain", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("auction drawing", nil, 5, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == 0 {
		t.Fatal("server should mint a trace for untraced queries")
	}
	if snaps := reg.TraceByID(telemetry.TraceID(res.TraceID)); len(snaps) == 0 {
		t.Fatal("server-minted trace not retained")
	} else if snaps[0].ParentSpan != "" {
		t.Fatalf("fresh trace should have no parent, got %q", snaps[0].ParentSpan)
	}
}
