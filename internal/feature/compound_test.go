package feature

import (
	"math/rand"
	"testing"
)

func textPart(voc *Vocabulary, text string, w float64) Part {
	return Part{
		Kind:    PartText,
		Text:    voc.Vectorize(Tokenize(text)),
		Concept: voc.Vectorize(Tokenize(text)).Project(32),
		Weight:  w,
	}
}

func imagePart(e *VisualExtractor, r *rand.Rand, concept Vector, w float64) Part {
	return Part{
		Kind:    PartImage,
		Visual:  e.Extract(r, concept),
		Concept: concept,
		Weight:  w,
	}
}

func testVocab() *Vocabulary {
	v := NewVocabulary()
	for _, s := range []string{
		"gold ring byzantine filigree ancient",
		"silver necklace celtic knot",
		"auction catalog drawing flemish dutch",
		"fashion magazine spring collection",
		"traditional costume embroidery balkan",
	} {
		v.Observe(Tokenize(s))
	}
	return v
}

func TestCompoundSelfSimilarityIsOne(t *testing.T) {
	voc := testVocab()
	c := Compound{Parts: []Part{
		textPart(voc, "gold ring byzantine", 2),
		textPart(voc, "auction catalog drawing", 1),
	}}
	if s := CompoundSimilarity(c, c); !almostEq(s, 1, 1e-9) {
		t.Fatalf("self similarity = %v", s)
	}
}

func TestCompoundSimilaritySymmetric(t *testing.T) {
	voc := testVocab()
	a := Compound{Parts: []Part{
		textPart(voc, "gold ring byzantine filigree", 2),
		textPart(voc, "fashion magazine spring", 1),
	}}
	b := Compound{Parts: []Part{
		textPart(voc, "gold byzantine ancient", 1),
	}}
	s1, s2 := CompoundSimilarity(a, b), CompoundSimilarity(b, a)
	if !almostEq(s1, s2, 1e-9) {
		t.Fatalf("asymmetric: %v vs %v", s1, s2)
	}
}

func TestCompoundTopicalOrdering(t *testing.T) {
	voc := testVocab()
	page := Compound{Parts: []Part{
		textPart(voc, "gold ring byzantine filigree ancient", 2),
		textPart(voc, "fashion magazine spring collection", 1),
	}}
	catalogSame := Compound{Parts: []Part{
		textPart(voc, "byzantine gold ring ancient", 1),
		textPart(voc, "auction catalog", 1),
	}}
	catalogOther := Compound{Parts: []Part{
		textPart(voc, "celtic knot silver necklace", 1),
		textPart(voc, "auction catalog", 1),
	}}
	if CompoundSimilarity(page, catalogSame) <= CompoundSimilarity(page, catalogOther) {
		t.Fatal("topically-matching compound should score higher")
	}
}

func TestCrossModalMatching(t *testing.T) {
	voc := testVocab()
	e := NewVisualExtractor(1, 32, 12, 8, 0.05)
	r := rand.New(rand.NewSource(1))
	// A text part and an image part that share a concept vector should
	// match better than ones that don't.
	textJewel := textPart(voc, "gold ring byzantine filigree", 1)
	imgJewel := imagePart(e, r, textJewel.Concept.Clone(), 1)
	textCostume := textPart(voc, "traditional costume embroidery balkan", 1)
	sJewel := PartSimilarity(textJewel, imgJewel)
	sCross := PartSimilarity(textCostume, imgJewel)
	if sJewel <= sCross {
		t.Fatalf("cross-modal concept match failed: same=%v other=%v", sJewel, sCross)
	}
}

func TestCompoundEmpty(t *testing.T) {
	voc := testVocab()
	c := Compound{Parts: []Part{textPart(voc, "gold ring", 1)}}
	if s := CompoundSimilarity(c, Compound{}); s != 0 {
		t.Fatalf("empty compound similarity = %v", s)
	}
	if s := CompoundSimilarity(Compound{}, Compound{}); s != 0 {
		t.Fatalf("both-empty similarity = %v", s)
	}
}

func TestCompoundSizeMismatchDilutes(t *testing.T) {
	voc := testVocab()
	one := Compound{Parts: []Part{textPart(voc, "gold ring byzantine", 1)}}
	padded := Compound{Parts: []Part{
		textPart(voc, "gold ring byzantine", 1),
		textPart(voc, "auction catalog drawing flemish", 1),
		textPart(voc, "fashion magazine spring collection", 1),
	}}
	if CompoundSimilarity(one, padded) >= CompoundSimilarity(one, one) {
		t.Fatal("extra unmatched parts should dilute the score")
	}
}

func TestPartKindString(t *testing.T) {
	if PartText.String() != "text" || PartImage.String() != "image" || PartConcept.String() != "concept" {
		t.Fatal("part kind names wrong")
	}
}
