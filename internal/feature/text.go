package feature

import (
	"math"
	"sort"
	"strings"
	"sync"
	"unicode"
)

// Tokenize splits text into lowercase word tokens, dropping punctuation and
// stopwords. It is the shared tokenizer for the inverted index and the text
// vectorizer so their views of a document agree.
func Tokenize(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		w := b.String()
		b.Reset()
		if len(w) < 2 || stopwords[w] {
			return
		}
		out = append(out, w)
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return out
}

var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true, "of": true,
	"to": true, "in": true, "on": true, "for": true, "with": true, "is": true,
	"are": true, "was": true, "were": true, "be": true, "as": true, "at": true,
	"by": true, "it": true, "its": true, "this": true, "that": true,
	"from": true, "but": true, "not": true, "has": true, "have": true,
	"had": true, "will": true, "would": true, "can": true, "may": true,
}

// Vocabulary maps terms to stable dimension indices and tracks document
// frequencies for IDF weighting. It is safe for concurrent use.
type Vocabulary struct {
	mu    sync.RWMutex
	dims  map[string]int
	terms []string
	df    []int // document frequency per dimension
	docs  int
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{dims: make(map[string]int)}
}

// Size returns the number of known terms.
func (v *Vocabulary) Size() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.terms)
}

// Docs returns the number of documents observed.
func (v *Vocabulary) Docs() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.docs
}

// Term returns the term at dimension i, or "" if out of range.
func (v *Vocabulary) Term(i int) string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if i < 0 || i >= len(v.terms) {
		return ""
	}
	return v.terms[i]
}

// Dim returns the dimension of term, or -1 if unknown.
func (v *Vocabulary) Dim(term string) int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if d, ok := v.dims[term]; ok {
		return d
	}
	return -1
}

// Observe registers a document's tokens, growing the vocabulary and updating
// document frequencies.
func (v *Vocabulary) Observe(tokens []string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.docs++
	seen := make(map[int]bool, len(tokens))
	for _, t := range tokens {
		d, ok := v.dims[t]
		if !ok {
			d = len(v.terms)
			v.dims[t] = d
			v.terms = append(v.terms, t)
			v.df = append(v.df, 0)
		}
		if !seen[d] {
			seen[d] = true
			v.df[d]++
		}
	}
}

// IDF returns the smoothed inverse document frequency for dimension d.
func (v *Vocabulary) IDF(d int) float64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if d < 0 || d >= len(v.df) || v.docs == 0 {
		return 0
	}
	return math.Log(1 + float64(v.docs)/float64(1+v.df[d]))
}

// SparseVector is a term-weighted sparse representation: parallel sorted
// dims and weights. It is the natural output of text vectorization, where
// dense vectors over the whole vocabulary would waste space.
type SparseVector struct {
	Dims    []int
	Weights []float64
}

// Norm returns the Euclidean norm.
func (s SparseVector) Norm() float64 {
	var sum float64
	for _, w := range s.Weights {
		sum += w * w
	}
	return math.Sqrt(sum)
}

// CosineSparse returns the cosine similarity of two sparse vectors whose
// Dims are sorted ascending.
func CosineSparse(a, b SparseVector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	var dot float64
	i, j := 0, 0
	for i < len(a.Dims) && j < len(b.Dims) {
		switch {
		case a.Dims[i] == b.Dims[j]:
			dot += a.Weights[i] * b.Weights[j]
			i++
			j++
		case a.Dims[i] < b.Dims[j]:
			i++
		default:
			j++
		}
	}
	c := dot / (na * nb)
	if c > 1 {
		c = 1
	}
	return c
}

// Vectorize converts tokens to a TF-IDF sparse vector against v. Unknown
// terms are skipped (they carry no IDF evidence).
func (v *Vocabulary) Vectorize(tokens []string) SparseVector {
	tf := make(map[int]float64)
	for _, t := range tokens {
		if d := v.Dim(t); d >= 0 {
			tf[d]++
		}
	}
	dims := make([]int, 0, len(tf))
	for d := range tf {
		dims = append(dims, d)
	}
	sort.Ints(dims)
	weights := make([]float64, len(dims))
	for i, d := range dims {
		// Sublinear TF damping, standard for retrieval.
		weights[i] = (1 + math.Log(tf[d])) * v.IDF(d)
	}
	return SparseVector{Dims: dims, Weights: weights}
}

// Project folds a sparse vector into a fixed-dimension dense vector by
// hashing dimensions (the hashing trick). This gives every object — text or
// visual — a comparable dense form for the shared concept space.
func (s SparseVector) Project(dim int) Vector {
	out := make(Vector, dim)
	if dim == 0 {
		return out
	}
	for i, d := range s.Dims {
		h := hashDim(d)
		sign := 1.0
		if h&1 == 1 {
			sign = -1
		}
		out[int(h%uint64(dim))] += sign * s.Weights[i]
	}
	return out
}

func hashDim(d int) uint64 {
	x := uint64(d) * 0x9E3779B97F4A7C15
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return x
}
