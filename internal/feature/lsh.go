package feature

import (
	"math/rand"
	"sort"
	"sync"
)

// LSH is a random-hyperplane locality-sensitive hash index for cosine
// similarity over dense vectors. It backs the docstore's vector index: an
// Agora node must answer "find objects similar to this image" without a full
// scan.
//
// Design: L independent tables, each hashing a vector to a b-bit signature
// from b random hyperplanes. Candidates are the union of same-bucket entries
// across tables; the caller re-scores candidates exactly.
type LSH struct {
	mu     sync.RWMutex
	dim    int
	bits   int
	planes [][]Vector // [table][bit] hyperplane
	tables []map[uint64][]string
	items  map[string]Vector
}

// NewLSH builds an index for dim-dimensional vectors with the given number
// of tables and bits per signature. More tables raise recall; more bits
// raise precision.
func NewLSH(seed int64, dim, tables, bits int) *LSH {
	if tables <= 0 {
		tables = 4
	}
	if bits <= 0 || bits > 63 {
		bits = 12
	}
	r := rand.New(rand.NewSource(seed))
	l := &LSH{
		dim:    dim,
		bits:   bits,
		planes: make([][]Vector, tables),
		tables: make([]map[uint64][]string, tables),
		items:  make(map[string]Vector),
	}
	for t := 0; t < tables; t++ {
		l.planes[t] = make([]Vector, bits)
		for b := 0; b < bits; b++ {
			p := make(Vector, dim)
			for i := range p {
				p[i] = r.NormFloat64()
			}
			l.planes[t][b] = p
		}
		l.tables[t] = make(map[uint64][]string)
	}
	return l
}

// Dim returns the indexed dimensionality.
func (l *LSH) Dim() int { return l.dim }

// Len returns the number of indexed items.
func (l *LSH) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.items)
}

func (l *LSH) signature(t int, v Vector) uint64 {
	var sig uint64
	for b, plane := range l.planes[t] {
		if v.Dot(plane) >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

// Put indexes v under id, replacing any previous vector for id.
func (l *LSH) Put(id string, v Vector) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.items[id]; ok {
		l.removeLocked(id)
	}
	cp := v.Clone()
	l.items[id] = cp
	for t := range l.tables {
		sig := l.signature(t, cp)
		l.tables[t][sig] = append(l.tables[t][sig], id)
	}
}

// Delete removes id from the index; it reports whether it was present.
func (l *LSH) Delete(id string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.items[id]; !ok {
		return false
	}
	l.removeLocked(id)
	return true
}

func (l *LSH) removeLocked(id string) {
	v := l.items[id]
	delete(l.items, id)
	for t := range l.tables {
		sig := l.signature(t, v)
		bucket := l.tables[t][sig]
		for i, b := range bucket {
			if b == id {
				bucket[i] = bucket[len(bucket)-1]
				l.tables[t][sig] = bucket[:len(bucket)-1]
				break
			}
		}
		if len(l.tables[t][sig]) == 0 {
			delete(l.tables[t], sig)
		}
	}
}

// Candidate is a scored index hit.
type Candidate struct {
	ID    string
	Score float64
}

// Query returns up to k ids most cosine-similar to q among LSH candidates,
// exactly re-scored and sorted descending. If the candidate set is smaller
// than k the result is shorter; callers needing guaranteed recall can fall
// back to Scan.
func (l *LSH) Query(q Vector, k int) []Candidate {
	l.mu.RLock()
	defer l.mu.RUnlock()
	seen := make(map[string]bool)
	var cands []Candidate
	for t := range l.tables {
		sig := l.signature(t, q)
		for _, id := range l.tables[t][sig] {
			if seen[id] {
				continue
			}
			seen[id] = true
			cands = append(cands, Candidate{ID: id, Score: Cosine(q, l.items[id])})
		}
	}
	return topCandidates(cands, k)
}

// Scan exactly scores every indexed vector against q — the ground-truth
// (and slow) path used for recall measurement and small stores.
func (l *LSH) Scan(q Vector, k int) []Candidate {
	l.mu.RLock()
	defer l.mu.RUnlock()
	cands := make([]Candidate, 0, len(l.items))
	for id, v := range l.items {
		cands = append(cands, Candidate{ID: id, Score: Cosine(q, v)})
	}
	return topCandidates(cands, k)
}

func topCandidates(cands []Candidate, k int) []Candidate {
	sortCandidates(cands)
	if k >= 0 && len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

func sortCandidates(cands []Candidate) {
	// Ties break by ID so results are deterministic across runs.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].ID < cands[j].ID
	})
}
