package feature

import (
	"math/rand"
	"sort"
	"sync"
)

// LSH is a random-hyperplane locality-sensitive hash index for cosine
// similarity over dense vectors. It backs the docstore's vector index: an
// Agora node must answer "find objects similar to this image" without a full
// scan.
//
// Design: L independent tables, each hashing a vector to a b-bit signature
// from b random hyperplanes. Candidates are the union of same-bucket entries
// across tables; the caller re-scores candidates exactly.
type LSH struct {
	mu     sync.RWMutex
	dim    int
	bits   int
	planes [][]Vector // [table][bit] hyperplane
	tables []map[uint64][]string
	items  map[string]Vector
}

// NewLSH builds an index for dim-dimensional vectors with the given number
// of tables and bits per signature. More tables raise recall; more bits
// raise precision.
func NewLSH(seed int64, dim, tables, bits int) *LSH {
	if tables <= 0 {
		tables = 4
	}
	if bits <= 0 || bits > 63 {
		bits = 12
	}
	r := rand.New(rand.NewSource(seed))
	l := &LSH{
		dim:    dim,
		bits:   bits,
		planes: make([][]Vector, tables),
		tables: make([]map[uint64][]string, tables),
		items:  make(map[string]Vector),
	}
	for t := 0; t < tables; t++ {
		l.planes[t] = make([]Vector, bits)
		for b := 0; b < bits; b++ {
			p := make(Vector, dim)
			for i := range p {
				p[i] = r.NormFloat64()
			}
			l.planes[t][b] = p
		}
		l.tables[t] = make(map[uint64][]string)
	}
	return l
}

// Dim returns the indexed dimensionality.
func (l *LSH) Dim() int { return l.dim }

// Len returns the number of indexed items.
func (l *LSH) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.items)
}

func (l *LSH) signature(t int, v Vector) uint64 {
	var sig uint64
	for b, plane := range l.planes[t] {
		if v.Dot(plane) >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

// Put indexes v under id, replacing any previous vector for id.
func (l *LSH) Put(id string, v Vector) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.items[id]; ok {
		l.removeLocked(id)
	}
	cp := v.Clone()
	l.items[id] = cp
	for t := range l.tables {
		sig := l.signature(t, cp)
		l.tables[t][sig] = append(l.tables[t][sig], id)
	}
}

// Delete removes id from the index; it reports whether it was present.
func (l *LSH) Delete(id string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.items[id]; !ok {
		return false
	}
	l.removeLocked(id)
	return true
}

func (l *LSH) removeLocked(id string) {
	v := l.items[id]
	delete(l.items, id)
	for t := range l.tables {
		sig := l.signature(t, v)
		bucket := l.tables[t][sig]
		for i, b := range bucket {
			if b == id {
				bucket[i] = bucket[len(bucket)-1]
				l.tables[t][sig] = bucket[:len(bucket)-1]
				break
			}
		}
		if len(l.tables[t][sig]) == 0 {
			delete(l.tables[t], sig)
		}
	}
}

// Signatures returns q's per-table bucket signatures. Hyperplanes are
// immutable after construction, so this takes no lock; callers use it to
// precompute signatures for vectors held outside the index (see Extra).
func (l *LSH) Signatures(v Vector) []uint64 {
	sigs := make([]uint64, len(l.planes))
	for t := range l.planes {
		sigs[t] = l.signature(t, v)
	}
	return sigs
}

// Extra is a vector considered alongside the index without being inserted:
// it joins a table's candidate set exactly when its precomputed signature
// (from Signatures, against the same hyperplanes) matches the query bucket —
// the same membership rule an indexed vector would obey. The docstore's
// epoch-snapshot overlay uses this to query a frozen index plus a small
// unindexed delta with identical candidate semantics.
type Extra struct {
	ID   string
	Vec  Vector
	Sigs []uint64
}

// Clone returns an independent copy sharing only immutable state (the
// hyperplanes and the stored vectors, which are never mutated in place).
// Bucket slices and maps are deep-copied so Put/Delete on either side never
// touches the other.
func (l *LSH) Clone() *LSH {
	l.mu.RLock()
	defer l.mu.RUnlock()
	cp := &LSH{
		dim:    l.dim,
		bits:   l.bits,
		planes: l.planes,
		tables: make([]map[uint64][]string, len(l.tables)),
		items:  make(map[string]Vector, len(l.items)),
	}
	for t, tbl := range l.tables {
		nt := make(map[uint64][]string, len(tbl))
		for sig, bucket := range tbl {
			nt[sig] = append([]string(nil), bucket...)
		}
		cp.tables[t] = nt
	}
	for id, v := range l.items {
		cp.items[id] = v
	}
	return cp
}

// Candidate is a scored index hit.
type Candidate struct {
	ID    string
	Score float64
}

// Query returns up to k ids most cosine-similar to q among LSH candidates,
// exactly re-scored and sorted descending. If the candidate set is smaller
// than k the result is shorter; callers needing guaranteed recall can fall
// back to Scan.
func (l *LSH) Query(q Vector, k int) []Candidate {
	return l.QueryWith(q, k, nil, nil)
}

// QueryWith is Query extended for snapshot readers: extras join the bucket
// candidate sets by their precomputed signatures, and ids for which excluded
// returns true are dropped before top-k selection (so superseded index
// entries cannot crowd out live ones).
func (l *LSH) QueryWith(q Vector, k int, extras []Extra, excluded func(string) bool) []Candidate {
	l.mu.RLock()
	defer l.mu.RUnlock()
	seen := make(map[string]bool)
	var cands []Candidate
	for t := range l.tables {
		sig := l.signature(t, q)
		for _, id := range l.tables[t][sig] {
			if seen[id] || (excluded != nil && excluded(id)) {
				continue
			}
			seen[id] = true
			cands = append(cands, Candidate{ID: id, Score: Cosine(q, l.items[id])})
		}
		for i := range extras {
			e := &extras[i]
			if t >= len(e.Sigs) || e.Sigs[t] != sig || seen[e.ID] {
				continue
			}
			seen[e.ID] = true
			cands = append(cands, Candidate{ID: e.ID, Score: Cosine(q, e.Vec)})
		}
	}
	return topCandidates(cands, k)
}

// Scan exactly scores every indexed vector against q — the ground-truth
// (and slow) path used for recall measurement and small stores.
func (l *LSH) Scan(q Vector, k int) []Candidate {
	return l.ScanWith(q, k, nil, nil)
}

// ScanWith is Scan extended for snapshot readers; see QueryWith.
func (l *LSH) ScanWith(q Vector, k int, extras []Extra, excluded func(string) bool) []Candidate {
	l.mu.RLock()
	defer l.mu.RUnlock()
	cands := make([]Candidate, 0, len(l.items)+len(extras))
	for id, v := range l.items {
		if excluded != nil && excluded(id) {
			continue
		}
		cands = append(cands, Candidate{ID: id, Score: Cosine(q, v)})
	}
	for i := range extras {
		cands = append(cands, Candidate{ID: extras[i].ID, Score: Cosine(q, extras[i].Vec)})
	}
	return topCandidates(cands, k)
}

// topCandidates selects the best k candidates under the deterministic
// (score desc, ID asc) order. For bounded k it keeps a k-sized min-heap
// keyed by "worst kept" instead of sorting the whole candidate set; ids are
// unique, so the order is strict and the result is identical to
// sort-then-truncate.
func topCandidates(cands []Candidate, k int) []Candidate {
	if k == 0 {
		return cands[:0]
	}
	if k < 0 || len(cands) <= k {
		sortCandidates(cands)
		return cands
	}
	heap := make([]Candidate, 0, k)
	for _, c := range cands {
		if len(heap) < k {
			heap = append(heap, c)
			siftUpCand(heap, len(heap)-1)
		} else if candWorse(heap[0], c) {
			heap[0] = c
			siftDownCand(heap)
		}
	}
	sortCandidates(heap)
	return heap
}

// candWorse reports whether a ranks strictly worse than b.
func candWorse(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

func siftUpCand(h []Candidate, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !candWorse(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func siftDownCand(h []Candidate) {
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(h) && candWorse(h[l], h[m]) {
			m = l
		}
		if r < len(h) && candWorse(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func sortCandidates(cands []Candidate) {
	// Ties break by ID so results are deterministic across runs.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].ID < cands[j].ID
	})
}
