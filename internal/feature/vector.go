// Package feature implements feature extraction and similarity matching for
// the heterogeneous objects an Open Agora trades in: text documents,
// (simulated) images, and compound objects mixing both.
//
// The paper's Uncertainty section asks which feature sets should be used to
// match a query object against source objects, how two objects of the same
// type match, how compound objects match, and how objects of *different*
// types can be compared (an image of a jewel against an article about
// costumes). This package provides the mechanisms: dense vectors with the
// classic metrics, text vectorization, simulated visual features, greedy
// bipartite matching for compound objects, and a shared concept space for
// cross-modal comparison.
package feature

import (
	"fmt"
	"math"
	"sort"
)

// Vector is a dense feature vector.
type Vector []float64

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dot returns the inner product of v and w. Mismatched lengths use the
// shorter prefix, which lets truncated projections compare cheaply.
func (v Vector) Dot(w Vector) float64 {
	n := len(v)
	if len(w) < n {
		n = len(w)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// L1 returns the Manhattan distance between v and w.
func (v Vector) L1(w Vector) float64 {
	n := len(v)
	if len(w) > n {
		n = len(w)
	}
	var s float64
	for i := 0; i < n; i++ {
		var a, b float64
		if i < len(v) {
			a = v[i]
		}
		if i < len(w) {
			b = w[i]
		}
		s += math.Abs(a - b)
	}
	return s
}

// Cosine returns the cosine similarity of v and w in [-1, 1]; zero vectors
// yield 0.
func Cosine(v, w Vector) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	c := v.Dot(w) / (nv * nw)
	if math.IsNaN(c) { // overflow in Dot or Norm on extreme magnitudes
		return 0
	}
	if c > 1 {
		c = 1
	}
	if c < -1 {
		c = -1
	}
	return c
}

// Normalize scales v to unit norm in place and returns it. Zero vectors are
// left unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	for i := range v {
		v[i] /= n
	}
	return v
}

// Add accumulates w into v (element-wise, over the shared prefix) and
// returns v.
func (v Vector) Add(w Vector) Vector {
	n := len(v)
	if len(w) < n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		v[i] += w[i]
	}
	return v
}

// Scale multiplies v by a in place and returns v.
func (v Vector) Scale(a float64) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// Blend returns (1-alpha)*v + alpha*w as a new vector sized to the longer
// input. It is the profile-update primitive: exponential decay toward new
// evidence.
func Blend(v, w Vector, alpha float64) Vector {
	n := len(v)
	if len(w) > n {
		n = len(w)
	}
	out := make(Vector, n)
	for i := 0; i < n; i++ {
		var a, b float64
		if i < len(v) {
			a = v[i]
		}
		if i < len(w) {
			b = w[i]
		}
		out[i] = (1-alpha)*a + alpha*b
	}
	return out
}

// HistogramIntersection returns the histogram-intersection similarity of two
// non-negative histograms, normalized to [0,1] by the smaller mass. It is
// the classic visual-feature match metric.
func HistogramIntersection(v, w Vector) float64 {
	n := len(v)
	if len(w) < n {
		n = len(w)
	}
	var inter, mv, mw float64
	for i := 0; i < n; i++ {
		inter += math.Min(v[i], w[i])
	}
	for _, x := range v {
		mv += x
	}
	for _, x := range w {
		mw += x
	}
	m := math.Min(mv, mw)
	if m == 0 {
		return 0
	}
	return inter / m
}

// Jaccard returns the Jaccard similarity of two term sets.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	set := make(map[string]bool, len(a))
	for _, t := range a {
		set[t] = true
	}
	inter := 0
	seen := make(map[string]bool, len(b))
	for _, t := range b {
		if seen[t] {
			continue
		}
		seen[t] = true
		if set[t] {
			inter++
		}
	}
	union := len(set) + len(seen) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Metric identifies a similarity function over vectors.
type Metric int

// Supported vector metrics.
const (
	MetricCosine Metric = iota
	MetricHistogram
	MetricInvL1 // 1/(1+L1), a bounded distance-to-similarity transform
)

func (m Metric) String() string {
	switch m {
	case MetricCosine:
		return "cosine"
	case MetricHistogram:
		return "histogram"
	case MetricInvL1:
		return "invL1"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Similarity applies the metric to v and w, returning a value clamped to
// [0,1]: anti-correlated cosine is treated as non-matching (what retrieval
// ranking wants), and histogram intersection of malformed (negative-valued)
// histograms cannot escape the score range.
func (m Metric) Similarity(v, w Vector) float64 {
	switch m {
	case MetricCosine:
		return clampScore(Cosine(v, w))
	case MetricHistogram:
		return clampScore(HistogramIntersection(v, w))
	case MetricInvL1:
		return clampScore(1 / (1 + v.L1(w)))
	default:
		return 0
	}
}

func clampScore(s float64) float64 {
	if s != s || s < 0 { // NaN or negative
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// TopK returns the indices of the k largest values in scores, in descending
// score order, breaking ties by lower index. It copies nothing of the input.
func TopK(scores []float64, k int) []int {
	if k > len(scores) {
		k = len(scores)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}
