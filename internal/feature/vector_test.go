package feature

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCosineBasics(t *testing.T) {
	v := Vector{1, 0, 0}
	w := Vector{0, 1, 0}
	if c := Cosine(v, v); !almostEq(c, 1, 1e-12) {
		t.Fatalf("self cosine = %v", c)
	}
	if c := Cosine(v, w); !almostEq(c, 0, 1e-12) {
		t.Fatalf("orthogonal cosine = %v", c)
	}
	if c := Cosine(v, Vector{-1, 0, 0}); !almostEq(c, -1, 1e-12) {
		t.Fatalf("opposite cosine = %v", c)
	}
	if c := Cosine(Vector{0, 0}, v); c != 0 {
		t.Fatalf("zero-vector cosine = %v", c)
	}
}

func TestCosineSymmetricAndBounded(t *testing.T) {
	f := func(a, b []float64) bool {
		v, w := Vector(a), Vector(b)
		c1, c2 := Cosine(v, w), Cosine(w, v)
		if math.IsNaN(c1) || c1 < -1 || c1 > 1 {
			return false
		}
		return almostEq(c1, c2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	v.Normalize()
	if !almostEq(v.Norm(), 1, 1e-12) {
		t.Fatalf("norm after normalize = %v", v.Norm())
	}
	z := Vector{0, 0}
	z.Normalize()
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector should be unchanged")
	}
}

func TestBlend(t *testing.T) {
	v := Vector{1, 0}
	w := Vector{0, 1}
	b := Blend(v, w, 0.25)
	if !almostEq(b[0], 0.75, 1e-12) || !almostEq(b[1], 0.25, 1e-12) {
		t.Fatalf("blend = %v", b)
	}
	// Mismatched lengths: result has the longer length.
	b2 := Blend(Vector{1}, Vector{0, 2}, 0.5)
	if len(b2) != 2 || !almostEq(b2[1], 1, 1e-12) {
		t.Fatalf("blend mismatched = %v", b2)
	}
}

func TestHistogramIntersection(t *testing.T) {
	a := Vector{0.5, 0.5}
	if hi := HistogramIntersection(a, a); !almostEq(hi, 1, 1e-12) {
		t.Fatalf("self intersection = %v", hi)
	}
	b := Vector{1, 0}
	c := Vector{0, 1}
	if hi := HistogramIntersection(b, c); hi != 0 {
		t.Fatalf("disjoint intersection = %v", hi)
	}
}

func TestHistogramIntersectionBoundedProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		v := make(Vector, len(a))
		w := make(Vector, len(b))
		for i, x := range a {
			v[i] = float64(x)
		}
		for i, x := range b {
			w[i] = float64(x)
		}
		hi := HistogramIntersection(v, w)
		return hi >= 0 && hi <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestJaccard(t *testing.T) {
	if j := Jaccard([]string{"a", "b"}, []string{"a", "b"}); !almostEq(j, 1, 1e-12) {
		t.Fatalf("identical jaccard = %v", j)
	}
	if j := Jaccard([]string{"a"}, []string{"b"}); j != 0 {
		t.Fatalf("disjoint jaccard = %v", j)
	}
	if j := Jaccard([]string{"a", "b"}, []string{"b", "c"}); !almostEq(j, 1.0/3, 1e-12) {
		t.Fatalf("overlap jaccard = %v", j)
	}
	// Duplicates must not inflate.
	if j := Jaccard([]string{"a", "a"}, []string{"a"}); !almostEq(j, 1, 1e-12) {
		t.Fatalf("duplicate jaccard = %v", j)
	}
	if j := Jaccard(nil, nil); j != 0 {
		t.Fatalf("empty jaccard = %v", j)
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	top := TopK(scores, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0] != 1 || top[1] != 3 || top[2] != 2 {
		t.Fatalf("topk = %v (ties must break by index)", top)
	}
	if got := TopK(scores, 100); len(got) != len(scores) {
		t.Fatal("k beyond length should clamp")
	}
}

func TestMetricSimilarityBounded(t *testing.T) {
	metrics := []Metric{MetricCosine, MetricHistogram, MetricInvL1}
	f := func(a, b []uint8) bool {
		v := make(Vector, len(a))
		w := make(Vector, len(b))
		for i, x := range a {
			v[i] = float64(x) - 128
		}
		for i, x := range b {
			w[i] = float64(x) - 128
		}
		for _, m := range metrics {
			s := m.Similarity(v, w)
			if math.IsNaN(s) || s < 0 || s > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricString(t *testing.T) {
	if MetricCosine.String() != "cosine" || MetricHistogram.String() != "histogram" || MetricInvL1.String() != "invL1" {
		t.Fatal("metric names wrong")
	}
}
