package feature

import (
	"fmt"
	"math/rand"
	"testing"
)

func randomUnit(r *rand.Rand, dim int) Vector {
	v := make(Vector, dim)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v.Normalize()
}

func TestLSHFindsNearDuplicate(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	l := NewLSH(1, 32, 8, 10)
	base := randomUnit(r, 32)
	l.Put("target", base)
	for i := 0; i < 200; i++ {
		l.Put(fmt.Sprintf("noise%d", i), randomUnit(r, 32))
	}
	// Query with a slightly perturbed copy.
	q := base.Clone()
	for i := range q {
		q[i] += r.NormFloat64() * 0.05
	}
	q.Normalize()
	got := l.Query(q, 5)
	if len(got) == 0 || got[0].ID != "target" {
		t.Fatalf("near-duplicate not top hit: %v", got)
	}
}

func TestLSHRecallVsScan(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	l := NewLSH(2, 16, 12, 8)
	for i := 0; i < 500; i++ {
		l.Put(fmt.Sprintf("d%d", i), randomUnit(r, 16))
	}
	hits := 0
	trials := 30
	for i := 0; i < trials; i++ {
		q := randomUnit(r, 16)
		truth := l.Scan(q, 10)
		approx := l.Query(q, 10)
		truthSet := make(map[string]bool)
		for _, c := range truth {
			truthSet[c.ID] = true
		}
		for _, c := range approx {
			if truthSet[c.ID] {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(trials*10)
	if recall < 0.4 {
		t.Fatalf("LSH recall@10 too low: %.2f", recall)
	}
}

func TestLSHDeleteAndReplace(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	l := NewLSH(3, 8, 4, 6)
	v := randomUnit(r, 8)
	l.Put("a", v)
	if l.Len() != 1 {
		t.Fatalf("len = %d", l.Len())
	}
	// Replace with a different vector; old buckets must be cleaned.
	w := randomUnit(r, 8)
	l.Put("a", w)
	if l.Len() != 1 {
		t.Fatalf("replace changed len: %d", l.Len())
	}
	got := l.Scan(w, 1)
	if len(got) != 1 || !almostEq(got[0].Score, 1, 1e-9) {
		t.Fatalf("replaced vector not found: %v", got)
	}
	if !l.Delete("a") {
		t.Fatal("delete should report true")
	}
	if l.Delete("a") {
		t.Fatal("double delete should report false")
	}
	if l.Len() != 0 {
		t.Fatalf("len after delete = %d", l.Len())
	}
	if got := l.Query(w, 5); len(got) != 0 {
		t.Fatalf("deleted item still returned: %v", got)
	}
}

func TestLSHQueryDeterministicOrder(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	l := NewLSH(4, 8, 6, 6)
	for i := 0; i < 100; i++ {
		l.Put(fmt.Sprintf("d%02d", i), randomUnit(r, 8))
	}
	q := randomUnit(r, 8)
	a := l.Query(q, 10)
	b := l.Query(q, 10)
	if len(a) != len(b) {
		t.Fatal("nondeterministic result size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order at %d", i)
		}
	}
}

func TestLSHPutIsCopy(t *testing.T) {
	l := NewLSH(5, 4, 2, 4)
	v := Vector{1, 0, 0, 0}
	l.Put("a", v)
	v[0] = -1 // mutate caller's slice
	got := l.Scan(Vector{1, 0, 0, 0}, 1)
	if len(got) != 1 || !almostEq(got[0].Score, 1, 1e-9) {
		t.Fatal("index must store a copy of the vector")
	}
}
