package feature

import (
	"math"
	"math/rand"
	"testing"
)

func unitConcept(dim, hot int) Vector {
	v := make(Vector, dim)
	v[hot] = 1
	return v
}

func TestVisualExtractorHistogramValid(t *testing.T) {
	e := NewVisualExtractor(1, 16, 12, 8, 0.1)
	r := rand.New(rand.NewSource(2))
	vf := e.Extract(r, unitConcept(16, 3))
	var mass float64
	for _, x := range vf.ColorHist {
		if x < 0 {
			t.Fatalf("negative histogram bin %v", x)
		}
		mass += x
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Fatalf("histogram mass = %v", mass)
	}
	if math.Abs(vf.Texture.Norm()-1) > 1e-9 {
		t.Fatalf("texture norm = %v", vf.Texture.Norm())
	}
}

func TestVisualSimilaritySameConceptHigher(t *testing.T) {
	e := NewVisualExtractor(1, 16, 12, 8, 0.05)
	r := rand.New(rand.NewSource(3))
	a1 := e.Extract(r, unitConcept(16, 3))
	a2 := e.Extract(r, unitConcept(16, 3))
	b := e.Extract(r, unitConcept(16, 9))
	same := VisualSimilarity(a1, a2, 0.5)
	diff := VisualSimilarity(a1, b, 0.5)
	if same <= diff {
		t.Fatalf("same-concept similarity %v <= cross-concept %v", same, diff)
	}
}

func TestVisualNoiseDegradesMatch(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	concept := unitConcept(16, 5)
	clean := NewVisualExtractor(7, 16, 12, 8, 0.0)
	noisy := NewVisualExtractor(7, 16, 12, 8, 1.5)
	c1, c2 := clean.Extract(r, concept), clean.Extract(r, concept)
	var noisySum, cleanSum float64
	n := 30
	for i := 0; i < n; i++ {
		n1, n2 := noisy.Extract(r, concept), noisy.Extract(r, concept)
		noisySum += VisualSimilarity(n1, n2, 0.5)
		cleanSum += VisualSimilarity(c1, c2, 0.5)
	}
	if noisySum/float64(n) >= cleanSum/float64(n) {
		t.Fatal("heavy noise should lower self-similarity")
	}
}

func TestVisualSimilarityBounds(t *testing.T) {
	e := NewVisualExtractor(9, 8, 10, 6, 0.3)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		a := e.Extract(r, unitConcept(8, r.Intn(8)))
		b := e.Extract(r, unitConcept(8, r.Intn(8)))
		s := VisualSimilarity(a, b, 0.5)
		if s < 0 || s > 1+1e-9 {
			t.Fatalf("similarity out of range: %v", s)
		}
	}
}
