package feature

import (
	"math"
	"sort"
)

// Compound-object matching. The paper asks: "how does a web page of a
// fashion magazine match with an auction catalog, taking into account the
// images they contain, the corresponding text, and their different layout?"
// We model a compound object as a bag of typed parts and match two compounds
// by a greedy weighted assignment between their parts, where same-type parts
// use their native metric and cross-type parts go through the concept space.

// PartKind discriminates sub-object types inside a compound.
type PartKind int

// Part kinds.
const (
	PartText PartKind = iota
	PartImage
	PartConcept // already-projected concept vector (annotations, metadata)
)

func (k PartKind) String() string {
	switch k {
	case PartText:
		return "text"
	case PartImage:
		return "image"
	case PartConcept:
		return "concept"
	default:
		return "part(?)"
	}
}

// Part is one sub-object of a compound: exactly one payload field is set
// according to Kind, plus a concept-space projection used for cross-type
// comparison. Weight expresses the part's prominence in the layout.
type Part struct {
	Kind    PartKind
	Text    SparseVector
	Visual  VisualFeatures
	Concept Vector
	Weight  float64
}

// Compound is an object made of heterogeneous parts.
type Compound struct {
	Parts []Part
}

// PartSimilarity scores two parts. Same-type parts use the native metric;
// differing types fall back to concept-space cosine, which is exactly the
// cross-modal comparison the paper calls for.
func PartSimilarity(a, b Part) float64 {
	if a.Kind == b.Kind {
		switch a.Kind {
		case PartText:
			return CosineSparse(a.Text, b.Text)
		case PartImage:
			return VisualSimilarity(a.Visual, b.Visual, 0.5)
		case PartConcept:
			return clamp01(Cosine(a.Concept, b.Concept))
		}
	}
	return clamp01(Cosine(a.Concept, b.Concept))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// CompoundSimilarity matches compounds a and b by greedy maximum-weight
// assignment over part pairs, weighting each matched pair by the geometric
// mean of the parts' prominence weights, normalized so identical compounds
// score 1. Greedy assignment is within 1/2 of optimal for this problem and
// runs in O(nm log nm) — fine for layout-scale part counts.
func CompoundSimilarity(a, b Compound) float64 {
	if len(a.Parts) == 0 || len(b.Parts) == 0 {
		return 0
	}
	type pair struct {
		i, j int
		s    float64
		w    float64
	}
	pairs := make([]pair, 0, len(a.Parts)*len(b.Parts))
	for i, pa := range a.Parts {
		for j, pb := range b.Parts {
			w := geoMean(weightOr1(pa.Weight), weightOr1(pb.Weight))
			s := PartSimilarity(pa, pb)
			pairs = append(pairs, pair{i, j, s, w})
		}
	}
	sort.Slice(pairs, func(x, y int) bool {
		sx, sy := pairs[x].s*pairs[x].w, pairs[y].s*pairs[y].w
		if sx != sy {
			return sx > sy
		}
		if pairs[x].i != pairs[y].i {
			return pairs[x].i < pairs[y].i
		}
		return pairs[x].j < pairs[y].j
	})
	usedA := make([]bool, len(a.Parts))
	usedB := make([]bool, len(b.Parts))
	var score, mass float64
	for _, p := range pairs {
		if usedA[p.i] || usedB[p.j] {
			continue
		}
		usedA[p.i] = true
		usedB[p.j] = true
		score += p.s * p.w
		mass += p.w
	}
	// Unmatched parts (size mismatch) dilute the score through the larger
	// side's leftover weight.
	for i, pa := range a.Parts {
		if !usedA[i] {
			mass += weightOr1(pa.Weight) / 2
		}
	}
	for j, pb := range b.Parts {
		if !usedB[j] {
			mass += weightOr1(pb.Weight) / 2
		}
	}
	if mass == 0 {
		return 0
	}
	return score / mass
}

func weightOr1(w float64) float64 {
	if w <= 0 {
		return 1
	}
	return w
}

func geoMean(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return math.Sqrt(a * b)
}
