package feature

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("The Folk-Jewelry of Europe, and its 12 styles!")
	want := []string{"folk", "jewelry", "europe", "12", "styles"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tokenize = %v, want %v", got, want)
	}
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("empty text tokens = %v", got)
	}
	if got := Tokenize("a I . ,"); len(got) != 0 {
		t.Fatalf("stopword/short tokens leaked: %v", got)
	}
}

func TestVocabularyObserveAndIDF(t *testing.T) {
	v := NewVocabulary()
	v.Observe([]string{"gold", "ring"})
	v.Observe([]string{"gold", "necklace"})
	v.Observe([]string{"silver", "ring"})
	if v.Docs() != 3 {
		t.Fatalf("docs = %d", v.Docs())
	}
	if v.Size() != 4 {
		t.Fatalf("size = %d", v.Size())
	}
	// "gold" appears in 2 docs, "necklace" in 1: rarer term has higher IDF.
	if v.IDF(v.Dim("necklace")) <= v.IDF(v.Dim("gold")) {
		t.Fatal("rarer term should have higher IDF")
	}
	if v.Dim("platinum") != -1 {
		t.Fatal("unknown term should map to -1")
	}
	if v.IDF(-1) != 0 || v.IDF(99) != 0 {
		t.Fatal("out-of-range IDF should be 0")
	}
	if v.Term(v.Dim("gold")) != "gold" {
		t.Fatal("term/dim roundtrip failed")
	}
}

func TestVocabularyDFCountsOncePerDoc(t *testing.T) {
	v := NewVocabulary()
	v.Observe([]string{"gold", "gold", "gold"})
	v.Observe([]string{"silver"})
	// df(gold)=1 despite three occurrences; idf(gold)==idf(silver).
	if math.Abs(v.IDF(v.Dim("gold"))-v.IDF(v.Dim("silver"))) > 1e-12 {
		t.Fatal("df must count documents, not occurrences")
	}
}

func TestVectorizeAndCosineSparse(t *testing.T) {
	v := NewVocabulary()
	docs := [][]string{
		Tokenize("gold ring byzantine filigree"),
		Tokenize("gold necklace modern minimal"),
		Tokenize("silver ring celtic knot"),
	}
	for _, d := range docs {
		v.Observe(d)
	}
	q := v.Vectorize(Tokenize("byzantine gold ring"))
	s0 := CosineSparse(q, v.Vectorize(docs[0]))
	s1 := CosineSparse(q, v.Vectorize(docs[1]))
	s2 := CosineSparse(q, v.Vectorize(docs[2]))
	if !(s0 > s1 && s0 > s2) {
		t.Fatalf("best doc not ranked first: %v %v %v", s0, s1, s2)
	}
	if self := CosineSparse(q, q); !almostEq(self, 1, 1e-9) {
		t.Fatalf("self cosine = %v", self)
	}
	// Unknown terms vanish.
	empty := v.Vectorize([]string{"zzzz"})
	if len(empty.Dims) != 0 {
		t.Fatal("unknown-only query should vectorize empty")
	}
	if CosineSparse(q, empty) != 0 {
		t.Fatal("cosine with empty should be 0")
	}
}

func TestSparseDimsSorted(t *testing.T) {
	v := NewVocabulary()
	v.Observe(Tokenize("zebra yak xenon walrus vulture"))
	sv := v.Vectorize(Tokenize("walrus zebra xenon"))
	if !sort.IntsAreSorted(sv.Dims) {
		t.Fatalf("dims not sorted: %v", sv.Dims)
	}
}

func TestProjectPreservesSimilarityOrdering(t *testing.T) {
	v := NewVocabulary()
	corpus := [][]string{
		Tokenize("gold ring byzantine filigree ancient greek jewel"),
		Tokenize("gold necklace byzantine pendant greek"),
		Tokenize("database transaction log recovery checkpoint index"),
	}
	for _, d := range corpus {
		v.Observe(d)
	}
	a := v.Vectorize(corpus[0]).Project(64)
	b := v.Vectorize(corpus[1]).Project(64)
	c := v.Vectorize(corpus[2]).Project(64)
	if Cosine(a, b) <= Cosine(a, c) {
		t.Fatal("projection destroyed topical similarity ordering")
	}
}

func TestProjectDeterministic(t *testing.T) {
	f := func(dims []uint16, ws []uint8) bool {
		n := len(dims)
		if len(ws) < n {
			n = len(ws)
		}
		sv := SparseVector{}
		for i := 0; i < n; i++ {
			sv.Dims = append(sv.Dims, int(dims[i]))
			sv.Weights = append(sv.Weights, float64(ws[i]))
		}
		p1 := sv.Project(32)
		p2 := sv.Project(32)
		return reflect.DeepEqual(p1, p2) && len(p1) == 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
