package feature

import (
	"math"
	"math/rand"
)

// Visual features. The paper's scenario compares jewelry images by "visible
// features, e.g., color histogram or texture". Without real images we
// simulate extraction: every object carries a latent concept vector (its
// ground truth), and the "extractor" renders that concept into a color
// histogram and a texture vector with controllable noise. This preserves the
// property the experiments need — objects about the same concept have
// similar visual features, imperfectly.

// VisualFeatures bundles the two classic low-level descriptors.
type VisualFeatures struct {
	ColorHist Vector // non-negative, sums to ~1
	Texture   Vector // unit-norm response vector
}

// VisualExtractor simulates a feature extractor with a fixed random
// projection from concept space to descriptor space plus per-extraction
// noise. Two extractors with the same seed are the "same algorithm".
type VisualExtractor struct {
	colorProj []Vector // conceptDim x colorBins
	texProj   []Vector // conceptDim x texDims
	noise     float64
}

// NewVisualExtractor builds an extractor for the given concept
// dimensionality with colorBins histogram buckets and texDims texture
// responses. noise controls extraction error (0 = perfect).
func NewVisualExtractor(seed int64, conceptDim, colorBins, texDims int, noise float64) *VisualExtractor {
	r := rand.New(rand.NewSource(seed))
	e := &VisualExtractor{noise: noise}
	e.colorProj = randomProjection(r, conceptDim, colorBins)
	e.texProj = randomProjection(r, conceptDim, texDims)
	return e
}

func randomProjection(r *rand.Rand, in, out int) []Vector {
	proj := make([]Vector, in)
	for i := range proj {
		row := make(Vector, out)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		proj[i] = row
	}
	return proj
}

func project(proj []Vector, concept Vector) Vector {
	if len(proj) == 0 {
		return nil
	}
	out := make(Vector, len(proj[0]))
	for i, c := range concept {
		if i >= len(proj) || c == 0 {
			continue
		}
		row := proj[i]
		for j := range out {
			out[j] += c * row[j]
		}
	}
	return out
}

// Extract renders the latent concept vector into visual features, adding
// extraction noise from r.
func (e *VisualExtractor) Extract(r *rand.Rand, concept Vector) VisualFeatures {
	color := project(e.colorProj, concept)
	tex := project(e.texProj, concept)
	for i := range color {
		if e.noise > 0 {
			color[i] += r.NormFloat64() * e.noise
		}
		// Histograms are non-negative: softplus squash.
		color[i] = math.Log1p(math.Exp(color[i]))
	}
	var mass float64
	for _, x := range color {
		mass += x
	}
	if mass > 0 {
		color.Scale(1 / mass)
	}
	if e.noise > 0 {
		for i := range tex {
			tex[i] += r.NormFloat64() * e.noise
		}
	}
	tex.Normalize()
	return VisualFeatures{ColorHist: color, Texture: tex}
}

// VisualSimilarity combines color and texture matches with the given weight
// on color (1-weight on texture). Both components are in [0,1].
func VisualSimilarity(a, b VisualFeatures, colorWeight float64) float64 {
	c := HistogramIntersection(a.ColorHist, b.ColorHist)
	t := Cosine(a.Texture, b.Texture)
	if t < 0 {
		t = 0
	}
	return colorWeight*c + (1-colorWeight)*t
}
