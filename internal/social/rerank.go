package social

import (
	"sort"

	"repro/internal/feature"
	"repro/internal/profile"
)

// Social re-ranking: "socialization implies that other people's profiles
// should be used concurrently as well to affect the relevance of an
// information item" (§6). The Reranker blends the user's own score with the
// affinity-weighted interest of their accessible circle.

// Item is a scored candidate with its concept vector.
type Item struct {
	ID      string
	Score   float64
	Concept feature.Vector
}

// Reranker holds the pieces needed to apply social influence.
type Reranker struct {
	Graph *Graph
	ACL   *ACL
	Store *profile.Store
	// Restart and Iters tune the proximity walk.
	Restart float64
	Iters   int
	// TopFriends bounds how many circle members are consulted.
	TopFriends int
}

// NewReranker wires a reranker with sensible defaults.
func NewReranker(g *Graph, acl *ACL, store *profile.Store) *Reranker {
	return &Reranker{Graph: g, ACL: acl, Store: store, Restart: 0.15, Iters: 25, TopFriends: 8}
}

// circleMember is an accessible friend with affinity weight.
type circleMember struct {
	p        *profile.Profile
	affinity float64
}

// circle resolves the user's accessible, affinity-ranked circle.
func (r *Reranker) circle(me *profile.Profile) []circleMember {
	prox := r.Graph.Proximity(me.UserID, r.Restart, r.Iters)
	var out []circleMember
	for _, uid := range r.Store.Users() {
		if uid == me.UserID {
			continue
		}
		full := r.Store.Get(uid)
		if full == nil {
			continue
		}
		view := r.ACL.View(full, me.UserID)
		if view == nil {
			continue // nothing shared with me
		}
		aff := Affinity(me, view, prox)
		if aff <= 0 {
			continue
		}
		out = append(out, circleMember{p: view, affinity: aff})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].affinity != out[j].affinity {
			return out[i].affinity > out[j].affinity
		}
		return out[i].p.UserID < out[j].p.UserID
	})
	if r.TopFriends > 0 && len(out) > r.TopFriends {
		out = out[:r.TopFriends]
	}
	return out
}

// Rerank re-scores items: score' = (1-beta)*score + beta*socialScore, where
// socialScore is the affinity-weighted mean of circle members' interest in
// the item. beta = 0 returns the input order.
func (r *Reranker) Rerank(me *profile.Profile, items []Item, beta float64) []Item {
	out := make([]Item, len(items))
	copy(out, items)
	if beta <= 0 {
		return out
	}
	if beta > 1 {
		beta = 1
	}
	circle := r.circle(me)
	if len(circle) == 0 {
		return out
	}
	var affTotal float64
	for _, m := range circle {
		affTotal += m.affinity
	}
	for i := range out {
		var social float64
		for _, m := range circle {
			interest := feature.Cosine(m.p.Interests, out[i].Concept)
			if interest < 0 {
				interest = 0
			}
			social += m.affinity * interest
		}
		if affTotal > 0 {
			social /= affTotal
		}
		out[i].Score = (1-beta)*out[i].Score + beta*social
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// LearnAffinityFromCoActivity strengthens graph edges between users who act
// on the same items — "establishing profile similarity (or other
// association) through cross-user activity observations" (§6). acts maps
// user → set of item ids acted on; every co-action adds increment to the
// pair's edge.
func LearnAffinityFromCoActivity(g *Graph, acts map[string]map[string]bool, increment float64) {
	users := make([]string, 0, len(acts))
	for u := range acts {
		users = append(users, u)
	}
	sort.Strings(users)
	for i := 0; i < len(users); i++ {
		for j := i + 1; j < len(users); j++ {
			a, b := users[i], users[j]
			var shared int
			for item := range acts[a] {
				if acts[b][item] {
					shared++
				}
			}
			if shared == 0 {
				continue
			}
			w := g.Neighbors(a)[b] + increment*float64(shared)
			g.AddEdge(a, b, w)
		}
	}
}
