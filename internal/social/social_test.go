package social

import (
	"math"
	"testing"

	"repro/internal/feature"
	"repro/internal/profile"
)

func concept(dim, hot int) feature.Vector {
	v := make(feature.Vector, dim)
	v[hot] = 1
	return v
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	g.AddEdge("a", "b", 1)
	g.AddEdge("b", "c", 2)
	g.AddEdge("a", "a", 5) // self edge ignored
	g.AddEdge("a", "x", 0) // non-positive ignored
	nb := g.Neighbors("b")
	if len(nb) != 2 || nb["a"] != 1 || nb["c"] != 2 {
		t.Fatalf("neighbors = %v", nb)
	}
	users := g.Users()
	if len(users) != 3 {
		t.Fatalf("users = %v", users)
	}
	// Neighbors returns a copy.
	nb["a"] = 99
	if g.Neighbors("b")["a"] != 1 {
		t.Fatal("Neighbors leaked internal map")
	}
}

func TestProximityDecaysWithDistance(t *testing.T) {
	g := NewGraph()
	// Chain a-b-c-d plus a strong direct tie a-e.
	g.AddEdge("a", "b", 1)
	g.AddEdge("b", "c", 1)
	g.AddEdge("c", "d", 1)
	g.AddEdge("a", "e", 3)
	prox := g.Proximity("a", 0.15, 40)
	if prox["a"] <= prox["b"] {
		t.Fatal("self proximity should dominate")
	}
	if prox["b"] <= prox["c"] || prox["c"] <= prox["d"] {
		t.Fatalf("proximity should decay along the chain: %v", prox)
	}
	if prox["e"] <= prox["b"] {
		t.Fatal("stronger tie should mean higher proximity")
	}
	// Mass should be ~1.
	var mass float64
	for _, v := range prox {
		mass += v
	}
	if math.Abs(mass-1) > 0.01 {
		t.Fatalf("proximity mass = %v", mass)
	}
}

func TestProximityIsolatedSeed(t *testing.T) {
	g := NewGraph()
	g.AddEdge("x", "y", 1)
	prox := g.Proximity("loner", 0.15, 10)
	if prox["loner"] < 0.99 {
		t.Fatalf("isolated seed should keep all mass: %v", prox)
	}
}

func TestAffinityBlends(t *testing.T) {
	a, b := profile.New("a", 8), profile.New("b", 8)
	a.Interests = concept(8, 1)
	b.Interests = concept(8, 1)
	g := NewGraph()
	g.AddEdge("a", "b", 1)
	prox := g.Proximity("a", 0.15, 30)
	withGraph := Affinity(a, b, prox)
	withoutGraph := Affinity(a, b, nil)
	if withGraph <= withoutGraph {
		t.Fatal("graph tie should raise affinity")
	}
	if withGraph > 1 {
		t.Fatalf("affinity = %v", withGraph)
	}
}

func TestACLScopes(t *testing.T) {
	acl := NewACL()
	owner := profile.New("iris", 4)
	owner.Interests = concept(4, 1)
	owner.TermAffinity["gold"] = 1

	if v := acl.View(owner, "jason"); v != nil {
		t.Fatal("no grant should mean no view")
	}
	if acl.Allowed("iris", "iris") != ScopeAll {
		t.Fatal("owner sees own profile")
	}
	acl.Grant("iris", "jason", ScopeInterests)
	v := acl.View(owner, "jason")
	if v == nil || feature.Cosine(v.Interests, owner.Interests) < 0.99 {
		t.Fatal("interests should be visible")
	}
	if len(v.TermAffinity) != 0 {
		t.Fatal("terms should be redacted")
	}
	acl.Grant("iris", "jason", ScopeTerms)
	v = acl.View(owner, "jason")
	if v.TermAffinity["gold"] != 1 {
		t.Fatal("terms should now be visible")
	}
	acl.Revoke("iris", "jason", ScopeInterests|ScopeTerms)
	if acl.View(owner, "jason") != nil {
		t.Fatal("revoked grant should deny")
	}
}

func buildRerankWorld(t *testing.T) (*Reranker, *profile.Profile) {
	t.Helper()
	g := NewGraph()
	acl := NewACL()
	store := profile.NewStore()

	me := profile.New("iris", 8)
	me.Interests = concept(8, 1)
	store.Put(me)

	friend := profile.New("jason", 8)
	friend.Interests = concept(8, 3) // friend loves concept 3
	store.Put(friend)
	g.AddEdge("iris", "jason", 2)
	acl.Grant("jason", "iris", ScopeAll)

	stranger := profile.New("zoe", 8)
	stranger.Interests = concept(8, 5)
	store.Put(stranger) // no edge, no grant

	return NewReranker(g, acl, store), me
}

func TestRerankBoostsFriendInterests(t *testing.T) {
	r, me := buildRerankWorld(t)
	items := []Item{
		{ID: "friendPick", Score: 0.50, Concept: concept(8, 3)},
		{ID: "neutral", Score: 0.52, Concept: concept(8, 6)},
	}
	out := r.Rerank(me, items, 0.5)
	if out[0].ID != "friendPick" {
		t.Fatalf("social rerank order: %v, %v", out[0], out[1])
	}
	// beta=0 keeps original order.
	out0 := r.Rerank(me, items, 0)
	if out0[0].ID != "friendPick" && out0[0].Score != items[0].Score {
		t.Fatal("beta=0 should not rescore")
	}
	if out0[0].Score != items[0].Score && out0[1].Score != items[1].Score {
		t.Fatal("beta=0 must preserve scores")
	}
}

func TestRerankIgnoresInaccessibleProfiles(t *testing.T) {
	r, me := buildRerankWorld(t)
	// Item matching only the stranger's interest must get no boost.
	items := []Item{
		{ID: "strangerPick", Score: 0.5, Concept: concept(8, 5)},
		{ID: "friendPick", Score: 0.5, Concept: concept(8, 3)},
	}
	out := r.Rerank(me, items, 0.6)
	if out[0].ID != "friendPick" {
		t.Fatalf("inaccessible profile influenced ranking: %+v", out)
	}
}

func TestRerankNoCircle(t *testing.T) {
	g := NewGraph()
	acl := NewACL()
	store := profile.NewStore()
	me := profile.New("iris", 8)
	store.Put(me)
	r := NewReranker(g, acl, store)
	items := []Item{{ID: "a", Score: 0.9}, {ID: "b", Score: 0.1}}
	out := r.Rerank(me, items, 0.8)
	if out[0].ID != "a" || out[0].Score != 0.9 {
		t.Fatalf("no-circle rerank changed scores: %+v", out)
	}
}

func TestLearnAffinityFromCoActivity(t *testing.T) {
	g := NewGraph()
	acts := map[string]map[string]bool{
		"iris":  {"doc1": true, "doc2": true, "doc3": true},
		"jason": {"doc2": true, "doc3": true},
		"zoe":   {"doc9": true},
	}
	LearnAffinityFromCoActivity(g, acts, 0.5)
	if w := g.Neighbors("iris")["jason"]; math.Abs(w-1.0) > 1e-9 {
		t.Fatalf("iris-jason weight = %v, want 1.0 (2 shared * 0.5)", w)
	}
	if _, ok := g.Neighbors("iris")["zoe"]; ok {
		t.Fatal("no co-activity should mean no edge")
	}
	// Repeated observation accumulates.
	LearnAffinityFromCoActivity(g, acts, 0.5)
	if w := g.Neighbors("iris")["jason"]; math.Abs(w-2.0) > 1e-9 {
		t.Fatalf("accumulated weight = %v, want 2.0", w)
	}
}
