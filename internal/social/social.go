// Package social implements the paper's Socialization pillar: other
// people's profiles, suitably access-controlled and weighted by affinity to
// the current user, influence the relevance of information items. Affinity
// combines profile similarity with social-graph proximity; profile sharing
// respects per-part access grants.
package social

import (
	"sort"
	"sync"

	"repro/internal/feature"
	"repro/internal/profile"
	"repro/internal/uncertainty"
)

// Graph is a weighted undirected social graph over user ids. Safe for
// concurrent use.
type Graph struct {
	mu  sync.RWMutex
	adj map[string]map[string]float64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{adj: make(map[string]map[string]float64)}
}

// AddEdge links a and b with the given positive weight (replacing any
// existing edge). Self-edges are ignored.
func (g *Graph) AddEdge(a, b string, w float64) {
	if a == b || w <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.edge(a, b, w)
	g.edge(b, a, w)
}

func (g *Graph) edge(from, to string, w float64) {
	m, ok := g.adj[from]
	if !ok {
		m = make(map[string]float64)
		g.adj[from] = m
	}
	m[to] = w
}

// Neighbors returns a copy of a user's adjacency.
func (g *Graph) Neighbors(u string) map[string]float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[string]float64, len(g.adj[u]))
	for k, v := range g.adj[u] {
		out[k] = v
	}
	return out
}

// Users returns all user ids present, sorted.
func (g *Graph) Users() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.adj))
	for u := range g.adj {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Proximity computes random-walk-with-restart proximity from seed:
// the stationary distribution of a walker that at each step restarts at the
// seed with probability restart, otherwise moves along edge weights.
// Standard personalized-PageRank iteration; iters around 30 converges for
// social-scale graphs.
func (g *Graph) Proximity(seed string, restart float64, iters int) map[string]float64 {
	if restart <= 0 || restart >= 1 {
		restart = 0.15
	}
	if iters <= 0 {
		iters = 30
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	cur := map[string]float64{seed: 1}
	for it := 0; it < iters; it++ {
		next := map[string]float64{seed: restart}
		for u, mass := range cur {
			nbrs := g.adj[u]
			if len(nbrs) == 0 {
				// Dangling mass returns to the seed.
				next[seed] += (1 - restart) * mass
				continue
			}
			var total float64
			for _, w := range nbrs {
				total += w
			}
			for v, w := range nbrs {
				next[v] += (1 - restart) * mass * (w / total)
			}
		}
		cur = next
	}
	return cur
}

// Affinity combines profile similarity and graph proximity, the paper's
// "profile similarity or other association". proximity should come from
// Proximity(seed=a) and is rescaled against the seed's self-mass.
func Affinity(a, b *profile.Profile, proximity map[string]float64) float64 {
	sim := profile.Similarity(a, b)
	var prox float64
	if proximity != nil {
		self := proximity[a.UserID]
		if self > 0 {
			prox = proximity[b.UserID] / self
			if prox > 1 {
				prox = 1
			}
		}
	}
	return 0.6*sim + 0.4*prox
}

// Scope is a bitmask of profile parts an owner can share.
type Scope uint8

// Shareable profile parts.
const (
	ScopeInterests Scope = 1 << iota
	ScopeTerms
	ScopeTrust
)

// ScopeAll grants everything.
const ScopeAll = ScopeInterests | ScopeTerms | ScopeTrust

// ACL records per-owner grants: which scopes each grantee may read.
// "The set of others' profiles and queries that someone has access to must
// be restricted based on access rights" (§6).
type ACL struct {
	mu     sync.RWMutex
	grants map[string]map[string]Scope
}

// NewACL returns an empty ACL (nothing shared).
func NewACL() *ACL {
	return &ACL{grants: make(map[string]map[string]Scope)}
}

// Grant lets grantee read the given scopes of owner's profile.
func (a *ACL) Grant(owner, grantee string, s Scope) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.grants[owner]
	if !ok {
		m = make(map[string]Scope)
		a.grants[owner] = m
	}
	m[grantee] |= s
}

// Revoke removes scopes from a grant.
func (a *ACL) Revoke(owner, grantee string, s Scope) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if m, ok := a.grants[owner]; ok {
		m[grantee] &^= s
		if m[grantee] == 0 {
			delete(m, grantee)
		}
	}
}

// Allowed returns the scopes grantee may read of owner (owners see all of
// their own profile).
func (a *ACL) Allowed(owner, grantee string) Scope {
	if owner == grantee {
		return ScopeAll
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.grants[owner][grantee]
}

// View returns the portion of owner's profile that grantee may read, as a
// redacted copy. Denied parts are zeroed. Returns nil when nothing is
// shared.
func (a *ACL) View(owner *profile.Profile, grantee string) *profile.Profile {
	s := a.Allowed(owner.UserID, grantee)
	if s == 0 {
		return nil
	}
	v := owner.Clone()
	if s&ScopeInterests == 0 {
		v.Interests = make(feature.Vector, len(v.Interests))
	}
	if s&ScopeTerms == 0 {
		v.TermAffinity = map[string]float64{}
	}
	if s&ScopeTrust == 0 {
		v.SourceTrust = map[string]uncertainty.BetaBelief{}
	}
	return v
}
