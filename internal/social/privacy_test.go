package social

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/feature"
	"repro/internal/profile"
	"repro/internal/uncertainty"
)

func richProfile() *profile.Profile {
	p := profile.New("iris", 16)
	p.Interests = concept(16, 2)
	p.TermAffinity["gold"] = 1.2
	p.TermAffinity["ring"] = 0.8
	p.TermAffinity["whisper"] = 0.05 // identifying long-tail term
	p.TermAffinity["spam"] = -0.9
	p.SourceTrust["museum"] = uncertainty.BetaBelief{Alpha: 9, Beta: 1}
	p.Variants["travel"] = &profile.Variant{Label: "travel"}
	p.Evidence = 120
	return p
}

func TestNoisyViewPrivacyUtilityTradeoff(t *testing.T) {
	p := richProfile()
	r := rand.New(rand.NewSource(1))
	trials := 40
	var simLoose, simTight float64
	for i := 0; i < trials; i++ {
		loose := NoisyView(p, 10, 0.3, 1, r)   // weak privacy
		tight := NoisyView(p, 0.05, 0.3, 1, r) // strong privacy
		simLoose += feature.Cosine(p.Interests, loose.Interests)
		simTight += feature.Cosine(p.Interests, tight.Interests)
	}
	simLoose /= float64(trials)
	simTight /= float64(trials)
	if simLoose <= simTight {
		t.Fatalf("more privacy should mean less fidelity: loose=%v tight=%v", simLoose, simTight)
	}
	if simLoose < 0.9 {
		t.Fatalf("weak privacy should stay useful: %v", simLoose)
	}
	if simTight > 0.6 {
		t.Fatalf("strong privacy should blur interests: %v", simTight)
	}
}

func TestNoisyViewRedactsSensitiveParts(t *testing.T) {
	p := richProfile()
	r := rand.New(rand.NewSource(2))
	v := NoisyView(p, 5, 0.3, 1, r)
	if len(v.SourceTrust) != 0 {
		t.Fatal("source trust must never be published")
	}
	if len(v.Variants) != 0 {
		t.Fatal("context variants must never be published")
	}
	if v.Evidence != 0 {
		t.Fatal("evidence weight must be stripped")
	}
	// Long-tail identifying term dropped; strong terms kept as signs only.
	if _, ok := v.TermAffinity["whisper"]; ok {
		t.Fatal("sub-floor term leaked")
	}
	if a := v.TermAffinity["gold"]; a != 0.5 {
		t.Fatalf("strong term should publish as +0.5, got %v", a)
	}
	if a := v.TermAffinity["spam"]; a != -0.5 {
		t.Fatalf("negative term should publish as -0.5, got %v", a)
	}
}

func TestNoisyViewSubsampling(t *testing.T) {
	p := profile.New("iris", 4)
	for i := 0; i < 200; i++ {
		p.TermAffinity[string(rune('a'+i%26))+string(rune('a'+i/26))] = 1
	}
	r := rand.New(rand.NewSource(3))
	v := NoisyView(p, 5, 0.3, 0.5, r)
	kept := len(v.TermAffinity)
	if kept < 60 || kept > 140 {
		t.Fatalf("keepProb=0.5 kept %d of 200", kept)
	}
}

func TestPublishNoisyWorkflow(t *testing.T) {
	store := profile.NewStore()
	acl := NewACL()
	p := richProfile()
	r := rand.New(rand.NewSource(4))
	PublishNoisy(store, acl, p, "jason", 2, r)

	published := store.Get("iris")
	if published == nil {
		t.Fatal("nothing published")
	}
	view := acl.View(published, "jason")
	if view == nil {
		t.Fatal("grantee cannot see the published view")
	}
	// The published view approximates but does not equal the original.
	sim := feature.Cosine(p.Interests, view.Interests)
	if sim < 0.3 || math.Abs(sim-1) < 1e-9 {
		t.Fatalf("published view fidelity = %v", sim)
	}
	// Reranking works off the published view.
	g := NewGraph()
	g.AddEdge("iris", "jason", 1)
	jason := profile.New("jason", 16)
	store.Put(jason)
	rr := NewReranker(g, acl, store)
	items := []Item{{ID: "x", Score: 0.5, Concept: concept(16, 2)}, {ID: "y", Score: 0.5, Concept: concept(16, 9)}}
	out := rr.Rerank(jason, items, 0.8)
	if out[0].ID != "x" {
		t.Fatalf("noisy published profile failed to steer rerank: %+v", out)
	}
}
