package social

import (
	"math"
	"math/rand"

	"repro/internal/profile"
)

// Privacy-respecting profile publishing (§6): beyond all-or-nothing ACL
// scopes, a user can publish a *noised* view of their profile — useful
// enough for affinity computation and social re-ranking, but not an exact
// record of their interests. Interests get Laplace noise calibrated by a
// privacy parameter epsilon (smaller = more private, per the differential-
// privacy convention); term affinities are coarsened to signs and
// subsampled, dropping the long tail that identifies a person.

// NoisyView returns a privacy-degraded copy of p for publication.
//   - Interests: Laplace(1/epsilon)-noised per coordinate, renormalized.
//   - TermAffinity: only terms with |affinity| >= termFloor survive, each
//     published as just its sign (±0.5), and each surviving term is kept
//     with probability keepProb.
//   - SourceTrust and Variants are never published.
func NoisyView(p *profile.Profile, epsilon float64, termFloor, keepProb float64, r *rand.Rand) *profile.Profile {
	if epsilon <= 0 {
		epsilon = 0.1
	}
	out := profile.New(p.UserID, len(p.Interests))
	// Per-coordinate scale shrinks with dimensionality so epsilon controls
	// the total distortion magnitude, not the per-axis one.
	scale := 1 / epsilon
	if n := len(p.Interests); n > 0 {
		scale /= math.Sqrt(float64(n))
	}
	for i, v := range p.Interests {
		out.Interests[i] = v + laplace(r, scale)
	}
	out.Interests.Normalize()
	for t, a := range p.TermAffinity {
		if math.Abs(a) < termFloor {
			continue
		}
		if r.Float64() > keepProb {
			continue
		}
		if a > 0 {
			out.TermAffinity[t] = 0.5
		} else {
			out.TermAffinity[t] = -0.5
		}
	}
	out.Evidence = 0 // published views carry no evidence weight
	return out
}

// laplace samples Laplace(0, scale).
func laplace(r *rand.Rand, scale float64) float64 {
	u := r.Float64() - 0.5
	if u == 0 {
		return 0
	}
	sign := 1.0
	if u < 0 {
		sign = -1
		u = -u
	}
	return -sign * scale * math.Log(1-2*u)
}

// PublishNoisy stores a noised view of the owner's profile into the store
// under the owner's id and grants grantee interest+term access to it — the
// publish-privately workflow.
func PublishNoisy(store *profile.Store, acl *ACL, owner *profile.Profile, grantee string, epsilon float64, r *rand.Rand) {
	view := NoisyView(owner, epsilon, 0.3, 0.7, r)
	store.Put(view)
	acl.Grant(owner.UserID, grantee, ScopeInterests|ScopeTerms)
}
