package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/feature"
	"repro/internal/metrics"
	"repro/internal/negotiate"
	"repro/internal/profile"
	"repro/internal/qos"
	"repro/internal/workload"
)

// E15AuctionVsBilateral compares the two trading mechanisms the market
// supports: sealed-bid scoring auctions (one round, k bids) against
// best-of-k bilateral alternating-offers (k negotiations). Competition
// should help the buyer under both; the auction gets there with far fewer
// messages.
func E15AuctionVsBilateral(seed int64, scale float64) *Result {
	r := rand.New(rand.NewSource(seed + 7))
	trials := scaleInt(120, scale, 40)
	grid := negotiate.CandidateGrid(
		qos.Vector{Latency: time.Second, Trust: 0.8},
		[]float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		[]float64{0.5, 1, 1.5, 2, 3, 4, 6, 8},
	)
	buyerW := qos.Weights{Price: 2, Completeness: 3, Trust: 1, Latency: 1, Freshness: 1}
	mkBuyer := func() *negotiate.Negotiator {
		return &negotiate.Negotiator{
			Name: "buyer", U: negotiate.BuyerUtility{W: buyerW},
			Reservation: 0.3, Tactic: negotiate.Linear(), Candidates: grid,
		}
	}
	mkSellers := func(k int) []*negotiate.Negotiator {
		out := make([]*negotiate.Negotiator, k)
		for i := range out {
			out[i] = &negotiate.Negotiator{
				Name: fmt.Sprintf("s%02d", i),
				U: negotiate.SellerUtility{
					Cost:  negotiate.StandardCost(0.2+r.Float64()*0.8, 0.8+r.Float64()),
					Scale: 6,
				},
				Reservation: 0.05, Tactic: negotiate.Linear(), Candidates: grid,
			}
		}
		return out
	}

	table := metrics.NewTable("E15: auction vs best-of-k bilateral",
		"sellers", "mechanism", "buyer utility", "messages")
	headline := map[string]float64{}
	for _, k := range []int{1, 2, 4, 6} {
		var aucU, auc2U, bilU, aucMsgs, bilMsgs float64
		var aucN, bilN int
		for trial := 0; trial < trials; trial++ {
			sellers := mkSellers(k)
			if res, err := negotiate.RunAuction(negotiate.FirstScore, mkBuyer(), sellers, 0.3); err == nil {
				aucU += res.BuyerScore
				aucMsgs += float64(res.Participants + 1) // CFO + bids
				aucN++
			}
			if res2, err := negotiate.RunAuction(negotiate.SecondScore, mkBuyer(), sellers, 0.3); err == nil {
				auc2U += res2.BuyerScore
			}
			best := -1.0
			msgs := 0.0
			for _, s := range sellers {
				deal, err := negotiate.Run(mkBuyer(), s, 24)
				if err != nil {
					msgs += float64(deal.Rounds)
					continue
				}
				msgs += float64(deal.Rounds)
				if deal.BuyerUtility > best {
					best = deal.BuyerUtility
				}
			}
			if best >= 0 {
				bilU += best
				bilMsgs += msgs
				bilN++
			}
		}
		if aucN > 0 {
			table.AddRow(k, "auction (1st score)", aucU/float64(aucN), aucMsgs/float64(aucN))
			table.AddRow(k, "auction (2nd score)", auc2U/float64(aucN), aucMsgs/float64(aucN))
			headline[fmt.Sprintf("auction_%d", k)] = aucU / float64(aucN)
			headline[fmt.Sprintf("auction_msgs_%d", k)] = aucMsgs / float64(aucN)
		}
		if bilN > 0 {
			table.AddRow(k, "best-of-k bilateral", bilU/float64(bilN), bilMsgs/float64(bilN))
			headline[fmt.Sprintf("bilateral_%d", k)] = bilU / float64(bilN)
			headline[fmt.Sprintf("bilateral_msgs_%d", k)] = bilMsgs / float64(bilN)
		}
	}
	return &Result{ID: "E15", Table: table, Headline: headline}
}

// E16ReputationLearning ablates the greengrocer loop through the full
// pipeline: a persistent session whose ledger learns (and blacklists)
// versus memoryless sessions, facing identical good and shirking providers.
// Learning should push late-phase breach exposure well below the
// memoryless baseline.
func E16ReputationLearning(seed int64, scale float64) *Result {
	queries := scaleInt(60, scale, 24)
	phase := queries / 3

	build := func() (*core.Agora, *workload.Generator) {
		a := core.New(core.Config{Seed: seed, ConceptDim: 32})
		g := workload.NewGenerator(seed, 32, 4)
		docs := g.GenCorpus(400, 1.1, 0)
		good, _ := a.AddNode("good", core.DefaultEconomics(), core.DefaultBehavior())
		// The shirker is the *cheap* option: a trust-blind optimizer keeps
		// going back to it — exactly the stand with the stale vegetables.
		badEcon := core.DefaultEconomics()
		badEcon.CostBase = 0.1
		badEcon.CostEffort = 0.5
		badEcon.Premium = 1.0
		badBeh := core.DefaultBehavior()
		badBeh.Reliability = 0.15
		bad, _ := a.AddNode("bad", badEcon, badBeh)
		for _, d := range docs {
			d1 := d.Doc.Clone()
			d1.ID += "-g"
			if err := good.Ingest(d1); err != nil {
				panic(err)
			}
			d2 := d.Doc.Clone()
			d2.ID += "-b"
			if err := bad.Ingest(d2); err != nil {
				panic(err)
			}
		}
		return a, g
	}
	runPhaseBreaches := func(memory bool) (early, late float64) {
		a, g := build()
		var sess *core.Session
		mk := func() *core.Session {
			p := profile.New("iris", 32)
			p.Interests = g.Topics[0].Center.Clone()
			sess := a.NewSession(p)
			sess.MaxSources = 1 // exclusive choice: where to shop today
			return sess
		}
		sess = mk()
		var earlyB, earlyC, lateB, lateC int
		for qi := 0; qi < queries; qi++ {
			if !memory {
				sess = mk()
			}
			topic := g.Topics[qi%len(g.Topics)]
			ans, err := sess.Ask(fmt.Sprintf(`FIND documents WHERE topic = "%s" TOP 5`, topic.Name), topic.Center)
			if err != nil {
				continue
			}
			for _, out := range ans.Outcomes {
				isEarly := qi < phase
				isLate := qi >= queries-phase
				if out.Fulfilled {
					if isEarly {
						earlyC++
					}
					if isLate {
						lateC++
					}
				} else {
					if isEarly {
						earlyB++
						earlyC++
					}
					if isLate {
						lateB++
						lateC++
					}
				}
			}
		}
		if earlyC > 0 {
			early = float64(earlyB) / float64(earlyC)
		}
		if lateC > 0 {
			late = float64(lateB) / float64(lateC)
		}
		return early, late
	}

	// Average over a few seeds: phase-level breach rates on ~20 contracts
	// are noisy.
	var memEarly, memLate, noEarly, noLate float64
	const reps = 3
	baseSeed := seed
	for rep := 0; rep < reps; rep++ {
		seed = baseSeed + int64(rep)*101
		me, ml := runPhaseBreaches(true)
		ne, nl := runPhaseBreaches(false)
		memEarly += me / reps
		memLate += ml / reps
		noEarly += ne / reps
		noLate += nl / reps
	}
	seed = baseSeed
	table := metrics.NewTable("E16: reputation learning (greengrocer) ablation",
		"condition", "breach exposure (early third)", "breach exposure (late third)")
	table.AddRow("ledger persists (learning)", memEarly, memLate)
	table.AddRow("memoryless sessions", noEarly, noLate)
	return &Result{ID: "E16", Table: table, Headline: map[string]float64{
		"learning_early": memEarly, "learning_late": memLate,
		"memoryless_early": noEarly, "memoryless_late": noLate,
	}}
}

// E17LSHAblation sweeps the vector index's (tables, bits) parameters:
// recall@10 against exact scan, and query throughput — the design-choice
// ablation DESIGN.md calls out for the docstore substrate.
func E17LSHAblation(seed int64, scale float64) *Result {
	r := rand.New(rand.NewSource(seed + 8))
	nVecs := scaleInt(3000, scale, 800)
	nQueries := scaleInt(100, scale, 30)
	dim := 32
	vecs := make([]feature.Vector, nVecs)
	for i := range vecs {
		v := make(feature.Vector, dim)
		for j := range v {
			v[j] = r.NormFloat64()
		}
		vecs[i] = v.Normalize()
	}
	queries := make([]feature.Vector, nQueries)
	for i := range queries {
		q := vecs[r.Intn(nVecs)].Clone()
		for j := range q {
			q[j] += r.NormFloat64() * 0.1
		}
		queries[i] = q.Normalize()
	}

	table := metrics.NewTable("E17: LSH index ablation (recall@10 vs exact scan)",
		"tables", "bits", "recall@10", "queries/s")
	headline := map[string]float64{}
	// Ground truth from one exact index.
	exact := feature.NewLSH(seed, dim, 1, 1)
	for i, v := range vecs {
		exact.Put(fmt.Sprintf("v%05d", i), v)
	}
	truth := make([]map[string]bool, nQueries)
	for qi, q := range queries {
		truth[qi] = map[string]bool{}
		for _, c := range exact.Scan(q, 10) {
			truth[qi][c.ID] = true
		}
	}
	for _, tb := range []int{2, 4, 8, 16} {
		for _, bits := range []int{6, 10, 14} {
			idx := feature.NewLSH(seed+int64(tb*100+bits), dim, tb, bits)
			for i, v := range vecs {
				idx.Put(fmt.Sprintf("v%05d", i), v)
			}
			hits := 0
			start := time.Now()
			for qi, q := range queries {
				for _, c := range idx.Query(q, 10) {
					if truth[qi][c.ID] {
						hits++
					}
				}
			}
			dur := time.Since(start)
			recall := float64(hits) / float64(nQueries*10)
			qps := float64(nQueries) / dur.Seconds()
			table.AddRow(tb, bits, recall, qps)
			headline[fmt.Sprintf("recall_%dx%d", tb, bits)] = recall
		}
	}
	return &Result{ID: "E17", Table: table, Headline: headline}
}
