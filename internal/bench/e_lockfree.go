package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/docstore"
	"repro/internal/feature"
	"repro/internal/metrics"
)

// E22LockFreeReads measures the epoch-snapshot read path against the
// coarse RWMutex discipline the docstore had before it: N paced reader
// sessions issue SearchText queries while one background writer churns
// documents into a durable (fsync-on-put) store. The locked baseline is
// the same engine wrapped in an external RWMutex — readers RLock around
// every search, the writer Locks around every Put — which reproduces the
// seed's convoy: a pending writer blocks new readers, so every search
// queues behind in-flight writes, fsyncs included. Snapshot readers load
// an atomic pointer and never wait. Reported per reader count: reader
// p50/p99 latency under both disciplines and the realized writer churn.
// The experiment also pins the determinism contract under churn: with
// the document set held constant, a two-term query must return an
// identical hit slice (ids and float-identical scores) on every read
// while the writer re-puts the same documents.
func E22LockFreeReads(seed int64, scale float64) *Result {
	nDocs := scaleInt(1024, scale, 128)
	readsPerReader := scaleInt(40, scale, 10)

	vocab := make([]string, 0, 256)
	for i := 0; i < 256; i++ {
		vocab = append(vocab, fmt.Sprintf("term%03d", i))
	}
	mkDoc := func(r *rand.Rand, i int) *docstore.Document {
		w := func() string { return vocab[r.Intn(len(vocab))] }
		d := &docstore.Document{
			ID:         fmt.Sprintf("e22-%04d", i),
			Kind:       docstore.KindArticle,
			Title:      w() + " " + w(),
			Text:       w() + " " + w() + " " + w() + " " + w(),
			Topics:     []string{"t" + fmt.Sprint(i%4)},
			CreatedAt:  int64(i),
			Provenance: "e22",
		}
		if i%4 == 0 {
			v := make(feature.Vector, 8)
			for j := range v {
				v[j] = r.Float64()
			}
			d.Concept = v
		}
		return d
	}
	openStore := func(dir string) *docstore.Store {
		s, err := docstore.Open(docstore.Options{
			Dir: dir, ConceptDim: 8, Seed: seed,
			SyncEveryPut: true, QueryCacheSize: -1,
		})
		if err != nil {
			panic(err)
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < nDocs; i++ {
			if err := s.Put(mkDoc(r, i)); err != nil {
				panic(err)
			}
		}
		return s
	}
	queries := make([]string, 16)
	for i := range queries {
		queries[i] = vocab[(i*37)%len(vocab)] + " " + vocab[(i*53+7)%len(vocab)]
	}

	pct := func(xs []float64, p float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[int(p*float64(len(s)-1))]
	}

	// measure runs one variant: paced readers against a background writer,
	// returning reader latencies (ms) and the writer's completed puts. A
	// saturating read loop on a small host would measure CPU queueing
	// (identical either way); pacing keeps recorded latency = search +
	// lock wait. GOMAXPROCS is raised so the kernel, not the Go run
	// queue, interleaves reader and writer threads (same setting for both
	// variants).
	measure := func(readers int, locked bool) (lats []float64, writerPuts int64) {
		if procs := readers + 1; runtime.GOMAXPROCS(0) < procs {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		}
		dir, err := tempDir()
		if err != nil {
			panic(err)
		}
		defer cleanup(dir)
		s := openStore(dir)
		defer s.Close()
		var rw sync.RWMutex
		stop := make(chan struct{})
		var writes atomic.Int64
		var writerWG sync.WaitGroup
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			r := rand.New(rand.NewSource(seed + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				d := mkDoc(r, r.Intn(nDocs))
				if locked {
					rw.Lock()
				}
				if err := s.Put(d); err != nil {
					panic(err)
				}
				if locked {
					rw.Unlock()
				}
				writes.Add(1)
			}
		}()
		const readInterval = 2 * time.Millisecond
		perReader := make([][]float64, readers)
		var wg sync.WaitGroup
		for ri := 0; ri < readers; ri++ {
			wg.Add(1)
			go func(ri int) {
				defer wg.Done()
				time.Sleep(time.Duration(ri) * readInterval / time.Duration(readers))
				for i := 0; i < readsPerReader; i++ {
					q := queries[(ri+i)%len(queries)]
					t0 := time.Now()
					if locked {
						rw.RLock()
					}
					s.SearchText(q, 10)
					if locked {
						rw.RUnlock()
					}
					el := time.Since(t0)
					perReader[ri] = append(perReader[ri], el.Seconds()*1e3)
					if el < readInterval {
						time.Sleep(readInterval - el)
					}
				}
			}(ri)
		}
		wg.Wait()
		close(stop)
		writerWG.Wait()
		for _, l := range perReader {
			lats = append(lats, l...)
		}
		return lats, writes.Load()
	}

	table := metrics.NewTable("E22: locked vs snapshot read path under writer churn",
		"readers", "locked p50 ms", "snapshot p50 ms", "p50 speedup", "locked p99 ms", "snapshot p99 ms")
	headline := map[string]float64{}
	for _, n := range []int{4, 16} {
		lockedLats, lockedPuts := measure(n, true)
		snapLats, snapPuts := measure(n, false)
		lp50, sp50 := pct(lockedLats, 0.5), pct(snapLats, 0.5)
		speedup := 0.0
		if sp50 > 0 {
			speedup = lp50 / sp50
		}
		table.AddRow(fmt.Sprint(n), lp50, sp50, speedup, pct(lockedLats, 0.99), pct(snapLats, 0.99))
		headline[fmt.Sprintf("p50_speedup_%dr", n)] = speedup
		if n == 16 {
			headline["locked_p50_ms_16r"] = lp50
			headline["snapshot_p50_ms_16r"] = sp50
			headline["locked_writer_puts_16r"] = float64(lockedPuts)
			headline["snapshot_writer_puts_16r"] = float64(snapPuts)
		}
	}

	// Determinism under churn: re-putting identical documents bumps the
	// epoch but must not perturb a single hit or score. Two-term queries
	// keep float accumulation order-independent, so the comparison is
	// exact equality, not tolerance.
	identical := 1.0
	func() {
		s, err := docstore.Open(docstore.Options{ConceptDim: 8, Seed: seed, QueryCacheSize: -1})
		if err != nil {
			panic(err)
		}
		defer s.Close()
		r := rand.New(rand.NewSource(seed + 2))
		docs := make([]*docstore.Document, 64)
		for i := range docs {
			docs[i] = mkDoc(r, i)
			if err := s.Put(docs[i]); err != nil {
				panic(err)
			}
		}
		query := docs[0].Title // two terms from the corpus
		expected := s.SearchText(query, 8)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.Put(docs[i%len(docs)].Clone()); err != nil {
					panic(err)
				}
			}
		}()
		for i := 0; i < 400; i++ {
			got := s.SearchText(query, 8)
			if len(got) != len(expected) {
				identical = 0
				break
			}
			for j := range got {
				if got[j].Doc.ID != expected[j].Doc.ID || got[j].Score != expected[j].Score {
					identical = 0
				}
			}
			if identical == 0 {
				break
			}
		}
		close(stop)
		wg.Wait()
	}()
	headline["identical_under_churn"] = identical
	table.AddRow("determinism (identical=1)", identical, identical, 1, 0, 0)

	return &Result{ID: "E22", Table: table, Headline: headline}
}
