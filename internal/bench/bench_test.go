package bench

import (
	"io"
	"runtime"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// The tests here assert the qualitative shapes DESIGN.md §3 claims — they
// are the "does the reproduction hold" checks, run at reduced scale.

const testScale = 0.5

func TestE1Shapes(t *testing.T) {
	r := E1FeatureMatching(1, testScale)
	h := r.Headline
	// Combining feature sets should not lose much against the best single
	// set, and calibration must reduce ECE.
	if h["ndcg_text+concept"] < h["ndcg_text-only"]*0.85 && h["ndcg_text+concept"] < h["ndcg_concept-metadata"]*0.85 {
		t.Fatalf("hybrid collapsed: %v", h)
	}
	// Noisy low-level visual features carry signal but lose to metadata.
	if h["p10_visual (hist+texture)"] < 0.15 {
		t.Fatalf("visual features carry no signal: %v", h["p10_visual (hist+texture)"])
	}
	if h["p10_visual (hist+texture)"] > h["p10_concept-metadata"] {
		t.Fatalf("noisy visual should not beat concept metadata: %v", h)
	}
	if h["ece_calibrated"] > h["ece_raw"] {
		t.Fatalf("calibration made ECE worse: %v vs %v", h["ece_calibrated"], h["ece_raw"])
	}
	if r.Table.Rows() == 0 {
		t.Fatal("empty table")
	}
}

func TestE2Shapes(t *testing.T) {
	r := E2BeliefConvergence(2, testScale)
	h := r.Headline
	// Thompson-sampling regret per round decreases with experience.
	if h["regret_1000"] != 0 && h["regret_50"] < h["regret_1000"] {
		t.Fatalf("regret did not shrink: %v", h)
	}
	last := 0.0
	for k := range h {
		if strings.HasPrefix(k, "regret_") {
			last = h[k]
		}
	}
	if last < 0 {
		t.Fatal("negative regret")
	}
}

func TestE3Shapes(t *testing.T) {
	r := E3SLAPremium(3, testScale)
	h := r.Headline
	// Higher premiums buy lower breach rates.
	if h["breach_3.00"] >= h["breach_1.00"] {
		t.Fatalf("premium did not reduce breaches: %v", h)
	}
	// Interior optimum: the best premium is neither the floor nor the cap.
	if h["best_premium"] <= 1.0 || h["best_premium"] >= 3.0 {
		t.Fatalf("no interior optimum: best=%v", h["best_premium"])
	}
}

func TestE4Shapes(t *testing.T) {
	r := E4NegotiationTactics(4, testScale)
	h := r.Headline
	// Negotiation (any time-dependent tactic) should beat take-first on
	// buyer utility and at least match it on joint utility.
	if h["buyer_linear"] <= h["buyer_take-first"] {
		t.Fatalf("negotiating buyer lost to take-first: %v vs %v", h["buyer_linear"], h["buyer_take-first"])
	}
	if h["joint_linear"] < h["joint_take-first"]*0.95 {
		t.Fatalf("joint utility regressed: %v", h)
	}
	// Deal rates for negotiating tactics should be high.
	if h["deal_linear"] < 0.9 {
		t.Fatalf("deal rate = %v", h["deal_linear"])
	}
}

func TestE5Shapes(t *testing.T) {
	r := E5Subcontracting(5, testScale)
	h := r.Headline
	// Depth monotonically raises completeness...
	if !(h["completeness_0"] < h["completeness_1"] && h["completeness_1"] < h["completeness_2"]) {
		t.Fatalf("completeness not increasing with depth: %v", h)
	}
	if h["completeness_2"] != 1 {
		t.Fatalf("full depth should cover everything: %v", h["completeness_2"])
	}
	// ...but margins raise average per-part price.
	if h["avgprice_2"] <= h["avgprice_0"] {
		t.Fatalf("margins missing: %v", h)
	}
}

func TestE6Shapes(t *testing.T) {
	r := E6Personalization(6, testScale)
	h := r.Headline
	// Learned profiles improve with rounds and beat generic by round 20.
	if h["learned_20"] <= h["learned_0"] {
		t.Fatalf("no learning: %v -> %v", h["learned_0"], h["learned_20"])
	}
	if h["learned_20"] <= h["generic_20"] {
		t.Fatalf("personalized did not beat generic: %v vs %v", h["learned_20"], h["generic_20"])
	}
	// Oracle bounds learned from above (within noise).
	if h["learned_20"] > h["oracle_20"]*1.1 {
		t.Fatalf("learned exceeds oracle implausibly: %v vs %v", h["learned_20"], h["oracle_20"])
	}
}

func TestE7Shapes(t *testing.T) {
	r := E7ProfileMerge(7, testScale)
	h := r.Headline
	// All policies should produce usable profiles; dropping conflicts
	// trades recall for precision and must stay in a sane band.
	for k, v := range h {
		if v <= 0.3 || v > 1 {
			t.Fatalf("%s = %v out of band", k, v)
		}
	}
}

func TestE8Shapes(t *testing.T) {
	r := E8SocialRerank(8, testScale)
	h := r.Headline
	// Full affinity beats no-social on socially-correlated intent.
	if h["ndcg_full-affinity"] <= h["ndcg_no-social"] {
		t.Fatalf("social signal worthless: %v", h)
	}
}

func TestE9Shapes(t *testing.T) {
	r := E9CollabSharing(9, testScale)
	h := r.Headline
	// Work saved grows with team size (more overlap).
	if h["saved_8"] <= h["saved_2"] {
		t.Fatalf("sharing did not scale: %v", h)
	}
	if h["saved_8"] < 0.5 {
		t.Fatalf("8-member sharing too low: %v", h["saved_8"])
	}
	// The fused workspace should be mostly on-project.
	if h["precision_8"] < 0.6 {
		t.Fatalf("workspace precision = %v", h["precision_8"])
	}
}

func TestE10Shapes(t *testing.T) {
	r := E10ContextActivation(10, testScale)
	h := r.Headline
	if h["active_mean"] <= h["static_mean"] {
		t.Fatalf("context activation did not help: %v vs %v", h["active_mean"], h["static_mean"])
	}
}

func TestE11Shapes(t *testing.T) {
	r := E11FeedMatching(11, 0.3)
	h := r.Headline
	// The predicate index must beat linear scan, and more so at scale.
	for k, v := range h {
		if strings.HasPrefix(k, "speedup_") && v < 1 {
			t.Fatalf("%s = %v (index slower than scan)", k, v)
		}
	}
}

func TestE12Shapes(t *testing.T) {
	r := E12ScaleChurn(12, 0.4)
	h := r.Headline
	// Semantic routing uses fewer messages than flooding at equal size.
	if h["msgs_semantic_64_0"] >= h["msgs_flood_64_0"] {
		t.Fatalf("semantic not cheaper: %v vs %v", h["msgs_semantic_64_0"], h["msgs_flood_64_0"])
	}
	// Churn costs recall for flooding.
	if h["recall_flood_64_20"] > h["recall_flood_64_0"]+0.05 {
		t.Fatalf("churn should not raise recall: %v", h)
	}
	// Flood recall at zero churn should be high.
	if h["recall_flood_64_0"] < 0.6 {
		t.Fatalf("flood recall = %v", h["recall_flood_64_0"])
	}
}

func TestE13Shapes(t *testing.T) {
	r := E13MultiObjective(13, testScale)
	h := r.Headline
	if h["hv_pareto"] < h["hv_weighted"] {
		t.Fatalf("front hypervolume below single plan: %v", h)
	}
	if h["hv_pareto"] < h["hv_greedy"] {
		t.Fatalf("front below greedy: %v", h)
	}
}

func TestE14Shapes(t *testing.T) {
	r := E14Docstore(14, 0.3)
	h := r.Headline
	if h["recovered"] != h["expected"] {
		t.Fatalf("recovery lost docs: %v vs %v", h["recovered"], h["expected"])
	}
	if h["ingest_rate"] <= 0 || h["text_qps"] <= 0 || h["vector_qps"] <= 0 {
		t.Fatalf("rates: %v", h)
	}
}

func TestE15Shapes(t *testing.T) {
	r := E15AuctionVsBilateral(15, testScale)
	h := r.Headline
	// Auctions should match-or-beat best-of-k bilateral at far lower
	// message cost.
	if h["auction_4"] < h["bilateral_4"]*0.95 {
		t.Fatalf("auction underperformed: %v vs %v", h["auction_4"], h["bilateral_4"])
	}
	if h["auction_msgs_4"] >= h["bilateral_msgs_4"] {
		t.Fatalf("auction not cheaper: %v vs %v msgs", h["auction_msgs_4"], h["bilateral_msgs_4"])
	}
	// Competition helps: more sellers, weakly better buyer outcome.
	if h["auction_6"] < h["auction_1"]-1e-9 {
		t.Fatalf("competition hurt the buyer: %v vs %v", h["auction_6"], h["auction_1"])
	}
}

func TestE16Shapes(t *testing.T) {
	r := E16ReputationLearning(16, testScale)
	h := r.Headline
	// With a persistent ledger, late breach exposure falls below both its
	// own early phase and the memoryless late phase.
	if h["learning_late"] >= h["learning_early"] {
		t.Fatalf("learning did not reduce exposure: %v -> %v", h["learning_early"], h["learning_late"])
	}
	if h["learning_late"] >= h["memoryless_late"] {
		t.Fatalf("learning no better than memoryless: %v vs %v", h["learning_late"], h["memoryless_late"])
	}
}

func TestE17Shapes(t *testing.T) {
	r := E17LSHAblation(17, 0.3)
	h := r.Headline
	// More tables raise recall at fixed bits; more bits lower it.
	if h["recall_16x6"] <= h["recall_2x6"] {
		t.Fatalf("tables did not raise recall: %v vs %v", h["recall_16x6"], h["recall_2x6"])
	}
	if h["recall_2x14"] >= h["recall_2x6"] {
		t.Fatalf("bits did not lower recall: %v vs %v", h["recall_2x14"], h["recall_2x6"])
	}
}

func TestE18Shapes(t *testing.T) {
	r := E18DiscoveryVsRegistry(18, testScale)
	h := r.Headline
	// Overlay discovery inspects fewer candidates than the registry...
	if h["cands_overlay_16"] >= h["cands_registry_16"] {
		t.Fatalf("discovery not selective: %v vs %v", h["cands_overlay_16"], h["cands_registry_16"])
	}
	// ...while retaining most of the answer quality.
	if h["comp_overlay_16"] < h["comp_registry_16"]*0.6 {
		t.Fatalf("discovery quality collapsed: %v vs %v", h["comp_overlay_16"], h["comp_registry_16"])
	}
}

func TestE19Shapes(t *testing.T) {
	r := E19RiskProfiling(19, testScale)
	h := r.Headline
	// Recovery error shrinks with observations.
	if h["err_400"] >= h["err_20"] {
		t.Fatalf("risk fit did not improve: %v -> %v", h["err_20"], h["err_400"])
	}
	// Plan-choice agreement with the hidden attitude beats the neutral
	// default once enough choices are observed.
	if h["agree_400"] <= h["base_400"] {
		t.Fatalf("fitted attitude no better than neutral: %v vs %v", h["agree_400"], h["base_400"])
	}
	if h["agree_400"] < 0.7 {
		t.Fatalf("agreement too low: %v", h["agree_400"])
	}
}

func TestE20Shapes(t *testing.T) {
	r := E20TelemetryOverhead(20, testScale)
	h := r.Headline
	// Every issued query must be visible to the instruments, and the
	// histogram count must agree with the counter (snapshot coherence).
	if h["coherent"] != 1 {
		t.Fatalf("telemetry snapshot incoherent: asks=%v queries=%v", h["ask_count"], h["queries"])
	}
	if h["ask_count"] != h["queries"] {
		t.Fatalf("ask counter %v != issued %v", h["ask_count"], h["queries"])
	}
	if h["traces_kept"] == 0 {
		t.Fatalf("trace ring retained nothing")
	}
}

func TestE21Shapes(t *testing.T) {
	r := E21ParallelFanout(21, testScale)
	h := r.Headline
	// Parallel answers must match sequential ones item for item — the
	// fan-out is a latency optimization, never a semantic change.
	if h["deterministic"] != 1 {
		t.Fatal("parallel fan-out diverged from sequential answers")
	}
	// The market-visit claim: at 4 sources the trip costs like the
	// slowest stall, so the fan-out should at least halve p50 latency.
	if h["speedup_p50_4src"] < 2 {
		t.Fatalf("4-source fan-out speedup %.2f < 2", h["speedup_p50_4src"])
	}
	// More stalls, more win: 8 sources should beat 2 sources.
	if h["speedup_p50_8src"] <= h["speedup_p50_2src"] {
		t.Fatalf("speedup not growing with sources: %v", h)
	}
	// On the fat-tailed market the backup attempt must actually fire and
	// must rescue a substantial share of deadline abandonments (a hedged
	// source is only dropped when both attempts miss the deadline).
	if h["hedge_attempts"] == 0 {
		t.Fatal("no hedge ever fired on the fat-tailed market")
	}
	if h["hedge_rescued_frac"] < 0.25 {
		t.Fatalf("hedging rescued only %.0f%% of timeouts: off=%.3f on=%.3f",
			h["hedge_rescued_frac"]*100, h["hedge_off_timeout_rate"], h["hedge_on_timeout_rate"])
	}
}

func TestE22Shapes(t *testing.T) {
	r := E22LockFreeReads(22, testScale)
	h := r.Headline
	// The determinism contract is absolute: churn may never perturb a
	// hit or a score of an unchanged document set.
	if h["identical_under_churn"] != 1 {
		t.Fatal("reads under churn diverged from the quiescent result")
	}
	// The writer must have made progress in both disciplines, or the
	// latency comparison is vacuous.
	if h["locked_writer_puts_16r"] == 0 || h["snapshot_writer_puts_16r"] == 0 {
		t.Fatalf("writer starved: locked=%v snapshot=%v",
			h["locked_writer_puts_16r"], h["snapshot_writer_puts_16r"])
	}
	if h["snapshot_p50_ms_16r"] <= 0 {
		t.Fatalf("snapshot p50 not measured: %v", h["snapshot_p50_ms_16r"])
	}
	// Qualitative direction on any host: lock-free reads are not slower
	// at the median. The quantitative ≥2× claim is asserted only with
	// real parallelism available — on a single-core CI runner the paced
	// workload still shows the convoy, but scheduler jitter makes a hard
	// ratio flaky.
	if runtime.NumCPU() >= 4 && h["p50_speedup_16r"] < 2 {
		t.Fatalf("16-reader p50 speedup %.2f < 2", h["p50_speedup_16r"])
	}
	if h["p50_speedup_16r"] < 1 {
		t.Fatalf("snapshot reads slower than locked at p50: %.2f", h["p50_speedup_16r"])
	}
}

func TestE23Shapes(t *testing.T) {
	r := E23GroupCommit(23, testScale)
	h := r.Headline
	// The write-path determinism contract is absolute: batched windows must
	// leave the byte-identical WAL a serialized writer leaves, and recovery
	// from either log must rebuild identical stores.
	if h["byte_identical"] != 1 {
		t.Fatal("group-commit WAL diverged byte-wise from the serialized WAL")
	}
	if h["recovered_identical"] != 1 {
		t.Fatal("recovery from the two WALs produced different stores")
	}
	if h["group_puts_per_s_16w"] <= 0 {
		t.Fatalf("group-commit throughput not measured: %v", h["group_puts_per_s_16w"])
	}
	// Qualitative direction on any host: sharing fsyncs is not slower. The
	// quantitative ≥2× claim is asserted only with real parallelism
	// available — with one core there is no concurrent window to batch and
	// scheduler jitter makes a hard ratio flaky.
	if h["tput_speedup_16w"] < 1 {
		t.Fatalf("group commit slower than serialized at 16 writers: %.2f", h["tput_speedup_16w"])
	}
	if runtime.NumCPU() >= 4 && h["tput_speedup_16w"] < 2 {
		t.Fatalf("16-writer throughput speedup %.2f < 2", h["tput_speedup_16w"])
	}
}

func TestE24Shapes(t *testing.T) {
	r := E24DistributedTracing(24, testScale)
	h := r.Headline
	// Instrument coherence: every ask counted, every retained trace carries
	// a nonzero trace ID, and at least one exemplar landed in the latency
	// histogram.
	if h["coherent"] != 1 {
		t.Fatalf("tracing snapshot incoherent: %+v", h)
	}
	// The tail sampler's core contract on the public API: a burst big
	// enough to evict any FIFO ring must still retain every error trace.
	if h["errors_retained"] != h["burst_errors"] {
		t.Fatalf("error traces lost: kept %v of %v", h["errors_retained"], h["burst_errors"])
	}
	if h["traces_kept"] <= 0 || h["traces_kept"] > float64(telemetry.DefaultTraceCapacity) {
		t.Fatalf("retained traces outside budget: %v", h["traces_kept"])
	}
	if h["exemplar_buckets"] <= 0 {
		t.Fatalf("no exemplars recorded: %v", h["exemplar_buckets"])
	}
	// Overhead gate (E24 acceptance): ≤5% vs tracing disabled on a quiet
	// machine. Scheduler noise can push a single short run past the bar, so
	// the shape test uses a looser 4× fence; EXPERIMENTS.md records the
	// measured full-scale figure against the real 5% criterion.
	if h["overhead_frac"] > 0.20 {
		t.Fatalf("tracing overhead %.1f%% implausibly high", h["overhead_frac"]*100)
	}
}

func TestE25Shapes(t *testing.T) {
	r := E25BlockMaxSearch(25, testScale)
	h := r.Headline
	// The contract, not a performance number: block-max must be
	// bit-identical to the exhaustive scorer, compiled base and overlay
	// alike. Any drift is a correctness bug.
	if h["identical"] != 1 {
		t.Fatalf("block-max diverged from exhaustive scoring: %+v", h)
	}
	// The cache-hit path is a byte-key lookup returning the shared hit
	// slice; it must retain nothing. Measured by malloc delta, so this is
	// exact, not statistical — except under the race detector, whose
	// instrumentation allocates on otherwise allocation-free paths.
	if !raceEnabled {
		if h["allocs_cache_hit"] != 0 {
			t.Fatalf("cache-hit SearchText allocates: %v allocs/op", h["allocs_cache_hit"])
		}
		// An uncached search retains exactly the returned []Hit; a couple
		// of mallocs of slack absorbs incidental runtime allocation.
		if h["allocs_uncached"] > 4 {
			t.Fatalf("uncached SearchText allocates %v/op, want ~1", h["allocs_uncached"])
		}
	}
	// Early termination must engage on the gradient corpus: rare terms pin
	// theta high and the common terms' tail blocks drop below it.
	if h["blocks_skip_ratio"] <= 0 {
		t.Fatalf("no postings blocks skipped: %+v", h)
	}
	// The speedup is hardware-sensitive; gate it only on real parallism
	// hosts and loosely — EXPERIMENTS.md records the measured figure.
	if runtime.NumCPU() >= 4 && h["speedup"] < 1 {
		t.Fatalf("block-max slower than exhaustive: %.2fx", h["speedup"])
	}
}

func TestE26Shapes(t *testing.T) {
	// Quarter scale: E26 seeds four TCP clusters (1+2+4+8 = 15 stores)
	// from the same corpus and runs three phases per cluster, so it is
	// the suite's most setup-heavy experiment; the qualitative shapes
	// below hold from 8k documents up, and the full-scale scaling curve
	// is gated by make bench-shard-check, not here.
	r := E26ShardedScatter(26, testScale/4)
	h := r.Headline
	// The tentpole contract: at every shard count the merged scatter
	// top-k must be bit-identical to the monolithic store — same
	// documents, same order, float-identical scores.
	if h["identical"] != 1 {
		t.Fatalf("scatter diverged from the monolithic store: %+v", h)
	}
	// A healthy cluster never degrades an ask to partial.
	if h["partial_asks"] != 0 {
		t.Fatalf("partial asks on a healthy cluster: %+v", h)
	}
	// Statistics-driven planning must engage: on the workload's topical
	// ask mix most of an 8-shard cluster is pruned without a round-trip.
	if h["fanout_8"]+h["pruned_8"] != 8 {
		t.Fatalf("fanout %v + pruned %v != 8 shards", h["fanout_8"], h["pruned_8"])
	}
	if h["pruned_8"] <= 4 {
		t.Fatalf("pruning barely engaged at 8 shards: %+v", h)
	}
	// The scaling curve itself is hardware- and scale-sensitive; the
	// full-scale figure is gated by make bench-shard-check and recorded
	// in EXPERIMENTS.md. At test scale only sanity is asserted.
	if h["speedup_8x"] <= 0 {
		t.Fatalf("no throughput figure: %+v", h)
	}
}

func TestE27Shapes(t *testing.T) {
	// Quarter scale: the codec micro loops are cheap, and the round-trip
	// phases are paced by loopback TCP, not by nAsks.
	r := E27WirePath(27, testScale/4)
	h := r.Headline
	// Round-trip must complete on both stacks.
	if h["rt_asks_per_s_legacy"] <= 0 || h["rt_asks_per_s"] <= 0 {
		t.Fatalf("round-trip produced no throughput: %+v", h)
	}
	// The coalescer never issues more syscalls than frames.
	for _, k := range []string{"rt_syscalls_per_frame", "sweep_syscalls_per_frame_w8"} {
		if h[k] <= 0 || h[k] > 1 {
			t.Fatalf("%s = %v, want in (0, 1]", k, h[k])
		}
	}
	// Backpressure is where leader/follower coalescing engages: a feed
	// burst into a stalled subscriber must ride out in multi-frame Writes.
	if h["feed_frames_per_flush"] < 2 {
		t.Fatalf("feed burst frames/flush = %v, want >= 2 (coalescing never engaged)", h["feed_frames_per_flush"])
	}
	// Allocation shapes are deterministic off-race; the race runtime
	// instruments allocation paths, so gate these like E25 does.
	if !raceEnabled {
		// Single-pass AppendFrame staging into a reused buffer is the
		// tentpole: zero allocations per encoded frame.
		if h["encode_allocs"] != 0 {
			t.Fatalf("coalesced encode allocates: %v allocs/frame", h["encode_allocs"])
		}
		// The pooled FrameReader amortizes to zero; the legacy DecodeFrame
		// copy pays at least its payload allocation per frame.
		if h["decode_allocs"] != 0 {
			t.Fatalf("pooled decode allocates: %v allocs/frame", h["decode_allocs"])
		}
		if h["decode_allocs_legacy"] < 1 {
			t.Fatalf("legacy decode baseline lost its copy: %v allocs/frame", h["decode_allocs_legacy"])
		}
		// The acceptance bar: the TCP round-trip sheds at least half its
		// allocations against the PR-9 stack (process-wide, both sides).
		if h["rt_alloc_reduction"] < 0.5 {
			t.Fatalf("round-trip alloc reduction = %.2f, want >= 0.5 (legacy %.1f -> coalesced %.1f allocs/op)",
				h["rt_alloc_reduction"], h["rt_allocs_legacy"], h["rt_allocs"])
		}
	}
}

func TestSuiteListsAllExperiments(t *testing.T) {
	suite := Suite()
	if len(suite) != 27 {
		t.Fatalf("suite size = %d", len(suite))
	}
	seen := map[string]bool{}
	for _, e := range suite {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("incomplete entry %+v", e.ID)
		}
	}
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	results := RunAll(io.Discard, 42, 0.2)
	if len(results) != 27 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Table.Rows() == 0 {
			t.Fatalf("%s produced an empty table", r.ID)
		}
	}
}
