package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/collab"
	"repro/internal/docstore"
	"repro/internal/feature"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/query"
	"repro/internal/workload"
)

// E9CollabSharing measures multi-query optimization across collaborators:
// m members working on a common project issue topically overlapping
// queries; shared execution deduplicates the source-side work while
// per-member personalization keeps rankings individual. Reported: work
// saved vs independent execution and the precision of the fused workspace.
func E9CollabSharing(seed int64, scale float64) *Result {
	g := workload.NewGenerator(seed, 32, 8)
	r := rand.New(rand.NewSource(seed + 3))
	nDocs := scaleInt(600, scale, 200)
	docs := g.GenCorpus(nDocs, 1.2, 0)
	store, err := docstore.Open(docstore.Options{ConceptDim: 32, Seed: seed})
	if err != nil {
		panic(err)
	}
	for _, d := range docs {
		if err := store.Put(d.Doc); err != nil {
			panic(err)
		}
	}
	// The team works on a common project: two adjacent topics.
	projTopics := []int{0, 1}
	relevant := map[string]bool{}
	for _, t := range projTopics {
		for id := range workload.RelevantSet(docs, t) {
			relevant[id] = true
		}
	}

	execCount := 0
	exec := func(q *query.Query, concept feature.Vector) []query.Result {
		execCount++
		return query.Execute(store, q, concept, 1<<60)
	}
	table := metrics.NewTable("E9: collaborative shared execution",
		"members", "queries", "distinct execs", "work saved", "workspace precision")
	headline := map[string]float64{}
	for _, members := range []int{2, 4, 6, 8} {
		sess := collab.NewSession(fmt.Sprintf("proj-%d", members))
		var queries []collab.MemberQuery
		profiles := map[string]*profile.Profile{}
		queriesPerMember := 3
		for m := 0; m < members; m++ {
			uid := fmt.Sprintf("user%d", m)
			p := profile.New(uid, 32)
			p.Interests = g.Topics[projTopics[m%2]].Center.Clone()
			profiles[uid] = p
			sess.Join(p)
			for qi := 0; qi < queriesPerMember; qi++ {
				// Overlap: members draw from a small shared query pool.
				topic := projTopics[qi%2]
				poolIdx := qi % 3 // 3 distinct query texts per topic pair
				text := g.Topics[topic].Vocab[poolIdx] + " " + g.Topics[topic].Vocab[poolIdx+1]
				q := &query.Query{Text: text, TopK: 10}
				queries = append(queries, collab.MemberQuery{
					User: uid, Q: q,
					Concept: g.Topics[topic].Center,
					Gamma:   0.5,
				})
			}
		}
		execCount = 0
		results, stats := collab.RunShared(queries, exec, func(user string, gamma float64, res query.Result) float64 {
			return profiles[user].PersonalScore(res.Score, res.Doc.Concept, gamma)
		})
		// Fuse everything into the shared workspace.
		for i, rs := range results {
			mq := queries[i]
			if err := sess.RecordStep(mq.User, collab.Step{Query: mq.Q, Concept: mq.Concept}, rs); err != nil {
				panic(err)
			}
		}
		ws := sess.Workspace()
		found := 0
		for _, e := range ws {
			if relevant[e.DocID] {
				found++
			}
		}
		precision := 0.0
		if len(ws) > 0 {
			precision = float64(found) / float64(len(ws))
		}
		table.AddRow(members, stats.Total, stats.Distinct, stats.WorkSaved(), precision)
		headline[fmt.Sprintf("saved_%d", members)] = stats.WorkSaved()
		headline[fmt.Sprintf("precision_%d", members)] = precision
	}
	_ = r
	return &Result{ID: "E9", Table: table, Headline: headline}
}
