package bench

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// E24DistributedTracing measures what the distributed-tracing upgrade costs
// and what it keeps. The E20 methodology reruns the full ask pipeline with
// telemetry off (nil registry) and on (seeded registry: trace IDs minted
// per ask, exemplars stored per latency observation, tail sampler deciding
// retention) and reports the overhead fraction — the acceptance bar is
// ≤5%. A second phase streams a burst of OK and failed traces through the
// same registry and checks the tail sampler's contract on the public API:
// every error trace survives within the fixed retention budget, and the
// ask-latency histogram carries trace-ID exemplars for the exposition
// path.
func E24DistributedTracing(seed int64, scale float64) *Result {
	queries := scaleInt(240, scale, 60)
	nDocs := scaleInt(1200, scale, 300)

	run := func(reg *telemetry.Registry) time.Duration {
		a := core.New(core.Config{Seed: seed, ConceptDim: 32, Telemetry: reg})
		g := workload.NewGenerator(seed, 32, 8)
		docs := g.GenCorpus(nDocs, 1.2, int64(24*time.Hour))
		for i, list := range g.AssignToSources(docs, 5, 0.7) {
			node, err := a.AddNode(workload.SourceName(i), core.DefaultEconomics(), core.DefaultBehavior())
			if err != nil {
				panic(err)
			}
			for _, d := range list {
				if err := node.Ingest(d.Doc); err != nil {
					panic(err)
				}
			}
		}
		users := g.GenUsers(4)
		sessions := make([]*core.Session, len(users))
		for i, u := range users {
			p := profile.New(u.ID, 32)
			p.Interests = u.Concept.Clone()
			p.Weights = u.Archetype.Weights()
			sessions[i] = a.NewSession(p)
		}
		start := time.Now()
		for qi := 0; qi < queries; qi++ {
			u := users[qi%len(users)]
			text, concept, topicID := g.QueryFor(u)
			aql := fmt.Sprintf(`FIND documents WHERE text ~ "%s" AND topic = %q TOP 10`,
				text, g.Topics[topicID].Name)
			_, _ = sessions[qi%len(sessions)].Ask(aql, concept)
		}
		return time.Since(start)
	}

	// Interleaved repetitions, keeping the best of each mode: a single
	// off/on pair is at the mercy of scheduler noise (the pipeline sleeps
	// on simulated provider latency), and min-of-N is the usual antidote.
	const reps = 3
	offDur, onDur := time.Duration(1<<62), time.Duration(1<<62)
	var reg *telemetry.Registry
	for rep := 0; rep < reps; rep++ {
		if d := run(nil); d < offDur {
			offDur = d
		}
		reg = telemetry.NewRegistrySeeded(uint64(seed) + 24 + uint64(rep))
		if d := run(reg); d < onDur {
			onDur = d
		}
	}
	snap := reg.Snapshot()

	asks := snap.Counters["core.ask"]
	tracedAsks := 0
	for _, t := range snap.Traces {
		if t.TraceID != "" && t.TraceID != "0000000000000000" {
			tracedAsks++
		}
	}
	exemplarBuckets := 0
	for _, b := range reg.Histogram("core.ask.latency").Buckets() {
		if b.Exemplar != nil {
			exemplarBuckets++
		}
	}
	coherent := asks == uint64(queries) && tracedAsks == len(snap.Traces) &&
		len(snap.Traces) > 0 && exemplarBuckets > 0

	// Retention phase: a burst of cheap OK traces large enough to evict any
	// FIFO ring, with rare failures sprinkled in. The tail sampler must
	// keep every failure; a FIFO of the same budget would have evicted the
	// early ones.
	burst := scaleInt(800, scale, 200)
	errEvery := 97 // coprime with the burst so failures spread out
	wantErrs := 0
	errProbe := errors.New("provider unreachable")
	for i := 0; i < burst; i++ {
		tr := reg.StartTrace("probe", fmt.Sprintf("burst-%d", i))
		if i%errEvery == 0 && wantErrs < 12 {
			tr.Fail(errProbe)
			wantErrs++
		}
		tr.Finish()
	}
	keptErrs := 0
	for _, t := range reg.Snapshot().Traces {
		if t.Err != "" {
			keptErrs++
		}
	}

	perQueryOff := offDur.Seconds() / float64(queries)
	perQueryOn := onDur.Seconds() / float64(queries)
	overhead := 0.0
	if perQueryOff > 0 {
		overhead = perQueryOn/perQueryOff - 1
	}

	table := metrics.NewTable("E24: distributed tracing overhead & tail-sampled retention",
		"mode", "queries", "wall ms", "µs/query", "traces kept", "exemplar buckets")
	table.AddRow("tracing off", queries, offDur.Seconds()*1e3, perQueryOff*1e6, "-", "-")
	table.AddRow("tracing on", queries, onDur.Seconds()*1e3, perQueryOn*1e6,
		len(snap.Traces), exemplarBuckets)
	table.AddRow(fmt.Sprintf("retention burst (%d traces, %d errors)", burst, wantErrs),
		"-", "-", "-", fmt.Sprintf("%d errors kept", keptErrs), "-")

	boolAsFloat := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return &Result{ID: "E24", Table: table, Headline: map[string]float64{
		"queries":          float64(queries),
		"overhead_frac":    overhead,
		"coherent":         boolAsFloat(coherent),
		"traces_kept":      float64(len(snap.Traces)),
		"exemplar_buckets": float64(exemplarBuckets),
		"burst_errors":     float64(wantErrs),
		"errors_retained":  float64(keptErrs),
		"us_per_query":     perQueryOn * 1e6,
	}}
}
