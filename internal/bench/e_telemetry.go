package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// E20TelemetryOverhead measures the observability tax: the same query
// workload runs through the full pipeline once with telemetry disabled
// (nil registry — every instrument is a nil-receiver no-op) and once with
// the full registry (counters, histograms, trace ring) attached. The
// experiment also checks the instruments' coherence — the ask counter, the
// latency-histogram count, and the issued-query count must agree exactly —
// and reports the measured pipeline quantiles.
func E20TelemetryOverhead(seed int64, scale float64) *Result {
	queries := scaleInt(240, scale, 60)
	nDocs := scaleInt(1200, scale, 300)

	run := func(reg *telemetry.Registry) time.Duration {
		a := core.New(core.Config{Seed: seed, ConceptDim: 32, Telemetry: reg})
		g := workload.NewGenerator(seed, 32, 8)
		docs := g.GenCorpus(nDocs, 1.2, int64(24*time.Hour))
		for i, list := range g.AssignToSources(docs, 5, 0.7) {
			node, err := a.AddNode(workload.SourceName(i), core.DefaultEconomics(), core.DefaultBehavior())
			if err != nil {
				panic(err)
			}
			for _, d := range list {
				if err := node.Ingest(d.Doc); err != nil {
					panic(err)
				}
			}
		}
		users := g.GenUsers(4)
		sessions := make([]*core.Session, len(users))
		for i, u := range users {
			p := profile.New(u.ID, 32)
			p.Interests = u.Concept.Clone()
			p.Weights = u.Archetype.Weights()
			sessions[i] = a.NewSession(p)
		}
		start := time.Now()
		for qi := 0; qi < queries; qi++ {
			u := users[qi%len(users)]
			text, concept, topicID := g.QueryFor(u)
			aql := fmt.Sprintf(`FIND documents WHERE text ~ "%s" AND topic = %q TOP 10`,
				text, g.Topics[topicID].Name)
			_, _ = sessions[qi%len(sessions)].Ask(aql, concept)
		}
		return time.Since(start)
	}

	offDur := run(nil)
	reg := telemetry.NewRegistry()
	onDur := run(reg)
	snap := reg.Snapshot()

	asks := snap.Counters["core.ask"]
	askHist := snap.Histograms["core.ask.latency"]
	coherent := asks == uint64(queries) && askHist.Count == asks &&
		askHist.P50 <= askHist.P95 && askHist.P95 <= askHist.P99 && askHist.P99 <= askHist.Max

	perQueryOff := offDur.Seconds() / float64(queries)
	perQueryOn := onDur.Seconds() / float64(queries)
	overhead := 0.0
	if perQueryOff > 0 {
		overhead = perQueryOn/perQueryOff - 1
	}

	table := metrics.NewTable("E20: telemetry overhead under query load",
		"mode", "queries", "wall ms", "µs/query", "ask p50 ms", "ask p95 ms", "ask p99 ms")
	table.AddRow("telemetry off", queries, offDur.Seconds()*1e3, perQueryOff*1e6, "-", "-", "-")
	table.AddRow("telemetry on", queries, onDur.Seconds()*1e3, perQueryOn*1e6,
		askHist.P50*1e3, askHist.P95*1e3, askHist.P99*1e3)

	boolAsFloat := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return &Result{ID: "E20", Table: table, Headline: map[string]float64{
		"queries":       float64(queries),
		"ask_count":     float64(asks),
		"coherent":      boolAsFloat(coherent),
		"overhead_frac": overhead,
		"ask_p95_ms":    askHist.P95 * 1e3,
		"traces_kept":   float64(len(snap.Traces)),
		"us_per_query":  perQueryOn * 1e6,
	}}
}
