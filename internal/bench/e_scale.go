package bench

import (
	"fmt"
	"time"

	"repro/internal/feature"
	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E12ScaleChurn runs the overlay at increasing sizes and churn rates,
// comparing dissemination strategies on answer recall, message cost, and
// latency percentiles.
func E12ScaleChurn(seed int64, scale float64) *Result {
	table := metrics.NewTable("E12: overlay scale and churn",
		"nodes", "churn %/min", "strategy", "recall", "msgs/query", "p50 ms", "p95 ms")
	headline := map[string]float64{}

	sizes := []int{64, 256}
	if scale >= 2 {
		sizes = append(sizes, 1024)
	}
	churns := []float64{0, 10, 20}
	strategies := []overlay.Strategy{overlay.Flood, overlay.RandomWalk, overlay.Semantic}

	for _, n := range sizes {
		for _, churn := range churns {
			for _, strat := range strategies {
				recall, msgs, p50, p95 := runOverlayTrial(seed, n, churn, strat, scale)
				table.AddRow(n, churn, strat.String(), recall, msgs,
					float64(p50)/float64(time.Millisecond), float64(p95)/float64(time.Millisecond))
				key := fmt.Sprintf("%s_%d_%g", strat.String(), n, churn)
				headline["recall_"+key] = recall
				headline["msgs_"+key] = msgs
			}
		}
	}
	return &Result{ID: "E12", Table: table, Headline: headline}
}

// overlayHandler answers queries matching its concept bucket.
type overlayHandler struct {
	vec feature.Vector
}

func (h *overlayHandler) HandleQuery(q overlay.QueryMsg) any {
	if feature.Cosine(h.vec, q.Concept) >= 0.85 {
		return "hit"
	}
	return nil
}

func (h *overlayHandler) ContentVector() feature.Vector { return h.vec }

func runOverlayTrial(seed int64, n int, churnPerMin float64, strat overlay.Strategy, scale float64) (recall, msgsPerQuery float64, p50, p95 time.Duration) {
	k := sim.NewKernel(seed + int64(n) + int64(churnPerMin*100) + int64(strat))
	net := sim.NewNetwork(k, sim.WANLatency{Base: 80 * time.Millisecond, Jitter: 0.2, Nodes: n}, 0.01)
	ov := overlay.New(net, overlay.DefaultConfig())
	g := workload.NewGenerator(seed, 16, 8)
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		ids[i] = i
		topic := i % len(g.Topics)
		ov.AddNode(i, &overlayHandler{vec: g.Topics[topic].Center})
	}
	ov.Bootstrap()
	// Let gossip and shortcuts settle.
	_ = k.RunUntil(time.Minute)
	if churnPerMin > 0 {
		sim.StartChurn(net, ids[1:], churnPerMin, 15*time.Second, nil)
		_ = k.RunFor(30 * time.Second)
	}
	queries := scaleInt(20, scale, 8)
	expectPerQuery := n / len(g.Topics) // nodes matching each query's topic
	var found int
	var latencies []time.Duration
	var totalMsgs uint64
	for qi := 0; qi < queries; qi++ {
		topic := qi % len(g.Topics)
		q := overlay.QueryMsg{
			ID:       fmt.Sprintf("q%d-%d", n, qi),
			Origin:   (qi * 7) % n,
			Concept:  g.Topics[topic].Center,
			TTL:      6,
			Strategy: strat,
			Walkers:  8,
			Fanout:   3,
		}
		if strat == overlay.RandomWalk {
			q.TTL = 30
		}
		before := ov.QueryMsgs
		start := k.Now()
		var answers int
		ov.Query(q, func(a overlay.Answer) {
			answers++
			latencies = append(latencies, a.HopAt-start)
		})
		_ = k.RunFor(8 * time.Second)
		ov.CloseQuery(q.ID)
		found += answers
		totalMsgs += ov.QueryMsgs - before
	}
	recall = float64(found) / float64(queries*expectPerQuery)
	if recall > 1 {
		recall = 1
	}
	msgsPerQuery = float64(totalMsgs) / float64(queries)
	p50 = sim.Percentile(latencies, 0.5)
	p95 = sim.Percentile(latencies, 0.95)
	return recall, msgsPerQuery, p50, p95
}
