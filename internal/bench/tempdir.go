package bench

import "os"

// tempDir and cleanup isolate E14's on-disk store without depending on
// testing.T (the harness also runs from cmd/agora-bench).
func tempDir() (string, error) {
	return os.MkdirTemp("", "agora-bench-*")
}

func cleanup(dir string) {
	_ = os.RemoveAll(dir)
}
