package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/docstore"
	"repro/internal/metrics"
)

// E23GroupCommit measures the group-commit write path against the
// serialized discipline the docstore had before it: N writers ingest a
// fixed document budget into a durable fsync-on-put store. Under group
// commit the writers stage records into the commit pipeline and share ONE
// fsync per window; the serialized baseline wraps the same store in an
// external mutex so at most one op is ever in flight and every op pays its
// own fsync — the seed's write path. Reported per writer count: put p50/p99
// latency and realized throughput under both disciplines.
//
// The experiment also pins the determinism contract extended to the write
// path: the same operation sequence committed one-op-per-window and
// committed through batched windows must leave BYTE-IDENTICAL WALs, and
// recovery from either log must reconstruct identical stores.
func E23GroupCommit(seed int64, scale float64) *Result {
	nOps := scaleInt(512, scale, 96)

	mkDoc := func(r *rand.Rand, i int) *docstore.Document {
		return &docstore.Document{
			ID:         fmt.Sprintf("e23-%05d", i),
			Kind:       docstore.KindArticle,
			Title:      fmt.Sprintf("term%03d term%03d", r.Intn(256), r.Intn(256)),
			Text:       fmt.Sprintf("body term%03d term%03d term%03d", r.Intn(256), r.Intn(256), r.Intn(256)),
			Topics:     []string{"t" + fmt.Sprint(i%4)},
			CreatedAt:  int64(i),
			Provenance: "e23",
		}
	}

	pct := func(xs []float64, p float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[int(p*float64(len(s)-1))]
	}

	// measure ingests nOps documents from `writers` goroutines, returning
	// per-put latencies (ms) and realized throughput (puts/s). GOMAXPROCS
	// is raised so window formation reflects kernel scheduling, not Go
	// round-robin on a starved runner (same setting for both variants).
	measure := func(writers int, serialized bool) (lats []float64, opsPerSec float64) {
		if procs := writers + 1; runtime.GOMAXPROCS(0) < procs {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		}
		dir, err := tempDir()
		if err != nil {
			panic(err)
		}
		defer cleanup(dir)
		s, err := docstore.Open(docstore.Options{
			Dir: dir, ConceptDim: 8, Seed: seed,
			SyncEveryPut: true, QueryCacheSize: -1,
		})
		if err != nil {
			panic(err)
		}
		defer s.Close()
		perWriter := nOps / writers
		docs := make([][]*docstore.Document, writers)
		for w := range docs {
			r := rand.New(rand.NewSource(seed + int64(w)))
			docs[w] = make([]*docstore.Document, perWriter)
			for i := range docs[w] {
				docs[w][i] = mkDoc(r, w*perWriter+i)
			}
		}
		var serialize sync.Mutex
		perW := make([][]float64, writers)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for _, d := range docs[w] {
					t0 := time.Now()
					if serialized {
						serialize.Lock()
					}
					err := s.Put(d)
					if serialized {
						serialize.Unlock()
					}
					if err != nil {
						panic(err)
					}
					perW[w] = append(perW[w], time.Since(t0).Seconds()*1e3)
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		for _, l := range perW {
			lats = append(lats, l...)
		}
		if elapsed > 0 {
			opsPerSec = float64(len(lats)) / elapsed
		}
		return lats, opsPerSec
	}

	table := metrics.NewTable("E23: serialized vs group-commit write path (durable, fsync-on-put)",
		"writers", "serialized p50 ms", "group p50 ms", "serialized puts/s", "group puts/s", "throughput speedup")
	headline := map[string]float64{}
	for _, n := range []int{1, 4, 16} {
		serLats, serTput := measure(n, true)
		grpLats, grpTput := measure(n, false)
		speedup := 0.0
		if serTput > 0 {
			speedup = grpTput / serTput
		}
		table.AddRow(fmt.Sprint(n), pct(serLats, 0.5), pct(grpLats, 0.5), serTput, grpTput, speedup)
		headline[fmt.Sprintf("tput_speedup_%dw", n)] = speedup
		if n == 16 {
			headline["group_p99_ms_16w"] = pct(grpLats, 0.99)
			headline["serialized_p99_ms_16w"] = pct(serLats, 0.99)
			headline["group_puts_per_s_16w"] = grpTput
		}
	}

	// Determinism: the same sequence — one-op windows vs PutBatch windows —
	// must produce byte-identical WALs and byte-identical recovered stores.
	byteIdentical, recoveredIdentical := walDeterminism(seed, scaleInt(128, scale, 48), mkDoc)
	headline["byte_identical"] = byteIdentical
	headline["recovered_identical"] = recoveredIdentical
	table.AddRow("wal byte-identity (1=yes)", byteIdentical, byteIdentical, 0, 0, 0)
	table.AddRow("recovery identity (1=yes)", recoveredIdentical, recoveredIdentical, 0, 0, 0)

	return &Result{ID: "E23", Table: table, Headline: headline}
}

// walDeterminism commits the same op sequence two ways and compares the
// logs byte for byte, then reopens both stores and compares the recovered
// document sets.
func walDeterminism(seed int64, n int, mkDoc func(*rand.Rand, int) *docstore.Document) (byteIdentical, recoveredIdentical float64) {
	dirA, err := tempDir()
	if err != nil {
		panic(err)
	}
	defer cleanup(dirA)
	dirB, err := tempDir()
	if err != nil {
		panic(err)
	}
	defer cleanup(dirB)
	open := func(dir string) *docstore.Store {
		s, err := docstore.Open(docstore.Options{Dir: dir, ConceptDim: 8, Seed: seed, SyncEveryPut: true})
		if err != nil {
			panic(err)
		}
		return s
	}
	gen := func() []*docstore.Document {
		r := rand.New(rand.NewSource(seed + 23))
		docs := make([]*docstore.Document, n)
		for i := range docs {
			docs[i] = mkDoc(r, i)
		}
		return docs
	}

	a := open(dirA)
	for _, d := range gen() { // one op per window
		if err := a.Put(d); err != nil {
			panic(err)
		}
	}
	if err := a.Delete(fmt.Sprintf("e23-%05d", n/2)); err != nil {
		panic(err)
	}
	if err := a.Close(); err != nil {
		panic(err)
	}

	b := open(dirB)
	docs := gen()
	for i := 0; i < len(docs); i += 9 { // batched windows
		end := i + 9
		if end > len(docs) {
			end = len(docs)
		}
		if err := b.PutBatch(docs[i:end]); err != nil {
			panic(err)
		}
	}
	if err := b.Delete(fmt.Sprintf("e23-%05d", n/2)); err != nil {
		panic(err)
	}
	if err := b.Close(); err != nil {
		panic(err)
	}

	byteIdentical = 1
	if !bytes.Equal(readWALFile(dirA), readWALFile(dirB)) {
		byteIdentical = 0
	}

	ra, rb := open(dirA), open(dirB)
	defer ra.Close()
	defer rb.Close()
	recoveredIdentical = 1
	if ra.Len() != rb.Len() {
		recoveredIdentical = 0
	}
	ra.All(func(d *docstore.Document) bool {
		got, err := rb.Get(d.ID)
		if err != nil || got.Title != d.Title || got.Text != d.Text || got.CreatedAt != d.CreatedAt {
			recoveredIdentical = 0
			return false
		}
		return true
	})
	return byteIdentical, recoveredIdentical
}

// readWALFile returns the raw bytes of the store's log inside dir.
func readWALFile(dir string) []byte {
	ents, err := os.ReadDir(dir)
	if err != nil {
		panic(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal") {
			raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				panic(err)
			}
			return raw
		}
	}
	return nil
}
