package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/docstore"
	"repro/internal/feature"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

// E1FeatureMatching sweeps the feature sets used to match queries against a
// multimedia corpus — the paper's "are the typical visible features enough,
// or does one need more metadata?" — and reports retrieval quality per set
// plus score-calibration error before and after isotonic calibration.
func E1FeatureMatching(seed int64, scale float64) *Result {
	g := workload.NewGenerator(seed, 32, 8)
	nDocs := scaleInt(800, scale, 200)
	nQueries := scaleInt(120, scale, 40)
	// A hard corpus: heavy concept noise and a noisy visual extractor, so
	// the feature sets genuinely differ in quality.
	ve := feature.NewVisualExtractor(seed+50, 32, 12, 8, 0.35)
	docs := g.GenCorpusNoisy(nDocs, 1.2, 0, 0.8, ve)
	store, err := docstore.Open(docstore.Options{ConceptDim: 32, Seed: seed})
	if err != nil {
		panic(err)
	}
	for _, d := range docs {
		if err := store.Put(d.Doc); err != nil {
			panic(err)
		}
	}
	users := g.GenUsers(nQueries)

	// Feature sets: pure text, pure metadata concept, pure low-level
	// visual (color histogram + texture), and the text+concept hybrid.
	type cond struct {
		name   string
		search func(text string, concept feature.Vector, vf feature.VisualFeatures) []docstore.Hit
	}
	conds := []cond{
		{"text-only", func(text string, _ feature.Vector, _ feature.VisualFeatures) []docstore.Hit {
			return store.SearchText(text, 10)
		}},
		{"concept-metadata", func(_ string, concept feature.Vector, _ feature.VisualFeatures) []docstore.Hit {
			return store.SearchVector(concept, 10)
		}},
		{"visual (hist+texture)", func(_ string, _ feature.Vector, vf feature.VisualFeatures) []docstore.Hit {
			return store.SearchVisual(vf, 0.5, 10)
		}},
		{"text+concept", func(text string, concept feature.Vector, _ feature.VisualFeatures) []docstore.Hit {
			return store.SearchHybrid(text, concept, 0.5, 10)
		}},
	}
	table := metrics.NewTable("E1: retrieval quality by feature set",
		"feature set", "P@10", "NDCG@10", "MRR")
	headline := map[string]float64{}
	var hybridScores []float64
	var hybridLabels []bool
	for _, c := range conds {
		var p10s, ndcgs, mrrs []float64
		for _, u := range users {
			text, concept, topic := g.QueryFor(u)
			qvf := ve.Extract(g.Rand(), g.SampleConcept(topic, 0.4))
			hits := c.search(text, concept, qvf)
			var ranked []string
			rel := workload.RelevantSet(docs, topic)
			grel := map[string]float64{}
			for id := range rel {
				grel[id] = 1
			}
			for _, h := range hits {
				ranked = append(ranked, h.Doc.ID)
				if c.name == "text+concept" {
					hybridScores = append(hybridScores, h.Score)
					hybridLabels = append(hybridLabels, rel[h.Doc.ID])
				}
			}
			p10s = append(p10s, metrics.PrecisionAtK(ranked, rel, 10))
			ndcgs = append(ndcgs, metrics.NDCG(ranked, grel, 10))
			mrrs = append(mrrs, metrics.MRR(ranked, rel))
		}
		p10 := metrics.Summarize(p10s).Mean
		ndcg := metrics.Summarize(ndcgs).Mean
		table.AddRow(c.name, p10, ndcg, metrics.Summarize(mrrs).Mean)
		headline["p10_"+c.name] = p10
		headline["ndcg_"+c.name] = ndcg
	}

	// Calibration sub-table folded into headline numbers.
	eceRaw := uncertainty.CalibrationError(func(s float64) float64 { return s }, hybridScores, hybridLabels, 10)
	eceCal := eceRaw
	if cal, err := uncertainty.FitCalibrator(hybridScores, hybridLabels); err == nil {
		eceCal = uncertainty.CalibrationError(cal.Prob, hybridScores, hybridLabels, 10)
	}
	table.AddRow("ECE raw scores", eceRaw, "", "")
	table.AddRow("ECE calibrated", eceCal, "", "")
	headline["ece_raw"] = eceRaw
	headline["ece_calibrated"] = eceCal
	return &Result{ID: "E1", Table: table, Headline: headline}
}

// E2BeliefConvergence measures how fast Beta beliefs about hidden source
// quality converge with interactions, and the value of Thompson-sampling
// source selection over uniform choice (regret).
func E2BeliefConvergence(seed int64, scale float64) *Result {
	r := rand.New(rand.NewSource(seed))
	nSources := scaleInt(50, scale, 10)
	rounds := scaleInt(2000, scale, 400)
	hidden := make([]float64, nSources)
	for i := range hidden {
		hidden[i] = sim.Beta(r, 2, 2)
	}
	beliefs := make([]uncertainty.BetaBelief, nSources)
	for i := range beliefs {
		beliefs[i] = uncertainty.NewBelief()
	}
	best := 0.0
	for _, h := range hidden {
		if h > best {
			best = h
		}
	}
	checkpoints := map[int]bool{50: true, 200: true, 800: true, rounds: true}
	table := metrics.NewTable("E2: belief convergence & Thompson-sampling regret",
		"interactions", "belief MAE", "95% interval width", "cum. regret/round")
	headline := map[string]float64{}
	var cumRegret float64
	for round := 1; round <= rounds; round++ {
		// Thompson sampling: pick the source whose sampled quality is max.
		bestIdx, bestSample := 0, -1.0
		for i := range beliefs {
			if s := beliefs[i].Sample(r); s > bestSample {
				bestSample = s
				bestIdx = i
			}
		}
		success := r.Float64() < hidden[bestIdx]
		beliefs[bestIdx] = beliefs[bestIdx].Observe(success)
		cumRegret += best - hidden[bestIdx]
		if checkpoints[round] {
			var mae, width float64
			for i := range beliefs {
				mae += math.Abs(beliefs[i].Mean() - hidden[i])
				lo, hi := beliefs[i].Interval(1.96)
				width += hi - lo
			}
			mae /= float64(nSources)
			width /= float64(nSources)
			table.AddRow(fmt.Sprint(round), mae, width, cumRegret/float64(round))
			headline[fmt.Sprintf("mae_%d", round)] = mae
			headline[fmt.Sprintf("regret_%d", round)] = cumRegret / float64(round)
		}
	}
	return &Result{ID: "E2", Table: table, Headline: headline}
}
