// Package bench implements the synthetic evaluation suite standing in for
// the (nonexistent) evaluation section of the ICDE 2007 vision paper: one
// or more quantitative experiments per pillar, each with a workload, a
// baseline, a metric, and a table renderer. cmd/agora-bench prints every
// table; the repository-root bench_test.go wraps each experiment in a
// testing.B benchmark; EXPERIMENTS.md records measured rows.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// Result is one experiment's output: the table plus headline numbers that
// tests assert qualitative shapes on.
type Result struct {
	ID       string
	Table    *metrics.Table
	Headline map[string]float64
}

// Render writes the result's table.
func (r *Result) Render(w io.Writer) { r.Table.Render(w) }

// HeadlineKeys returns the headline metric names, sorted.
func (r *Result) HeadlineKeys() []string {
	out := make([]string, 0, len(r.Headline))
	for k := range r.Headline {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Experiment is a runnable suite entry.
type Experiment struct {
	ID    string
	Title string
	Run   func(seed int64, scale float64) *Result
}

// Suite lists every experiment in paper-pillar order.
func Suite() []Experiment {
	return []Experiment{
		{"E1", "Uncertainty: feature sets & score calibration", E1FeatureMatching},
		{"E2", "Uncertainty: source-quality belief convergence", E2BeliefConvergence},
		{"E3", "QoS: SLA premium vs breach trade-off", E3SLAPremium},
		{"E4", "Negotiation: tactics vs non-negotiating baselines", E4NegotiationTactics},
		{"E5", "Negotiation: subcontracting depth", E5Subcontracting},
		{"E6", "Personalization: profile learning", E6Personalization},
		{"E7", "Personalization: multi-source profile merging", E7ProfileMerge},
		{"E8", "Socialization: affinity-weighted re-ranking", E8SocialRerank},
		{"E9", "Collaboration: multi-query sharing", E9CollabSharing},
		{"E10", "Contextualization: variant activation", E10ContextActivation},
		{"E11", "Multi-modal: feed matching throughput", E11FeedMatching},
		{"E12", "Agora scale & churn (overlay routing)", E12ScaleChurn},
		{"E13", "Optimizer: multi-objective plan quality", E13MultiObjective},
		{"E14", "Substrate: docstore micro-benchmarks", E14Docstore},
		{"E15", "Ablation: auction vs bilateral negotiation", E15AuctionVsBilateral},
		{"E16", "Ablation: reputation learning (greengrocer loop)", E16ReputationLearning},
		{"E17", "Ablation: LSH vector-index parameters", E17LSHAblation},
		{"E18", "Integration: registry vs overlay discovery", E18DiscoveryVsRegistry},
		{"E19", "Personalization: risk-profile recovery & use", E19RiskProfiling},
		{"E20", "Substrate: telemetry overhead & instrument coherence", E20TelemetryOverhead},
		{"E21", "Pipeline: parallel source fan-out & hedged tail latency", E21ParallelFanout},
		{"E22", "Substrate: lock-free snapshot reads under writer churn", E22LockFreeReads},
		{"E23", "Substrate: group-commit WAL write throughput", E23GroupCommit},
		{"E24", "Substrate: distributed tracing overhead & tail-sampled retention", E24DistributedTracing},
		{"E25", "Substrate: block-max top-k search vs exhaustive scoring", E25BlockMaxSearch},
		{"E26", "Substrate: sharded corpus scatter-gather ask scaling", E26ShardedScatter},
		{"E27", "Substrate: zero-alloc batched wire path", E27WirePath},
	}
}

// RunAll executes the full suite at the given scale, rendering each table.
// Per-experiment wall time is recorded through the telemetry package itself
// (bench.<ID> histograms) and summarized in a closing runtime-cost table —
// the harness eats its own observability dog food.
func RunAll(w io.Writer, seed int64, scale float64) []*Result {
	reg := telemetry.NewRegistry()
	var out []*Result
	for _, e := range Suite() {
		fmt.Fprintf(w, "## %s — %s\n\n", e.ID, e.Title)
		start := time.Now()
		r := e.Run(seed, scale)
		reg.Histogram("bench." + e.ID).Observe(time.Since(start))
		r.Render(w)
		out = append(out, r)
	}
	renderRuntimes(w, reg.Snapshot(), out)
	return out
}

// renderRuntimes prints the harness's own per-experiment runtime-cost table
// from a telemetry snapshot.
func renderRuntimes(w io.Writer, snap telemetry.Snapshot, results []*Result) {
	fmt.Fprintf(w, "## Harness runtime cost (wall-clock)\n\n")
	tbl := metrics.NewTable("per-experiment runtime", "experiment", "seconds")
	total := 0.0
	for _, r := range results {
		h, ok := snap.Histograms["bench."+r.ID]
		if !ok {
			continue
		}
		tbl.AddRow(r.ID, h.Sum)
		total += h.Sum
	}
	tbl.AddRow("total", total)
	tbl.Render(w)
}

// scaleInt scales a base count, with a floor.
func scaleInt(base int, scale float64, min int) int {
	n := int(float64(base) * scale)
	if n < min {
		n = min
	}
	return n
}
