package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/feature"
	"repro/internal/feedsys"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// E11FeedMatching measures continuous-feed matching throughput: the
// predicate-index matcher vs the linear-scan baseline, across subscription
// populations. Match sets are verified identical (modulo LSH candidate
// recall on concept-only subscriptions).
func E11FeedMatching(seed int64, scale float64) *Result {
	g := workload.NewGenerator(seed, 32, 8)
	r := rand.New(rand.NewSource(seed + 5))
	nItems := scaleInt(1500, scale, 300)

	table := metrics.NewTable("E11: feed matching throughput",
		"subscriptions", "indexed items/s", "linear items/s", "speedup", "avg matches/item")
	headline := map[string]float64{}
	for _, nSubs := range []int{1000, 5000, 10000} {
		nSubs = scaleInt(nSubs, scale, 200)
		indexed := feedsys.NewMatcher(32, seed)
		linear := feedsys.NewMatcher(32, seed)
		linear.Linear = true
		for i := 0; i < nSubs; i++ {
			topic := g.Topics[r.Intn(len(g.Topics))]
			var terms []string
			nTerms := 1 + r.Intn(2)
			for t := 0; t < nTerms; t++ {
				terms = append(terms, topic.Vocab[r.Intn(len(topic.Vocab))])
			}
			var concept feature.Vector
			var threshold float64
			if r.Intn(3) == 0 {
				concept = topic.Center.Clone()
				threshold = 0.7
			}
			s1 := feedsys.Subscription{ID: fmt.Sprintf("s%05d", i), Terms: terms, Concept: concept, Threshold: threshold}
			s2 := s1
			if err := indexed.Subscribe(&s1); err != nil {
				panic(err)
			}
			if err := linear.Subscribe(&s2); err != nil {
				panic(err)
			}
		}
		items := make([]feedsys.Item, nItems)
		for i := range items {
			topic := r.Intn(len(g.Topics))
			items[i] = feedsys.Item{
				ID:      fmt.Sprintf("i%05d", i),
				Text:    g.GenText(topic, 12),
				Concept: g.SampleConcept(topic, 0.15),
			}
		}
		var totalMatches int
		start := time.Now()
		for _, it := range items {
			totalMatches += len(indexed.Match(it))
		}
		indexedDur := time.Since(start)
		start = time.Now()
		for _, it := range items {
			linear.Match(it)
		}
		linearDur := time.Since(start)

		ixRate := float64(nItems) / indexedDur.Seconds()
		linRate := float64(nItems) / linearDur.Seconds()
		speedup := ixRate / linRate
		table.AddRow(nSubs, ixRate, linRate, speedup, float64(totalMatches)/float64(nItems))
		headline[fmt.Sprintf("speedup_%d", nSubs)] = speedup
	}
	return &Result{ID: "E11", Table: table, Headline: headline}
}
