package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/docstore"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/qos"
	"repro/internal/uncertainty"
	"repro/internal/workload"
)

// E13MultiObjective compares plan-selection methods on a randomized source
// market: the Pareto front's hypervolume vs the single plan chosen by
// weighted-sum scalarization vs a greedy cheapest-first baseline.
func E13MultiObjective(seed int64, scale float64) *Result {
	r := rand.New(rand.NewSource(seed + 6))
	trials := scaleInt(25, scale, 8)
	table := metrics.NewTable("E13: multi-objective plan quality (hypervolume, ref price=20 latency=10s)",
		"method", "hypervolume", "front size", "best-plan completeness")
	headline := map[string]float64{}

	var hvPareto, hvWeighted, hvGreedy, frontSize, bestComp float64
	for trial := 0; trial < trials; trial++ {
		nSources := 8 + r.Intn(4)
		var cands []optimizer.SourceEstimate
		for i := 0; i < nSources; i++ {
			cands = append(cands, optimizer.SourceEstimate{
				Source:      fmt.Sprintf("s%02d", i),
				Coverage:    uncertainty.PriorBelief(0.15+0.6*r.Float64(), 10+r.Float64()*40),
				Price:       uncertainty.MakeInterval(0.5+r.Float64()*2, 1+r.Float64()*5),
				Latency:     uncertainty.MakeInterval(0.1+r.Float64(), 0.5+r.Float64()*3),
				Trust:       uncertainty.PriorBelief(0.5+0.4*r.Float64(), 15),
				Premium:     1 + r.Float64(),
				PenaltyRate: 0.3 + 0.4*r.Float64(),
			})
		}
		front := optimizer.ParetoPlans(cands, 5)
		hvPareto += optimizer.Hypervolume(front, 20, 10)
		frontSize += float64(len(front))

		obj := optimizer.Objective{Weights: qos.DefaultWeights(), Risk: uncertainty.Neutral()}
		if best, err := optimizer.Best(cands, obj, 5); err == nil {
			hvWeighted += optimizer.Hypervolume([]optimizer.Plan{best}, 20, 10)
			bestComp += best.Predicted().Completeness
		}
		// Greedy-cheap baseline: add cheapest sources until 3.
		sorted := append([]optimizer.SourceEstimate{}, cands...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j].Price.Mid() < sorted[j-1].Price.Mid(); j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		greedy := optimizer.Plan{Sources: sorted[:3]}
		hvGreedy += optimizer.Hypervolume([]optimizer.Plan{greedy}, 20, 10)
	}
	n := float64(trials)
	table.AddRow("pareto-front", hvPareto/n, frontSize/n, "")
	table.AddRow("weighted-sum best", hvWeighted/n, 1, bestComp/n)
	table.AddRow("greedy-cheapest-3", hvGreedy/n, 1, "")
	headline["hv_pareto"] = hvPareto / n
	headline["hv_weighted"] = hvWeighted / n
	headline["hv_greedy"] = hvGreedy / n
	return &Result{ID: "E13", Table: table, Headline: headline}
}

// E14Docstore micro-benchmarks the storage substrate: ingest and search
// rates, plus crash-recovery correctness (torn-tail WAL).
func E14Docstore(seed int64, scale float64) *Result {
	g := workload.NewGenerator(seed, 32, 8)
	nDocs := scaleInt(2000, scale, 500)
	docs := g.GenCorpus(nDocs, 1.2, int64(time.Hour))

	dir, err := tempDir()
	if err != nil {
		panic(err)
	}
	store, err := docstore.Open(docstore.Options{Dir: dir, ConceptDim: 32, Seed: seed})
	if err != nil {
		panic(err)
	}
	start := time.Now()
	for _, d := range docs {
		if err := store.Put(d.Doc); err != nil {
			panic(err)
		}
	}
	ingestRate := float64(nDocs) / time.Since(start).Seconds()

	queries := scaleInt(300, scale, 100)
	users := g.GenUsers(queries)
	start = time.Now()
	for _, u := range users {
		text, _, _ := g.QueryFor(u)
		store.SearchText(text, 10)
	}
	textRate := float64(queries) / time.Since(start).Seconds()

	start = time.Now()
	for _, u := range users {
		_, concept, _ := g.QueryFor(u)
		store.SearchVector(concept, 10)
	}
	vecRate := float64(queries) / time.Since(start).Seconds()

	// Crash-recovery: close, reopen, verify count.
	if err := store.Close(); err != nil {
		panic(err)
	}
	start = time.Now()
	re, err := docstore.Open(docstore.Options{Dir: dir, ConceptDim: 32, Seed: seed})
	if err != nil {
		panic(err)
	}
	recoverDur := time.Since(start)
	recovered := re.Len()
	re.Close()
	cleanup(dir)

	table := metrics.NewTable("E14: docstore substrate micro-benchmarks",
		"metric", "value")
	table.AddRow("docs", nDocs)
	table.AddRow("ingest docs/s", ingestRate)
	table.AddRow("text search q/s", textRate)
	table.AddRow("vector search q/s", vecRate)
	table.AddRow("recovery ms", float64(recoverDur)/float64(time.Millisecond))
	table.AddRow("recovered docs", recovered)
	return &Result{ID: "E14", Table: table, Headline: map[string]float64{
		"ingest_rate": ingestRate,
		"text_qps":    textRate,
		"vector_qps":  vecRate,
		"recovered":   float64(recovered),
		"expected":    float64(nDocs),
	}}
}
