package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/docstore"
	"repro/internal/feature"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/workload"
)

// E6Personalization measures ranking quality as profiles learn from
// simulated clicks: generic ranking (gamma=0) vs learned profile vs the
// oracle profile (ground-truth interests), over learning rounds.
func E6Personalization(seed int64, scale float64) *Result {
	g := workload.NewGenerator(seed, 32, 8)
	r := rand.New(rand.NewSource(seed + 1))
	nDocs := scaleInt(800, scale, 200)
	nUsers := scaleInt(40, scale, 10)
	docs := g.GenCorpus(nDocs, 1.2, 0)
	store, err := docstore.Open(docstore.Options{ConceptDim: 32, Seed: seed})
	if err != nil {
		panic(err)
	}
	for _, d := range docs {
		if err := store.Put(d.Doc); err != nil {
			panic(err)
		}
	}
	users := g.GenUsers(nUsers)
	topicOf := make(map[string]int, len(docs))
	for _, d := range docs {
		topicOf[d.Doc.ID] = d.TopicID
	}

	// Candidate pool: a broad slice of the corpus per evaluation (mixed
	// topics), ranked by each condition's scorer.
	pool := func() []*docstore.Document {
		out := store.Freshest(60)
		return out
	}

	rank := func(p *profile.Profile, gamma float64, cands []*docstore.Document) []string {
		type sc struct {
			id string
			s  float64
		}
		scored := make([]sc, len(cands))
		for i, d := range cands {
			base := 0.5 // uniform base relevance: isolates personalization
			scored[i] = sc{d.ID, p.PersonalScore(base, d.Concept, gamma)}
		}
		for i := 1; i < len(scored); i++ {
			for j := i; j > 0 && (scored[j].s > scored[j-1].s || (scored[j].s == scored[j-1].s && scored[j].id < scored[j-1].id)); j-- {
				scored[j], scored[j-1] = scored[j-1], scored[j]
			}
		}
		out := make([]string, len(scored))
		for i, s := range scored {
			out[i] = s.id
		}
		return out
	}

	// Per-user evaluation: learned profile vs their own ground truth.
	learner := profile.NewLearner()
	rounds := []int{0, 2, 5, 10, 20}
	table := metrics.NewTable("E6: NDCG@10 over learning rounds",
		"rounds", "generic", "learned profile", "oracle profile")
	headline := map[string]float64{}

	profiles := make([]*profile.Profile, len(users))
	for i, u := range users {
		profiles[i] = profile.New(u.ID, 32)
	}
	evalAll := func() (generic, learned, oracle float64) {
		var gs, ls, os []float64
		for i, u := range users {
			grel := workload.GradedRelevance(docs, u)
			cands := pool()
			gs = append(gs, metrics.NDCG(rank(profiles[i], 0, cands), grel, 10))
			ls = append(ls, metrics.NDCG(rank(profiles[i], 0.8, cands), grel, 10))
			op := profile.New(u.ID, 32)
			op.Interests = u.Concept.Clone()
			os = append(os, metrics.NDCG(rank(op, 0.8, cands), grel, 10))
		}
		return metrics.Summarize(gs).Mean, metrics.Summarize(ls).Mean, metrics.Summarize(os).Mean
	}

	done := 0
	for _, checkpoint := range rounds {
		for done < checkpoint {
			// One learning round: each user clicks docs of their topics.
			for i, u := range users {
				interested := map[int]bool{}
				for _, t := range u.Interests {
					interested[t] = true
				}
				for _, d := range pool() {
					if r.Float64() > 0.4 {
						continue // user looks at a subset
					}
					ev := profile.Event{Concept: d.Concept, Terms: feature.Tokenize(d.Title)}
					if interested[topicOf[d.ID]] {
						ev.Type = profile.EventClick
					} else {
						ev.Type = profile.EventSkip
					}
					learner.Observe(profiles[i], ev)
				}
			}
			done++
		}
		generic, learned, oracle := evalAll()
		table.AddRow(checkpoint, generic, learned, oracle)
		headline[fmt.Sprintf("generic_%d", checkpoint)] = generic
		headline[fmt.Sprintf("learned_%d", checkpoint)] = learned
		headline[fmt.Sprintf("oracle_%d", checkpoint)] = oracle
	}
	return &Result{ID: "E6", Table: table, Headline: headline}
}

// E7ProfileMerge injects conflicting per-source observations of one user's
// term affinities and compares conflict policies on merge F1 against the
// ground-truth likes/dislikes.
func E7ProfileMerge(seed int64, scale float64) *Result {
	r := rand.New(rand.NewSource(seed))
	nTerms := scaleInt(120, scale, 40)
	nSources := 4
	trials := scaleInt(30, scale, 10)

	table := metrics.NewTable("E7: profile merge under conflicts",
		"policy", "affinity F1", "conflicts detected", "interest cosine to truth")
	headline := map[string]float64{}
	policies := []struct {
		name string
		p    profile.ConflictPolicy
	}{
		{"evidence-weighted", profile.ConflictEvidence},
		{"drop-conflicts", profile.ConflictDrop},
		{"majority", profile.ConflictMajority},
	}
	sums := make([]struct{ f1, conflicts, cos float64 }, len(policies))
	for trial := 0; trial < trials; trial++ {
		// Ground truth.
		likes := map[string]bool{}
		dislikes := map[string]bool{}
		terms := make([]string, nTerms)
		for i := range terms {
			terms[i] = fmt.Sprintf("term%03d", i)
			if i%2 == 0 {
				likes[terms[i]] = true
			} else {
				dislikes[terms[i]] = true
			}
		}
		truthInterest := make(feature.Vector, 16)
		truthInterest[trial%16] = 1
		// Per-source partial profiles: each observes a subset; one source
		// is noisy and flips 30% of signs (inconsistent behavior).
		parts := make([]*profile.Profile, nSources)
		labels := make([]string, nSources)
		for sIdx := 0; sIdx < nSources; sIdx++ {
			p := profile.New("iris", 16)
			p.Evidence = float64(20 + r.Intn(60))
			p.Interests = truthInterest.Clone()
			noisy := sIdx == nSources-1
			for _, t := range terms {
				if r.Float64() > 0.5 {
					continue // source didn't observe this term
				}
				a := 0.5 + r.Float64()*0.5
				if dislikes[t] {
					a = -a
				}
				if noisy && r.Float64() < 0.3 {
					a = -a
				}
				p.TermAffinity[t] = a
			}
			if noisy {
				p.Evidence = 10 // noisy source has less evidence
			}
			parts[sIdx] = p
			labels[sIdx] = fmt.Sprintf("src%d", sIdx)
		}
		for i, pol := range policies {
			res, err := profile.Merge(parts, labels, pol.p)
			if err != nil {
				panic(err)
			}
			sums[i].f1 += profile.AffinityF1(res.Profile, likes, dislikes)
			sums[i].conflicts += float64(len(res.Conflicts))
			sums[i].cos += feature.Cosine(res.Profile.Interests, truthInterest)
		}
	}
	for i, pol := range policies {
		f1 := sums[i].f1 / float64(trials)
		table.AddRow(pol.name, f1, sums[i].conflicts/float64(trials), sums[i].cos/float64(trials))
		headline["f1_"+pol.name] = f1
	}
	return &Result{ID: "E7", Table: table, Headline: headline}
}
