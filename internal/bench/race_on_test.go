//go:build race

package bench

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation allocates on paths that are
// allocation-free in a normal build.
const raceEnabled = true
