package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/qos"
	"repro/internal/uncertainty"
)

// E19RiskProfiling addresses the paper's §5 closing research question:
// establish individual risk profiles through observation, then optimize
// queries with them. We simulate users with hidden CARA coefficients making
// noisy choices between safe and risky plans, fit attitudes by maximum
// likelihood at increasing observation counts, and measure both the
// coefficient-recovery error and — the part that matters — how often plans
// chosen with the *fitted* attitude agree with the hidden attitude's own
// choice on fresh plan pairs.
func E19RiskProfiling(seed int64, scale float64) *Result {
	r := rand.New(rand.NewSource(seed + 9))
	nUsers := scaleInt(24, scale, 8)
	evalPairs := scaleInt(60, scale, 20)
	tau := 0.3

	hiddenOf := func(i int) uncertainty.RiskAttitude {
		switch i % 3 {
		case 0:
			return uncertainty.Averse(0.5 + r.Float64())
		case 1:
			return uncertainty.Neutral()
		default:
			return uncertainty.Seeking(0.3 + 0.7*r.Float64())
		}
	}
	mkChoice := func(hidden uncertainty.RiskAttitude) uncertainty.LotteryChoice {
		safeVal := 2 + 4*r.Float64()
		riskyHi := safeVal*1.5 + 3*r.Float64()
		p := 0.3 + 0.4*r.Float64()
		safe := []uncertainty.Outcome{{Value: safeVal, Prob: 1}}
		risky := []uncertainty.Outcome{{Value: riskyHi, Prob: p}, {Value: 0, Prob: 1 - p}}
		c := uncertainty.LotteryChoice{Options: [2][]uncertainty.Outcome{safe, risky}}
		u0 := hidden.ExpectedUtility(safe)
		u1 := hidden.ExpectedUtility(risky)
		if r.Float64() < 1/(1+math.Exp(-(u1-u0)/tau)) {
			c.Chose = 1
		}
		return c
	}
	// Fresh evaluation: plan pairs with a coverage/variance trade-off; does
	// the fitted attitude pick the same plan the hidden one would?
	mkPlanPair := func() (optimizer.Plan, optimizer.Plan) {
		safe := optimizer.Plan{Sources: []optimizer.SourceEstimate{{
			Source:   "safe",
			Coverage: uncertainty.PriorBelief(0.45+0.1*r.Float64(), 300),
			Price:    uncertainty.Point(2), Latency: uncertainty.Point(1),
			Trust: uncertainty.PriorBelief(0.8, 30), Premium: 1,
		}}}
		risky := optimizer.Plan{Sources: []optimizer.SourceEstimate{{
			Source:   "risky",
			Coverage: uncertainty.PriorBelief(0.5+0.2*r.Float64(), 2.5),
			Price:    uncertainty.Point(2), Latency: uncertainty.Point(1),
			Trust: uncertainty.PriorBelief(0.8, 30), Premium: 1,
		}}}
		return safe, risky
	}
	agreeRate := func(fitted, hidden uncertainty.RiskAttitude) float64 {
		// Amplify the attitude for plan scoring: plan utilities live on a
		// [0,1] scale where raw CARA coefficients barely bite.
		amp := 40.0
		agree := 0
		for i := 0; i < evalPairs; i++ {
			safe, risky := mkPlanPair()
			objF := optimizer.Objective{Weights: qos.DefaultWeights(), Risk: uncertainty.RiskAttitude{A: fitted.A * amp, LossAversion: 1}}
			objH := optimizer.Objective{Weights: qos.DefaultWeights(), Risk: uncertainty.RiskAttitude{A: hidden.A * amp, LossAversion: 1}}
			pickF := objF.Score(risky) > objF.Score(safe)
			pickH := objH.Score(risky) > objH.Score(safe)
			if pickF == pickH {
				agree++
			}
		}
		return float64(agree) / float64(evalPairs)
	}

	table := metrics.NewTable("E19: risk-profile recovery and plan-choice agreement",
		"observations", "mean abs error (A-hat vs A)", "plan agreement vs hidden", "agreement (neutral default)")
	headline := map[string]float64{}
	for _, nObs := range []int{20, 50, 150, 400} {
		var errSum, agreeSum, baseSum float64
		for u := 0; u < nUsers; u++ {
			hidden := hiddenOf(u)
			rp := uncertainty.NewRiskProfiler(tau)
			for i := 0; i < nObs; i++ {
				rp.Observe(mkChoice(hidden))
			}
			fitted, err := rp.Fit()
			if err != nil {
				panic(err)
			}
			errSum += math.Abs(fitted.A - hidden.A)
			agreeSum += agreeRate(fitted, hidden)
			baseSum += agreeRate(uncertainty.Neutral(), hidden)
		}
		n := float64(nUsers)
		table.AddRow(nObs, errSum/n, agreeSum/n, baseSum/n)
		headline[fmt.Sprintf("err_%d", nObs)] = errSum / n
		headline[fmt.Sprintf("agree_%d", nObs)] = agreeSum / n
		headline[fmt.Sprintf("base_%d", nObs)] = baseSum / n
	}
	return &Result{ID: "E19", Table: table, Headline: headline}
}
