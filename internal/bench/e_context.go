package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/ctxmodel"
	"repro/internal/feature"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/workload"
)

// E10ContextActivation compares static profiles against context-activated
// variants when the user's true intent depends on context (Iris wants
// different answers to the same query at a conference vs in the office).
func E10ContextActivation(seed int64, scale float64) *Result {
	g := workload.NewGenerator(seed, 32, 8)
	r := rand.New(rand.NewSource(seed + 4))
	nUsers := scaleInt(40, scale, 10)
	trials := scaleInt(25, scale, 8)

	// Four contexts, each mapping to a topic the user truly wants there.
	contexts := []struct {
		label string
		ctx   ctxmodel.Context
	}{
		{"office-write", ctxmodel.Context{Hour: 10, Location: "office", Task: "write"}},
		{"office-explore", ctxmodel.Context{Hour: 15, Location: "office", Task: "explore"}},
		{"travel", ctxmodel.Context{Hour: 12, Location: "travel:paris", Task: "explore"}},
		{"home-evening", ctxmodel.Context{Hour: 21, Location: "home", Task: "explore"}},
	}
	type userWorld struct {
		base     *profile.Profile // static: blend of all context interests
		variants *profile.Profile // context-activated
		rules    ctxmodel.RuleSet
		topicFor map[string]int
	}
	mkUser := func(i int) userWorld {
		uw := userWorld{topicFor: map[string]int{}}
		uid := fmt.Sprintf("u%03d", i)
		uw.variants = profile.New(uid, 32)
		uw.base = profile.New(uid, 32)
		blend := make(feature.Vector, 32)
		for ci, c := range contexts {
			topic := (i + ci*2) % len(g.Topics)
			uw.topicFor[c.label] = topic
			uw.variants.Variants[c.label] = &profile.Variant{
				Label:     c.label,
				Interests: g.Topics[topic].Center.Clone(),
			}
			blend.Add(g.Topics[topic].Center)
		}
		blend.Normalize()
		uw.base.Interests = blend.Clone()
		uw.variants.Interests = blend.Clone() // fallback when no rule fires
		for _, c := range contexts {
			cond := ctxmodel.Condition{HourFrom: -1, HourTo: -1, Location: c.ctx.Location, Task: c.ctx.Task}
			uw.rules.Add(ctxmodel.Rule{Condition: cond, Variant: c.label, Priority: 1})
		}
		return uw
	}

	// Candidate items spanning all topics.
	nItems := scaleInt(64, scale, 32)
	type item struct {
		id      string
		topic   int
		concept feature.Vector
	}
	items := make([]item, nItems)
	for i := range items {
		t := i % len(g.Topics)
		items[i] = item{fmt.Sprintf("it%03d", i), t, g.SampleConcept(t, 0.2)}
	}
	rankWith := func(interests feature.Vector) []string {
		type sc struct {
			id string
			s  float64
		}
		scored := make([]sc, len(items))
		for i, it := range items {
			scored[i] = sc{it.id, feature.Cosine(interests, it.concept)}
		}
		for i := 1; i < len(scored); i++ {
			for j := i; j > 0 && scored[j].s > scored[j-1].s; j-- {
				scored[j], scored[j-1] = scored[j-1], scored[j]
			}
		}
		out := make([]string, len(scored))
		for i, s := range scored {
			out[i] = s.id
		}
		return out
	}

	table := metrics.NewTable("E10: context-activated vs static profiles, NDCG@10",
		"context", "static", "context-activated")
	headline := map[string]float64{}
	var allStatic, allActive []float64
	for _, c := range contexts {
		var statics, actives []float64
		for trial := 0; trial < trials; trial++ {
			uw := mkUser(r.Intn(nUsers))
			target := uw.topicFor[c.label]
			grel := map[string]float64{}
			for _, it := range items {
				if it.topic == target {
					grel[it.id] = 1
				}
			}
			// Static: base interests regardless of context.
			statics = append(statics, metrics.NDCG(rankWith(uw.base.Interests), grel, 10))
			// Activated: rules pick the variant for this context.
			label := uw.rules.Activate(c.ctx)
			interests, _ := uw.variants.ActiveView(label)
			actives = append(actives, metrics.NDCG(rankWith(interests), grel, 10))
		}
		sMean := metrics.Summarize(statics).Mean
		aMean := metrics.Summarize(actives).Mean
		table.AddRow(c.label, sMean, aMean)
		headline["static_"+c.label] = sMean
		headline["active_"+c.label] = aMean
		allStatic = append(allStatic, sMean)
		allActive = append(allActive, aMean)
	}
	headline["static_mean"] = metrics.Summarize(allStatic).Mean
	headline["active_mean"] = metrics.Summarize(allActive).Mean
	return &Result{ID: "E10", Table: table, Headline: headline}
}
