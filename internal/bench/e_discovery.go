package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/workload"
)

// E18DiscoveryVsRegistry runs the full Ask pipeline with candidate sources
// coming either from the global registry (every session sees every
// provider — the closed-world assumption) or from decentralized semantic
// overlay discovery (§2's "identification of appropriate resources" done
// honestly). Reported: average candidate-set size, ground-truth result
// quality, spend, and overlay traffic, across market sizes. The expected
// shape: overlay discovery inspects a fraction of the market at a modest
// message cost while keeping most of the registry's answer quality.
func E18DiscoveryVsRegistry(seed int64, scale float64) *Result {
	table := metrics.NewTable("E18: registry vs overlay discovery (full pipeline)",
		"market", "avg candidates", "relevant@10", "avg paid", "overlay msgs/query")
	headline := map[string]float64{}
	queries := scaleInt(24, scale, 8)

	for _, nProviders := range []int{8, 16} {
		for _, discover := range []bool{false, true} {
			a := core.New(core.Config{Seed: seed, ConceptDim: 32})
			g := workload.NewGenerator(seed, 32, 8)
			docs := g.GenCorpus(scaleInt(900, scale, 300), 1.1, 0)
			bySource := g.AssignToSources(docs, nProviders, 0.9)
			for i, list := range bySource {
				n, err := a.AddNode(workload.SourceName(i), core.DefaultEconomics(), core.DefaultBehavior())
				if err != nil {
					panic(err)
				}
				for _, d := range list {
					if err := n.Ingest(d.Doc); err != nil {
						panic(err)
					}
				}
			}
			if discover {
				a.EnableOverlayDiscovery(core.DefaultDiscovery())
			}
			sess := a.NewSession(profile.New("iris", 32))
			sess.Gamma = 0

			var compSum, paidSum, candSum float64
			answered := 0
			qm0, _ := a.DiscoveryStats()
			for qi := 0; qi < queries; qi++ {
				topic := g.Topics[qi%len(g.Topics)]
				rel := workload.RelevantSet(docs, topic.ID)
				ans, err := sess.Ask(fmt.Sprintf(`FIND documents WHERE topic = "%s" TOP 10`, topic.Name), topic.Center)
				if err != nil {
					continue
				}
				answered++
				candSum += float64(len(a.Discover("probe", topic.Center)))
				found := 0
				for _, r := range ans.Results {
					if rel[r.Doc.ID] {
						found++
					}
				}
				denom := 10.0
				if float64(len(rel)) < denom {
					denom = float64(len(rel))
				}
				if denom > 0 {
					compSum += float64(found) / denom
				}
				paidSum += ans.Delivered.Price
			}
			qm1, _ := a.DiscoveryStats()
			mode := "registry"
			if discover {
				mode = "overlay"
			}
			if answered == 0 {
				continue
			}
			n := float64(answered)
			comp := compSum / n
			// Each answered query triggered two probes (Ask + the explicit
			// candidate count), so halve the traffic attribution.
			msgs := float64(qm1-qm0) / n / 2
			table.AddRow(fmt.Sprintf("%d providers (%s)", nProviders, mode),
				candSum/n, comp, paidSum/n, msgs)
			headline[fmt.Sprintf("comp_%s_%d", mode, nProviders)] = comp
			headline[fmt.Sprintf("cands_%s_%d", mode, nProviders)] = candSum / n
		}
	}
	return &Result{ID: "E18", Table: table, Headline: headline}
}
