package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/docstore"
	"repro/internal/metrics"
)

// E25BlockMaxSearch measures the block-max top-k read path against the
// exhaustive scorer it must be bit-identical to. The corpus is shaped so
// early termination has something to do: a handful of common terms appear
// in most documents (long postings lists, many 128-entry blocks), rare
// terms pin the heap threshold high after a few hits, and document length
// grows with insertion order so later blocks carry provably lower score
// bounds. Queries pair a rare term with a common one — the selective term
// raises theta, the common term's tail blocks fall under it and are skipped
// without decoding. Reported per query class: block-max vs exhaustive
// latency and the speedup; plus the realized blocks-skipped ratio,
// per-search allocation counts on the uncached and cache-hit paths
// (runtime.MemStats deltas, not estimates), and the bit-identity check —
// every query must return the identical hit slice (ids and float-identical
// scores) under both scorers, including with a live COW overlay merged in.
func E25BlockMaxSearch(seed int64, scale float64) *Result {
	nDocs := scaleInt(2048, scale, 768)
	rounds := scaleInt(200, scale, 50)
	const k = 10

	// Three vocabulary tiers: common terms land in most documents, rare
	// terms in a fraction of a percent. The i/32 gradient is what makes
	// per-block max-score bounds vary — an i.i.d. corpus puts a near-best
	// document in every block and no bound ever drops below theta.
	common := make([]string, 8)
	for i := range common {
		common[i] = fmt.Sprintf("common%02d", i)
	}
	mid := make([]string, 64)
	for i := range mid {
		mid[i] = fmt.Sprintf("mid%03d", i)
	}
	rare := make([]string, 256)
	for i := range rare {
		rare[i] = fmt.Sprintf("rare%04d", i)
	}
	word := func(r *rand.Rand) string {
		switch p := r.Float64(); {
		case p < 0.50:
			return common[r.Intn(len(common))]
		case p < 0.85:
			return mid[r.Intn(len(mid))]
		default:
			return rare[r.Intn(len(rare))]
		}
	}
	mkDoc := func(r *rand.Rand, i int) *docstore.Document {
		n := 4 + i/32 + r.Intn(4)
		text := word(r)
		for j := 1; j < n; j++ {
			text += " " + word(r)
		}
		return &docstore.Document{
			ID:         fmt.Sprintf("e25-%05d", i),
			Kind:       docstore.KindArticle,
			Title:      word(r),
			Text:       text,
			CreatedAt:  int64(i),
			Provenance: "e25",
		}
	}
	open := func(cacheSize int) *docstore.Store {
		s, err := docstore.Open(docstore.Options{
			ConceptDim: 8, Seed: seed, QueryCacheSize: cacheSize,
		})
		if err != nil {
			panic(err)
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < nDocs; i++ {
			if err := s.Put(mkDoc(r, i)); err != nil {
				panic(err)
			}
		}
		return s
	}

	qr := rand.New(rand.NewSource(seed + 1))
	classes := []struct {
		name    string
		queries []string
	}{
		{"rare+common", func() []string {
			qs := make([]string, 16)
			for i := range qs {
				qs[i] = rare[qr.Intn(len(rare))] + " " + common[qr.Intn(len(common))]
			}
			return qs
		}()},
		{"mid+common x3", func() []string {
			qs := make([]string, 16)
			for i := range qs {
				qs[i] = mid[qr.Intn(len(mid))] + " " + common[qr.Intn(len(common))] + " " + common[qr.Intn(len(common))]
			}
			return qs
		}()},
	}

	// Uncached store: every SearchText call executes the block-max path,
	// every SearchTextExhaustive call the reference path.
	s := open(-1)
	defer s.Close()

	table := metrics.NewTable("E25: block-max vs exhaustive top-k search",
		"query class", "block-max us/op", "exhaustive us/op", "speedup")
	headline := map[string]float64{}

	var bmTotal, exTotal time.Duration
	var bmOps int
	st0 := s.Stats()
	for _, cl := range classes {
		var bm, ex time.Duration
		t0 := time.Now()
		for r := 0; r < rounds; r++ {
			for _, q := range cl.queries {
				s.SearchText(q, k)
			}
		}
		bm = time.Since(t0)
		t0 = time.Now()
		for r := 0; r < rounds; r++ {
			for _, q := range cl.queries {
				s.SearchTextExhaustive(q, k)
			}
		}
		ex = time.Since(t0)
		ops := rounds * len(cl.queries)
		bmUS := bm.Seconds() * 1e6 / float64(ops)
		exUS := ex.Seconds() * 1e6 / float64(ops)
		speed := 0.0
		if bmUS > 0 {
			speed = exUS / bmUS
		}
		table.AddRow(cl.name, bmUS, exUS, speed)
		bmTotal += bm
		exTotal += ex
		bmOps += ops
	}
	// Skip accounting spans only the block-max halves above — exhaustive
	// runs decode everything by design and would dilute the ratio. Both
	// halves note their stats, but only block-max skips; skipped/(skipped+
	// decoded) therefore understates the block-max ratio by exactly the
	// exhaustive decodes, so correct for them: the two halves ran the same
	// queries, so exhaustive decoded (decoded+skipped)/2 of the total.
	st1 := s.Stats()
	dec := float64(st1.BlocksDecoded - st0.BlocksDecoded)
	skp := float64(st1.BlocksSkipped - st0.BlocksSkipped)
	skipRatio := 0.0
	if total := dec + skp; total > 0 {
		exhaustiveDec := total / 2
		if bmDec := dec - exhaustiveDec; bmDec+skp > 0 {
			skipRatio = skp / (bmDec + skp)
		}
	}
	if bmTotal > 0 {
		headline["speedup"] = exTotal.Seconds() / bmTotal.Seconds()
	}
	headline["blocks_skip_ratio"] = skipRatio
	headline["blockmax_us_per_op"] = bmTotal.Seconds() * 1e6 / float64(bmOps)
	headline["exhaustive_us_per_op"] = exTotal.Seconds() * 1e6 / float64(bmOps)

	// Allocation counts by malloc delta. Uncached searches retain exactly
	// the returned hit slice per call; cache hits must retain nothing. The
	// per-op mean is floored — the same integer division
	// testing.AllocsPerRun applies — so a stray runtime malloc somewhere in
	// a 512-op window (GC bookkeeping, a timer) cannot smear a genuinely
	// zero-alloc path into 0.004.
	allocsPer := func(run func(), ops int) float64 {
		run() // warm: pools populated, cache filled
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		run()
		runtime.ReadMemStats(&m1)
		return float64((m1.Mallocs - m0.Mallocs) / uint64(ops))
	}
	q0 := classes[0].queries[0]
	const allocOps = 512
	headline["allocs_uncached"] = allocsPer(func() {
		for i := 0; i < allocOps; i++ {
			s.SearchText(q0, k)
		}
	}, allocOps)
	cached := open(0) // default cache size
	headline["allocs_cache_hit"] = allocsPer(func() {
		for i := 0; i < allocOps; i++ {
			cached.SearchText(q0, k)
		}
	}, allocOps)
	cached.Close()
	table.AddRow("allocs/op uncached", headline["allocs_uncached"], 0, 0)
	table.AddRow("allocs/op cache hit", headline["allocs_cache_hit"], 0, 0)
	table.AddRow("blocks-skipped ratio", skipRatio, 0, 0)

	// Bit-identity: block-max must return exactly the exhaustive result —
	// same ids, float-identical scores — on the compiled base and again
	// with a fresh batch of documents pending in the COW overlay.
	identical := 1.0
	check := func() {
		for _, cl := range classes {
			for _, q := range cl.queries {
				got := s.SearchText(q, k)
				want := s.SearchTextExhaustive(q, k)
				if len(got) != len(want) {
					identical = 0
					return
				}
				for i := range want {
					if got[i].Doc.ID != want[i].Doc.ID || got[i].Score != want[i].Score {
						identical = 0
						return
					}
				}
			}
		}
	}
	check()
	r := rand.New(rand.NewSource(seed + 2))
	for i := 0; i < 48; i++ { // below the overlay limit: stays unmerged
		if err := s.Put(mkDoc(r, nDocs+i)); err != nil {
			panic(err)
		}
	}
	check()
	headline["identical"] = identical
	table.AddRow("bit-identical (1=yes)", identical, identical, 1)

	return &Result{ID: "E25", Table: table, Headline: headline}
}
