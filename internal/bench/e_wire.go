package bench

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/docstore"
	"repro/internal/feature"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/transport"
	"repro/internal/wire"
)

// e27Query is a scatter-shaped query message: the text, a routing ID, and
// the global-statistics tail the shard router attaches — the hot frame the
// coalesced wire path was built for.
func e27Query(id string) wire.Query {
	return wire.Query{
		ID: id, Text: "byzantine gold filigree ring", TopK: 10,
		GlobalDocs: 131072,
		StatsTerms: []string{"byzantine", "gold", "filigree", "ring"},
		StatsDF:    []uint64{120, 3400, 80, 2100},
	}
}

// e27AllocsPer runs f once under a quiesced heap and returns Mallocs per
// op — the process-wide figure, which on the round-trip phases counts the
// server's work too (deliberately: that is the number the transport
// benchmarks gate).
func e27AllocsPer(f func(), ops int) float64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	f()
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(ops)
}

// e27LegacyServer serves the pre-coalescer transport loop: one allocating
// ReadFrame per message, Marshal + WriteFrame (one syscall) per response
// under a per-connection write mutex. It is the "before" half of every
// round-trip comparison below.
func e27LegacyServer(st *docstore.Store) (addr string, stop func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				var wmu sync.Mutex
				send := func(kind wire.Kind, payload []byte) error {
					wmu.Lock()
					defer wmu.Unlock()
					return wire.WriteFrame(conn, kind, payload)
				}
				r := bufio.NewReader(conn)
				for {
					f, err := wire.ReadFrame(r)
					if err != nil {
						return
					}
					switch f.Kind {
					case wire.KindHello:
						ack := wire.Hello{NodeID: "e27-legacy"}
						if send(wire.KindHelloAck, ack.Marshal()) != nil {
							return
						}
					case wire.KindQuery:
						wq, err := wire.UnmarshalQuery(f.Payload)
						if err != nil {
							return
						}
						q := &query.Query{Text: wq.Text, TopK: int(wq.TopK)}
						if q.TopK <= 0 {
							q.TopK = 10
						}
						resp := wire.QueryResult{QueryID: wq.ID, From: "e27-legacy"}
						for _, res := range query.Execute(st, q, feature.Vector(wq.Concept), 0) {
							resp.Items = append(resp.Items, wire.ResultItem{
								DocID: res.Doc.ID, Source: "e27-legacy", Score: res.Score, Snippet: res.Doc.Snippet(80),
							})
						}
						if send(wire.KindQueryResult, resp.Marshal()) != nil {
							return
						}
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }
}

// e27LegacyClient is the PR-9 client's per-query cost model, replicated
// faithfully: a fmt.Sprintf-minted id, a fresh result channel registered
// in a pending map under a mutex, a time.After timer armed per wait, and
// the allocating Marshal/WriteFrame/ReadFrame/Unmarshal wire path.
type e27LegacyClient struct {
	conn    net.Conn
	r       *bufio.Reader
	mu      sync.Mutex
	nextID  uint64
	pending map[string]chan wire.QueryResult
}

func e27LegacyDial(addr string) *e27LegacyClient {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		panic(err)
	}
	c := &e27LegacyClient{conn: conn, r: bufio.NewReader(conn), pending: map[string]chan wire.QueryResult{}}
	hello := wire.Hello{NodeID: "e27-bench"}
	if err := wire.WriteFrame(conn, wire.KindHello, hello.Marshal()); err != nil {
		panic(err)
	}
	if f, err := wire.ReadFrame(c.r); err != nil || f.Kind != wire.KindHelloAck {
		panic(fmt.Sprintf("legacy handshake: %v %v", f.Kind, err))
	}
	return c
}

func (c *e27LegacyClient) ask() {
	c.mu.Lock()
	c.nextID++
	id := fmt.Sprintf("q%d", c.nextID)
	ch := make(chan wire.QueryResult, 1)
	c.pending[id] = ch
	c.mu.Unlock()
	q := e27Query(id)
	if err := wire.WriteFrame(c.conn, wire.KindQuery, q.Marshal()); err != nil {
		panic(err)
	}
	f, err := wire.ReadFrame(c.r)
	if err != nil || f.Kind != wire.KindQueryResult {
		panic(fmt.Sprintf("legacy ask: %v %v", f.Kind, err))
	}
	res, err := wire.UnmarshalQueryResult(f.Payload)
	if err != nil {
		panic(err)
	}
	c.mu.Lock()
	rch, ok := c.pending[res.QueryID]
	delete(c.pending, res.QueryID)
	c.mu.Unlock()
	if !ok {
		panic("legacy demux: unknown id " + res.QueryID)
	}
	rch <- res
	timeout := time.After(5 * time.Second)
	select {
	case <-rch:
	case <-timeout:
		panic("legacy wait timed out")
	}
}

// e27Corpus seeds a small store: the round-trip phases measure the wire,
// not the search, so the corpus stays tiny and identical on both sides.
func e27Corpus(seed int64) *docstore.Store {
	st, err := docstore.Open(docstore.Options{ConceptDim: 8, Seed: seed})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 20; i++ {
		if err := st.Put(&docstore.Document{
			ID: fmt.Sprintf("d%02d", i), Title: "byzantine gold ring",
			Text: "byzantine filigree ancient jewelry gold ring", CreatedAt: int64(i), Provenance: "e27",
		}); err != nil {
			panic(err)
		}
	}
	return st
}

// E27WirePath measures the zero-alloc batched wire path against the PR-9
// baseline it replaced, in three phases:
//
// Codec micro. Encoding one scatter-shaped Query frame the old way
// (Marshal to a fresh payload slice, EncodeFrame to a fresh frame slice —
// what WriteFrame did per message) against single-pass AppendFrame staging
// into a reused buffer; decoding a frame stream via the allocating
// DecodeFrame copy against the pooled FrameReader. frames/s and
// allocs/frame, both directions.
//
// TCP round-trip. One warm query round-trip over real loopback TCP:
// legacy server loop + legacy client bookkeeping (fmt.Sprintf ids, fresh
// channel and pending-map entry, time.After per wait) against the
// coalesced transport stack. allocs/op is process-wide, so it counts both
// sides — the before/after pair the ≥50% reduction claim is made on.
// syscalls/frame comes from the coalescer's own Frames/Flushes counters
// (the legacy path is 1.0 by construction: one Write per frame).
//
// Batch sweep + backpressure. The same round-trip under w concurrent
// askers sharing one connection, then a feed burst into a subscriber that
// has stopped reading its socket. Leader-flush coalescing batches on
// demand: response-paced askers on an unloaded loopback stay near one
// syscall per frame because each stager's own Write completes before the
// next frame exists (the win there is latency — no scheduler handoff),
// while a blocked write path is exactly when batching engages — frames
// staged behind the blocked leader ride a handful of Writes once the
// peer drains, measured as frames/flush on the feed connection.
func E27WirePath(seed int64, scale float64) *Result {
	nFrames := scaleInt(131072, scale, 8192)
	nAsks := scaleInt(2048, scale, 256)

	table := metrics.NewTable("E27: zero-alloc batched wire path (codec micro + TCP round-trip)",
		"stage", "ops/s", "allocs/op", "syscalls/frame")
	headline := map[string]float64{}

	// --- Codec micro: encode ---
	q := e27Query("q1")
	var sink int
	legacyEncode := func(n int) {
		for i := 0; i < n; i++ {
			payload := q.Marshal()
			frame := wire.EncodeFrame(nil, wire.KindQuery, payload)
			sink += len(frame)
		}
	}
	var stage []byte
	newEncode := func(n int) {
		for i := 0; i < n; i++ {
			stage = wire.AppendFrame(stage[:0], wire.KindQuery, &q)
			sink += len(stage)
		}
	}
	legacyEncode(256) // warm
	newEncode(256)
	encLegacyAllocs := e27AllocsPer(func() { legacyEncode(nFrames) }, nFrames)
	t0 := time.Now()
	legacyEncode(nFrames)
	encLegacy := float64(nFrames) / time.Since(t0).Seconds()
	encNewAllocs := e27AllocsPer(func() { newEncode(nFrames) }, nFrames)
	t0 = time.Now()
	newEncode(nFrames)
	encNew := float64(nFrames) / time.Since(t0).Seconds()

	// --- Codec micro: decode ---
	frame := wire.EncodeFrame(nil, wire.KindQuery, q.Marshal())
	legacyDecode := func(n int) {
		for i := 0; i < n; i++ {
			f, _, err := wire.DecodeFrame(frame)
			if err != nil {
				panic(err)
			}
			sink += len(f.Payload)
		}
	}
	fr := wire.NewFrameReader(bufio.NewReader(&e27RepeatReader{frame: frame}))
	newDecode := func(n int) {
		for i := 0; i < n; i++ {
			f, err := fr.Next()
			if err != nil {
				panic(err)
			}
			sink += len(f.Payload)
		}
	}
	legacyDecode(256)
	newDecode(256)
	decLegacyAllocs := e27AllocsPer(func() { legacyDecode(nFrames) }, nFrames)
	t0 = time.Now()
	legacyDecode(nFrames)
	decLegacy := float64(nFrames) / time.Since(t0).Seconds()
	decNewAllocs := e27AllocsPer(func() { newDecode(nFrames) }, nFrames)
	t0 = time.Now()
	newDecode(nFrames)
	decNew := float64(nFrames) / time.Since(t0).Seconds()

	table.AddRow("encode legacy", encLegacy, encLegacyAllocs, 0)
	table.AddRow("encode coalesced", encNew, encNewAllocs, 0)
	table.AddRow("decode legacy", decLegacy, decLegacyAllocs, 0)
	table.AddRow("decode coalesced", decNew, decNewAllocs, 0)
	headline["encode_frames_per_s"] = encNew
	headline["encode_allocs_legacy"] = encLegacyAllocs
	headline["encode_allocs"] = encNewAllocs
	headline["decode_frames_per_s"] = decNew
	headline["decode_allocs_legacy"] = decLegacyAllocs
	headline["decode_allocs"] = decNewAllocs

	// --- TCP round-trip: legacy ---
	stLegacy := e27Corpus(seed)
	defer stLegacy.Close()
	addr, stopLegacy := e27LegacyServer(stLegacy)
	lc := e27LegacyDial(addr)
	lc.ask() // warm
	rtLegacyAllocs := e27AllocsPer(func() {
		for i := 0; i < nAsks; i++ {
			lc.ask()
		}
	}, nAsks)
	t0 = time.Now()
	for i := 0; i < nAsks; i++ {
		lc.ask()
	}
	rtLegacy := float64(nAsks) / time.Since(t0).Seconds()
	lc.conn.Close()
	stopLegacy()
	table.AddRow("roundtrip legacy", rtLegacy, rtLegacyAllocs, 1)
	headline["rt_asks_per_s_legacy"] = rtLegacy
	headline["rt_allocs_legacy"] = rtLegacyAllocs

	// --- TCP round-trip: coalesced, plus the batch sweep ---
	st := e27Corpus(seed)
	defer st.Close()
	srv := transport.NewServer("e27-srv", st)
	// Pin the kernel send buffer: the backpressure phase needs a stalled
	// subscriber to actually block the server's Write (autotuned sndbuf
	// would absorb the whole burst and batching would never engage). The
	// ask path is response-paced and never holds 16 KiB in flight.
	srv.TuneConn = func(conn net.Conn) {
		if tc, ok := conn.(*net.TCPConn); ok {
			if err := tc.SetWriteBuffer(16 << 10); err != nil {
				panic(err)
			}
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	c, err := transport.Dial(ln.Addr().String(), "e27-bench", 2*time.Second)
	if err != nil {
		panic(err)
	}
	defer c.Close()
	ask := func() {
		q := e27Query("")
		if _, err := c.Query(q.Text, nil, int(q.TopK), 5*time.Second); err != nil {
			panic(err)
		}
	}
	ask() // warm
	rtNewAllocs := e27AllocsPer(func() {
		for i := 0; i < nAsks; i++ {
			ask()
		}
	}, nAsks)

	wireFrames := func() (uint64, uint64) {
		s, cl := srv.WireStats(), c.WireStats()
		return s.Frames + cl.Frames, s.Flushes + cl.Flushes
	}
	sweep := func(w int) (asksPerSec, syscallsPerFrame float64) {
		f0, fl0 := wireFrames()
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			n := nAsks / w
			if g == 0 {
				n += nAsks % w
			}
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					ask()
				}
			}(n)
		}
		wg.Wait()
		f1, fl1 := wireFrames()
		if f1 == f0 {
			return 0, 0
		}
		return float64(nAsks) / time.Since(start).Seconds(), float64(fl1-fl0) / float64(f1-f0)
	}

	rtNew, rtNewSys := sweep(1)
	table.AddRow("roundtrip coalesced", rtNew, rtNewAllocs, rtNewSys)
	headline["rt_asks_per_s"] = rtNew
	headline["rt_allocs"] = rtNewAllocs
	headline["rt_syscalls_per_frame"] = rtNewSys
	if rtLegacyAllocs > 0 {
		headline["rt_alloc_reduction"] = 1 - rtNewAllocs/rtLegacyAllocs
	}
	for _, w := range []int{2, 4, 8, 16} {
		asksPerSec, sys := sweep(w)
		table.AddRow(fmt.Sprintf("sweep w=%d coalesced", w), asksPerSec, 0, sys)
		headline[fmt.Sprintf("sweep_asks_per_s_w%d", w)] = asksPerSec
		headline[fmt.Sprintf("sweep_syscalls_per_frame_w%d", w)] = sys
	}

	// --- Backpressure: demand-driven coalescing ---
	// A subscriber that has stopped reading fills the socket buffer; the
	// first publisher to hit it blocks in Write as the coalescer's leader
	// while the remaining publishers stage their whole burst behind it and
	// return. When the subscriber drains, the backlog rides out in a
	// handful of large Writes — frames/flush is the batching factor.
	const feedPublishers = 8
	// The burst must exceed the pinned sndbuf plus the subscriber's
	// (default-size) rcvbuf by a wide margin, or no Write ever blocks.
	perPub := scaleInt(1024, scale, 512) / feedPublishers
	nFeed := perPub * feedPublishers
	slowConn, slowR := e27SlowSubscriber(ln.Addr().String(), srv)
	defer slowConn.Close()
	base := srv.WireStats()
	t0 = time.Now()
	var pwg sync.WaitGroup
	feedText := "beacon " + strings.Repeat("glass amphora mosaic tessera ", 64)
	for p := 0; p < feedPublishers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perPub; i++ {
				srv.PublishFeed(&docstore.Document{
					ID: fmt.Sprintf("f%d-%03d", p, i), Title: "beacon", Text: feedText,
				}, uint64(i))
			}
		}(p)
	}
	// Let the burst fill the socket and stage behind the blocked leader,
	// then drain everything from the subscriber side.
	time.Sleep(50 * time.Millisecond)
	for drained := 0; drained < nFeed; {
		if err := slowConn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
			panic(err)
		}
		f, err := wire.ReadFrame(slowR)
		if err != nil {
			panic(err)
		}
		if f.Kind == wire.KindFeedItem {
			drained++
		}
	}
	pwg.Wait()
	feedRate := float64(nFeed) / time.Since(t0).Seconds()
	cur := srv.WireStats()
	framesPerFlush := float64(cur.Frames-base.Frames) / float64(cur.Flushes-base.Flushes)
	table.AddRow("feed burst, stalled peer", feedRate, 0, 1/framesPerFlush)
	headline["feed_items_per_s"] = feedRate
	headline["feed_frames_per_flush"] = framesPerFlush

	_ = sink
	return &Result{ID: "E27", Table: table, Headline: headline}
}

// e27SlowSubscriber dials a raw legacy-style connection, subscribes to the
// "beacon" term, and confirms the registration landed by probing with feed
// items until one arrives. It returns with the socket idle and no frames
// in flight; the caller then simply stops reading to apply backpressure.
func e27SlowSubscriber(addr string, srv *transport.Server) (net.Conn, *bufio.Reader) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		panic(err)
	}
	r := bufio.NewReader(conn)
	hello := wire.Hello{NodeID: "e27-slow"}
	if err := wire.WriteFrame(conn, wire.KindHello, hello.Marshal()); err != nil {
		panic(err)
	}
	if f, err := wire.ReadFrame(r); err != nil || f.Kind != wire.KindHelloAck {
		panic(fmt.Sprintf("slow subscriber handshake: %v", err))
	}
	sub := wire.Subscribe{SubID: "e27-slow", Terms: []string{"beacon"}}
	if err := wire.WriteFrame(conn, wire.KindSubscribe, sub.Marshal()); err != nil {
		panic(err)
	}
	// Subscription registration is asynchronous. Publish probe items and
	// watch the server's delivered counter: it only counts items actually
	// staged to a subscriber, so the first bump proves registration landed
	// and the delta says exactly how many probe frames to read back. Timed
	// reads would risk a deadline firing mid-frame and tearing the stream.
	before := srv.Delivered()
	for srv.Delivered() == before {
		srv.PublishFeed(&docstore.Document{ID: "probe", Title: "beacon", Text: "beacon"}, 0)
		if srv.Delivered() == before {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		panic(err)
	}
	for n := srv.Delivered() - before; n > 0; n-- {
		f, err := wire.ReadFrame(r)
		if err != nil || f.Kind != wire.KindFeedItem {
			panic(fmt.Sprintf("slow subscriber probe drain: kind=%v err=%v", f.Kind, err))
		}
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		panic(err)
	}
	return conn, r
}

// e27RepeatReader serves the same encoded frame forever: the decode micro
// phase's infinite stream.
type e27RepeatReader struct {
	frame []byte
	off   int
}

func (r *e27RepeatReader) Read(p []byte) (int, error) {
	n := copy(p, r.frame[r.off:])
	r.off = (r.off + n) % len(r.frame)
	return n, nil
}
