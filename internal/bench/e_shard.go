package bench

import (
	"fmt"
	"net"
	"sort"
	"time"

	"repro/internal/docstore"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/workload"
)

// shardCluster is a fixed corpus served by n agora-node shard servers over
// real loopback TCP, partitioned by the shard map's document key.
type shardCluster struct {
	m       *shard.Map
	stores  map[string]*docstore.Store
	servers []*transport.Server
}

func startShardCluster(seed int64, n int, docs []*docstore.Document) *shardCluster {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("shard%d", i)
	}
	c := &shardCluster{m: shard.NewUniform(ids), stores: make(map[string]*docstore.Store, n)}
	parts := make(map[string][]*docstore.Document, n)
	for _, d := range docs {
		id := c.m.Locate(shard.DocKey(d)).ID
		parts[id] = append(parts[id], d)
	}
	for _, mem := range c.m.Members() {
		st, err := docstore.Open(docstore.Options{ConceptDim: 16, Seed: seed})
		if err != nil {
			panic(err)
		}
		if err := st.PutBatch(parts[mem.ID]); err != nil {
			panic(err)
		}
		srv := transport.NewServer(mem.ID, st)
		srv.ShardStart, srv.ShardEnd = mem.Start, mem.End
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		go srv.Serve(ln)
		c.m.SetAddrs(mem.ID, ln.Addr().String())
		c.stores[mem.ID] = st
		c.servers = append(c.servers, srv)
	}
	return c
}

// ingest routes one churn batch to its owning shards through the ordinary
// write path (group commit, overlay, freeze on overlay overflow).
func (c *shardCluster) ingest(batch []*docstore.Document) {
	parts := make(map[string][]*docstore.Document)
	for _, d := range batch {
		id := c.m.Locate(shard.DocKey(d)).ID
		parts[id] = append(parts[id], d)
	}
	for id, p := range parts {
		if err := c.stores[id].PutBatch(p); err != nil {
			panic(err)
		}
	}
}

func (c *shardCluster) close() {
	for _, s := range c.servers {
		s.Close()
	}
	for _, s := range c.stores {
		s.Close()
	}
}

// E26ShardedScatter measures scatter-gather asks over a fixed Zipfian
// corpus as the shard count grows 1→8, every ask over real TCP, in the two
// regimes that matter:
//
// Quiescent reads. The merged top-k is checked bit-identical to a
// monolithic store holding the whole corpus at every shard count (the
// tentpole invariant, asserted by TestE26Shapes), and read throughput is
// reported. On a single-core host this curve is modest and honest: the
// router's statistics-driven planning prunes shards that cannot contribute
// (realized fan-out stays near 1), but the docstore's own block-max WAND
// walk prunes the same documents inside a single node, so sharding has
// little read work left to remove — the scatter's win here is bounding
// per-ask cost by the hot shard, not the corpus.
//
// Sustained ingest — the agora's operating point, and where the scaling
// curve comes from. An open agora ingests continuously, and every
// overlayLimit writes a store pays an O(base) freeze (deep clone +
// recompile). On one node that recompile covers the whole corpus; across
// n shards each freeze covers ~1/n of it and only the written shard pays.
// The mixed phase interleaves asks with a fixed ingest schedule (identical
// batches at identical points for every shard count) and reports ask
// throughput and p50/p99 — lock-free snapshot reads keep ask latency flat
// while the freeze cost shrinks with the shard size.
func E26ShardedScatter(seed int64, scale float64) *Result {
	nDocs := scaleInt(65536, scale, 1024)
	nAsks := scaleInt(192, scale, 32)
	const k = 10
	const ingestEvery = 4  // one churn batch per this many mixed-phase asks
	const ingestBatch = 64 // documents per churn batch

	g := workload.NewGenerator(seed, 16, 16)
	corpus := g.GenCorpus(nDocs, 1.1, int64(time.Hour))
	docs := make([]*docstore.Document, len(corpus))
	for i, d := range corpus {
		docs[i] = d.Doc
	}
	// Churn pool: further generator output under fresh IDs (GenCorpus
	// restarts its numbering; these are new documents, not replacements).
	churnPool := g.GenCorpus(nAsks/ingestEvery*ingestBatch, 1.1, 0)
	churn := make([]*docstore.Document, len(churnPool))
	for i, d := range churnPool {
		churn[i] = d.Doc
		churn[i].ID = fmt.Sprintf("churn%05d", i)
	}

	mono, err := docstore.Open(docstore.Options{ConceptDim: 16, Seed: seed})
	if err != nil {
		panic(err)
	}
	defer mono.Close()
	if err := mono.PutBatch(docs); err != nil {
		panic(err)
	}

	users := g.GenUsers(64)
	queries := make([]string, nAsks)
	for i := range queries {
		queries[i], _, _ = g.QueryFor(users[i%len(users)])
	}

	table := metrics.NewTable("E26: sharded scatter-gather ask scaling (fixed corpus, real TCP)",
		"shards", "read asks/s", "ingest asks/s", "p50 ms", "p99 ms", "fanout/ask", "pruned/ask")
	headline := map[string]float64{}
	identical := 1.0
	partials := 0.0

	for _, n := range []int{1, 2, 4, 8} {
		c := startShardCluster(seed, n, docs)
		r, err := shard.NewRouter(c.m, shard.Options{Telemetry: telemetry.NewRegistry()})
		if err != nil {
			panic(err)
		}

		// Phase 1 — identity over every distinct query (doubles as router
		// warm-up: per-shard term statistics are collected and cached here,
		// as a steady-state router's would be).
		for _, q := range queries {
			res := r.Ask(q, k)
			want := mono.SearchText(q, k)
			if res.Partial {
				partials++
			}
			if len(res.Items) != len(want) {
				identical = 0
				continue
			}
			for i := range want {
				if res.Items[i].DocID != want[i].Doc.ID || res.Items[i].Score != want[i].Score {
					identical = 0
					break
				}
			}
		}

		// Phase 2 — quiescent read throughput.
		t0 := time.Now()
		for i := 0; i < nAsks; i++ {
			if r.Ask(queries[i%len(queries)], k).Partial {
				partials++
			}
		}
		readThr := float64(nAsks) / time.Since(t0).Seconds()

		// Phase 3 — asks under sustained ingest. The schedule is fixed:
		// the same batches land at the same points at every shard count,
		// so the only variable is who pays the freezes, and how large
		// each one is.
		lats := make([]time.Duration, 0, nAsks)
		fanout, pruned, next := 0, 0, 0
		t0 = time.Now()
		for i := 0; i < nAsks; i++ {
			if i%ingestEvery == ingestEvery-1 && next < len(churn) {
				c.ingest(churn[next:min(next+ingestBatch, len(churn))])
				next += ingestBatch
			}
			qstart := time.Now()
			res := r.Ask(queries[i%len(queries)], k)
			lats = append(lats, time.Since(qstart))
			fanout += res.Fanout
			pruned += res.Pruned
			if res.Partial {
				partials++
			}
		}
		mixedThr := float64(nAsks) / time.Since(t0).Seconds()
		r.Close()
		c.close()

		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p50 := lats[len(lats)/2].Seconds() * 1e3
		p99 := lats[len(lats)*99/100].Seconds() * 1e3
		avgFan := float64(fanout) / float64(nAsks)
		avgPruned := float64(pruned) / float64(nAsks)
		table.AddRow(fmt.Sprintf("%d", n), readThr, mixedThr, p50, p99, avgFan, avgPruned)
		headline[fmt.Sprintf("read_asks_per_s_%d", n)] = readThr
		headline[fmt.Sprintf("asks_per_s_%d", n)] = mixedThr
		if n == 8 {
			headline["p99_ms_8"] = p99
			headline["fanout_8"] = avgFan
			headline["pruned_8"] = avgPruned
		}
	}

	headline["identical"] = identical
	headline["partial_asks"] = partials
	if headline["asks_per_s_1"] > 0 {
		headline["speedup_8x"] = headline["asks_per_s_8"] / headline["asks_per_s_1"]
	}
	if headline["read_asks_per_s_1"] > 0 {
		headline["read_speedup_8x"] = headline["read_asks_per_s_8"] / headline["read_asks_per_s_1"]
	}
	return &Result{ID: "E26", Table: table, Headline: headline}
}
