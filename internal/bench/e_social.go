package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/social"
	"repro/internal/workload"
)

// E8SocialRerank evaluates socially-influenced ranking on queries with
// socially-correlated intent: the ground-truth relevant topic is the one
// the user's circle cares about. Conditions: no social signal, graph
// proximity only, profile similarity only, and full affinity (the product
// the social package ships).
func E8SocialRerank(seed int64, scale float64) *Result {
	g := workload.NewGenerator(seed, 32, 8)
	r := rand.New(rand.NewSource(seed + 2))
	nUsers := scaleInt(60, scale, 20)
	nItems := scaleInt(80, scale, 30)

	users := g.GenUsers(nUsers)
	store := profile.NewStore()
	graph := social.NewGraph()
	acl := social.NewACL()
	ids := make([]string, len(users))
	profs := make(map[string]*profile.Profile, len(users))
	for i, u := range users {
		p := profile.New(u.ID, 32)
		p.Interests = u.Concept.Clone()
		store.Put(p)
		profs[u.ID] = p
		ids[i] = u.ID
	}
	for _, e := range g.WattsStrogatz(ids, 4, 0.15) {
		graph.AddEdge(e[0], e[1], 1)
		acl.Grant(e[0], e[1], social.ScopeAll)
		acl.Grant(e[1], e[0], social.ScopeAll)
	}

	// Candidate items: one per topic cluster, repeated with noise.
	var items []social.Item
	itemTopic := map[string]int{}
	for i := 0; i < nItems; i++ {
		topic := i % len(g.Topics)
		id := fmt.Sprintf("item%03d", i)
		items = append(items, social.Item{ID: id, Score: 0.5, Concept: g.SampleConcept(topic, 0.2)})
		itemTopic[id] = topic
	}

	// Circle topic for a user: the plurality primary interest among graph
	// neighbors — the social ground truth.
	circleTopic := func(uid string) int {
		counts := map[int]int{}
		for nb := range graph.Neighbors(uid) {
			for i, u := range users {
				if u.ID == nb {
					counts[users[i].Interests[0]]++
				}
			}
		}
		best, bestN := -1, 0
		for t, n := range counts {
			if n > bestN || (n == bestN && t < best) {
				best, bestN = t, n
			}
		}
		return best
	}

	type cond struct {
		name        string
		useGraph    bool
		useProfiles bool
	}
	conds := []cond{
		{"no-social", false, false},
		{"graph-only", true, false},
		{"profile-only", false, true},
		{"full-affinity", true, true},
	}
	table := metrics.NewTable("E8: socially-correlated intent, NDCG@10",
		"condition", "NDCG@10", "MRR")
	headline := map[string]float64{}
	eval := scaleInt(30, scale, 10)
	for _, c := range conds {
		var ndcgs, mrrs []float64
		for trial := 0; trial < eval; trial++ {
			uid := ids[r.Intn(len(ids))]
			target := circleTopic(uid)
			if target < 0 {
				continue
			}
			me := profs[uid]
			grel := map[string]float64{}
			rel := map[string]bool{}
			for id, t := range itemTopic {
				if t == target {
					grel[id] = 1
					rel[id] = true
				}
			}
			var ranked []string
			switch {
			case !c.useGraph && !c.useProfiles:
				// Base order (uniform scores): shuffled deterministic.
				perm := r.Perm(len(items))
				for _, p := range perm {
					ranked = append(ranked, items[p].ID)
				}
			default:
				rr := social.NewReranker(graph, acl, store)
				if !c.useGraph {
					rr.Graph = social.NewGraph() // empty: proximity zero
				}
				viewMe := me
				if !c.useProfiles {
					// Profile similarity silenced by using a blank self.
					viewMe = profile.New(uid, 32)
				}
				out := rr.Rerank(viewMe, items, 0.9)
				for _, it := range out {
					ranked = append(ranked, it.ID)
				}
			}
			ndcgs = append(ndcgs, metrics.NDCG(ranked, grel, 10))
			mrrs = append(mrrs, metrics.MRR(ranked, rel))
		}
		ndcg := metrics.Summarize(ndcgs).Mean
		table.AddRow(c.name, ndcg, metrics.Summarize(mrrs).Mean)
		headline["ndcg_"+c.name] = ndcg
	}
	return &Result{ID: "E8", Table: table, Headline: headline}
}
