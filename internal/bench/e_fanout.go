package bench

import (
	"fmt"
	"reflect"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/qos"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// E21ParallelFanout measures the parallel source fan-out: the same seeded
// market is asked the same questions strictly sequentially (Concurrency=1)
// and fully fanned out (Concurrency=len(sources)), with provider latency
// mapped onto real wall-clock sleeps via Config.LatencyScale so the
// benchmark observes actual overlap, not simulated arithmetic. A market
// visit should cost as much as the slowest stall, not the sum of all of
// them — the sequential/parallel p50 ratio at each source count is the
// headline. The experiment also cross-checks determinism (parallel answers
// must equal sequential answers item for item) and isolates the hedging
// win on a fat-tailed market by comparing delivered-latency p95 with the
// backup attempt disabled and enabled.
func E21ParallelFanout(seed int64, scale float64) *Result {
	asks := scaleInt(16, scale, 6)
	nDocs := scaleInt(800, scale, 200)
	// 200ms of virtual provider latency sleeps 8ms of real time: large
	// enough to dominate per-ask CPU work, small enough to keep the suite
	// quick.
	const latencyScale = 0.04

	type run struct {
		answers []*core.Answer
		wall    []float64 // seconds per ask
		// Pipeline counters: sources abandoned at their deadline, and
		// backup attempts fired / won.
		timeouts, hedges, hedgeWins uint64
	}
	runWorkload := func(worldSeed int64, nSources, concurrency int, jitter float64, disableHedge bool, asks int) run {
		reg := telemetry.NewRegistry()
		a := core.New(core.Config{Seed: worldSeed, ConceptDim: 32, LatencyScale: latencyScale, Telemetry: reg})
		g := workload.NewGenerator(worldSeed, 32, 4)
		docs := g.GenCorpus(nDocs, 1.2, int64(24*time.Hour))
		beh := core.DefaultBehavior()
		beh.LatencyJitter = jitter
		for i, list := range g.AssignToSources(docs, nSources, 0.7) {
			node, err := a.AddNode(workload.SourceName(i), core.DefaultEconomics(), beh)
			if err != nil {
				panic(err)
			}
			for _, d := range list {
				if err := node.Ingest(d.Doc); err != nil {
					panic(err)
				}
			}
		}
		u := g.GenUsers(1)[0]
		p := profile.New(u.ID, 32)
		p.Interests = u.Concept.Clone()
		// Completeness-hungry, price-insensitive weights so the optimizer
		// plans all nSources at every seed — the experiment measures the
		// fan-out, not the (seed-dependent) archetype's plan-size choice.
		p.Weights = qos.Weights{Latency: 1, Completeness: 5, Freshness: 1, Trust: 1, Price: 0.2}
		s := a.NewSession(p)
		s.MaxSources = nSources
		s.Concurrency = concurrency
		s.DisableHedge = disableHedge
		out := run{}
		for qi := 0; qi < asks; qi++ {
			topic := g.Topics[qi%len(g.Topics)]
			aql := fmt.Sprintf(`FIND documents WHERE topic = %q TOP 10`, topic.Name)
			start := time.Now()
			ans, err := s.Ask(aql, topic.Center)
			if err != nil {
				continue
			}
			out.wall = append(out.wall, time.Since(start).Seconds())
			out.answers = append(out.answers, ans)
		}
		snap := reg.Snapshot()
		out.timeouts = snap.Counters["core.execute.deadline_timeouts"]
		out.hedges = snap.Counters["core.execute.hedges"]
		out.hedgeWins = snap.Counters["core.execute.hedge_wins"]
		return out
	}

	pct := func(xs []float64, p float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		i := int(p * float64(len(s)-1))
		return s[i]
	}

	table := metrics.NewTable("E21: sequential vs parallel source fan-out",
		"sources", "seq p50 ms", "par p50 ms", "speedup", "deterministic")
	headline := map[string]float64{}
	deterministic := 1.0
	for _, n := range []int{2, 4, 8} {
		seq := runWorkload(seed, n, 1, 0.3, false, asks)
		// Explicit width: the GOMAXPROCS default would serialize on small
		// hosts, but overlapping simulated waits needs goroutines, not cores.
		par := runWorkload(seed, n, n, 0.3, false, asks)
		same := len(seq.answers) == len(par.answers)
		for i := 0; same && i < len(seq.answers); i++ {
			same = reflect.DeepEqual(seq.answers[i].Results, par.answers[i].Results) &&
				seq.answers[i].Delivered == par.answers[i].Delivered
		}
		if !same {
			deterministic = 0
		}
		seqP50 := pct(seq.wall, 0.5) * 1e3
		parP50 := pct(par.wall, 0.5) * 1e3
		speedup := 0.0
		if parP50 > 0 {
			speedup = seqP50 / parP50
		}
		table.AddRow(fmt.Sprint(n), seqP50, parP50, speedup, deterministic)
		headline[fmt.Sprintf("speedup_p50_%dsrc", n)] = speedup
		if n == 4 {
			headline["seq_p50_ms_4src"] = seqP50
			headline["par_p50_ms_4src"] = parP50
		}
	}
	headline["deterministic"] = deterministic

	// Hedging's win on a fat-tailed market (high latency jitter): the
	// per-source deadline (2× the prior's p95, active in both modes)
	// abandons any source whose winning attempt misses it, so the robust
	// measure of the backup attempt is how many abandonments it rescues —
	// a hedged source is only dropped when BOTH attempts miss. Delivered
	// latency p95 is reported alongside but hedge-on consumes extra rng
	// draws, so the two modes are different random worlds and that column
	// is distributional, pooled over several worlds with the warm-up asks
	// (wide prior, hedging dormant) discarded.
	tail := func(disable bool) (p95 float64, timeoutRate float64, hedges, wins uint64) {
		var lats []float64
		var timeouts, attempts uint64
		tailAsks := asks * 3
		warmup := tailAsks / 4
		for ws := int64(0); ws < 3; ws++ {
			r := runWorkload(seed+ws, 4, 4, 0.9, disable, tailAsks)
			for i, ans := range r.answers {
				if i < warmup {
					continue
				}
				lats = append(lats, ans.Delivered.Latency.Seconds()*1e3)
			}
			timeouts += r.timeouts
			attempts += uint64(len(r.answers)) * 4
			hedges += r.hedges
			wins += r.hedgeWins
		}
		if attempts > 0 {
			timeoutRate = float64(timeouts) / float64(attempts)
		}
		return pct(lats, 0.95), timeoutRate, hedges, wins
	}
	offP95, offTimeout, _, _ := tail(true)
	onP95, onTimeout, hedges, wins := tail(false)
	rescued := 0.0
	if offTimeout > 0 {
		rescued = 1 - onTimeout/offTimeout
	}
	table.AddRow("4 (hedge off→on p95 ms)", offP95, onP95, rescued, deterministic)
	headline["hedge_off_p95_ms"] = offP95
	headline["hedge_on_p95_ms"] = onP95
	headline["hedge_off_timeout_rate"] = offTimeout
	headline["hedge_on_timeout_rate"] = onTimeout
	headline["hedge_rescued_frac"] = rescued
	headline["hedge_attempts"] = float64(hedges)
	headline["hedge_wins"] = float64(wins)

	return &Result{ID: "E21", Table: table, Headline: headline}
}
