package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/qos"
)

// E3SLAPremium sweeps the SLA premium multiplier. Paying a higher premium
// buys real provider effort (higher delivery reliability) but costs more;
// breaches refund penalty*paid*shortfall. The consumer's net utility has an
// interior optimum — the paper's "QoS premium paid according to the
// risk/uncertainty of the requested service".
func E3SLAPremium(seed int64, scale float64) *Result {
	r := rand.New(rand.NewSource(seed))
	contracts := scaleInt(600, scale, 150)
	// Provider effort model: reliability rises with premium.
	baseReliability := 0.55
	reliabilityAt := func(premium float64) float64 {
		return baseReliability + (0.97-baseReliability)*(1-math.Exp(-(premium-1)*1.8))
	}
	valueOfFullAnswer := 30.0 // consumer's value for a fulfilled contract
	basePrice := 5.0
	penaltyRate := 0.3

	table := metrics.NewTable("E3: SLA premium sweep",
		"premium", "breach rate", "consumer net utility", "provider profit", "avg net paid")
	headline := map[string]float64{}
	premiums := []float64{1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0}
	bestUtility, bestPremium := math.Inf(-1), 0.0
	for _, premium := range premiums {
		rel := reliabilityAt(premium)
		var breaches int
		var consumerUtil, providerProfit, netPaid float64
		for i := 0; i < contracts; i++ {
			c := &qos.Contract{
				ID:       fmt.Sprintf("c%d", i),
				Promised: qos.Vector{Latency: time.Second, Completeness: 0.9, Trust: 0.8, Price: basePrice},
				Premium:  premium, PenaltyRate: penaltyRate,
			}
			if err := c.Sign(0); err != nil {
				panic(err)
			}
			honored := r.Float64() < rel
			delivered := c.Promised
			if !honored {
				delivered.Completeness = c.Promised.Completeness * (0.2 + 0.3*r.Float64())
				delivered.Latency = c.Promised.Latency * 3
			}
			out, err := c.Settle(delivered)
			if err != nil {
				panic(err)
			}
			if !out.Fulfilled {
				breaches++
			}
			value := valueOfFullAnswer * delivered.Completeness / c.Promised.Completeness
			consumerUtil += value - out.NetPaid
			// Provider cost grows with the effort implied by reliability.
			effortCost := basePrice * (0.4 + 0.8*(rel-baseReliability))
			providerProfit += out.NetPaid - effortCost
			netPaid += out.NetPaid
		}
		n := float64(contracts)
		breachRate := float64(breaches) / n
		cu := consumerUtil / n
		table.AddRow(premium, breachRate, cu, providerProfit/n, netPaid/n)
		headline[fmt.Sprintf("breach_%.2f", premium)] = breachRate
		headline[fmt.Sprintf("consumer_%.2f", premium)] = cu
		if cu > bestUtility {
			bestUtility = cu
			bestPremium = premium
		}
	}
	headline["best_premium"] = bestPremium
	headline["best_consumer_utility"] = bestUtility
	return &Result{ID: "E3", Table: table, Headline: headline}
}
