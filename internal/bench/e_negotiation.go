package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/negotiate"
	"repro/internal/qos"
)

// E4NegotiationTactics pits buyer tactic families against a market of
// sellers with randomized economics and tactics, comparing deal rate,
// rounds to close, buyer utility, and joint utility against the
// non-negotiating baselines (take-first, posted-price).
func E4NegotiationTactics(seed int64, scale float64) *Result {
	r := rand.New(rand.NewSource(seed))
	encounters := scaleInt(400, scale, 100)

	grid := negotiate.CandidateGrid(
		qos.Vector{Latency: time.Second, Trust: 0.8},
		[]float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		[]float64{0.5, 1, 1.5, 2, 3, 4, 6, 8},
	)
	buyerWeights := qos.Weights{Price: 2, Completeness: 3, Trust: 1, Latency: 1, Freshness: 1}

	mkSeller := func() *negotiate.Negotiator {
		tactics := []negotiate.Tactic{negotiate.Boulware(), negotiate.Linear(), negotiate.Conceder(), negotiate.TitForTat{Reciprocity: 1}}
		return &negotiate.Negotiator{
			Name:        "seller",
			U:           negotiate.SellerUtility{Cost: negotiate.StandardCost(0.2+r.Float64()*0.6, 0.8+r.Float64()), Scale: 6},
			Reservation: 0.05,
			Tactic:      tactics[r.Intn(len(tactics))],
			Candidates:  grid,
		}
	}
	mkBuyer := func(t negotiate.Tactic) *negotiate.Negotiator {
		return &negotiate.Negotiator{
			Name:        "buyer",
			U:           negotiate.BuyerUtility{W: buyerWeights},
			Reservation: 0.3,
			Tactic:      t,
			Candidates:  grid,
		}
	}

	type cond struct {
		name string
		run  func(sellerSeed int64) (negotiate.Deal, error)
	}
	conds := []cond{
		{"take-first", func(s int64) (negotiate.Deal, error) {
			return negotiate.TakeFirst(mkBuyer(negotiate.Linear()), mkSeller())
		}},
		{"posted-price", func(s int64) (negotiate.Deal, error) {
			return negotiate.PostedPrice(mkBuyer(negotiate.Linear()), mkSeller())
		}},
		{"boulware", func(s int64) (negotiate.Deal, error) {
			return negotiate.Run(mkBuyer(negotiate.Boulware()), mkSeller(), 24)
		}},
		{"linear", func(s int64) (negotiate.Deal, error) {
			return negotiate.Run(mkBuyer(negotiate.Linear()), mkSeller(), 24)
		}},
		{"conceder", func(s int64) (negotiate.Deal, error) {
			return negotiate.Run(mkBuyer(negotiate.Conceder()), mkSeller(), 24)
		}},
		{"tit-for-tat", func(s int64) (negotiate.Deal, error) {
			return negotiate.Run(mkBuyer(negotiate.TitForTat{Reciprocity: 1}), mkSeller(), 24)
		}},
		{"resource", func(s int64) (negotiate.Deal, error) {
			pool := negotiate.NewResourcePool(16)
			return negotiate.Run(mkBuyer(negotiate.ResourceDependent{Pool: pool}), mkSeller(), 24)
		}},
	}
	table := metrics.NewTable("E4: buyer tactic vs mixed seller market",
		"tactic", "deal rate", "avg rounds", "buyer utility", "joint utility")
	headline := map[string]float64{}
	for _, c := range conds {
		var deals int
		var rounds, buyerU, jointU []float64
		for i := 0; i < encounters; i++ {
			deal, err := c.run(int64(i))
			if err != nil {
				continue
			}
			deals++
			rounds = append(rounds, float64(deal.Rounds))
			buyerU = append(buyerU, deal.BuyerUtility)
			jointU = append(jointU, deal.JointUtility())
		}
		dealRate := float64(deals) / float64(encounters)
		bu := metrics.Summarize(buyerU).Mean
		ju := metrics.Summarize(jointU).Mean
		table.AddRow(c.name, dealRate, metrics.Summarize(rounds).Mean, bu, ju)
		headline["deal_"+c.name] = dealRate
		headline["buyer_"+c.name] = bu
		headline["joint_"+c.name] = ju
	}
	return &Result{ID: "E4", Table: table, Headline: headline}
}

// E5Subcontracting sweeps broker recursion depth on a decomposable query
// whose topics are spread across a broker hierarchy: deeper subcontracting
// buys completeness at margin-inflated prices.
func E5Subcontracting(seed int64, scale float64) *Result {
	_ = scale
	topics := []string{"jewelry", "folkdance", "costume", "ceramics", "tapestry", "drawing", "sculpture", "manuscript"}
	mkProvider := func(name string, ts ...string) *negotiate.Provider {
		m := map[string]bool{}
		for _, t := range ts {
			m[t] = true
		}
		return &negotiate.Provider{Name: name, Topics: m, CostBase: 0.3, CostEffort: 1.0}
	}
	// Three-level hierarchy: root sees 2 topics, level-1 brokers add 4,
	// level-2 the rest.
	leaf1 := &negotiate.Broker{Name: "deep1", Margin: 1.25,
		Providers: []*negotiate.Provider{mkProvider("p7", topics[6]), mkProvider("p8", topics[7])}}
	mid1 := &negotiate.Broker{Name: "mid1", Margin: 1.25,
		Providers: []*negotiate.Provider{mkProvider("p3", topics[2]), mkProvider("p4", topics[3])},
		Subs:      []*negotiate.Broker{leaf1}}
	mid2 := &negotiate.Broker{Name: "mid2", Margin: 1.25,
		Providers: []*negotiate.Provider{mkProvider("p5", topics[4]), mkProvider("p6", topics[5])}}
	root := &negotiate.Broker{Name: "root", Margin: 1.25,
		Providers: []*negotiate.Provider{mkProvider("p1", topics[0]), mkProvider("p2", topics[1])},
		Subs:      []*negotiate.Broker{mid1, mid2}}

	var parts []negotiate.Part
	for _, t := range topics {
		parts = append(parts, negotiate.Part{Topic: t, Value: 5})
	}
	table := metrics.NewTable("E5: subcontracting depth",
		"max depth", "completeness", "total price", "avg price/part", "negotiation rounds")
	headline := map[string]float64{}
	for depth := 0; depth <= 3; depth++ {
		res := root.Procure(parts, 20, depth)
		covered := res.Completeness * float64(len(parts))
		avg := 0.0
		if covered > 0 {
			avg = res.TotalPrice / covered
		}
		table.AddRow(depth, res.Completeness, res.TotalPrice, avg, res.TotalRounds)
		headline[fmt.Sprintf("completeness_%d", depth)] = res.Completeness
		headline[fmt.Sprintf("avgprice_%d", depth)] = avg
	}
	_ = seed
	return &Result{ID: "E5", Table: table, Headline: headline}
}
