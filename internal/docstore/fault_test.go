package docstore

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"repro/internal/feature"
)

// TestWALRandomTruncationProperty simulates crashes at arbitrary byte
// offsets: for any truncation point, recovery must yield a clean prefix of
// the committed history — never an error, never a document that was not
// fully written before the cut.
func TestWALRandomTruncationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		dir := t.TempDir()
		s, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		const n = 30
		for i := 0; i < n; i++ {
			if err := s.Put(doc(fmt.Sprintf("d%03d", i), "title", "body text here", int64(i), nil)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		_, walPath := snapshotPaths(dir)
		info, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		cut := int64(r.Intn(int(info.Size()) + 1))
		if err := os.Truncate(walPath, cut); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1})
		if err != nil {
			t.Fatalf("trial %d cut %d: recovery failed: %v", trial, cut, err)
		}
		// Prefix property: if d_k survived, every d_j with j < k survived.
		last := -1
		for i := 0; i < n; i++ {
			if _, err := s2.Get(fmt.Sprintf("d%03d", i)); err == nil {
				if i != last+1 {
					t.Fatalf("trial %d cut %d: non-prefix recovery: d%03d present, d%03d missing", trial, cut, i, last+1)
				}
				last = i
			}
		}
		// The store must accept writes after recovery.
		if err := s2.Put(doc("post-crash", "t", "b", 999, nil)); err != nil {
			t.Fatal(err)
		}
		s2.Close()
	}
}

// TestWALCorruptionMidLogStops flips a byte in the middle of the log:
// recovery keeps the clean prefix and truncates the rest (conservative but
// safe), then keeps working.
func TestWALCorruptionMidLog(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(doc(fmt.Sprintf("d%02d", i), "t", "some body", int64(i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	_, walPath := snapshotPaths(dir)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1})
	if err != nil {
		t.Fatalf("recovery after corruption: %v", err)
	}
	defer s2.Close()
	if s2.Len() == 0 || s2.Len() >= 20 {
		t.Fatalf("expected a proper prefix, got %d docs", s2.Len())
	}
	if err := s2.Put(doc("new", "t", "b", 99, nil)); err != nil {
		t.Fatal(err)
	}
}

// TestStoreConcurrentUse hammers a store from many goroutines; run with
// -race. Correctness bar: no races, no panics, all puts eventually visible.
func TestStoreConcurrentUse(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	workers := 8
	perWorker := 50
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-d%02d", w, i)
				v := make(feature.Vector, 8)
				v[(w+i)%8] = 1
				if err := s.Put(doc(id, fmt.Sprintf("gold item %d", i), "body", int64(i), v)); err != nil {
					t.Error(err)
					return
				}
				if i%5 == 0 {
					s.SearchText("gold", 5)
					s.SearchVector(v, 5)
					s.Freshest(3)
					if _, err := s.Get(id); err != nil {
						t.Errorf("own write not visible: %v", err)
						return
					}
				}
				if i%11 == 10 {
					if err := s.Delete(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	deletedPerWorker := perWorker / 11
	want := workers * (perWorker - deletedPerWorker)
	if s.Len() != want {
		t.Fatalf("len = %d, want %d", s.Len(), want)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
}
