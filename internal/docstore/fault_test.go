package docstore

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"repro/internal/feature"
)

// TestWALRandomTruncationProperty simulates crashes at arbitrary byte
// offsets: for any truncation point, recovery must yield a clean prefix of
// the committed history — never an error, never a document that was not
// fully written before the cut.
func TestWALRandomTruncationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		dir := t.TempDir()
		s, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		const n = 30
		for i := 0; i < n; i++ {
			if err := s.Put(doc(fmt.Sprintf("d%03d", i), "title", "body text here", int64(i), nil)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		_, walPath := snapshotPaths(dir)
		info, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		cut := int64(r.Intn(int(info.Size()) + 1))
		if err := os.Truncate(walPath, cut); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1})
		if err != nil {
			t.Fatalf("trial %d cut %d: recovery failed: %v", trial, cut, err)
		}
		// Prefix property: if d_k survived, every d_j with j < k survived.
		last := -1
		for i := 0; i < n; i++ {
			if _, err := s2.Get(fmt.Sprintf("d%03d", i)); err == nil {
				if i != last+1 {
					t.Fatalf("trial %d cut %d: non-prefix recovery: d%03d present, d%03d missing", trial, cut, i, last+1)
				}
				last = i
			}
		}
		// The store must accept writes after recovery.
		if err := s2.Put(doc("post-crash", "t", "b", 999, nil)); err != nil {
			t.Fatal(err)
		}
		s2.Close()
	}
}

// TestWALCorruptionMidLog flips a byte in the middle of the log: the
// damaged record has valid log after it, which an append-only crash cannot
// produce, so recovery must refuse with ErrCorruptRecord rather than
// silently truncating the committed records behind the damage.
func TestWALCorruptionMidLog(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(doc(fmt.Sprintf("d%02d", i), "t", "some body", int64(i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	_, walPath := snapshotPaths(dir)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1}); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("open over mid-log corruption = %v, want ErrCorruptRecord", err)
	}
}

// TestWALTornFinalRecord damages only the LAST record: that is
// indistinguishable from a torn crash write, so recovery keeps the clean
// prefix, truncates the tail, and the store keeps working.
func TestWALTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(doc(fmt.Sprintf("d%02d", i), "t", "some body", int64(i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	_, walPath := snapshotPaths(dir)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // clobber the final byte: damaged last record
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1})
	if err != nil {
		t.Fatalf("recovery after torn tail: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 19 {
		t.Fatalf("expected the 19-record clean prefix, got %d docs", s2.Len())
	}
	if err := s2.Put(doc("new", "t", "b", 99, nil)); err != nil {
		t.Fatal(err)
	}
}

// TestStoreConcurrentUse hammers a store from many goroutines; run with
// -race. Correctness bar: no races, no panics, all puts eventually visible.
func TestStoreConcurrentUse(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	workers := 8
	perWorker := 50
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-d%02d", w, i)
				v := make(feature.Vector, 8)
				v[(w+i)%8] = 1
				if err := s.Put(doc(id, fmt.Sprintf("gold item %d", i), "body", int64(i), v)); err != nil {
					t.Error(err)
					return
				}
				if i%5 == 0 {
					s.SearchText("gold", 5)
					s.SearchVector(v, 5)
					s.Freshest(3)
					if _, err := s.Get(id); err != nil {
						t.Errorf("own write not visible: %v", err)
						return
					}
				}
				if i%11 == 10 {
					if err := s.Delete(id); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	deletedPerWorker := perWorker / 11
	want := workers * (perWorker - deletedPerWorker)
	if s.Len() != want {
		t.Fatalf("len = %d, want %d", s.Len(), want)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
}
