package docstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Snapshot file, version 2: the compiled form of the store, so cold start
// decodes postings blocks instead of re-tokenizing every document.
//
//	magic "AGORASN2" (8 bytes)
//	payload:
//	  uvarint nDocs
//	  nDocs × { uvarint len, marshalled Document }   // ascending-ID order == ordinal order
//	  nDocs × uvarint docLen
//	  uvarint nTerms
//	  nTerms × {
//	    uvarint len(term), term bytes
//	    uvarint df
//	    ceil(df/blockSize) postings blocks, back-to-back (codec.go); each
//	    block holds min(blockSize, remaining) entries, so boundaries are
//	    implicit and no per-block directory is stored
//	  }
//	crc32-IEEE over payload (4 bytes, little-endian)
//
// Legacy snapshot files (pre-v2) are WAL-format record streams with no
// magic; loadSnapshotFile declines them and Open replays them as before.
// Compaction always writes v2, so old stores upgrade on their first
// compact.

const snapMagic = "AGORASN2"

// writeSnapshotV2 serializes cx (the compiled live set, including its
// documents) to w in snapshot-v2 format.
func writeSnapshotV2(w io.Writer, cx *compiledIndex) error {
	buf := make([]byte, 0, len(cx.data)+len(cx.ids)*64)
	buf = append(buf, snapMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(cx.ids)))
	for _, d := range cx.docs {
		raw := d.marshal()
		buf = binary.AppendUvarint(buf, uint64(len(raw)))
		buf = append(buf, raw...)
	}
	for _, dl := range cx.docLens {
		buf = binary.AppendUvarint(buf, uint64(dl))
	}
	buf = binary.AppendUvarint(buf, uint64(len(cx.termList)))
	for _, t := range cx.termList {
		tm := cx.terms[t]
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		buf = append(buf, t...)
		buf = binary.AppendUvarint(buf, uint64(tm.df))
		start := cx.blocks[tm.blockOff].off
		end := uint32(len(cx.data))
		if next := tm.blockOff + tm.nBlocks; int(next) < len(cx.blocks) {
			end = cx.blocks[next].off
		}
		buf = append(buf, cx.data[start:end]...)
	}
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], crc32.ChecksumIEEE(buf[len(snapMagic):]))
	buf = append(buf, tr[:]...)
	_, err := w.Write(buf)
	return err
}

// mergeLiveSet folds a snapshot's overlay into its compiled base and
// recompiles: masked base documents drop out, overlay documents join with
// their precomputed term frequencies. No document is re-tokenized — base
// postings come from decoding the compiled blocks, overlay postings from
// the overlay's own term maps.
func mergeLiveSet(sn *snapshot) *compiledIndex {
	cx := sn.base.cx
	ov := sn.ov
	inv := newInvIndex()
	docs := make(map[string]*Document, sn.docCount)
	for i, id := range cx.ids {
		if ov.masked[id] {
			continue
		}
		docs[id] = cx.docs[i]
		inv.docLen[id] = int(cx.docLens[i])
		inv.docs++
	}
	var ords, tfs [blockSize]uint32
	for _, t := range cx.termList {
		tm := cx.terms[t]
		var p map[string]int
		for _, bm := range cx.termBlocks(tm) {
			cnt := int(bm.count)
			if _, err := decodePostingsBlock(cx.data[bm.off:], cnt, ords[:cnt], tfs[:cnt]); err != nil {
				panic(err) // in-memory arena, validated at build/load time
			}
			for j := 0; j < cnt; j++ {
				id := cx.ids[ords[j]]
				if ov.masked[id] {
					continue
				}
				if p == nil {
					p = make(map[string]int, cnt)
				}
				p[id] = int(tfs[j])
			}
		}
		if p != nil {
			inv.postings[t] = p
		}
	}
	for id, d := range ov.byID {
		docs[id] = d
		inv.docLen[id] = ov.docLen[id]
		inv.docs++
		for t, tf := range ov.terms[id] {
			p, ok := inv.postings[t]
			if !ok {
				p = make(map[string]int)
				inv.postings[t] = p
			}
			p[id] = tf
		}
	}
	return compileIndex(inv, docs)
}

// snapReader is a bounds-checked cursor over the snapshot payload.
type snapReader struct {
	b   []byte
	off int
}

func (r *snapReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("docstore: corrupt snapshot: bad varint at %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *snapReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("docstore: corrupt snapshot: %d bytes wanted at %d, %d left", n, r.off, len(r.b)-r.off)
	}
	out := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return out, nil
}

// loadSnapshotFile loads a v2 snapshot into the (fresh, empty) master
// state. It returns (false, nil) when the file is missing or is a legacy
// pre-v2 snapshot — the caller falls back to WAL-style replay — and an
// error when a v2 file is corrupt, matching the mid-log corruption
// semantics of the WAL itself.
func loadSnapshotFile(path string, st *state) (bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("docstore: reading snapshot: %w", err)
	}
	if len(raw) < len(snapMagic)+4 || string(raw[:len(snapMagic)]) != snapMagic {
		return false, nil
	}
	payload := raw[len(snapMagic) : len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(payload) != want {
		return false, fmt.Errorf("docstore: corrupt snapshot: checksum mismatch")
	}
	r := &snapReader{b: payload}

	nDocs, err := r.uvarint()
	if err != nil {
		return false, err
	}
	if nDocs > uint64(len(payload)) { // each doc record is at least one byte
		return false, fmt.Errorf("docstore: corrupt snapshot: %d docs in %d payload bytes", nDocs, len(payload))
	}
	ids := make([]string, nDocs)
	for i := range ids {
		dlen, err := r.uvarint()
		if err != nil {
			return false, err
		}
		db, err := r.bytes(dlen)
		if err != nil {
			return false, err
		}
		d, err := unmarshalDocument(db)
		if err != nil {
			return false, fmt.Errorf("docstore: corrupt snapshot: %w", err)
		}
		ids[i] = d.ID
		// Mirror applyPut minus the inverted index (rebuilt from the
		// compiled postings below, no tokenization) — the master is fresh,
		// so there is no previous version to displace.
		st.docs[d.ID] = d
		for _, t := range d.Topics {
			set, ok := st.byTopic[t]
			if !ok {
				set = make(map[string]bool)
				st.byTopic[t] = set
			}
			set[d.ID] = true
		}
		if len(d.Concept) > 0 {
			st.vec.Put(d.ID, d.Concept)
		}
		st.byTime.insert(d.CreatedAt, d.ID)
		if hasVisual(d) {
			st.visuals++
		}
	}
	for _, id := range ids {
		dl, err := r.uvarint()
		if err != nil {
			return false, err
		}
		st.inv.docLen[id] = int(dl)
		st.inv.docs++
	}
	nTerms, err := r.uvarint()
	if err != nil {
		return false, err
	}
	if nTerms > uint64(len(payload)) {
		return false, fmt.Errorf("docstore: corrupt snapshot: %d terms in %d payload bytes", nTerms, len(payload))
	}
	var ords, tfs [blockSize]uint32
	for ti := uint64(0); ti < nTerms; ti++ {
		tlen, err := r.uvarint()
		if err != nil {
			return false, err
		}
		tb, err := r.bytes(tlen)
		if err != nil {
			return false, err
		}
		term := string(tb)
		df, err := r.uvarint()
		if err != nil {
			return false, err
		}
		if df == 0 || df > nDocs {
			return false, fmt.Errorf("docstore: corrupt snapshot: term %q df %d of %d docs", term, df, nDocs)
		}
		p := make(map[string]int, df)
		for left := int(df); left > 0; {
			cnt := min(left, blockSize)
			n, err := decodePostingsBlock(payload[r.off:], cnt, ords[:cnt], tfs[:cnt])
			if err != nil {
				return false, fmt.Errorf("docstore: corrupt snapshot: term %q: %w", term, err)
			}
			r.off += n
			for j := 0; j < cnt; j++ {
				if uint64(ords[j]) >= nDocs {
					return false, fmt.Errorf("docstore: corrupt snapshot: term %q ordinal %d of %d", term, ords[j], nDocs)
				}
				p[ids[ords[j]]] = int(tfs[j])
			}
			left -= cnt
		}
		st.inv.postings[term] = p
	}
	if r.off != len(payload) {
		return false, fmt.Errorf("docstore: corrupt snapshot: %d trailing bytes", len(payload)-r.off)
	}
	return true, nil
}
