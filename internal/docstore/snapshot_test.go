package docstore

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/feature"
)

// TestSnapshotPreWriteStability pins the no-torn-reads contract: a reader
// holding a snapshot taken before a write keeps seeing the old epoch in its
// entirety, while new readers see the new one.
func TestSnapshotPreWriteStability(t *testing.T) {
	s := memStore(t)
	for i := 0; i < 5; i++ {
		if err := s.Put(doc(fmt.Sprintf("d%d", i), "Gold Ring", "byzantine gold ring", int64(i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	sn := s.snap.Load()
	epoch := s.Epoch()
	if sn.epoch != epoch {
		t.Fatalf("snapshot epoch %d != Epoch() %d", sn.epoch, epoch)
	}

	if err := s.Put(doc("d9", "Silver Brooch", "etruscan silver brooch", 99, nil)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("d0"); err != nil {
		t.Fatal(err)
	}

	if got := s.Epoch(); got <= epoch {
		t.Fatalf("epoch did not advance: %d -> %d", epoch, got)
	}
	// The held snapshot is frozen in time: the put is invisible, the
	// deleted doc still present, the epoch tag unchanged.
	if sn.epoch != epoch {
		t.Fatal("held snapshot's epoch changed under a concurrent write")
	}
	if sn.getDoc("d9") != nil {
		t.Fatal("held snapshot sees a post-snapshot put")
	}
	if sn.getDoc("d0") == nil {
		t.Fatal("held snapshot lost a doc deleted after it was taken")
	}
	// Fresh reads see the new state.
	if _, err := s.Get("d9"); err != nil {
		t.Fatalf("new read misses new doc: %v", err)
	}
	if _, err := s.Get("d0"); err == nil {
		t.Fatal("new read still sees deleted doc")
	}
}

// TestEpochMonotonic: every write bumps the epoch exactly once; reads never
// bump it.
func TestEpochMonotonic(t *testing.T) {
	s := memStore(t)
	last := s.Epoch()
	for i := 0; i < 150; i++ { // crosses the overlay freeze limit
		if err := s.Put(doc(fmt.Sprintf("e%d", i), "t", "body text", int64(i), nil)); err != nil {
			t.Fatal(err)
		}
		e := s.Epoch()
		if e != last+1 {
			t.Fatalf("put %d: epoch %d -> %d, want +1", i, last, e)
		}
		last = e
	}
	s.SearchText("body", 3)
	s.Freshest(2)
	if s.Epoch() != last {
		t.Fatal("read path bumped the epoch")
	}
	if err := s.Delete("e0"); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != last+1 {
		t.Fatal("delete did not bump the epoch")
	}
}

var shadowVocab = []string{
	"gold", "silver", "ring", "brooch", "byzantine", "etruscan",
	"filigree", "amber", "jade", "pendant", "coin", "mosaic",
}

func shadowDoc(r *rand.Rand, id string, at int64) *Document {
	title := shadowVocab[r.Intn(len(shadowVocab))] + " " + shadowVocab[r.Intn(len(shadowVocab))]
	text := ""
	for i := 0; i < 4+r.Intn(5); i++ {
		text += shadowVocab[r.Intn(len(shadowVocab))] + " "
	}
	d := doc(id, title, text, at, nil)
	if r.Intn(3) > 0 {
		v := make(feature.Vector, 8)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		d.Concept = v
	}
	switch r.Intn(3) {
	case 0:
		d.Topics = []string{"alpha"}
	case 1:
		d.Topics = []string{"beta", "alpha"}
	}
	if r.Intn(4) == 0 {
		d.ColorHist = []float64{r.Float64(), r.Float64(), r.Float64()}
		d.Texture = []float64{r.Float64(), r.Float64()}
	}
	return d
}

// TestSnapshotMatchesMonolithic is the exactness proof for the base+overlay
// read path: after every write in a put/replace/delete sweep (crossing
// several freeze boundaries), every read API must return results identical —
// scores included — to a freshly built store holding the same live set with
// an empty overlay. Text queries use at most two distinct terms so float
// accumulation order cannot differ between the two stores.
func TestSnapshotMatchesMonolithic(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	a, err := Open(Options{ConceptDim: 8, Seed: 7, QueryCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[string]*Document)
	ids := []string{}
	queries := []string{"gold ring", "byzantine", "amber jade", "mosaic coin"}
	qvec := feature.Vector{1, -0.5, 0.25, 0, 0.75, -1, 0.5, 0}
	qvis := feature.VisualFeatures{ColorHist: []float64{0.3, 0.4, 0.3}, Texture: []float64{0.6, 0.4}}

	check := func(step int) {
		t.Helper()
		// Rebuild a monolithic reference store with the same seed and
		// force an all-base snapshot so b has no overlay at all.
		b, err := Open(Options{ConceptDim: 8, Seed: 7, QueryCacheSize: -1})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if d, ok := live[id]; ok {
				if err := b.Put(d); err != nil {
					t.Fatal(err)
				}
			}
		}
		b.mu.Lock()
		b.freezeLocked(b.snap.Load().epoch + 1)
		b.mu.Unlock()
		if bo := b.snap.Load().ov; bo.ops != 0 || len(bo.byID) != 0 {
			t.Fatal("reference store still has an overlay after forced freeze")
		}

		if a.Len() != b.Len() {
			t.Fatalf("step %d: Len %d != %d", step, a.Len(), b.Len())
		}
		for _, q := range queries {
			ah, bh := a.SearchText(q, 5), b.SearchText(q, 5)
			if !hitsEqual(ah, bh) {
				t.Fatalf("step %d: SearchText(%q) diverged:\n overlay: %v\n mono:    %v",
					step, q, hitIDs(ah), hitIDs(bh))
			}
		}
		if ah, bh := a.SearchVector(qvec, 5), b.SearchVector(qvec, 5); !hitsEqual(ah, bh) {
			t.Fatalf("step %d: SearchVector diverged: %v vs %v", step, hitIDs(ah), hitIDs(bh))
		}
		if ah, bh := a.SearchVisual(qvis, 0.5, 4), b.SearchVisual(qvis, 0.5, 4); !hitsEqual(ah, bh) {
			t.Fatalf("step %d: SearchVisual diverged: %v vs %v", step, hitIDs(ah), hitIDs(bh))
		}
		for _, topic := range []string{"alpha", "beta", "gamma"} {
			if ac, bc := a.TopicCount(topic), b.TopicCount(topic); ac != bc {
				t.Fatalf("step %d: TopicCount(%q) %d != %d", step, topic, ac, bc)
			}
			if av, bv := docIDs(a.ByTopic(topic, 6)), docIDs(b.ByTopic(topic, 6)); !strsEqual(av, bv) {
				t.Fatalf("step %d: ByTopic(%q) %v != %v", step, topic, av, bv)
			}
		}
		if av, bv := docIDs(a.Freshest(7)), docIDs(b.Freshest(7)); !strsEqual(av, bv) {
			t.Fatalf("step %d: Freshest %v != %v", step, av, bv)
		}
		if av, bv := docIDs(a.RecentSince(20, 900)), docIDs(b.RecentSince(20, 900)); !strsEqual(av, bv) {
			t.Fatalf("step %d: RecentSince %v != %v", step, av, bv)
		}
		an, bn := 0, 0
		a.All(func(*Document) bool { an++; return true })
		b.All(func(*Document) bool { bn++; return true })
		if an != bn {
			t.Fatalf("step %d: All visited %d vs %d", step, an, bn)
		}
	}

	for step := 0; step < 180; step++ {
		switch op := r.Intn(10); {
		case op < 6 || len(ids) == 0: // put new
			id := fmt.Sprintf("s%03d", len(ids))
			d := shadowDoc(r, id, int64(step))
			ids = append(ids, id)
			live[id] = d
			if err := a.Put(d); err != nil {
				t.Fatal(err)
			}
		case op < 8: // replace existing (possibly a deleted id: put-back)
			id := ids[r.Intn(len(ids))]
			d := shadowDoc(r, id, int64(step))
			live[id] = d
			if err := a.Put(d); err != nil {
				t.Fatal(err)
			}
		default: // delete
			id := ids[r.Intn(len(ids))]
			if _, ok := live[id]; !ok {
				continue
			}
			delete(live, id)
			if err := a.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
		if step%9 == 0 || step > 170 {
			check(step)
		}
	}
}

func hitsEqual(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Doc.ID != b[i].Doc.ID || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

func hitIDs(hits []Hit) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = fmt.Sprintf("%s:%.6g", h.Doc.ID, h.Score)
	}
	return out
}

func docIDs(docs []*Document) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = d.ID
	}
	return out
}

func strsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotReadersUnderChurn is the -race stress for the lock-free read
// path: N readers hammer every read API while one writer churns documents
// and periodically compacts the WAL. Correctness bar: no races, no panics,
// and every reader-observed snapshot is internally consistent (a doc id
// returned by a search resolves via the same method's snapshot).
func TestSnapshotReadersUnderChurn(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), ConceptDim: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 80; i++ {
		if err := s.Put(shadowDoc(r, fmt.Sprintf("c%03d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: replaces, deletes, puts back, compacts
		defer wg.Done()
		defer close(done)
		wr := rand.New(rand.NewSource(11))
		for i := 0; i < 400; i++ {
			id := fmt.Sprintf("c%03d", wr.Intn(80))
			switch wr.Intn(5) {
			case 0:
				// Ignore ErrNotFound: the id may already be deleted.
				_ = s.Delete(id)
			default:
				if err := s.Put(shadowDoc(wr, id, int64(100+i))); err != nil {
					t.Error(err)
					return
				}
			}
			if i%97 == 0 {
				if err := s.Compact(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	readers := 6
	qvec := feature.Vector{1, 0, -1, 0.5, 0, 0.25, 0, -0.5}
	for w := 0; w < readers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rr := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-done:
					return
				default:
				}
				q := shadowVocab[rr.Intn(len(shadowVocab))]
				for _, h := range s.SearchText(q, 4) {
					if h.Doc == nil || h.Doc.ID == "" {
						t.Error("search returned an empty hit")
						return
					}
				}
				s.SearchHybrid(q, qvec, 0.5, 3)
				s.SearchVector(qvec, 3)
				s.Freshest(5)
				s.ByTopic("alpha", 4)
				s.RecentSince(0, 1<<60)
				s.Stats()
				s.Len()
				s.Epoch()
				// ErrNotFound is expected under churn; anything else is not.
				if _, err := s.Get(fmt.Sprintf("c%03d", rr.Intn(80))); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("unexpected Get error: %v", err)
					return
				}
				s.All(func(d *Document) bool { return d != nil })
			}
		}()
	}
	wg.Wait()
}

// TestSearchDeterminismUnderChurn is the acceptance determinism check for
// the benchmark scenario: 16 concurrent readers issue the same query while a
// writer continuously re-puts identical documents (epoch churn with constant
// content). Every reader must observe the exact quiesced hit slice — same
// ids, same scores, same order — at every epoch, overlay or base.
func TestSearchDeterminismUnderChurn(t *testing.T) {
	s := memStore(t)
	mk := func(i int) *Document {
		return doc(fmt.Sprintf("g%02d", i), "Gold Ring",
			fmt.Sprintf("byzantine gold ring number %d with filigree", i), int64(i), nil)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := s.Put(mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	const query = "gold filigree" // two distinct terms: order-independent accumulation
	expected := s.SearchText(query, 8)
	if len(expected) == 0 {
		t.Fatal("empty baseline result")
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn writer: identical content, epoch bumps only
		defer wg.Done()
		defer close(done)
		for i := 0; i < 500; i++ {
			if err := s.Put(mk(i % n)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				got := s.SearchText(query, 8)
				if !hitsEqual(got, expected) {
					t.Errorf("result diverged under churn:\n got  %v\n want %v",
						hitIDs(got), hitIDs(expected))
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.SearchText(query, 8); !hitsEqual(got, expected) {
		t.Fatalf("post-quiesce result diverged: %v vs %v", hitIDs(got), hitIDs(expected))
	}
}
