package docstore

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/feature"
	"repro/internal/telemetry"
)

// TestHybridCountsOneSearch pins the telemetry contract: one hybrid query
// is one search, even though it consults both the text and vector indexes.
// The result cache is disabled so every query actually executes — Searches
// counts executions, and cached repeats would otherwise not re-execute
// (that behavior is pinned separately in cache_test.go).
func TestHybridCountsOneSearch(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := Open(Options{ConceptDim: 8, Seed: 1, Telemetry: reg, QueryCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	cv := feature.Vector{1, 0, 0, 0, 0, 0, 0, 0}
	for i := 0; i < 5; i++ {
		if err := s.Put(doc(fmt.Sprintf("d%d", i), "Gold Ring", "byzantine gold ring", int64(i), cv)); err != nil {
			t.Fatal(err)
		}
	}

	s.SearchHybrid("gold ring", cv, 0.5, 3)
	if got := s.Stats().Searches; got != 1 {
		t.Fatalf("hybrid query counted %d searches, want 1", got)
	}
	if got := reg.Counter("docstore.searches").Value(); got != 1 {
		t.Fatalf("telemetry counted %d searches, want 1", got)
	}

	// Degenerate alphas delegate to a single index — still one search each.
	s.SearchHybrid("gold ring", cv, 0, 3)
	s.SearchHybrid("gold ring", cv, 1, 3)
	s.SearchText("gold ring", 3)
	s.SearchVector(cv, 3)
	if got := s.Stats().Searches; got != 5 {
		t.Fatalf("after 5 queries Stats.Searches = %d, want 5", got)
	}
	if got := reg.Counter("docstore.searches").Value(); got != 5 {
		t.Fatalf("after 5 queries telemetry = %d, want 5", got)
	}
}

// TestSearchVisualSharedOwnership pins the zero-copy result contract: hits
// share snapshot-owned documents (no per-hit clone), they stay valid and
// unchanged across later writes (the snapshot they came from is immutable),
// and a caller who wants to mutate clones explicitly.
func TestSearchVisualSharedOwnership(t *testing.T) {
	s := memStore(t)
	ve := feature.NewVisualExtractor(3, 8, 12, 8, 0.05)
	r := rand.New(rand.NewSource(9))
	cv := feature.Vector{0, 0, 1, 0, 0, 0, 0, 0}
	for i := 0; i < 8; i++ {
		vf := ve.Extract(r, cv)
		d := doc(fmt.Sprintf("v%d", i), "t", "x", int64(i), nil)
		d.ColorHist = vf.ColorHist
		d.Texture = vf.Texture
		if err := s.Put(d); err != nil {
			t.Fatal(err)
		}
	}
	q := ve.Extract(r, cv)
	hits := s.SearchVisual(q, 0.5, 3)
	if len(hits) != 3 {
		t.Fatalf("hits = %d, want 3", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("hits not sorted by score")
		}
	}
	// Replacing the top doc must not disturb the already-returned hit: it
	// points into the snapshot it was served from, and the write path
	// installs fresh clones rather than mutating stored documents.
	id, title := hits[0].Doc.ID, hits[0].Doc.Title
	repl := doc(id, "replaced", "y", 99, nil)
	repl.ColorHist = []float64{1, 0, 0}
	repl.Texture = hits[0].Doc.Texture
	if err := s.Put(repl); err != nil {
		t.Fatal(err)
	}
	if hits[0].Doc.Title != title || hits[0].Doc.ID != id {
		t.Fatal("returned hit changed under a later write")
	}
	// Mutating a caller-made clone leaves the store untouched.
	cp := hits[0].Doc.Clone()
	cp.Title = "mutated"
	cp.ColorHist[0] = -1
	back, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if back.Title == "mutated" || back.ColorHist[0] == -1 {
		t.Fatal("mutating a cloned hit leaked into the store")
	}
}
