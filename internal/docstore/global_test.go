package docstore

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/feature"
)

// buildGlobalFromSelf assembles the GlobalStats a scatter router would ship
// for query, using the store itself as the only shard. On a single shard
// holding the whole corpus the global figures equal the local ones, so
// SearchTextGlobal must reproduce SearchText bit-for-bit.
func buildGlobalFromSelf(s *Store, query string) *GlobalStats {
	terms := feature.Tokenize(query)
	// Distinct terms in first-appearance order, like the query compiler.
	uniq := terms[:0:0]
	for _, t := range terms {
		seen := false
		for _, u := range uniq {
			if u == t {
				seen = true
				break
			}
		}
		if !seen {
			uniq = append(uniq, t)
		}
	}
	total, _, stats := s.TermStats(uniq)
	gs := &GlobalStats{TotalDocs: total, Terms: uniq, DF: make([]uint64, len(uniq))}
	for i, st := range stats {
		gs.DF[i] = st.DF
	}
	return gs
}

// TestSearchTextGlobalMatchesLocal pins the distributed-scoring invariant
// at its base case: global statistics gathered from a store and fed back to
// the same store produce bit-identical hits (IDs, order, and float scores)
// across puts, replacements, and deletes — including overlay states where
// local df bookkeeping is the base-minus-masked-plus-overlay merge.
func TestSearchTextGlobalMatchesLocal(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	s, err := Open(Options{ConceptDim: 8, Seed: 3, QueryCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	queries := []string{"gold ring", "byzantine mosaic coin", "amber", "filigree pendant jade"}
	check := func(step int) {
		t.Helper()
		for _, q := range queries {
			gs := buildGlobalFromSelf(s, q)
			local := s.SearchText(q, 5)
			global := s.SearchTextGlobal(q, 5, gs)
			if !hitsEqual(local, global) {
				t.Fatalf("step %d: global scoring diverged for %q:\n local:  %v\n global: %v",
					step, q, hitIDs(local), hitIDs(global))
			}
		}
	}
	ids := []string{}
	for step := 0; step < 300; step++ {
		switch {
		case len(ids) < 20 || r.Intn(10) < 6:
			id := fmt.Sprintf("g%d", len(ids))
			ids = append(ids, id)
			if err := s.Put(shadowDoc(r, id, int64(step))); err != nil {
				t.Fatal(err)
			}
		case r.Intn(2) == 0:
			if err := s.Put(shadowDoc(r, ids[r.Intn(len(ids))], int64(step))); err != nil {
				t.Fatal(err)
			}
		default:
			if err := s.Delete(ids[r.Intn(len(ids))]); err != nil && err != ErrNotFound {
				t.Fatal(err)
			}
		}
		if step%37 == 0 {
			check(step)
		}
	}
	check(300)
}

// TestTermStatsLiveCounts verifies TermStats against a brute-force count
// over the live documents: df counts exactly the docs carrying the term,
// and MaxRatio upper-bounds every live document's (1+ln tf)/√(len+1) ratio
// (it may exceed the live max when masked base docs still back the
// compiled figure — that only loosens a bound, never breaks it).
func TestTermStatsLiveCounts(t *testing.T) {
	s := memStore(t)
	defer s.Close()
	put := func(id, text string) {
		if err := s.Put(doc(id, "", text, 1, nil)); err != nil {
			t.Fatal(err)
		}
	}
	put("a", "gold gold ring")
	put("b", "gold coin")
	put("c", "mosaic coin coin")
	put("a", "silver ring") // replace: "gold" leaves a, now df 1
	if err := s.Delete("c"); err != nil {
		t.Fatal(err)
	}
	total, epoch, stats := s.TermStats([]string{"gold", "coin", "ring", "unseen"})
	if total != 2 {
		t.Fatalf("total = %d, want 2", total)
	}
	if epoch != s.Epoch() {
		t.Fatalf("epoch = %d, want %d", epoch, s.Epoch())
	}
	wantDF := []uint64{1, 1, 1, 0}
	for i, st := range stats {
		if st.DF != wantDF[i] {
			t.Fatalf("df[%d] = %d, want %d (stats %+v)", i, st.DF, wantDF[i], stats)
		}
	}
	if stats[3].MaxRatio != 0 {
		t.Fatalf("unseen term has MaxRatio %v", stats[3].MaxRatio)
	}
	if stats[0].MaxRatio <= 0 || stats[1].MaxRatio <= 0 {
		t.Fatalf("live terms need positive ratios: %+v", stats)
	}
}

// TestSearchTextGlobalNilFallback: a nil GlobalStats must behave exactly
// like SearchText (the unsharded path).
func TestSearchTextGlobalNilFallback(t *testing.T) {
	s := memStore(t)
	defer s.Close()
	if err := s.Put(doc("d1", "gold ring", "gold filigree ring", 1, nil)); err != nil {
		t.Fatal(err)
	}
	if !hitsEqual(s.SearchTextGlobal("gold", 3, nil), s.SearchText("gold", 3)) {
		t.Fatal("nil stats diverged from SearchText")
	}
}
