package docstore

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/feature"
)

func TestDocumentMarshalRoundtrip(t *testing.T) {
	d := &Document{
		ID: "d1", Kind: KindCatalogEntry, Title: "Flemish Drawing",
		Text: "a 17th century drawing", Topics: []string{"art", "dutch"},
		Concept:    feature.Vector{0.5, -1, 2},
		ColorHist:  feature.Vector{0.2, 0.8},
		Texture:    feature.Vector{1},
		Provenance: "auction-3", CreatedAt: 12345,
		Meta: map[string]string{"price": "200", "lot": "17"},
	}
	got, err := unmarshalDocument(d.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, d)
	}
}

func TestDocumentMarshalEmptyFields(t *testing.T) {
	d := &Document{ID: "x"}
	got, err := unmarshalDocument(d.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "x" || got.Meta != nil || got.Topics != nil {
		t.Fatalf("got %+v", got)
	}
}

func TestDocumentMarshalDeterministic(t *testing.T) {
	d := &Document{ID: "d", Meta: map[string]string{"a": "1", "b": "2", "c": "3", "z": "4"}}
	b1 := d.marshal()
	for i := 0; i < 10; i++ {
		if !reflect.DeepEqual(d.marshal(), b1) {
			t.Fatal("marshal not deterministic (meta ordering)")
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	d := &Document{ID: "d1", Title: "t"}
	b := d.marshal()
	if _, err := unmarshalDocument(b[:len(b)-3]); err == nil {
		t.Fatal("truncated document decoded without error")
	}
}

func TestDocumentRoundtripProperty(t *testing.T) {
	f := func(id, title, text, prov string, at int64, topics []string) bool {
		d := &Document{ID: id, Title: title, Text: text, Provenance: prov, CreatedAt: at, Topics: topics}
		got, err := unmarshalDocument(d.marshal())
		if err != nil {
			return false
		}
		if len(d.Topics) == 0 {
			d.Topics = nil
		}
		return reflect.DeepEqual(got, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTokensAndSnippet(t *testing.T) {
	d := &Document{Title: "Gold Ring", Text: "byzantine filigree", Topics: []string{"jewelry"}}
	toks := d.Tokens()
	want := map[string]bool{"gold": true, "ring": true, "byzantine": true, "filigree": true, "jewelry": true}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for _, tok := range toks {
		if !want[tok] {
			t.Fatalf("unexpected token %q", tok)
		}
	}
	if s := d.Snippet(4); s != "Gold" {
		t.Fatalf("snippet = %q", s)
	}
	empty := &Document{Text: "only body"}
	if s := empty.Snippet(100); s != "only body" {
		t.Fatalf("snippet fallback = %q", s)
	}
}

func TestKindStringNames(t *testing.T) {
	if KindCatalogEntry.String() != "catalog" || Kind(99).String() != "kind(99)" {
		t.Fatal("kind names wrong")
	}
}
