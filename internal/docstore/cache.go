package docstore

import (
	"container/list"
	"encoding/binary"
	"math"
	"strconv"
	"sync"

	"repro/internal/feature"
	"repro/internal/telemetry"
)

// defaultQueryCacheSize bounds the query-result cache when Options leaves it
// zero.
const defaultQueryCacheSize = 128

// queryCache is a generation-tagged LRU fronting SearchText/SearchHybrid.
// Entries are tagged with the epoch they were computed against; any write
// bumps the store epoch, so a stale entry is detected (and evicted) on its
// next lookup rather than by scanning the cache on every write. Cached hits
// hold snapshot-owned documents — immutable by the snapshot contract — and
// are returned shared: search results are read-only (see Hit), so a cache
// hit costs a lookup and an LRU splice, never a deep copy or an
// allocation. Lookup keys arrive as scratch byte slices and are only
// materialized into strings when an entry is first inserted.
type queryCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses *telemetry.Counter
	size         *telemetry.Gauge
}

type cacheEntry struct {
	key   string
	epoch uint64
	raw   []Hit // snapshot-owned documents; returned shared, read-only
}

// newQueryCache returns nil (fully disabled) for cap < 0.
func newQueryCache(cap int, reg *telemetry.Registry) *queryCache {
	if cap < 0 {
		return nil
	}
	if cap == 0 {
		cap = defaultQueryCacheSize
	}
	c := &queryCache{cap: cap, ll: list.New(), entries: make(map[string]*list.Element)}
	if reg != nil {
		c.hits = reg.Counter("docstore.cache.hits")
		c.misses = reg.Counter("docstore.cache.misses")
		c.size = reg.Gauge("docstore.cache.entries")
	}
	return c
}

// get returns the cached (shared, read-only) result for key at epoch.
// Entries from older epochs count as misses and are dropped. The key is a
// scratch buffer: the map lookup converts it without allocating.
func (c *queryCache) get(key []byte, epoch uint64) ([]Hit, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.entries[string(key)]
	if !ok {
		c.mu.Unlock()
		c.misses.Inc()
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.epoch != epoch {
		c.ll.Remove(el)
		delete(c.entries, string(key))
		c.size.Set(float64(len(c.entries)))
		c.mu.Unlock()
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	raw := ent.raw
	c.mu.Unlock()
	c.hits.Inc()
	return raw, true
}

// put stores raw (snapshot-owned hits) for key at epoch, evicting from the
// LRU tail past capacity. The key buffer is copied into a string here — the
// miss path is the only place a key allocates.
func (c *queryCache) put(key []byte, epoch uint64, raw []Hit) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if el, ok := c.entries[string(key)]; ok {
		ent := el.Value.(*cacheEntry)
		ent.epoch = epoch
		ent.raw = raw
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	k := string(key) //lint:allow hotalloc miss path only: the key must outlive the caller's scratch buffer
	//lint:allow hotalloc miss path only: the entry is retained by the LRU list
	c.entries[k] = c.ll.PushFront(&cacheEntry{key: k, epoch: epoch, raw: raw})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).key)
	}
	c.size.Set(float64(len(c.entries)))
	c.mu.Unlock()
}

func (c *queryCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Cache keys are exact encodings — no hashing, so distinct queries can
// never collide into each other's results. Float parameters are encoded as
// raw IEEE-754 bits. Keys are appended into a pooled scratch buffer so the
// steady-state lookup allocates nothing.

func appendTextKey(dst []byte, query string, k int) []byte {
	dst = append(dst, 't', 0)
	dst = append(dst, query...)
	dst = append(dst, 0)
	return strconv.AppendInt(dst, int64(k), 10)
}

func appendHybridKey(dst []byte, query string, concept feature.Vector, alpha float64, k int) []byte {
	dst = append(dst, 'h', 0)
	dst = append(dst, query...)
	dst = append(dst, 0)
	dst = strconv.AppendInt(dst, int64(k), 10)
	dst = append(dst, 0)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(alpha))
	for _, f := range concept {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	}
	return dst
}

// tokenMemoCap bounds the tokenization memo.
const tokenMemoCap = 256

// tokenMemo caches Tokenize results for repeated query strings. Token
// slices are returned shared and must be treated as read-only — every
// consumer (searchCompiled) only reads them. Eviction drops an arbitrary
// entry: the memo is a small hot-set cache, not an LRU.
type tokenMemo struct {
	mu   sync.Mutex
	m    map[string][]string
	hits *telemetry.Counter
}

func newTokenMemo(reg *telemetry.Registry) *tokenMemo {
	tm := &tokenMemo{m: make(map[string][]string)}
	if reg != nil {
		tm.hits = reg.Counter("docstore.tokens.memo.hits")
	}
	return tm
}

func (tm *tokenMemo) tokenize(query string) []string {
	tm.mu.Lock()
	if toks, ok := tm.m[query]; ok {
		tm.mu.Unlock()
		tm.hits.Inc()
		return toks
	}
	tm.mu.Unlock()
	toks := feature.Tokenize(query)
	tm.mu.Lock()
	if len(tm.m) >= tokenMemoCap {
		for k := range tm.m {
			delete(tm.m, k)
			break
		}
	}
	tm.m[query] = toks
	tm.mu.Unlock()
	return toks
}
