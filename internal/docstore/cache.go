package docstore

import (
	"container/list"
	"encoding/binary"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/feature"
	"repro/internal/telemetry"
)

// defaultQueryCacheSize bounds the query-result cache when Options leaves it
// zero.
const defaultQueryCacheSize = 128

// queryCache is a generation-tagged LRU fronting SearchText/SearchHybrid.
// Entries are tagged with the epoch they were computed against; any write
// bumps the store epoch, so a stale entry is detected (and evicted) on its
// next lookup rather than by scanning the cache on every write. Cached hits
// hold snapshot-owned documents — immutable by the snapshot contract — and
// are cloned on the way out, preserving the "caller owns the result" rule.
//
// The cache mutex is held only for bookkeeping (lookup, LRU splice);
// cloning happens outside it so concurrent readers serialize for nanoseconds,
// not for the deep copy.
type queryCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses *telemetry.Counter
	size         *telemetry.Gauge
}

type cacheEntry struct {
	key   string
	epoch uint64
	raw   []Hit // snapshot-owned documents; clone before returning
}

// newQueryCache returns nil (fully disabled) for cap < 0.
func newQueryCache(cap int, reg *telemetry.Registry) *queryCache {
	if cap < 0 {
		return nil
	}
	if cap == 0 {
		cap = defaultQueryCacheSize
	}
	c := &queryCache{cap: cap, ll: list.New(), entries: make(map[string]*list.Element)}
	if reg != nil {
		c.hits = reg.Counter("docstore.cache.hits")
		c.misses = reg.Counter("docstore.cache.misses")
		c.size = reg.Gauge("docstore.cache.entries")
	}
	return c
}

// get returns a caller-owned copy of the cached result for key at epoch.
// Entries from older epochs count as misses and are dropped.
func (c *queryCache) get(key string, epoch uint64) ([]Hit, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Inc()
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.epoch != epoch {
		c.ll.Remove(el)
		delete(c.entries, key)
		c.size.Set(float64(len(c.entries)))
		c.mu.Unlock()
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	raw := ent.raw
	c.mu.Unlock()
	c.hits.Inc()
	return cloneHits(raw), true
}

// put stores raw (snapshot-owned hits) for key at epoch, evicting from the
// LRU tail past capacity.
func (c *queryCache) put(key string, epoch uint64, raw []Hit) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.epoch = epoch
		ent.raw = raw
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, epoch: epoch, raw: raw})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).key)
	}
	c.size.Set(float64(len(c.entries)))
	c.mu.Unlock()
}

func (c *queryCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// cloneHits materializes caller-owned hits from snapshot-owned ones.
func cloneHits(raw []Hit) []Hit {
	out := make([]Hit, len(raw))
	for i, h := range raw {
		out[i] = Hit{Doc: h.Doc.Clone(), Score: h.Score}
	}
	return out
}

// Cache keys are exact encodings — no hashing, so distinct queries can
// never collide into each other's results. Float parameters are encoded as
// raw IEEE-754 bits.

func textCacheKey(query string, k int) string {
	return "t\x00" + query + "\x00" + strconv.Itoa(k)
}

func hybridCacheKey(query string, concept feature.Vector, alpha float64, k int) string {
	var b strings.Builder
	b.Grow(len(query) + 16 + 8*len(concept))
	b.WriteString("h\x00")
	b.WriteString(query)
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(k))
	b.WriteByte(0)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(alpha))
	b.Write(buf[:])
	for _, f := range concept {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		b.Write(buf[:])
	}
	return b.String()
}

// tokenMemoCap bounds the tokenization memo.
const tokenMemoCap = 256

// tokenMemo caches Tokenize results for repeated query strings. Token
// slices are returned shared and must be treated as read-only — every
// consumer (invIndex.searchWith) only reads them. Eviction drops an
// arbitrary entry: the memo is a small hot-set cache, not an LRU.
type tokenMemo struct {
	mu   sync.Mutex
	m    map[string][]string
	hits *telemetry.Counter
}

func newTokenMemo(reg *telemetry.Registry) *tokenMemo {
	tm := &tokenMemo{m: make(map[string][]string)}
	if reg != nil {
		tm.hits = reg.Counter("docstore.tokens.memo.hits")
	}
	return tm
}

func (tm *tokenMemo) tokenize(query string) []string {
	tm.mu.Lock()
	if toks, ok := tm.m[query]; ok {
		tm.mu.Unlock()
		tm.hits.Inc()
		return toks
	}
	tm.mu.Unlock()
	toks := feature.Tokenize(query)
	tm.mu.Lock()
	if len(tm.m) >= tokenMemoCap {
		for k := range tm.m {
			delete(tm.m, k)
			break
		}
	}
	tm.m[query] = toks
	tm.mu.Unlock()
	return toks
}
