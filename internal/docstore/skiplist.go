package docstore

import "math/rand"

// skiplist is an ordered index over (key int64, id string) pairs, used for
// ingestion-time range scans ("everything newer than t"). Keys are not
// unique; (key, id) is. Deterministic given the seed.
type skiplist struct {
	head   *skipNode
	level  int
	length int
	rng    *rand.Rand
}

const maxSkipLevel = 24

type skipNode struct {
	key  int64
	id   string
	next []*skipNode
}

func newSkiplist(seed int64) *skiplist {
	return &skiplist{
		head: &skipNode{next: make([]*skipNode, maxSkipLevel)},
		rng:  rand.New(rand.NewSource(seed)),
	}
}

func (s *skiplist) len() int { return s.length }

// less orders by key then id.
func skipLess(k1 int64, id1 string, k2 int64, id2 string) bool {
	if k1 != k2 {
		return k1 < k2
	}
	return id1 < id2
}

func (s *skiplist) randomLevel() int {
	lvl := 1
	for lvl < maxSkipLevel && s.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// insert adds (key, id). Duplicate (key, id) pairs are ignored.
func (s *skiplist) insert(key int64, id string) {
	update := make([]*skipNode, maxSkipLevel)
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && skipLess(x.next[i].key, x.next[i].id, key, id) {
			x = x.next[i]
		}
		update[i] = x
	}
	if s.level > 0 {
		if n := update[0].next[0]; n != nil && n.key == key && n.id == id {
			return
		}
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = s.head
		}
		s.level = lvl
	}
	node := &skipNode{key: key, id: id, next: make([]*skipNode, lvl)}
	for i := 0; i < lvl; i++ {
		node.next[i] = update[i].next[i]
		update[i].next[i] = node
	}
	s.length++
}

// remove deletes (key, id); it reports whether the pair existed.
func (s *skiplist) remove(key int64, id string) bool {
	update := make([]*skipNode, maxSkipLevel)
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && skipLess(x.next[i].key, x.next[i].id, key, id) {
			x = x.next[i]
		}
		update[i] = x
	}
	var target *skipNode
	if s.level > 0 {
		target = update[0].next[0]
	}
	if target == nil || target.key != key || target.id != id {
		return false
	}
	for i := 0; i < s.level; i++ {
		if update[i].next[i] == target {
			update[i].next[i] = target.next[i]
		}
	}
	for s.level > 0 && s.head.next[s.level-1] == nil {
		s.level--
	}
	s.length--
	return true
}

// clone returns a structurally identical copy for a snapshot freeze: node
// levels are preserved (so scan costs match), nothing is shared with the
// original, and the clone carries no rng — frozen lists are never inserted
// into.
func (s *skiplist) clone() *skiplist {
	cp := &skiplist{
		head:   &skipNode{next: make([]*skipNode, maxSkipLevel)},
		level:  s.level,
		length: s.length,
	}
	tails := make([]*skipNode, maxSkipLevel)
	for i := range tails {
		tails[i] = cp.head
	}
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		node := &skipNode{key: n.key, id: n.id, next: make([]*skipNode, len(n.next))}
		for i := range n.next {
			tails[i].next[i] = node
			tails[i] = node
		}
	}
	return cp
}

// scanRange visits ids with key in [from, to] in ascending order, stopping
// early if visit returns false.
func (s *skiplist) scanRange(from, to int64, visit func(key int64, id string) bool) {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < from {
			x = x.next[i]
		}
	}
	for n := x.next[0]; n != nil && n.key <= to; n = n.next[0] {
		if !visit(n.key, n.id) {
			return
		}
	}
}

// scanDescending visits ids with key <= max in descending key order. It
// materializes the ascending walk (skiplists have no back pointers); callers
// use it for "freshest first" with bounded counts.
func (s *skiplist) scanDescending(max int64, limit int, visit func(key int64, id string) bool) {
	type entry struct {
		key int64
		id  string
	}
	var all []entry
	s.scanRange(-1<<63, max, func(k int64, id string) bool {
		all = append(all, entry{k, id})
		return true
	})
	for i := len(all) - 1; i >= 0; i-- {
		if limit == 0 {
			return
		}
		if !visit(all[i].key, all[i].id) {
			return
		}
		if limit > 0 {
			limit--
		}
	}
}
