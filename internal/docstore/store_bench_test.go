package docstore

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/feature"
)

// The SearchParallel benchmarks measure the tentpole claim of the epoch
// snapshot design: reader latency with a writer churning in the
// background. Each pair runs the same workload two ways —
//
//	BenchmarkSearchParallelN       readers call SearchText directly against
//	                               the published snapshot (lock-free),
//	BenchmarkSearchParallelLockedN the same store wrapped in an external
//	                               sync.RWMutex, readers RLock around every
//	                               search and the writer Locks around every
//	                               Put — the coarse reader/writer locking
//	                               the store had before snapshots.
//
// The locked baseline reproduces the convoy the old design suffered: a
// pending writer blocks new RLocks, so every reader behind it pays for
// the whole Put (including the O(n) index maintenance). Both variants run
// with the query cache disabled so the comparison isolates locking, and
// report reader-side p50/p99 per-op latency via ReportMetric; `make
// bench-docstore` archives them into BENCH_docstore.json.

const benchCorpusSize = 2048

// benchVocab is wide (512 terms over 2048 docs) so posting lists stay
// short and a single search is cheap — the selective-query regime where
// read latency is dominated by coordination with the writer, not by
// scoring. A tiny vocabulary would have every query score the whole
// corpus and drown the locking effect being measured.
var benchVocab = func() []string {
	stems := []string{
		"amber", "basalt", "cobalt", "damask", "ember", "fresco",
		"garnet", "harbor", "indigo", "jasper", "kiln", "lattice",
		"marble", "nectar", "obsidian", "pumice",
	}
	var v []string
	for i, s := range stems {
		for j := 0; j < 32; j++ {
			v = append(v, fmt.Sprintf("%s%02d%d", s, j, i))
		}
	}
	return v
}()

// benchQueries are two-term queries so reader results are float-exact
// regardless of accumulation order (IEEE addition of two terms is
// commutative); the determinism tests rely on the same property.
var benchQueries = func() []string {
	var qs []string
	for i := 0; i < 16; i++ {
		qs = append(qs, benchVocab[(i*37)%len(benchVocab)]+" "+benchVocab[(i*53+7)%len(benchVocab)])
	}
	return qs
}()

func benchDoc(r *rand.Rand, i int) *Document {
	w := func() string { return benchVocab[r.Intn(len(benchVocab))] }
	d := &Document{
		ID:         fmt.Sprintf("bench-%04d", i),
		Kind:       KindArticle,
		Title:      w() + " " + w(),
		Text:       w() + " " + w() + " " + w() + " " + w() + " " + w(),
		Topics:     []string{"t" + fmt.Sprint(i%8)},
		CreatedAt:  int64(i),
		Provenance: "bench",
	}
	if i%4 == 0 {
		v := make(feature.Vector, 8)
		for j := range v {
			v[j] = r.Float64()
		}
		d.Concept = v
	}
	return d
}

// newBenchStore builds the durable configuration the TCP node runs: a
// dir-backed WAL fsynced on every Put. That is the configuration where
// coarse locking hurt most — the seed's Put held the store lock across
// the fsync, stalling every concurrent search for the disk round trip.
func newBenchStore(b *testing.B) *Store {
	b.Helper()
	s, err := Open(Options{
		Dir: b.TempDir(), ConceptDim: 8, Seed: 1,
		SyncEveryPut: true, QueryCacheSize: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < benchCorpusSize; i++ {
		if err := s.Put(benchDoc(r, i)); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func quantileNs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds())
}

func benchmarkSearchParallel(b *testing.B, readers int, locked bool) {
	// The store targets multi-core nodes. On a runner with fewer cores
	// than goroutines, the Go scheduler queues the woken writer behind
	// CPU-bound readers for a whole 10ms round-robin, which starves the
	// churn and pushes all reader/writer interleaving into the far tail.
	// Giving every goroutine its own P hands the interleaving to the
	// kernel, which schedules the just-woken writer promptly — the same
	// fine-grained reader/writer overlap an idle multi-core node shows.
	// Both variants of a pair run with the same setting, so the
	// comparison stays apples to apples.
	if procs := readers + 1; runtime.GOMAXPROCS(0) < procs {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	}
	s := newBenchStore(b)
	defer s.Close()
	var rw sync.RWMutex // external wrapper; only the locked variant uses it
	stop := make(chan struct{})
	var writes atomic.Int64
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	// The churn writer free-runs: it writes as fast as the system admits
	// writes. Under the lock that admission is the RWMutex's writer
	// fairness (a pending writer blocks new readers, so reads queue
	// behind every Put, fsync included); under snapshots it is the
	// writer's CPU share, and readers never wait. The reported writes/op
	// makes the realized churn of each variant visible.
	go func() {
		defer writerWG.Done()
		r := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			d := benchDoc(r, r.Intn(benchCorpusSize))
			if locked {
				rw.Lock()
			}
			if err := s.Put(d); err != nil {
				panic(err)
			}
			if locked {
				rw.Unlock()
			}
			writes.Add(1)
		}
	}()

	// Readers free-run: every goroutine issues its next query the moment
	// the previous one returns, so ns/op is the store's actual read
	// throughput under churn and the p50/p99 extras are real per-query
	// latencies. (An earlier revision paced readers on a 2ms think-time
	// loop to keep the CPU unsaturated; with the compiled zero-alloc read
	// path the search itself is the dominant cost again, and pacing only
	// buried it under scheduler sleep/wake noise.)
	perReader := b.N / readers
	if perReader == 0 {
		perReader = 1
	}
	lats := make([][]time.Duration, readers)
	var wg sync.WaitGroup
	b.ResetTimer()
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		lats[ri] = make([]time.Duration, 0, perReader)
		go func(ri int) {
			defer wg.Done()
			for i := 0; i < perReader; i++ {
				q := benchQueries[(ri+i)%len(benchQueries)]
				t0 := time.Now()
				if locked {
					rw.RLock()
				}
				s.SearchText(q, 10)
				if locked {
					rw.RUnlock()
				}
				lats[ri] = append(lats[ri], time.Since(t0))
			}
		}(ri)
	}
	wg.Wait()
	b.StopTimer()
	close(stop)
	writerWG.Wait()

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	b.ReportMetric(quantileNs(all, 0.50), "p50-ns/op")
	b.ReportMetric(quantileNs(all, 0.99), "p99-ns/op")
	b.ReportMetric(float64(writes.Load())/float64(b.N), "writes/op")
}

func BenchmarkSearchParallel1(b *testing.B)        { benchmarkSearchParallel(b, 1, false) }
func BenchmarkSearchParallel4(b *testing.B)        { benchmarkSearchParallel(b, 4, false) }
func BenchmarkSearchParallel16(b *testing.B)       { benchmarkSearchParallel(b, 16, false) }
func BenchmarkSearchParallelLocked1(b *testing.B)  { benchmarkSearchParallel(b, 1, true) }
func BenchmarkSearchParallelLocked4(b *testing.B)  { benchmarkSearchParallel(b, 4, true) }
func BenchmarkSearchParallelLocked16(b *testing.B) { benchmarkSearchParallel(b, 16, true) }

// BenchmarkSearchTextCacheHit measures the generation-tagged result cache
// on a quiet store: after the first execution every iteration is a cache
// hit (a byte-key lookup returning the shared hit slice — no index work,
// no copying, no allocation).
func BenchmarkSearchTextCacheHit(b *testing.B) {
	s, err := Open(Options{ConceptDim: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	r := rand.New(rand.NewSource(42))
	for i := 0; i < benchCorpusSize; i++ {
		if err := s.Put(benchDoc(r, i)); err != nil {
			b.Fatal(err)
		}
	}
	q := benchQueries[0]
	s.SearchText(q, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SearchText(q, 10)
	}
}

// BenchmarkSearchTextCold measures a single-threaded uncached search —
// the raw top-k + snapshot read path without locking effects.
func BenchmarkSearchTextCold(b *testing.B) {
	s := newBenchStore(b)
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SearchText(benchQueries[i%len(benchQueries)], 10)
	}
}
