package docstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Write-ahead log. Record layout:
//
//	op     uint8  (1 = put, 2 = delete)
//	length uint32 (payload bytes)
//	crc32  uint32 (IEEE over op byte + payload)
//	payload [length]byte   (marshalled document for put, raw id for delete)
//
// Recovery replays records in order and stops cleanly at the first torn or
// corrupt record (the tail that a crash may have half-written), truncating
// the log there so subsequent appends are consistent.

const (
	opPut    = 1
	opDelete = 2
)

// ErrCorruptRecord reports a record whose checksum failed mid-log (not at
// the tail), which indicates real corruption rather than a torn write.
var ErrCorruptRecord = errors.New("docstore: corrupt wal record")

type wal struct {
	f    *os.File
	w    *bufio.Writer
	path string
	size int64
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("docstore: opening wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("docstore: stat wal: %w", err)
	}
	return &wal{f: f, w: bufio.NewWriterSize(f, 64<<10), path: path, size: st.Size()}, nil
}

func (l *wal) append(op uint8, payload []byte) error {
	var hdr [9]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:1])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(hdr[5:], crc.Sum32())
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("docstore: wal write: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("docstore: wal write: %w", err)
	}
	l.size += int64(len(hdr)) + int64(len(payload))
	return nil
}

func (l *wal) flush() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("docstore: wal flush: %w", err)
	}
	return nil
}

// sync flushes buffers and fsyncs the file.
func (l *wal) sync() error {
	if err := l.flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("docstore: wal sync: %w", err)
	}
	return nil
}

func (l *wal) close() error {
	if err := l.flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// replayWAL streams records from path, invoking apply per valid record.
// It returns the byte offset of the clean prefix; a torn tail is reported
// via tornTail=true so the caller can truncate.
func replayWAL(path string, apply func(op uint8, payload []byte) error) (clean int64, tornTail bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("docstore: opening wal for replay: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)
	var off int64
	hdr := make([]byte, 9)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if errors.Is(err, io.EOF) {
				return off, false, nil
			}
			// Partial header: torn tail.
			return off, true, nil
		}
		op := hdr[0]
		length := binary.LittleEndian.Uint32(hdr[1:])
		want := binary.LittleEndian.Uint32(hdr[5:])
		if length > wireMaxRecord {
			return off, true, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, true, nil // torn payload
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr[:1])
		crc.Write(payload)
		if crc.Sum32() != want {
			return off, true, nil // corrupt/torn record: stop here
		}
		if op != opPut && op != opDelete {
			return off, true, nil
		}
		if err := apply(op, payload); err != nil {
			return off, false, err
		}
		off += int64(len(hdr)) + int64(length)
	}
}

const wireMaxRecord = 64 << 20

// truncateWAL cuts the log to size, removing a torn tail.
func truncateWAL(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("docstore: truncating wal: %w", err)
	}
	return nil
}

// snapshotPaths returns (snapshot, wal) file paths inside dir.
func snapshotPaths(dir string) (string, string) {
	return filepath.Join(dir, "snapshot.agora"), filepath.Join(dir, "wal.agora")
}
