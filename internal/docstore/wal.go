package docstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Write-ahead log. Record layout:
//
//	op     uint8  (1 = put, 2 = delete)
//	length uint32 (payload bytes)
//	crc32  uint32 (IEEE over op byte + payload)
//	payload [length]byte   (marshalled document for put, raw id for delete)
//
// Recovery replays records in order. A damaged FINAL record is the tail a
// crash may have half-written: recovery stops cleanly before it and the
// caller truncates so subsequent appends are consistent. A damaged record
// with valid log after it is real corruption (a crash cannot produce it in
// an append-only file) and replay fails hard with ErrCorruptRecord rather
// than silently dropping the committed records behind the damage.

const (
	opPut    = 1
	opDelete = 2
)

// ErrCorruptRecord reports a record whose checksum failed mid-log (not at
// the tail), which indicates real corruption rather than a torn write.
var ErrCorruptRecord = errors.New("docstore: corrupt wal record")

type wal struct {
	f    *os.File
	w    *bufio.Writer
	path string
	size int64
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("docstore: opening wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("docstore: stat wal: %w", err)
	}
	return &wal{f: f, w: bufio.NewWriterSize(f, 64<<10), path: path, size: st.Size()}, nil
}

func (l *wal) append(op uint8, payload []byte) error {
	var hdr [9]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:1])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(hdr[5:], crc.Sum32())
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("docstore: wal write: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("docstore: wal write: %w", err)
	}
	l.size += int64(len(hdr)) + int64(len(payload))
	return nil
}

func (l *wal) flush() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("docstore: wal flush: %w", err)
	}
	return nil
}

// sync flushes buffers and fsyncs the file.
func (l *wal) sync() error {
	if err := l.flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("docstore: wal sync: %w", err)
	}
	return nil
}

func (l *wal) close() error {
	if err := l.flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// replayWAL streams records from path, invoking apply per valid record.
// It returns the byte offset of the clean prefix; a torn tail is reported
// via tornTail=true so the caller can truncate.
//
// Torn vs corrupt: an append-only log half-written by a crash can only be
// damaged in its FINAL record, so a bad record with nothing after it is a
// torn tail — recover the clean prefix and truncate. A record that fails
// its checksum (or carries an unknown op) with more log after it cannot be
// a crash artifact; that is real corruption, and silently truncating would
// drop valid acknowledged records behind the damage. That case is a hard
// ErrCorruptRecord so the operator restores from the snapshot instead of
// trusting a store that lost committed history.
//
// The payload buffer is reused across records (grown to the largest record
// seen): apply implementations copy what they keep — unmarshalDocument
// builds fresh strings/slices and the delete path copies the id — so
// recovery allocates O(max record), not O(log).
func replayWAL(path string, apply func(op uint8, payload []byte) error) (clean int64, tornTail bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("docstore: opening wal for replay: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)
	var off int64
	var hdr [9]byte
	var buf []byte
	// atTail reports whether the reader is exhausted — the decider between
	// a torn tail and mid-log corruption.
	atTail := func() bool {
		_, perr := r.Peek(1)
		return perr != nil
	}
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return off, false, nil
			}
			// Partial header: torn tail.
			return off, true, nil
		}
		op := hdr[0]
		length := binary.LittleEndian.Uint32(hdr[1:])
		want := binary.LittleEndian.Uint32(hdr[5:])
		if length > wireMaxRecord {
			// A length no writer produces: garbage header. Torn if the
			// file ends here, corrupt if the log continues underneath.
			if atTail() {
				return off, true, nil
			}
			return off, false, fmt.Errorf("%w: record at offset %d claims %d bytes", ErrCorruptRecord, off, length)
		}
		if int(length) > cap(buf) {
			buf = make([]byte, length)
		}
		payload := buf[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, true, nil // file ends inside the record: torn payload
		}
		crc := crc32.NewIEEE()
		crc.Write(hdr[:1])
		crc.Write(payload)
		if crc.Sum32() != want || (op != opPut && op != opDelete) {
			if atTail() {
				return off, true, nil // damaged final record: torn tail
			}
			return off, false, fmt.Errorf("%w: checksum failure at offset %d with log following", ErrCorruptRecord, off)
		}
		if err := apply(op, payload); err != nil {
			return off, false, err
		}
		off += int64(len(hdr)) + int64(length)
	}
}

const wireMaxRecord = 64 << 20

// truncateWAL cuts the log to size, removing a torn tail.
func truncateWAL(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("docstore: truncating wal: %w", err)
	}
	return nil
}

// snapshotPaths returns (snapshot, wal) file paths inside dir.
func snapshotPaths(dir string) (string, string) {
	return filepath.Join(dir, "snapshot.agora"), filepath.Join(dir, "wal.agora")
}
