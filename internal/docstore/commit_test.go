package docstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// copyFile copies src to dst (no fsync: the copy IS the crash image).
func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		t.Fatal(err)
	}
	if err == nil {
		if werr := os.WriteFile(dst, data, 0o644); werr != nil {
			t.Fatal(werr)
		}
	}
}

// TestDeleteDurabilityMatchesPut pins the bugfix: with SyncEveryPut set,
// a Delete must fsync its commit window exactly like a Put does (the seed
// only flushed deletes, so an acknowledged delete could resurrect after a
// crash). Without the option neither op syncs.
func TestDeleteDurabilityMatchesPut(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := Open(Options{Dir: t.TempDir(), ConceptDim: 4, Seed: 1, SyncEveryPut: true, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	syncs := reg.Counter("docstore.wal.syncs")
	if err := s.Put(doc("d1", "t", "b", 1, nil)); err != nil {
		t.Fatal(err)
	}
	afterPut := syncs.Value()
	if afterPut == 0 {
		t.Fatal("put with SyncEveryPut did not fsync")
	}
	if err := s.Delete("d1"); err != nil {
		t.Fatal(err)
	}
	if got := syncs.Value(); got <= afterPut {
		t.Fatalf("delete with SyncEveryPut did not fsync: syncs %d -> %d", afterPut, got)
	}

	reg2 := telemetry.NewRegistry()
	s2, err := Open(Options{Dir: t.TempDir(), ConceptDim: 4, Seed: 1, Telemetry: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Put(doc("d1", "t", "b", 1, nil)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Delete("d1"); err != nil {
		t.Fatal(err)
	}
	if got := reg2.Counter("docstore.wal.syncs").Value(); got != 0 {
		t.Fatalf("without SyncEveryPut no op should fsync, got %d syncs", got)
	}
}

// TestGroupCommitWALByteIdentical is the determinism contract: the same
// operation sequence produces a byte-identical WAL whether it is committed
// one op per window or batched through PutBatch windows — so replay of a
// group-commit log is indistinguishable from replay of a serialized log.
func TestGroupCommitWALByteIdentical(t *testing.T) {
	mkDocs := func() []*Document {
		r := rand.New(rand.NewSource(7))
		docs := make([]*Document, 60)
		for i := range docs {
			docs[i] = doc(fmt.Sprintf("d%03d", i), fmt.Sprintf("title %d", r.Intn(100)),
				fmt.Sprintf("body %d %d", r.Intn(100), r.Intn(100)), int64(i), nil)
		}
		return docs
	}

	dirA, dirB := t.TempDir(), t.TempDir()
	a, err := Open(Options{Dir: dirA, ConceptDim: 4, Seed: 1, SyncEveryPut: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(Options{Dir: dirB, ConceptDim: 4, Seed: 1, SyncEveryPut: true})
	if err != nil {
		t.Fatal(err)
	}

	// Store A: strictly serialized — one op, one window.
	for _, d := range mkDocs() {
		if err := a.Put(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Delete("d010"); err != nil {
		t.Fatal(err)
	}

	// Store B: the same sequence, puts riding PutBatch windows.
	docs := mkDocs()
	for i := 0; i < len(docs); i += 7 {
		end := i + 7
		if end > len(docs) {
			end = len(docs)
		}
		if err := b.PutBatch(docs[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Delete("d010"); err != nil {
		t.Fatal(err)
	}

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	_, walA := snapshotPaths(dirA)
	_, walB := snapshotPaths(dirB)
	rawA, err := os.ReadFile(walA)
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := os.ReadFile(walB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawA, rawB) {
		t.Fatalf("WALs diverged: serialized %d bytes, batched %d bytes", len(rawA), len(rawB))
	}

	// And both replay to the same state.
	ra, err := Open(Options{Dir: dirA, ConceptDim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	rb, err := Open(Options{Dir: dirB, ConceptDim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	if ra.Len() != rb.Len() || ra.Len() != 59 {
		t.Fatalf("replayed lengths diverged: %d vs %d (want 59)", ra.Len(), rb.Len())
	}
	ra.All(func(d *Document) bool {
		got, err := rb.Get(d.ID)
		if err != nil {
			t.Errorf("batched replay missing %s", d.ID)
			return false
		}
		if got.Title != d.Title || got.Text != d.Text || got.CreatedAt != d.CreatedAt {
			t.Errorf("replayed doc %s diverged", d.ID)
			return false
		}
		return true
	})
}

// TestGroupCommitCrashImage simulates a kill mid-window: while concurrent
// writers run against a SyncEveryPut store, the test images the WAL (a raw
// byte copy, exactly what a crashed machine's disk would hold) and recovers
// from the image. Every op acknowledged before the image was taken must
// survive; a half-written trailing window must truncate cleanly.
func TestGroupCommitCrashImage(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1, SyncEveryPut: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers = 8
	var acked sync.Map // id -> true once the Put returned
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				id := fmt.Sprintf("w%d-%04d", w, i)
				if err := s.Put(doc(id, "t", "crash image body", int64(i), nil)); err != nil {
					t.Error(err)
					return
				}
				acked.Store(id, true)
			}
		}()
	}

	// Let some windows land, then image the store mid-flight.
	time.Sleep(30 * time.Millisecond)
	var ackedAtImage []string
	acked.Range(func(k, _ any) bool {
		ackedAtImage = append(ackedAtImage, k.(string))
		return true
	})
	imageDir := t.TempDir()
	snapPath, walPath := snapshotPaths(dir)
	imgSnap, imgWAL := snapshotPaths(imageDir)
	copyFile(t, snapPath, imgSnap)
	copyFile(t, walPath, imgWAL)
	stop.Store(true)
	wg.Wait()

	r, err := Open(Options{Dir: imageDir, ConceptDim: 4, Seed: 1})
	if err != nil {
		t.Fatalf("recovery from crash image failed: %v", err)
	}
	defer r.Close()
	for _, id := range ackedAtImage {
		if _, err := r.Get(id); err != nil {
			t.Fatalf("acked-before-image record %s lost: %v", id, err)
		}
	}
	if r.Len() < len(ackedAtImage) {
		t.Fatalf("recovered %d < %d acked", r.Len(), len(ackedAtImage))
	}
}

// TestCloseDuringPendingWindow races Close against a crowd of writers:
// every Put must return either nil or ErrClosed (never hang, never a torn
// ack), Close itself returns cleanly, and every nil-acked put survives
// reopen.
func TestCloseDuringPendingWindow(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1, SyncEveryPut: true})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	var acked sync.Map
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				id := fmt.Sprintf("w%d-%04d", w, i)
				err := s.Put(doc(id, "t", "b", int64(i), nil))
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					t.Errorf("put: %v", err)
					return
				}
				acked.Store(id, true)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatalf("close during pending window: %v", err)
	}
	wg.Wait()

	r, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	acked.Range(func(k, _ any) bool {
		if _, err := r.Get(k.(string)); err != nil {
			t.Errorf("acked put %s lost across close: %v", k, err)
			return false
		}
		return true
	})
}

// TestCommitStressWithDeletesAndSearches hammers a live committer from
// many goroutines mixing Put, PutBatch, Delete, and lock-free reads; run
// with -race. Correctness bar: no races, no hangs, final count exact.
func TestCommitStressWithDeletesAndSearches(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), ConceptDim: 8, Seed: 1, SyncEveryPut: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-%03d", w, i)
				switch {
				case i%10 == 9: // batch of three
					batch := []*Document{
						doc(id+"-a", "batch gold", "body", int64(i), nil),
						doc(id+"-b", "batch silver", "body", int64(i), nil),
						doc(id+"-a", "batch gold v2", "body", int64(i+1), nil), // dup id: later wins
					}
					if err := s.PutBatch(batch); err != nil {
						t.Error(err)
						return
					}
					if d, err := s.Get(id + "-a"); err != nil || d.Title != "batch gold v2" {
						t.Errorf("batch visibility: %v %v", d, err)
						return
					}
				default:
					if err := s.Put(doc(id, "gold item", "body text", int64(i), nil)); err != nil {
						t.Error(err)
						return
					}
				}
				if i%5 == 0 {
					s.SearchText("gold", 5)
					s.Freshest(3)
				}
				if i%7 == 6 {
					if err := s.Delete(id); err != nil {
						t.Error(err)
						return
					}
					if err := s.Delete(id); !errors.Is(err, ErrNotFound) {
						t.Errorf("double delete = %v, want ErrNotFound", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	// Per worker: 40 iterations; i%10==9 (4 of them) put 2 unique batch
	// docs each, the other 36 put one doc; i%7==6 deletes its own id (5
	// iterations), but the i==69-style overlap (i both %10==9 and %7==6)
	// never happens below 40 except i=27? (27%10!=9) — compute directly.
	want := 0
	for i := 0; i < perWorker; i++ {
		if i%10 == 9 {
			want += 2 // -a (deduped) and -b
		} else {
			want++
		}
		if i%7 == 6 && i%10 != 9 {
			want-- // deleted its own plain doc
		}
	}
	want *= workers
	if s.Len() != want {
		t.Fatalf("len = %d, want %d", s.Len(), want)
	}
}

// TestWindowPutThenDeleteSameID drives commitWindow directly with a window
// that puts then deletes the same id, plus a delete of a missing id: the
// delete must observe the put sequenced before it inside the same window,
// and the missing-id delete must come back ErrNotFound without a record.
func TestWindowPutThenDeleteSameID(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1, SyncEveryPut: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mk := func(ops []stagedOp) *commitReq {
		return &commitReq{ops: ops, at: time.Now(), done: make(chan struct{})}
	}
	d := doc("x", "t", "b", 1, nil)
	put := mk([]stagedOp{{op: opPut, payload: d.marshal(), doc: d.Clone(), tokens: d.Tokens()}})
	del := mk([]stagedOp{{op: opDelete, payload: []byte("x"), id: "x"}})
	delMissing := mk([]stagedOp{{op: opDelete, payload: []byte("ghost"), id: "ghost"}})
	s.commitWindow([]*commitReq{put, del, delMissing})
	if put.err != nil || del.err != nil {
		t.Fatalf("in-window put/delete errs: %v %v", put.err, del.err)
	}
	if !errors.Is(delMissing.err, ErrNotFound) {
		t.Fatalf("missing-id delete = %v, want ErrNotFound", delMissing.err)
	}
	if _, err := s.Get("x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("x should be deleted by the same window, got %v", err)
	}
}

// TestCompactCrashBetweenSwaps emulates a crash after the snapshot rename
// but before the WAL rewrite: recovery then replays the FULL old WAL over
// the new snapshot file. That replay is a fixed point (for every id the
// last logged op matches the snapshot), so the store must converge to
// identical contents.
func TestCompactCrashBetweenSwaps(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1, SyncEveryPut: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := s.Put(doc(fmt.Sprintf("d%02d", i%10), "t", fmt.Sprintf("version %d", i), int64(i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("d03"); err != nil {
		t.Fatal(err)
	}
	// Preserve the full pre-compaction WAL — the "old" file a crash
	// would leave behind.
	_, walPath := snapshotPaths(dir)
	oldWAL := filepath.Join(t.TempDir(), "old.wal")
	copyFile(t, walPath, oldWAL)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reinstate the old WAL next to the new snapshot: the crash window.
	copyFile(t, oldWAL, walPath)

	r, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1})
	if err != nil {
		t.Fatalf("recovery in the compaction crash window: %v", err)
	}
	defer r.Close()
	if r.Len() != 9 {
		t.Fatalf("len = %d, want 9 (10 ids minus one delete)", r.Len())
	}
	if _, err := r.Get("d03"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted doc resurrected: %v", err)
	}
	for _, id := range []string{"d00", "d09"} {
		d, err := r.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		// The LAST version logged for the id must win.
		want := map[string]string{"d00": "version 20", "d09": "version 29"}[id]
		if d.Text != want {
			t.Fatalf("%s = %q, want %q", id, d.Text, want)
		}
	}
}

// TestPutBatchSemantics pins batch behaviour on both store flavours:
// visibility on return, in-order supersede of duplicate ids, empty-id
// rejection before anything commits, and nil for the empty batch.
func TestPutBatchSemantics(t *testing.T) {
	for _, durable := range []bool{true, false} {
		name := "in-memory"
		opts := Options{ConceptDim: 4, Seed: 1}
		if durable {
			name = "durable"
			opts.Dir = t.TempDir()
			opts.SyncEveryPut = true
		}
		t.Run(name, func(t *testing.T) {
			s, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := s.PutBatch(nil); err != nil {
				t.Fatalf("empty batch: %v", err)
			}
			batch := []*Document{
				doc("a", "first", "b", 1, nil),
				doc("b", "second", "b", 2, nil),
				doc("a", "first revised", "b", 3, nil),
			}
			if err := s.PutBatch(batch); err != nil {
				t.Fatal(err)
			}
			if s.Len() != 2 {
				t.Fatalf("len = %d, want 2", s.Len())
			}
			if d, _ := s.Get("a"); d == nil || d.Title != "first revised" {
				t.Fatalf("later duplicate must win: %+v", d)
			}
			before := s.Len()
			err = s.PutBatch([]*Document{doc("c", "t", "b", 4, nil), doc("", "bad", "b", 5, nil)})
			if !errors.Is(err, ErrEmptyID) {
				t.Fatalf("empty id in batch = %v, want ErrEmptyID", err)
			}
			if s.Len() != before {
				t.Fatal("failed batch must not commit anything")
			}
			if durable {
				// Batch must survive reopen.
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				r, err := Open(opts)
				if err != nil {
					t.Fatal(err)
				}
				defer r.Close()
				if r.Len() != 2 {
					t.Fatalf("replayed len = %d, want 2", r.Len())
				}
			}
		})
	}
}

// TestCompactConcurrentWithWrites keeps writers flowing while compaction
// cycles run both automatically (tiny CompactAfterBytes) and manually, then
// verifies nothing acked was lost across a reopen.
func TestCompactConcurrentWithWrites(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1, SyncEveryPut: true, CompactAfterBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const perWriter = 60
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := s.Put(doc(fmt.Sprintf("w%d-%03d", w, i), "t", "a body long enough to trip compaction regularly", int64(i), nil)); err != nil {
					t.Error(err)
					return
				}
				if i%20 == 19 {
					if err := s.Compact(); err != nil && !errors.Is(err, ErrClosed) {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Options{Dir: dir, ConceptDim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != writers*perWriter {
		t.Fatalf("len = %d, want %d", r.Len(), writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if _, err := r.Get(fmt.Sprintf("w%d-%03d", w, i)); err != nil {
				t.Fatalf("lost w%d-%03d across compaction: %v", w, i, err)
			}
		}
	}
}
