package docstore

import (
	"errors"
	"time"
)

// Group-commit pipeline. The seed write path serialized every writer under
// Store.mu through WAL append, per-put fsync, and even full compaction, so
// ingest throughput was whatever one fsync-at-a-time writer could do. The
// pipeline inverts the discipline: writers stage marshalled records into a
// commit queue and a single committer goroutine drains it in windows,
// appending every staged record and amortizing ONE fsync across all writers
// waiting in the window. Each Put/Delete still returns only after its record
// is durable per Options.SyncEveryPut — the ack is deferred, never the
// durability.
//
// Ordering contract (the repo's determinism contract extended to the write
// path): WAL record order == master apply order == snapshot publish (epoch)
// order == queue arrival order. A window is processed front to back for both
// the append pass and the apply/publish pass, so replaying the log is
// byte-identical to replaying the same operations through a fully serialized
// writer.
//
// Natural batching: the committer never waits for a window to fill. While it
// is fsyncing window N, concurrent writers queue up and become window N+1 —
// under contention windows grow to the number of waiting writers with no
// added latency for the uncontended single-writer case.

// stagedOp is one marshalled write, prepared by the writer goroutine so the
// CPU work (Clone, marshal, tokenize) runs in parallel outside the committer.
type stagedOp struct {
	op      uint8
	payload []byte    // marshalled document (put) or raw id bytes (delete)
	doc     *Document // put: the already-cloned document to install
	tokens  []string  // put: precomputed tokens
	id      string    // delete: target id
	skip    bool      // set by the committer: delete of a dead id, not logged
}

// commitReq is one writer's stake in a window: its ops, the error slot the
// committer fills, and the done channel the writer blocks on. A Put or
// Delete stages exactly one op; PutBatch stages all of its ops in one
// request so the batch rides a single commit window end-to-end.
type commitReq struct {
	ops  []stagedOp
	at   time.Time // enqueue time, for sync-wait/commit-latency telemetry
	err  error
	done chan struct{}
}

// maxCommitWindow bounds how many staged ops one window may carry so a
// steady flood of writers cannot starve the ack of the window's first
// waiter. A single oversized PutBatch still commits as one window.
const maxCommitWindow = 1024

// commitQueueDepth is the staging channel's buffer; writers beyond it block
// in submit (backpressure), which is the admission control.
const commitQueueDepth = 256

// startCommitter launches the committer goroutine. Only durable stores run
// one: an in-memory store has no WAL to amortize, so its writers apply
// inline under Store.mu (see Put). The goroutine is join-tracked by
// committerWG and joined in Close.
func (s *Store) startCommitter() {
	s.commits = make(chan *commitReq, commitQueueDepth)
	s.committerWG.Add(1)
	go func() {
		defer s.committerWG.Done()
		s.commitLoop()
	}()
}

// submit hands a request to the committer and blocks until its window is
// durable and published. The closeMu read-lock makes the closed check and
// the channel send atomic with respect to Close, which takes the write lock
// before closing the channel — so a send on a closed channel cannot happen.
func (s *Store) submit(req *commitReq) error {
	s.closeMu.RLock()
	if s.closed.Load() {
		s.closeMu.RUnlock()
		return ErrClosed
	}
	s.commits <- req
	s.closeMu.RUnlock()
	<-req.done
	return req.err
}

// commitLoop drains the staging queue window by window until the channel is
// closed (Close drains every already-queued request before the loop exits,
// so no writer is ever left blocked on done).
func (s *Store) commitLoop() {
	for first := range s.commits {
		window := make([]*commitReq, 1, 8)
		window[0] = first
		n := len(first.ops)
	fill:
		for n < maxCommitWindow {
			select {
			case r, ok := <-s.commits:
				if !ok {
					break fill
				}
				window = append(window, r)
				n += len(r.ops)
			default:
				break fill
			}
		}
		s.commitWindow(window)
	}
}

// commitWindow appends every staged record in arrival order, makes the
// window durable with one flush/fsync, then applies and publishes each op in
// the same order before acking all waiters. Holding Store.mu across the
// window keeps the log, the master state, and the published snapshot
// mutually consistent (compaction pins exactly that consistency point).
func (s *Store) commitWindow(window []*commitReq) {
	s.mu.Lock()
	var wErr error
	staged := 0
	// winLive tracks liveness of ids touched earlier in this same window,
	// so a Delete sequenced after a Put of the same id in one window
	// resolves exactly as it would under a serialized writer.
	var winLive map[string]bool
	for _, req := range window {
		for i := range req.ops {
			op := &req.ops[i]
			if op.op == opDelete {
				alive, seen := winLive[op.id]
				if !seen {
					_, alive = s.master.docs[op.id]
				}
				if !alive {
					op.skip = true
					req.err = ErrNotFound
					continue
				}
			}
			if wErr != nil {
				continue
			}
			if wErr = s.log.append(op.op, op.payload); wErr != nil {
				continue
			}
			staged++
			if winLive == nil {
				winLive = make(map[string]bool, 8)
			}
			if op.op == opPut {
				winLive[op.doc.ID] = true
			} else {
				winLive[op.id] = false
			}
		}
	}
	if wErr == nil && staged > 0 {
		if s.opts.SyncEveryPut {
			if wErr = s.log.sync(); wErr == nil {
				s.tel.walSyncs.Inc()
			}
		} else {
			wErr = s.log.flush()
		}
	}
	if wErr == nil {
		// Apply every op to the master in WAL order, then publish the whole
		// window as ONE epoch: the publish amortizes its overlay clone across
		// the window just as the fsync above amortizes the disk round trip.
		// The window becomes visible atomically, after it is durable.
		for _, req := range window {
			for i := range req.ops {
				op := &req.ops[i]
				if op.skip {
					continue
				}
				if op.op == opPut {
					s.master.applyPut(op.doc, op.tokens)
					s.puts.Add(1)
					s.tel.puts.Inc()
				} else {
					s.master.applyDelete(op.id)
					s.deletes.Add(1)
					s.tel.deletes.Inc()
				}
			}
		}
		s.publishWindowLocked(window)
		s.walBytes.Store(s.log.size)
		s.maybeCompactLocked()
	}
	s.mu.Unlock()
	s.tel.walWindows.Inc()
	s.tel.walGroupSize.Add(uint64(staged))
	now := time.Now()
	for _, req := range window {
		if req.err == nil {
			req.err = wErr
		}
		wait := now.Sub(req.at)
		s.tel.walSyncWaitUs.Add(uint64(wait.Microseconds()))
		s.tel.commitLat.Observe(wait)
		close(req.done)
	}
}

// maybeCompactLocked fires the background compactor when the WAL has
// outgrown its budget. Compaction runs off the writer critical path: the
// goroutine builds the replacement snapshot from an immutable epoch snapshot
// and takes Store.mu only to pin the start point and to swap files at the
// end. Join-tracked by compactWG, joined in Close; at most one compaction
// runs at a time (the compacting flag).
func (s *Store) maybeCompactLocked() {
	if s.opts.CompactAfterBytes <= 0 || s.log.size <= s.opts.CompactAfterBytes {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		defer s.compacting.Store(false)
		// Loop until the WAL is back under budget: writes landing while a
		// cycle builds can leave the tail over the line with no further
		// commit window around to retrigger.
		for {
			if err := s.compactOnce(); err != nil {
				if !errors.Is(err, ErrClosed) {
					// Background failure must stay visible: the counter
					// feeds the debug endpoints.
					s.tel.compactErrors.Inc()
				}
				return
			}
			s.mu.Lock()
			again := !s.closed.Load() && s.log != nil && s.log.size > s.opts.CompactAfterBytes
			s.mu.Unlock()
			if !again {
				return
			}
		}
	}()
}
