package docstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/feature"
	"repro/internal/telemetry"
)

// Options configures a Store.
type Options struct {
	// Dir is the durability directory. Empty means a purely in-memory
	// store (used by simulations, which create hundreds of them).
	Dir string
	// ConceptDim is the dimensionality of document concept vectors; the
	// LSH index requires it up front.
	ConceptDim int
	// LSHTables and LSHBits tune the vector index. Zero values pick
	// sensible defaults.
	LSHTables int
	LSHBits   int
	// Seed drives index randomness (LSH hyperplanes, skiplist levels).
	Seed int64
	// SyncEveryPut makes every Put/Delete/PutBatch durable before it
	// returns: the commit pipeline fsyncs each window, so N writers
	// waiting in one window share a single fsync (group commit) but each
	// still only gets its ack after its record is on disk. Simulations
	// leave it false (flush, no fsync); the TCP node sets it.
	SyncEveryPut bool
	// CompactAfterBytes triggers automatic snapshot+truncate once the WAL
	// exceeds this size. Zero disables auto-compaction.
	CompactAfterBytes int64
	// QueryCacheSize bounds the generation-tagged query-result cache
	// fronting SearchText/SearchHybrid. Zero picks the default (128
	// entries); negative disables caching entirely.
	QueryCacheSize int
	// Telemetry receives per-operation latency histograms and counters
	// (docstore.put, docstore.search.*, docstore.compact, WAL replay,
	// docstore.epoch, docstore.cache.*, and the group-commit pipeline's
	// docstore.wal.{syncs,windows,group_size,sync_wait_us} counters plus
	// the docstore.commit latency histogram). Nil disables
	// instrumentation.
	Telemetry *telemetry.Registry
}

// storeTel caches resolved instruments; with a nil registry every field is
// nil and each call site degrades to a nil-receiver no-op.
type storeTel struct {
	puts, deletes, searches, walRecords, freezes                *telemetry.Counter
	walSyncs, walWindows, walGroupSize, walSyncWaitUs           *telemetry.Counter
	compactErrors                                               *telemetry.Counter
	epoch                                                       *telemetry.Gauge
	putLat, deleteLat, textLat, vectorLat, visualLat, hybridLat *telemetry.Histogram
	compactLat, replayLat, commitLat                            *telemetry.Histogram
}

func newStoreTel(reg *telemetry.Registry) storeTel {
	if reg == nil {
		return storeTel{}
	}
	return storeTel{
		puts:       reg.Counter("docstore.puts"),
		deletes:    reg.Counter("docstore.deletes"),
		searches:   reg.Counter("docstore.searches"),
		walRecords: reg.Counter("docstore.wal.records.replayed"),
		freezes:    reg.Counter("docstore.snapshot.freezes"),
		// Group-commit pipeline: fsyncs issued, commit windows closed, and
		// records committed across all windows — mean window size is
		// group_size / windows, fsync amortization is puts+deletes / syncs.
		walSyncs:      reg.Counter("docstore.wal.syncs"),
		walWindows:    reg.Counter("docstore.wal.windows"),
		walGroupSize:  reg.Counter("docstore.wal.group_size"),
		walSyncWaitUs: reg.Counter("docstore.wal.sync_wait_us"),
		compactErrors: reg.Counter("docstore.compact.errors"),
		epoch:         reg.Gauge("docstore.epoch"),
		putLat:        reg.Histogram("docstore.put"),
		deleteLat:     reg.Histogram("docstore.delete"),
		textLat:       reg.Histogram("docstore.search.text"),
		vectorLat:     reg.Histogram("docstore.search.vector"),
		visualLat:     reg.Histogram("docstore.search.visual"),
		hybridLat:     reg.Histogram("docstore.search.hybrid"),
		compactLat:    reg.Histogram("docstore.compact"),
		replayLat:     reg.Histogram("docstore.wal.replay"),
		commitLat:     reg.Histogram("docstore.commit"),
	}
}

// Store errors.
var (
	ErrNotFound = errors.New("docstore: document not found")
	ErrClosed   = errors.New("docstore: store closed")
	ErrEmptyID  = errors.New("docstore: empty document id")
)

// Store is a durable, indexed document store. All methods are safe for
// concurrent use. Durable writers (Put/Delete/PutBatch with a Dir) stage
// marshalled records into the group-commit pipeline (commit.go): a single
// committer goroutine batches WAL appends and amortizes one fsync across
// every writer waiting in the window, then applies and publishes each op in
// arrival order. In-memory writers apply inline under mu. Every read method
// loads the published epoch snapshot and runs lock-free, so searches never
// block writers and never take the store lock (a contract enforced by
// agoralint's lockfree analyzer — see snapshot.go for the epoch/overlay
// design).
type Store struct {
	mu     sync.Mutex // serializes mutation of master/log/snapshot publish; never taken on the read path
	opts   Options
	master *state // mutable truth, guarded by mu
	log    *wal   // guarded by mu
	tel    storeTel

	snap   atomic.Pointer[snapshot]
	cache  *queryCache
	tokens *tokenMemo

	// Group-commit pipeline (durable stores only; nil commits means
	// in-memory inline writes). closeMu makes the closed-check + channel
	// send in submit atomic against Close closing the channel.
	commits     chan *commitReq
	closeMu     sync.RWMutex
	committerWG sync.WaitGroup
	compactWG   sync.WaitGroup
	compacting  atomic.Bool

	closed   atomic.Bool
	puts     atomic.Uint64
	deletes  atomic.Uint64
	searches atomic.Uint64
	walBytes atomic.Int64
	// Block-max effectiveness counters: postings blocks decoded vs skipped
	// (proven unable to reach the top-k threshold) across all text searches.
	blocksDecoded atomic.Uint64
	blocksSkipped atomic.Uint64
}

// Open creates or recovers a store. With a Dir, it replays the snapshot and
// WAL, truncating any torn tail left by a crash.
func Open(opts Options) (*Store, error) {
	if opts.ConceptDim <= 0 {
		opts.ConceptDim = 64
	}
	if opts.LSHTables <= 0 {
		opts.LSHTables = 6
	}
	if opts.LSHBits <= 0 {
		opts.LSHBits = 10
	}
	s := &Store{
		opts:   opts,
		master: newState(opts),
		tel:    newStoreTel(opts.Telemetry),
		cache:  newQueryCache(opts.QueryCacheSize, opts.Telemetry),
		tokens: newTokenMemo(opts.Telemetry),
	}
	if opts.Dir == "" {
		s.installLocked(&snapshot{epoch: 1, base: s.master.freeze(), ov: &overlay{}})
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("docstore: creating dir: %w", err)
	}
	snapPath, walPath := snapshotPaths(opts.Dir)
	apply := func(op uint8, payload []byte) error {
		s.tel.walRecords.Inc()
		switch op {
		case opPut:
			d, err := unmarshalDocument(payload)
			if err != nil {
				return err
			}
			s.master.applyPut(d, d.Tokens())
		case opDelete:
			s.master.applyDelete(string(payload))
		}
		return nil
	}
	replayStart := time.Now()
	// Snapshot files carry a versioned header. The compiled (v2) format
	// loads postings blocks directly — no per-document re-tokenization;
	// legacy snapshots (WAL-format record streams) replay as before.
	loaded, err := loadSnapshotFile(snapPath, s.master)
	if err != nil {
		return nil, err
	}
	if !loaded {
		if _, _, err := replayWAL(snapPath, apply); err != nil {
			return nil, err
		}
	}
	clean, torn, err := replayWAL(walPath, apply)
	if err != nil {
		return nil, err
	}
	s.tel.replayLat.Observe(time.Since(replayStart))
	if torn {
		if err := truncateWAL(walPath, clean); err != nil {
			return nil, err
		}
	}
	s.log, err = openWAL(walPath)
	if err != nil {
		return nil, err
	}
	s.walBytes.Store(s.log.size)
	// One publish for the whole replay: per-record publishing would make
	// recovery O(n) snapshot churn for nothing.
	s.installLocked(&snapshot{epoch: 1, base: s.master.freeze(), ov: &overlay{}})
	s.startCommitter()
	return s, nil
}

// installLocked stamps the snapshot with the master's current counts and
// publishes it. Callers hold mu (or are inside Open before the store
// escapes).
func (s *Store) installLocked(sn *snapshot) {
	sn.docCount = len(s.master.docs)
	sn.termCount = s.master.inv.termCount()
	sn.visualCount = s.master.visuals
	s.snap.Store(sn)
	s.tel.epoch.Set(float64(sn.epoch))
}

// freezeLocked publishes a fresh deep-cloned base with an empty overlay —
// the coalescing point that keeps overlays small.
func (s *Store) freezeLocked(epoch uint64) {
	s.tel.freezes.Inc()
	s.installLocked(&snapshot{epoch: epoch, base: s.master.freeze(), ov: &overlay{}})
}

// publishPutLocked extends the overlay with d, or freezes when the overlay
// has reached its coalescing limit.
func (s *Store) publishPutLocked(d *Document, tokens []string) {
	cur := s.snap.Load()
	if cur.ov.ops >= overlayLimit(len(cur.base.docs)) {
		s.freezeLocked(cur.epoch + 1)
		return
	}
	_, inBase := cur.base.docs[d.ID]
	var sigs []uint64
	if len(d.Concept) > 0 {
		sigs = s.master.vec.Signatures(d.Concept)
	}
	s.installLocked(&snapshot{
		epoch: cur.epoch + 1,
		base:  cur.base,
		ov:    cur.ov.withPut(d, tokens, sigs, inBase, cur.base.cx),
	})
}

// publishWindowLocked publishes one epoch covering every non-skipped op of a
// commit window, folded into a single overlay clone in WAL order. This is the
// group-commit amortization applied to publication: per-op publishing pays an
// O(overlay) deep copy per write, the window pays it once — O(overlay+window)
// — exactly as the window pays one fsync. The master must already hold every
// op (apply precedes publish), so when the window pushes the overlay past its
// coalescing limit, freezing the master covers the whole window.
func (s *Store) publishWindowLocked(window []*commitReq) {
	cur := s.snap.Load()
	n := 0
	for _, req := range window {
		for i := range req.ops {
			if !req.ops[i].skip {
				n++
			}
		}
	}
	if n == 0 {
		return
	}
	if cur.ov.ops+n > overlayLimit(len(cur.base.docs)) {
		s.freezeLocked(cur.epoch + 1)
		return
	}
	nv := cur.ov.cloneNextN(n)
	for _, req := range window {
		for i := range req.ops {
			op := &req.ops[i]
			if op.skip {
				continue
			}
			if op.op == opPut {
				_, inBase := cur.base.docs[op.doc.ID]
				var sigs []uint64
				if len(op.doc.Concept) > 0 {
					sigs = s.master.vec.Signatures(op.doc.Concept)
				}
				nv.putDoc(op.doc, op.tokens, sigs, inBase, cur.base.cx)
			} else {
				_, inBase := cur.base.docs[op.id]
				nv.deleteDoc(op.id, inBase, cur.base.cx)
			}
		}
	}
	s.installLocked(&snapshot{epoch: cur.epoch + 1, base: cur.base, ov: nv})
}

func (s *Store) publishDeleteLocked(id string) {
	cur := s.snap.Load()
	if cur.ov.ops >= overlayLimit(len(cur.base.docs)) {
		s.freezeLocked(cur.epoch + 1)
		return
	}
	_, inBase := cur.base.docs[id]
	s.installLocked(&snapshot{
		epoch: cur.epoch + 1,
		base:  cur.base,
		ov:    cur.ov.withDelete(id, inBase, cur.base.cx),
	})
}

// Put stores (or replaces) a document durably. On a durable store the write
// rides the group-commit pipeline: marshalling and tokenizing run here, in
// the caller's goroutine, and the call returns once the committer has made
// the record durable (fsynced when Options.SyncEveryPut) and published it.
func (s *Store) Put(d *Document) error {
	if d.ID == "" {
		return ErrEmptyID
	}
	start := time.Now()
	cp := d.Clone()
	tokens := cp.Tokens()
	if s.commits == nil { // in-memory: no WAL to amortize, apply inline
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed.Load() {
			return ErrClosed
		}
		s.master.applyPut(cp, tokens)
		s.publishPutLocked(cp, tokens)
		s.puts.Add(1)
		s.tel.puts.Inc()
		s.tel.putLat.Observe(time.Since(start))
		return nil
	}
	err := s.submit(&commitReq{
		ops:  []stagedOp{{op: opPut, payload: cp.marshal(), doc: cp, tokens: tokens}},
		at:   start,
		done: make(chan struct{}),
	})
	s.tel.putLat.Observe(time.Since(start))
	return err
}

// PutBatch stores a batch of documents durably. The whole batch is staged as
// one commit request, so it rides a single commit window end-to-end: one WAL
// append run, one fsync (per Options), and in-order publication — later
// documents in the batch supersede earlier ones with the same id, exactly as
// sequential Puts would. An empty-id document fails the batch up front,
// before anything is staged.
func (s *Store) PutBatch(docs []*Document) error {
	for _, d := range docs {
		if d.ID == "" {
			return ErrEmptyID
		}
	}
	if len(docs) == 0 {
		return nil
	}
	start := time.Now()
	ops := make([]stagedOp, len(docs))
	for i, d := range docs {
		cp := d.Clone()
		ops[i] = stagedOp{op: opPut, payload: cp.marshal(), doc: cp, tokens: cp.Tokens()}
	}
	if s.commits == nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed.Load() {
			return ErrClosed
		}
		for i := range ops {
			s.master.applyPut(ops[i].doc, ops[i].tokens)
			s.publishPutLocked(ops[i].doc, ops[i].tokens)
			s.puts.Add(1)
			s.tel.puts.Inc()
		}
		s.tel.putLat.Observe(time.Since(start))
		return nil
	}
	err := s.submit(&commitReq{ops: ops, at: start, done: make(chan struct{})})
	s.tel.putLat.Observe(time.Since(start))
	return err
}

// Delete removes a document durably. Deleting a missing id is a no-op
// returning ErrNotFound. Durability matches Put exactly: the delete record
// rides the same commit window and is fsynced under Options.SyncEveryPut
// (the seed flushed but never synced deletes, so an acknowledged delete
// could resurrect after a crash).
func (s *Store) Delete(id string) error {
	start := time.Now()
	if s.commits == nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed.Load() {
			return ErrClosed
		}
		if _, ok := s.master.docs[id]; !ok {
			return ErrNotFound
		}
		s.master.applyDelete(id)
		s.publishDeleteLocked(id)
		s.deletes.Add(1)
		s.tel.deletes.Inc()
		s.tel.deleteLat.Observe(time.Since(start))
		return nil
	}
	err := s.submit(&commitReq{
		ops:  []stagedOp{{op: opDelete, payload: []byte(id), id: id}},
		at:   start,
		done: make(chan struct{}),
	})
	s.tel.deleteLat.Observe(time.Since(start))
	return err
}

// Get returns a copy of the document with the given id.
func (s *Store) Get(id string) (*Document, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	d := s.snap.Load().getDoc(id)
	if d == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return d.Clone(), nil
}

// Len returns the number of stored documents.
func (s *Store) Len() int {
	return s.snap.Load().docCount
}

// Epoch returns the current snapshot generation; every Put/Delete bumps it.
// Callers use it to tag derived results that stay valid until the next
// write (the query cache here, the execute memo in internal/core).
func (s *Store) Epoch() uint64 {
	return s.snap.Load().epoch
}

// Hit is a scored search result. Search results share snapshot-owned
// documents: they are immutable and stay valid indefinitely (the snapshot
// they came from is never mutated), but callers must treat them as
// read-only — mutate a copy (Doc.Clone) instead. This is what makes the
// steady-state query path allocation-free.
type Hit struct {
	Doc   *Document
	Score float64
}

// SearchText ranks documents against a free-text query. Results are served
// from the generation-tagged cache when the same (query, k) was answered at
// the current epoch; cache hits do not re-execute (and do not count as a
// search in Stats). Returned hits are read-only (see Hit).
func (s *Store) SearchText(query string, k int) []Hit {
	start := time.Now()
	defer func() { s.tel.textLat.Observe(time.Since(start)) }()
	sn := s.snap.Load()
	sc := getScratch()
	sc.keyBuf = appendTextKey(sc.keyBuf[:0], query, k)
	if hits, ok := s.cache.get(sc.keyBuf, sn.epoch); ok {
		putScratch(sc)
		return hits
	}
	s.countSearch()
	raw := sn.searchTextRaw(s.tokens.tokenize(query), k, sc)
	s.noteSearchStats(&sc.stats)
	s.cache.put(sc.keyBuf, sn.epoch, raw)
	putScratch(sc)
	return raw
}

// SearchTextExhaustive ranks with early termination disabled: every
// candidate is scored through the same accumulation code SearchText uses.
// It exists as the reference for property tests and experiments proving the
// block-max path bit-identical; it bypasses the query cache and is not the
// API to serve queries from.
func (s *Store) SearchTextExhaustive(query string, k int) []Hit {
	sn := s.snap.Load()
	sc := getScratch()
	s.countSearch()
	hits := sn.searchTextExhaustive(s.tokens.tokenize(query), k, sc)
	s.noteSearchStats(&sc.stats)
	putScratch(sc)
	return hits
}

// SearchVector ranks documents by cosine similarity of concept vectors,
// using the LSH index with exact fallback for small stores. Returned hits
// are read-only (see Hit).
func (s *Store) SearchVector(concept feature.Vector, k int) []Hit {
	if concept.Norm() == 0 {
		return nil // a zero vector matches nothing, not everything
	}
	start := time.Now()
	defer func() { s.tel.vectorLat.Observe(time.Since(start)) }()
	s.countSearch()
	sn := s.snap.Load()
	return sn.searchVectorRaw(concept, k)
}

// SearchVisual ranks image-bearing documents by low-level visual
// similarity (color-histogram intersection blended with texture cosine) —
// the "visible features" match of the paper's jewelry scenario. Documents
// without visual features are skipped; when no live document carries any,
// the method returns before building scratch state. Selection is a bounded
// top-k heap, not a full sort.
func (s *Store) SearchVisual(query feature.VisualFeatures, colorWeight float64, k int) []Hit {
	if len(query.ColorHist) == 0 && len(query.Texture) == 0 {
		return nil
	}
	start := time.Now()
	defer func() { s.tel.visualLat.Observe(time.Since(start)) }()
	s.countSearch()
	sn := s.snap.Load()
	if sn.visualCount == 0 {
		return nil
	}
	type vcand struct {
		d     *Document
		score float64
	}
	h := newTopK(k, func(a, b vcand) bool {
		if a.score != b.score {
			return a.score > b.score
		}
		return a.d.ID < b.d.ID
	})
	score := func(d *Document) {
		if !hasVisual(d) {
			return
		}
		h.push(vcand{d: d, score: feature.VisualSimilarity(query, feature.VisualFeatures{
			ColorHist: d.ColorHist, Texture: d.Texture,
		}, colorWeight)})
	}
	for id, d := range sn.base.docs {
		if sn.ov.masked[id] {
			continue
		}
		score(d)
	}
	for _, d := range sn.ov.byID {
		score(d)
	}
	cands := h.sorted()
	hits := make([]Hit, len(cands))
	for i, c := range cands {
		hits[i] = Hit{Doc: c.d, Score: c.score}
	}
	return hits
}

// SearchHybrid blends text and vector scores: score = (1-alpha)*text +
// alpha*vector, where each component is normalized to [0,1] over its own
// candidate pool. This is the compound "feature set" knob experiment E1
// sweeps. Both components read one snapshot, so a hybrid result is
// consistent at a single epoch; like SearchText it is fronted by the
// generation-tagged cache.
func (s *Store) SearchHybrid(query string, concept feature.Vector, alpha float64, k int) []Hit {
	if alpha <= 0 {
		return s.SearchText(query, k)
	}
	if alpha >= 1 {
		return s.SearchVector(concept, k)
	}
	start := time.Now()
	defer func() { s.tel.hybridLat.Observe(time.Since(start)) }()
	sn := s.snap.Load()
	sc := getScratch()
	sc.keyBuf = appendHybridKey(sc.keyBuf[:0], query, concept, alpha, k)
	if hits, ok := s.cache.get(sc.keyBuf, sn.epoch); ok {
		putScratch(sc)
		return hits
	}
	// One hybrid query is one search, even though it consults two indexes.
	s.countSearch()
	// Over-fetch both pools, then blend.
	pool := k * 4
	if pool < 32 {
		pool = 32
	}
	text := sn.searchTextRaw(s.tokens.tokenize(query), pool, sc)
	vec := sn.searchVectorRaw(concept, pool)
	norm := func(hits []Hit) map[string]float64 {
		out := make(map[string]float64, len(hits))
		var max float64
		for _, h := range hits {
			if h.Score > max {
				max = h.Score
			}
		}
		if max == 0 {
			return out
		}
		for _, h := range hits {
			out[h.Doc.ID] = h.Score / max
		}
		return out
	}
	ts, vs := norm(text), norm(vec)
	byID := make(map[string]*Document, len(text)+len(vec))
	for _, h := range text {
		byID[h.Doc.ID] = h.Doc
	}
	for _, h := range vec {
		byID[h.Doc.ID] = h.Doc
	}
	hits := make([]Hit, 0, len(byID))
	for id, d := range byID {
		hits = append(hits, Hit{Doc: d, Score: (1-alpha)*ts[id] + alpha*vs[id]})
	}
	sortHits(hits)
	if len(hits) > k {
		hits = hits[:k]
	}
	s.cache.put(sc.keyBuf, sn.epoch, hits)
	s.noteSearchStats(&sc.stats)
	putScratch(sc)
	return hits
}

// ByTopic returns up to k documents carrying the topic, newest first. It
// walks the time index so old topical documents are found regardless of how
// much newer off-topic content exists.
func (s *Store) ByTopic(topic string, k int) []*Document {
	sn := s.snap.Load()
	if sn.topicCount(topic) == 0 {
		return nil
	}
	var out []*Document
	sn.scanDesc(1<<62, -1, func(_ int64, id string) bool {
		if !sn.hasTopic(id, topic) {
			return true
		}
		if d := sn.getDoc(id); d != nil {
			out = append(out, d.Clone())
		}
		return k <= 0 || len(out) < k
	})
	return out
}

// TopicCount returns how many documents carry the topic.
func (s *Store) TopicCount(topic string) int {
	return s.snap.Load().topicCount(topic)
}

// RecentSince returns documents with CreatedAt in [since, until], ascending.
func (s *Store) RecentSince(since, until int64) []*Document {
	sn := s.snap.Load()
	var out []*Document
	sn.scanAsc(since, until, func(_ int64, id string) bool {
		if d := sn.getDoc(id); d != nil {
			out = append(out, d.Clone())
		}
		return true
	})
	return out
}

// Freshest returns up to k newest documents, newest first.
func (s *Store) Freshest(k int) []*Document {
	sn := s.snap.Load()
	var out []*Document
	sn.scanDesc(1<<62, k, func(_ int64, id string) bool {
		if d := sn.getDoc(id); d != nil {
			out = append(out, d.Clone())
		}
		return true
	})
	return out
}

// All visits every document (copies) in unspecified order.
func (s *Store) All(visit func(*Document) bool) {
	sn := s.snap.Load()
	for id, d := range sn.base.docs {
		if sn.ov.masked[id] {
			continue
		}
		if !visit(d.Clone()) {
			return
		}
	}
	for _, d := range sn.ov.byID {
		if !visit(d.Clone()) {
			return
		}
	}
}

// countSearch bumps both the internal stats counter and telemetry. It is
// lock-free so compound searches can invoke uncounted internals and still
// count themselves exactly once.
func (s *Store) countSearch() {
	s.searches.Add(1)
	s.tel.searches.Inc()
}

// noteSearchStats folds one query's block counters into the store totals.
func (s *Store) noteSearchStats(st *searchStats) {
	if st.blocksDecoded != 0 {
		s.blocksDecoded.Add(st.blocksDecoded)
	}
	if st.blocksSkipped != 0 {
		s.blocksSkipped.Add(st.blocksSkipped)
	}
}

// Compact writes a snapshot of the current state and drops the WAL prefix
// it covers. The build runs off the writer critical path — commit windows
// keep flowing while the snapshot file streams out — and Store.mu is taken
// only to pin the start point and to swap files at the end. Returns nil
// immediately when a (background) compaction is already in flight.
func (s *Store) Compact() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if s.opts.Dir == "" {
		return nil
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return nil
	}
	defer s.compacting.Store(false)
	return s.compactOnce()
}

// compactOnce is one compaction cycle. Correctness hinges on the pin taken
// under mu: the committer appends, applies, and publishes under the same
// lock, so at the pin instant the first `off` logical WAL bytes correspond
// exactly to the published snapshot `sn`. The replacement snapshot file is
// built from `sn` alone (immutable, no lock), and the swap rewrites the WAL
// to just the bytes past `off` — the ops committed while the build ran.
//
// Crash safety between the two renames: if the process dies after the
// snapshot rename but before the WAL rewrite, recovery replays the full old
// WAL on top of the new snapshot file. That is a fixed point — for every id
// the last logged op matches the snapshot's state, and WAL replay applies
// ops in order — so the store converges to the same contents
// (TestCompactCrashBetweenSwaps pins this).
func (s *Store) compactOnce() error {
	start := time.Now()
	defer func() { s.tel.compactLat.Observe(time.Since(start)) }()

	// Phase 1 (under mu): pin the snapshot/WAL consistency point.
	s.mu.Lock()
	if s.closed.Load() || s.log == nil {
		s.mu.Unlock()
		return ErrClosed
	}
	sn := s.snap.Load()
	off := s.log.size
	s.mu.Unlock()

	// Phase 2 (no lock): merge the overlay into the compiled base — by
	// decoding postings blocks, never by re-tokenizing documents — compile
	// the live set, and write it as a v2 snapshot into a temp file.
	snapPath, walPath := snapshotPaths(s.opts.Dir)
	tmp := snapPath + ".tmp"
	merged := mergeLiveSet(sn)
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("docstore: creating snapshot: %w", err)
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	err = writeSnapshotV2(bw, merged)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("docstore: closing snapshot: %w", cerr)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}

	// Phase 3 (under mu): install the snapshot and rewrite the WAL to the
	// tail past the pin. The committer is paused only for this swap.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		os.Remove(tmp)
		return ErrClosed
	}
	if err := s.log.flush(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, snapPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("docstore: installing snapshot: %w", err)
	}
	tailTmp := walPath + ".tail"
	tf, err := os.Create(tailTmp)
	if err != nil {
		return fmt.Errorf("docstore: creating wal tail: %w", err)
	}
	src, err := os.Open(walPath)
	if err != nil {
		tf.Close()
		os.Remove(tailTmp)
		return fmt.Errorf("docstore: reopening wal: %w", err)
	}
	if _, err = src.Seek(off, io.SeekStart); err == nil {
		_, err = io.Copy(tf, src)
	}
	src.Close()
	if err == nil {
		err = tf.Sync()
	}
	if cerr := tf.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tailTmp)
		return fmt.Errorf("docstore: writing wal tail: %w", err)
	}
	if err := s.log.close(); err != nil {
		return err
	}
	if err := os.Rename(tailTmp, walPath); err != nil {
		return fmt.Errorf("docstore: installing wal tail: %w", err)
	}
	s.log, err = openWAL(walPath)
	if err == nil {
		s.walBytes.Store(s.log.size)
	}
	return err
}

// Close flushes and closes the store: it stops admitting writes, drains
// every commit window already queued (each blocked writer gets its ack),
// joins the committer and any in-flight background compaction, then closes
// the WAL.
func (s *Store) Close() error {
	s.closeMu.Lock()
	if s.closed.Load() {
		s.closeMu.Unlock()
		return nil
	}
	s.closed.Store(true)
	if s.commits != nil {
		close(s.commits)
	}
	s.closeMu.Unlock()
	s.committerWG.Wait()
	s.compactWG.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log != nil {
		return s.log.close()
	}
	return nil
}

// Stats reports operation counters and index sizes. BlocksDecoded and
// BlocksSkipped count postings blocks across all text searches; their ratio
// is the block-max early-termination win.
type Stats struct {
	Docs          int
	Terms         int
	Puts          uint64
	Deletes       uint64
	Searches      uint64
	WALBytes      int64
	BlocksDecoded uint64
	BlocksSkipped uint64
}

// Stats returns a snapshot of store statistics, assembled entirely from the
// published snapshot and atomic counters — it never touches the store lock.
// Searches counts executed searches; queries answered from the result cache
// do not re-execute and are visible in docstore.cache.hits instead.
func (s *Store) Stats() Stats {
	sn := s.snap.Load()
	return Stats{
		Docs:          sn.docCount,
		Terms:         sn.termCount,
		Puts:          s.puts.Load(),
		Deletes:       s.deletes.Load(),
		Searches:      s.searches.Load(),
		WALBytes:      s.walBytes.Load(),
		BlocksDecoded: s.blocksDecoded.Load(),
		BlocksSkipped: s.blocksSkipped.Load(),
	}
}

func sortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc.ID < hits[j].Doc.ID
	})
}
