package docstore

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/feature"
	"repro/internal/telemetry"
)

// Options configures a Store.
type Options struct {
	// Dir is the durability directory. Empty means a purely in-memory
	// store (used by simulations, which create hundreds of them).
	Dir string
	// ConceptDim is the dimensionality of document concept vectors; the
	// LSH index requires it up front.
	ConceptDim int
	// LSHTables and LSHBits tune the vector index. Zero values pick
	// sensible defaults.
	LSHTables int
	LSHBits   int
	// Seed drives index randomness (LSH hyperplanes, skiplist levels).
	Seed int64
	// SyncEveryPut fsyncs the WAL after each Put/Delete when true.
	// Simulations leave it false; the TCP node sets it.
	SyncEveryPut bool
	// CompactAfterBytes triggers automatic snapshot+truncate once the WAL
	// exceeds this size. Zero disables auto-compaction.
	CompactAfterBytes int64
	// Telemetry receives per-operation latency histograms and counters
	// (docstore.put, docstore.search.*, docstore.compact, WAL replay).
	// Nil disables instrumentation.
	Telemetry *telemetry.Registry
}

// storeTel caches resolved instruments; with a nil registry every field is
// nil and each call site degrades to a nil-receiver no-op.
type storeTel struct {
	puts, deletes, searches, walRecords                         *telemetry.Counter
	putLat, deleteLat, textLat, vectorLat, visualLat, hybridLat *telemetry.Histogram
	compactLat, replayLat                                       *telemetry.Histogram
}

func newStoreTel(reg *telemetry.Registry) storeTel {
	if reg == nil {
		return storeTel{}
	}
	return storeTel{
		puts:       reg.Counter("docstore.puts"),
		deletes:    reg.Counter("docstore.deletes"),
		searches:   reg.Counter("docstore.searches"),
		walRecords: reg.Counter("docstore.wal.records.replayed"),
		putLat:     reg.Histogram("docstore.put"),
		deleteLat:  reg.Histogram("docstore.delete"),
		textLat:    reg.Histogram("docstore.search.text"),
		vectorLat:  reg.Histogram("docstore.search.vector"),
		visualLat:  reg.Histogram("docstore.search.visual"),
		hybridLat:  reg.Histogram("docstore.search.hybrid"),
		compactLat: reg.Histogram("docstore.compact"),
		replayLat:  reg.Histogram("docstore.wal.replay"),
	}
}

// Store errors.
var (
	ErrNotFound = errors.New("docstore: document not found")
	ErrClosed   = errors.New("docstore: store closed")
	ErrEmptyID  = errors.New("docstore: empty document id")
)

// Store is a durable, indexed document store. All methods are safe for
// concurrent use.
type Store struct {
	mu      sync.RWMutex
	opts    Options
	docs    map[string]*Document
	inv     *invIndex
	vec     *feature.LSH
	byTime  *skiplist
	byTopic map[string]map[string]bool
	log     *wal
	closed  bool
	tel     storeTel

	// Stats counters. puts/deletes are guarded by mu; searches is atomic
	// so read-path counting never contends on the write lock.
	puts, deletes uint64
	searches      atomic.Uint64
}

// Open creates or recovers a store. With a Dir, it replays the snapshot and
// WAL, truncating any torn tail left by a crash.
func Open(opts Options) (*Store, error) {
	if opts.ConceptDim <= 0 {
		opts.ConceptDim = 64
	}
	if opts.LSHTables <= 0 {
		opts.LSHTables = 6
	}
	if opts.LSHBits <= 0 {
		opts.LSHBits = 10
	}
	s := &Store{
		opts:    opts,
		docs:    make(map[string]*Document),
		inv:     newInvIndex(),
		vec:     feature.NewLSH(opts.Seed, opts.ConceptDim, opts.LSHTables, opts.LSHBits),
		byTime:  newSkiplist(opts.Seed + 1),
		byTopic: make(map[string]map[string]bool),
		tel:     newStoreTel(opts.Telemetry),
	}
	if opts.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("docstore: creating dir: %w", err)
	}
	snapPath, walPath := snapshotPaths(opts.Dir)
	apply := func(op uint8, payload []byte) error {
		s.tel.walRecords.Inc()
		switch op {
		case opPut:
			d, err := unmarshalDocument(payload)
			if err != nil {
				return err
			}
			s.applyPut(d)
		case opDelete:
			s.applyDelete(string(payload))
		}
		return nil
	}
	replayStart := time.Now()
	if _, _, err := replayWAL(snapPath, apply); err != nil {
		return nil, err
	}
	clean, torn, err := replayWAL(walPath, apply)
	if err != nil {
		return nil, err
	}
	s.tel.replayLat.Observe(time.Since(replayStart))
	if torn {
		if err := truncateWAL(walPath, clean); err != nil {
			return nil, err
		}
	}
	s.log, err = openWAL(walPath)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// applyPut updates in-memory state only (no WAL).
func (s *Store) applyPut(d *Document) {
	if old, ok := s.docs[d.ID]; ok {
		s.byTime.remove(old.CreatedAt, old.ID)
		s.removeTopics(old)
	}
	s.docs[d.ID] = d
	for _, t := range d.Topics {
		set, ok := s.byTopic[t]
		if !ok {
			set = make(map[string]bool)
			s.byTopic[t] = set
		}
		set[d.ID] = true
	}
	s.inv.add(d.ID, d.Tokens())
	if len(d.Concept) > 0 {
		s.vec.Put(d.ID, d.Concept)
	} else {
		s.vec.Delete(d.ID)
	}
	s.byTime.insert(d.CreatedAt, d.ID)
}

func (s *Store) applyDelete(id string) {
	d, ok := s.docs[id]
	if !ok {
		return
	}
	delete(s.docs, id)
	s.inv.removeDoc(id)
	s.vec.Delete(id)
	s.byTime.remove(d.CreatedAt, id)
	s.removeTopics(d)
}

func (s *Store) removeTopics(d *Document) {
	for _, t := range d.Topics {
		if set, ok := s.byTopic[t]; ok {
			delete(set, d.ID)
			if len(set) == 0 {
				delete(s.byTopic, t)
			}
		}
	}
}

// Put stores (or replaces) a document durably.
func (s *Store) Put(d *Document) error {
	if d.ID == "" {
		return ErrEmptyID
	}
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	cp := d.Clone()
	if s.log != nil {
		if err := s.log.append(opPut, cp.marshal()); err != nil {
			return err
		}
		if s.opts.SyncEveryPut {
			if err := s.log.sync(); err != nil {
				return err
			}
		} else if err := s.log.flush(); err != nil {
			return err
		}
	}
	s.applyPut(cp)
	s.puts++
	s.tel.puts.Inc()
	if s.log != nil && s.opts.CompactAfterBytes > 0 && s.log.size > s.opts.CompactAfterBytes {
		if err := s.compactLocked(); err != nil {
			return err
		}
	}
	s.tel.putLat.Observe(time.Since(start))
	return nil
}

// Delete removes a document durably. Deleting a missing id is a no-op
// returning ErrNotFound.
func (s *Store) Delete(id string) error {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.docs[id]; !ok {
		return ErrNotFound
	}
	if s.log != nil {
		if err := s.log.append(opDelete, []byte(id)); err != nil {
			return err
		}
		if err := s.log.flush(); err != nil {
			return err
		}
	}
	s.applyDelete(id)
	s.deletes++
	s.tel.deletes.Inc()
	s.tel.deleteLat.Observe(time.Since(start))
	return nil
}

// Get returns a copy of the document with the given id.
func (s *Store) Get(id string) (*Document, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	d, ok := s.docs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return d.Clone(), nil
}

// Len returns the number of stored documents.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// Hit is a scored search result.
type Hit struct {
	Doc   *Document
	Score float64
}

// SearchText ranks documents against a free-text query.
func (s *Store) SearchText(query string, k int) []Hit {
	start := time.Now()
	defer func() { s.tel.textLat.Observe(time.Since(start)) }()
	s.countSearch()
	return s.searchText(query, k)
}

// searchText is the uncounted core of SearchText: it takes its own read
// lock but leaves the search counter and latency histograms to the caller,
// so compound searches (hybrid) count as one operation rather than three.
func (s *Store) searchText(query string, k int) []Hit {
	tokens := feature.Tokenize(query)
	s.mu.RLock()
	defer s.mu.RUnlock()
	res := s.inv.search(tokens, k)
	hits := make([]Hit, 0, len(res))
	for _, r := range res {
		if d, ok := s.docs[r.id]; ok {
			hits = append(hits, Hit{Doc: d.Clone(), Score: r.score})
		}
	}
	return hits
}

// SearchVector ranks documents by cosine similarity of concept vectors,
// using the LSH index with exact fallback for small stores.
func (s *Store) SearchVector(concept feature.Vector, k int) []Hit {
	if concept.Norm() == 0 {
		return nil // a zero vector matches nothing, not everything
	}
	start := time.Now()
	defer func() { s.tel.vectorLat.Observe(time.Since(start)) }()
	s.countSearch()
	return s.searchVector(concept, k)
}

// searchVector is the uncounted core of SearchVector; see searchText.
func (s *Store) searchVector(concept feature.Vector, k int) []Hit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var cands []feature.Candidate
	if len(s.docs) <= 256 {
		cands = s.vec.Scan(concept, k)
	} else {
		cands = s.vec.Query(concept, k)
		if len(cands) < k {
			cands = s.vec.Scan(concept, k)
		}
	}
	hits := make([]Hit, 0, len(cands))
	for _, c := range cands {
		if d, ok := s.docs[c.ID]; ok {
			hits = append(hits, Hit{Doc: d.Clone(), Score: c.Score})
		}
	}
	return hits
}

// SearchVisual ranks image-bearing documents by low-level visual
// similarity (color-histogram intersection blended with texture cosine) —
// the "visible features" match of the paper's jewelry scenario. Documents
// without visual features are skipped. The scan is exact: visual queries
// are rarer than concept queries and the candidate set is only the
// image-bearing subset.
func (s *Store) SearchVisual(query feature.VisualFeatures, colorWeight float64, k int) []Hit {
	if len(query.ColorHist) == 0 && len(query.Texture) == 0 {
		return nil
	}
	start := time.Now()
	defer func() { s.tel.visualLat.Observe(time.Since(start)) }()
	s.countSearch()
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Score into a lightweight slice first; cloning every image-bearing
	// document before ranking made each visual query O(n) in deep copies.
	type scored struct {
		d     *Document
		score float64
	}
	cands := make([]scored, 0, 64)
	for _, d := range s.docs {
		if len(d.ColorHist) == 0 && len(d.Texture) == 0 {
			continue
		}
		score := feature.VisualSimilarity(query, feature.VisualFeatures{
			ColorHist: d.ColorHist, Texture: d.Texture,
		}, colorWeight)
		cands = append(cands, scored{d: d, score: score})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].d.ID < cands[j].d.ID
	})
	if k >= 0 && len(cands) > k {
		cands = cands[:k]
	}
	hits := make([]Hit, len(cands))
	for i, c := range cands {
		hits[i] = Hit{Doc: c.d.Clone(), Score: c.score}
	}
	return hits
}

// SearchHybrid blends text and vector scores: score = (1-alpha)*text +
// alpha*vector, where each component is normalized to [0,1] over its own
// candidate pool. This is the compound "feature set" knob experiment E1
// sweeps.
func (s *Store) SearchHybrid(query string, concept feature.Vector, alpha float64, k int) []Hit {
	if alpha <= 0 {
		return s.SearchText(query, k)
	}
	if alpha >= 1 {
		return s.SearchVector(concept, k)
	}
	start := time.Now()
	defer func() { s.tel.hybridLat.Observe(time.Since(start)) }()
	// One hybrid query is one search, even though it consults two indexes.
	s.countSearch()
	// Over-fetch both pools, then blend.
	pool := k * 4
	if pool < 32 {
		pool = 32
	}
	text := s.searchText(query, pool)
	vec := s.searchVector(concept, pool)
	norm := func(hits []Hit) map[string]float64 {
		out := make(map[string]float64, len(hits))
		var max float64
		for _, h := range hits {
			if h.Score > max {
				max = h.Score
			}
		}
		if max == 0 {
			return out
		}
		for _, h := range hits {
			out[h.Doc.ID] = h.Score / max
		}
		return out
	}
	ts, vs := norm(text), norm(vec)
	byID := make(map[string]*Document, len(text)+len(vec))
	for _, h := range text {
		byID[h.Doc.ID] = h.Doc
	}
	for _, h := range vec {
		byID[h.Doc.ID] = h.Doc
	}
	hits := make([]Hit, 0, len(byID))
	for id, d := range byID {
		hits = append(hits, Hit{Doc: d, Score: (1-alpha)*ts[id] + alpha*vs[id]})
	}
	sortHits(hits)
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// ByTopic returns up to k documents carrying the topic, newest first. It
// walks the time index so old topical documents are found regardless of how
// much newer off-topic content exists.
func (s *Store) ByTopic(topic string, k int) []*Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := s.byTopic[topic]
	if len(set) == 0 {
		return nil
	}
	var out []*Document
	s.byTime.scanDescending(1<<62, -1, func(_ int64, id string) bool {
		if !set[id] {
			return true
		}
		if d, ok := s.docs[id]; ok {
			out = append(out, d.Clone())
		}
		return k <= 0 || len(out) < k
	})
	return out
}

// TopicCount returns how many documents carry the topic.
func (s *Store) TopicCount(topic string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byTopic[topic])
}

// RecentSince returns documents with CreatedAt in [since, until], ascending.
func (s *Store) RecentSince(since, until int64) []*Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Document
	s.byTime.scanRange(since, until, func(_ int64, id string) bool {
		if d, ok := s.docs[id]; ok {
			out = append(out, d.Clone())
		}
		return true
	})
	return out
}

// Freshest returns up to k newest documents, newest first.
func (s *Store) Freshest(k int) []*Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Document
	s.byTime.scanDescending(1<<62, k, func(_ int64, id string) bool {
		if d, ok := s.docs[id]; ok {
			out = append(out, d.Clone())
		}
		return true
	})
	return out
}

// All visits every document (copies) in unspecified order.
func (s *Store) All(visit func(*Document) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, d := range s.docs {
		if !visit(d.Clone()) {
			return
		}
	}
}

// countSearch bumps both the internal stats counter and telemetry. It is
// lock-free so compound searches can invoke uncounted internals and still
// count themselves exactly once.
func (s *Store) countSearch() {
	s.searches.Add(1)
	s.tel.searches.Inc()
}

// Compact writes a snapshot of the current state and truncates the WAL.
func (s *Store) Compact() error {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	err := s.compactLocked()
	s.tel.compactLat.Observe(time.Since(start))
	return err
}

func (s *Store) compactLocked() error {
	if s.opts.Dir == "" {
		return nil
	}
	snapPath, walPath := snapshotPaths(s.opts.Dir)
	tmp := snapPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("docstore: creating snapshot: %w", err)
	}
	sw := &wal{f: f, w: bufio.NewWriterSize(f, 64<<10), path: tmp}
	for _, d := range s.docs {
		if err := sw.append(opPut, d.marshal()); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := sw.sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("docstore: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, snapPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("docstore: installing snapshot: %w", err)
	}
	// Reset the WAL.
	if s.log != nil {
		if err := s.log.close(); err != nil {
			return err
		}
	}
	if err := os.Truncate(walPath, 0); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("docstore: truncating wal: %w", err)
	}
	s.log, err = openWAL(walPath)
	return err
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.log != nil {
		return s.log.close()
	}
	return nil
}

// Stats reports operation counters and index sizes.
type Stats struct {
	Docs     int
	Terms    int
	Puts     uint64
	Deletes  uint64
	Searches uint64
	WALBytes int64
}

// Stats returns a snapshot of store statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Docs:     len(s.docs),
		Terms:    s.inv.termCount(),
		Puts:     s.puts,
		Deletes:  s.deletes,
		Searches: s.searches.Load(),
	}
	if s.log != nil {
		st.WALBytes = s.log.size
	}
	return st
}

func sortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc.ID < hits[j].Doc.ID
	})
}
