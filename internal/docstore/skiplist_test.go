package docstore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSkiplistInsertScan(t *testing.T) {
	s := newSkiplist(1)
	keys := []int64{50, 10, 30, 20, 40}
	for _, k := range keys {
		s.insert(k, fmt.Sprintf("id%d", k))
	}
	if s.len() != 5 {
		t.Fatalf("len = %d", s.len())
	}
	var got []int64
	s.scanRange(15, 45, func(k int64, _ string) bool {
		got = append(got, k)
		return true
	})
	want := []int64{20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
}

func TestSkiplistDuplicateKeyDifferentID(t *testing.T) {
	s := newSkiplist(1)
	s.insert(10, "a")
	s.insert(10, "b")
	s.insert(10, "a") // exact duplicate ignored
	if s.len() != 2 {
		t.Fatalf("len = %d, want 2", s.len())
	}
	var ids []string
	s.scanRange(10, 10, func(_ int64, id string) bool {
		ids = append(ids, id)
		return true
	})
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestSkiplistRemove(t *testing.T) {
	s := newSkiplist(1)
	s.insert(1, "a")
	s.insert(2, "b")
	if !s.remove(1, "a") {
		t.Fatal("remove existing failed")
	}
	if s.remove(1, "a") {
		t.Fatal("remove missing succeeded")
	}
	if s.remove(2, "zz") {
		t.Fatal("remove wrong id succeeded")
	}
	if s.len() != 1 {
		t.Fatalf("len = %d", s.len())
	}
}

func TestSkiplistScanEarlyStop(t *testing.T) {
	s := newSkiplist(1)
	for i := 0; i < 100; i++ {
		s.insert(int64(i), fmt.Sprintf("d%d", i))
	}
	n := 0
	s.scanRange(0, 99, func(int64, string) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestSkiplistDescending(t *testing.T) {
	s := newSkiplist(1)
	for i := 1; i <= 10; i++ {
		s.insert(int64(i), fmt.Sprintf("d%d", i))
	}
	var got []int64
	s.scanDescending(7, 3, func(k int64, _ string) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 3 || got[0] != 7 || got[1] != 6 || got[2] != 5 {
		t.Fatalf("descending = %v", got)
	}
}

func TestSkiplistMatchesSortedSliceProperty(t *testing.T) {
	f := func(raw []int16, seed int64) bool {
		s := newSkiplist(seed)
		set := make(map[int64]bool)
		for _, v := range raw {
			k := int64(v)
			s.insert(k, "x")
			set[k] = true
		}
		var want []int64
		for k := range set {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []int64
		s.scanRange(-1<<62, 1<<62, func(k int64, _ string) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSkiplistRandomOps(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	s := newSkiplist(2)
	live := make(map[[2]interface{}]bool)
	for i := 0; i < 5000; i++ {
		k := int64(r.Intn(200))
		id := fmt.Sprintf("id%d", r.Intn(10))
		key := [2]interface{}{k, id}
		if r.Intn(2) == 0 {
			s.insert(k, id)
			live[key] = true
		} else {
			got := s.remove(k, id)
			if got != live[key] {
				t.Fatalf("remove(%d,%s) = %v, want %v", k, id, got, live[key])
			}
			delete(live, key)
		}
	}
	if s.len() != len(live) {
		t.Fatalf("len = %d, want %d", s.len(), len(live))
	}
}
