package docstore

import (
	"encoding/binary"
	"errors"
	"math"
)

// Block-compressed postings codec.
//
// A postings list is split into blocks of at most blockSize entries. Each
// block is self-contained: an interleaved sequence of uvarint pairs
//
//	(gap, tf) (gap, tf) ...
//
// where gap is the delta between consecutive document ordinals plus one
// (the first entry's gap is ord0+1, i.e. the previous ordinal is taken to
// be -1). Gaps are therefore always >= 1 and a zero gap marks corruption.
// Term frequencies are >= 1 for the same reason. Because blocks do not
// reference each other, the search cursor can skip a block without ever
// decoding it — the per-block metadata (last ordinal, entry count, max
// score ratio) lives outside the byte stream in blockMeta.

// blockSize is the maximum number of (ordinal, tf) postings per block.
const blockSize = 128

// ordSentinel is the exhausted-cursor marker; ordinals must stay below it.
const ordSentinel = ^uint32(0)

// postEntry is one decoded posting: document ordinal and term frequency.
type postEntry struct {
	ord uint32
	tf  uint32
}

var (
	errBlockTruncated = errors.New("docstore: truncated postings block")
	errBlockCorrupt   = errors.New("docstore: corrupt postings block")
)

// appendPostingsBlock delta+varint encodes entries (which must be sorted by
// strictly increasing ord, with tf >= 1) onto dst and returns the extended
// slice.
func appendPostingsBlock(dst []byte, entries []postEntry) []byte {
	prev := int64(-1)
	for _, e := range entries {
		gap := int64(e.ord) - prev
		dst = binary.AppendUvarint(dst, uint64(gap))
		dst = binary.AppendUvarint(dst, uint64(e.tf))
		prev = int64(e.ord)
	}
	return dst
}

// decodePostingsBlock reads exactly count (gap, tf) pairs from data into
// ords and tfs (each of length >= count) and returns the number of bytes
// consumed. It validates every invariant the encoder guarantees — gaps and
// tfs nonzero, ordinals strictly increasing and below ordSentinel — so a
// corrupt or truncated stream yields an error, never a panic or a bogus
// posting.
func decodePostingsBlock(data []byte, count int, ords, tfs []uint32) (int, error) {
	if count < 0 || count > len(ords) || count > len(tfs) {
		return 0, errBlockCorrupt
	}
	off := 0
	prev := int64(-1)
	for i := 0; i < count; i++ {
		gap, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, errBlockTruncated
		}
		off += n
		tf, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, errBlockTruncated
		}
		off += n
		if gap == 0 || gap > math.MaxUint32 || tf == 0 || tf > math.MaxUint32 {
			return 0, errBlockCorrupt
		}
		ord := prev + int64(gap)
		if ord >= int64(ordSentinel) {
			return 0, errBlockCorrupt
		}
		ords[i] = uint32(ord)
		tfs[i] = uint32(tf)
		prev = ord
	}
	return off, nil
}
