package docstore

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/feature"
)

func doc(id, title, text string, at int64, concept feature.Vector) *Document {
	return &Document{
		ID: id, Kind: KindArticle, Title: title, Text: text,
		CreatedAt: at, Concept: concept, Provenance: "test",
	}
}

func memStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(Options{ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := memStore(t)
	d := doc("d1", "Gold Ring", "a byzantine gold ring with filigree", 10, feature.Vector{1, 0, 0, 0, 0, 0, 0, 0})
	if err := s.Put(d); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("d1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != "Gold Ring" {
		t.Fatalf("got %+v", got)
	}
	// Returned doc is a copy.
	got.Title = "mutated"
	again, _ := s.Get("d1")
	if again.Title != "Gold Ring" {
		t.Fatal("Get must return a copy")
	}
	if err := s.Delete("d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("d1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Delete("d1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
	if err := s.Put(&Document{}); !errors.Is(err, ErrEmptyID) {
		t.Fatalf("empty id err = %v", err)
	}
}

func TestPutReplaces(t *testing.T) {
	s := memStore(t)
	if err := s.Put(doc("d1", "Old Title about silver", "silver celtic brooch", 5, nil)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(doc("d1", "New Title about gold", "gold byzantine ring", 9, nil)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	hits := s.SearchText("silver celtic", 10)
	if len(hits) != 0 {
		t.Fatalf("stale index entries: %v", hits)
	}
	hits = s.SearchText("gold byzantine", 10)
	if len(hits) != 1 || hits[0].Doc.ID != "d1" {
		t.Fatalf("replaced doc not searchable: %v", hits)
	}
	// Old timestamp must leave the time index.
	if got := s.RecentSince(0, 6); len(got) != 0 {
		t.Fatalf("old timestamp lingers: %v", got)
	}
}

func TestSearchTextRanking(t *testing.T) {
	s := memStore(t)
	docs := []*Document{
		doc("a", "Byzantine gold ring", "ancient byzantine gold ring filigree craftsmanship", 1, nil),
		doc("b", "Gold necklace", "modern gold necklace minimal design", 2, nil),
		doc("c", "Database systems", "query optimization transaction recovery", 3, nil),
	}
	for _, d := range docs {
		if err := s.Put(d); err != nil {
			t.Fatal(err)
		}
	}
	hits := s.SearchText("byzantine gold ring", 10)
	if len(hits) < 2 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Doc.ID != "a" {
		t.Fatalf("best hit = %s", hits[0].Doc.ID)
	}
	for _, h := range hits {
		if h.Doc.ID == "c" {
			t.Fatal("irrelevant doc matched")
		}
	}
	if got := s.SearchText("", 10); len(got) != 0 {
		t.Fatal("empty query should match nothing")
	}
}

func TestSearchVector(t *testing.T) {
	s := memStore(t)
	for i := 0; i < 20; i++ {
		v := make(feature.Vector, 8)
		v[i%8] = 1
		if err := s.Put(doc(fmt.Sprintf("d%02d", i), "t", "x", int64(i), v)); err != nil {
			t.Fatal(err)
		}
	}
	q := feature.Vector{0, 0, 1, 0, 0, 0, 0, 0}
	hits := s.SearchVector(q, 3)
	if len(hits) != 3 {
		t.Fatalf("hits = %d", len(hits))
	}
	for _, h := range hits {
		if h.Score < 0.99 {
			t.Fatalf("expected exact matches first, got %v", hits)
		}
	}
}

func TestSearchHybrid(t *testing.T) {
	s := memStore(t)
	cv := feature.Vector{1, 0, 0, 0, 0, 0, 0, 0}
	// "a" matches text only; "b" matches vector only; "c" matches both.
	_ = s.Put(doc("a", "gold ring byzantine", "gold ring", 1, feature.Vector{0, 1, 0, 0, 0, 0, 0, 0}))
	_ = s.Put(doc("b", "unrelated words here", "nothing", 2, cv))
	_ = s.Put(doc("c", "gold ring", "byzantine gold", 3, cv))
	hits := s.SearchHybrid("gold ring byzantine", cv, 0.5, 3)
	if len(hits) == 0 || hits[0].Doc.ID != "c" {
		t.Fatalf("hybrid best = %v", hits)
	}
	// alpha extremes delegate.
	ht := s.SearchHybrid("gold ring byzantine", cv, 0, 3)
	if len(ht) == 0 || ht[0].Doc.ID == "b" {
		t.Fatalf("alpha=0 should be pure text: %v", ht)
	}
	hv := s.SearchHybrid("gold ring byzantine", cv, 1, 3)
	if len(hv) == 0 || hv[0].Score < 0.99 {
		t.Fatalf("alpha=1 should be pure vector: %v", hv)
	}
}

func TestRecentAndFreshest(t *testing.T) {
	s := memStore(t)
	for i := 1; i <= 10; i++ {
		if err := s.Put(doc(fmt.Sprintf("d%02d", i), "t", "x", int64(i*100), nil)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.RecentSince(300, 700)
	if len(got) != 5 {
		t.Fatalf("range size = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].CreatedAt < got[i-1].CreatedAt {
			t.Fatal("range scan not ascending")
		}
	}
	fresh := s.Freshest(3)
	if len(fresh) != 3 || fresh[0].CreatedAt != 1000 || fresh[2].CreatedAt != 800 {
		t.Fatalf("freshest = %v", fresh)
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Put(doc(fmt.Sprintf("d%02d", i), fmt.Sprintf("title %d gold", i), "body text", int64(i), feature.Vector{1, 0, 0, 0, 0, 0, 0, 0})); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("d07"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir, ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 49 {
		t.Fatalf("recovered %d docs, want 49", s2.Len())
	}
	if _, err := s2.Get("d07"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted doc resurrected")
	}
	// Indexes rebuilt.
	if hits := s2.SearchText("gold title", 5); len(hits) == 0 {
		t.Fatal("text index not rebuilt")
	}
	if hits := s2.SearchVector(feature.Vector{1, 0, 0, 0, 0, 0, 0, 0}, 5); len(hits) == 0 {
		t.Fatal("vector index not rebuilt")
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(doc(fmt.Sprintf("d%d", i), "t", "x", int64(i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: append garbage half-record.
	_, walPath := snapshotPaths(dir)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 200, 0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(Options{Dir: dir, ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 10 {
		t.Fatalf("recovered %d docs, want 10", s2.Len())
	}
	// Store must keep working after truncation.
	if err := s2.Put(doc("new", "t", "x", 100, nil)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(Options{Dir: dir, ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 11 {
		t.Fatalf("after torn-tail recovery + put: %d docs, want 11", s3.Len())
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		// Repeatedly overwrite the same ids: WAL grows, live set small.
		if err := s.Put(doc(fmt.Sprintf("d%d", i%3), "t", "body", int64(i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	preWAL := s.Stats().WALBytes
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().WALBytes; got != 0 {
		t.Fatalf("wal after compaction = %d", got)
	}
	if preWAL == 0 {
		t.Fatal("test did not exercise the WAL")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{Dir: dir, ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("after compaction reopen: %d docs, want 3", s2.Len())
	}
	if d, err := s2.Get("d0"); err != nil || d.CreatedAt != 27 {
		t.Fatalf("latest version lost: %+v err %v", d, err)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, ConceptDim: 8, Seed: 1, CompactAfterBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 200; i++ {
		if err := s.Put(doc("same", "t", "a reasonably long body to grow the wal quickly", int64(i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	// Compaction now runs off the writer critical path: poll until the
	// background cycle has brought the WAL back under budget.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := s.Stats().WALBytes; got <= 2048+512 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-compaction never caught up: wal = %d", s.Stats().WALBytes)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Snapshot file must exist.
	snapPath, _ := snapshotPaths(dir)
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatal("snapshot missing after auto-compaction")
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := memStore(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(doc("x", "t", "b", 1, nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("put on closed = %v", err)
	}
	if _, err := s.Get("x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("get on closed = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
}

func TestStats(t *testing.T) {
	s := memStore(t)
	_ = s.Put(doc("a", "gold", "ring", 1, nil))
	_ = s.Put(doc("b", "silver", "brooch", 2, nil))
	_ = s.Delete("a")
	_ = s.SearchText("gold", 5)
	st := s.Stats()
	if st.Docs != 1 || st.Puts != 2 || st.Deletes != 1 || st.Searches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Terms == 0 {
		t.Fatal("terms not counted")
	}
}

func TestSnapshotAtomicity(t *testing.T) {
	// A .tmp file left behind by a crashed compaction must not break Open.
	dir := t.TempDir()
	snapPath, _ := snapshotPaths(dir)
	if err := os.WriteFile(snapPath+".tmp", []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Options{Dir: dir, ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(doc("a", "t", "b", 1, nil)); err != nil {
		t.Fatal(err)
	}
}

func TestOpenCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "deep")
	s, err := Open(Options{Dir: dir, ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(doc("a", "t", "b", 1, nil)); err != nil {
		t.Fatal(err)
	}
}

func TestSearchVisual(t *testing.T) {
	s := memStore(t)
	ve := feature.NewVisualExtractor(3, 8, 12, 8, 0.05)
	r := rand.New(rand.NewSource(4))
	concepts := make([]feature.Vector, 4)
	for i := range concepts {
		concepts[i] = make(feature.Vector, 8)
		concepts[i][i] = 1
	}
	for i := 0; i < 12; i++ {
		vf := ve.Extract(r, concepts[i%4])
		d := doc(fmt.Sprintf("v%02d", i), "t", "x", int64(i), nil)
		d.ColorHist = vf.ColorHist
		d.Texture = vf.Texture
		if err := s.Put(d); err != nil {
			t.Fatal(err)
		}
	}
	// One doc with no visual features must never appear.
	if err := s.Put(doc("textonly", "t", "x", 99, nil)); err != nil {
		t.Fatal(err)
	}
	q := ve.Extract(r, concepts[2])
	hits := s.SearchVisual(q, 0.5, 3)
	if len(hits) != 3 {
		t.Fatalf("hits = %d", len(hits))
	}
	for _, h := range hits {
		if h.Doc.ID == "textonly" {
			t.Fatal("featureless doc matched visually")
		}
		// Same-concept docs are v02, v06, v10.
		if h.Doc.ID != "v02" && h.Doc.ID != "v06" && h.Doc.ID != "v10" {
			t.Fatalf("wrong visual neighbors: %v", h.Doc.ID)
		}
	}
	if got := s.SearchVisual(feature.VisualFeatures{}, 0.5, 3); got != nil {
		t.Fatal("empty query should return nil")
	}
}

func TestByTopicFindsOldDocuments(t *testing.T) {
	s := memStore(t)
	// One old topical doc buried under many fresh off-topic docs.
	old := doc("old-jewel", "ancient brooch", "very old", 1, nil)
	old.Topics = []string{"jewelry"}
	if err := s.Put(old); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		d := doc(fmt.Sprintf("fresh%03d", i), "news", "irrelevant", int64(1000+i), nil)
		d.Topics = []string{"news"}
		if err := s.Put(d); err != nil {
			t.Fatal(err)
		}
	}
	got := s.ByTopic("jewelry", 10)
	if len(got) != 1 || got[0].ID != "old-jewel" {
		t.Fatalf("ByTopic = %v", got)
	}
	if s.TopicCount("jewelry") != 1 || s.TopicCount("news") != 200 {
		t.Fatalf("counts: %d %d", s.TopicCount("jewelry"), s.TopicCount("news"))
	}
	// Newest-first ordering and k bound.
	newsDocs := s.ByTopic("news", 3)
	if len(newsDocs) != 3 || newsDocs[0].ID != "fresh199" {
		t.Fatalf("news order: %v", newsDocs)
	}
	// Replace moves topics; delete clears them.
	repl := doc("old-jewel", "recataloged", "now ceramics", 2, nil)
	repl.Topics = []string{"ceramics"}
	if err := s.Put(repl); err != nil {
		t.Fatal(err)
	}
	if s.TopicCount("jewelry") != 0 || s.TopicCount("ceramics") != 1 {
		t.Fatal("topic index not updated on replace")
	}
	if err := s.Delete("old-jewel"); err != nil {
		t.Fatal(err)
	}
	if s.TopicCount("ceramics") != 0 {
		t.Fatal("topic index not cleared on delete")
	}
	if got := s.ByTopic("nonexistent", 5); got != nil {
		t.Fatal("unknown topic should be nil")
	}
}

func TestByTopicSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := doc("a", "t", "b", 5, nil)
	d.Topics = []string{"jewelry"}
	if err := s.Put(d); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(Options{Dir: dir, ConceptDim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.ByTopic("jewelry", 5); len(got) != 1 {
		t.Fatal("topic index not rebuilt on recovery")
	}
}
