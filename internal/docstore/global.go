package docstore

import (
	"math"
	"time"
)

// Distributed-scoring support. A sharded deployment partitions the corpus
// across stores; TF-IDF scores computed against shard-local document
// frequencies would then diverge from a single node holding everything
// (each shard sees a different df, hence different idf floats). The scatter
// router instead collects per-shard TermStats once, sums them into a
// GlobalStats, and ships that with every query; shards score through the
// identical searchCompiled code with only total/df overridden, so the
// merged top-k is bit-identical to the monolithic SearchText result.

// GlobalStats carries corpus-wide statistics for one query: the total live
// document count across all shards and, parallel in Terms/DF, the global
// document frequency of each canonical query term. Terms a shard sees in
// the query but not in Terms score as df 0 (absent from the corpus).
type GlobalStats struct {
	TotalDocs uint64
	Terms     []string
	DF        []uint64
}

// dfOf returns the global document frequency for t. Queries carry a
// handful of terms, so a linear scan beats a map here — and it keeps the
// hot query path allocation-free.
func (gs *GlobalStats) dfOf(t string) uint64 {
	for i := range gs.Terms {
		if gs.Terms[i] == t {
			return gs.DF[i]
		}
	}
	return 0
}

// TermStat is one term's shard-local statistics: live document frequency
// and the maximum normalized term-weight ratio max_d (1+ln tf_d)/√(len_d+1)
// over the shard's documents. A router sums DF across shards into global
// frequencies and uses qw·idf·MaxRatio as this shard's score upper bound
// for the term (the compiled ratio may include masked documents, so the
// bound is valid, merely loose, under churn).
type TermStat struct {
	DF       uint64
	MaxRatio float64
}

// TermStats reports the live document count, snapshot epoch, and per-term
// statistics for the given canonical terms, all read from one snapshot (so
// the figures are mutually consistent). Lock-free: concurrent writers keep
// publishing new epochs while this reads an old one.
func (s *Store) TermStats(terms []string) (total uint64, epoch uint64, stats []TermStat) {
	sn := s.snap.Load()
	cx := sn.base.cx
	ov := sn.ov
	stats = make([]TermStat, len(terms))
	for i, t := range terms {
		df := 0
		maxRatio := 0.0
		if tm, ok := cx.terms[t]; ok {
			df = int(tm.df)
			maxRatio = tm.maxRatio
		}
		df -= ov.maskedDF[t]
		for _, p := range ov.postingsFor(t) {
			df++
			r := (1 + math.Log(float64(p.tf))) / math.Sqrt(float64(ov.docLen[p.id])+1)
			if r > maxRatio {
				maxRatio = r
			}
		}
		if df < 0 {
			df = 0
		}
		stats[i] = TermStat{DF: uint64(df), MaxRatio: maxRatio}
	}
	return uint64(sn.docCount), sn.epoch, stats
}

// SearchTextGlobal is SearchText scored under router-supplied global
// statistics. It bypasses the query cache — cached entries are keyed by
// (query, k, epoch) only, and the same query under different global stats
// must not collide. A nil gs degrades to plain SearchText. Returned hits
// are read-only (see Hit).
func (s *Store) SearchTextGlobal(query string, k int, gs *GlobalStats) []Hit {
	if gs == nil {
		return s.SearchText(query, k)
	}
	start := time.Now()
	defer func() { s.tel.textLat.Observe(time.Since(start)) }()
	sn := s.snap.Load()
	sc := getScratch()
	s.countSearch()
	raw := sn.searchTextGlobal(s.tokens.tokenize(query), k, sc, gs)
	s.noteSearchStats(&sc.stats)
	putScratch(sc)
	return raw
}
