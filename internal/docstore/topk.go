package docstore

// topK selects the best k items under a strict total order without sorting
// the full candidate set: a k-sized min-heap keyed by "worst kept" replaces
// the seed's sort-then-truncate. better must be a strict total order
// (searches break score ties by document id), which makes the selected set —
// and, after the final drain, the emitted order — identical to sorting
// everything. k < 0 means unbounded: push degrades to append and sorted
// heapifies before draining, preserving the "return all, ranked" calls.
type topK[T any] struct {
	k      int
	better func(a, b T) bool
	items  []T
}

func newTopK[T any](k int, better func(a, b T) bool) *topK[T] {
	h := &topK[T]{k: k, better: better}
	if k > 0 {
		h.items = make([]T, 0, k)
	}
	return h
}

func (h *topK[T]) push(x T) {
	if h.k == 0 {
		return
	}
	if h.k < 0 {
		h.items = append(h.items, x)
		return
	}
	if len(h.items) < h.k {
		h.items = append(h.items, x)
		i := len(h.items) - 1
		for i > 0 {
			p := (i - 1) / 2
			// Min-heap on "worse": the root is the worst item kept.
			if !h.better(h.items[p], h.items[i]) {
				break
			}
			h.items[i], h.items[p] = h.items[p], h.items[i]
			i = p
		}
		return
	}
	if !h.better(x, h.items[0]) {
		return
	}
	h.items[0] = x
	h.siftDown(0, len(h.items))
}

// siftDown restores the heap property for the subtree rooted at i, treating
// only items[:n] as the heap.
func (h *topK[T]) siftDown(i, n int) {
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && h.better(h.items[m], h.items[l]) {
			m = l
		}
		if r < n && h.better(h.items[m], h.items[r]) {
			m = r
		}
		if m == i {
			return
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
}

// sorted ranks the kept items best-first and returns them, draining the
// heap in place: repeatedly swap the root (worst remaining) to the end of
// the shrinking prefix and sift down — a heapsort, so no comparison closure
// escapes to sort.Slice and nothing allocates. The initial heapify makes
// the drain valid for the unbounded (k < 0) append-only case too; for the
// bounded case the items already form a heap and heapify is a cheap no-op
// verification. The heap is consumed; the receiver must not be pushed to
// afterwards.
func (h *topK[T]) sorted() []T {
	n := len(h.items)
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i, n)
	}
	for end := n - 1; end > 0; end-- {
		h.items[0], h.items[end] = h.items[end], h.items[0]
		h.siftDown(0, end)
	}
	return h.items
}
