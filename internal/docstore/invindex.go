package docstore

import "math"

// invIndex is an inverted text index with TF-IDF ranking. It is rebuilt from
// the primary map on recovery, so it needs no persistence of its own.
type invIndex struct {
	postings map[string]map[string]int // term -> docID -> tf
	docLen   map[string]int            // docID -> token count
	docs     int
}

func newInvIndex() *invIndex {
	return &invIndex{
		postings: make(map[string]map[string]int),
		docLen:   make(map[string]int),
	}
}

func (ix *invIndex) add(id string, tokens []string) {
	if _, ok := ix.docLen[id]; ok {
		ix.removeDoc(id)
	}
	ix.docLen[id] = len(tokens)
	ix.docs++
	for _, t := range tokens {
		p, ok := ix.postings[t]
		if !ok {
			p = make(map[string]int)
			ix.postings[t] = p
		}
		p[id]++
	}
}

func (ix *invIndex) removeDoc(id string) {
	if _, ok := ix.docLen[id]; !ok {
		return
	}
	delete(ix.docLen, id)
	ix.docs--
	for t, p := range ix.postings {
		if _, ok := p[id]; ok {
			delete(p, id)
			if len(p) == 0 {
				delete(ix.postings, t)
			}
		}
	}
}

// scored is a ranked text hit.
type scored struct {
	id    string
	score float64
}

// scoredBetter is the deterministic (score desc, id asc) ranking order; ids
// are unique so it is a strict total order, which makes heap selection in
// searchWith provably identical to sort-then-truncate.
func scoredBetter(a, b scored) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.id < b.id
}

// search ranks documents matching the query tokens by TF-IDF with sublinear
// TF and length normalization, returning the top k.
func (ix *invIndex) search(tokens []string, k int) []scored {
	return ix.searchWith(tokens, k, nil, ix.docs)
}

// searchWith is the snapshot-aware core: ix is a frozen base index, ov an
// optional overlay of documents written since the freeze, and total the live
// document count. Exactness contract: the result is float-identical to
// search on a monolithic index over the live set — document frequencies
// count base postings minus masked ids plus overlay carriers, the idf/qw/dw
// expressions keep the seed's evaluation order, and per-document
// accumulation still adds one term contribution per qtf entry.
func (ix *invIndex) searchWith(tokens []string, k int, ov *overlay, total int) []scored {
	if total == 0 || len(tokens) == 0 {
		return nil
	}
	// Collapse duplicate query terms, keeping multiplicity as query TF.
	qtf := make(map[string]int)
	for _, t := range tokens {
		qtf[t]++
	}
	hasOv := ov != nil && (len(ov.byID) > 0 || len(ov.masked) > 0)
	acc := make(map[string]float64)
	for t, qn := range qtf {
		p := ix.postings[t]
		df := len(p)
		if hasOv {
			// Count masked carriers from the smaller side; either loop
			// computes the same |masked ∩ postings|.
			if len(ov.masked) <= len(p) {
				for id := range ov.masked {
					if _, ok := p[id]; ok {
						df--
					}
				}
			} else {
				for id := range p {
					if ov.masked[id] {
						df--
					}
				}
			}
			df += ov.df(t)
		}
		if df == 0 {
			continue
		}
		idf := math.Log(1 + float64(total)/float64(1+df))
		qw := (1 + math.Log(float64(qn))) * idf
		for id, tf := range p {
			if hasOv && ov.masked[id] {
				continue
			}
			dw := (1 + math.Log(float64(tf))) * idf
			acc[id] += qw * dw
		}
		if hasOv {
			for id, tf := range ov.termPost[t] {
				dw := (1 + math.Log(float64(tf))) * idf
				acc[id] += qw * dw
			}
		}
	}
	h := newTopK(k, scoredBetter)
	for id, s := range acc {
		dl, inOv := 0, false
		if hasOv {
			dl, inOv = ov.docLen[id]
		}
		if !inOv {
			dl = ix.docLen[id]
		}
		norm := math.Sqrt(float64(dl) + 1)
		h.push(scored{id: id, score: s / norm})
	}
	return h.sorted()
}

// clone deep-copies the index for a snapshot freeze.
func (ix *invIndex) clone() *invIndex {
	cp := &invIndex{
		postings: make(map[string]map[string]int, len(ix.postings)),
		docLen:   make(map[string]int, len(ix.docLen)),
		docs:     ix.docs,
	}
	for t, p := range ix.postings {
		np := make(map[string]int, len(p))
		for id, tf := range p {
			np[id] = tf
		}
		cp.postings[t] = np
	}
	for id, l := range ix.docLen {
		cp.docLen[id] = l
	}
	return cp
}

// termCount returns the number of distinct indexed terms.
func (ix *invIndex) termCount() int { return len(ix.postings) }

// df returns the document frequency of a term.
func (ix *invIndex) df(term string) int { return len(ix.postings[term]) }
