package docstore

import (
	"math"
	"sort"
)

// invIndex is an inverted text index with TF-IDF ranking. It is rebuilt from
// the primary map on recovery, so it needs no persistence of its own.
type invIndex struct {
	postings map[string]map[string]int // term -> docID -> tf
	docLen   map[string]int            // docID -> token count
	docs     int
}

func newInvIndex() *invIndex {
	return &invIndex{
		postings: make(map[string]map[string]int),
		docLen:   make(map[string]int),
	}
}

func (ix *invIndex) add(id string, tokens []string) {
	if _, ok := ix.docLen[id]; ok {
		ix.removeDoc(id)
	}
	ix.docLen[id] = len(tokens)
	ix.docs++
	for _, t := range tokens {
		p, ok := ix.postings[t]
		if !ok {
			p = make(map[string]int)
			ix.postings[t] = p
		}
		p[id]++
	}
}

func (ix *invIndex) removeDoc(id string) {
	if _, ok := ix.docLen[id]; !ok {
		return
	}
	delete(ix.docLen, id)
	ix.docs--
	for t, p := range ix.postings {
		if _, ok := p[id]; ok {
			delete(p, id)
			if len(p) == 0 {
				delete(ix.postings, t)
			}
		}
	}
}

// scored is a ranked text hit.
type scored struct {
	id    string
	score float64
}

// search ranks documents matching the query tokens by TF-IDF with sublinear
// TF and length normalization, returning the top k.
func (ix *invIndex) search(tokens []string, k int) []scored {
	if ix.docs == 0 || len(tokens) == 0 {
		return nil
	}
	// Collapse duplicate query terms, keeping multiplicity as query TF.
	qtf := make(map[string]int)
	for _, t := range tokens {
		qtf[t]++
	}
	acc := make(map[string]float64)
	for t, qn := range qtf {
		p, ok := ix.postings[t]
		if !ok {
			continue
		}
		idf := math.Log(1 + float64(ix.docs)/float64(1+len(p)))
		qw := (1 + math.Log(float64(qn))) * idf
		for id, tf := range p {
			dw := (1 + math.Log(float64(tf))) * idf
			acc[id] += qw * dw
		}
	}
	out := make([]scored, 0, len(acc))
	for id, s := range acc {
		norm := math.Sqrt(float64(ix.docLen[id]) + 1)
		out = append(out, scored{id: id, score: s / norm})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].id < out[j].id
	})
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// termCount returns the number of distinct indexed terms.
func (ix *invIndex) termCount() int { return len(ix.postings) }

// df returns the document frequency of a term.
func (ix *invIndex) df(term string) int { return len(ix.postings[term]) }
