package docstore

// invIndex is the mutable, map-based inverted text index the write path
// maintains. It is rebuilt from the primary map on recovery, so it needs no
// persistence of its own. Queries never touch it: at every epoch freeze it
// is compiled into the immutable block-compressed compiledIndex
// (compiled.go), which is what the read path walks.
type invIndex struct {
	postings map[string]map[string]int // term -> docID -> tf
	docLen   map[string]int            // docID -> token count
	docs     int
}

func newInvIndex() *invIndex {
	return &invIndex{
		postings: make(map[string]map[string]int),
		docLen:   make(map[string]int),
	}
}

func (ix *invIndex) add(id string, tokens []string) {
	if _, ok := ix.docLen[id]; ok {
		ix.removeDoc(id)
	}
	ix.docLen[id] = len(tokens)
	ix.docs++
	for _, t := range tokens {
		p, ok := ix.postings[t]
		if !ok {
			p = make(map[string]int)
			ix.postings[t] = p
		}
		p[id]++
	}
}

func (ix *invIndex) removeDoc(id string) {
	if _, ok := ix.docLen[id]; !ok {
		return
	}
	delete(ix.docLen, id)
	ix.docs--
	for t, p := range ix.postings {
		if _, ok := p[id]; ok {
			delete(p, id)
			if len(p) == 0 {
				delete(ix.postings, t)
			}
		}
	}
}

// scored is a ranked text hit. ord is the document's ordinal in the
// compiled base index, or -1 for overlay documents — it lets the hit
// assembler resolve the Document without a map lookup.
type scored struct {
	id    string
	ord   int32
	score float64
}

// scoredBetter is the deterministic (score desc, id asc) ranking order; ids
// are unique so it is a strict total order, which makes heap selection
// provably identical to sort-then-truncate — and makes the selected top-k
// set independent of the order candidates arrive in.
func scoredBetter(a, b scored) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.id < b.id
}

// termCount returns the number of distinct indexed terms.
func (ix *invIndex) termCount() int { return len(ix.postings) }

// df returns the document frequency of a term.
func (ix *invIndex) df(term string) int { return len(ix.postings[term]) }
