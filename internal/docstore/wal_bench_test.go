package docstore

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// The PutParallel benchmarks measure the tentpole claim of the group-commit
// pipeline: writer throughput and latency when many writers share fsyncs.
// Each pair runs the same workload two ways —
//
//	BenchmarkPutParallelN           writers call Put concurrently; the
//	                                committer batches every writer waiting in
//	                                the window behind ONE fsync,
//	BenchmarkPutParallelNSerialized the same store with an external
//	                                sync.Mutex around every Put, so at most
//	                                one op is ever in flight and every op
//	                                pays its own fsync — the seed's
//	                                serialized write path.
//
// Both run the durable SyncEveryPut configuration (the TCP node's), where
// the fsync dominates and amortization is the whole effect. Reported
// metrics: writer-side p50/p99 per-op latency and wal-syncs/op read from
// the telemetry registry (1.0 for serialized; 1/window-size under group
// commit). `make bench-wal` archives them into BENCH_wal.json.

func benchmarkPutParallel(b *testing.B, writers int, serialized bool) {
	// Same rationale as benchmarkSearchParallel: give every writer plus the
	// committer its own P so window formation reflects kernel scheduling,
	// not Go round-robin on a starved runner. Both variants of a pair run
	// with the same setting.
	if procs := writers + 1; runtime.GOMAXPROCS(0) < procs {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	}
	reg := telemetry.NewRegistry()
	s, err := Open(Options{
		Dir: b.TempDir(), ConceptDim: 8, Seed: 1,
		SyncEveryPut: true, QueryCacheSize: -1, Telemetry: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	// Pre-generate every document so the timed region is Put alone.
	perWriter := b.N / writers
	if perWriter == 0 {
		perWriter = 1
	}
	docs := make([][]*Document, writers)
	for w := range docs {
		r := rand.New(rand.NewSource(int64(1000 + w)))
		docs[w] = make([]*Document, perWriter)
		for i := range docs[w] {
			d := benchDoc(r, w*perWriter+i)
			docs[w][i] = d
		}
	}
	var serialize sync.Mutex // only the serialized variant takes it
	syncs := reg.Counter("docstore.wal.syncs")
	syncsBefore := syncs.Value()
	lats := make([][]time.Duration, writers)
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		lats[w] = make([]time.Duration, 0, perWriter)
		go func(w int) {
			defer wg.Done()
			for _, d := range docs[w] {
				t0 := time.Now()
				if serialized {
					serialize.Lock()
				}
				err := s.Put(d)
				if serialized {
					serialize.Unlock()
				}
				if err != nil {
					b.Error(err)
					return
				}
				lats[w] = append(lats[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()

	total := 0
	var all []time.Duration
	for _, l := range lats {
		total += len(l)
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	b.ReportMetric(quantileNs(all, 0.50), "p50-ns/op")
	b.ReportMetric(quantileNs(all, 0.99), "p99-ns/op")
	b.ReportMetric(float64(syncs.Value()-syncsBefore)/float64(total), "wal-syncs/op")
}

func BenchmarkPutParallel1(b *testing.B)            { benchmarkPutParallel(b, 1, false) }
func BenchmarkPutParallel4(b *testing.B)            { benchmarkPutParallel(b, 4, false) }
func BenchmarkPutParallel16(b *testing.B)           { benchmarkPutParallel(b, 16, false) }
func BenchmarkPutParallel1Serialized(b *testing.B)  { benchmarkPutParallel(b, 1, true) }
func BenchmarkPutParallel4Serialized(b *testing.B)  { benchmarkPutParallel(b, 4, true) }
func BenchmarkPutParallel16Serialized(b *testing.B) { benchmarkPutParallel(b, 16, true) }

// BenchmarkWALReplay measures crash recovery: replaying a 2048-record log
// with the same unmarshal work Open performs. ReportAllocs makes the replay
// buffer reuse visible — allocations scale with documents decoded, not with
// a fresh payload buffer per record.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(Options{Dir: dir, ConceptDim: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < benchCorpusSize; i++ {
		if err := s.Put(benchDoc(r, i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	_, walPath := snapshotPaths(dir)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		_, _, err := replayWAL(walPath, func(op uint8, payload []byte) error {
			if op == opPut {
				if _, err := unmarshalDocument(payload); err != nil {
					return err
				}
			}
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != benchCorpusSize {
			b.Fatalf("replayed %d records, want %d", n, benchCorpusSize)
		}
	}
}
