package docstore

import (
	"fmt"
	"testing"

	"repro/internal/feature"
	"repro/internal/telemetry"
)

// TestCacheInvalidationOnWrite pins the generation-tagging contract: a
// repeated query at the same epoch is served from the cache (no
// re-execution, visible as an unchanged Searches counter), and any
// Put/Delete bumps the epoch so the next repeat misses and re-executes.
func TestCacheInvalidationOnWrite(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := Open(Options{ConceptDim: 8, Seed: 1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put(doc(fmt.Sprintf("d%d", i), "Gold Ring", "byzantine gold ring", int64(i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	hits := reg.Counter("docstore.cache.hits")
	misses := reg.Counter("docstore.cache.misses")

	first := s.SearchText("gold ring", 3)
	if got := s.Stats().Searches; got != 1 {
		t.Fatalf("searches after first query = %d, want 1", got)
	}
	if misses.Value() != 1 || hits.Value() != 0 {
		t.Fatalf("counters after first query: hits=%d misses=%d", hits.Value(), misses.Value())
	}

	second := s.SearchText("gold ring", 3)
	if got := s.Stats().Searches; got != 1 {
		t.Fatalf("cache hit re-executed: searches = %d, want 1", got)
	}
	if hits.Value() != 1 {
		t.Fatalf("cache hits = %d, want 1", hits.Value())
	}
	if !hitsEqual(first, second) {
		t.Fatal("cached result differs from the computed one")
	}

	// Put bumps the epoch: the same query re-executes and sees the new doc.
	// Shorter than the others, so it outranks them and must appear in the
	// re-executed top-3.
	if err := s.Put(doc("d9", "Gold Ring", "gold ring", 50, nil)); err != nil {
		t.Fatal(err)
	}
	third := s.SearchText("gold ring", 3)
	if got := s.Stats().Searches; got != 2 {
		t.Fatalf("post-put repeat did not re-execute: searches = %d, want 2", got)
	}
	if misses.Value() != 2 {
		t.Fatalf("cache misses = %d, want 2", misses.Value())
	}
	found := false
	for _, h := range third {
		if h.Doc.ID == "d9" {
			found = true
		}
	}
	if !found {
		t.Fatal("re-executed query does not see the new document")
	}

	// Delete also invalidates.
	if err := s.Delete("d9"); err != nil {
		t.Fatal(err)
	}
	s.SearchText("gold ring", 3)
	if got := s.Stats().Searches; got != 3 {
		t.Fatalf("post-delete repeat did not re-execute: searches = %d, want 3", got)
	}
	if misses.Value() != 3 {
		t.Fatalf("cache misses = %d, want 3", misses.Value())
	}
}

// TestCacheHybridAndOwnership: SearchHybrid is fronted by the same cache,
// and mutating a cache-served result must not corrupt the cache or store.
func TestCacheHybridAndOwnership(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := Open(Options{ConceptDim: 8, Seed: 1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	cv := feature.Vector{1, 0, 0.5, 0, 0, 0, 0, 0}
	for i := 0; i < 4; i++ {
		if err := s.Put(doc(fmt.Sprintf("h%d", i), "Gold Ring", "byzantine gold ring", int64(i), cv)); err != nil {
			t.Fatal(err)
		}
	}
	first := s.SearchHybrid("gold ring", cv, 0.5, 3)
	if got := s.Stats().Searches; got != 1 {
		t.Fatalf("searches = %d, want 1", got)
	}
	second := s.SearchHybrid("gold ring", cv, 0.5, 3)
	if got := s.Stats().Searches; got != 1 {
		t.Fatalf("hybrid cache hit re-executed: searches = %d", got)
	}
	if reg.Counter("docstore.cache.hits").Value() != 1 {
		t.Fatalf("hybrid cache hits = %d, want 1", reg.Counter("docstore.cache.hits").Value())
	}
	if !hitsEqual(first, second) {
		t.Fatal("cached hybrid result differs")
	}
	// A different alpha is a different cache key, not a stale hit.
	s.SearchHybrid("gold ring", cv, 0.25, 3)
	if got := s.Stats().Searches; got != 2 {
		t.Fatalf("distinct alpha served from cache: searches = %d, want 2", got)
	}

	// Results are shared and read-only (see Hit): a cache hit returns the
	// same snapshot-owned documents without cloning, and a caller who
	// wants to mutate must clone — Get hands out an independent copy.
	again := s.SearchHybrid("gold ring", cv, 0.5, 3)
	if again[0].Doc != second[0].Doc {
		t.Fatal("cache hit did not share the snapshot-owned document")
	}
	back, err := s.Get(again[0].Doc.ID)
	if err != nil {
		t.Fatal(err)
	}
	back.Title = "mutated"
	if fresh := s.SearchHybrid("gold ring", cv, 0.5, 3); fresh[0].Doc.Title == "mutated" {
		t.Fatal("mutating a Get copy leaked into cached results")
	}
}

// TestCacheBounded: the LRU honors its capacity.
func TestCacheBounded(t *testing.T) {
	s, err := Open(Options{ConceptDim: 8, Seed: 1, QueryCacheSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(doc("d1", "Gold Ring", "byzantine gold ring", 1, nil)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		s.SearchText(fmt.Sprintf("gold query %d", i), 3)
	}
	if got := s.cache.len(); got > 4 {
		t.Fatalf("cache holds %d entries, cap 4", got)
	}
	// The most recent key is still resident.
	before := s.Stats().Searches
	s.SearchText("gold query 11", 3)
	if got := s.Stats().Searches; got != before {
		t.Fatalf("most recent entry evicted: searches %d -> %d", before, got)
	}
}

// TestCacheDisabled: negative QueryCacheSize turns caching off entirely;
// every repeat re-executes.
func TestCacheDisabled(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := Open(Options{ConceptDim: 8, Seed: 1, QueryCacheSize: -1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(doc("d1", "Gold Ring", "byzantine gold ring", 1, nil)); err != nil {
		t.Fatal(err)
	}
	s.SearchText("gold", 3)
	s.SearchText("gold", 3)
	if got := s.Stats().Searches; got != 2 {
		t.Fatalf("disabled cache still served a hit: searches = %d, want 2", got)
	}
	if reg.Counter("docstore.cache.hits").Value() != 0 {
		t.Fatal("disabled cache recorded hits")
	}
}

// TestTokenMemo: repeated query strings reuse the memoized token slice (the
// memo counts hits through telemetry); distinct strings tokenize fresh.
func TestTokenMemo(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Cache disabled so repeats reach tokenization.
	s, err := Open(Options{ConceptDim: 8, Seed: 1, QueryCacheSize: -1, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(doc("d1", "Gold Ring", "byzantine gold ring", 1, nil)); err != nil {
		t.Fatal(err)
	}
	memoHits := reg.Counter("docstore.tokens.memo.hits")
	s.SearchText("byzantine gold", 3)
	if memoHits.Value() != 0 {
		t.Fatal("first tokenization counted as a memo hit")
	}
	s.SearchText("byzantine gold", 3)
	s.SearchText("byzantine gold", 3)
	if got := memoHits.Value(); got != 2 {
		t.Fatalf("memo hits = %d, want 2", got)
	}
	s.SearchText("different query", 3)
	if got := memoHits.Value(); got != 2 {
		t.Fatalf("distinct query hit the memo: %d", got)
	}
}
