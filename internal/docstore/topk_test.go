package docstore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// topkPush feeds items through a fresh topK and drains it.
func topkDrain(k int, items []scored) []scored {
	h := newTopK(k, scoredBetter)
	for _, it := range items {
		h.push(it)
	}
	return h.sorted()
}

// topkReference is the seed's sort-then-truncate: sort.Slice under the same
// strict total order, cut to k. The heap drain must emit exactly this.
func topkReference(k int, items []scored) []scored {
	ref := append([]scored(nil), items...)
	sort.Slice(ref, func(i, j int) bool { return scoredBetter(ref[i], ref[j]) })
	if k >= 0 && k < len(ref) {
		ref = ref[:k]
	}
	return ref
}

// TestTopKSortedMatchesSortSlice pins the heap-pop drain to the sort.Slice
// baseline it replaced: for random candidate sets — with duplicate scores,
// so the id tie-break carries the total order — every k (including
// unbounded and k > n) yields the identical best-first slice regardless of
// push order.
func TestTopKSortedMatchesSortSlice(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(300)
		items := make([]scored, n)
		for i := range items {
			items[i] = scored{
				id: fmt.Sprintf("doc-%03d", r.Intn(1000)),
				// Coarse scores force ties; the id tie-break must decide.
				score: float64(r.Intn(12)) / 3,
			}
		}
		for _, k := range []int{-1, 0, 1, 2, 7, n / 2, n, n + 5} {
			got := topkDrain(k, items)
			want := topkReference(k, items)
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: len %d, want %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d k=%d: item %d = %+v, want %+v", trial, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestTopKDrainInPlace pins the no-allocation property the scratch pool
// depends on: sorted() returns the heap's own backing array, not a copy.
func TestTopKDrainInPlace(t *testing.T) {
	h := newTopK(4, scoredBetter)
	for i := 0; i < 10; i++ {
		h.push(scored{id: fmt.Sprintf("d%d", i), score: float64(i)})
	}
	backing := h.items[:1]
	res := h.sorted()
	if len(res) != 4 {
		t.Fatalf("len = %d, want 4", len(res))
	}
	if &res[0] != &backing[0] {
		t.Fatal("sorted() did not drain in place")
	}
}

// BenchmarkTopKSorted measures the drain against the sort.Slice baseline on
// the hot-path shape: 10 kept of a few hundred candidates.
func BenchmarkTopKSorted(b *testing.B) {
	r := rand.New(rand.NewSource(23))
	items := make([]scored, 400)
	for i := range items {
		items[i] = scored{id: fmt.Sprintf("doc-%03d", i), score: r.Float64()}
	}
	b.Run("heap-drain", func(b *testing.B) {
		b.ReportAllocs()
		h := topK[scored]{k: 10, better: scoredBetter}
		for i := 0; i < b.N; i++ {
			h.items = h.items[:0]
			for _, it := range items {
				h.push(it)
			}
			h.items = h.sorted()
		}
	})
	b.Run("sort-slice", func(b *testing.B) {
		b.ReportAllocs()
		var buf []scored
		for i := 0; i < b.N; i++ {
			buf = append(buf[:0], items...)
			sort.Slice(buf, func(x, y int) bool { return scoredBetter(buf[x], buf[y]) })
			_ = buf[:10]
		}
	})
}
