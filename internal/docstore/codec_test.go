package docstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestCodecRoundTrip: encode/decode is the identity on every legal block
// shape — single entry, full block, dense gaps, huge sparse gaps, and the
// extreme ordinal/tf values the validator must admit.
func TestCodecRoundTrip(t *testing.T) {
	cases := map[string][]postEntry{
		"single":      {{ord: 0, tf: 1}},
		"dense":       {{0, 1}, {1, 2}, {2, 1}, {3, 9}},
		"sparse":      {{5, 1}, {1 << 20, 3}, {1 << 30, 7}},
		"max ordinal": {{0, 1}, {ordSentinel - 1, 1}},
		"max tf":      {{3, math.MaxUint32}, {4, 1}},
	}
	full := make([]postEntry, blockSize)
	for i := range full {
		full[i] = postEntry{ord: uint32(i * 3), tf: uint32(i%7 + 1)}
	}
	cases["full block"] = full

	for name, entries := range cases {
		enc := appendPostingsBlock(nil, entries)
		var ords, tfs [blockSize]uint32
		n, err := decodePostingsBlock(enc, len(entries), ords[:], tfs[:])
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if n != len(enc) {
			t.Fatalf("%s: consumed %d of %d bytes", name, n, len(enc))
		}
		for i, e := range entries {
			if ords[i] != e.ord || tfs[i] != e.tf {
				t.Fatalf("%s: entry %d = (%d,%d), want (%d,%d)", name, i, ords[i], tfs[i], e.ord, e.tf)
			}
		}
	}
}

// TestCodecAppendExtends: encoding appends to dst without clobbering what
// is already there — blocks share one arena in the compiled index.
func TestCodecAppendExtends(t *testing.T) {
	prefix := []byte{0xde, 0xad}
	enc := appendPostingsBlock(prefix, []postEntry{{7, 2}})
	if !bytes.Equal(enc[:2], prefix) {
		t.Fatal("encoder clobbered existing arena bytes")
	}
	var ords, tfs [1]uint32
	if _, err := decodePostingsBlock(enc[2:], 1, ords[:], tfs[:]); err != nil {
		t.Fatal(err)
	}
	if ords[0] != 7 || tfs[0] != 2 {
		t.Fatalf("got (%d,%d), want (7,2)", ords[0], tfs[0])
	}
}

// TestCodecTruncated: every strict prefix of a valid block decodes to
// errBlockTruncated, never to a bogus posting or a panic.
func TestCodecTruncated(t *testing.T) {
	entries := []postEntry{{100, 2}, {1 << 21, 5}, {1 << 22, 1}}
	enc := appendPostingsBlock(nil, entries)
	var ords, tfs [blockSize]uint32
	for cut := 0; cut < len(enc); cut++ {
		_, err := decodePostingsBlock(enc[:cut], len(entries), ords[:], tfs[:])
		if !errors.Is(err, errBlockTruncated) {
			t.Fatalf("prefix of %d/%d bytes: err = %v, want errBlockTruncated", cut, len(enc), err)
		}
	}
}

// TestCodecCorrupt: streams that violate an encoder invariant — zero gaps,
// zero tfs, values past 32 bits, ordinals reaching the cursor sentinel —
// are rejected as errBlockCorrupt.
func TestCodecCorrupt(t *testing.T) {
	uv := func(vs ...uint64) []byte {
		var b []byte
		for _, v := range vs {
			b = binary.AppendUvarint(b, v)
		}
		return b
	}
	cases := map[string][]byte{
		"zero gap":          uv(0, 1),
		"zero tf":           uv(1, 0),
		"gap past uint32":   uv(math.MaxUint32+1, 1),
		"tf past uint32":    uv(1, math.MaxUint32+1),
		"ord hits sentinel": uv(uint64(ordSentinel)+1, 1),
		// Cumulative overflow: two legal gaps whose sum crosses the sentinel.
		"ord sum overflow": uv(uint64(ordSentinel), 1, math.MaxUint32, 1),
	}
	var ords, tfs [blockSize]uint32
	for name, data := range cases {
		count := 1
		if name == "ord sum overflow" {
			count = 2
		}
		if _, err := decodePostingsBlock(data, count, ords[:], tfs[:]); !errors.Is(err, errBlockCorrupt) {
			t.Fatalf("%s: err = %v, want errBlockCorrupt", name, err)
		}
	}
	// A count the scratch buffers cannot hold is caller corruption too.
	if _, err := decodePostingsBlock(uv(1, 1), 2, ords[:1], tfs[:1]); !errors.Is(err, errBlockCorrupt) {
		t.Fatalf("oversized count: err = %v, want errBlockCorrupt", err)
	}
	if _, err := decodePostingsBlock(uv(1, 1), -1, ords[:], tfs[:]); !errors.Is(err, errBlockCorrupt) {
		t.Fatalf("negative count: err = %v, want errBlockCorrupt", err)
	}
}

// FuzzPostingsCodec drives the decoder with arbitrary bytes and counts. For
// any input the decoder must return cleanly — no panics, no out-of-range
// indexes — and anything it accepts must satisfy the posting invariants and
// survive an encode→decode round trip unchanged (so the decoder cannot
// invent postings the encoder could never have produced). Byte-exact
// re-encoding is deliberately not required: uvarint tolerates non-minimal
// encodings, and the encoder only ever emits minimal ones.
func FuzzPostingsCodec(f *testing.F) {
	f.Add([]byte{}, 1)
	f.Add(appendPostingsBlock(nil, []postEntry{{0, 1}}), 1)
	f.Add(appendPostingsBlock(nil, []postEntry{{5, 2}, {1 << 20, 3}}), 2)
	f.Add(appendPostingsBlock(nil, []postEntry{{0, 1}, {ordSentinel - 1, math.MaxUint32}}), 2)
	full := make([]postEntry, blockSize)
	r := rand.New(rand.NewSource(1))
	prev := int64(-1)
	for i := range full {
		prev += 1 + int64(r.Intn(1000))
		full[i] = postEntry{ord: uint32(prev), tf: uint32(1 + r.Intn(9))}
	}
	f.Add(appendPostingsBlock(nil, full), blockSize)
	f.Add([]byte{0x00, 0x01}, 1)                                  // zero gap
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01, 1}, 1) // gap > uint32

	f.Fuzz(func(t *testing.T, data []byte, count int) {
		if count < 0 || count > blockSize {
			count = ((count % blockSize) + blockSize) % blockSize
		}
		var ords, tfs [blockSize]uint32
		n, err := decodePostingsBlock(data, count, ords[:], tfs[:])
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		entries := make([]postEntry, count)
		prev := int64(-1)
		for i := 0; i < count; i++ {
			if int64(ords[i]) <= prev || ords[i] >= ordSentinel || tfs[i] == 0 {
				t.Fatalf("accepted invalid posting %d: ord=%d (prev %d) tf=%d", i, ords[i], prev, tfs[i])
			}
			prev = int64(ords[i])
			entries[i] = postEntry{ord: ords[i], tf: tfs[i]}
		}
		re := appendPostingsBlock(nil, entries)
		if len(re) > n {
			t.Fatalf("re-encode grew: %d bytes from %d consumed", len(re), n)
		}
		var ords2, tfs2 [blockSize]uint32
		m, err := decodePostingsBlock(re, count, ords2[:], tfs2[:])
		if err != nil || m != len(re) {
			t.Fatalf("re-decode: n=%d err=%v", m, err)
		}
		for i := 0; i < count; i++ {
			if ords2[i] != ords[i] || tfs2[i] != tfs[i] {
				t.Fatalf("round trip changed entry %d: (%d,%d) -> (%d,%d)",
					i, ords[i], tfs[i], ords2[i], tfs2[i])
			}
		}
	})
}
