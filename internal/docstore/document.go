// Package docstore is the per-node storage engine of an Agora information
// source: a durable document store with an append-only write-ahead log,
// snapshots with log compaction, and three in-memory indexes — an inverted
// text index, an LSH vector index for similarity search, and a skiplist over
// ingestion time for freshness scans.
//
// Every independent information system in the agora (museum repository,
// auction house, magazine archive, a researcher's personal information base)
// runs one Store.
package docstore

import (
	"fmt"
	"strings"

	"repro/internal/feature"
	"repro/internal/wire"
)

// Kind labels what a document is, mirroring the paper's scenario: scientific
// material, museum holdings, auction catalogs, magazine articles, and
// personal annotations.
type Kind uint8

// Document kinds.
const (
	KindArticle Kind = iota
	KindHolding
	KindCatalogEntry
	KindMagazine
	KindAnnotation
	KindThesis
)

var kindNames = [...]string{"article", "holding", "catalog", "magazine", "annotation", "thesis"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Document is one stored information object. Concept is its projection into
// the shared concept space (used for similarity search and cross-modal
// matching); Visual is present for image-bearing documents.
type Document struct {
	ID         string
	Kind       Kind
	Title      string
	Text       string
	Topics     []string
	Concept    feature.Vector
	ColorHist  feature.Vector
	Texture    feature.Vector
	Provenance string // originating source id
	CreatedAt  int64  // virtual or unix nanos, monotone per store
	Meta       map[string]string
}

// Tokens returns the tokenized searchable text (title + body + topics).
func (d *Document) Tokens() []string {
	var sb strings.Builder
	sb.WriteString(d.Title)
	sb.WriteByte(' ')
	sb.WriteString(d.Text)
	for _, t := range d.Topics {
		sb.WriteByte(' ')
		sb.WriteString(t)
	}
	return feature.Tokenize(sb.String())
}

// Snippet returns a short display excerpt.
func (d *Document) Snippet(n int) string {
	s := d.Title
	if s == "" {
		s = d.Text
	}
	if len(s) > n {
		return s[:n]
	}
	return s
}

// Clone returns a deep copy, so callers may mutate results without touching
// the store's copy.
func (d *Document) Clone() *Document {
	cp := *d
	cp.Topics = append([]string(nil), d.Topics...)
	cp.Concept = d.Concept.Clone()
	cp.ColorHist = d.ColorHist.Clone()
	cp.Texture = d.Texture.Clone()
	if d.Meta != nil {
		cp.Meta = make(map[string]string, len(d.Meta))
		for k, v := range d.Meta {
			cp.Meta[k] = v
		}
	}
	return &cp
}

// marshal encodes a document with the wire codec (stable on-disk format).
func (d *Document) marshal() []byte {
	w := wire.NewWriter(256)
	w.String(d.ID)
	w.U8(uint8(d.Kind))
	w.String(d.Title)
	w.String(d.Text)
	w.Strings(d.Topics)
	w.F64s(d.Concept)
	w.F64s(d.ColorHist)
	w.F64s(d.Texture)
	w.String(d.Provenance)
	w.I64(d.CreatedAt)
	w.Uvarint(uint64(len(d.Meta)))
	// Deterministic order is not required for correctness on disk, but it
	// makes byte-level comparisons in tests stable.
	keys := make([]string, 0, len(d.Meta))
	for k := range d.Meta {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		w.String(k)
		w.String(d.Meta[k])
	}
	return w.Bytes()
}

func unmarshalDocument(b []byte) (*Document, error) {
	r := wire.NewReader(b)
	d := &Document{
		ID:         r.String(),
		Kind:       Kind(r.U8()),
		Title:      r.String(),
		Text:       r.String(),
		Topics:     r.Strings(),
		Concept:    feature.Vector(r.F64s()),
		ColorHist:  feature.Vector(r.F64s()),
		Texture:    feature.Vector(r.F64s()),
		Provenance: r.String(),
		CreatedAt:  r.I64(),
	}
	n := r.Uvarint()
	if n > 0 {
		if n > 1<<20 {
			return nil, fmt.Errorf("docstore: meta count %d too large", n)
		}
		d.Meta = make(map[string]string, n)
		for i := uint64(0); i < n; i++ {
			k := r.String()
			v := r.String()
			if r.Err() != nil {
				break
			}
			d.Meta[k] = v
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("docstore: decoding document: %w", err)
	}
	return d, nil
}

func sortStrings(s []string) {
	// Tiny insertion sort: meta maps are small and this avoids an import.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
