package docstore

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
)

// blockmaxVocab is small on purpose: with hundreds of docs over 24 terms
// most postings lists span multiple 128-entry blocks, so the block-max walk
// has real skip decisions to make on every query.
var blockmaxVocab = []string{
	"gold", "silver", "bronze", "ring", "brooch", "amulet",
	"byzantine", "etruscan", "roman", "filigree", "amber", "jade",
	"pendant", "coin", "mosaic", "pearl", "ivory", "garnet",
	"seal", "vase", "torc", "fibula", "cameo", "diadem",
}

// blockmaxDoc generates a document whose length grows with the numeric part
// of its id. Ordinals are assigned in ascending-ID order, so later blocks
// hold systematically longer (lower-ratio) documents — the across-block
// score-bound variance block-max skipping feeds on. (A corpus with i.i.d.
// lengths puts a near-max-ratio doc in every 128-doc block, and then no
// block bound ever drops below the top-k threshold.)
func blockmaxDoc(r *rand.Rand, id string, at int64) *Document {
	idx, err := strconv.Atoi(id[1:])
	if err != nil {
		panic("blockmaxDoc ids must be letter+digits: " + id)
	}
	title := blockmaxVocab[r.Intn(len(blockmaxVocab))]
	text := ""
	for i := 0; i < 3+idx/25+r.Intn(6); i++ {
		text += blockmaxVocab[r.Intn(len(blockmaxVocab))] + " "
	}
	return doc(id, title, text, at, nil)
}

func blockmaxQueries(r *rand.Rand, n int) []string {
	qs := make([]string, n)
	for i := range qs {
		q := ""
		for j := 0; j <= r.Intn(4); j++ {
			if j > 0 {
				q += " "
			}
			q += blockmaxVocab[r.Intn(len(blockmaxVocab))]
		}
		qs[i] = q
	}
	return qs
}

// requireBlockmaxMatches asserts SearchText (block-max early termination)
// is bit-identical — ids, scores, order — to SearchTextExhaustive (same
// accumulation code, no skipping) for every (query, k) pair.
func requireBlockmaxMatches(t *testing.T, s *Store, queries []string, stage string) {
	t.Helper()
	for _, q := range queries {
		for _, k := range []int{1, 3, 10, 50, -1} {
			got := s.SearchText(q, k)
			want := s.SearchTextExhaustive(q, k)
			if !hitsEqual(got, want) {
				t.Fatalf("%s: SearchText(%q, %d) diverged from exhaustive:\n blockmax:  %v\n exhaustive: %v",
					stage, q, k, hitIDs(got), hitIDs(want))
			}
		}
	}
}

// TestBlockMaxMatchesExhaustive is the acceptance property test for the
// compiled read path: on a randomized corpus under puts, replaces, and
// deletes — crossing freeze boundaries so queries hit base-only,
// overlay-merged, and masked-heavy snapshots — the block-max scorer must
// return exactly what the exhaustive scorer returns, at every step,
// including after crash recovery (reopen) and after compaction (cold start
// from the v2 snapshot file).
func TestBlockMaxMatchesExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	queries := blockmaxQueries(r, 24)

	// Phase 1: in-memory store under churn.
	s, err := Open(Options{ConceptDim: 8, Seed: 7, QueryCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{}
	for step := 0; step < 700; step++ {
		switch op := r.Intn(10); {
		case op < 6 || len(ids) == 0:
			id := fmt.Sprintf("b%04d", len(ids))
			ids = append(ids, id)
			if err := s.Put(blockmaxDoc(r, id, int64(step))); err != nil {
				t.Fatal(err)
			}
		case op < 8:
			if err := s.Put(blockmaxDoc(r, ids[r.Intn(len(ids))], int64(step))); err != nil {
				t.Fatal(err)
			}
		default:
			_ = s.Delete(ids[r.Intn(len(ids))]) // ErrNotFound is fine under churn
		}
		if step%67 == 0 || step > 680 {
			requireBlockmaxMatches(t, s, queries, fmt.Sprintf("mem step %d", step))
		}
	}

	memStats := s.Stats()

	// Phase 2: durable store — recovery replay and v2 snapshot cold start.
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir, ConceptDim: 8, Seed: 7, QueryCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := d.Put(blockmaxDoc(r, fmt.Sprintf("d%03d", r.Intn(200)), int64(i))); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			_ = d.Delete(fmt.Sprintf("d%03d", r.Intn(200)))
		}
	}
	requireBlockmaxMatches(t, d, queries, "durable pre-close")
	before := make(map[string][]Hit, len(queries))
	for _, q := range queries {
		before[q] = d.SearchText(q, 10)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: WAL replay (legacy path — nothing compacted yet).
	d, err = Open(Options{Dir: dir, ConceptDim: 8, Seed: 7, QueryCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if got := d.SearchText(q, 10); !hitsEqual(got, before[q]) {
			t.Fatalf("post-reopen SearchText(%q) diverged: %v vs %v", q, hitIDs(got), hitIDs(before[q]))
		}
	}
	requireBlockmaxMatches(t, d, queries, "post-reopen")

	// Compact (writes the v2 compiled snapshot), reopen (loads it), write
	// more on top of the recovered base, and keep matching throughout.
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d, err = Open(Options{Dir: dir, ConceptDim: 8, Seed: 7, QueryCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, q := range queries {
		if got := d.SearchText(q, 10); !hitsEqual(got, before[q]) {
			t.Fatalf("post-compact cold start SearchText(%q) diverged: %v vs %v", q, hitIDs(got), hitIDs(before[q]))
		}
	}
	requireBlockmaxMatches(t, d, queries, "post-compact cold start")
	for i := 0; i < 150; i++ {
		if err := d.Put(blockmaxDoc(r, fmt.Sprintf("d%03d", r.Intn(220)), int64(1000+i))); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			_ = d.Delete(fmt.Sprintf("d%03d", r.Intn(220)))
		}
	}
	requireBlockmaxMatches(t, d, queries, "post-compact churn")

	// The walk must actually be skipping blocks, not passing vacuously by
	// decoding everything. The in-memory store carries most of the corpus
	// (and therefore most of the skip opportunities); the durable store's
	// count rides along.
	st := d.Stats()
	if memStats.BlocksSkipped+st.BlocksSkipped == 0 {
		t.Fatalf("block-max never skipped a block (decoded=%d): early termination is not engaging",
			memStats.BlocksDecoded+st.BlocksDecoded)
	}
}
