package docstore

import (
	"math"
	"slices"
	"sort"
	"sync"
)

// compiledIndex is the frozen, read-optimized form of the text index. It is
// built once per epoch freeze (and once at snapshot load) from the mutable
// map-based invIndex, and is immutable afterwards: live documents get dense
// ordinals in ascending-ID order, every term's postings become
// delta+varint-compressed blocks (codec.go), and each block carries the
// maximum (1+ln tf)/norm ratio of its postings so the block-max search can
// skip it wholesale when even that optimistic bound cannot reach the
// current top-k threshold.
type compiledIndex struct {
	ids     []string    // ordinal -> document ID (ascending, dense)
	docs    []*Document // ordinal -> document (shared with state.docs)
	docLens []uint32    // ordinal -> token count
	norms   []float64   // ordinal -> sqrt(docLen+1), the score denominator
	ords    map[string]uint32

	terms  map[string]termPostings
	blocks []blockMeta // all terms' block directory, term-major
	data   []byte      // all terms' encoded blocks, one arena

	// Forward index: per ordinal, the sorted IDs (into termList) of the
	// document's distinct terms. The overlay uses it to maintain masked
	// document frequencies incrementally in O(|doc terms|) at mask time,
	// so the query path never intersects masked sets with postings.
	termList []string
	fwd      [][]uint32
}

// termPostings locates one term's blocks inside the shared directory.
type termPostings struct {
	df       int32
	blockOff int32
	nBlocks  int32
	maxRatio float64 // max over the term's blocks
}

// blockMeta describes one encoded block without decoding it. firstOrd lets a
// cursor sit at a block boundary with an exact current ordinal while the
// block stays undecoded ("shallow"), so blocks whose maxRatio bound cannot
// reach the top-k threshold are passed without ever touching their bytes.
type blockMeta struct {
	off      uint32 // byte offset of the block in compiledIndex.data
	firstOrd uint32 // ordinal of the first posting in the block
	lastOrd  uint32 // ordinal of the final posting in the block
	count    uint16 // number of postings (1..blockSize)
	maxRatio float64
}

// compileIndex freezes inv (and the matching docs map) into a
// compiledIndex. Documents are ordered by ID so that equal scores tie-break
// identically whether a doc is identified by ordinal or by ID.
func compileIndex(inv *invIndex, docs map[string]*Document) *compiledIndex {
	n := len(inv.docLen)
	cx := &compiledIndex{
		ids:     make([]string, 0, n),
		docs:    make([]*Document, n),
		docLens: make([]uint32, n),
		norms:   make([]float64, n),
		ords:    make(map[string]uint32, n),
		terms:   make(map[string]termPostings, len(inv.postings)),
		fwd:     make([][]uint32, n),
	}
	for id := range inv.docLen {
		cx.ids = append(cx.ids, id)
	}
	sort.Strings(cx.ids)
	for i, id := range cx.ids {
		cx.ords[id] = uint32(i)
		cx.docLens[i] = uint32(inv.docLen[id])
		cx.norms[i] = math.Sqrt(float64(inv.docLen[id]) + 1)
		cx.docs[i] = docs[id]
	}

	cx.termList = make([]string, 0, len(inv.postings))
	for t := range inv.postings {
		cx.termList = append(cx.termList, t)
	}
	sort.Strings(cx.termList)

	var entries []postEntry
	for ti, t := range cx.termList {
		p := inv.postings[t]
		entries = entries[:0]
		for id, tf := range p {
			entries = append(entries, postEntry{ord: cx.ords[id], tf: uint32(tf)})
		}
		slices.SortFunc(entries, func(a, b postEntry) int {
			return int(int64(a.ord) - int64(b.ord))
		})
		tm := termPostings{df: int32(len(entries)), blockOff: int32(len(cx.blocks))}
		for start := 0; start < len(entries); start += blockSize {
			end := min(start+blockSize, len(entries))
			blk := entries[start:end]
			bm := blockMeta{
				off:      uint32(len(cx.data)),
				firstOrd: blk[0].ord,
				lastOrd:  blk[len(blk)-1].ord,
				count:    uint16(len(blk)),
			}
			for _, e := range blk {
				r := (1 + math.Log(float64(e.tf))) / cx.norms[e.ord]
				if r > bm.maxRatio {
					bm.maxRatio = r
				}
			}
			cx.data = appendPostingsBlock(cx.data, blk)
			cx.blocks = append(cx.blocks, bm)
			if bm.maxRatio > tm.maxRatio {
				tm.maxRatio = bm.maxRatio
			}
		}
		tm.nBlocks = int32(len(cx.blocks)) - tm.blockOff
		cx.terms[t] = tm
		for _, e := range entries {
			cx.fwd[e.ord] = append(cx.fwd[e.ord], uint32(ti))
		}
	}
	return cx
}

// termBlocks returns the slice of block metadata for tm.
func (cx *compiledIndex) termBlocks(tm termPostings) []blockMeta {
	return cx.blocks[tm.blockOff : tm.blockOff+tm.nBlocks]
}

// searchStats counts block-level work for one query.
type searchStats struct {
	blocksDecoded uint64
	blocksSkipped uint64
}

// queryTerm is one distinct query term in canonical (first-appearance)
// order, with its query-side weight. Scores are accumulated per document in
// this order on every path — block-max, exhaustive, and overlay — so float
// rounding is identical everywhere.
type queryTerm struct {
	t   string
	qn  int // occurrences in the query
	idf float64
	qw  float64 // (1+ln qn) * idf
}

// cursor walks one term's compressed postings, decoding at most one block at
// a time into its inline buffers. A cursor can be "shallow": positioned on a
// block's first posting (curOrd = firstOrd, exact) with the block not yet
// decoded — curTF is only valid once loaded. Blocks that never survive a
// bound check are passed shallow, without touching their bytes.
// curOrd == ordSentinel means exhausted.
type cursor struct {
	idf    float64
	qw     float64
	termUB float64 // qw * idf * term maxRatio: best score mass this term can add
	blocks []blockMeta
	data   []byte
	bi     int  // current block index
	loaded bool // current block decoded into ords/tfs
	n      int  // decoded entries in the current block
	pos    int  // position within the decoded block
	curOrd uint32
	curTF  uint32
	ords   [blockSize]uint32
	tfs    [blockSize]uint32
}

func (c *cursor) decodeBlock(st *searchStats) {
	bm := &c.blocks[c.bi]
	n := int(bm.count)
	if _, err := decodePostingsBlock(c.data[bm.off:], n, c.ords[:n], c.tfs[:n]); err != nil {
		// The arena is either compiled in-process or fully validated at
		// snapshot load, so a decode failure here is a program bug.
		panic(err)
	}
	c.loaded = true
	c.n = n
	c.pos = 0
	c.curOrd = c.ords[0]
	c.curTF = c.tfs[0]
	st.blocksDecoded++
}

// enterShallow positions the cursor on block bi's first posting without
// decoding it (or marks the cursor exhausted past the last block).
func (c *cursor) enterShallow(bi int) {
	c.bi = bi
	c.loaded = false
	if bi >= len(c.blocks) {
		c.curOrd = ordSentinel
		return
	}
	c.curOrd = c.blocks[bi].firstOrd
}

// next advances the cursor by one posting. Block transitions are shallow:
// the next block's first ordinal comes from metadata, not from decoding.
func (c *cursor) next(st *searchStats) {
	if !c.loaded {
		c.decodeBlock(st) // shallow on firstOrd: decode, then step past it
	}
	c.pos++
	if c.pos < c.n {
		c.curOrd = c.ords[c.pos]
		c.curTF = c.tfs[c.pos]
		return
	}
	c.enterShallow(c.bi + 1)
}

// seek advances the cursor to the first posting with ordinal >= target,
// skipping (without decoding) every block that ends before it — including
// the current one if it was never loaded.
func (c *cursor) seek(target uint32, st *searchStats) {
	if c.curOrd >= target { // includes the exhausted sentinel
		return
	}
	if c.blocks[c.bi].lastOrd < target {
		if !c.loaded {
			st.blocksSkipped++
		}
		bi := c.bi + 1
		for bi < len(c.blocks) && c.blocks[bi].lastOrd < target {
			bi++
			st.blocksSkipped++
		}
		c.enterShallow(bi)
		if c.curOrd >= target { // exhausted, or the first posting already qualifies
			return
		}
	}
	if !c.loaded {
		c.decodeBlock(st)
	}
	for c.pos < c.n && c.ords[c.pos] < target {
		c.pos++
	}
	// The current block's lastOrd >= target, so pos is in range.
	c.curOrd = c.ords[c.pos]
	c.curTF = c.tfs[c.pos]
}

// boundSlack pads upper-bound comparisons so IEEE rounding in the bound
// arithmetic can never make a block look skippable when the exactly-scored
// document would have entered the heap. The true score and its bound differ
// by at most a handful of rounded multiply/divide/add steps per term, each
// contributing a relative error of 2^-53; 1e-9 over-covers that by ~10^6×
// while costing no measurable skipping power.
const boundSlack = 1 + 1e-9

// searchScratch is the pooled per-query state that makes the steady-state
// text query allocation-free: every slice below retains its backing array
// across queries, and ovAcc is cleared rather than reallocated.
type searchScratch struct {
	keyBuf  []byte
	terms   []queryTerm
	cursors []cursor
	order   []int
	masked  []uint32
	heap    []scored
	ovAcc   map[string]float64
	stats   searchStats
}

var scratchPool = sync.Pool{
	New: func() any {
		return &searchScratch{ovAcc: make(map[string]float64, 16)}
	},
}

func getScratch() *searchScratch {
	sc := scratchPool.Get().(*searchScratch)
	sc.stats = searchStats{}
	return sc
}

func putScratch(sc *searchScratch) { scratchPool.Put(sc) }

// searchCompiled runs the text top-k over the compiled base index merged
// with the snapshot's overlay. In block-max mode (exhaustive=false) it runs
// WAND-style early termination: terms become cursors over their compressed
// postings, the topK heap's minimum is the threshold θ, and any document
// range whose summed term/block upper bounds cannot reach θ is skipped
// without decoding. In exhaustive mode every candidate is scored through
// the exact same accumulation code, so the two modes are bit-identical on
// the documents they both score — and the skipped ones provably lose.
//
// Result ordering and scores match the historical map-walk scorer:
// contributions accumulate per document in canonical query-term order, and
// the heap's (score desc, id asc) total order makes the top-k set
// independent of candidate arrival order.
//
// gs, when non-nil, replaces the snapshot's document count and per-term
// document frequencies with corpus-wide figures supplied by a scatter
// router. The idf and query weights then come out as the exact floats a
// single node holding the whole corpus would compute, which is what makes
// a sharded top-k merge bit-identical to the monolithic result. Term
// frequencies and norms stay local — they are per-document facts.
func (sn *snapshot) searchCompiled(tokens []string, k int, sc *searchScratch, exhaustive bool, gs *GlobalStats) []scored {
	cx := sn.base.cx
	ov := sn.ov
	total := sn.docCount
	if gs != nil {
		total = int(gs.TotalDocs)
	}
	if total == 0 || len(tokens) == 0 || k == 0 {
		return nil
	}

	// Distinct terms in first-appearance order with query-side tf.
	sc.terms = sc.terms[:0]
tokenLoop:
	for _, t := range tokens {
		for i := range sc.terms {
			if sc.terms[i].t == t {
				sc.terms[i].qn++
				continue tokenLoop
			}
		}
		sc.terms = append(sc.terms, queryTerm{t: t, qn: 1})
	}

	// Per-term document frequency (base minus masked plus overlay), idf,
	// and a cursor for every term with base postings.
	sc.cursors = sc.cursors[:0]
	for i := range sc.terms {
		qt := &sc.terms[i]
		tm, hasBase := cx.terms[qt.t]
		df := 0
		if gs != nil {
			df = int(gs.dfOf(qt.t))
		} else {
			if hasBase {
				df = int(tm.df)
			}
			df -= ov.maskedDF[qt.t]
			df += ov.df(qt.t)
		}
		if df <= 0 {
			qt.qw = 0
			continue
		}
		qt.idf = math.Log(1 + float64(total)/float64(1+df))
		qt.qw = (1 + math.Log(float64(qt.qn))) * qt.idf
		if !hasBase {
			continue
		}
		sc.cursors = append(sc.cursors, cursor{
			idf:    qt.idf,
			qw:     qt.qw,
			termUB: qt.qw * qt.idf * tm.maxRatio,
			blocks: cx.termBlocks(tm),
			data:   cx.data,
		})
		sc.cursors[len(sc.cursors)-1].enterShallow(0)
	}

	h := topK[scored]{k: k, better: scoredBetter, items: sc.heap[:0]}

	// Overlay documents first: they are few (bounded by the freeze limit),
	// and scoring them up front seeds the heap threshold before the base
	// walk starts, which is where early termination pays.
	if len(ov.byID) > 0 {
		clear(sc.ovAcc)
		for i := range sc.terms {
			qt := &sc.terms[i]
			if qt.qw == 0 {
				continue
			}
			for _, p := range ov.postingsFor(qt.t) {
				dw := (1 + math.Log(float64(p.tf))) * qt.idf
				sc.ovAcc[p.id] += qt.qw * dw
			}
		}
		for id, acc := range sc.ovAcc {
			norm := math.Sqrt(float64(ov.docLen[id]) + 1)
			h.push(scored{id: id, ord: -1, score: acc / norm})
		}
	}

	if len(sc.cursors) > 0 {
		sn.walkBase(&h, sc, exhaustive)
	}

	res := h.sorted()
	sc.heap = res[:0] // retain backing for the next query
	return res
}

// walkBase runs the document-at-a-time walk over the base cursors,
// applying block-max skipping unless exhaustive.
func (sn *snapshot) walkBase(h *topK[scored], sc *searchScratch, exhaustive bool) {
	cx := sn.base.cx
	ov := sn.ov

	// Masked base ordinals, ascending. Evaluated ordinals only increase,
	// so one monotonic pointer replaces per-candidate set lookups.
	sc.masked = sc.masked[:0]
	for id := range ov.masked {
		if ord, ok := cx.ords[id]; ok {
			sc.masked = append(sc.masked, ord)
		}
	}
	slices.Sort(sc.masked)
	mi := 0

	sc.order = sc.order[:0]
	for i := range sc.cursors {
		sc.order = append(sc.order, i)
	}

	for {
		// Keep cursor indexes sorted by current ordinal (insertion sort:
		// the slice is nearly sorted and tiny — one entry per query term).
		for i := 1; i < len(sc.order); i++ {
			for j := i; j > 0 && sc.cursors[sc.order[j]].curOrd < sc.cursors[sc.order[j-1]].curOrd; j-- {
				sc.order[j], sc.order[j-1] = sc.order[j-1], sc.order[j]
			}
		}
		lead := &sc.cursors[sc.order[0]]
		if lead.curOrd == ordSentinel {
			return
		}

		if !exhaustive && h.k > 0 && len(h.items) == h.k {
			theta := h.items[0].score
			// Pivot: shortest prefix of cursors (by current ordinal) whose
			// summed term bounds could reach θ. Documents before the pivot
			// ordinal are covered by fewer terms than that, so they lose.
			ub := 0.0
			pivot := -1
			for j := 0; j < len(sc.order); j++ {
				c := &sc.cursors[sc.order[j]]
				if c.curOrd == ordSentinel {
					break
				}
				ub += c.termUB
				if ub*boundSlack >= theta {
					pivot = j
					break
				}
			}
			if pivot < 0 {
				return // even all remaining terms together cannot reach θ
			}
			pivotOrd := sc.cursors[sc.order[pivot]].curOrd
			if lead.curOrd != pivotOrd {
				// WAND skip: no document before pivotOrd can win. Advance
				// the lagging cursors; seek skips their dead blocks.
				for j := 0; j < pivot; j++ {
					sc.cursors[sc.order[j]].seek(pivotOrd, &sc.stats)
				}
				continue
			}
			// All cursors at pivotOrd form the group. Tighten the bound
			// with their current blocks' maxima; if even that cannot reach
			// θ, every document up to the group's nearest block boundary
			// (capped by the next cursor beyond the group) loses too.
			bub := 0.0
			blockEnd := ordSentinel
			nextOrd := ordSentinel
			for j := 0; j < len(sc.order); j++ {
				c := &sc.cursors[sc.order[j]]
				if c.curOrd != pivotOrd {
					nextOrd = c.curOrd // sorted: first non-member is the minimum beyond
					break
				}
				bm := &c.blocks[c.bi]
				bub += c.qw * c.idf * bm.maxRatio
				if bm.lastOrd < blockEnd {
					blockEnd = bm.lastOrd
				}
			}
			if bub*boundSlack < theta {
				if pivot == 0 && uint64(nextOrd) > uint64(blockEnd) &&
					(len(sc.order) == 1 || sc.cursors[sc.order[1]].curOrd != pivotOrd) {
					// Single-member group abandoning its whole block: every
					// document strictly before nextOrd contains only this
					// query term, so any further block that both ends before
					// nextOrd and whose own metadata bound cannot reach θ
					// loses wholesale — pass it shallow, bytes untouched.
					// (Multi-member groups fall through to seek: their
					// combined bound changes at each member's block boundary,
					// so they re-check one step at a time.)
					c := lead
					if !c.loaded {
						sc.stats.blocksSkipped++
					}
					bi := c.bi + 1
					for bi < len(c.blocks) && c.blocks[bi].lastOrd < nextOrd &&
						c.qw*c.idf*c.blocks[bi].maxRatio*boundSlack < theta {
						bi++
						sc.stats.blocksSkipped++
					}
					c.enterShallow(bi)
					continue
				}
				target := uint32(min(uint64(blockEnd)+1, uint64(nextOrd)))
				for j := 0; j < len(sc.order); j++ {
					c := &sc.cursors[sc.order[j]]
					if c.curOrd != pivotOrd {
						break
					}
					c.seek(target, &sc.stats)
				}
				continue
			}
			// Bound reachable: fall through and score pivotOrd exactly.
		}

		d := lead.curOrd
		for mi < len(sc.masked) && sc.masked[mi] < d {
			mi++
		}
		if mi == len(sc.masked) || sc.masked[mi] != d {
			// Exact score, accumulated in canonical term order: cursors
			// were appended in that order and are scanned by index here.
			acc := 0.0
			for i := range sc.cursors {
				c := &sc.cursors[i]
				if c.curOrd == d {
					if !c.loaded {
						c.decodeBlock(&sc.stats) // shallow on d: pos 0 is d's tf
					}
					dw := (1 + math.Log(float64(c.curTF))) * c.idf
					acc += c.qw * dw
				}
			}
			h.push(scored{id: cx.ids[d], ord: int32(d), score: acc / cx.norms[d]})
		}
		for i := range sc.cursors {
			if sc.cursors[i].curOrd == d {
				sc.cursors[i].next(&sc.stats)
			}
		}
	}
}
