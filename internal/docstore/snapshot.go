package docstore

import (
	"sort"

	"repro/internal/feature"
)

// This file implements the lock-free read path. The write path (Put /
// Delete / Compact, serialized by Store.mu) maintains one mutable "master"
// state and, after every mutation, publishes an immutable snapshot through
// an atomic pointer. Readers load the snapshot once and never touch the
// store lock — a search can run entirely concurrently with writers, and a
// reader holding an old snapshot simply keeps seeing the old epoch.
//
// Publishing a full deep copy per write would make Put O(n). Instead a
// snapshot is a frozen base plus a small immutable overlay delta:
//
//	snapshot = { base: frozen state, ov: docs written since the freeze }
//
// Each write clones the (small) overlay and republishes; once the overlay
// reaches overlayLimit the master is deep-cloned into a fresh base and the
// overlay resets — small-batch coalescing that amortizes the O(n) freeze
// over many writes.
//
// Exactness contract: every read through (base, ov) must be result-identical
// to the same read against a monolithic index containing the live documents.
// The subtle cases are TF-IDF (document frequencies count base postings
// minus superseded ids plus overlay carriers, with the float expression
// order fixed by searchCompiled's canonical term order) and LSH bucket
// membership (overlay vectors carry precomputed per-table signatures so
// they join exactly the buckets an indexed vector would — see
// feature.Extra). TestSnapshotMatchesMonolithic pins this equivalence
// across freeze boundaries.

// state bundles the five index structures. The master state is guarded by
// Store.mu; frozen copies inside snapshots are immutable. The master keeps
// the mutable map-based inv; frozen bases instead carry cx, the
// block-compressed compiled form queries run against (inv is nil there).
type state struct {
	docs    map[string]*Document
	inv     *invIndex
	cx      *compiledIndex
	vec     *feature.LSH
	byTime  *skiplist
	byTopic map[string]map[string]bool
	// visuals counts docs carrying visual features, so SearchVisual can
	// return before building any scratch state when there are none.
	visuals int
}

func newState(opts Options) *state {
	return &state{
		docs:    make(map[string]*Document),
		inv:     newInvIndex(),
		vec:     feature.NewLSH(opts.Seed, opts.ConceptDim, opts.LSHTables, opts.LSHBits),
		byTime:  newSkiplist(opts.Seed + 1),
		byTopic: make(map[string]map[string]bool),
	}
}

// applyPut updates in-memory state only (no WAL, no snapshot publish).
func (st *state) applyPut(d *Document, tokens []string) {
	if old, ok := st.docs[d.ID]; ok {
		st.byTime.remove(old.CreatedAt, old.ID)
		st.removeTopics(old)
		if hasVisual(old) {
			st.visuals--
		}
	}
	st.docs[d.ID] = d
	for _, t := range d.Topics {
		set, ok := st.byTopic[t]
		if !ok {
			set = make(map[string]bool)
			st.byTopic[t] = set
		}
		set[d.ID] = true
	}
	st.inv.add(d.ID, tokens)
	if len(d.Concept) > 0 {
		st.vec.Put(d.ID, d.Concept)
	} else {
		st.vec.Delete(d.ID)
	}
	st.byTime.insert(d.CreatedAt, d.ID)
	if hasVisual(d) {
		st.visuals++
	}
}

func (st *state) applyDelete(id string) {
	d, ok := st.docs[id]
	if !ok {
		return
	}
	delete(st.docs, id)
	st.inv.removeDoc(id)
	st.vec.Delete(id)
	st.byTime.remove(d.CreatedAt, id)
	st.removeTopics(d)
	if hasVisual(d) {
		st.visuals--
	}
}

func (st *state) removeTopics(d *Document) {
	for _, t := range d.Topics {
		if set, ok := st.byTopic[t]; ok {
			delete(set, d.ID)
			if len(set) == 0 {
				delete(st.byTopic, t)
			}
		}
	}
}

// freeze copies the index structures into an immutable base. Documents
// themselves are shared: the write path never mutates a stored *Document in
// place (Put installs a fresh clone), so pointers are safe across epochs.
// The text index is not cloned — it is compiled into the immutable
// block-compressed form the read path wants anyway, so the freeze does the
// work queries would otherwise repeat.
func (st *state) freeze() *state {
	docs := make(map[string]*Document, len(st.docs))
	for id, d := range st.docs {
		docs[id] = d
	}
	topics := make(map[string]map[string]bool, len(st.byTopic))
	for t, set := range st.byTopic {
		ns := make(map[string]bool, len(set))
		for id := range set {
			ns[id] = true
		}
		topics[t] = ns
	}
	return &state{
		docs:    docs,
		cx:      compileIndex(st.inv, docs),
		vec:     st.vec.Clone(),
		byTime:  st.byTime.clone(),
		byTopic: topics,
		visuals: st.visuals,
	}
}

func hasVisual(d *Document) bool {
	return len(d.ColorHist) > 0 || len(d.Texture) > 0
}

// timeEntry mirrors one skiplist pair for the overlay's sorted time slice.
type timeEntry struct {
	key int64
	id  string
}

// overlay is the immutable delta on top of a frozen base. Every write to an
// id that exists in the base marks it masked (dead in the base); liveness of
// an overlay id is byID membership. The zero overlay (nil maps) is valid:
// lookups on nil maps read as empty.
type overlay struct {
	ops    int             // writes since the last freeze
	masked map[string]bool // base ids superseded or deleted
	// maskedDF counts, per term, how many masked ids carry the term in the
	// frozen base — maintained incrementally from the compiled forward
	// index when an id is masked, so the query path computes live document
	// frequencies in O(1) per term instead of intersecting the masked set
	// with postings.
	maskedDF map[string]int
	byID     map[string]*Document
	byTime   []timeEntry               // ascending (key, id)
	terms    map[string]map[string]int // docID -> term -> tf (inner maps immutable)
	docLen   map[string]int
	// termPost inverts terms (term -> carriers sorted by docID) so per-term
	// document frequency and overlay scoring are O(carriers), not
	// O(overlay docs). Slices are copy-on-write: cloneNext shares them, and
	// any write replaces the touched term's slice with a fresh copy.
	termPost map[string][]ovPost
	extras   []feature.Extra // overlay concept vectors with precomputed signatures
}

// ovPost is one overlay posting: a carrier document and its term frequency.
type ovPost struct {
	id string
	tf int
}

// cloneNext deep-copies the overlay's own containers for the next write.
// Inner term maps and documents are immutable after insertion and shared.
func (ov *overlay) cloneNext() *overlay { return ov.cloneNextN(1) }

// cloneNextN is cloneNext for a commit window of n writes: ONE deep copy
// absorbs the whole window (the committer folds every windowed op into the
// clone before publishing), so publish cost is O(overlay + window) rather
// than O(overlay × window).
func (ov *overlay) cloneNextN(n int) *overlay {
	nv := &overlay{
		ops:      ov.ops + n,
		masked:   make(map[string]bool, len(ov.masked)+1),
		maskedDF: make(map[string]int, len(ov.maskedDF)+8),
		byID:     make(map[string]*Document, len(ov.byID)+1),
		byTime:   append([]timeEntry(nil), ov.byTime...),
		terms:    make(map[string]map[string]int, len(ov.terms)+1),
		docLen:   make(map[string]int, len(ov.docLen)+1),
		termPost: make(map[string][]ovPost, len(ov.termPost)+8),
		extras:   append([]feature.Extra(nil), ov.extras...),
	}
	for id := range ov.masked {
		nv.masked[id] = true
	}
	for t, c := range ov.maskedDF {
		nv.maskedDF[t] = c
	}
	for id, d := range ov.byID {
		nv.byID[id] = d
	}
	for id, m := range ov.terms {
		nv.terms[id] = m
	}
	for id, l := range ov.docLen {
		nv.docLen[id] = l
	}
	for t, p := range ov.termPost {
		nv.termPost[t] = p
	}
	return nv
}

// dropID removes any existing overlay entry for id (a replace or delete of a
// doc written since the freeze). The masked set is left alone: masking
// records a fact about the base, which does not change within an overlay's
// lifetime.
func (nv *overlay) dropID(id string) {
	old, ok := nv.byID[id]
	if !ok {
		return
	}
	delete(nv.byID, id)
	for t := range nv.terms[id] {
		nv.delTermPost(t, id)
	}
	delete(nv.terms, id)
	delete(nv.docLen, id)
	nv.removeTime(old.CreatedAt, id)
	for i := range nv.extras {
		if nv.extras[i].ID == id {
			nv.extras = append(nv.extras[:i], nv.extras[i+1:]...)
			break
		}
	}
}

func (nv *overlay) insertTime(key int64, id string) {
	i := sort.Search(len(nv.byTime), func(i int) bool {
		e := nv.byTime[i]
		return !skipLess(e.key, e.id, key, id)
	})
	nv.byTime = append(nv.byTime, timeEntry{})
	copy(nv.byTime[i+1:], nv.byTime[i:])
	nv.byTime[i] = timeEntry{key: key, id: id}
}

func (nv *overlay) removeTime(key int64, id string) {
	i := sort.Search(len(nv.byTime), func(i int) bool {
		e := nv.byTime[i]
		return !skipLess(e.key, e.id, key, id)
	})
	if i < len(nv.byTime) && nv.byTime[i].key == key && nv.byTime[i].id == id {
		nv.byTime = append(nv.byTime[:i], nv.byTime[i+1:]...)
	}
}

// withPut returns the overlay extended with d. cx is the frozen base's
// compiled index (for masked-df bookkeeping); sigs are d.Concept's
// per-table LSH signatures (nil when the doc has no concept vector). inBase
// says whether the base holds a (now superseded) version of d.ID.
func (ov *overlay) withPut(d *Document, tokens []string, sigs []uint64, inBase bool, cx *compiledIndex) *overlay {
	nv := ov.cloneNext()
	nv.putDoc(d, tokens, sigs, inBase, cx)
	return nv
}

// putDoc folds d into a freshly cloned (not yet published) overlay. Callers
// own nv exclusively; once published the overlay is immutable again.
func (nv *overlay) putDoc(d *Document, tokens []string, sigs []uint64, inBase bool, cx *compiledIndex) {
	nv.dropID(d.ID)
	if inBase {
		nv.maskBase(d.ID, cx)
	}
	nv.byID[d.ID] = d
	nv.insertTime(d.CreatedAt, d.ID)
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	nv.terms[d.ID] = tf
	nv.docLen[d.ID] = len(tokens)
	for t, n := range tf {
		nv.setTermPost(t, d.ID, n)
	}
	if len(d.Concept) > 0 {
		nv.extras = append(nv.extras, feature.Extra{ID: d.ID, Vec: d.Concept, Sigs: sigs})
	}
}

// withDelete returns the overlay with id removed (and masked when the base
// holds it).
func (ov *overlay) withDelete(id string, inBase bool, cx *compiledIndex) *overlay {
	nv := ov.cloneNext()
	nv.deleteDoc(id, inBase, cx)
	return nv
}

// deleteDoc folds a delete into a freshly cloned overlay (see putDoc).
func (nv *overlay) deleteDoc(id string, inBase bool, cx *compiledIndex) {
	nv.dropID(id)
	if inBase {
		nv.maskBase(id, cx)
	}
}

// maskBase marks a base id dead and charges its distinct terms to
// maskedDF via the compiled forward index. Masking is idempotent per
// overlay lifetime — an id already masked was already charged.
func (nv *overlay) maskBase(id string, cx *compiledIndex) {
	if nv.masked[id] {
		return
	}
	nv.masked[id] = true
	if cx == nil {
		return
	}
	ord, ok := cx.ords[id]
	if !ok {
		return
	}
	for _, ti := range cx.fwd[ord] {
		nv.maskedDF[cx.termList[ti]]++
	}
}

// setTermPost records id carrying term with frequency tf, copying the
// term's posting slice so shared predecessors stay immutable.
func (nv *overlay) setTermPost(t, id string, tf int) {
	p := nv.termPost[t]
	i := sort.Search(len(p), func(i int) bool { return p[i].id >= id })
	np := make([]ovPost, 0, len(p)+1)
	np = append(np, p[:i]...)
	np = append(np, ovPost{id: id, tf: tf})
	if i < len(p) && p[i].id == id {
		i++ // replace the existing entry
	}
	np = append(np, p[i:]...)
	nv.termPost[t] = np
}

// delTermPost removes id from term's posting slice, same copy-on-write
// discipline.
func (nv *overlay) delTermPost(t, id string) {
	p, ok := nv.termPost[t]
	if !ok {
		return
	}
	i := sort.Search(len(p), func(i int) bool { return p[i].id >= id })
	if i >= len(p) || p[i].id != id {
		return
	}
	if len(p) == 1 {
		delete(nv.termPost, t)
		return
	}
	np := make([]ovPost, 0, len(p)-1)
	np = append(np, p[:i]...)
	np = append(np, p[i+1:]...)
	nv.termPost[t] = np
}

// postingsFor returns term's overlay postings, sorted by document ID. The
// slice is shared and read-only.
func (ov *overlay) postingsFor(term string) []ovPost {
	return ov.termPost[term]
}

// df returns how many overlay docs carry term.
func (ov *overlay) df(term string) int {
	return len(ov.termPost[term])
}

// overlayLimit bounds overlay size before a freeze: large enough to
// amortize the O(n) deep clone, small enough to keep the per-query overlay
// adjustments cheap.
func overlayLimit(baseDocs int) int {
	lim := baseDocs / 8
	if lim < 64 {
		lim = 64
	}
	if lim > 512 {
		lim = 512
	}
	return lim
}

// snapshot is one published epoch: an immutable view of the store.
// docCount/termCount/visualCount are copied from the master at publish time
// so Stats and search normalization need no reconstruction.
type snapshot struct {
	epoch       uint64
	base        *state
	ov          *overlay
	docCount    int
	termCount   int
	visualCount int
}

// getDoc returns the live document for id, or nil. The pointer is
// snapshot-owned and must be cloned before leaving the store.
func (sn *snapshot) getDoc(id string) *Document {
	if d, ok := sn.ov.byID[id]; ok {
		return d
	}
	if sn.ov.masked[id] {
		return nil
	}
	return sn.base.docs[id]
}

// searchTextRaw ranks against the merged index (block-max over the
// compiled base, exact merge with the overlay). Returned hits share
// snapshot-owned documents — they are read-only for callers.
func (sn *snapshot) searchTextRaw(tokens []string, k int, sc *searchScratch) []Hit {
	return sn.assembleHits(sn.searchCompiled(tokens, k, sc, false, nil))
}

// searchTextGlobal is searchTextRaw scored under router-supplied global
// statistics (see GlobalStats): same block-max walk, same accumulation
// order, idf/query weights computed from the corpus-wide document count and
// frequencies instead of this shard's local ones.
func (sn *snapshot) searchTextGlobal(tokens []string, k int, sc *searchScratch, gs *GlobalStats) []Hit {
	return sn.assembleHits(sn.searchCompiled(tokens, k, sc, false, gs))
}

// searchTextExhaustive is the reference scorer: the same accumulation code
// with early termination disabled, so every candidate is scored. Property
// tests pin searchTextRaw bit-identical to it.
func (sn *snapshot) searchTextExhaustive(tokens []string, k int, sc *searchScratch) []Hit {
	return sn.assembleHits(sn.searchCompiled(tokens, k, sc, true, nil))
}

// assembleHits resolves ranked ordinals/ids into hit documents. The scored
// slice is scratch-backed, so hits must be built before the scratch is
// reused.
func (sn *snapshot) assembleHits(res []scored) []Hit {
	if len(res) == 0 {
		return nil
	}
	hits := make([]Hit, 0, len(res)) //lint:allow hotalloc the one documented cold-query allocation: the returned []Hit
	for _, r := range res {
		var d *Document
		if r.ord >= 0 {
			d = sn.base.cx.docs[r.ord]
		} else {
			d = sn.ov.byID[r.id]
		}
		if d != nil {
			hits = append(hits, Hit{Doc: d, Score: r.score}) //lint:allow hotalloc appends into the sized cold-query allocation above; never grows
		}
	}
	return hits
}

// searchVectorRaw mirrors the monolithic searchVector: exact scan for small
// stores, LSH with scan fallback otherwise. Masked base ids are excluded
// before top-k selection and overlay vectors join via their precomputed
// signatures, so the candidate set matches a monolithic index exactly.
func (sn *snapshot) searchVectorRaw(concept feature.Vector, k int) []Hit {
	excluded := func(id string) bool { return sn.ov.masked[id] }
	var cands []feature.Candidate
	if sn.docCount <= 256 {
		cands = sn.base.vec.ScanWith(concept, k, sn.ov.extras, excluded)
	} else {
		cands = sn.base.vec.QueryWith(concept, k, sn.ov.extras, excluded)
		if len(cands) < k {
			cands = sn.base.vec.ScanWith(concept, k, sn.ov.extras, excluded)
		}
	}
	hits := make([]Hit, 0, len(cands))
	for _, c := range cands {
		if d := sn.getDoc(c.ID); d != nil {
			hits = append(hits, Hit{Doc: d, Score: c.Score})
		}
	}
	return hits
}

// scanAsc visits live (key, id) pairs with key in [from, to] ascending — an
// ordered merge of the base skiplist (skipping masked ids) with the
// overlay's sorted slice, yielding exactly the sequence a monolithic
// skiplist over the live set would.
func (sn *snapshot) scanAsc(from, to int64, visit func(key int64, id string) bool) {
	ents := sn.ov.byTime
	oi := 0
	for oi < len(ents) && ents[oi].key < from {
		oi++
	}
	stopped := false
	sn.base.byTime.scanRange(from, to, func(k int64, id string) bool {
		for oi < len(ents) && ents[oi].key <= to && skipLess(ents[oi].key, ents[oi].id, k, id) {
			if !visit(ents[oi].key, ents[oi].id) {
				stopped = true
				return false
			}
			oi++
		}
		if sn.ov.masked[id] {
			return true
		}
		if !visit(k, id) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for oi < len(ents) && ents[oi].key <= to {
		if !visit(ents[oi].key, ents[oi].id) {
			return
		}
		oi++
	}
}

// scanDesc visits live pairs with key <= max in descending order,
// materializing the ascending merge like skiplist.scanDescending. limit < 0
// means unbounded; like the skiplist, it counts visits.
func (sn *snapshot) scanDesc(max int64, limit int, visit func(key int64, id string) bool) {
	var all []timeEntry
	sn.scanAsc(-1<<63, max, func(k int64, id string) bool {
		all = append(all, timeEntry{key: k, id: id})
		return true
	})
	for i := len(all) - 1; i >= 0; i-- {
		if limit == 0 {
			return
		}
		if !visit(all[i].key, all[i].id) {
			return
		}
		if limit > 0 {
			limit--
		}
	}
}

// topicCount counts live docs carrying topic: base members not masked, plus
// overlay carriers.
func (sn *snapshot) topicCount(topic string) int {
	set := sn.base.byTopic[topic]
	n := len(set)
	for id := range sn.ov.masked {
		if set[id] {
			n--
		}
	}
	for _, d := range sn.ov.byID {
		for _, t := range d.Topics {
			if t == topic {
				n++
				break
			}
		}
	}
	return n
}

// hasTopic reports whether the live doc id carries topic. Callers only pass
// ids that came out of a live scan, so masked base ids never reach here.
func (sn *snapshot) hasTopic(id, topic string) bool {
	if d, ok := sn.ov.byID[id]; ok {
		for _, t := range d.Topics {
			if t == topic {
				return true
			}
		}
		return false
	}
	return sn.base.byTopic[topic][id]
}
