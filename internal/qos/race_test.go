package qos

import (
	"fmt"
	"sync"
	"testing"
)

// The reputation ledger is shared by every fan-out worker settling
// contracts (core applies outcomes in plan order, but nothing stops a
// future caller from recording concurrently), and it had never run under
// -race. Hammer every public method from racing goroutines; run with
// `make race`.
func TestReputationLedgerConcurrent(t *testing.T) {
	l := NewReputationLedger(0.98, 16)
	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			provider := fmt.Sprintf("p%d", w%3) // contend on shared providers
			for i := 0; i < rounds; i++ {
				l.RecordOutcome(provider, Outcome{
					Fulfilled: i%3 != 0,
					Shortfall: float64(i%4) / 4,
				})
				l.Trust(provider)
				l.Belief(provider)
				l.History(provider)
				l.Ranked()
				l.Blacklisted(provider, 0.3, 5)
			}
		}(w)
	}
	wg.Wait()
	for p := 0; p < 3; p++ {
		provider := fmt.Sprintf("p%d", p)
		tr := l.Trust(provider)
		if tr < 0 || tr > 1 {
			t.Errorf("Trust(%s) = %v out of [0,1] after concurrent updates", provider, tr)
		}
		if h := l.History(provider); len(h) > 16 {
			t.Errorf("History(%s) retained %d > keepN=16", provider, len(h))
		}
	}
	if got := len(l.Ranked()); got != 3 {
		t.Errorf("Ranked() has %d providers, want 3", got)
	}
}
