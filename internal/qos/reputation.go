package qos

import (
	"sort"
	"sync"

	"repro/internal/uncertainty"
)

// ReputationLedger accumulates contract outcomes into per-provider quality
// beliefs. This implements the paper's greengrocer: "if the vegetables are
// not as fresh as promised, in time, her trust is reduced and she shops for
// vegetables elsewhere."
type ReputationLedger struct {
	mu      sync.RWMutex
	beliefs map[string]uncertainty.BetaBelief
	decay   float64 // applied per observation window
	history map[string][]Outcome
	keepN   int
}

// NewReputationLedger returns a ledger. decay in (0,1] discounts old
// evidence each time RecordOutcome is called for a provider; keepN bounds
// per-provider history retained for inspection.
func NewReputationLedger(decay float64, keepN int) *ReputationLedger {
	if decay <= 0 || decay > 1 {
		decay = 0.99
	}
	if keepN <= 0 {
		keepN = 32
	}
	return &ReputationLedger{
		beliefs: make(map[string]uncertainty.BetaBelief),
		decay:   decay,
		history: make(map[string][]Outcome),
		keepN:   keepN,
	}
}

// RecordOutcome folds a settled contract into the provider's belief.
// Fulfilled counts as success; a breach counts as graded failure weighted by
// shortfall.
func (l *ReputationLedger) RecordOutcome(provider string, out Outcome) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.beliefs[provider]
	if !ok {
		b = uncertainty.NewBelief()
	}
	b = b.Decay(l.decay)
	if out.Fulfilled {
		b = b.Observe(true)
	} else {
		// A broken promise costs reputation beyond its magnitude: even a
		// mild breach counts at most half a success, so habitual small
		// shirkers cannot maintain high trust by under-promising.
		sf := out.Shortfall
		if sf > 1 {
			sf = 1
		}
		b = b.ObserveWeighted((1 - sf) * 0.5)
	}
	l.beliefs[provider] = b
	h := append(l.history[provider], out)
	if len(h) > l.keepN {
		h = h[len(h)-l.keepN:]
	}
	l.history[provider] = h
}

// Trust returns the posterior mean quality of a provider (0.5 when
// unknown — the uninformative prior).
func (l *ReputationLedger) Trust(provider string) float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	b, ok := l.beliefs[provider]
	if !ok {
		return 0.5
	}
	return b.Mean()
}

// Belief returns the full posterior for a provider.
func (l *ReputationLedger) Belief(provider string) uncertainty.BetaBelief {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if b, ok := l.beliefs[provider]; ok {
		return b
	}
	return uncertainty.NewBelief()
}

// History returns retained outcomes for a provider (copy).
func (l *ReputationLedger) History(provider string) []Outcome {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]Outcome(nil), l.history[provider]...)
}

// Ranked returns providers sorted by trust descending (ties by name), among
// those ever observed.
func (l *ReputationLedger) Ranked() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.beliefs))
	for p := range l.beliefs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := l.beliefs[out[i]].Mean(), l.beliefs[out[j]].Mean()
		if ti != tj {
			return ti > tj
		}
		return out[i] < out[j]
	})
	return out
}

// Blacklisted reports whether a provider's trust has fallen below the
// threshold with enough evidence to be confident (strength >= minObs).
func (l *ReputationLedger) Blacklisted(provider string, threshold float64, minObs float64) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	b, ok := l.beliefs[provider]
	if !ok {
		return false
	}
	return b.Strength() >= minObs && b.Mean() < threshold
}
