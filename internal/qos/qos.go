// Package qos models quality of service in the Open Agora. The paper's QoS
// section: query results carry quality indicators beyond response time —
// completeness, freshness, trustworthiness — and interactions are governed
// by SLA contracts whose premium reflects the risk of the requested service;
// breaking a contract obliges the breaker to compensate the other party.
package qos

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Vector is a point in QoS space. Larger is better for Completeness and
// Trust; smaller is better for Latency, Freshness (staleness bound), and
// Price.
type Vector struct {
	// Latency is the end-to-end answer delay.
	Latency time.Duration
	// Completeness is the fraction of the relevant answer set delivered,
	// in [0,1].
	Completeness float64
	// Freshness is the maximum staleness of delivered items.
	Freshness time.Duration
	// Trust is the believed probability the content is correct, in [0,1].
	Trust float64
	// Price is what the consumer pays, in agora credits.
	Price float64
}

// Weights expresses a user's relative concern for each dimension. Weights
// are non-negative; Scalarize normalizes internally so only ratios matter.
type Weights struct {
	Latency      float64
	Completeness float64
	Freshness    float64
	Trust        float64
	Price        float64
}

// DefaultWeights balances all dimensions.
func DefaultWeights() Weights {
	return Weights{Latency: 1, Completeness: 1, Freshness: 1, Trust: 1, Price: 1}
}

// refLatency and refFreshness normalize time dimensions into [0,1] scores:
// a latency of 0 scores 1, refLatency scores ~0.5, and it decays beyond.
const (
	refLatency   = 2 * time.Second
	refFreshness = time.Hour
	refPrice     = 10.0
)

// score01 maps "smaller is better" x against a reference to (0,1].
func score01(x, ref float64) float64 {
	if x <= 0 {
		return 1
	}
	return ref / (ref + x)
}

// Scalarize folds a QoS vector into a single utility in [0,1] under the
// weights. It is the weighted-sum baseline the multi-objective optimizer is
// compared against, and the negotiation utility for single-number tactics.
func (w Weights) Scalarize(v Vector) float64 {
	total := w.Latency + w.Completeness + w.Freshness + w.Trust + w.Price
	if total <= 0 {
		return 0
	}
	s := w.Latency*score01(float64(v.Latency), float64(refLatency)) +
		w.Completeness*clamp01(v.Completeness) +
		w.Freshness*score01(float64(v.Freshness), float64(refFreshness)) +
		w.Trust*clamp01(v.Trust) +
		w.Price*score01(v.Price, refPrice)
	return s / total
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Dominates reports whether v is at least as good as o on every dimension
// and strictly better on at least one (Pareto dominance).
func (v Vector) Dominates(o Vector) bool {
	geq := v.Latency <= o.Latency &&
		v.Completeness >= o.Completeness &&
		v.Freshness <= o.Freshness &&
		v.Trust >= o.Trust &&
		v.Price <= o.Price
	if !geq {
		return false
	}
	return v.Latency < o.Latency || v.Completeness > o.Completeness ||
		v.Freshness < o.Freshness || v.Trust > o.Trust || v.Price < o.Price
}

// ParetoFront filters vectors to the non-dominated subset, preserving input
// order among survivors.
func ParetoFront(vs []Vector) []Vector {
	var out []Vector
	for i, v := range vs {
		dominated := false
		for j, o := range vs {
			if i == j {
				continue
			}
			if o.Dominates(v) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, v)
		}
	}
	return out
}

// ContractStatus tracks the SLA lifecycle.
type ContractStatus int

// Contract lifecycle states.
const (
	StatusProposed ContractStatus = iota
	StatusSigned
	StatusFulfilled
	StatusBreached
	StatusCancelled
)

func (s ContractStatus) String() string {
	switch s {
	case StatusProposed:
		return "proposed"
	case StatusSigned:
		return "signed"
	case StatusFulfilled:
		return "fulfilled"
	case StatusBreached:
		return "breached"
	case StatusCancelled:
		return "cancelled"
	default:
		return "status(?)"
	}
}

// Contract is an SLA between a consumer and a provider covering one query
// (or subquery). Premium scales the base price for the promised QoS level;
// PenaltyRate sets compensation per unit of shortfall on breach — the
// "QoS premium paid according to the risk/uncertainty of the requested
// service" from the paper.
type Contract struct {
	ID          string
	QueryID     string
	Consumer    string
	Provider    string
	Promised    Vector
	Premium     float64 // multiplier >= 1 applied to Promised.Price
	PenaltyRate float64 // fraction of paid price refunded per unit shortfall
	Status      ContractStatus
	SignedAt    time.Duration // virtual time
	Deadline    time.Duration
}

// Contract errors.
var (
	ErrNotSigned     = errors.New("qos: contract not signed")
	ErrAlreadyClosed = errors.New("qos: contract already settled")
)

// PaidPrice returns what the consumer pays upfront: base price times
// premium.
func (c *Contract) PaidPrice() float64 {
	p := c.Premium
	if p < 1 {
		p = 1
	}
	return c.Promised.Price * p
}

// Outcome is the settlement of a contract against the actually delivered
// QoS.
type Outcome struct {
	ContractID   string
	Delivered    Vector
	Fulfilled    bool
	Shortfall    float64 // aggregate violation severity in [0,1+]
	Compensation float64 // credits returned to the consumer
	NetPaid      float64 // what the consumer ultimately paid
}

// Settle evaluates delivered QoS against the contract, transitioning it to
// Fulfilled or Breached and computing compensation. Latency, completeness,
// freshness and trust are each checked against the promise; shortfalls
// accumulate proportionally.
func (c *Contract) Settle(delivered Vector) (Outcome, error) {
	switch c.Status {
	case StatusSigned:
	case StatusProposed:
		return Outcome{}, ErrNotSigned
	default:
		return Outcome{}, fmt.Errorf("%w: %s", ErrAlreadyClosed, c.Status)
	}
	var shortfall float64
	if c.Promised.Latency > 0 && delivered.Latency > c.Promised.Latency {
		over := float64(delivered.Latency-c.Promised.Latency) / float64(c.Promised.Latency)
		shortfall += math.Min(over, 1)
	}
	if delivered.Completeness < c.Promised.Completeness {
		shortfall += c.Promised.Completeness - delivered.Completeness
	}
	if c.Promised.Freshness > 0 && delivered.Freshness > c.Promised.Freshness {
		over := float64(delivered.Freshness-c.Promised.Freshness) / float64(c.Promised.Freshness)
		shortfall += math.Min(over, 1)
	}
	if delivered.Trust < c.Promised.Trust {
		shortfall += c.Promised.Trust - delivered.Trust
	}
	paid := c.PaidPrice()
	out := Outcome{
		ContractID: c.ID,
		Delivered:  delivered,
		Shortfall:  shortfall,
	}
	if shortfall <= 1e-9 {
		c.Status = StatusFulfilled
		out.Fulfilled = true
		out.NetPaid = paid
		return out, nil
	}
	c.Status = StatusBreached
	comp := c.PenaltyRate * paid * shortfall
	if comp > paid {
		comp = paid
	}
	out.Compensation = comp
	out.NetPaid = paid - comp
	return out, nil
}

// Sign transitions a proposed contract to signed at the given virtual time.
func (c *Contract) Sign(at time.Duration) error {
	if c.Status != StatusProposed {
		return fmt.Errorf("%w: %s", ErrAlreadyClosed, c.Status)
	}
	c.Status = StatusSigned
	c.SignedAt = at
	return nil
}

// Cancel unilaterally withdraws a contract before settlement; per the paper
// the canceller compensates the other party. It returns the cancellation fee
// (penalty rate against the paid price).
func (c *Contract) Cancel() (fee float64, err error) {
	if c.Status != StatusSigned && c.Status != StatusProposed {
		return 0, fmt.Errorf("%w: %s", ErrAlreadyClosed, c.Status)
	}
	signed := c.Status == StatusSigned
	c.Status = StatusCancelled
	if !signed {
		return 0, nil
	}
	return c.PenaltyRate * c.PaidPrice(), nil
}
