package qos

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestScalarizeMonotone(t *testing.T) {
	w := DefaultWeights()
	base := Vector{Latency: time.Second, Completeness: 0.8, Freshness: time.Hour, Trust: 0.8, Price: 5}
	better := base
	better.Completeness = 0.95
	if w.Scalarize(better) <= w.Scalarize(base) {
		t.Fatal("higher completeness should raise utility")
	}
	worse := base
	worse.Latency = 10 * time.Second
	if w.Scalarize(worse) >= w.Scalarize(base) {
		t.Fatal("higher latency should lower utility")
	}
	cheaper := base
	cheaper.Price = 1
	if w.Scalarize(cheaper) <= w.Scalarize(base) {
		t.Fatal("lower price should raise utility")
	}
}

func TestScalarizeBounds(t *testing.T) {
	f := func(lat, fresh uint32, comp, trust, price float64) bool {
		v := Vector{
			Latency:      time.Duration(lat),
			Completeness: math.Mod(math.Abs(comp), 2) - 0.5, // may stray out of [0,1]
			Freshness:    time.Duration(fresh),
			Trust:        math.Mod(math.Abs(trust), 2) - 0.5,
			Price:        math.Abs(price),
		}
		s := DefaultWeights().Scalarize(v)
		return s >= 0 && s <= 1 && !math.IsNaN(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScalarizeZeroWeights(t *testing.T) {
	if got := (Weights{}).Scalarize(Vector{Completeness: 1}); got != 0 {
		t.Fatalf("zero weights = %v", got)
	}
}

func TestWeightsEmphasis(t *testing.T) {
	fast := Vector{Latency: 100 * time.Millisecond, Completeness: 0.5, Trust: 0.5, Price: 5}
	complete := Vector{Latency: 5 * time.Second, Completeness: 0.99, Trust: 0.5, Price: 5}
	speedFirst := Weights{Latency: 10, Completeness: 1, Price: 1, Trust: 1, Freshness: 1}
	completeFirst := Weights{Latency: 1, Completeness: 10, Price: 1, Trust: 1, Freshness: 1}
	if speedFirst.Scalarize(fast) <= speedFirst.Scalarize(complete) {
		t.Fatal("speed-first user should prefer the fast answer")
	}
	if completeFirst.Scalarize(complete) <= completeFirst.Scalarize(fast) {
		t.Fatal("completeness-first user should prefer the complete answer")
	}
}

func TestDominates(t *testing.T) {
	a := Vector{Latency: time.Second, Completeness: 0.9, Freshness: time.Hour, Trust: 0.9, Price: 5}
	b := a
	b.Price = 6
	if !a.Dominates(b) {
		t.Fatal("a should dominate b (cheaper, equal elsewhere)")
	}
	if b.Dominates(a) {
		t.Fatal("b cannot dominate a")
	}
	if a.Dominates(a) {
		t.Fatal("no strict improvement -> no dominance")
	}
	c := a
	c.Latency = 500 * time.Millisecond
	c.Completeness = 0.5
	if a.Dominates(c) || c.Dominates(a) {
		t.Fatal("trade-off pair should be incomparable")
	}
}

func TestParetoFront(t *testing.T) {
	vs := []Vector{
		{Latency: 1 * time.Second, Completeness: 0.9, Price: 5},
		{Latency: 2 * time.Second, Completeness: 0.9, Price: 5},  // dominated
		{Latency: 3 * time.Second, Completeness: 0.99, Price: 5}, // tradeoff
		{Latency: 1 * time.Second, Completeness: 0.9, Price: 9},  // dominated
	}
	front := ParetoFront(vs)
	if len(front) != 2 {
		t.Fatalf("front size = %d: %v", len(front), front)
	}
}

func TestContractLifecycleFulfilled(t *testing.T) {
	c := &Contract{
		ID: "c1", Promised: Vector{Latency: time.Second, Completeness: 0.8, Trust: 0.7, Price: 4},
		Premium: 1.5, PenaltyRate: 0.5,
	}
	if _, err := c.Settle(Vector{}); !errors.Is(err, ErrNotSigned) {
		t.Fatalf("settle unsigned: %v", err)
	}
	if err := c.Sign(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Sign(10 * time.Second); err == nil {
		t.Fatal("double sign should fail")
	}
	out, err := c.Settle(Vector{Latency: 500 * time.Millisecond, Completeness: 0.9, Trust: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Fulfilled || out.Compensation != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if math.Abs(out.NetPaid-6) > 1e-9 { // 4 * 1.5
		t.Fatalf("net paid = %v", out.NetPaid)
	}
	if c.Status != StatusFulfilled {
		t.Fatalf("status = %v", c.Status)
	}
	if _, err := c.Settle(Vector{}); !errors.Is(err, ErrAlreadyClosed) {
		t.Fatal("double settle should fail")
	}
}

func TestContractBreachCompensation(t *testing.T) {
	c := &Contract{
		ID: "c1", Promised: Vector{Latency: time.Second, Completeness: 0.9, Price: 10},
		Premium: 2, PenaltyRate: 0.5,
	}
	if err := c.Sign(0); err != nil {
		t.Fatal(err)
	}
	// Delivered: double the latency (shortfall 1 capped) and completeness
	// short by 0.4 -> shortfall 1.4.
	out, err := c.Settle(Vector{Latency: 3 * time.Second, Completeness: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if out.Fulfilled {
		t.Fatal("should breach")
	}
	if c.Status != StatusBreached {
		t.Fatalf("status = %v", c.Status)
	}
	wantShortfall := 1.0 + 0.4
	if math.Abs(out.Shortfall-wantShortfall) > 1e-9 {
		t.Fatalf("shortfall = %v, want %v", out.Shortfall, wantShortfall)
	}
	paid := 20.0
	wantComp := 0.5 * paid * wantShortfall
	if wantComp > paid {
		wantComp = paid
	}
	if math.Abs(out.Compensation-wantComp) > 1e-9 {
		t.Fatalf("compensation = %v, want %v", out.Compensation, wantComp)
	}
	if math.Abs(out.NetPaid-(paid-wantComp)) > 1e-9 {
		t.Fatalf("net = %v", out.NetPaid)
	}
}

func TestCompensationCappedAtPaid(t *testing.T) {
	c := &Contract{Promised: Vector{Completeness: 1, Price: 10}, Premium: 1, PenaltyRate: 5}
	_ = c.Sign(0)
	out, err := c.Settle(Vector{Completeness: 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.Compensation > c.PaidPrice() {
		t.Fatalf("compensation %v exceeds paid %v", out.Compensation, c.PaidPrice())
	}
	if out.NetPaid < 0 {
		t.Fatalf("net paid negative: %v", out.NetPaid)
	}
}

func TestContractCancel(t *testing.T) {
	c := &Contract{Promised: Vector{Price: 10}, Premium: 1, PenaltyRate: 0.3}
	// Cancel before signing: free.
	fee, err := c.Cancel()
	if err != nil || fee != 0 {
		t.Fatalf("fee = %v err = %v", fee, err)
	}
	c2 := &Contract{Promised: Vector{Price: 10}, Premium: 1, PenaltyRate: 0.3}
	_ = c2.Sign(0)
	fee, err = c2.Cancel()
	if err != nil || math.Abs(fee-3) > 1e-9 {
		t.Fatalf("signed cancel fee = %v err = %v", fee, err)
	}
	if _, err := c2.Cancel(); err == nil {
		t.Fatal("double cancel should fail")
	}
}

func TestPremiumFloor(t *testing.T) {
	c := &Contract{Promised: Vector{Price: 10}, Premium: 0.5}
	if c.PaidPrice() != 10 {
		t.Fatalf("premium below 1 must not discount: %v", c.PaidPrice())
	}
}

func TestReputationLedger(t *testing.T) {
	l := NewReputationLedger(1, 10)
	if tr := l.Trust("unknown"); tr != 0.5 {
		t.Fatalf("unknown trust = %v", tr)
	}
	for i := 0; i < 20; i++ {
		l.RecordOutcome("good", Outcome{Fulfilled: true})
		l.RecordOutcome("bad", Outcome{Fulfilled: false, Shortfall: 1})
	}
	if l.Trust("good") < 0.8 {
		t.Fatalf("good trust = %v", l.Trust("good"))
	}
	if l.Trust("bad") > 0.2 {
		t.Fatalf("bad trust = %v", l.Trust("bad"))
	}
	ranked := l.Ranked()
	if len(ranked) != 2 || ranked[0] != "good" {
		t.Fatalf("ranked = %v", ranked)
	}
	if !l.Blacklisted("bad", 0.3, 5) {
		t.Fatal("bad should be blacklisted")
	}
	if l.Blacklisted("good", 0.3, 5) {
		t.Fatal("good should not be blacklisted")
	}
	if l.Blacklisted("unknown", 0.9, 1) {
		t.Fatal("unknown cannot be blacklisted")
	}
}

func TestReputationGradedBreach(t *testing.T) {
	l := NewReputationLedger(1, 10)
	for i := 0; i < 30; i++ {
		l.RecordOutcome("meh", Outcome{Fulfilled: false, Shortfall: 0.2})
	}
	tr := l.Trust("meh")
	// Mild breaches count at most half a success: trust lands mid-low,
	// clearly below a fulfilled record but above a total shirker.
	if tr < 0.25 || tr > 0.55 {
		t.Fatalf("mild breaches should land mid-low trust, got %v", tr)
	}
}

func TestReputationHistoryBounded(t *testing.T) {
	l := NewReputationLedger(1, 5)
	for i := 0; i < 20; i++ {
		l.RecordOutcome("p", Outcome{Fulfilled: true})
	}
	if h := l.History("p"); len(h) != 5 {
		t.Fatalf("history len = %d", len(h))
	}
}

func TestReputationDecayForgets(t *testing.T) {
	fast := NewReputationLedger(0.5, 10)
	slow := NewReputationLedger(0.999, 10)
	for i := 0; i < 50; i++ {
		fast.RecordOutcome("p", Outcome{Fulfilled: true})
		slow.RecordOutcome("p", Outcome{Fulfilled: true})
	}
	// After a run of failures, the fast-decay ledger should forgive/forget
	// the old good record faster — i.e. reflect recent behaviour more.
	for i := 0; i < 10; i++ {
		fast.RecordOutcome("p", Outcome{Fulfilled: false, Shortfall: 1})
		slow.RecordOutcome("p", Outcome{Fulfilled: false, Shortfall: 1})
	}
	if fast.Trust("p") >= slow.Trust("p") {
		t.Fatalf("fast decay %v should track recent failures below slow %v",
			fast.Trust("p"), slow.Trust("p"))
	}
}

func TestStatusString(t *testing.T) {
	if StatusSigned.String() != "signed" || StatusBreached.String() != "breached" {
		t.Fatal("status names")
	}
}
