package wire

import (
	"reflect"
	"testing"
)

// Shard-routing field coverage: the trailing optional fields added for
// scatter-gather (Hello shard range, Query global statistics, QueryResult
// epoch) and the TermStats message pair. Mirrors trace_test.go: every new
// field must round-trip, and payloads truncated back to an older peer's
// layout must decode cleanly with zero values.

func TestHelloShardRangeRoundtrip(t *testing.T) {
	m := Hello{
		NodeID: "shard-3", Addr: "127.0.0.1:7003",
		Topics: []string{"porcelain"}, Capacity: 9,
		ShardStart: 0x6000000000000000, ShardEnd: 0x7FFFFFFFFFFFFFFF,
	}
	got, err := UnmarshalHello(m.Marshal())
	if err != nil || !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v err %v", got, err)
	}
}

// TestHelloBackwardCompatible feeds the decoder a payload an old peer would
// produce — the layout minus the trailing 16-byte shard range. It must
// decode with a zero range (= unsharded node).
func TestHelloBackwardCompatible(t *testing.T) {
	m := Hello{
		NodeID: "old-node", Addr: "127.0.0.1:7000",
		Topics: []string{"maps", "coins"}, Capacity: 4,
		ShardStart: 1, ShardEnd: 2,
	}
	legacy := m.Marshal()
	legacy = legacy[:len(legacy)-16]
	got, err := UnmarshalHello(legacy)
	if err != nil {
		t.Fatalf("legacy hello rejected: %v", err)
	}
	want := m
	want.ShardStart, want.ShardEnd = 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy decode diverged: %+v", got)
	}

	// Future direction: trailing bytes after the range are ignored.
	extended := append(m.Marshal(), 0x01, 0x02)
	gotExt, err := UnmarshalHello(extended)
	if err != nil || gotExt.ShardEnd != m.ShardEnd {
		t.Fatalf("future-extended hello rejected: %+v err %v", gotExt, err)
	}
}

func TestQueryGlobalStatsRoundtrip(t *testing.T) {
	m := Query{
		ID: "q9", From: "router", Text: "amphora trade routes",
		TopK: 10, TTL: 1,
		TraceID: 0xAAAA, SpanID: 0xBBBB,
		GlobalDocs: 120000,
		StatsTerms: []string{"amphora", "trade", "routes"},
		StatsDF:    []uint64{312, 48000, 2901},
	}
	got, err := UnmarshalQuery(m.Marshal())
	if err != nil || !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v err %v", got, err)
	}
}

// TestQueryGlobalStatsBackwardCompatible: a trace-era peer's Query — trace
// tail present, shard-stats tail absent — decodes with GlobalDocs == 0
// (score locally), and the trace context survives.
func TestQueryGlobalStatsBackwardCompatible(t *testing.T) {
	m := Query{
		ID: "q10", From: "iris", Text: "trace era", TopK: 3,
		TraceID: 0x1234, SpanID: 0x5678,
	}
	// With no stats set the shard tail is exactly 10 bytes: GlobalDocs (8)
	// plus two empty-slice uvarint counts (1+1). Truncating it reproduces
	// the trace-era encoding.
	legacy := m.Marshal()
	legacy = legacy[:len(legacy)-10]
	got, err := UnmarshalQuery(legacy)
	if err != nil {
		t.Fatalf("trace-era query rejected: %v", err)
	}
	if got.GlobalDocs != 0 || got.StatsTerms != nil || got.StatsDF != nil {
		t.Fatalf("stats materialized from nowhere: %+v", got)
	}
	if got.TraceID != m.TraceID || got.SpanID != m.SpanID {
		t.Fatalf("trace context lost: %x/%x", got.TraceID, got.SpanID)
	}
}

func TestQueryResultEpochRoundtrip(t *testing.T) {
	m := QueryResult{
		QueryID: "q9", From: "shard-3",
		Items:   []ResultItem{{DocID: "d1", Source: "shard-3", Score: 1.5, Snippet: "…"}},
		Elapsed: 0.001, TraceID: 0xAAAA, Epoch: 42,
	}
	got, err := UnmarshalQueryResult(m.Marshal())
	if err != nil || !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v err %v", got, err)
	}

	// Trace-era peer: Epoch absent. Truncate its 8 bytes; TraceID survives.
	legacy := m.Marshal()
	legacy = legacy[:len(legacy)-8]
	gotLegacy, err := UnmarshalQueryResult(legacy)
	if err != nil || gotLegacy.Epoch != 0 || gotLegacy.TraceID != m.TraceID {
		t.Fatalf("trace-era result diverged: %+v err %v", gotLegacy, err)
	}
}

func TestTermStatsRoundtrip(t *testing.T) {
	req := TermStatsReq{ID: "s1", Terms: []string{"amphora", "trade"}}
	gotReq, err := UnmarshalTermStatsReq(req.Marshal())
	if err != nil || !reflect.DeepEqual(gotReq, req) {
		t.Fatalf("req: got %+v err %v", gotReq, err)
	}

	resp := TermStatsResp{
		ID: "s1", Total: 15000, Epoch: 7,
		DF:       []uint64{12, 4400},
		MaxRatio: []float64{0.61, 0.47},
	}
	gotResp, err := UnmarshalTermStatsResp(resp.Marshal())
	if err != nil || !reflect.DeepEqual(gotResp, resp) {
		t.Fatalf("resp: got %+v err %v", gotResp, err)
	}

	// Empty request/response (term unseen everywhere) round-trips too.
	empty := TermStatsResp{ID: "s2", Total: 0, Epoch: 1}
	gotEmpty, err := UnmarshalTermStatsResp(empty.Marshal())
	if err != nil || !reflect.DeepEqual(gotEmpty, empty) {
		t.Fatalf("empty resp: got %+v err %v", gotEmpty, err)
	}
}

func TestTermStatsKindNames(t *testing.T) {
	if KindTermStats.String() != "termStats" || KindTermStatsResult.String() != "termStatsResult" {
		t.Fatalf("kind names missing: %v %v", KindTermStats, KindTermStatsResult)
	}
}
