package wire

import (
	"bufio"
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundtrip(t *testing.T) {
	w := NewWriter(0)
	w.U8(7)
	w.U32(123456)
	w.U64(1 << 60)
	w.I64(-42)
	w.Uvarint(300)
	w.F64(3.14159)
	w.Bool(true)
	w.Bool(false)
	w.String("agora")
	w.Blob([]byte{1, 2, 3})
	w.F64s([]float64{1, 2, 0.5})
	w.Strings([]string{"a", "bb"})

	r := NewReader(w.Bytes())
	if r.U8() != 7 || r.U32() != 123456 || r.U64() != 1<<60 || r.I64() != -42 {
		t.Fatal("int roundtrip failed")
	}
	if r.Uvarint() != 300 {
		t.Fatal("uvarint roundtrip failed")
	}
	if r.F64() != 3.14159 {
		t.Fatal("f64 roundtrip failed")
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bool roundtrip failed")
	}
	if r.String() != "agora" {
		t.Fatal("string roundtrip failed")
	}
	if !bytes.Equal(r.Blob(), []byte{1, 2, 3}) {
		t.Fatal("blob roundtrip failed")
	}
	if !reflect.DeepEqual(r.F64s(), []float64{1, 2, 0.5}) {
		t.Fatal("f64s roundtrip failed")
	}
	if !reflect.DeepEqual(r.Strings(), []string{"a", "bb"}) {
		t.Fatal("strings roundtrip failed")
	}
	if r.Err() != nil {
		t.Fatalf("unexpected err: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.U32() // short
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	if got := r.U8(); got != 0 {
		t.Fatal("reads after error must return zero values")
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("err = %v", r.Err())
	}
}

func TestReaderHugeLengthRejected(t *testing.T) {
	w := NewWriter(0)
	w.Uvarint(uint64(MaxBlob) + 1)
	r := NewReader(w.Bytes())
	_ = r.String()
	if !errors.Is(r.Err(), ErrTooLarge) {
		t.Fatalf("err = %v", r.Err())
	}
}

func TestFrameRoundtrip(t *testing.T) {
	payload := []byte("hello agora")
	buf := EncodeFrame(nil, KindQuery, payload)
	f, n, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if f.Kind != KindQuery || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("frame = %+v", f)
	}
}

func TestFramePartialBuffer(t *testing.T) {
	buf := EncodeFrame(nil, KindPing, []byte("x"))
	for i := 0; i < len(buf); i++ {
		_, _, err := DecodeFrame(buf[:i])
		if !errors.Is(err, ErrShortBuffer) {
			t.Fatalf("partial at %d: err = %v", i, err)
		}
	}
}

func TestFrameCorruption(t *testing.T) {
	buf := EncodeFrame(nil, KindQuery, []byte("payload-bytes"))
	// Flip a payload byte: checksum must catch it.
	buf[len(buf)-1] ^= 0xFF
	if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want checksum", err)
	}
	// Bad magic.
	buf2 := EncodeFrame(nil, KindQuery, []byte("p"))
	buf2[0] = 0
	if _, _, err := DecodeFrame(buf2); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want bad magic", err)
	}
	// Bad version.
	buf3 := EncodeFrame(nil, KindQuery, []byte("p"))
	buf3[2] = 99
	if _, _, err := DecodeFrame(buf3); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want version", err)
	}
}

func TestFrameStreamIO(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, KindHello, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, KindPong, []byte("two")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(&buf)
	f1, err := ReadFrame(br)
	if err != nil || f1.Kind != KindHello || string(f1.Payload) != "one" {
		t.Fatalf("f1 = %+v, err = %v", f1, err)
	}
	f2, err := ReadFrame(br)
	if err != nil || f2.Kind != KindPong || string(f2.Payload) != "two" {
		t.Fatalf("f2 = %+v, err = %v", f2, err)
	}
}

func TestFrameDecodeMultipleFromOneBuffer(t *testing.T) {
	buf := EncodeFrame(nil, KindPing, []byte("a"))
	buf = EncodeFrame(buf, KindPong, []byte("bb"))
	f1, n1, err := DecodeFrame(buf)
	if err != nil || f1.Kind != KindPing {
		t.Fatal(err)
	}
	f2, _, err := DecodeFrame(buf[n1:])
	if err != nil || f2.Kind != KindPong || string(f2.Payload) != "bb" {
		t.Fatal(err)
	}
}

func TestHelloRoundtrip(t *testing.T) {
	m := Hello{NodeID: "n1", Addr: "127.0.0.1:9", Topics: []string{"jewelry", "dance"}, Capacity: 10}
	got, err := UnmarshalHello(m.Marshal())
	if err != nil || !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v err %v", got, err)
	}
}

func TestQueryRoundtrip(t *testing.T) {
	m := Query{
		ID: "q1", From: "iris", Text: "byzantine gold ring",
		Concept: []float64{0.1, -0.5, 2},
		TopK:    10, TTL: 3,
		Want: QoSTerms{Price: 2.5, LatencyMs: 100, Completeness: 0.9, FreshnessSec: 60, Trust: 0.8, Premium: 1.5, PenaltyRate: 0.3},
	}
	got, err := UnmarshalQuery(m.Marshal())
	if err != nil || !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v err %v", got, err)
	}
}

func TestQueryResultRoundtrip(t *testing.T) {
	m := QueryResult{
		QueryID: "q1", From: "museum-7",
		Items: []ResultItem{
			{DocID: "d1", Source: "museum-7", Score: 0.92, Snippet: "a gold ring"},
			{DocID: "d2", Source: "museum-7", Score: 0.81, Snippet: ""},
		},
		Elapsed: 0.125,
	}
	got, err := UnmarshalQueryResult(m.Marshal())
	if err != nil || !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v err %v", got, err)
	}
}

func TestOfferContractRoundtrip(t *testing.T) {
	o := Offer{NegotiationID: "n1", QueryID: "q1", From: "p1", Round: 3,
		Terms: QoSTerms{Price: 1, Completeness: 0.7}, Expire: 12345}
	gotO, err := UnmarshalOffer(o.Marshal())
	if err != nil || !reflect.DeepEqual(gotO, o) {
		t.Fatalf("offer %+v err %v", gotO, err)
	}
	c := Contract{ID: "c1", QueryID: "q1", Consumer: "iris", Provider: "p1",
		Terms: QoSTerms{Price: 1.2, Trust: 0.9}, SignedAt: 777}
	gotC, err := UnmarshalContract(c.Marshal())
	if err != nil || !reflect.DeepEqual(gotC, c) {
		t.Fatalf("contract %+v err %v", gotC, err)
	}
}

func TestFeedSubscribeRoundtrip(t *testing.T) {
	fi := FeedItem{FeedID: "f1", DocID: "d9", Source: "auction", Text: "flemish drawing", Concept: []float64{1, 2}, Seq: 42}
	gotF, err := UnmarshalFeedItem(fi.Marshal())
	if err != nil || !reflect.DeepEqual(gotF, fi) {
		t.Fatalf("feed %+v err %v", gotF, err)
	}
	s := Subscribe{SubID: "s1", From: "iris", Terms: []string{"dutch", "drawing"}, Concept: []float64{0.5}, Threshold: 0.7}
	gotS, err := UnmarshalSubscribe(s.Marshal())
	if err != nil || !reflect.DeepEqual(gotS, s) {
		t.Fatalf("sub %+v err %v", gotS, err)
	}
}

func TestQueryRoundtripProperty(t *testing.T) {
	f := func(id, from, text string, concept []float64, topK, ttl uint32, price, lat float64) bool {
		for i, c := range concept {
			if math.IsNaN(c) {
				concept[i] = 0
			}
		}
		if math.IsNaN(price) {
			price = 0
		}
		if math.IsNaN(lat) {
			lat = 0
		}
		m := Query{ID: id, From: from, Text: text, Concept: concept, TopK: topK, TTL: ttl,
			Want: QoSTerms{Price: price, LatencyMs: lat}}
		got, err := UnmarshalQuery(m.Marshal())
		if err != nil {
			return false
		}
		if len(m.Concept) == 0 {
			m.Concept = nil
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundtripProperty(t *testing.T) {
	f := func(kind uint8, payload []byte) bool {
		buf := EncodeFrame(nil, Kind(kind), payload)
		fr, n, err := DecodeFrame(buf)
		if err != nil || n != len(buf) || fr.Kind != Kind(kind) {
			return false
		}
		return bytes.Equal(fr.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if KindQuery.String() != "query" {
		t.Fatal("kind name")
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatal("unknown kind name")
	}
}

// TestUnmarshalFuzz feeds random bytes to every decoder: they must return
// errors, never panic, and never allocate absurdly.
func TestUnmarshalFuzz(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = UnmarshalHello(b)
		_, _ = UnmarshalGossip(b)
		_, _ = UnmarshalQuery(b)
		_, _ = UnmarshalQueryResult(b)
		_, _ = UnmarshalOffer(b)
		_, _ = UnmarshalContract(b)
		_, _ = UnmarshalFeedItem(b)
		_, _ = UnmarshalSubscribe(b)
		_, _, _ = DecodeFrame(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
