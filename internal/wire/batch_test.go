package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// hotMessages returns one richly populated instance of every hot message,
// paired with its kind, so the identity tests sweep the whole AppendTo
// surface.
func hotMessages() []struct {
	kind Kind
	msg  Appender
} {
	return []struct {
		kind Kind
		msg  Appender
	}{
		{KindGossip, &Gossip{From: "n1", Peers: []string{"a 1.2.3.4:9", "b 5.6.7.8:9 0-100"}}},
		{KindQuery, &Query{
			ID: "q42", From: "iris", Text: "byzantine gold ring",
			Concept: []float64{0.25, -1, 3.5}, TopK: 10, TTL: 3,
			Want:    QoSTerms{Price: 1.5, LatencyMs: 20, Completeness: 0.9, FreshnessSec: 60, Trust: 0.8, Premium: 0.1, PenaltyRate: 0.05},
			TraceID: 0xdeadbeef, SpanID: 0xfeed,
			GlobalDocs: 131072, StatsTerms: []string{"gold", "ring"}, StatsDF: []uint64{512, 31},
		}},
		{KindQueryResult, &QueryResult{
			QueryID: "q42", From: "museum",
			Items: []ResultItem{
				{DocID: "d1", Source: "museum", Score: 3.25, Snippet: "a gold ring"},
				{DocID: "d2", Source: "museum", Score: 1.125, Snippet: "another"},
			},
			Elapsed: 0.004, TraceID: 7, Epoch: 9,
		}},
		{KindFeedItem, &FeedItem{
			FeedID: "f1", DocID: "d9", Source: "museum", Text: "auction catalog",
			Concept: []float64{1, 0, -2}, Seq: 77,
		}},
		{KindTermStats, &TermStatsReq{ID: "s3", Terms: []string{"gold", "ring", "byzantine"}}},
		{KindTermStatsResult, &TermStatsResp{
			ID: "s3", Total: 4096, Epoch: 12,
			DF: []uint64{100, 20, 3}, MaxRatio: []float64{0.5, 0.25, 0.125},
		}},
	}
}

// legacyMarshal reproduces the pre-AppendTo Writer-based encoding for each
// hot message, so the identity test pins today's bytes against the
// original wire format rather than against AppendTo itself.
func legacyMarshal(m Appender) []byte {
	w := NewWriter(128)
	switch x := m.(type) {
	case *Gossip:
		w.String(x.From)
		w.Strings(x.Peers)
	case *Query:
		w.String(x.ID)
		w.String(x.From)
		w.String(x.Text)
		w.F64s(x.Concept)
		w.U32(x.TopK)
		w.U32(x.TTL)
		x.Want.encode(w)
		w.U64(x.TraceID)
		w.U64(x.SpanID)
		w.U64(x.GlobalDocs)
		w.Strings(x.StatsTerms)
		w.U64s(x.StatsDF)
	case *QueryResult:
		w.String(x.QueryID)
		w.String(x.From)
		w.Uvarint(uint64(len(x.Items)))
		for _, it := range x.Items {
			w.String(it.DocID)
			w.String(it.Source)
			w.F64(it.Score)
			w.String(it.Snippet)
		}
		w.F64(x.Elapsed)
		w.U64(x.TraceID)
		w.U64(x.Epoch)
	case *FeedItem:
		w.String(x.FeedID)
		w.String(x.DocID)
		w.String(x.Source)
		w.String(x.Text)
		w.F64s(x.Concept)
		w.U64(x.Seq)
	case *TermStatsReq:
		w.String(x.ID)
		w.Strings(x.Terms)
	case *TermStatsResp:
		w.String(x.ID)
		w.U64(x.Total)
		w.U64(x.Epoch)
		w.U64s(x.DF)
		w.F64s(x.MaxRatio)
	default:
		panic("unhandled message type")
	}
	return w.Bytes()
}

// TestAppendToByteIdentical pins the wire format: AppendTo, Marshal, and
// the legacy Writer encoding all produce the same bytes, so old peers
// decode new frames and vice versa.
func TestAppendToByteIdentical(t *testing.T) {
	for _, tc := range hotMessages() {
		want := legacyMarshal(tc.msg)
		if got := tc.msg.AppendTo(nil); !bytes.Equal(got, want) {
			t.Errorf("%v: AppendTo != legacy Writer encoding\n got %x\nwant %x", tc.kind, got, want)
		}
		type marshaler interface{ Marshal() []byte }
		if got := tc.msg.(marshaler).Marshal(); !bytes.Equal(got, want) {
			t.Errorf("%v: Marshal != legacy Writer encoding", tc.kind)
		}
		// AppendTo must extend, not clobber, a non-empty dst.
		prefix := []byte{0xAA, 0xBB}
		got := tc.msg.AppendTo(append([]byte(nil), prefix...))
		if !bytes.Equal(got[:2], prefix) || !bytes.Equal(got[2:], want) {
			t.Errorf("%v: AppendTo does not append after an existing prefix", tc.kind)
		}
	}
}

// TestAppendFrameMatchesEncodeFrame pins the one-pass framing (header
// placeholder + payload + patch) against the two-pass EncodeFrame.
func TestAppendFrameMatchesEncodeFrame(t *testing.T) {
	var batchNew, batchOld []byte
	for _, tc := range hotMessages() {
		batchNew = AppendFrame(batchNew, tc.kind, tc.msg)
		batchOld = EncodeFrame(batchOld, tc.kind, tc.msg.AppendTo(nil))
	}
	if !bytes.Equal(batchNew, batchOld) {
		t.Fatalf("AppendFrame batch differs from EncodeFrame batch\n got %x\nwant %x", batchNew, batchOld)
	}
}

// chunkReader delivers its underlying bytes in deliberately awkward
// chunks, hitting every torn-frame boundary a TCP stream can produce.
type chunkReader struct {
	data  []byte
	off   int
	sizes []int
	i     int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if c.off >= len(c.data) {
		return 0, io.EOF
	}
	n := c.sizes[c.i%len(c.sizes)]
	c.i++
	if n > len(p) {
		n = len(p)
	}
	if c.off+n > len(c.data) {
		n = len(c.data) - c.off
	}
	copy(p, c.data[c.off:c.off+n])
	c.off += n
	return n, nil
}

// TestFrameReaderTornBoundaries decodes a multi-frame batch delivered in
// 1/2/3/5/7-byte chunks: header and payload reads straddle every Read
// boundary and the stream must still decode frame-for-frame.
func TestFrameReaderTornBoundaries(t *testing.T) {
	var batch []byte
	msgs := hotMessages()
	for _, tc := range msgs {
		batch = AppendFrame(batch, tc.kind, tc.msg)
	}
	fr := NewFrameReader(bufio.NewReaderSize(&chunkReader{data: batch, sizes: []int{1, 2, 3, 5, 7}}, 16))
	for i, tc := range msgs {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Kind != tc.kind {
			t.Fatalf("frame %d: kind %v, want %v", i, f.Kind, tc.kind)
		}
		if want := tc.msg.AppendTo(nil); !bytes.Equal(f.Payload, want) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if _, err := fr.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after batch: err = %v, want EOF", err)
	}
}

// TestFrameReaderBackwardCompat proves old peers interoperate both ways:
// frames produced by the legacy encoder (Marshal + WriteFrame) decode via
// FrameReader, and frames staged by the new batch path decode via the
// legacy ReadFrame and DecodeFrame, all byte-identically.
func TestFrameReaderBackwardCompat(t *testing.T) {
	msgs := hotMessages()

	// Old sender -> new reader.
	var legacy bytes.Buffer
	for _, tc := range msgs {
		if err := WriteFrame(&legacy, tc.kind, legacyMarshal(tc.msg)); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(legacy.Bytes())))
	for i, tc := range msgs {
		f, err := fr.Next()
		if err != nil {
			t.Fatalf("legacy frame %d: %v", i, err)
		}
		if f.Kind != tc.kind || !bytes.Equal(f.Payload, legacyMarshal(tc.msg)) {
			t.Fatalf("legacy frame %d decoded wrong", i)
		}
	}

	// New batched sender -> old readers.
	var batch []byte
	for _, tc := range msgs {
		batch = AppendFrame(batch, tc.kind, tc.msg)
	}
	r := bufio.NewReader(bytes.NewReader(batch))
	for i, tc := range msgs {
		f, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("ReadFrame on batched frame %d: %v", i, err)
		}
		if f.Kind != tc.kind || !bytes.Equal(f.Payload, legacyMarshal(tc.msg)) {
			t.Fatalf("ReadFrame on batched frame %d decoded wrong", i)
		}
	}
	rest := batch
	for i, tc := range msgs {
		f, n, err := DecodeFrame(rest)
		if err != nil {
			t.Fatalf("DecodeFrame on batched frame %d: %v", i, err)
		}
		if f.Kind != tc.kind || !bytes.Equal(f.Payload, legacyMarshal(tc.msg)) {
			t.Fatalf("DecodeFrame on batched frame %d decoded wrong", i)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after decoding the batch", len(rest))
	}
}

// TestDecodeFrameShortBatch pins the accumulate-and-retry contract on a
// split batch: every prefix short of a full frame yields ErrShortBuffer,
// then the complete frame decodes and the loop advances.
func TestDecodeFrameShortBatch(t *testing.T) {
	var batch []byte
	msgs := hotMessages()
	for _, tc := range msgs {
		batch = AppendFrame(batch, tc.kind, tc.msg)
	}
	decoded := 0
	have := 0
	consumed := 0
	for decoded < len(msgs) {
		f, n, err := DecodeFrame(batch[consumed:have])
		if errors.Is(err, ErrShortBuffer) {
			if have >= len(batch) {
				t.Fatal("stream exhausted with frames undecoded")
			}
			have += 3 // drip three more bytes into the accumulator
			if have > len(batch) {
				have = len(batch)
			}
			continue
		}
		if err != nil {
			t.Fatalf("frame %d: %v", decoded, err)
		}
		if f.Kind != msgs[decoded].kind {
			t.Fatalf("frame %d: kind %v", decoded, f.Kind)
		}
		consumed += n
		decoded++
	}
}

// TestFrameReaderReusesPayloadBuffer pins the pooling that makes the read
// path zero-alloc: consecutive frames that fit the high-water buffer share
// its backing array (the documented ownership rule exists because of
// exactly this).
func TestFrameReaderReusesPayloadBuffer(t *testing.T) {
	big := &Query{ID: "q1", Text: "a reasonably long query to set the high-water mark"}
	small := &TermStatsReq{ID: "s1", Terms: []string{"t"}}
	var batch []byte
	batch = AppendFrame(batch, KindQuery, big)
	batch = AppendFrame(batch, KindTermStats, small)
	batch = AppendFrame(batch, KindQuery, big)

	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(batch)))
	f1, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	first := &f1.Payload[0]
	for i := 0; i < 2; i++ {
		f, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Payload) == 0 || &f.Payload[0] != first {
			t.Fatal("payload buffer was reallocated for a frame under the high-water size")
		}
	}
}
