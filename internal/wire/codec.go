// Package wire implements the Open Agora message codec: a compact,
// versioned, CRC-checked binary framing used by the real TCP transport and
// by any component that needs a stable byte representation of agora
// messages (persistence, digests).
//
// Encoding rules: little-endian fixed-width integers, float64 as IEEE-754
// bits, strings and byte slices length-prefixed with uvarint, slices
// count-prefixed with uvarint. The codec is hand-rolled rather than gob so
// the format is stable across Go versions and language-independent.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Encoding errors.
var (
	ErrShortBuffer = errors.New("wire: short buffer")
	ErrTooLarge    = errors.New("wire: length exceeds limit")
	ErrChecksum    = errors.New("wire: checksum mismatch")
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrVersion     = errors.New("wire: unsupported version")
)

// MaxBlob bounds any single string/byte field to keep a corrupt length
// prefix from allocating unbounded memory.
const MaxBlob = 16 << 20

// Writer serializes primitives into a growing buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded bytes. The slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written.
func (w *Writer) Len() int { return len(w.buf) }

// Reset clears the buffer for reuse.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// U8 writes a byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U32 writes a fixed 32-bit little-endian integer.
func (w *Writer) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// U64 writes a fixed 64-bit little-endian integer.
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// I64 writes a signed 64-bit integer.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// F64 writes a float64 as IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Blob writes a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// F64s writes a count-prefixed float64 slice.
func (w *Writer) F64s(v []float64) {
	w.Uvarint(uint64(len(v)))
	for _, x := range v {
		w.F64(x)
	}
}

// U64s writes a count-prefixed fixed-width uint64 slice.
func (w *Writer) U64s(v []uint64) {
	w.Uvarint(uint64(len(v)))
	for _, x := range v {
		w.U64(x)
	}
}

// Strings writes a count-prefixed string slice.
func (w *Writer) Strings(v []string) {
	w.Uvarint(uint64(len(v)))
	for _, s := range v {
		w.String(s)
	}
}

// Reader deserializes primitives from a byte slice. Errors are sticky: after
// the first failure every subsequent read returns the zero value, and Err
// reports the first error, so decode functions can read a whole struct and
// check once.
type Reader struct {
	buf []byte
	off int
	err error
	// shared backing for String: when set, every String() slices str
	// instead of allocating its own copy (see NewSharedReader).
	str    string
	shared bool
}

// NewReader returns a reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// NewSharedReader returns a reader whose String() results all share ONE
// backing allocation: the whole payload is copied into a string up front
// and fields are sliced out of it, so a message with a dozen string
// fields decodes with one allocation instead of twelve. The returned
// strings are independent of buf (safe when buf is a pooled FrameReader
// payload) but keep the whole payload copy alive as long as any field is
// retained — right for hot streaming decodes, wrong for long-lived
// retention of one tiny field from a huge frame.
func NewSharedReader(buf []byte) *Reader {
	return &Reader{buf: buf, str: string(buf), shared: true}
}

// Err returns the first error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail(ErrShortBuffer)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a fixed 32-bit integer.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed 64-bit integer.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a signed 64-bit integer.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrShortBuffer)
		return 0
	}
	r.off += n
	return v
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// String reads a length-prefixed string. Under NewSharedReader the result
// slices the reader's shared backing instead of allocating.
func (r *Reader) String() string {
	n := r.Uvarint()
	if n > MaxBlob {
		r.fail(fmt.Errorf("%w: string %d", ErrTooLarge, n))
		return ""
	}
	start := r.off
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	if r.shared {
		return r.str[start : start+int(n)]
	}
	return string(b)
}

// Blob reads a length-prefixed byte slice (copied).
func (r *Reader) Blob() []byte {
	n := r.Uvarint()
	if n > MaxBlob {
		r.fail(fmt.Errorf("%w: blob %d", ErrTooLarge, n))
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// F64s reads a count-prefixed float64 slice.
func (r *Reader) F64s() []float64 {
	n := r.Uvarint()
	if n > MaxBlob/8 {
		r.fail(fmt.Errorf("%w: f64s %d", ErrTooLarge, n))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// U64s reads a count-prefixed fixed-width uint64 slice.
func (r *Reader) U64s() []uint64 {
	n := r.Uvarint()
	if n > MaxBlob/8 {
		r.fail(fmt.Errorf("%w: u64s %d", ErrTooLarge, n))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// Strings reads a count-prefixed string slice.
func (r *Reader) Strings() []string {
	n := r.Uvarint()
	if n > MaxBlob {
		r.fail(fmt.Errorf("%w: strings %d", ErrTooLarge, n))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, min(int(n), 4096))
	for i := uint64(0); i < n; i++ {
		out = append(out, r.String())
		if r.err != nil {
			return nil
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
