package wire

// Self-contained message DTOs. Higher layers (query, qos, negotiate) convert
// their richer types to/from these; keeping only primitives here prevents
// import cycles and keeps the wire format independent of in-memory
// representations.

// Hello announces a node joining the overlay. ShardStart/ShardEnd advertise
// the key range of a partitioned corpus this node serves (inclusive bounds
// on the 64-bit shard ring; both zero = unsharded, the node holds a whole
// corpus). They are trailing optional fields — see the compatibility note
// at Query.
type Hello struct {
	NodeID     string
	Addr       string
	Topics     []string // advertised expertise, for semantic routing
	Capacity   int64
	ShardStart uint64
	ShardEnd   uint64
}

// Marshal encodes the message.
func (m *Hello) Marshal() []byte {
	w := NewWriter(64)
	w.String(m.NodeID)
	w.String(m.Addr)
	w.Strings(m.Topics)
	w.I64(m.Capacity)
	w.U64(m.ShardStart)
	w.U64(m.ShardEnd)
	return w.Bytes()
}

// UnmarshalHello decodes a Hello.
func UnmarshalHello(b []byte) (Hello, error) {
	r := NewReader(b)
	m := Hello{
		NodeID:   r.String(),
		Addr:     r.String(),
		Topics:   r.Strings(),
		Capacity: r.I64(),
	}
	if r.Err() == nil && r.Remaining() >= 16 {
		m.ShardStart = r.U64()
		m.ShardEnd = r.U64()
	}
	return m, r.Err()
}

// Gossip carries a membership sample.
type Gossip struct {
	From  string
	Peers []string // "id addr" pairs, flattened
}

// AppendTo appends the encoded message to dst and returns the extended
// slice — the zero-allocation marshal for the hot wire path. The bytes
// are identical to Marshal's. Callers own dst (typically a pooled
// per-connection staging buffer).
func (m *Gossip) AppendTo(dst []byte) []byte {
	dst = appendString(dst, m.From)
	return appendStrings(dst, m.Peers)
}

// Marshal encodes the message.
func (m *Gossip) Marshal() []byte { return m.AppendTo(make([]byte, 0, 64)) }

// UnmarshalGossip decodes a Gossip.
func UnmarshalGossip(b []byte) (Gossip, error) {
	r := NewReader(b)
	m := Gossip{From: r.String(), Peers: r.Strings()}
	return m, r.Err()
}

// QoSTerms is the flat wire form of a QoS vector / SLA terms.
type QoSTerms struct {
	Price        float64
	LatencyMs    float64
	Completeness float64
	FreshnessSec float64
	Trust        float64
	Premium      float64
	PenaltyRate  float64
}

func (q *QoSTerms) encode(w *Writer) {
	w.F64(q.Price)
	w.F64(q.LatencyMs)
	w.F64(q.Completeness)
	w.F64(q.FreshnessSec)
	w.F64(q.Trust)
	w.F64(q.Premium)
	w.F64(q.PenaltyRate)
}

func (q *QoSTerms) appendTo(dst []byte) []byte {
	dst = appendF64(dst, q.Price)
	dst = appendF64(dst, q.LatencyMs)
	dst = appendF64(dst, q.Completeness)
	dst = appendF64(dst, q.FreshnessSec)
	dst = appendF64(dst, q.Trust)
	dst = appendF64(dst, q.Premium)
	return appendF64(dst, q.PenaltyRate)
}

func decodeQoSTerms(r *Reader) QoSTerms {
	return QoSTerms{
		Price:        r.F64(),
		LatencyMs:    r.F64(),
		Completeness: r.F64(),
		FreshnessSec: r.F64(),
		Trust:        r.F64(),
		Premium:      r.F64(),
		PenaltyRate:  r.F64(),
	}
}

// Query is a wire query: free text plus an optional concept vector and the
// QoS the consumer wants. TraceID/SpanID carry the caller's trace context
// (zero = untraced) so the provider can continue the trace; they are
// trailing optional fields — see the compatibility note below.
type Query struct {
	ID      string
	From    string
	Text    string
	Concept []float64
	TopK    uint32
	TTL     uint32
	Want    QoSTerms
	TraceID uint64
	SpanID  uint64

	// Shard-routing tail (optional, after the trace tail). A scatter router
	// ships corpus-wide statistics with the query so every shard scores
	// against the same idf weights a single node holding the whole corpus
	// would use: GlobalDocs is the corpus document count and
	// StatsTerms/StatsDF are parallel per-term global document frequencies.
	// GlobalDocs == 0 means "score locally" (the pre-shard behaviour).
	GlobalDocs uint64
	StatsTerms []string
	StatsDF    []uint64
}

// Trace-context fields ride as *trailing* fixed-width fields rather than a
// frame-version bump: a v1 decoder that predates them stops reading before
// the tail and ignores it, while a new decoder reads them only when enough
// bytes remain. Old frames therefore stay decodable (context reads as
// zero, i.e. untraced) and old peers tolerate new frames. Any future
// optional field must be appended after these, same trick.

// AppendTo appends the encoded message to dst and returns the extended
// slice; bytes identical to Marshal's. See Gossip.AppendTo for the
// ownership contract.
func (m *Query) AppendTo(dst []byte) []byte {
	dst = appendString(dst, m.ID)
	dst = appendString(dst, m.From)
	dst = appendString(dst, m.Text)
	dst = appendF64s(dst, m.Concept)
	dst = appendU32(dst, m.TopK)
	dst = appendU32(dst, m.TTL)
	dst = m.Want.appendTo(dst)
	dst = appendU64(dst, m.TraceID)
	dst = appendU64(dst, m.SpanID)
	dst = appendU64(dst, m.GlobalDocs)
	dst = appendStrings(dst, m.StatsTerms)
	return appendU64s(dst, m.StatsDF)
}

// Marshal encodes the message.
func (m *Query) Marshal() []byte { return m.AppendTo(make([]byte, 0, 128)) }

// UnmarshalQuery decodes a Query.
func UnmarshalQuery(b []byte) (Query, error) { return decodeQuery(NewReader(b)) }

// UnmarshalQueryShared decodes a Query with all string fields sharing one
// backing allocation (NewSharedReader): the streaming server path decodes
// pooled FrameReader payloads through this.
func UnmarshalQueryShared(b []byte) (Query, error) { return decodeQuery(NewSharedReader(b)) }

func decodeQuery(r *Reader) (Query, error) {
	m := Query{
		ID:      r.String(),
		From:    r.String(),
		Text:    r.String(),
		Concept: r.F64s(),
		TopK:    r.U32(),
		TTL:     r.U32(),
		Want:    decodeQoSTerms(r),
	}
	if r.Err() == nil && r.Remaining() >= 16 {
		m.TraceID = r.U64()
		m.SpanID = r.U64()
	}
	if r.Err() == nil && r.Remaining() > 0 {
		m.GlobalDocs = r.U64()
		m.StatsTerms = r.Strings()
		m.StatsDF = r.U64s()
	}
	return m, r.Err()
}

// ResultItem is one scored answer.
type ResultItem struct {
	DocID   string
	Source  string
	Score   float64
	Snippet string
}

// QueryResult returns scored items for a query. TraceID echoes the trace
// the provider served under (its own fresh ID if the query was untraced),
// so the consumer can log which distributed trace to look up server-side.
// Trailing optional field, same compatibility contract as Query.
type QueryResult struct {
	QueryID string
	From    string
	Items   []ResultItem
	Elapsed float64 // seconds, provider-side
	TraceID uint64
	Epoch   uint64 // provider snapshot epoch answered from (0 = unreported)
}

// AppendTo appends the encoded message to dst and returns the extended
// slice; bytes identical to Marshal's. See Gossip.AppendTo for the
// ownership contract.
func (m *QueryResult) AppendTo(dst []byte) []byte {
	dst = appendString(dst, m.QueryID)
	dst = appendString(dst, m.From)
	dst = appendUvarint(dst, uint64(len(m.Items)))
	for i := range m.Items {
		it := &m.Items[i]
		dst = appendString(dst, it.DocID)
		dst = appendString(dst, it.Source)
		dst = appendF64(dst, it.Score)
		dst = appendString(dst, it.Snippet)
	}
	dst = appendF64(dst, m.Elapsed)
	dst = appendU64(dst, m.TraceID)
	return appendU64(dst, m.Epoch)
}

// Marshal encodes the message.
func (m *QueryResult) Marshal() []byte { return m.AppendTo(make([]byte, 0, 256)) }

// UnmarshalQueryResult decodes a QueryResult.
func UnmarshalQueryResult(b []byte) (QueryResult, error) {
	return decodeQueryResult(NewReader(b))
}

// UnmarshalQueryResultShared decodes a QueryResult with every string field
// (per-item DocID/Source/Snippet included) sliced from one shared backing
// allocation — a k-item result decodes with two allocations instead of
// 3k+2. The client demux loop uses this on pooled FrameReader payloads.
func UnmarshalQueryResultShared(b []byte) (QueryResult, error) {
	return decodeQueryResult(NewSharedReader(b))
}

func decodeQueryResult(r *Reader) (QueryResult, error) {
	m := QueryResult{QueryID: r.String(), From: r.String()}
	n := r.Uvarint()
	if n > MaxBlob {
		return m, ErrTooLarge
	}
	if n > 0 && r.Err() == nil {
		m.Items = make([]ResultItem, 0, min(int(n), 4096))
	}
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		m.Items = append(m.Items, ResultItem{
			DocID:   r.String(),
			Source:  r.String(),
			Score:   r.F64(),
			Snippet: r.String(),
		})
	}
	m.Elapsed = r.F64()
	if r.Err() == nil && r.Remaining() >= 8 {
		m.TraceID = r.U64()
	}
	if r.Err() == nil && r.Remaining() >= 8 {
		m.Epoch = r.U64()
	}
	return m, r.Err()
}

// Offer is one side's proposal in a negotiation round.
type Offer struct {
	NegotiationID string
	QueryID       string
	From          string
	Round         uint32
	Terms         QoSTerms
	Expire        int64 // virtual/real nanos after which the offer is void
}

// Marshal encodes the message.
func (m *Offer) Marshal() []byte {
	w := NewWriter(128)
	w.String(m.NegotiationID)
	w.String(m.QueryID)
	w.String(m.From)
	w.U32(m.Round)
	m.Terms.encode(w)
	w.I64(m.Expire)
	return w.Bytes()
}

// UnmarshalOffer decodes an Offer.
func UnmarshalOffer(b []byte) (Offer, error) {
	r := NewReader(b)
	m := Offer{
		NegotiationID: r.String(),
		QueryID:       r.String(),
		From:          r.String(),
		Round:         r.U32(),
		Terms:         decodeQoSTerms(r),
		Expire:        r.I64(),
	}
	return m, r.Err()
}

// Contract is a signed SLA between consumer and provider.
type Contract struct {
	ID       string
	QueryID  string
	Consumer string
	Provider string
	Terms    QoSTerms
	SignedAt int64
}

// Marshal encodes the message.
func (m *Contract) Marshal() []byte {
	w := NewWriter(128)
	w.String(m.ID)
	w.String(m.QueryID)
	w.String(m.Consumer)
	w.String(m.Provider)
	m.Terms.encode(w)
	w.I64(m.SignedAt)
	return w.Bytes()
}

// UnmarshalContract decodes a Contract.
func UnmarshalContract(b []byte) (Contract, error) {
	r := NewReader(b)
	m := Contract{
		ID:       r.String(),
		QueryID:  r.String(),
		Consumer: r.String(),
		Provider: r.String(),
		Terms:    decodeQoSTerms(r),
		SignedAt: r.I64(),
	}
	return m, r.Err()
}

// FeedItem is one item pushed on a continuous feed.
type FeedItem struct {
	FeedID  string
	DocID   string
	Source  string
	Text    string
	Concept []float64
	Seq     uint64
}

// AppendTo appends the encoded message to dst and returns the extended
// slice; bytes identical to Marshal's. See Gossip.AppendTo for the
// ownership contract.
func (m *FeedItem) AppendTo(dst []byte) []byte {
	dst = appendString(dst, m.FeedID)
	dst = appendString(dst, m.DocID)
	dst = appendString(dst, m.Source)
	dst = appendString(dst, m.Text)
	dst = appendF64s(dst, m.Concept)
	return appendU64(dst, m.Seq)
}

// Marshal encodes the message.
func (m *FeedItem) Marshal() []byte { return m.AppendTo(make([]byte, 0, 128)) }

// UnmarshalFeedItem decodes a FeedItem.
func UnmarshalFeedItem(b []byte) (FeedItem, error) { return decodeFeedItem(NewReader(b)) }

// UnmarshalFeedItemShared decodes a FeedItem with its strings sharing one
// backing allocation; safe to retain (the backing is independent of b).
func UnmarshalFeedItemShared(b []byte) (FeedItem, error) { return decodeFeedItem(NewSharedReader(b)) }

func decodeFeedItem(r *Reader) (FeedItem, error) {
	m := FeedItem{
		FeedID:  r.String(),
		DocID:   r.String(),
		Source:  r.String(),
		Text:    r.String(),
		Concept: r.F64s(),
		Seq:     r.U64(),
	}
	return m, r.Err()
}

// Subscribe registers a standing interest with a provider.
type Subscribe struct {
	SubID     string
	From      string
	Terms     []string  // textual predicate terms (all must match)
	Concept   []float64 // similarity predicate; empty disables
	Threshold float64
}

// Marshal encodes the message.
func (m *Subscribe) Marshal() []byte {
	w := NewWriter(96)
	w.String(m.SubID)
	w.String(m.From)
	w.Strings(m.Terms)
	w.F64s(m.Concept)
	w.F64(m.Threshold)
	return w.Bytes()
}

// UnmarshalSubscribe decodes a Subscribe.
func UnmarshalSubscribe(b []byte) (Subscribe, error) {
	r := NewReader(b)
	m := Subscribe{
		SubID:     r.String(),
		From:      r.String(),
		Terms:     r.Strings(),
		Concept:   r.F64s(),
		Threshold: r.F64(),
	}
	return m, r.Err()
}

// TermStatsReq asks a shard for per-term corpus statistics, so a scatter
// router can assemble global idf weights and shard-level score upper bounds
// before dispatching a query.
type TermStatsReq struct {
	ID    string
	Terms []string
}

// AppendTo appends the encoded message to dst and returns the extended
// slice; bytes identical to Marshal's. See Gossip.AppendTo for the
// ownership contract.
func (m *TermStatsReq) AppendTo(dst []byte) []byte {
	dst = appendString(dst, m.ID)
	return appendStrings(dst, m.Terms)
}

// Marshal encodes the message.
func (m *TermStatsReq) Marshal() []byte { return m.AppendTo(make([]byte, 0, 64)) }

// UnmarshalTermStatsReq decodes a TermStatsReq.
func UnmarshalTermStatsReq(b []byte) (TermStatsReq, error) {
	return decodeTermStatsReq(NewReader(b))
}

// UnmarshalTermStatsReqShared decodes a TermStatsReq with ID and all terms
// sharing one backing allocation (the payload is almost entirely strings).
func UnmarshalTermStatsReqShared(b []byte) (TermStatsReq, error) {
	return decodeTermStatsReq(NewSharedReader(b))
}

func decodeTermStatsReq(r *Reader) (TermStatsReq, error) {
	m := TermStatsReq{ID: r.String(), Terms: r.Strings()}
	return m, r.Err()
}

// TermStatsResp answers a TermStatsReq: the shard's live document count and
// snapshot epoch, plus per-term document frequency and the maximum
// normalized term-weight ratio max_d (1+ln tf)/sqrt(len_d+1) — the shard's
// contribution to a score upper bound. DF and MaxRatio are parallel to the
// request's Terms.
type TermStatsResp struct {
	ID       string
	Total    uint64 // documents on this shard
	Epoch    uint64 // snapshot epoch the stats were read at
	DF       []uint64
	MaxRatio []float64
}

// AppendTo appends the encoded message to dst and returns the extended
// slice; bytes identical to Marshal's. See Gossip.AppendTo for the
// ownership contract.
func (m *TermStatsResp) AppendTo(dst []byte) []byte {
	dst = appendString(dst, m.ID)
	dst = appendU64(dst, m.Total)
	dst = appendU64(dst, m.Epoch)
	dst = appendU64s(dst, m.DF)
	return appendF64s(dst, m.MaxRatio)
}

// Marshal encodes the message.
func (m *TermStatsResp) Marshal() []byte { return m.AppendTo(make([]byte, 0, 128)) }

// UnmarshalTermStatsResp decodes a TermStatsResp.
func UnmarshalTermStatsResp(b []byte) (TermStatsResp, error) {
	r := NewReader(b)
	m := TermStatsResp{
		ID:       r.String(),
		Total:    r.U64(),
		Epoch:    r.U64(),
		DF:       r.U64s(),
		MaxRatio: r.F64s(),
	}
	return m, r.Err()
}
