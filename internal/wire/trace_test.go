package wire

import (
	"reflect"
	"testing"
)

// Trace-context propagation coverage: inject→extract equality, zero-context
// passthrough, and backward compatibility with peers that predate the
// trailing trace fields.

func TestQueryTraceContextRoundtrip(t *testing.T) {
	m := Query{
		ID: "q1", From: "iris", Text: "byzantine gold ring",
		Concept: []float64{0.25}, TopK: 5, TTL: 2,
		TraceID: 0xDEADBEEFCAFEF00D, SpanID: 0x0123456789ABCDEF,
	}
	got, err := UnmarshalQuery(m.Marshal())
	if err != nil || !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v err %v", got, err)
	}
	if got.TraceID != m.TraceID || got.SpanID != m.SpanID {
		t.Fatalf("trace context mangled: %x/%x", got.TraceID, got.SpanID)
	}

	res := QueryResult{QueryID: "q1", From: "museum-7", Elapsed: 0.02, TraceID: 0xDEADBEEFCAFEF00D}
	gotRes, err := UnmarshalQueryResult(res.Marshal())
	if err != nil || gotRes.TraceID != res.TraceID {
		t.Fatalf("result trace lost: %+v err %v", gotRes, err)
	}
}

func TestQueryZeroTraceContextPassthrough(t *testing.T) {
	m := Query{ID: "q2", From: "iris", Text: "untraced", TopK: 3}
	got, err := UnmarshalQuery(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 0 || got.SpanID != 0 {
		t.Fatalf("zero context did not survive: %x/%x", got.TraceID, got.SpanID)
	}
	res := QueryResult{QueryID: "q2", From: "p"}
	gotRes, err := UnmarshalQueryResult(res.Marshal())
	if err != nil || gotRes.TraceID != 0 {
		t.Fatalf("zero result trace: %+v err %v", gotRes, err)
	}
}

// TestQueryBackwardCompatible feeds the decoder payloads an old peer would
// produce — identical layout minus the trailing trace fields (the fields
// are fixed-width and strictly trailing, so truncation reproduces the old
// encoding exactly). They must decode cleanly with a zero context.
func TestQueryBackwardCompatible(t *testing.T) {
	m := Query{
		ID: "q3", From: "iris", Text: "old peer", Concept: []float64{1, 2},
		TopK: 7, TTL: 1, TraceID: 0x1111, SpanID: 0x2222,
	}
	// Strip the shard-stats tail (8-byte GlobalDocs + two empty-slice
	// counts) and then the 16-byte trace tail to reproduce a pre-trace
	// peer's encoding exactly.
	legacy := m.Marshal()
	legacy = legacy[:len(legacy)-10-16]
	got, err := UnmarshalQuery(legacy)
	if err != nil {
		t.Fatalf("legacy query rejected: %v", err)
	}
	want := m
	want.TraceID, want.SpanID = 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy decode diverged: %+v", got)
	}

	res := QueryResult{
		QueryID: "q3", From: "p",
		Items:   []ResultItem{{DocID: "d", Source: "p", Score: 0.5, Snippet: "x"}},
		Elapsed: 0.5, TraceID: 0x3333,
	}
	// Epoch (8) then TraceID (8) off the tail → pre-trace encoding.
	legacyRes := res.Marshal()
	legacyRes = legacyRes[:len(legacyRes)-16]
	gotRes, err := UnmarshalQueryResult(legacyRes)
	if err != nil {
		t.Fatalf("legacy result rejected: %v", err)
	}
	wantRes := res
	wantRes.TraceID = 0
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatalf("legacy result diverged: %+v", gotRes)
	}

	// And the other direction: a frame carrying the new tail decodes on a
	// decoder that ignores trailing bytes it does not know about — which is
	// this decoder's behavior for any future field appended after ours.
	extended := append(res.Marshal(), 0xAA, 0xBB, 0xCC)
	gotExt, err := UnmarshalQueryResult(extended)
	if err != nil || gotExt.TraceID != res.TraceID {
		t.Fatalf("future-extended result rejected: %+v err %v", gotExt, err)
	}
}
