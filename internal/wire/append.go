package wire

import (
	"encoding/binary"
	"math"
)

// Append-style primitive encoders: the zero-allocation mirror of the
// Writer methods. Each appends the exact bytes the corresponding Writer
// method produces and returns the extended slice, so an AppendTo marshal
// built from these is byte-identical to the legacy Marshal built on
// Writer (batch_test.go pins this for every hot message). Callers
// own dst — typically a pooled per-connection staging buffer — and the
// append discipline means a warm buffer encodes a whole frame without a
// single heap allocation (the wirealloc analyzer machine-checks this).

// appendU8 appends one byte.
func appendU8(dst []byte, v uint8) []byte { return append(dst, v) }

// appendU32 appends a fixed 32-bit little-endian integer.
func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// appendU64 appends a fixed 64-bit little-endian integer.
func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// appendI64 appends a signed 64-bit integer.
func appendI64(dst []byte, v int64) []byte { return appendU64(dst, uint64(v)) }

// appendUvarint appends an unsigned varint.
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// appendF64 appends a float64 as IEEE-754 bits.
func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendF64s appends a count-prefixed float64 slice.
func appendF64s(dst []byte, v []float64) []byte {
	dst = appendUvarint(dst, uint64(len(v)))
	for _, x := range v {
		dst = appendF64(dst, x)
	}
	return dst
}

// appendU64s appends a count-prefixed fixed-width uint64 slice.
func appendU64s(dst []byte, v []uint64) []byte {
	dst = appendUvarint(dst, uint64(len(v)))
	for _, x := range v {
		dst = appendU64(dst, x)
	}
	return dst
}

// appendStrings appends a count-prefixed string slice.
func appendStrings(dst []byte, v []string) []byte {
	dst = appendUvarint(dst, uint64(len(v)))
	for _, s := range v {
		dst = appendString(dst, s)
	}
	return dst
}
