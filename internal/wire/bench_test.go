package wire

import (
	"bufio"
	"io"
	"testing"
)

// benchQuery is a representative scatter-path query: trace tail and the
// global-stats tail populated, as the router ships them.
func benchQuery() *Query {
	return &Query{
		ID: "q-000123", From: "router", Text: "byzantine gold ring provenance",
		Concept: []float64{0.1, -0.4, 0.9, 0.3}, TopK: 10, TTL: 2,
		Want:    QoSTerms{Price: 1, LatencyMs: 50, Completeness: 0.9, FreshnessSec: 300, Trust: 0.7},
		TraceID: 0x1234, SpanID: 0x56,
		GlobalDocs: 131072,
		StatsTerms: []string{"byzantine", "gold", "ring", "provenance"},
		StatsDF:    []uint64{31, 512, 498, 12},
	}
}

// BenchmarkFrameEncode measures the zero-alloc staging path: one query
// frame appended to a warm buffer (BeginFrame + AppendTo + EndFrame).
func BenchmarkFrameEncode(b *testing.B) {
	q := benchQuery()
	buf := AppendFrame(nil, KindQuery, q) // warm to high-water size
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], KindQuery, q)
	}
}

// BenchmarkFrameEncodeLegacy is the pre-batching baseline the tentpole
// replaces: a fresh Marshal buffer plus a fresh EncodeFrame buffer per
// frame, exactly what wire.WriteFrame(conn, kind, m.Marshal()) costs.
func BenchmarkFrameEncodeLegacy(b *testing.B) {
	q := benchQuery()
	payload := q.Marshal()
	b.SetBytes(int64(headerSize + len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := q.Marshal()
		_ = EncodeFrame(make([]byte, 0, headerSize+len(payload)), KindQuery, payload)
	}
}

// repeatReader serves the same encoded bytes forever, so decode
// benchmarks stream frames without per-iteration reader resets.
type repeatReader struct {
	data []byte
	off  int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

var _ io.Reader = (*repeatReader)(nil)

// BenchmarkFrameDecode measures the pooled streaming read path: header
// scratch and payload buffer both live in the FrameReader.
func BenchmarkFrameDecode(b *testing.B) {
	frame := AppendFrame(nil, KindQuery, benchQuery())
	fr := NewFrameReader(bufio.NewReaderSize(&repeatReader{data: frame}, 4096))
	if _, err := fr.Next(); err != nil { // warm the payload buffer
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fr.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameDecodeLegacy is the allocating baseline: ReadFrame's
// fresh header + payload per frame.
func BenchmarkFrameDecodeLegacy(b *testing.B) {
	frame := AppendFrame(nil, KindQuery, benchQuery())
	r := bufio.NewReaderSize(&repeatReader{data: frame}, 4096)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadFrame(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryUnmarshal isolates message decode on top of a pooled
// payload: what the demux loop pays after FrameReader.Next.
func BenchmarkQueryUnmarshal(b *testing.B) {
	payload := benchQuery().Marshal()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalQuery(payload); err != nil {
			b.Fatal(err)
		}
	}
}
