package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout:
//
//	magic   uint16 = 0xA60A ("Agora")
//	version uint8  = 1
//	kind    uint8
//	length  uint32 (payload bytes)
//	crc32   uint32 (IEEE, over payload)
//	payload [length]byte
const (
	Magic       = 0xA60A
	Version     = 1
	headerSize  = 2 + 1 + 1 + 4 + 4
	maxFrameLen = 64 << 20
)

// Kind identifies a message type inside a frame.
type Kind uint8

// Message kinds spoken by agora nodes.
const (
	KindHello Kind = iota + 1
	KindHelloAck
	KindGossip
	KindQuery
	KindQueryResult
	KindCallForOffers
	KindOffer
	KindCounterOffer
	KindAccept
	KindReject
	KindContract
	KindDelivery
	KindBreach
	KindFeedItem
	KindSubscribe
	KindUnsubscribe
	KindProfilePart
	KindCollabOp
	KindPing
	KindPong
	KindTermStats
	KindTermStatsResult
)

var kindNames = map[Kind]string{
	KindHello: "hello", KindHelloAck: "helloAck", KindGossip: "gossip",
	KindQuery: "query", KindQueryResult: "queryResult",
	KindCallForOffers: "callForOffers", KindOffer: "offer",
	KindCounterOffer: "counterOffer", KindAccept: "accept",
	KindReject: "reject", KindContract: "contract",
	KindDelivery: "delivery", KindBreach: "breach",
	KindFeedItem: "feedItem", KindSubscribe: "subscribe",
	KindUnsubscribe: "unsubscribe", KindProfilePart: "profilePart",
	KindCollabOp: "collabOp", KindPing: "ping", KindPong: "pong",
	KindTermStats: "termStats", KindTermStatsResult: "termStatsResult",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Frame is a decoded message envelope.
type Frame struct {
	Kind    Kind
	Payload []byte
}

// Appender is a message that can marshal itself onto the end of a
// caller-owned buffer without allocating: every hot wire message (Query,
// QueryResult, FeedItem, TermStatsReq/Resp, Gossip) implements it, and
// the transport's write coalescer stages frames through it.
type Appender interface {
	AppendTo(dst []byte) []byte
}

// EncodeFrame appends the framed message to dst and returns the result.
func EncodeFrame(dst []byte, kind Kind, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, byte(kind))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	dst = append(dst, payload...)
	return dst
}

// BeginFrame appends a frame header placeholder for kind to dst and
// returns the extended slice plus the header's offset. The caller appends
// the payload directly after it (AppendTo) and seals the frame with
// EndFrame — one pass, no intermediate payload buffer. Frames staged this
// way are byte-identical to EncodeFrame over the same payload.
func BeginFrame(dst []byte, kind Kind) ([]byte, int) {
	off := len(dst)
	dst = binary.LittleEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, byte(kind))
	dst = binary.LittleEndian.AppendUint32(dst, 0) // length, patched by EndFrame
	dst = binary.LittleEndian.AppendUint32(dst, 0) // crc32, patched by EndFrame
	return dst, off
}

// EndFrame seals a frame begun at off: everything appended past the
// header becomes the payload, whose length and CRC are patched in place.
func EndFrame(dst []byte, off int) []byte {
	payload := dst[off+headerSize:]
	binary.LittleEndian.PutUint32(dst[off+4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[off+8:], crc32.ChecksumIEEE(payload))
	return dst
}

// AppendFrame stages one complete message frame onto dst: header,
// payload via m.AppendTo, length/CRC patch. The allocation-free composition
// of BeginFrame + AppendTo + EndFrame.
func AppendFrame(dst []byte, kind Kind, m Appender) []byte {
	dst, off := BeginFrame(dst, kind)
	dst = m.AppendTo(dst)
	return EndFrame(dst, off)
}

// DecodeFrame parses one frame from buf, returning the frame and the number
// of bytes consumed. It returns ErrShortBuffer if buf does not hold a
// complete frame yet (callers accumulating a stream retry with more data).
func DecodeFrame(buf []byte) (Frame, int, error) {
	if len(buf) < headerSize {
		return Frame{}, 0, ErrShortBuffer
	}
	if binary.LittleEndian.Uint16(buf) != Magic {
		return Frame{}, 0, ErrBadMagic
	}
	if buf[2] != Version {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrVersion, buf[2])
	}
	kind := Kind(buf[3])
	length := binary.LittleEndian.Uint32(buf[4:])
	if length > maxFrameLen {
		return Frame{}, 0, fmt.Errorf("%w: frame %d", ErrTooLarge, length)
	}
	want := binary.LittleEndian.Uint32(buf[8:])
	total := headerSize + int(length)
	if len(buf) < total {
		return Frame{}, 0, ErrShortBuffer
	}
	payload := buf[headerSize:total]
	if crc32.ChecksumIEEE(payload) != want {
		return Frame{}, 0, ErrChecksum
	}
	out := make([]byte, length)
	copy(out, payload)
	return Frame{Kind: kind, Payload: out}, total, nil
}

// WriteFrame writes one framed message to w.
func WriteFrame(w io.Writer, kind Kind, payload []byte) error {
	buf := EncodeFrame(make([]byte, 0, headerSize+len(payload)), kind, payload)
	_, err := w.Write(buf)
	return err
}

// FrameReader decodes a frame stream with reused buffers: the header
// scratch lives in the reader and the payload buffer grows once to the
// connection's high-water frame size, then is handed out again and again.
//
// Ownership rule: the Frame returned by Next aliases the reader's
// internal payload buffer and is valid only until the next Next call.
// Decode it (Unmarshal* copies every field) or copy it before reading
// on; never retain Frame.Payload. Callers that need an owned payload use
// ReadFrame instead.
type FrameReader struct {
	r       *bufio.Reader
	hdr     [headerSize]byte
	payload []byte
}

// NewFrameReader returns a pooled-buffer frame decoder over r.
func NewFrameReader(r *bufio.Reader) *FrameReader {
	return &FrameReader{r: r}
}

// Next reads one frame. The returned payload is valid only until the
// following Next call — see the FrameReader ownership rule.
func (fr *FrameReader) Next() (Frame, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return Frame{}, err
	}
	if binary.LittleEndian.Uint16(fr.hdr[:]) != Magic {
		return Frame{}, ErrBadMagic
	}
	if fr.hdr[2] != Version {
		return Frame{}, fmt.Errorf("%w: %d", ErrVersion, fr.hdr[2])
	}
	kind := Kind(fr.hdr[3])
	length := binary.LittleEndian.Uint32(fr.hdr[4:])
	if length > maxFrameLen {
		return Frame{}, fmt.Errorf("%w: frame %d", ErrTooLarge, length)
	}
	want := binary.LittleEndian.Uint32(fr.hdr[8:])
	if uint32(cap(fr.payload)) < length {
		// Pool miss: the buffer grows to the connection's high-water frame
		// size once, then every further frame reuses it.
		fr.payload = make([]byte, length) //lint:allow wirealloc documented pool miss: one growth to the high-water frame size, amortized across the connection
	}
	payload := fr.payload[:length]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return Frame{}, fmt.Errorf("wire: reading payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != want {
		return Frame{}, ErrChecksum
	}
	return Frame{Kind: kind, Payload: payload}, nil
}

// ReadFrame reads one framed message from a buffered reader. The returned
// payload is freshly allocated and owned by the caller; the streaming
// paths use FrameReader instead, which reuses its buffers.
func ReadFrame(r *bufio.Reader) (Frame, error) {
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return Frame{}, err
	}
	if binary.LittleEndian.Uint16(header) != Magic {
		return Frame{}, ErrBadMagic
	}
	if header[2] != Version {
		return Frame{}, fmt.Errorf("%w: %d", ErrVersion, header[2])
	}
	kind := Kind(header[3])
	length := binary.LittleEndian.Uint32(header[4:])
	if length > maxFrameLen {
		return Frame{}, fmt.Errorf("%w: frame %d", ErrTooLarge, length)
	}
	want := binary.LittleEndian.Uint32(header[8:])
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("wire: reading payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != want {
		return Frame{}, ErrChecksum
	}
	return Frame{Kind: kind, Payload: payload}, nil
}
