package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout:
//
//	magic   uint16 = 0xA60A ("Agora")
//	version uint8  = 1
//	kind    uint8
//	length  uint32 (payload bytes)
//	crc32   uint32 (IEEE, over payload)
//	payload [length]byte
const (
	Magic       = 0xA60A
	Version     = 1
	headerSize  = 2 + 1 + 1 + 4 + 4
	maxFrameLen = 64 << 20
)

// Kind identifies a message type inside a frame.
type Kind uint8

// Message kinds spoken by agora nodes.
const (
	KindHello Kind = iota + 1
	KindHelloAck
	KindGossip
	KindQuery
	KindQueryResult
	KindCallForOffers
	KindOffer
	KindCounterOffer
	KindAccept
	KindReject
	KindContract
	KindDelivery
	KindBreach
	KindFeedItem
	KindSubscribe
	KindUnsubscribe
	KindProfilePart
	KindCollabOp
	KindPing
	KindPong
	KindTermStats
	KindTermStatsResult
)

var kindNames = map[Kind]string{
	KindHello: "hello", KindHelloAck: "helloAck", KindGossip: "gossip",
	KindQuery: "query", KindQueryResult: "queryResult",
	KindCallForOffers: "callForOffers", KindOffer: "offer",
	KindCounterOffer: "counterOffer", KindAccept: "accept",
	KindReject: "reject", KindContract: "contract",
	KindDelivery: "delivery", KindBreach: "breach",
	KindFeedItem: "feedItem", KindSubscribe: "subscribe",
	KindUnsubscribe: "unsubscribe", KindProfilePart: "profilePart",
	KindCollabOp: "collabOp", KindPing: "ping", KindPong: "pong",
	KindTermStats: "termStats", KindTermStatsResult: "termStatsResult",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Frame is a decoded message envelope.
type Frame struct {
	Kind    Kind
	Payload []byte
}

// EncodeFrame appends the framed message to dst and returns the result.
func EncodeFrame(dst []byte, kind Kind, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, byte(kind))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	dst = append(dst, payload...)
	return dst
}

// DecodeFrame parses one frame from buf, returning the frame and the number
// of bytes consumed. It returns ErrShortBuffer if buf does not hold a
// complete frame yet (callers accumulating a stream retry with more data).
func DecodeFrame(buf []byte) (Frame, int, error) {
	if len(buf) < headerSize {
		return Frame{}, 0, ErrShortBuffer
	}
	if binary.LittleEndian.Uint16(buf) != Magic {
		return Frame{}, 0, ErrBadMagic
	}
	if buf[2] != Version {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrVersion, buf[2])
	}
	kind := Kind(buf[3])
	length := binary.LittleEndian.Uint32(buf[4:])
	if length > maxFrameLen {
		return Frame{}, 0, fmt.Errorf("%w: frame %d", ErrTooLarge, length)
	}
	want := binary.LittleEndian.Uint32(buf[8:])
	total := headerSize + int(length)
	if len(buf) < total {
		return Frame{}, 0, ErrShortBuffer
	}
	payload := buf[headerSize:total]
	if crc32.ChecksumIEEE(payload) != want {
		return Frame{}, 0, ErrChecksum
	}
	out := make([]byte, length)
	copy(out, payload)
	return Frame{Kind: kind, Payload: out}, total, nil
}

// WriteFrame writes one framed message to w.
func WriteFrame(w io.Writer, kind Kind, payload []byte) error {
	buf := EncodeFrame(make([]byte, 0, headerSize+len(payload)), kind, payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one framed message from a buffered reader.
func ReadFrame(r *bufio.Reader) (Frame, error) {
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return Frame{}, err
	}
	if binary.LittleEndian.Uint16(header) != Magic {
		return Frame{}, ErrBadMagic
	}
	if header[2] != Version {
		return Frame{}, fmt.Errorf("%w: %d", ErrVersion, header[2])
	}
	kind := Kind(header[3])
	length := binary.LittleEndian.Uint32(header[4:])
	if length > maxFrameLen {
		return Frame{}, fmt.Errorf("%w: frame %d", ErrTooLarge, length)
	}
	want := binary.LittleEndian.Uint32(header[8:])
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("wire: reading payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != want {
		return Frame{}, ErrChecksum
	}
	return Frame{Kind: kind, Payload: payload}, nil
}
