// Package uncertainty implements the probabilistic machinery the paper's
// Uncertainty section calls for: calibrating raw match scores into match
// probabilities, maintaining Beta-distributed beliefs about source quality,
// propagating uncertain cost estimates as intervals, and evaluating risky
// outcomes under user-specific risk attitudes.
package uncertainty

import (
	"errors"
	"fmt"
	"sort"
)

// Calibrator maps raw similarity scores (any real feature-match output) to
// calibrated match probabilities using isotonic regression (pool-adjacent-
// violators), the standard non-parametric calibration method. A calibrated
// score answers the paper's question "given a metric value, how likely is
// this actually a match for the user?".
type Calibrator struct {
	// Breakpoints of the fitted step function: scores ascending, probs
	// non-decreasing.
	scores []float64
	probs  []float64
}

// ErrNoData is returned when fitting with no observations.
var ErrNoData = errors.New("uncertainty: no calibration data")

// FitCalibrator fits isotonic regression to (score, matched) observations.
func FitCalibrator(scores []float64, matched []bool) (*Calibrator, error) {
	if len(scores) == 0 || len(scores) != len(matched) {
		return nil, fmt.Errorf("%w: %d scores, %d labels", ErrNoData, len(scores), len(matched))
	}
	type obs struct {
		s float64
		y float64
	}
	data := make([]obs, len(scores))
	for i := range scores {
		y := 0.0
		if matched[i] {
			y = 1
		}
		data[i] = obs{scores[i], y}
	}
	sort.Slice(data, func(i, j int) bool { return data[i].s < data[j].s })

	// Pool adjacent violators over blocks.
	type block struct {
		sum  float64
		n    float64
		minS float64
		maxS float64
	}
	blocks := make([]block, 0, len(data))
	for _, d := range data {
		blocks = append(blocks, block{sum: d.y, n: 1, minS: d.s, maxS: d.s})
		for len(blocks) >= 2 {
			a, b := blocks[len(blocks)-2], blocks[len(blocks)-1]
			if a.sum/a.n <= b.sum/b.n {
				break
			}
			blocks = blocks[:len(blocks)-2]
			blocks = append(blocks, block{
				sum: a.sum + b.sum, n: a.n + b.n,
				minS: a.minS, maxS: b.maxS,
			})
		}
	}
	c := &Calibrator{}
	for _, b := range blocks {
		c.scores = append(c.scores, b.maxS)
		c.probs = append(c.probs, b.sum/b.n)
	}
	return c, nil
}

// Prob returns the calibrated match probability for a raw score. Scores
// below the first breakpoint get the first block's probability; above the
// last, the last's.
func (c *Calibrator) Prob(score float64) float64 {
	if len(c.scores) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.scores, score)
	if i >= len(c.probs) {
		i = len(c.probs) - 1
	}
	return c.probs[i]
}

// Levels returns the number of distinct probability levels (fitted blocks).
func (c *Calibrator) Levels() int { return len(c.probs) }

// CalibrationError computes the expected calibration error (ECE) of a
// score→probability function against labeled data, using equal-width bins
// over predicted probability. Lower is better; experiment E1 reports it.
func CalibrationError(predict func(float64) float64, scores []float64, matched []bool, bins int) float64 {
	if bins <= 0 {
		bins = 10
	}
	type bin struct {
		sumP, sumY, n float64
	}
	bs := make([]bin, bins)
	for i, s := range scores {
		p := predict(s)
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		idx := int(p * float64(bins))
		if idx == bins {
			idx = bins - 1
		}
		bs[idx].sumP += p
		if matched[i] {
			bs[idx].sumY++
		}
		bs[idx].n++
	}
	var ece float64
	total := float64(len(scores))
	if total == 0 {
		return 0
	}
	for _, b := range bs {
		if b.n == 0 {
			continue
		}
		gap := b.sumP/b.n - b.sumY/b.n
		if gap < 0 {
			gap = -gap
		}
		ece += (b.n / total) * gap
	}
	return ece
}
