package uncertainty

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFitCalibratorMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var scores []float64
	var labels []bool
	for i := 0; i < 2000; i++ {
		s := r.Float64()
		scores = append(scores, s)
		labels = append(labels, r.Float64() < s*s) // true prob = s^2
	}
	c, err := FitCalibrator(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	// Fitted probabilities must be non-decreasing in score.
	prev := -1.0
	for _, s := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1} {
		p := c.Prob(s)
		if p < prev-1e-12 {
			t.Fatalf("calibrated prob decreasing at %v: %v < %v", s, p, prev)
		}
		prev = p
	}
	// Calibration should be decent: prob(0.9) near 0.81, prob(0.3) near 0.09.
	if p := c.Prob(0.9); math.Abs(p-0.81) > 0.12 {
		t.Fatalf("prob(0.9) = %v, want ~0.81", p)
	}
	if p := c.Prob(0.3); math.Abs(p-0.09) > 0.1 {
		t.Fatalf("prob(0.3) = %v, want ~0.09", p)
	}
}

func TestFitCalibratorErrors(t *testing.T) {
	if _, err := FitCalibrator(nil, nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v", err)
	}
	if _, err := FitCalibrator([]float64{1}, []bool{true, false}); !errors.Is(err, ErrNoData) {
		t.Fatalf("mismatched lengths err = %v", err)
	}
}

func TestCalibratorMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		scores := make([]float64, len(raw))
		labels := make([]bool, len(raw))
		for i, v := range raw {
			scores[i] = float64(v%100) / 100
			labels[i] = v%3 == 0
		}
		c, err := FitCalibrator(scores, labels)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), scores...)
		sort.Float64s(sorted)
		prev := -1.0
		for _, s := range sorted {
			p := c.Prob(s)
			if p < prev-1e-12 || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrationErrorDiscriminates(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var scores []float64
	var labels []bool
	for i := 0; i < 3000; i++ {
		s := r.Float64()
		scores = append(scores, s)
		labels = append(labels, r.Float64() < s*s)
	}
	c, err := FitCalibrator(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	eceCal := CalibrationError(c.Prob, scores, labels, 10)
	eceRaw := CalibrationError(func(s float64) float64 { return s }, scores, labels, 10)
	if eceCal >= eceRaw {
		t.Fatalf("calibration didn't help: cal=%v raw=%v", eceCal, eceRaw)
	}
	if eceCal > 0.08 {
		t.Fatalf("calibrated ECE too high: %v", eceCal)
	}
}

func TestCalibrationErrorEmpty(t *testing.T) {
	if e := CalibrationError(func(float64) float64 { return 0.5 }, nil, nil, 10); e != 0 {
		t.Fatalf("empty ECE = %v", e)
	}
}

func TestBetaBeliefConvergence(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	hidden := 0.73
	b := NewBelief()
	for i := 0; i < 3000; i++ {
		b = b.Observe(r.Float64() < hidden)
	}
	if math.Abs(b.Mean()-hidden) > 0.03 {
		t.Fatalf("belief mean %v, hidden %v", b.Mean(), hidden)
	}
	if b.Variance() > 0.001 {
		t.Fatalf("variance should shrink: %v", b.Variance())
	}
	lo, hi := b.Interval(1.96)
	if lo > hidden || hi < hidden {
		t.Fatalf("95%% interval [%v,%v] misses %v", lo, hi, hidden)
	}
}

func TestBeliefWeightedAndDecay(t *testing.T) {
	b := NewBelief().ObserveWeighted(0.7)
	if math.Abs(b.Alpha-1.7) > 1e-12 || math.Abs(b.Beta-1.3) > 1e-12 {
		t.Fatalf("weighted update: %+v", b)
	}
	// Decay pulls toward the prior but preserves the mean direction.
	strong := BetaBelief{Alpha: 100, Beta: 10}
	d := strong.Decay(0.5)
	if d.Strength() >= strong.Strength() {
		t.Fatal("decay should reduce evidence")
	}
	if d.Mean() < 0.5 {
		t.Fatal("decay should not flip the mean")
	}
	same := strong.Decay(1)
	if same != strong {
		t.Fatal("decay(1) should be identity")
	}
}

func TestPriorBelief(t *testing.T) {
	b := PriorBelief(0.9, 10)
	if math.Abs(b.Mean()-((1+9.0)/(12.0))) > 1e-9 {
		t.Fatalf("prior mean = %v", b.Mean())
	}
	// Clamps.
	if PriorBelief(-1, 10).Mean() > PriorBelief(1, 10).Mean() {
		t.Fatal("clamped priors ordered wrong")
	}
}

func TestBeliefSampleInRange(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	b := BetaBelief{Alpha: 3, Beta: 7}
	for i := 0; i < 200; i++ {
		x := b.Sample(r)
		if x < 0 || x > 1 {
			t.Fatalf("sample out of range: %v", x)
		}
	}
}

func TestIntervalArithmetic(t *testing.T) {
	a := MakeInterval(3, 1) // reordered
	if a.Lo != 1 || a.Hi != 3 {
		t.Fatalf("MakeInterval = %+v", a)
	}
	b := Point(2)
	sum := a.Add(b)
	if sum.Lo != 3 || sum.Hi != 5 {
		t.Fatalf("add = %+v", sum)
	}
	sc := a.Scale(2)
	if sc.Lo != 2 || sc.Hi != 6 {
		t.Fatalf("scale = %+v", sc)
	}
	neg := a.Scale(-1)
	if neg.Lo != -3 || neg.Hi != -1 {
		t.Fatalf("negative scale = %+v", neg)
	}
	u := a.Union(Interval{0, 1.5})
	if u.Lo != 0 || u.Hi != 3 {
		t.Fatalf("union = %+v", u)
	}
	if !a.Contains(2) || a.Contains(5) {
		t.Fatal("contains wrong")
	}
	if a.Mid() != 2 || a.Width() != 2 {
		t.Fatal("mid/width wrong")
	}
}

func TestRiskAttitudes(t *testing.T) {
	// A fair coin for 10 or 0 vs a sure 5.
	lottery := []Outcome{{Value: 10, Prob: 0.5}, {Value: 0, Prob: 0.5}}
	sure := []Outcome{{Value: 5, Prob: 1}}
	if Neutral().PreferLottery(lottery, sure) || Neutral().PreferLottery(sure, lottery) {
		t.Fatal("risk-neutral should be indifferent")
	}
	if !Averse(0.5).PreferLottery(sure, lottery) {
		t.Fatal("risk-averse should prefer the sure thing")
	}
	if !Seeking(0.5).PreferLottery(lottery, sure) {
		t.Fatal("risk-seeking should prefer the lottery")
	}
}

func TestCertaintyEquivalent(t *testing.T) {
	ra := Averse(0.4)
	ceLow := ra.CertaintyEquivalent(10, 1)
	ceHigh := ra.CertaintyEquivalent(10, 25)
	if ceHigh >= ceLow {
		t.Fatal("more variance should lower CE for the averse")
	}
	if Neutral().CertaintyEquivalent(10, 100) != 10 {
		t.Fatal("neutral CE should be the mean")
	}
	if Seeking(0.4).CertaintyEquivalent(10, 25) <= 10 {
		t.Fatal("seeking CE should exceed the mean")
	}
}

func TestLossAversion(t *testing.T) {
	ra := RiskAttitude{A: 0, LossAversion: 2}
	if ra.Utility(-5) != -10 {
		t.Fatalf("loss utility = %v", ra.Utility(-5))
	}
	if ra.Utility(5) != 5 {
		t.Fatalf("gain utility = %v", ra.Utility(5))
	}
}

func TestExpectedUtilityImplicitZero(t *testing.T) {
	// 30% chance of 10, rest implicit 0.
	eu := Neutral().ExpectedUtility([]Outcome{{Value: 10, Prob: 0.3}})
	if math.Abs(eu-3) > 1e-12 {
		t.Fatalf("eu = %v", eu)
	}
}
