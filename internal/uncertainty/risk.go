package uncertainty

import "math"

// Risk attitudes. The paper: uncertainty at the user level is "in direct
// relation to risk, which is rather difficult to model, as different
// attitudes towards risk make people behave very differently under
// uncertainty" (citing Machina's survey of choice under uncertainty). We use
// the standard CARA (constant absolute risk aversion) family: utility
// u(x) = (1 - e^{-a x}) / a for a != 0, u(x) = x for a = 0. Positive a is
// risk-averse, negative risk-seeking.

// RiskAttitude is the CARA coefficient plus a loss-aversion multiplier in
// the prospect-theory spirit (losses weighed lambda times gains).
type RiskAttitude struct {
	// A is the CARA coefficient. 0 = risk-neutral, >0 averse, <0 seeking.
	A float64
	// LossAversion scales negative outcomes; 1 disables. Typical human
	// estimates sit near 2.25.
	LossAversion float64
}

// Neutral returns a risk-neutral attitude.
func Neutral() RiskAttitude { return RiskAttitude{A: 0, LossAversion: 1} }

// Averse returns a risk-averse attitude with the given coefficient.
func Averse(a float64) RiskAttitude { return RiskAttitude{A: math.Abs(a), LossAversion: 1} }

// Seeking returns a risk-seeking attitude with the given coefficient.
func Seeking(a float64) RiskAttitude { return RiskAttitude{A: -math.Abs(a), LossAversion: 1} }

// Utility maps a monetary-like outcome to utility under the attitude.
func (ra RiskAttitude) Utility(x float64) float64 {
	if ra.LossAversion > 1 && x < 0 {
		x *= ra.LossAversion
	}
	if ra.A == 0 {
		return x
	}
	return (1 - math.Exp(-ra.A*x)) / ra.A
}

// Outcome is a probabilistic result (value with probability).
type Outcome struct {
	Value float64
	Prob  float64
}

// ExpectedUtility evaluates a lottery. Probabilities need not sum to 1
// (missing mass is an implicit zero-value outcome).
func (ra RiskAttitude) ExpectedUtility(lottery []Outcome) float64 {
	var eu, mass float64
	for _, o := range lottery {
		eu += o.Prob * ra.Utility(o.Value)
		mass += o.Prob
	}
	if rest := 1 - mass; rest > 0 {
		eu += rest * ra.Utility(0)
	}
	return eu
}

// CertaintyEquivalent inverts the CARA utility of a normal-approximated
// payoff with the given mean and variance: CE = mu - a*sigma^2/2. This is
// the closed form the optimizer uses to price uncertain plans per user: a
// risk-averse Iris pays a premium for low-variance plans.
func (ra RiskAttitude) CertaintyEquivalent(mean, variance float64) float64 {
	return mean - ra.A*variance/2
}

// PreferLottery reports whether the attitude prefers lottery a to b.
func (ra RiskAttitude) PreferLottery(a, b []Outcome) bool {
	return ra.ExpectedUtility(a) > ra.ExpectedUtility(b)
}
