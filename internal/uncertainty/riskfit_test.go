package uncertainty

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// synthChoices simulates a user with hidden attitude making noisy choices
// between random safe/risky lottery pairs.
func synthChoices(r *rand.Rand, hidden RiskAttitude, n int, tau float64) []LotteryChoice {
	var out []LotteryChoice
	for i := 0; i < n; i++ {
		safeVal := 2 + 4*r.Float64()
		riskyHi := safeVal*1.5 + 3*r.Float64()
		p := 0.3 + 0.4*r.Float64()
		safe := []Outcome{{Value: safeVal, Prob: 1}}
		risky := []Outcome{{Value: riskyHi, Prob: p}, {Value: 0, Prob: 1 - p}}
		c := LotteryChoice{Options: [2][]Outcome{safe, risky}}
		u0 := hidden.ExpectedUtility(safe)
		u1 := hidden.ExpectedUtility(risky)
		p1 := 1 / (1 + math.Exp(-(u1-u0)/tau))
		if r.Float64() < p1 {
			c.Chose = 1
		}
		out = append(out, c)
	}
	return out
}

func TestFitRecoversHiddenAttitude(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, hidden := range []RiskAttitude{
		Averse(0.8), Neutral(), Seeking(0.5),
	} {
		choices := synthChoices(r, hidden, 400, 0.3)
		got, err := FitRiskAttitude(choices, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.A-hidden.A) > 0.3 {
			t.Fatalf("hidden A=%v recovered as %v", hidden.A, got.A)
		}
	}
}

func TestFitSeparatesAttitudes(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	averse := synthChoices(r, Averse(1.0), 200, 0.3)
	seeking := synthChoices(r, Seeking(1.0), 200, 0.3)
	fa, err := FitRiskAttitude(averse, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := FitRiskAttitude(seeking, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if fa.A <= 0 {
		t.Fatalf("averse user fitted as A=%v", fa.A)
	}
	if fs.A >= 0 {
		t.Fatalf("seeking user fitted as A=%v", fs.A)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitRiskAttitude(nil, 1); !errors.Is(err, ErrNoChoices) {
		t.Fatalf("err = %v", err)
	}
}

func TestRiskProfilerOnline(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	hidden := Averse(0.7)
	rp := NewRiskProfiler(0.3)
	if _, err := rp.Fit(); err == nil {
		t.Fatal("empty profiler should not fit")
	}
	// Accuracy improves with observations.
	var errAt50, errAt500 float64
	for _, c := range synthChoices(r, hidden, 500, 0.3) {
		rp.Observe(c)
		if rp.N() == 50 {
			got, err := rp.Fit()
			if err != nil {
				t.Fatal(err)
			}
			errAt50 = math.Abs(got.A - hidden.A)
		}
	}
	got, err := rp.Fit()
	if err != nil {
		t.Fatal(err)
	}
	errAt500 = math.Abs(got.A - hidden.A)
	if errAt500 > 0.25 {
		t.Fatalf("500-choice fit error = %v", errAt500)
	}
	// Not strictly monotone sample-by-sample, but 500 should not be much
	// worse than 50.
	if errAt500 > errAt50+0.2 {
		t.Fatalf("fit degraded with data: %v -> %v", errAt50, errAt500)
	}
}
