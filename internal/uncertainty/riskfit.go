package uncertainty

import (
	"errors"
	"math"
)

// Risk-profile estimation from observed choices — the paper's §5 closing
// research question: "optimizing queries according to different risk
// profiles of individuals, establishing those profiles through
// observations". Every time a user picks between two uncertain plans (a
// safe-but-modest one and a risky-but-rich one), the choice carries
// evidence about their CARA coefficient. FitRiskAttitude recovers it by
// maximum likelihood under a softmax (logit) choice model — the standard
// econometric treatment of noisy human choices.

// LotteryChoice is one observed decision between two lotteries; Chose is
// the index (0 or 1) the user picked.
type LotteryChoice struct {
	Options [2][]Outcome
	Chose   int
}

// ErrNoChoices is returned when fitting with no observations.
var ErrNoChoices = errors.New("uncertainty: no observed choices")

// FitRiskAttitude estimates the CARA coefficient from observed choices by
// grid-searched maximum likelihood under a softmax choice rule with
// temperature tau (larger tau = noisier chooser; 1 is a reasonable
// default). The search covers A in [-2, 2], which spans strongly
// risk-seeking to strongly risk-averse behaviour on unit-scale payoffs.
func FitRiskAttitude(choices []LotteryChoice, tau float64) (RiskAttitude, error) {
	if len(choices) == 0 {
		return RiskAttitude{}, ErrNoChoices
	}
	if tau <= 0 {
		tau = 1
	}
	best := RiskAttitude{LossAversion: 1}
	bestLL := math.Inf(-1)
	// Coarse-to-fine grid: 0.05 resolution over [-2, 2].
	for a := -2.0; a <= 2.0+1e-9; a += 0.05 {
		ra := RiskAttitude{A: a, LossAversion: 1}
		ll := logLikelihood(ra, choices, tau)
		if ll > bestLL {
			bestLL = ll
			best = ra
		}
	}
	// Refine around the winner.
	center := best.A
	for a := center - 0.05; a <= center+0.05+1e-9; a += 0.005 {
		ra := RiskAttitude{A: a, LossAversion: 1}
		if ll := logLikelihood(ra, choices, tau); ll > bestLL {
			bestLL = ll
			best = ra
		}
	}
	return best, nil
}

func logLikelihood(ra RiskAttitude, choices []LotteryChoice, tau float64) float64 {
	var ll float64
	for _, c := range choices {
		u0 := ra.ExpectedUtility(c.Options[0])
		u1 := ra.ExpectedUtility(c.Options[1])
		// Softmax probability of the observed choice.
		var pChosen float64
		d := (u1 - u0) / tau
		// Numerically stable logistic.
		p1 := 1 / (1 + math.Exp(-d))
		if c.Chose == 1 {
			pChosen = p1
		} else {
			pChosen = 1 - p1
		}
		if pChosen < 1e-12 {
			pChosen = 1e-12
		}
		ll += math.Log(pChosen)
	}
	return ll
}

// RiskProfiler accumulates choices online and re-fits on demand — the
// session-side profiling loop (observe → fit → use in the optimizer).
type RiskProfiler struct {
	choices []LotteryChoice
	tau     float64
}

// NewRiskProfiler returns a profiler with the given choice-noise
// temperature (<=0 picks 1).
func NewRiskProfiler(tau float64) *RiskProfiler {
	if tau <= 0 {
		tau = 1
	}
	return &RiskProfiler{tau: tau}
}

// Observe records one decision.
func (rp *RiskProfiler) Observe(c LotteryChoice) { rp.choices = append(rp.choices, c) }

// N returns the number of observed choices.
func (rp *RiskProfiler) N() int { return len(rp.choices) }

// Fit returns the current maximum-likelihood attitude.
func (rp *RiskProfiler) Fit() (RiskAttitude, error) {
	return FitRiskAttitude(rp.choices, rp.tau)
}
