package uncertainty

import (
	"math"
	"math/rand"

	"repro/internal/sim"
)

// BetaBelief is a Beta(alpha, beta) posterior over a hidden success
// probability — the agora's belief about a source's quality (correctness,
// completeness, honesty) learned from repeated interactions. The paper notes
// that "responding sources may or may not be well-known and trusted"; these
// beliefs are how a node comes to know.
type BetaBelief struct {
	Alpha float64
	Beta  float64
}

// NewBelief returns the uninformative prior Beta(1, 1).
func NewBelief() BetaBelief { return BetaBelief{Alpha: 1, Beta: 1} }

// PriorBelief returns a Beta belief equivalent to `weight` pseudo-
// observations at probability p — how reputation carried from elsewhere is
// seeded.
func PriorBelief(p float64, weight float64) BetaBelief {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	if weight <= 0 {
		weight = 2
	}
	return BetaBelief{Alpha: 1 + p*weight, Beta: 1 + (1-p)*weight}
}

// Observe updates the posterior with one success/failure.
func (b BetaBelief) Observe(success bool) BetaBelief {
	if success {
		b.Alpha++
	} else {
		b.Beta++
	}
	return b
}

// ObserveWeighted updates with fractional evidence (e.g. "delivered 70% of
// promised completeness" counts as 0.7 success, 0.3 failure).
func (b BetaBelief) ObserveWeighted(success float64) BetaBelief {
	if success < 0 {
		success = 0
	}
	if success > 1 {
		success = 1
	}
	b.Alpha += success
	b.Beta += 1 - success
	return b
}

// Decay discounts old evidence toward the prior by factor g in (0,1]; g=1 is
// no decay. Reputation systems use this so sources cannot coast forever on
// ancient good behavior.
func (b BetaBelief) Decay(g float64) BetaBelief {
	if g >= 1 {
		return b
	}
	if g < 0 {
		g = 0
	}
	return BetaBelief{Alpha: 1 + (b.Alpha-1)*g, Beta: 1 + (b.Beta-1)*g}
}

// Mean returns the posterior mean.
func (b BetaBelief) Mean() float64 { return b.Alpha / (b.Alpha + b.Beta) }

// Variance returns the posterior variance.
func (b BetaBelief) Variance() float64 {
	s := b.Alpha + b.Beta
	return b.Alpha * b.Beta / (s * s * (s + 1))
}

// Strength returns the evidence weight (alpha+beta-2, the number of
// observations absorbed beyond the prior).
func (b BetaBelief) Strength() float64 { return b.Alpha + b.Beta - 2 }

// Sample draws from the posterior (for Thompson-sampling source selection).
func (b BetaBelief) Sample(r *rand.Rand) float64 {
	return sim.Beta(r, b.Alpha, b.Beta)
}

// Interval returns an approximate central credible interval using the
// normal approximation clipped to [0,1]; z=1.96 gives ~95%.
func (b BetaBelief) Interval(z float64) (lo, hi float64) {
	m := b.Mean()
	sd := math.Sqrt(b.Variance())
	lo, hi = m-z*sd, m+z*sd
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Interval is a closed real interval used for uncertain cost and cardinality
// estimates in the optimizer: "this subquery will cost between Lo and Hi".
type Interval struct {
	Lo, Hi float64
}

// Point returns a degenerate interval.
func Point(x float64) Interval { return Interval{x, x} }

// MakeInterval orders its endpoints.
func MakeInterval(a, b float64) Interval {
	if a > b {
		a, b = b, a
	}
	return Interval{a, b}
}

// Mid returns the midpoint.
func (iv Interval) Mid() float64 { return (iv.Lo + iv.Hi) / 2 }

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Add returns the interval sum.
func (iv Interval) Add(o Interval) Interval { return Interval{iv.Lo + o.Lo, iv.Hi + o.Hi} }

// Scale multiplies both endpoints by a non-negative factor.
func (iv Interval) Scale(a float64) Interval {
	if a < 0 {
		return Interval{iv.Hi * a, iv.Lo * a}
	}
	return Interval{iv.Lo * a, iv.Hi * a}
}

// Union returns the smallest interval containing both.
func (iv Interval) Union(o Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo < lo {
		lo = o.Lo
	}
	if o.Hi > hi {
		hi = o.Hi
	}
	return Interval{lo, hi}
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }
