// Package profile implements the user models the paper's Personalization
// section calls for: profiles capturing interests, quality perceptions,
// source trust, QoS trade-off preferences, risk attitude, and negotiation
// style; profiling techniques that learn them from observed interaction;
// merging of per-source partial profiles into one cohesive profile; and a
// profile store with retrieval of relevant parts.
package profile

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/feature"
	"repro/internal/qos"
	"repro/internal/uncertainty"
)

// Profile is one user's model. Every aspect of agora interaction reads some
// part of it: query interpretation (Interests, TermAffinity), source
// selection (SourceTrust), optimization (Weights, Risk), negotiation
// (Style), and interaction (Modality).
type Profile struct {
	UserID string
	// Interests is the user's position in concept space, learned from the
	// objects they engage with.
	Interests feature.Vector
	// TermAffinity scores vocabulary terms the user has shown (dis)interest
	// in; positive = attraction, negative = aversion.
	TermAffinity map[string]float64
	// SourceTrust holds per-source quality beliefs.
	SourceTrust map[string]uncertainty.BetaBelief
	// Weights are the user's QoS trade-off preferences.
	Weights qos.Weights
	// Risk is the user's attitude toward uncertain outcomes.
	Risk uncertainty.RiskAttitude
	// Style names the user's negotiation tactic family ("boulware",
	// "linear", "conceder", "tit-for-tat") with an aggressiveness knob.
	Style NegotiationStyle
	// Modality records preferred interaction modes as relative frequencies.
	Modality ModalityPrefs
	// Variants are context-conditioned overrides keyed by context label;
	// the ctxmodel package decides which (if any) is active.
	Variants map[string]*Variant
	// Evidence counts the interactions absorbed (merge weighting).
	Evidence float64
}

// NegotiationStyle captures how a user bargains.
type NegotiationStyle struct {
	Tactic         string
	Aggressiveness float64 // 0 = meek, 1 = maximally stubborn
}

// ModalityPrefs are relative frequencies of interaction modes.
type ModalityPrefs struct {
	Query  float64
	Browse float64
	Feed   float64
}

// Variant is a context-conditioned partial override of the profile: nil
// fields inherit from the base profile.
type Variant struct {
	Label     string
	Interests feature.Vector
	Weights   *qos.Weights
}

// New returns an empty profile for a user with balanced defaults.
func New(userID string, conceptDim int) *Profile {
	return &Profile{
		UserID:       userID,
		Interests:    make(feature.Vector, conceptDim),
		TermAffinity: make(map[string]float64),
		SourceTrust:  make(map[string]uncertainty.BetaBelief),
		Weights:      qos.DefaultWeights(),
		Risk:         uncertainty.Neutral(),
		Modality:     ModalityPrefs{Query: 1, Browse: 1, Feed: 1},
		Variants:     make(map[string]*Variant),
	}
}

// Clone deep-copies the profile.
func (p *Profile) Clone() *Profile {
	cp := *p
	cp.Interests = p.Interests.Clone()
	cp.TermAffinity = make(map[string]float64, len(p.TermAffinity))
	for k, v := range p.TermAffinity {
		cp.TermAffinity[k] = v
	}
	cp.SourceTrust = make(map[string]uncertainty.BetaBelief, len(p.SourceTrust))
	for k, v := range p.SourceTrust {
		cp.SourceTrust[k] = v
	}
	cp.Variants = make(map[string]*Variant, len(p.Variants))
	for k, v := range p.Variants {
		vv := *v
		vv.Interests = v.Interests.Clone()
		if v.Weights != nil {
			w := *v.Weights
			vv.Weights = &w
		}
		cp.Variants[k] = &vv
	}
	return &cp
}

// ActiveView returns the effective (interests, weights) under a context
// label; an unknown or empty label yields the base profile.
func (p *Profile) ActiveView(contextLabel string) (feature.Vector, qos.Weights) {
	v, ok := p.Variants[contextLabel]
	if !ok || v == nil {
		return p.Interests, p.Weights
	}
	interests := p.Interests
	if len(v.Interests) > 0 {
		interests = v.Interests
	}
	weights := p.Weights
	if v.Weights != nil {
		weights = *v.Weights
	}
	return interests, weights
}

// Trust returns the posterior-mean trust for a source (0.5 unknown).
func (p *Profile) Trust(source string) float64 {
	if b, ok := p.SourceTrust[source]; ok {
		return b.Mean()
	}
	return 0.5
}

// PersonalScore combines a base relevance score with the profile's interest
// match: (1-gamma)*base + gamma*interest-cosine, both in [0,1]. gamma is the
// personalization strength experiment E6 sweeps.
func (p *Profile) PersonalScore(base float64, docConcept feature.Vector, gamma float64) float64 {
	if gamma <= 0 {
		return base
	}
	if gamma > 1 {
		gamma = 1
	}
	interest := feature.Cosine(p.Interests, docConcept)
	if interest < 0 {
		interest = 0
	}
	return (1-gamma)*base + gamma*interest
}

// TermBoost returns a multiplicative boost derived from the user's term
// affinities over the document's tokens, in [0.5, 1.5].
func (p *Profile) TermBoost(tokens []string) float64 {
	if len(tokens) == 0 || len(p.TermAffinity) == 0 {
		return 1
	}
	var sum float64
	var n int
	for _, t := range tokens {
		if a, ok := p.TermAffinity[t]; ok {
			sum += a
			n++
		}
	}
	if n == 0 {
		return 1
	}
	avg := sum / float64(n)
	// Squash into [-0.5, 0.5] then shift.
	return 1 + 0.5*math.Tanh(avg)
}

// TopTerms returns the k terms with the highest affinity.
func (p *Profile) TopTerms(k int) []string {
	type ta struct {
		t string
		a float64
	}
	all := make([]ta, 0, len(p.TermAffinity))
	for t, a := range p.TermAffinity {
		all = append(all, ta{t, a})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].a != all[j].a {
			return all[i].a > all[j].a
		}
		return all[i].t < all[j].t
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].t
	}
	return out
}

// Similarity measures profile closeness in [0,1]: cosine of interests
// blended with term-affinity agreement. Socialization uses it for affinity.
func Similarity(a, b *Profile) float64 {
	ci := feature.Cosine(a.Interests, b.Interests)
	if ci < 0 {
		ci = 0
	}
	// Term agreement over the union of strongly-held terms.
	var agree, total float64
	for t, av := range a.TermAffinity {
		bv, ok := b.TermAffinity[t]
		if !ok {
			continue
		}
		total++
		if (av > 0) == (bv > 0) {
			agree++
		}
	}
	if total == 0 {
		return ci
	}
	return 0.7*ci + 0.3*(agree/total)
}

// String summarizes the profile.
func (p *Profile) String() string {
	return fmt.Sprintf("profile(%s, evidence=%.0f, terms=%d, sources=%d, variants=%d)",
		p.UserID, p.Evidence, len(p.TermAffinity), len(p.SourceTrust), len(p.Variants))
}
