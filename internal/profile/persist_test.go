package profile

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/feature"
	"repro/internal/uncertainty"
)

func populatedStore() *Store {
	s := NewStore()
	for i, uid := range []string{"iris", "jason", "zoe"} {
		p := New(uid, 8)
		p.Interests = concept(8, i)
		p.TermAffinity["gold"] = float64(i) + 0.5
		p.SourceTrust["museum"] = uncertainty.BetaBelief{Alpha: float64(i + 2), Beta: 1}
		p.Evidence = float64(10 * (i + 1))
		s.Put(p)
	}
	return s
}

func TestSaveLoadRoundtrip(t *testing.T) {
	s := populatedStore()
	var buf bytes.Buffer
	if err := s.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.LoadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Users(), s2.Users()) {
		t.Fatalf("users: %v vs %v", s.Users(), s2.Users())
	}
	for _, uid := range s.Users() {
		a, b := s.Get(uid), s2.Get(uid)
		if a.Evidence != b.Evidence || !reflect.DeepEqual(a.TermAffinity, b.TermAffinity) {
			t.Fatalf("%s mismatch", uid)
		}
		if feature.Cosine(a.Interests, b.Interests) < 0.999 {
			t.Fatalf("%s interests mismatch", uid)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profiles.agora")
	s := populatedStore()
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Fatalf("loaded %d profiles", s2.Len())
	}
	// Missing file is a clean fresh start.
	s3 := NewStore()
	if err := s3.LoadFile(filepath.Join(t.TempDir(), "absent")); err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 0 {
		t.Fatal("phantom profiles")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profiles.agora")
	s := populatedStore()
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.LoadFile(path); err == nil {
		t.Fatal("corrupt file loaded silently")
	}
}

func TestSaveFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profiles.agora")
	s := populatedStore()
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp residue.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory entries: %d", len(entries))
	}
}
