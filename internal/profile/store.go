package profile

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/feature"
	"repro/internal/qos"
	"repro/internal/uncertainty"
	"repro/internal/wire"
)

// Store holds profiles with lookup by user and similarity search across
// users (the substrate socialization builds affinity on). Storage and
// indexing of profiles is one of the §5 technical problems.
type Store struct {
	mu       sync.RWMutex
	profiles map[string]*Profile
}

// NewStore returns an empty profile store.
func NewStore() *Store {
	return &Store{profiles: make(map[string]*Profile)}
}

// Put stores a copy of the profile.
func (s *Store) Put(p *Profile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.profiles[p.UserID] = p.Clone()
}

// Get returns a copy of a user's profile, or nil if absent.
func (s *Store) Get(userID string) *Profile {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if p, ok := s.profiles[userID]; ok {
		return p.Clone()
	}
	return nil
}

// Len returns the number of stored profiles.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.profiles)
}

// Users returns all user ids, sorted.
func (s *Store) Users() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.profiles))
	for u := range s.profiles {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// SimilarUser is a scored profile-similarity hit.
type SimilarUser struct {
	UserID string
	Score  float64
}

// MostSimilar returns up to k users most similar to p (excluding p's own
// user id), sorted descending.
func (s *Store) MostSimilar(p *Profile, k int) []SimilarUser {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SimilarUser, 0, len(s.profiles))
	for id, q := range s.profiles {
		if id == p.UserID {
			continue
		}
		out = append(out, SimilarUser{UserID: id, Score: Similarity(p, q)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].UserID < out[j].UserID
	})
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Marshal serializes a profile with the wire codec.
func Marshal(p *Profile) []byte {
	w := wire.NewWriter(256)
	w.String(p.UserID)
	w.F64s(p.Interests)
	// Term affinities, sorted for determinism.
	terms := make([]string, 0, len(p.TermAffinity))
	for t := range p.TermAffinity {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	w.Uvarint(uint64(len(terms)))
	for _, t := range terms {
		w.String(t)
		w.F64(p.TermAffinity[t])
	}
	// Source trust.
	srcs := make([]string, 0, len(p.SourceTrust))
	for s := range p.SourceTrust {
		srcs = append(srcs, s)
	}
	sort.Strings(srcs)
	w.Uvarint(uint64(len(srcs)))
	for _, s := range srcs {
		b := p.SourceTrust[s]
		w.String(s)
		w.F64(b.Alpha)
		w.F64(b.Beta)
	}
	w.F64(p.Weights.Latency)
	w.F64(p.Weights.Completeness)
	w.F64(p.Weights.Freshness)
	w.F64(p.Weights.Trust)
	w.F64(p.Weights.Price)
	w.F64(p.Risk.A)
	w.F64(p.Risk.LossAversion)
	w.String(p.Style.Tactic)
	w.F64(p.Style.Aggressiveness)
	w.F64(p.Modality.Query)
	w.F64(p.Modality.Browse)
	w.F64(p.Modality.Feed)
	w.F64(p.Evidence)
	// Variants.
	vlabels := make([]string, 0, len(p.Variants))
	for l := range p.Variants {
		vlabels = append(vlabels, l)
	}
	sort.Strings(vlabels)
	w.Uvarint(uint64(len(vlabels)))
	for _, l := range vlabels {
		v := p.Variants[l]
		w.String(l)
		w.String(v.Label)
		w.F64s(v.Interests)
		w.Bool(v.Weights != nil)
		if v.Weights != nil {
			w.F64(v.Weights.Latency)
			w.F64(v.Weights.Completeness)
			w.F64(v.Weights.Freshness)
			w.F64(v.Weights.Trust)
			w.F64(v.Weights.Price)
		}
	}
	return w.Bytes()
}

// Unmarshal decodes a profile serialized by Marshal.
func Unmarshal(b []byte) (*Profile, error) {
	r := wire.NewReader(b)
	p := &Profile{
		UserID:       r.String(),
		Interests:    feature.Vector(r.F64s()),
		TermAffinity: make(map[string]float64),
		SourceTrust:  make(map[string]uncertainty.BetaBelief),
		Variants:     make(map[string]*Variant),
	}
	nt := r.Uvarint()
	for i := uint64(0); i < nt && r.Err() == nil; i++ {
		t := r.String()
		p.TermAffinity[t] = r.F64()
	}
	ns := r.Uvarint()
	for i := uint64(0); i < ns && r.Err() == nil; i++ {
		s := r.String()
		p.SourceTrust[s] = uncertainty.BetaBelief{Alpha: r.F64(), Beta: r.F64()}
	}
	p.Weights.Latency = r.F64()
	p.Weights.Completeness = r.F64()
	p.Weights.Freshness = r.F64()
	p.Weights.Trust = r.F64()
	p.Weights.Price = r.F64()
	p.Risk.A = r.F64()
	p.Risk.LossAversion = r.F64()
	p.Style.Tactic = r.String()
	p.Style.Aggressiveness = r.F64()
	p.Modality.Query = r.F64()
	p.Modality.Browse = r.F64()
	p.Modality.Feed = r.F64()
	p.Evidence = r.F64()
	nv := r.Uvarint()
	for i := uint64(0); i < nv && r.Err() == nil; i++ {
		key := r.String()
		v := &Variant{Label: r.String(), Interests: feature.Vector(r.F64s())}
		if r.Bool() {
			w := qos.Weights{
				Latency:      r.F64(),
				Completeness: r.F64(),
				Freshness:    r.F64(),
				Trust:        r.F64(),
				Price:        r.F64(),
			}
			v.Weights = &w
		}
		p.Variants[key] = v
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("profile: decoding: %w", err)
	}
	if p.Interests == nil {
		p.Interests = feature.Vector{}
	}
	return p, nil
}
