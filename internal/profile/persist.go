package profile

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/wire"
)

// Persistence for profile stores. Profiles are written as CRC-framed wire
// records (one frame per profile), so a store survives process restarts —
// "storage and indexing of profiles ... are technical problems that require
// solutions also" (§5).

// SaveTo writes every profile to w, one frame each.
func (s *Store) SaveTo(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, uid := range s.Users() {
		p := s.Get(uid)
		if p == nil {
			continue
		}
		if err := wire.WriteFrame(bw, wire.KindProfilePart, Marshal(p)); err != nil {
			return fmt.Errorf("profile: saving %s: %w", uid, err)
		}
	}
	return bw.Flush()
}

// LoadFrom reads frames written by SaveTo into the store (merging over any
// existing contents by user id).
func (s *Store) LoadFrom(r io.Reader) error {
	br := bufio.NewReader(r)
	for {
		f, err := wire.ReadFrame(br)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("profile: loading: %w", err)
		}
		if f.Kind != wire.KindProfilePart {
			return fmt.Errorf("profile: unexpected frame %v", f.Kind)
		}
		p, err := Unmarshal(f.Payload)
		if err != nil {
			return err
		}
		s.Put(p)
	}
}

// SaveFile writes the store to path atomically (temp file + rename).
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("profile: creating %s: %w", tmp, err)
	}
	if err := s.SaveTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("profile: syncing: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("profile: installing %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a store saved with SaveFile. A missing file is not an
// error (fresh start).
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("profile: opening %s: %w", path, err)
	}
	defer f.Close()
	return s.LoadFrom(f)
}
