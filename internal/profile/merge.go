package profile

import (
	"errors"
	"math"
	"sort"

	"repro/internal/feature"
	"repro/internal/uncertainty"
)

// Profile merging. The paper (§5): "generating a single, cohesive profile
// from local ones collected for the same user at multiple information
// sources presents the usual difficulties of data integration as well as
// some specific ones ... e.g., dealing with inconsistent behavior at
// different sources with respect to likes and dislikes."
//
// Merge combines per-source partial profiles of one user: interest vectors
// are evidence-weighted averages; source-trust beliefs are pooled; term
// affinities are combined with explicit conflict handling.

// ConflictPolicy selects how contradictory term affinities merge.
type ConflictPolicy int

// Conflict policies.
const (
	// ConflictEvidence resolves by evidence-weighted average (default).
	ConflictEvidence ConflictPolicy = iota
	// ConflictDrop removes terms the sources disagree on — a conservative
	// profile that asserts nothing contested.
	ConflictDrop
	// ConflictMajority keeps the sign the majority of sources support, at
	// the average magnitude of the winning side.
	ConflictMajority
)

// Conflict describes one detected disagreement.
type Conflict struct {
	Term    string
	Values  []float64
	Sources []string
}

// MergeResult is the merged profile plus an audit of conflicts found.
type MergeResult struct {
	Profile   *Profile
	Conflicts []Conflict
}

// ErrNothingToMerge is returned when no input profiles are given.
var ErrNothingToMerge = errors.New("profile: nothing to merge")

// conflictThreshold: a term is conflicted when some source says clearly
// positive and another clearly negative.
const conflictThreshold = 0.1

// Merge integrates partial profiles (labels name their origin, parallel to
// parts) under the policy. All parts must belong to the same user.
func Merge(parts []*Profile, labels []string, policy ConflictPolicy) (MergeResult, error) {
	if len(parts) == 0 {
		return MergeResult{}, ErrNothingToMerge
	}
	if len(labels) != len(parts) {
		labels = make([]string, len(parts))
		for i := range labels {
			labels[i] = "src" + string(rune('A'+i%26))
		}
	}
	dim := 0
	for _, p := range parts {
		if len(p.Interests) > dim {
			dim = len(p.Interests)
		}
	}
	merged := New(parts[0].UserID, dim)

	// Interests: evidence-weighted mean.
	var totalEvidence float64
	for _, p := range parts {
		w := p.Evidence
		if w <= 0 {
			w = 1
		}
		totalEvidence += w
		for i, v := range p.Interests {
			merged.Interests[i] += w * v
		}
	}
	if totalEvidence > 0 {
		merged.Interests.Scale(1 / totalEvidence)
	}
	merged.Evidence = totalEvidence

	// Source trust: pool evidence by summing pseudo-counts beyond priors.
	for _, p := range parts {
		for src, b := range p.SourceTrust {
			cur, ok := merged.SourceTrust[src]
			if !ok {
				cur = uncertainty.NewBelief()
			}
			cur.Alpha += b.Alpha - 1
			cur.Beta += b.Beta - 1
			merged.SourceTrust[src] = cur
		}
	}

	// Term affinities with conflict detection.
	type termObs struct {
		vals    []float64
		weights []float64
		srcs    []string
	}
	obs := make(map[string]*termObs)
	for i, p := range parts {
		w := p.Evidence
		if w <= 0 {
			w = 1
		}
		for t, a := range p.TermAffinity {
			o, ok := obs[t]
			if !ok {
				o = &termObs{}
				obs[t] = o
			}
			o.vals = append(o.vals, a)
			o.weights = append(o.weights, w)
			o.srcs = append(o.srcs, labels[i])
		}
	}
	var conflicts []Conflict
	terms := make([]string, 0, len(obs))
	for t := range obs {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, t := range terms {
		o := obs[t]
		pos, neg := false, false
		for _, v := range o.vals {
			if v > conflictThreshold {
				pos = true
			}
			if v < -conflictThreshold {
				neg = true
			}
		}
		conflicted := pos && neg
		if conflicted {
			conflicts = append(conflicts, Conflict{Term: t, Values: o.vals, Sources: o.srcs})
		}
		switch {
		case conflicted && policy == ConflictDrop:
			continue
		case conflicted && policy == ConflictMajority:
			var posN, negN int
			var posSum, negSum float64
			for _, v := range o.vals {
				if v > 0 {
					posN++
					posSum += v
				} else if v < 0 {
					negN++
					negSum += v
				}
			}
			switch {
			case posN > negN:
				merged.TermAffinity[t] = posSum / float64(posN)
			case negN > posN:
				merged.TermAffinity[t] = negSum / float64(negN)
			default:
				// Tie: fall back to evidence weighting.
				merged.TermAffinity[t] = weightedMean(o.vals, o.weights)
			}
		default:
			merged.TermAffinity[t] = weightedMean(o.vals, o.weights)
		}
	}

	// QoS weights and risk: evidence-weighted averages.
	var wl, wc, wf, wt, wp, ra float64
	for _, p := range parts {
		w := p.Evidence
		if w <= 0 {
			w = 1
		}
		wl += w * p.Weights.Latency
		wc += w * p.Weights.Completeness
		wf += w * p.Weights.Freshness
		wt += w * p.Weights.Trust
		wp += w * p.Weights.Price
		ra += w * p.Risk.A
	}
	if totalEvidence > 0 {
		merged.Weights.Latency = wl / totalEvidence
		merged.Weights.Completeness = wc / totalEvidence
		merged.Weights.Freshness = wf / totalEvidence
		merged.Weights.Trust = wt / totalEvidence
		merged.Weights.Price = wp / totalEvidence
		merged.Risk.A = ra / totalEvidence
		merged.Risk.LossAversion = 1
	}
	return MergeResult{Profile: merged, Conflicts: conflicts}, nil
}

func weightedMean(vals, weights []float64) float64 {
	var s, w float64
	for i, v := range vals {
		s += v * weights[i]
		w += weights[i]
	}
	if w == 0 {
		return 0
	}
	return s / w
}

// AffinityF1 compares a merged profile's term signs against ground truth
// likes/dislikes — the merge-quality metric for experiment E7.
func AffinityF1(p *Profile, likes, dislikes map[string]bool) float64 {
	tp, fp, fn := 0.0, 0.0, 0.0
	for t, a := range p.TermAffinity {
		if math.Abs(a) <= conflictThreshold {
			continue
		}
		if a > 0 {
			if likes[t] {
				tp++
			} else {
				fp++
			}
		} else {
			if dislikes[t] {
				tp++
			} else {
				fp++
			}
		}
	}
	for t := range likes {
		if a, ok := p.TermAffinity[t]; !ok || a <= conflictThreshold {
			fn++
		}
	}
	for t := range dislikes {
		if a, ok := p.TermAffinity[t]; !ok || a >= -conflictThreshold {
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	prec := tp / (tp + fp)
	rec := tp / (tp + fn)
	return 2 * prec * rec / (prec + rec)
}

// isVectorClose reports max-abs difference within eps (test helper exposed
// for reuse in integration checks).
func isVectorClose(a, b feature.Vector, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > eps {
			return false
		}
	}
	return true
}
