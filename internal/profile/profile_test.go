package profile

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/feature"
	"repro/internal/qos"
	"repro/internal/uncertainty"
)

func concept(dim, hot int) feature.Vector {
	v := make(feature.Vector, dim)
	v[hot] = 1
	return v
}

func TestLearnerMovesInterestsTowardEngagement(t *testing.T) {
	p := New("iris", 8)
	l := NewLearner()
	jewelry := concept(8, 2)
	for i := 0; i < 50; i++ {
		l.Observe(p, Event{Type: EventSave, Concept: jewelry, Terms: []string{"gold", "ring"}})
	}
	if feature.Cosine(p.Interests, jewelry) < 0.9 {
		t.Fatalf("interests cosine = %v", feature.Cosine(p.Interests, jewelry))
	}
	if p.TermAffinity["gold"] <= 0 {
		t.Fatalf("gold affinity = %v", p.TermAffinity["gold"])
	}
	if p.Evidence != 50 {
		t.Fatalf("evidence = %v", p.Evidence)
	}
}

func TestLearnerSkipsRepel(t *testing.T) {
	p := New("iris", 8)
	l := NewLearner()
	liked, disliked := concept(8, 1), concept(8, 5)
	for i := 0; i < 40; i++ {
		l.Observe(p, Event{Type: EventSave, Concept: liked, Terms: []string{"dance"}})
		l.Observe(p, Event{Type: EventSkip, Concept: disliked, Terms: []string{"spam"}})
	}
	if feature.Cosine(p.Interests, liked) <= feature.Cosine(p.Interests, disliked) {
		t.Fatal("liked concept should dominate")
	}
	if p.TermAffinity["spam"] >= 0 {
		t.Fatalf("spam affinity = %v", p.TermAffinity["spam"])
	}
}

func TestLearnerSourceTrust(t *testing.T) {
	p := New("iris", 4)
	l := NewLearner()
	for i := 0; i < 20; i++ {
		l.Observe(p, Event{Type: EventClick, Source: "museum", Satisfied: true})
		l.Observe(p, Event{Type: EventClick, Source: "spamhub", Satisfied: false})
	}
	if p.Trust("museum") < 0.8 || p.Trust("spamhub") > 0.2 {
		t.Fatalf("trusts: museum=%v spamhub=%v", p.Trust("museum"), p.Trust("spamhub"))
	}
	if p.Trust("unknown") != 0.5 {
		t.Fatalf("unknown trust = %v", p.Trust("unknown"))
	}
}

func TestPersonalScore(t *testing.T) {
	p := New("iris", 8)
	p.Interests = concept(8, 3)
	match, other := concept(8, 3), concept(8, 6)
	base := 0.5
	if p.PersonalScore(base, match, 0.5) <= p.PersonalScore(base, other, 0.5) {
		t.Fatal("interest match should boost")
	}
	if p.PersonalScore(base, match, 0) != base {
		t.Fatal("gamma=0 should be the base score")
	}
	if s := p.PersonalScore(base, match, 2); s < 0 || s > 1 {
		t.Fatalf("clamped gamma score = %v", s)
	}
}

func TestTermBoost(t *testing.T) {
	p := New("iris", 4)
	p.TermAffinity["gold"] = 2
	p.TermAffinity["spam"] = -2
	up := p.TermBoost([]string{"gold"})
	down := p.TermBoost([]string{"spam"})
	if up <= 1 || down >= 1 {
		t.Fatalf("boosts: up=%v down=%v", up, down)
	}
	if up > 1.5 || down < 0.5 {
		t.Fatalf("boost out of range: up=%v down=%v", up, down)
	}
	if p.TermBoost([]string{"unseen"}) != 1 || p.TermBoost(nil) != 1 {
		t.Fatal("neutral boost expected")
	}
}

func TestTopTerms(t *testing.T) {
	p := New("iris", 4)
	p.TermAffinity["a"] = 0.5
	p.TermAffinity["b"] = 0.9
	p.TermAffinity["c"] = -0.3
	got := p.TopTerms(2)
	if !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Fatalf("top terms = %v", got)
	}
	if got := p.TopTerms(10); len(got) != 3 {
		t.Fatalf("overflow k = %v", got)
	}
}

func TestActiveView(t *testing.T) {
	p := New("iris", 8)
	p.Interests = concept(8, 1)
	p.Weights = qos.Weights{Completeness: 5, Latency: 1, Freshness: 1, Trust: 1, Price: 1}
	w := qos.Weights{Latency: 5, Completeness: 1, Freshness: 1, Trust: 1, Price: 1}
	p.Variants["on-the-road"] = &Variant{
		Label:     "on-the-road",
		Interests: concept(8, 4),
		Weights:   &w,
	}
	iv, wv := p.ActiveView("on-the-road")
	if feature.Cosine(iv, concept(8, 4)) < 0.99 || wv.Latency != 5 {
		t.Fatal("variant not applied")
	}
	iv, wv = p.ActiveView("unknown")
	if feature.Cosine(iv, concept(8, 1)) < 0.99 || wv.Completeness != 5 {
		t.Fatal("base view wrong")
	}
	// Partial variant: only weights.
	p.Variants["partial"] = &Variant{Weights: &w}
	iv, _ = p.ActiveView("partial")
	if feature.Cosine(iv, concept(8, 1)) < 0.99 {
		t.Fatal("partial variant should inherit base interests")
	}
}

func TestSimilarity(t *testing.T) {
	a, b, c := New("a", 8), New("b", 8), New("c", 8)
	a.Interests = concept(8, 2)
	b.Interests = concept(8, 2)
	c.Interests = concept(8, 7)
	a.TermAffinity["gold"] = 1
	b.TermAffinity["gold"] = 0.8
	c.TermAffinity["gold"] = -1
	if Similarity(a, b) <= Similarity(a, c) {
		t.Fatal("aligned profiles should be more similar")
	}
	if s := Similarity(a, b); s < 0 || s > 1 {
		t.Fatalf("similarity out of range: %v", s)
	}
}

func TestCloneIsolation(t *testing.T) {
	p := New("iris", 4)
	p.TermAffinity["x"] = 1
	p.Variants["v"] = &Variant{Label: "v", Interests: concept(4, 0)}
	p.SourceTrust["s"] = uncertainty.NewBelief()
	cp := p.Clone()
	cp.TermAffinity["x"] = -5
	cp.Interests[0] = 9
	cp.Variants["v"].Interests[0] = 9
	if p.TermAffinity["x"] != 1 || p.Interests[0] != 0 || p.Variants["v"].Interests[0] != 1 {
		t.Fatal("clone not deep")
	}
}

func TestMergeEvidenceWeighting(t *testing.T) {
	a, b := New("iris", 4), New("iris", 4)
	a.Interests = feature.Vector{1, 0, 0, 0}
	a.Evidence = 90
	b.Interests = feature.Vector{0, 1, 0, 0}
	b.Evidence = 10
	res, err := Merge([]*Profile{a, b}, []string{"s1", "s2"}, ConflictEvidence)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Profile
	if !isVectorClose(m.Interests, feature.Vector{0.9, 0.1, 0, 0}, 1e-9) {
		t.Fatalf("merged interests = %v", m.Interests)
	}
	if m.Evidence != 100 {
		t.Fatalf("evidence = %v", m.Evidence)
	}
}

func TestMergeConflictPolicies(t *testing.T) {
	mk := func(aff float64, ev float64) *Profile {
		p := New("iris", 2)
		p.TermAffinity["poetry"] = aff
		p.Evidence = ev
		return p
	}
	parts := []*Profile{mk(1, 10), mk(-1, 10), mk(0.8, 10)}
	labels := []string{"s1", "s2", "s3"}

	res, err := Merge(parts, labels, ConflictEvidence)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conflicts) != 1 || res.Conflicts[0].Term != "poetry" {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}
	if math.Abs(res.Profile.TermAffinity["poetry"]-(1-1+0.8)/3) > 1e-9 {
		t.Fatalf("evidence merge = %v", res.Profile.TermAffinity["poetry"])
	}

	res, _ = Merge(parts, labels, ConflictDrop)
	if _, ok := res.Profile.TermAffinity["poetry"]; ok {
		t.Fatal("drop policy kept conflicted term")
	}

	res, _ = Merge(parts, labels, ConflictMajority)
	if got := res.Profile.TermAffinity["poetry"]; math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("majority merge = %v (want mean of winning side 0.9)", got)
	}
}

func TestMergePoolsSourceTrust(t *testing.T) {
	a, b := New("iris", 2), New("iris", 2)
	a.SourceTrust["m"] = uncertainty.BetaBelief{Alpha: 10, Beta: 2}
	b.SourceTrust["m"] = uncertainty.BetaBelief{Alpha: 5, Beta: 2}
	res, err := Merge([]*Profile{a, b}, nil, ConflictEvidence)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Profile.SourceTrust["m"]
	if got.Alpha != 14 || got.Beta != 3 { // 1 + 9 + 4, 1 + 1 + 1
		t.Fatalf("pooled belief = %+v", got)
	}
}

func TestMergeEmpty(t *testing.T) {
	if _, err := Merge(nil, nil, ConflictEvidence); err == nil {
		t.Fatal("expected error")
	}
}

func TestAffinityF1(t *testing.T) {
	p := New("iris", 2)
	p.TermAffinity["gold"] = 1    // correct like
	p.TermAffinity["spam"] = -1   // correct dislike
	p.TermAffinity["noise"] = 0.5 // false positive
	likes := map[string]bool{"gold": true, "ring": true}
	dislikes := map[string]bool{"spam": true}
	f1 := AffinityF1(p, likes, dislikes)
	// tp=2, fp=1, fn=1 -> P=2/3, R=2/3, F1=2/3.
	if math.Abs(f1-2.0/3) > 1e-9 {
		t.Fatalf("f1 = %v", f1)
	}
	if AffinityF1(New("x", 2), likes, dislikes) != 0 {
		t.Fatal("empty profile f1 should be 0")
	}
}

func TestStorePutGetSimilar(t *testing.T) {
	s := NewStore()
	for i, hot := range []int{1, 1, 5} {
		p := New([]string{"iris", "jason", "zoe"}[i], 8)
		p.Interests = concept(8, hot)
		s.Put(p)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if got := s.Get("nobody"); got != nil {
		t.Fatal("missing user should be nil")
	}
	iris := s.Get("iris")
	sims := s.MostSimilar(iris, 2)
	if len(sims) != 2 || sims[0].UserID != "jason" {
		t.Fatalf("similar = %+v", sims)
	}
	// Mutating the returned profile must not affect the store.
	iris.Interests[1] = -9
	if s.Get("iris").Interests[1] == -9 {
		t.Fatal("store leaked internal state")
	}
	users := s.Users()
	if !reflect.DeepEqual(users, []string{"iris", "jason", "zoe"}) {
		t.Fatalf("users = %v", users)
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	p := New("iris", 4)
	p.Interests = feature.Vector{0.1, 0.2, 0.3, 0.4}
	p.TermAffinity["gold"] = 0.9
	p.TermAffinity["spam"] = -0.4
	p.SourceTrust["museum"] = uncertainty.BetaBelief{Alpha: 9, Beta: 2}
	p.Weights = qos.Weights{Latency: 2, Completeness: 3, Freshness: 1, Trust: 1, Price: 0.5}
	p.Risk = uncertainty.Averse(0.7)
	p.Style = NegotiationStyle{Tactic: "boulware", Aggressiveness: 0.8}
	p.Modality = ModalityPrefs{Query: 3, Browse: 1, Feed: 2}
	p.Evidence = 42
	w := qos.Weights{Latency: 9, Completeness: 1, Freshness: 1, Trust: 1, Price: 1}
	p.Variants["travel"] = &Variant{Label: "travel", Interests: feature.Vector{1, 0, 0, 0}, Weights: &w}
	p.Variants["plain"] = &Variant{Label: "plain"}

	got, err := Unmarshal(Marshal(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.UserID != p.UserID || got.Evidence != p.Evidence {
		t.Fatalf("basic fields: %+v", got)
	}
	if !reflect.DeepEqual(got.TermAffinity, p.TermAffinity) {
		t.Fatalf("terms: %v", got.TermAffinity)
	}
	if !reflect.DeepEqual(got.SourceTrust, p.SourceTrust) {
		t.Fatalf("trust: %v", got.SourceTrust)
	}
	if got.Weights != p.Weights || got.Risk != p.Risk || got.Style != p.Style || got.Modality != p.Modality {
		t.Fatal("scalar sections mismatch")
	}
	if len(got.Variants) != 2 {
		t.Fatalf("variants: %v", got.Variants)
	}
	tv := got.Variants["travel"]
	if tv == nil || tv.Weights == nil || tv.Weights.Latency != 9 || !isVectorClose(tv.Interests, feature.Vector{1, 0, 0, 0}, 0) {
		t.Fatalf("travel variant: %+v", tv)
	}
	if pv := got.Variants["plain"]; pv == nil || pv.Weights != nil {
		t.Fatalf("plain variant: %+v", pv)
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	b := Marshal(New("iris", 4))
	if _, err := Unmarshal(b[:len(b)-2]); err == nil {
		t.Fatal("truncated profile decoded")
	}
}
