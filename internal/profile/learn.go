package profile

import (
	"repro/internal/feature"
	"repro/internal/uncertainty"
)

// Online profile learning: "profiling techniques need to be developed that
// will observe users during their normal interaction with the system,
// interpret their actions appropriately, and formulate their individual
// profiles accordingly" (§5). The Learner folds interaction events into a
// profile with per-action evidence weights and exponential forgetting.

// EventType classifies an observed interaction.
type EventType int

// Interaction event types, ordered roughly by evidence strength.
const (
	EventSkip EventType = iota // shown but ignored — weak negative
	EventClick
	EventDwell // read for a while
	EventSave  // stored into the personal information base
	EventAnnotate
	EventQuery // issued a query with these terms
)

// weight maps event types to evidence weights; negative repels.
func (e EventType) weight() float64 {
	switch e {
	case EventSkip:
		return -0.2
	case EventClick:
		return 0.4
	case EventDwell:
		return 0.7
	case EventSave:
		return 1.0
	case EventAnnotate:
		return 1.2
	case EventQuery:
		return 0.5
	default:
		return 0
	}
}

// Event is one observed interaction.
type Event struct {
	Type    EventType
	Concept feature.Vector // concept vector of the object involved
	Terms   []string       // tokens of the object or query
	Source  string         // originating source, for trust updates
	// Satisfied marks whether the source interaction was satisfactory
	// (meaningful for Source != ""). Skips count as unsatisfactory.
	Satisfied bool
}

// Learner updates profiles from events.
type Learner struct {
	// InterestRate is the blend rate toward an event's concept vector per
	// unit of event weight.
	InterestRate float64
	// TermRate is the additive affinity step per unit weight.
	TermRate float64
	// TermDecay multiplies all affinities per event (forgetting).
	TermDecay float64
}

// NewLearner returns a learner with standard rates.
func NewLearner() *Learner {
	return &Learner{InterestRate: 0.08, TermRate: 0.25, TermDecay: 0.999}
}

// Observe folds one event into the profile.
func (l *Learner) Observe(p *Profile, ev Event) {
	w := ev.Type.weight()
	if w != 0 && len(ev.Concept) > 0 {
		rate := l.InterestRate * w
		if rate > 0 {
			p.Interests = feature.Blend(p.Interests, ev.Concept, clampRate(rate))
		} else {
			// Negative evidence: move away by blending with the negation.
			neg := ev.Concept.Clone().Scale(-1)
			p.Interests = feature.Blend(p.Interests, neg, clampRate(-rate))
		}
	}
	if l.TermDecay > 0 && l.TermDecay < 1 {
		for t := range p.TermAffinity {
			p.TermAffinity[t] *= l.TermDecay
		}
	}
	for _, t := range ev.Terms {
		p.TermAffinity[t] += l.TermRate * w
	}
	if ev.Source != "" {
		b, ok := p.SourceTrust[ev.Source]
		if !ok {
			b = uncertainty.NewBelief()
		}
		p.SourceTrust[ev.Source] = b.Observe(ev.Satisfied)
	}
	p.Evidence++
}

// ObserveAll folds a batch of events.
func (l *Learner) ObserveAll(p *Profile, evs []Event) {
	for _, ev := range evs {
		l.Observe(p, ev)
	}
}

func clampRate(r float64) float64 {
	if r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}
