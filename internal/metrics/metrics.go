// Package metrics provides the retrieval-quality and statistics helpers the
// experiment harness reports: NDCG, precision/recall@k, MRR, Kendall tau,
// summary statistics, and plain-text table rendering for EXPERIMENTS.md.
package metrics

import (
	"math"
	"sort"
)

// NDCG computes normalized discounted cumulative gain at k for a ranked
// list of item ids against graded relevance (missing ids = 0 relevance).
func NDCG(ranked []string, relevance map[string]float64, k int) float64 {
	if k <= 0 || len(relevance) == 0 {
		return 0
	}
	dcg := 0.0
	for i, id := range ranked {
		if i >= k {
			break
		}
		rel := relevance[id]
		if rel > 0 {
			dcg += (math.Pow(2, rel) - 1) / math.Log2(float64(i)+2)
		}
	}
	// Ideal ordering.
	rels := make([]float64, 0, len(relevance))
	for _, r := range relevance {
		rels = append(rels, r)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(rels)))
	idcg := 0.0
	for i, r := range rels {
		if i >= k {
			break
		}
		if r > 0 {
			idcg += (math.Pow(2, r) - 1) / math.Log2(float64(i)+2)
		}
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// PrecisionAtK is the fraction of the top-k that is relevant.
func PrecisionAtK(ranked []string, relevant map[string]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	n := k
	if len(ranked) < n {
		n = len(ranked)
	}
	if n == 0 {
		return 0
	}
	hit := 0
	for i := 0; i < n; i++ {
		if relevant[ranked[i]] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

// RecallAtK is the fraction of relevant items found in the top-k.
func RecallAtK(ranked []string, relevant map[string]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	hit := 0
	for i, id := range ranked {
		if i >= k {
			break
		}
		if relevant[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(relevant))
}

// MRR is the mean reciprocal rank of the first relevant item (a single
// query's contribution; callers average).
func MRR(ranked []string, relevant map[string]bool) float64 {
	for i, id := range ranked {
		if relevant[id] {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// KendallTau computes the rank-correlation between two orderings of the
// same id set, in [-1, 1]. Ids missing from either list are ignored, so
// disjoint lists — or lists sharing a single id — carry no ordering signal
// and yield 0 rather than NaN. An exact reversal of ≥2 shared ids is -1.
func KendallTau(a, b []string) float64 {
	posB := make(map[string]int, len(b))
	for i, id := range b {
		posB[id] = i
	}
	var shared []int // positions in b of a's shared items, in a's order
	for _, id := range a {
		if p, ok := posB[id]; ok {
			shared = append(shared, p)
		}
	}
	n := len(shared)
	if n < 2 {
		return 0
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if shared[i] < shared[j] {
				concordant++
			} else {
				discordant++
			}
		}
	}
	total := concordant + discordant
	return float64(concordant-discordant) / float64(total)
}

// Summary holds basic statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes summary statistics. NaN samples are dropped — one
// poisoned measurement must not wipe out a whole report — and N counts only
// the samples kept. Infinities are honest extremes: they are kept and
// propagate into Min/Max/Mean as IEEE arithmetic dictates.
func Summarize(xs []float64) Summary {
	kept := xs[:0:0]
	for _, x := range xs {
		if !math.IsNaN(x) {
			kept = append(kept, x)
		}
	}
	s := Summary{N: len(kept)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = kept[0], kept[0]
	var sum float64
	for _, x := range kept {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range kept {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}
