package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestNDCGPerfectAndReversed(t *testing.T) {
	rel := map[string]float64{"a": 3, "b": 2, "c": 1}
	perfect := NDCG([]string{"a", "b", "c"}, rel, 3)
	if math.Abs(perfect-1) > 1e-12 {
		t.Fatalf("perfect NDCG = %v", perfect)
	}
	reversed := NDCG([]string{"c", "b", "a"}, rel, 3)
	if reversed >= perfect || reversed <= 0 {
		t.Fatalf("reversed NDCG = %v", reversed)
	}
	if NDCG([]string{"x", "y"}, rel, 2) != 0 {
		t.Fatal("irrelevant ranking should be 0")
	}
	if NDCG(nil, nil, 5) != 0 {
		t.Fatal("empty should be 0")
	}
}

func TestNDCGCutoff(t *testing.T) {
	rel := map[string]float64{"a": 1}
	// "a" at position 6 contributes nothing at k=5.
	ranked := []string{"x1", "x2", "x3", "x4", "x5", "a"}
	if NDCG(ranked, rel, 5) != 0 {
		t.Fatal("k cutoff ignored")
	}
	if NDCG(ranked, rel, 6) <= 0 {
		t.Fatal("k=6 should see the hit")
	}
}

func TestPrecisionRecall(t *testing.T) {
	rel := map[string]bool{"a": true, "b": true, "c": true, "d": true}
	ranked := []string{"a", "x", "b", "y", "z"}
	if p := PrecisionAtK(ranked, rel, 5); p != 0.4 {
		t.Fatalf("P@5 = %v", p)
	}
	if p := PrecisionAtK(ranked, rel, 1); p != 1 {
		t.Fatalf("P@1 = %v", p)
	}
	if r := RecallAtK(ranked, rel, 5); r != 0.5 {
		t.Fatalf("R@5 = %v", r)
	}
	if r := RecallAtK(ranked, rel, 1); r != 0.25 {
		t.Fatalf("R@1 = %v", r)
	}
	if PrecisionAtK(nil, rel, 5) != 0 || RecallAtK(ranked, nil, 5) != 0 {
		t.Fatal("degenerate cases")
	}
}

func TestMRR(t *testing.T) {
	rel := map[string]bool{"b": true}
	if m := MRR([]string{"a", "b"}, rel); m != 0.5 {
		t.Fatalf("MRR = %v", m)
	}
	if m := MRR([]string{"x"}, rel); m != 0 {
		t.Fatalf("MRR no hit = %v", m)
	}
}

func TestKendallTau(t *testing.T) {
	a := []string{"a", "b", "c", "d"}
	if tau := KendallTau(a, a); tau != 1 {
		t.Fatalf("identical tau = %v", tau)
	}
	rev := []string{"d", "c", "b", "a"}
	if tau := KendallTau(a, rev); tau != -1 {
		t.Fatalf("reversed tau = %v", tau)
	}
	if tau := KendallTau(a, []string{"a"}); tau != 0 {
		t.Fatalf("degenerate tau = %v", tau)
	}
	// Partial overlap only considers shared items.
	if tau := KendallTau([]string{"a", "b", "z"}, []string{"a", "q", "b"}); tau != 1 {
		t.Fatalf("overlap tau = %v", tau)
	}
}

func TestKendallTauEdgeCases(t *testing.T) {
	// Disjoint id sets: no shared pairs, no signal — 0, never NaN.
	if tau := KendallTau([]string{"a", "b"}, []string{"x", "y"}); tau != 0 {
		t.Fatalf("disjoint tau = %v", tau)
	}
	// A single shared element cannot order anything.
	if tau := KendallTau([]string{"a", "b", "c"}, []string{"c", "x", "y"}); tau != 0 {
		t.Fatalf("single-shared tau = %v", tau)
	}
	// Exact reversal of the shared subsequence amid noise is still -1.
	if tau := KendallTau([]string{"a", "b", "c", "z"}, []string{"q", "c", "b", "a"}); tau != -1 {
		t.Fatalf("noisy reversal tau = %v", tau)
	}
	// Both empty.
	if tau := KendallTau(nil, nil); tau != 0 {
		t.Fatalf("empty tau = %v", tau)
	}
	// Result is always finite.
	for _, pair := range [][2][]string{
		{{"a"}, {"a"}},
		{{"a", "b"}, {"b", "a"}},
		{nil, {"a"}},
	} {
		if tau := KendallTau(pair[0], pair[1]); math.IsNaN(tau) || math.IsInf(tau, 0) {
			t.Fatalf("non-finite tau %v for %v", tau, pair)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-1.29099) > 0.001 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
	one := Summarize([]float64{7})
	if one.StdDev != 0 || one.Mean != 7 {
		t.Fatalf("singleton = %+v", one)
	}
}

func TestSummarizeNaNAndInf(t *testing.T) {
	nan := math.NaN()
	// NaN samples are dropped; the rest summarize normally.
	s := Summarize([]float64{1, nan, 3, nan})
	if s.N != 2 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("NaN-poisoned summary = %+v", s)
	}
	if math.IsNaN(s.StdDev) {
		t.Fatalf("stddev poisoned: %v", s.StdDev)
	}
	// All-NaN collapses to the empty summary.
	if z := Summarize([]float64{nan, nan}); z.N != 0 || z.Mean != 0 {
		t.Fatalf("all-NaN summary = %+v", z)
	}
	// Infinities are kept and propagate to the extremes and mean.
	inf := Summarize([]float64{1, math.Inf(1), 2})
	if inf.N != 3 || !math.IsInf(inf.Max, 1) || !math.IsInf(inf.Mean, 1) || inf.Min != 1 {
		t.Fatalf("inf summary = %+v", inf)
	}
	if neg := Summarize([]float64{math.Inf(-1), 5}); !math.IsInf(neg.Min, -1) || neg.Max != 5 {
		t.Fatalf("neg-inf summary = %+v", neg)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("E0: smoke", "setting", "value", "note")
	tb.AddRow("alpha", 0.123456, "ok")
	tb.AddRow("beta", 1234.5, "wide")
	tb.AddRow("gamma", 0.001, "tiny")
	out := tb.String()
	if !strings.Contains(out, "### E0: smoke") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "0.123") {
		t.Fatalf("float trim wrong:\n%s", out)
	}
	if !strings.Contains(out, "1234.5") {
		t.Fatalf("wide float wrong:\n%s", out)
	}
	if !strings.Contains(out, "0.0010") {
		t.Fatalf("tiny float wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title, blank, header, separator, 3 rows.
	if len(lines) != 7 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	if tb.Rows() != 3 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	// All table lines equal width.
	var widths []int
	for _, l := range lines[2:] {
		widths = append(widths, len(l))
	}
	for _, w := range widths {
		if w != widths[0] {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}
