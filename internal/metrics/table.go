package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table renders aligned plain-text / markdown tables for the benchmark
// harness output (cmd/agora-bench) and EXPERIMENTS.md.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with %.3f and
// fractions-looking floats kept short.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case float32:
			row[i] = trimFloat(float64(v))
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av != 0 && av < 0.01:
		return fmt.Sprintf("%.4f", v)
	case av < 100:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table as GitHub-flavored markdown.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "### %s\n\n", t.Title)
	}
	line := func(cells []string) {
		fmt.Fprint(w, "|")
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(w, " %-*s |", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
