package feedsys

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/feature"
)

func concept(dim, hot int) feature.Vector {
	v := make(feature.Vector, dim)
	v[hot] = 1
	return v
}

func TestSubscribeValidation(t *testing.T) {
	m := NewMatcher(8, 1)
	if err := m.Subscribe(&Subscription{ID: "s1"}); !errors.Is(err, ErrEmptySubscription) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Subscribe(&Subscription{ID: "s1", Terms: []string{"gold"}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Subscribe(&Subscription{ID: "s1", Terms: []string{"x"}}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Unsubscribe("nope"); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Unsubscribe("s1"); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestTermConjunction(t *testing.T) {
	m := NewMatcher(8, 1)
	_ = m.Subscribe(&Subscription{ID: "both", Terms: []string{"dutch", "drawing"}})
	_ = m.Subscribe(&Subscription{ID: "one", Terms: []string{"dutch"}})

	got := m.Match(Item{Text: "a dutch drawing from the auction"})
	ids := idsOf(got)
	if !reflect.DeepEqual(ids, []string{"both", "one"}) {
		t.Fatalf("ids = %v", ids)
	}
	got = m.Match(Item{Text: "a dutch painting"})
	ids = idsOf(got)
	if !reflect.DeepEqual(ids, []string{"one"}) {
		t.Fatalf("ids = %v (conjunction must require all terms)", ids)
	}
	if got := m.Match(Item{Text: "unrelated text"}); len(got) != 0 {
		t.Fatalf("spurious match: %v", idsOf(got))
	}
}

func TestTermsNormalized(t *testing.T) {
	m := NewMatcher(8, 1)
	// Mixed case, punctuation, duplicate terms.
	_ = m.Subscribe(&Subscription{ID: "s", Terms: []string{"Dutch!", "dutch", "DRAWING"}})
	got := m.Match(Item{Text: "dutch drawing"})
	if len(got) != 1 {
		t.Fatalf("normalized terms failed: %v", idsOf(got))
	}
}

func TestConceptPredicate(t *testing.T) {
	m := NewMatcher(8, 1)
	_ = m.Subscribe(&Subscription{ID: "jewel", Concept: concept(8, 2), Threshold: 0.8})
	hit := m.Match(Item{Text: "whatever", Concept: concept(8, 2)})
	if len(hit) != 1 || hit[0].ID != "jewel" {
		t.Fatalf("concept match failed: %v", idsOf(hit))
	}
	miss := m.Match(Item{Text: "whatever", Concept: concept(8, 5)})
	if len(miss) != 0 {
		t.Fatalf("below-threshold matched: %v", idsOf(miss))
	}
	// Item without a concept cannot satisfy a concept predicate.
	if got := m.Match(Item{Text: "whatever"}); len(got) != 0 {
		t.Fatal("no-concept item matched concept predicate")
	}
}

func TestCombinedPredicates(t *testing.T) {
	m := NewMatcher(8, 1)
	_ = m.Subscribe(&Subscription{ID: "s", Terms: []string{"auction"}, Concept: concept(8, 1), Threshold: 0.9})
	if got := m.Match(Item{Text: "auction catalog", Concept: concept(8, 1)}); len(got) != 1 {
		t.Fatal("combined predicate should match")
	}
	if got := m.Match(Item{Text: "auction catalog", Concept: concept(8, 3)}); len(got) != 0 {
		t.Fatal("term hit but concept miss should not match")
	}
	if got := m.Match(Item{Text: "magazine", Concept: concept(8, 1)}); len(got) != 0 {
		t.Fatal("concept hit but term miss should not match")
	}
}

func TestIndexedEqualsLinear(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	vocab := []string{"gold", "silver", "ring", "brooch", "dutch", "flemish", "drawing", "auction", "museum", "dance"}
	m := NewMatcher(8, 1)
	lin := NewMatcher(8, 1)
	lin.Linear = true
	for i := 0; i < 300; i++ {
		var terms []string
		for _, w := range vocab {
			if r.Intn(5) == 0 {
				terms = append(terms, w)
			}
		}
		var cv feature.Vector
		var th float64
		if r.Intn(2) == 0 {
			cv = concept(8, r.Intn(8))
			th = 0.7
		}
		if len(terms) == 0 && len(cv) == 0 {
			terms = []string{vocab[r.Intn(len(vocab))]}
		}
		s := Subscription{ID: fmt.Sprintf("s%03d", i), Terms: terms, Concept: cv, Threshold: th}
		s2 := s
		if err := m.Subscribe(&s); err != nil {
			t.Fatal(err)
		}
		if err := lin.Subscribe(&s2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		var text string
		for _, w := range vocab {
			if r.Intn(3) == 0 {
				text += w + " "
			}
		}
		it := Item{Text: text, Concept: concept(8, r.Intn(8))}
		a, b := idsOf(m.Match(it)), idsOf(lin.Match(it))
		// LSH may very rarely miss a concept-only candidate; require the
		// term-indexed results to agree exactly and concept results to be a
		// subset relationship with >= 95% agreement overall.
		if !reflect.DeepEqual(a, b) {
			missing := diffIDs(b, a)
			if len(missing) > len(b)/20+1 {
				t.Fatalf("item %d: indexed %v vs linear %v", i, a, b)
			}
		}
	}
}

func idsOf(subs []*Subscription) []string {
	out := make([]string, len(subs))
	for i, s := range subs {
		out[i] = s.ID
	}
	return out
}

func diffIDs(want, got []string) []string {
	gotSet := make(map[string]bool, len(got))
	for _, g := range got {
		gotSet[g] = true
	}
	var out []string
	for _, w := range want {
		if !gotSet[w] {
			out = append(out, w)
		}
	}
	return out
}

func TestPublishDelivers(t *testing.T) {
	m := NewMatcher(8, 1)
	var got []Item
	_ = m.Subscribe(&Subscription{
		ID: "s", Terms: []string{"auction"},
		Deliver: func(it Item) { got = append(got, it) },
	})
	n := m.Publish(Item{ID: "i1", Text: "auction catalog"})
	if n != 1 || len(got) != 1 || got[0].ID != "i1" {
		t.Fatalf("publish: n=%d got=%v", n, got)
	}
	if m.Published != 1 || m.Matched != 1 {
		t.Fatalf("stats: %d %d", m.Published, m.Matched)
	}
	if n := m.Publish(Item{ID: "i2", Text: "nothing"}); n != 0 {
		t.Fatalf("n = %d", n)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	m := NewMatcher(8, 1)
	count := 0
	_ = m.Subscribe(&Subscription{ID: "s", Terms: []string{"gold"}, Deliver: func(Item) { count++ }})
	m.Publish(Item{Text: "gold ring"})
	_ = m.Unsubscribe("s")
	m.Publish(Item{Text: "gold ring"})
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
}

func TestConceptOnlyUnsubscribeCleansLSH(t *testing.T) {
	m := NewMatcher(8, 1)
	_ = m.Subscribe(&Subscription{ID: "c", Concept: concept(8, 1), Threshold: 0.5})
	_ = m.Unsubscribe("c")
	if got := m.Match(Item{Text: "x", Concept: concept(8, 1)}); len(got) != 0 {
		t.Fatal("unsubscribed concept sub still matching")
	}
}

func TestInboxWindowAndCap(t *testing.T) {
	in := NewInbox(3, 10*time.Second)
	for i := 0; i < 5; i++ {
		in.Deliver(Item{ID: fmt.Sprintf("i%d", i), At: time.Duration(i) * time.Second})
	}
	if in.Len() != 3 {
		t.Fatalf("len = %d, want cap 3", in.Len())
	}
	snap := in.Snapshot()
	if snap[0].ID != "i2" || snap[2].ID != "i4" {
		t.Fatalf("snapshot = %v", snap)
	}
	// Window eviction: an item far in the future expels old ones.
	in.Deliver(Item{ID: "late", At: time.Hour})
	if in.Len() != 1 || in.Snapshot()[0].ID != "late" {
		t.Fatalf("window eviction failed: %v", in.Snapshot())
	}
	// Drain clears.
	if got := in.Drain(); len(got) != 1 {
		t.Fatalf("drain = %v", got)
	}
	if in.Len() != 0 {
		t.Fatal("drain did not clear")
	}
}
