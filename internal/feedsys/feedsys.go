// Package feedsys implements the information-initiated side of the paper's
// Multi-Modal Interaction pillar: continuous feeds (auction catalogs,
// magazine articles) matched against standing, profile-derived
// subscriptions. Iris "immediately establishes a stream to retrieve every
// item from the auction catalog and compare it with material she already
// has" — a Subscription with a concept predicate does exactly that.
//
// Matching uses a counting-based conjunction index over terms plus an LSH
// index over subscription concept vectors; experiment E11 compares it
// against the linear scan baseline.
package feedsys

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/feature"
)

// Item is one event on a feed.
type Item struct {
	ID      string
	FeedID  string
	Source  string
	Text    string
	Concept feature.Vector
	Seq     uint64
	At      time.Duration // virtual publication time
}

// Subscription is a standing interest. Terms is a conjunction (every term
// must occur in the item's text); Concept+Threshold adds a similarity
// predicate. Either part may be empty, but not both.
type Subscription struct {
	ID        string
	Owner     string
	Terms     []string
	Concept   feature.Vector
	Threshold float64
	// Deliver receives matching items. It must not block.
	Deliver func(Item)
}

// Matcher errors.
var (
	ErrEmptySubscription = errors.New("feedsys: subscription has neither terms nor concept")
	ErrDuplicateID       = errors.New("feedsys: duplicate subscription id")
	ErrUnknownID         = errors.New("feedsys: unknown subscription id")
)

// Matcher indexes subscriptions for fast matching. Safe for concurrent use.
type Matcher struct {
	mu sync.RWMutex
	// byTerm maps a term to subscription ids requiring it.
	byTerm map[string]map[string]bool
	subs   map[string]*Subscription
	// conceptIdx indexes concept predicates of subscriptions; ids overlap
	// with subs.
	conceptIdx *feature.LSH
	// conceptOnly lists ids with concept predicates but no terms (checked
	// against every item via the LSH candidates).
	conceptOnly map[string]bool
	// Linear disables the indexes (baseline mode).
	Linear bool

	// Stats
	Published uint64
	Matched   uint64
}

// NewMatcher returns a matcher for concept vectors of the given dimension.
func NewMatcher(conceptDim int, seed int64) *Matcher {
	return &Matcher{
		byTerm:      make(map[string]map[string]bool),
		subs:        make(map[string]*Subscription),
		conceptIdx:  feature.NewLSH(seed, conceptDim, 8, 8),
		conceptOnly: make(map[string]bool),
	}
}

// Subscribe registers a subscription.
func (m *Matcher) Subscribe(s *Subscription) error {
	if len(s.Terms) == 0 && len(s.Concept) == 0 {
		return ErrEmptySubscription
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.subs[s.ID]; ok {
		return ErrDuplicateID
	}
	cp := *s
	cp.Terms = normalizeTerms(s.Terms)
	m.subs[s.ID] = &cp
	for _, t := range cp.Terms {
		set, ok := m.byTerm[t]
		if !ok {
			set = make(map[string]bool)
			m.byTerm[t] = set
		}
		set[s.ID] = true
	}
	if len(cp.Concept) > 0 {
		m.conceptIdx.Put(s.ID, cp.Concept)
		if len(cp.Terms) == 0 {
			m.conceptOnly[s.ID] = true
		}
	}
	return nil
}

// Unsubscribe removes a subscription by id.
func (m *Matcher) Unsubscribe(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.subs[id]
	if !ok {
		return ErrUnknownID
	}
	delete(m.subs, id)
	for _, t := range s.Terms {
		delete(m.byTerm[t], id)
		if len(m.byTerm[t]) == 0 {
			delete(m.byTerm, t)
		}
	}
	m.conceptIdx.Delete(id)
	delete(m.conceptOnly, id)
	return nil
}

// Len returns the number of live subscriptions.
func (m *Matcher) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.subs)
}

func normalizeTerms(terms []string) []string {
	seen := make(map[string]bool, len(terms))
	var out []string
	for _, t := range terms {
		toks := feature.Tokenize(t)
		for _, tok := range toks {
			if !seen[tok] {
				seen[tok] = true
				out = append(out, tok)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Match returns the subscriptions an item satisfies, sorted by id.
func (m *Matcher) Match(it Item) []*Subscription {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.Linear {
		return m.matchLinear(it)
	}
	tokens := feature.Tokenize(it.Text)
	tokenSet := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		tokenSet[t] = true
	}
	// Counting conjunction: a sub with k terms matches when k of its terms
	// occur (each term counted once thanks to tokenSet).
	counts := make(map[string]int)
	for t := range tokenSet {
		for id := range m.byTerm[t] {
			counts[id]++
		}
	}
	candidates := make(map[string]bool)
	for id, n := range counts {
		if n == len(m.subs[id].Terms) {
			candidates[id] = true
		}
	}
	// Concept-only subscriptions come from the LSH index.
	if len(m.conceptOnly) > 0 && len(it.Concept) > 0 {
		for _, cand := range m.conceptIdx.Query(it.Concept, -1) {
			if m.conceptOnly[cand.ID] {
				candidates[cand.ID] = true
			}
		}
	}
	var out []*Subscription
	for id := range candidates {
		s := m.subs[id]
		if !conceptOK(s, it) {
			continue
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// matchLinear is the exhaustive baseline.
func (m *Matcher) matchLinear(it Item) []*Subscription {
	tokens := feature.Tokenize(it.Text)
	tokenSet := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		tokenSet[t] = true
	}
	var out []*Subscription
	for _, s := range m.subs {
		ok := true
		for _, t := range s.Terms {
			if !tokenSet[t] {
				ok = false
				break
			}
		}
		if !ok || !conceptOK(s, it) {
			continue
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func conceptOK(s *Subscription, it Item) bool {
	if len(s.Concept) == 0 {
		return true
	}
	if len(it.Concept) == 0 {
		return false
	}
	return feature.Cosine(s.Concept, it.Concept) >= s.Threshold
}

// Publish matches and delivers an item, returning how many subscriptions it
// reached.
func (m *Matcher) Publish(it Item) int {
	matches := m.Match(it)
	m.mu.Lock()
	m.Published++
	m.Matched += uint64(len(matches))
	m.mu.Unlock()
	for _, s := range matches {
		if s.Deliver != nil {
			s.Deliver(it)
		}
	}
	return len(matches)
}
