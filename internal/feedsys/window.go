package feedsys

import (
	"sync"
	"time"
)

// Inbox is a bounded per-subscriber buffer of delivered items with a
// sliding time window, letting the UI side of multi-modal interaction show
// "what arrived recently" and letting sessions rate-limit noisy feeds.
type Inbox struct {
	mu     sync.Mutex
	items  []Item
	max    int
	window time.Duration
}

// NewInbox returns an inbox keeping at most max items no older than window
// (relative to the newest item's At).
func NewInbox(max int, window time.Duration) *Inbox {
	if max <= 0 {
		max = 128
	}
	return &Inbox{max: max, window: window}
}

// Deliver appends an item, evicting by size and window.
func (in *Inbox) Deliver(it Item) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.items = append(in.items, it)
	if in.window > 0 {
		cutoff := it.At - in.window
		i := 0
		for i < len(in.items) && in.items[i].At < cutoff {
			i++
		}
		in.items = in.items[i:]
	}
	if len(in.items) > in.max {
		in.items = in.items[len(in.items)-in.max:]
	}
}

// Snapshot returns a copy of the buffered items, oldest first.
func (in *Inbox) Snapshot() []Item {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Item, len(in.items))
	copy(out, in.items)
	return out
}

// Len returns the number of buffered items.
func (in *Inbox) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.items)
}

// Drain returns and clears the buffer.
func (in *Inbox) Drain() []Item {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := in.items
	in.items = nil
	return out
}
