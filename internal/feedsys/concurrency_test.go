package feedsys

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/feature"
)

// TestMatcherConcurrentPubSub exercises concurrent subscribe, unsubscribe,
// and publish; run with -race.
func TestMatcherConcurrentPubSub(t *testing.T) {
	m := NewMatcher(8, 1)
	var delivered atomic.Int64
	var wg sync.WaitGroup

	// Stable base subscriptions.
	for i := 0; i < 50; i++ {
		err := m.Subscribe(&Subscription{
			ID:      fmt.Sprintf("base%02d", i),
			Terms:   []string{"gold"},
			Deliver: func(Item) { delivered.Add(1) },
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Churning subscribers.
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("churn-%d-%d", w, i)
				cv := make(feature.Vector, 8)
				cv[i%8] = 1
				if err := m.Subscribe(&Subscription{ID: id, Terms: []string{"silver"}, Concept: cv, Threshold: 0.5}); err != nil {
					t.Error(err)
					return
				}
				if err := m.Unsubscribe(id); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Publishers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.Publish(Item{ID: fmt.Sprintf("i%d", i), Text: "gold ring"})
			}
		}()
	}
	wg.Wait()
	// 400 publishes × 50 stable matching subs.
	if got := delivered.Load(); got != 400*50 {
		t.Fatalf("delivered = %d, want %d", got, 400*50)
	}
	if m.Len() != 50 {
		t.Fatalf("len = %d", m.Len())
	}
}

// TestInboxConcurrent checks the inbox under parallel delivery.
func TestInboxConcurrent(t *testing.T) {
	in := NewInbox(1000, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.Deliver(Item{ID: fmt.Sprintf("w%d-%d", w, i)})
				_ = in.Len()
				if i%10 == 0 {
					_ = in.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if in.Len() != 800 {
		t.Fatalf("len = %d", in.Len())
	}
}
