// Package shard partitions the agora corpus across nodes and runs
// scatter-gather asks over the real TCP transport. A Map assigns each
// document — keyed by its primary topic, so the Zipfian concept space in
// internal/workload clusters related documents — to one shard's key range;
// a Router fans a text query out to the shards that can contribute, scores
// every shard under the same corpus-wide statistics, and merges the
// per-shard top-k streams into a result bit-identical to a single node
// holding the whole corpus (DESIGN.md "Sharding & scatter-gather").
package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/docstore"
	"repro/internal/wire"
)

// Member is one shard: the owning node, its dial addresses (primary first,
// later entries are replicas used for hedged retries), and the inclusive
// key range [Start, End] it serves on the 64-bit ring.
type Member struct {
	ID    string
	Addrs []string
	Start uint64
	End   uint64
}

// Contains reports whether key falls in the member's range.
func (m *Member) Contains(key uint64) bool {
	return key >= m.Start && key <= m.End
}

// Map is a contiguous partition of the full 64-bit key space: members are
// sorted by Start, ranges do not overlap, and together they cover
// [0, MaxUint64]. The zero Map is empty and locates nothing.
type Map struct {
	members []Member
}

// Key hashes a placement string (a topic, or a document ID as fallback)
// onto the ring with FNV-1a 64 — stable across processes, unlike Go's map
// hash.
func Key(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// DocKey places a document: by its first topic when it has one (clustering
// a topic's documents on one shard), by ID otherwise. Placement is a
// locality optimization only — the router's correctness never depends on
// where a document landed.
func DocKey(d *docstore.Document) uint64 {
	if len(d.Topics) > 0 {
		return Key(d.Topics[0])
	}
	return Key(d.ID)
}

// NewUniform builds a map splitting the ring into len(ids) equal ranges,
// in the given order. Panics on zero members (a map must cover the ring).
func NewUniform(ids []string) *Map {
	if len(ids) == 0 {
		panic("shard: uniform map needs at least one member")
	}
	n := uint64(len(ids))
	width := ^uint64(0)/n + 1 // ranges of ~2^64/n keys; the last absorbs the remainder
	m := &Map{members: make([]Member, len(ids))}
	for i, id := range ids {
		start := uint64(i) * width
		end := start + width - 1
		if i == len(ids)-1 {
			end = ^uint64(0)
		}
		m.members[i] = Member{ID: id, Start: start, End: end}
	}
	return m
}

// Members returns the partition, sorted by Start. The slice is the map's
// own — callers must not mutate it.
func (m *Map) Members() []Member { return m.members }

// Len returns the number of shards.
func (m *Map) Len() int { return len(m.members) }

// Locate returns the member owning key, or nil on an empty map.
func (m *Map) Locate(key uint64) *Member {
	i := sort.Search(len(m.members), func(i int) bool { return m.members[i].End >= key })
	if i == len(m.members) {
		return nil
	}
	return &m.members[i]
}

// SetAddrs records the dial addresses for member id.
func (m *Map) SetAddrs(id string, addrs ...string) {
	for i := range m.members {
		if m.members[i].ID == id {
			m.members[i].Addrs = append([]string(nil), addrs...)
			return
		}
	}
}

// Handoff is one range movement produced by a membership change: documents
// with keys in [Start, End] must move from shard From to shard To.
type Handoff struct {
	From  string
	To    string
	Start uint64
	End   uint64
}

// Join adds a new member by splitting the widest existing range in half,
// returning the handoff that moves the upper half's documents to the new
// member. Joining an existing ID is a no-op (nil handoffs).
func (m *Map) Join(id string, addrs ...string) []Handoff {
	for i := range m.members {
		if m.members[i].ID == id {
			return nil
		}
	}
	if len(m.members) == 0 {
		m.members = []Member{{ID: id, Addrs: append([]string(nil), addrs...), Start: 0, End: ^uint64(0)}}
		return nil
	}
	widest := 0
	for i := range m.members {
		if m.members[i].End-m.members[i].Start > m.members[widest].End-m.members[widest].Start {
			widest = i
		}
	}
	w := &m.members[widest]
	if w.End == w.Start {
		return nil // cannot split a single-key range
	}
	mid := w.Start + (w.End-w.Start)/2
	nm := Member{ID: id, Addrs: append([]string(nil), addrs...), Start: mid + 1, End: w.End}
	h := Handoff{From: w.ID, To: id, Start: nm.Start, End: nm.End}
	w.End = mid
	m.members = append(m.members, Member{})
	copy(m.members[widest+2:], m.members[widest+1:])
	m.members[widest+1] = nm
	return []Handoff{h}
}

// Leave removes a member, merging its range into a neighbor (the previous
// member; the next one when the first member leaves), and returns the
// handoff draining the departing shard. Removing the last member empties
// the map. Unknown IDs are a no-op.
func (m *Map) Leave(id string) []Handoff {
	idx := -1
	for i := range m.members {
		if m.members[i].ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	leaving := m.members[idx]
	if len(m.members) == 1 {
		m.members = nil
		return nil
	}
	var heir int
	if idx > 0 {
		heir = idx - 1
		m.members[heir].End = leaving.End
	} else {
		heir = idx + 1
		m.members[heir].Start = leaving.Start
	}
	h := Handoff{From: id, To: m.members[heir].ID, Start: leaving.Start, End: leaving.End}
	m.members = append(m.members[:idx], m.members[idx+1:]...)
	return []Handoff{h}
}

// validate checks the contiguity invariant; used by tests and by gossip
// parsing (a malformed peer sample must not become a routing table).
func (m *Map) validate() error {
	if len(m.members) == 0 {
		return nil
	}
	if m.members[0].Start != 0 {
		return fmt.Errorf("shard: map does not start at 0 (starts %d)", m.members[0].Start)
	}
	for i := 1; i < len(m.members); i++ {
		if m.members[i].Start != m.members[i-1].End+1 {
			return fmt.Errorf("shard: gap between %q and %q", m.members[i-1].ID, m.members[i].ID)
		}
	}
	if m.members[len(m.members)-1].End != ^uint64(0) {
		return fmt.Errorf("shard: map does not cover the top of the ring")
	}
	return nil
}

// GossipEntries flattens the map into the overlay's gossip peer format:
// one "id addr start-end" entry per member (addr is the primary; "-" when
// unknown). Nodes that predate sharding publish "id addr" pairs; both
// forms coexist in one wire.Gossip.
func (m *Map) GossipEntries() []string {
	out := make([]string, 0, len(m.members))
	for i := range m.members {
		mem := &m.members[i]
		addr := "-"
		if len(mem.Addrs) > 0 {
			addr = mem.Addrs[0]
		}
		out = append(out, fmt.Sprintf("%s %s %d-%d", mem.ID, addr, mem.Start, mem.End))
	}
	return out
}

// FromGossip rebuilds a map from a gossip membership sample, ignoring
// entries without a range token (pre-shard peers). The entries must form a
// contiguous cover of the ring or an error is returned — a router must
// never scatter over a partial routing table as if it were whole.
func FromGossip(g wire.Gossip) (*Map, error) {
	m := &Map{}
	for _, entry := range g.Peers {
		fields := strings.Fields(entry)
		if len(fields) < 3 {
			continue // "id addr" pair from an unsharded peer
		}
		lo, hi, ok := parseRange(fields[2])
		if !ok {
			continue
		}
		mem := Member{ID: fields[0], Start: lo, End: hi}
		if fields[1] != "-" {
			mem.Addrs = []string{fields[1]}
		}
		m.members = append(m.members, mem)
	}
	sort.Slice(m.members, func(i, j int) bool { return m.members[i].Start < m.members[j].Start })
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseRange parses the "start-end" form used by gossip entries and the
// agora-node -shard-range flag's "i/n" uniform shorthand: "3/8" denotes
// the fourth of eight equal ranges.
func ParseRange(s string) (start, end uint64, err error) {
	if i := strings.IndexByte(s, '/'); i >= 0 {
		idx, err1 := strconv.ParseUint(s[:i], 10, 64)
		n, err2 := strconv.ParseUint(s[i+1:], 10, 64)
		if err1 != nil || err2 != nil || n == 0 || idx >= n {
			return 0, 0, fmt.Errorf("shard: bad range %q (want i/n with i < n)", s)
		}
		width := ^uint64(0)/n + 1
		start = idx * width
		end = start + width - 1
		if idx == n-1 {
			end = ^uint64(0)
		}
		return start, end, nil
	}
	lo, hi, ok := parseRange(s)
	if !ok {
		return 0, 0, fmt.Errorf("shard: bad range %q (want start-end or i/n)", s)
	}
	return lo, hi, nil
}

func parseRange(s string) (lo, hi uint64, ok bool) {
	i := strings.IndexByte(s, '-')
	if i <= 0 {
		return 0, 0, false
	}
	lo, err1 := strconv.ParseUint(s[:i], 10, 64)
	hi, err2 := strconv.ParseUint(s[i+1:], 10, 64)
	if err1 != nil || err2 != nil || hi < lo {
		return 0, 0, false
	}
	return lo, hi, true
}
