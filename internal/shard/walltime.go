package shard

import "time"

// internal/shard is inside the wallclock analyzer's kernel scope (the
// router's pruning math must stay deterministic), but the router is also a
// real-network client: RPC deadlines, hedge timers, and latency histograms
// genuinely need the wall clock. Every clock read funnels through these
// helpers so each use carries its justification in one place — the values
// feed timeouts and telemetry only and never influence scoring, pruning,
// or merge order.

// now reads the wall clock for latency telemetry.
func now() time.Time {
	return time.Now() //lint:allow wallclock latency stopwatch for telemetry histograms; never reaches scoring or merge state
}

// since measures elapsed wall time for telemetry.
func since(t time.Time) time.Duration {
	return time.Since(t) //lint:allow wallclock latency stopwatch for telemetry histograms; never reaches scoring or merge state
}

// after arms the hedge/backup timer on the real-network ask path.
func after(d time.Duration) <-chan time.Time {
	return time.After(d) //lint:allow wallclock hedge timer races a live TCP round-trip; timing affects only which replica answers, not the result
}
