package shard

import (
	"errors"
	"fmt"

	"repro/internal/docstore"
)

// Range handoff: when gossip reports a membership change, Map.Join/Leave
// emit Handoffs, and a Mover executes them — streaming every document
// whose placement key falls in the moved range out of the source store and
// into the destination. Both sides go through the ordinary write path
// (WAL, snapshots), so a handoff is crash-safe on each store and readers
// on either side keep their lock-free epochs throughout.

// Mover applies handoffs between stores it can reach in-process. Key
// defaults to DocKey.
type Mover struct {
	Stores map[string]*docstore.Store
	Key    func(*docstore.Document) uint64
}

// moveBatch bounds one PutBatch/Delete sweep so a huge range moves in
// group-committed chunks instead of one giant write.
const moveBatch = 256

// Apply moves h's range, returning how many documents moved. Documents
// are copied into the destination first and deleted from the source after
// the batch lands — a crash between the two leaves duplicates (resolved by
// the destination being authoritative for the range), never losses.
func (mv *Mover) Apply(h Handoff) (int, error) {
	src, ok := mv.Stores[h.From]
	if !ok {
		return 0, fmt.Errorf("shard: handoff source %q unknown", h.From)
	}
	dst, ok := mv.Stores[h.To]
	if !ok {
		return 0, fmt.Errorf("shard: handoff destination %q unknown", h.To)
	}
	key := mv.Key
	if key == nil {
		key = DocKey
	}
	var batch []*docstore.Document
	moved := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := dst.PutBatch(batch); err != nil {
			return fmt.Errorf("shard: handoff put: %w", err)
		}
		for _, d := range batch {
			if err := src.Delete(d.ID); err != nil && !errors.Is(err, docstore.ErrNotFound) {
				return fmt.Errorf("shard: handoff delete: %w", err)
			}
		}
		moved += len(batch)
		batch = batch[:0]
		return nil
	}
	var moveErr error
	src.All(func(d *docstore.Document) bool {
		k := key(d)
		if k < h.Start || k > h.End {
			return true
		}
		batch = append(batch, d)
		if len(batch) >= moveBatch {
			if moveErr = flush(); moveErr != nil {
				return false
			}
		}
		return true
	})
	if moveErr != nil {
		return moved, moveErr
	}
	if err := flush(); err != nil {
		return moved, err
	}
	return moved, nil
}

// ApplyAll applies a sequence of handoffs (the output of one membership
// change), stopping on the first error.
func (mv *Mover) ApplyAll(hs []Handoff) (int, error) {
	total := 0
	for _, h := range hs {
		n, err := mv.Apply(h)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
