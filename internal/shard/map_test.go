package shard

import (
	"fmt"
	"testing"

	"repro/internal/docstore"
	"repro/internal/wire"
)

func ids(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("shard%d", i)
	}
	return out
}

func TestNewUniformCoversRing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		m := NewUniform(ids(n))
		if m.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, m.Len())
		}
		if err := m.validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestLocate(t *testing.T) {
	m := NewUniform(ids(4))
	for _, key := range []uint64{0, 1, 1 << 62, 1<<63 - 1, 1 << 63, ^uint64(0), Key("jewelry"), Key("doc00042")} {
		mem := m.Locate(key)
		if mem == nil {
			t.Fatalf("Locate(%d) = nil", key)
		}
		if !mem.Contains(key) {
			t.Fatalf("Locate(%d) = %q [%d,%d] does not contain key", key, mem.ID, mem.Start, mem.End)
		}
	}
	var empty Map
	if empty.Locate(7) != nil {
		t.Fatal("empty map located a member")
	}
}

func TestKeyStable(t *testing.T) {
	// FNV-1a 64 of "a" — pinned so placement never silently changes
	// across releases (documents would land on the wrong shard).
	if got := Key("a"); got != 0xaf63dc4c8601ec8c {
		t.Fatalf("Key(\"a\") = %#x", got)
	}
	if Key("jewelry") == Key("ceramics") {
		t.Fatal("distinct topics collided")
	}
}

func TestDocKey(t *testing.T) {
	withTopic := &docstore.Document{ID: "doc1", Topics: []string{"jewelry", "coin"}}
	if DocKey(withTopic) != Key("jewelry") {
		t.Fatal("DocKey ignored primary topic")
	}
	bare := &docstore.Document{ID: "doc2"}
	if DocKey(bare) != Key("doc2") {
		t.Fatal("DocKey of topicless doc should fall back to ID")
	}
}

func TestJoinSplitsWidestAndStaysContiguous(t *testing.T) {
	m := NewUniform(ids(2))
	hs := m.Join("shard2", "127.0.0.1:9999")
	if len(hs) != 1 {
		t.Fatalf("Join handoffs = %d, want 1", len(hs))
	}
	if err := m.validate(); err != nil {
		t.Fatalf("after join: %v", err)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d after join", m.Len())
	}
	h := hs[0]
	// The handoff range must be exactly the new member's range, moving
	// from the shard that previously owned it.
	nm := m.Locate(h.Start)
	if nm.ID != "shard2" || nm.Start != h.Start || nm.End != h.End {
		t.Fatalf("handoff %+v does not match new member [%d,%d]", h, nm.Start, nm.End)
	}
	if h.From == "shard2" {
		t.Fatal("handoff sources from the joining shard")
	}
	// Duplicate join is a no-op.
	if hs := m.Join("shard2"); hs != nil {
		t.Fatalf("duplicate join produced handoffs: %+v", hs)
	}
}

func TestLeaveMergesNeighbor(t *testing.T) {
	m := NewUniform(ids(4))
	hs := m.Leave("shard1")
	if len(hs) != 1 {
		t.Fatalf("Leave handoffs = %d", len(hs))
	}
	if err := m.validate(); err != nil {
		t.Fatalf("after leave: %v", err)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	if hs[0].From != "shard1" || hs[0].To != "shard0" {
		t.Fatalf("handoff %+v, want shard1→shard0", hs[0])
	}
	// First member leaving merges forward instead.
	hs = m.Leave("shard0")
	if err := m.validate(); err != nil {
		t.Fatalf("after first-member leave: %v", err)
	}
	if hs[0].To != "shard2" {
		t.Fatalf("first-member heir = %q, want shard2", hs[0].To)
	}
	if m.members[0].Start != 0 {
		t.Fatal("ring no longer starts at 0")
	}
	// Unknown ID is a no-op; last member leaving empties the map.
	if hs := m.Leave("nope"); hs != nil {
		t.Fatalf("unknown leave produced handoffs: %+v", hs)
	}
	m.Leave("shard2")
	m.Leave("shard3")
	if m.Len() != 0 {
		t.Fatalf("Len = %d after all left", m.Len())
	}
}

func TestGossipRoundTrip(t *testing.T) {
	m := NewUniform(ids(4))
	m.SetAddrs("shard0", "127.0.0.1:7000")
	m.SetAddrs("shard2", "127.0.0.1:7002")
	entries := m.GossipEntries()
	// Mix in a pre-shard "id addr" peer: it must be ignored, not break
	// parsing (old and new nodes share one gossip stream).
	entries = append(entries, "legacy-node 127.0.0.1:6000")
	got, err := FromGossip(wire.Gossip{Peers: entries})
	if err != nil {
		t.Fatalf("FromGossip: %v", err)
	}
	if got.Len() != 4 {
		t.Fatalf("Len = %d", got.Len())
	}
	for i, mem := range got.Members() {
		want := m.Members()[i]
		if mem.ID != want.ID || mem.Start != want.Start || mem.End != want.End {
			t.Fatalf("member %d = %+v, want %+v", i, mem, want)
		}
	}
	if a := got.Members()[0].Addrs; len(a) != 1 || a[0] != "127.0.0.1:7000" {
		t.Fatalf("shard0 addrs = %v", a)
	}
	if a := got.Members()[1].Addrs; len(a) != 0 {
		t.Fatalf("shard1 (addr unknown) addrs = %v", a)
	}
}

func TestFromGossipRejectsPartialCover(t *testing.T) {
	m := NewUniform(ids(4))
	entries := m.GossipEntries()
	for drop := range entries {
		partial := append(append([]string(nil), entries[:drop]...), entries[drop+1:]...)
		if _, err := FromGossip(wire.Gossip{Peers: partial}); err == nil {
			t.Fatalf("dropping entry %d still validated", drop)
		}
	}
}

func TestParseRange(t *testing.T) {
	lo, hi, err := ParseRange("0/4")
	if err != nil || lo != 0 || hi != 1<<62-1 {
		t.Fatalf("0/4 = [%d,%d], %v", lo, hi, err)
	}
	lo, hi, err = ParseRange("3/4")
	if err != nil || hi != ^uint64(0) {
		t.Fatalf("3/4 = [%d,%d], %v", lo, hi, err)
	}
	// i/n shorthand must match NewUniform exactly — a node started with
	// -shard-range 1/4 must own the same keys router-side shard1 owns.
	m := NewUniform(ids(4))
	lo, hi, err = ParseRange("1/4")
	if err != nil || lo != m.Members()[1].Start || hi != m.Members()[1].End {
		t.Fatalf("1/4 = [%d,%d], want [%d,%d]", lo, hi, m.Members()[1].Start, m.Members()[1].End)
	}
	lo, hi, err = ParseRange("100-200")
	if err != nil || lo != 100 || hi != 200 {
		t.Fatalf("100-200 = [%d,%d], %v", lo, hi, err)
	}
	for _, bad := range []string{"", "4/4", "5/0", "x/4", "200-100", "-5", "abc"} {
		if _, _, err := ParseRange(bad); err == nil {
			t.Fatalf("ParseRange(%q) accepted", bad)
		}
	}
}

func TestMergeTopK(t *testing.T) {
	it := func(id string, score float64) wire.ResultItem {
		return wire.ResultItem{DocID: id, Score: score}
	}
	lists := [][]wire.ResultItem{
		{it("a", 9), it("c", 5), it("e", 1)},
		{it("b", 7), it("d", 5), it("f", 0.5)},
		{},
		{it("g", 5)},
	}
	got := MergeTopK(lists, 5)
	want := []string{"a", "b", "c", "d", "g"} // ties at 5 break by DocID ascending
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].DocID != w {
			t.Fatalf("pos %d = %q, want %q (full: %+v)", i, got[i].DocID, w, got)
		}
	}
	// k larger than total, k=0, and all-empty inputs.
	if got := MergeTopK(lists, 100); len(got) != 7 {
		t.Fatalf("k=100 len = %d, want 7", len(got))
	}
	if got := MergeTopK(lists, 0); got != nil {
		t.Fatalf("k=0 = %+v", got)
	}
	if got := MergeTopK(nil, 5); len(got) != 0 {
		t.Fatalf("nil lists = %+v", got)
	}
}
