package shard

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/docstore"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// The BenchmarkScatterShardsN family drives `make bench-shard`: a fixed
// 128k-document Zipfian corpus served by 1/2/4/8 shard servers over real
// TCP, asked under sustained ingest (one 64-document batch per 4 asks —
// the open agora's operating point, where every overlayLimit writes the
// written store pays an O(base) freeze, and the base is what sharding
// divides). ns/op is the per-ask cost with the ingest schedule folded
// in; p50/p99 ask latency, realized fan-out, and pruned shards land in
// the extras. BENCH_shard.json archives the 1→8 scaling curve;
// `make bench-shard-check` gates regressions.

const (
	benchDocs        = 131072
	benchIngestEvery = 4
	benchIngestBatch = 64
)

// benchCorpus is generated once and shared: re-deriving 64k documents per
// shard count would dwarf the measured loops.
var benchCorpus struct {
	once    sync.Once
	docs    []*docstore.Document
	churn   []*docstore.Document
	queries []string
}

func benchSetup() {
	benchCorpus.once.Do(func() {
		g := workload.NewGenerator(1, 16, 16)
		corpus := g.GenCorpus(benchDocs, 1.1, int64(time.Hour))
		benchCorpus.docs = make([]*docstore.Document, len(corpus))
		for i, d := range corpus {
			benchCorpus.docs[i] = d.Doc
		}
		churn := g.GenCorpus(4096, 1.1, 0)
		benchCorpus.churn = make([]*docstore.Document, len(churn))
		for i, d := range churn {
			benchCorpus.churn[i] = d.Doc
			benchCorpus.churn[i].ID = fmt.Sprintf("churn%05d", i)
		}
		users := g.GenUsers(64)
		benchCorpus.queries = make([]string, 128)
		for i := range benchCorpus.queries {
			benchCorpus.queries[i], _, _ = g.QueryFor(users[i%len(users)])
		}
	})
}

// ingest routes one churn batch to its owning shards through the ordinary
// write path.
func (tc *testCluster) ingest(b *testing.B, batch []*docstore.Document) {
	parts := make(map[string][]*docstore.Document)
	for _, d := range batch {
		parts[tc.m.Locate(DocKey(d)).ID] = append(parts[tc.m.Locate(DocKey(d)).ID], d)
	}
	for id, p := range parts {
		if err := tc.stores[id].PutBatch(p); err != nil {
			b.Fatalf("ingest: %v", err)
		}
	}
}

func benchmarkScatter(b *testing.B, n int) {
	benchSetup()
	tc := startCluster(b, n, benchCorpus.docs)
	r := tc.router(b, Options{Telemetry: telemetry.NewRegistry()})
	queries := benchCorpus.queries
	for _, q := range queries { // warm the per-shard statistics caches
		if res := r.Ask(q, 10); res.Partial {
			b.Fatalf("partial warm-up ask: %v", res.Errors)
		}
	}

	lats := make([]time.Duration, 0, b.N)
	fanout, pruned, next := 0, 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%benchIngestEvery == benchIngestEvery-1 {
			// Fixed ingest schedule; the pool wraps into replacement
			// churn, which exercises the same overlay/freeze path.
			lo := next % len(benchCorpus.churn)
			hi := min(lo+benchIngestBatch, len(benchCorpus.churn))
			tc.ingest(b, benchCorpus.churn[lo:hi])
			next += benchIngestBatch
		}
		start := time.Now()
		res := r.Ask(queries[i%len(queries)], 10)
		lats = append(lats, time.Since(start))
		fanout += res.Fanout
		pruned += res.Pruned
		if res.Partial {
			b.Fatalf("partial ask: %v", res.Errors)
		}
	}
	b.StopTimer()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	b.ReportMetric(float64(lats[len(lats)/2].Nanoseconds()), "p50-ns/op")
	b.ReportMetric(float64(lats[len(lats)*99/100].Nanoseconds()), "p99-ns/op")
	b.ReportMetric(float64(fanout)/float64(b.N), "fanout/op")
	b.ReportMetric(float64(pruned)/float64(b.N), "pruned/op")
}

func BenchmarkScatterShards1(b *testing.B) { benchmarkScatter(b, 1) }
func BenchmarkScatterShards2(b *testing.B) { benchmarkScatter(b, 2) }
func BenchmarkScatterShards4(b *testing.B) { benchmarkScatter(b, 4) }
func BenchmarkScatterShards8(b *testing.B) { benchmarkScatter(b, 8) }

// The BenchmarkQueryRoundtripNShards pair is the wire-gate view of the
// scatter path (`make bench-wire`): pure warm-cache asks over real TCP
// with no ingest schedule, so ns/op and allocs/op isolate the framed
// request/response exchange (stats cached, per-shard Query + merge)
// rather than the freeze/overlay economics the Scatter family measures.
func benchmarkRoundtrip(b *testing.B, n int) {
	benchSetup()
	tc := startCluster(b, n, benchCorpus.docs)
	r := tc.router(b, Options{Telemetry: telemetry.NewRegistry()})
	queries := benchCorpus.queries
	for _, q := range queries { // warm the per-shard statistics caches
		if res := r.Ask(q, 10); res.Partial {
			b.Fatalf("partial warm-up ask: %v", res.Errors)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := r.Ask(queries[i%len(queries)], 10); res.Partial {
			b.Fatalf("partial ask: %v", res.Errors)
		}
	}
}

func BenchmarkQueryRoundtrip1Shards(b *testing.B) { benchmarkRoundtrip(b, 1) }
func BenchmarkQueryRoundtrip8Shards(b *testing.B) { benchmarkRoundtrip(b, 8) }
