package shard

import "repro/internal/wire"

// Streaming per-shard top-k merge. Each shard answers with its local top-k
// already in final order (score descending, document ID ascending — the
// docstore heap's total order), and the corpus partition is disjoint, so
// the global top-k is a k-way merge of the list heads: no re-scoring, no
// deduplication, and only the heads ever compared. Because every shard
// scored under the same GlobalStats floats, the merged ranking is
// bit-identical to the single-node SearchText over the union corpus.

// itemBetter is the docstore ranking order on wire items: score
// descending, document ID ascending on ties.
func itemBetter(a, b wire.ResultItem) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.DocID < b.DocID
}

// MergeTopK merges per-shard result lists (each sorted best-first) into
// the global top-k, preserving the docstore's total order. It is a
// streaming heads merge over a tiny heap of one cursor per non-empty list.
func MergeTopK(lists [][]wire.ResultItem, k int) []wire.ResultItem {
	if k <= 0 {
		return nil
	}
	// heap of (list, position) cursors ordered by the head item; tiny
	// (≤ shard count), so sift costs are trivial.
	type cur struct{ li, pos int }
	heads := make([]cur, 0, len(lists))
	head := func(c cur) wire.ResultItem { return lists[c.li][c.pos] }
	less := func(a, b cur) bool { return itemBetter(head(a), head(b)) }
	var siftDown func(i int)
	siftDown = func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			best := i
			if l < len(heads) && less(heads[l], heads[best]) {
				best = l
			}
			if r < len(heads) && less(heads[r], heads[best]) {
				best = r
			}
			if best == i {
				return
			}
			heads[i], heads[best] = heads[best], heads[i]
			i = best
		}
	}
	for li := range lists {
		if len(lists[li]) > 0 {
			heads = append(heads, cur{li: li})
		}
	}
	for i := len(heads)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	out := make([]wire.ResultItem, 0, k)
	for len(heads) > 0 && len(out) < k {
		best := heads[0]
		out = append(out, head(best))
		if best.pos+1 < len(lists[best.li]) {
			heads[0].pos++
		} else {
			heads[0] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		}
		siftDown(0)
	}
	return out
}
