package shard

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/docstore"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
	"repro/internal/workload"
)

// testCorpus generates a deterministic Zipfian corpus: 16 topics, so the
// topic-keyed placement spreads over every shard count under test.
func testCorpus(t testing.TB, n int) ([]*docstore.Document, *workload.Generator) {
	t.Helper()
	g := workload.NewGenerator(42, 16, 16)
	out := make([]*docstore.Document, 0, n)
	for _, d := range g.GenCorpus(n, 1.1, int64(time.Hour)) {
		out = append(out, d.Doc)
	}
	return out, g
}

// testQueries mixes the three shapes a scatter must get right: topical
// (concentrated on one shard), common (touching every shard), and mixed.
func testQueries(g *workload.Generator) []string {
	qs := []string{
		g.Common[0] + " " + g.Common[1] + " " + g.Common[2],
		"zzz no such term anywhere",
	}
	for i := 0; i < 6; i++ {
		v := g.Topics[i%len(g.Topics)].Vocab
		qs = append(qs,
			v[0]+" "+v[1],
			v[2]+" "+g.Common[(i+3)%len(g.Common)],
		)
	}
	return qs
}

func memShard(t testing.TB) *docstore.Store {
	t.Helper()
	st, err := docstore.Open(docstore.Options{ConceptDim: 16, Seed: 7})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// testCluster is n agora-node shard servers over real TCP plus the routing
// map pointing at them.
type testCluster struct {
	m       *Map
	stores  map[string]*docstore.Store
	servers map[string]*transport.Server
}

// startCluster partitions docs across n shards by DocKey and serves each
// partition from its own transport server on a loopback listener.
func startCluster(t testing.TB, n int, docs []*docstore.Document) *testCluster {
	t.Helper()
	tc := &testCluster{
		m:       NewUniform(ids(n)),
		stores:  make(map[string]*docstore.Store, n),
		servers: make(map[string]*transport.Server, n),
	}
	parts := make(map[string][]*docstore.Document, n)
	for _, d := range docs {
		id := tc.m.Locate(DocKey(d)).ID
		parts[id] = append(parts[id], d)
	}
	for _, mem := range tc.m.Members() {
		st := memShard(t)
		if err := st.PutBatch(parts[mem.ID]); err != nil {
			t.Fatalf("seed %s: %v", mem.ID, err)
		}
		tc.stores[mem.ID] = st
		tc.serve(t, mem.ID)
	}
	return tc
}

// serve starts (or restarts) the transport server for shard id and records
// its dial address in the map.
func (tc *testCluster) serve(t testing.TB, id string) {
	t.Helper()
	mem := tc.m.Locate(tc.memberRange(t, id))
	srv := transport.NewServer(id, tc.stores[id])
	srv.ShardStart, srv.ShardEnd = mem.Start, mem.End
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	tc.servers[id] = srv
	tc.m.SetAddrs(id, ln.Addr().String())
}

func (tc *testCluster) memberRange(t testing.TB, id string) uint64 {
	t.Helper()
	for _, mem := range tc.m.Members() {
		if mem.ID == id {
			return mem.Start
		}
	}
	t.Fatalf("no member %q", id)
	return 0
}

func (tc *testCluster) router(t testing.TB, opts Options) *Router {
	t.Helper()
	r, err := NewRouter(tc.m, opts)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// assertIdentical requires the scatter answer to be bit-identical to the
// monolithic hits: same documents, same order, same float64 scores.
func assertIdentical(t *testing.T, label string, got []wire.ResultItem, want []docstore.Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items, monolithic %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].DocID != want[i].Doc.ID || got[i].Score != want[i].Score {
			t.Fatalf("%s: pos %d = (%s, %v), monolithic (%s, %v)",
				label, i, got[i].DocID, got[i].Score, want[i].Doc.ID, want[i].Score)
		}
	}
}

// TestScatterMatchesMonolithic pins the tentpole invariant: at every shard
// count the merged scatter top-k is bit-identical to a single node holding
// the whole corpus (same docs, same order, same scores — the
// TestSnapshotMatchesMonolithic pattern applied across processes).
func TestScatterMatchesMonolithic(t *testing.T) {
	docs, g := testCorpus(t, 600)
	mono := memShard(t)
	if err := mono.PutBatch(docs); err != nil {
		t.Fatalf("seed mono: %v", err)
	}
	queries := testQueries(g)
	for _, n := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			reg := telemetry.NewRegistry()
			tc := startCluster(t, n, docs)
			r := tc.router(t, Options{Telemetry: reg})
			for _, q := range queries {
				res := r.Ask(q, 10)
				if res.Partial || len(res.Errors) > 0 {
					t.Fatalf("q=%q: partial=%v errors=%v", q, res.Partial, res.Errors)
				}
				if res.Fanout+res.Pruned != n {
					t.Fatalf("q=%q: fanout %d + pruned %d != %d shards", q, res.Fanout, res.Pruned, n)
				}
				assertIdentical(t, fmt.Sprintf("n=%d q=%q", n, q), res.Items, mono.SearchText(q, 10))
			}
			if got := reg.Histogram("shard.scatter.ask").Count(); got != uint64(len(queries)) {
				t.Fatalf("ask histogram count = %d, want %d", got, len(queries))
			}
			if n > 1 && reg.Counter("shard.scatter.pruned").Value() == 0 {
				t.Fatal("topical queries over multiple shards should prune at least once")
			}
			if reg.Counter("shard.scatter.partial").Value() != 0 {
				t.Fatal("partial counter moved on a healthy cluster")
			}
		})
	}
}

// TestScatterStatsTrackWrites pins the epoch-drift path: after writes land
// on a shard, the next ask must re-collect statistics and stay
// bit-identical to a monolithic store receiving the same writes.
func TestScatterStatsTrackWrites(t *testing.T) {
	docs, g := testCorpus(t, 300)
	mono := memShard(t)
	if err := mono.PutBatch(docs); err != nil {
		t.Fatalf("seed mono: %v", err)
	}
	tc := startCluster(t, 4, docs)
	r := tc.router(t, Options{Telemetry: telemetry.NewRegistry()})
	q := g.Topics[0].Vocab[0] + " " + g.Common[0]
	assertIdentical(t, "pre-write", r.Ask(q, 10).Items, mono.SearchText(q, 10))

	// New documents for topic 0: they land on exactly one shard, bumping
	// its epoch; the cached stats for that shard are now stale.
	extra := make([]*docstore.Document, 0, 20)
	for i := 0; i < 20; i++ {
		extra = append(extra, &docstore.Document{
			ID:     fmt.Sprintf("extra%03d", i),
			Text:   g.Topics[0].Vocab[0] + " " + g.Topics[0].Vocab[1],
			Topics: []string{g.Topics[0].Name},
		})
	}
	target := tc.stores[tc.m.Locate(Key(g.Topics[0].Name)).ID]
	if err := target.PutBatch(extra); err != nil {
		t.Fatalf("put extra: %v", err)
	}
	if err := mono.PutBatch(extra); err != nil {
		t.Fatalf("put extra mono: %v", err)
	}
	// First post-write ask answers under the cached (stale) statistics but
	// observes the epoch drift; the one after must be exact again.
	r.Ask(q, 10)
	assertIdentical(t, "post-write", r.Ask(q, 10).Items, mono.SearchText(q, 10))
}

// TestScatterPartialOnShardDeath kills one shard between asks: the router
// must answer from the survivors, flag the result partial, and attribute
// the failure to the dead shard (satellite 3).
func TestScatterPartialOnShardDeath(t *testing.T) {
	docs, g := testCorpus(t, 400)
	tc := startCluster(t, 4, docs)
	r := tc.router(t, Options{Timeout: 2 * time.Second, Telemetry: telemetry.NewRegistry()})
	q := g.Common[0] + " " + g.Common[1] + " " + g.Common[2] // touches every shard
	full := r.Ask(q, 10)
	if full.Partial || len(full.Items) == 0 {
		t.Fatalf("warm ask: partial=%v items=%d", full.Partial, len(full.Items))
	}

	// Kill the shard that contributed the top hit, so its absence is
	// observable in the merged list.
	var dead string
	for _, mem := range tc.m.Members() {
		if mem.Contains(DocKey(&docstore.Document{ID: full.Items[0].DocID, Topics: topicsOf(docs, full.Items[0].DocID)})) {
			dead = mem.ID
		}
	}
	if dead == "" {
		t.Fatal("could not locate top hit's shard")
	}
	tc.servers[dead].Close()

	res := r.Ask(q, 10)
	if !res.Partial {
		t.Fatal("ask after shard death not marked partial")
	}
	if err := res.Errors[dead]; err == nil {
		t.Fatalf("dead shard %s not attributed; errors=%v", dead, res.Errors)
	}
	if len(res.Errors) != 1 {
		t.Fatalf("errors beyond the dead shard: %v", res.Errors)
	}
	// The survivors answered under the same global statistics, so the
	// full answer filtered to live shards must be a prefix of the partial
	// answer — same docs, same scores, same order.
	deadMem := tc.m.Locate(tc.memberRange(t, dead))
	var wantPrefix []wire.ResultItem
	for _, it := range full.Items {
		if !deadMem.Contains(DocKey(&docstore.Document{ID: it.DocID, Topics: topicsOf(docs, it.DocID)})) {
			wantPrefix = append(wantPrefix, it)
		}
	}
	if len(res.Items) < len(wantPrefix) {
		t.Fatalf("partial items %d < surviving full items %d", len(res.Items), len(wantPrefix))
	}
	for i, want := range wantPrefix {
		if res.Items[i].DocID != want.DocID || res.Items[i].Score != want.Score {
			t.Fatalf("pos %d = (%s, %v), want surviving (%s, %v)",
				i, res.Items[i].DocID, res.Items[i].Score, want.DocID, want.Score)
		}
	}
	for _, it := range res.Items {
		if deadMem.Contains(DocKey(&docstore.Document{ID: it.DocID, Topics: topicsOf(docs, it.DocID)})) {
			t.Fatalf("dead shard's document %s in partial result", it.DocID)
		}
	}
}

func topicsOf(docs []*docstore.Document, id string) []string {
	for _, d := range docs {
		if d.ID == id {
			return d.Topics
		}
	}
	return nil
}

// TestRouterChurn races concurrent asks against live writes and a
// mid-flight shard death; run under -race it pins the router's locking
// (satellite 3's churn stress).
func TestRouterChurn(t *testing.T) {
	docs, g := testCorpus(t, 300)
	tc := startCluster(t, 4, docs)
	r := tc.router(t, Options{Timeout: 2 * time.Second, Telemetry: telemetry.NewRegistry()})
	queries := testQueries(g)

	// Pre-generate churn documents: the workload generator's rng is not
	// goroutine-safe.
	churn := make([]*docstore.Document, 60)
	for i := range churn {
		tp := g.Topics[i%len(g.Topics)]
		churn[i] = &docstore.Document{
			ID:     fmt.Sprintf("churn%03d", i),
			Text:   tp.Vocab[i%len(tp.Vocab)] + " " + g.Common[i%len(g.Common)],
			Topics: []string{tp.Name},
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := queries[(w+i)%len(queries)]
				res := r.Ask(q, 10)
				for j := 1; j < len(res.Items); j++ {
					if itemBetter(res.Items[j], res.Items[j-1]) {
						t.Errorf("unordered merge under churn: %v", res.Items)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, d := range churn {
			st := tc.stores[tc.m.Locate(DocKey(d)).ID]
			if err := st.Put(d); err != nil {
				t.Errorf("churn put: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		tc.servers["shard3"].Close() // mid-flight death: asks must degrade, not hang
	}()
	wg.Wait()
}

// TestHandoffRebalance grows a 2-shard cluster to 3: Map.Join emits the
// handoff, a Mover streams the moved range between stores, and afterwards
// every document sits in exactly the shard owning its key — with the
// scatter answer still bit-identical to the monolithic store.
func TestHandoffRebalance(t *testing.T) {
	docs, g := testCorpus(t, 400)
	mono := memShard(t)
	if err := mono.PutBatch(docs); err != nil {
		t.Fatalf("seed mono: %v", err)
	}
	tc := startCluster(t, 2, docs)
	hs := tc.m.Join("shard2")
	if len(hs) != 1 {
		t.Fatalf("join handoffs = %d", len(hs))
	}
	tc.stores["shard2"] = memShard(t)
	mv := &Mover{Stores: tc.stores}
	moved, err := mv.ApplyAll(hs)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if moved == 0 {
		t.Fatal("handoff moved nothing; corpus should straddle the split")
	}

	// Placement invariant: every store holds exactly its range, and no
	// document was lost or duplicated.
	total := 0
	for _, mem := range tc.m.Members() {
		tc.stores[mem.ID].All(func(d *docstore.Document) bool {
			total++
			if k := DocKey(d); !mem.Contains(k) {
				t.Errorf("doc %s (key %d) on %s [%d,%d]", d.ID, k, mem.ID, mem.Start, mem.End)
				return false
			}
			return true
		})
	}
	if total != len(docs) {
		t.Fatalf("%d docs after rebalance, want %d", total, len(docs))
	}

	tc.serve(t, "shard2")
	r := tc.router(t, Options{Telemetry: telemetry.NewRegistry()})
	for _, q := range testQueries(g)[:6] {
		res := r.Ask(q, 10)
		if res.Partial {
			t.Fatalf("q=%q partial after rebalance: %v", q, res.Errors)
		}
		assertIdentical(t, "post-rebalance "+q, res.Items, mono.SearchText(q, 10))
	}
}
