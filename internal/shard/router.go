package shard

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/feature"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Router runs scatter-gather asks over a shard map. The dispatch pipeline,
// per ask:
//
//  1. Statistics: collect per-shard per-term (df, maxRatio) via the
//     TermStats RPC, cached per shard and invalidated on epoch drift. The
//     sums give the corpus-wide document count and frequencies every shard
//     must score under for the merge to be bit-identical to a single node.
//  2. Planning: each shard gets a score upper bound — Σ over query terms
//     present on the shard of qw·idf·maxRatio. Shards bounding to zero
//     hold no matching document and are pruned outright.
//  3. Probe: when the best shard's bound dominates the runner-up's by
//     probeDominance, it is asked alone first; its answers seed the merge
//     threshold θ so the remaining bound checks have teeth.
//  4. Scatter: bounded workers (the PR-2 fan-out shape) dispatch the
//     surviving shards best-bound-first, re-checking θ before each RPC;
//     a shard whose bound can no longer reach θ is dropped without a
//     round-trip. Slow primaries get one hedged retry against a replica.
//  5. Merge: per-shard top-k lists stream through MergeTopK.
//
// A dead shard yields a partial result (Partial flag + per-shard error),
// never a failed ask.
type Router struct {
	timeout    time.Duration
	hedgeDelay time.Duration
	workers    int
	dominance  float64
	reg        *telemetry.Registry
	tel        routerTel

	shards []*routerShard

	// wg tracks hedge/backup attempt goroutines; Close joins them so no
	// attempt outlives the router's connections.
	wg     sync.WaitGroup
	closed bool
	mu     sync.Mutex
}

// routerShard pairs a map member with its live connections (parallel to
// Addrs) and the cached term statistics for the shard's current epoch.
type routerShard struct {
	Member
	clients []*transport.Client

	mu    sync.Mutex
	total uint64
	epoch uint64
	stats map[string]termStat
}

// installStats folds one TermStats response into the shard's cache,
// flushing entries from an older epoch first. Length-mismatched responses
// (a malformed peer) are dropped rather than partially installed.
func (s *routerShard) installStats(terms []string, resp wire.TermStatsResp) {
	if len(resp.DF) != len(terms) || len(resp.MaxRatio) != len(terms) {
		return
	}
	s.mu.Lock()
	if resp.Epoch != s.epoch {
		clear(s.stats) // new epoch: everything cached is stale
	}
	s.total = resp.Total
	s.epoch = resp.Epoch
	for i, t := range terms {
		s.stats[t] = termStat{df: resp.DF[i], maxRatio: resp.MaxRatio[i]}
	}
	s.mu.Unlock()
}

type termStat struct {
	df       uint64
	maxRatio float64
}

// routerTel caches the scatter path's instruments; the zero value no-ops.
type routerTel struct {
	fanout, pruned, partial, hedges, drift *telemetry.Counter
	askLat, mergeLat                       *telemetry.Histogram
}

// Options configures a Router. Zero values select the defaults noted.
type Options struct {
	ClientID   string        // consumer id for handshakes (default "shard-router")
	Timeout    time.Duration // per-attempt RPC deadline (default 2s)
	HedgeDelay time.Duration // wait before hedging to a replica; <0 disables (default 25ms)
	Workers    int           // concurrent shard dispatches (default 4)
	Dominance  float64       // probe when best bound ≥ Dominance × runner-up (default 1.25; <0 disables)
	Telemetry  *telemetry.Registry
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.ClientID == "" {
		out.ClientID = "shard-router"
	}
	if out.Timeout <= 0 {
		out.Timeout = 2 * time.Second
	}
	if out.HedgeDelay == 0 {
		out.HedgeDelay = 25 * time.Millisecond
	}
	if out.Workers <= 0 {
		out.Workers = 4
	}
	if out.Dominance == 0 {
		out.Dominance = 1.25
	}
	return out
}

// NewRouter dials every member of m (each listed address) and returns a
// router over the resulting connections. Dial failures fail construction:
// a router must start from a fully connected view, while shards dying
// later degrade asks to partial results instead.
func NewRouter(m *Map, opts Options) (*Router, error) {
	opts = opts.withDefaults()
	r := &Router{
		timeout:    opts.Timeout,
		hedgeDelay: opts.HedgeDelay,
		workers:    opts.Workers,
		dominance:  opts.Dominance,
		reg:        opts.Telemetry,
	}
	if reg := opts.Telemetry; reg != nil {
		r.tel = routerTel{
			fanout:   reg.Counter("shard.scatter.fanout"),
			pruned:   reg.Counter("shard.scatter.pruned"),
			partial:  reg.Counter("shard.scatter.partial"),
			hedges:   reg.Counter("shard.scatter.hedges"),
			drift:    reg.Counter("shard.scatter.epoch.drift"),
			askLat:   reg.Histogram("shard.scatter.ask"),
			mergeLat: reg.Histogram("shard.scatter.merge_ns"),
		}
	}
	for _, mem := range m.Members() {
		rs := &routerShard{Member: mem, stats: make(map[string]termStat)}
		if len(mem.Addrs) == 0 {
			r.closeLocked()
			return nil, fmt.Errorf("shard: member %q has no address", mem.ID)
		}
		for _, addr := range mem.Addrs {
			c, err := transport.DialWithTelemetry(addr, opts.ClientID, opts.Timeout, opts.Telemetry)
			if err != nil {
				r.closeLocked()
				return nil, fmt.Errorf("shard: dial %s (%s): %w", mem.ID, addr, err)
			}
			rs.clients = append(rs.clients, c)
		}
		r.shards = append(r.shards, rs)
	}
	return r, nil
}

// Close tears down every connection and joins any in-flight hedge
// attempts.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closeLocked()
}

func (r *Router) closeLocked() error {
	if r.closed {
		return nil
	}
	r.closed = true
	var err error
	for _, s := range r.shards {
		for _, c := range s.clients {
			if cerr := c.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	r.wg.Wait()
	return err
}

// Result is one scatter-gather answer.
type Result struct {
	Items []wire.ResultItem
	// Partial is set when at least one un-pruned shard failed to answer:
	// Items then covers only the shards that did. Errors attributes each
	// failure to its shard ID.
	Partial bool
	Errors  map[string]error
	Fanout  int // shards actually asked over the wire
	Pruned  int // shards eliminated by the bound checks
	Hedges  int // backup attempts launched
	TraceID uint64
}

// Ask runs an untraced scatter-gather text query.
func (r *Router) Ask(query string, k int) Result {
	return r.AskTraced(query, k, telemetry.TraceContext{})
}

// plannedShard is one shard's dispatch entry: its score upper bound under
// the current global statistics.
type plannedShard struct {
	rs *routerShard
	ub float64
}

// boundSlack pads θ-comparisons the same way the docstore's block-max walk
// pads its own (see docstore boundSlack): IEEE rounding in the bound
// arithmetic must never prune a shard whose exactly-scored document would
// have entered the merged top-k.
const boundSlack = 1 + 1e-9

// AskTraced is Ask continuing the caller's trace: the scatter gets one
// span per shard asked, and each shard server continues the trace in its
// own process, so /debug/trace stitches the whole cross-shard ask into one
// tree.
func (r *Router) AskTraced(query string, k int, tc telemetry.TraceContext) Result {
	start := now()
	tr := r.reg.StartTraceFrom(tc, "scatter", query)
	defer func() {
		r.tel.askLat.ObserveExemplar(since(start), tr.ID())
		tr.Finish()
	}()
	res := Result{TraceID: uint64(tr.ID()), Errors: map[string]error{}}

	terms, qns := canonicalTerms(query)
	if len(terms) == 0 || k <= 0 {
		return res
	}

	// Phase 1: per-shard statistics (cached; one RPC per shard on miss).
	sp := tr.Span("stats", fmt.Sprintf("%d terms", len(terms)))
	r.ensureStats(terms, &res)
	sp.End()

	// Phase 2: global weights and per-shard bounds. Shards whose stats RPC
	// failed are out of the plan (already attributed in res.Errors); shards
	// bounding to zero are provably hitless and pruned for free.
	gs := r.globalStats(terms, res.Errors)
	plan := r.plan(terms, qns, gs, &res)
	zeroPruned := len(r.shards) - len(plan) - len(res.Errors)

	// Phase 3+4: probe-then-scatter dispatch.
	ms := &mergeState{k: k, errors: res.Errors}
	r.dispatch(plan, query, k, gs, ms, tr)

	// Phase 5: streaming merge.
	mstart := now()
	res.Items = MergeTopK(ms.lists, k)
	r.tel.mergeLat.Observe(since(mstart))

	res.Partial = res.Partial || ms.partial
	res.Fanout = ms.fanout
	res.Pruned = ms.pruned + zeroPruned
	res.Hedges = ms.hedges
	r.tel.fanout.Add(uint64(res.Fanout))
	r.tel.pruned.Add(uint64(res.Pruned))
	r.tel.hedges.Add(uint64(res.Hedges))
	if res.Partial {
		r.tel.partial.Inc()
	}
	return res
}

// canonicalTerms tokenizes query into distinct terms in first-appearance
// order (the docstore's canonical accumulation order) with their query
// frequencies.
func canonicalTerms(query string) (terms []string, qns []int) {
	for _, t := range feature.Tokenize(query) {
		found := false
		for i := range terms {
			if terms[i] == t {
				qns[i]++
				found = true
				break
			}
		}
		if !found {
			terms = append(terms, t)
			qns = append(qns, 1)
		}
	}
	return terms, qns
}

// ensureStats fills every live shard's term-stat cache for terms, issuing
// one parallel TermStats RPC per shard that misses any. A shard whose RPC
// fails is recorded in res.Errors and marked partial: its documents cannot
// be scored under exact global statistics this ask.
func (r *Router) ensureStats(terms []string, res *Result) {
	// Stage first, wait second: TermStatsAsync puts every missing shard's
	// request on the wire back to back — per connection the frames ride one
	// coalesced batch — and only then does anyone block, so the stats
	// round-trips fully overlap instead of depending on goroutine
	// scheduling to get the requests out.
	type staged struct {
		s    *routerShard
		wait func() (wire.TermStatsResp, error)
	}
	var pending []staged
	for _, s := range r.shards {
		s.mu.Lock()
		missing := false
		for _, t := range terms {
			if _, ok := s.stats[t]; !ok {
				missing = true
				break
			}
		}
		s.mu.Unlock()
		if !missing {
			continue
		}
		pending = append(pending, staged{s: s, wait: s.clients[0].TermStatsAsync(terms, r.timeout)})
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, p := range pending {
		wg.Add(1)
		go func(p staged) {
			defer wg.Done()
			resp, err := p.wait()
			if err != nil && len(p.s.clients) > 1 {
				// Primary failed: one blocking retry against the replica.
				resp, err = p.s.clients[1].TermStats(terms, r.timeout)
			}
			if err != nil {
				mu.Lock()
				res.Errors[p.s.ID] = fmt.Errorf("term stats: %w", err)
				res.Partial = true
				mu.Unlock()
				return
			}
			p.s.installStats(terms, resp)
		}(p)
	}
	wg.Wait()
}

// globalQuery bundles the corpus-wide figures one ask scores under.
type globalQuery struct {
	total uint64
	terms []string
	df    []uint64
	idf   []float64
}

// globalStats sums the per-shard statistics into the corpus-wide document
// count and frequencies (shards that failed stats collection are excluded
// — the ask is already marked partial).
func (r *Router) globalStats(terms []string, errs map[string]error) globalQuery {
	gq := globalQuery{terms: terms, df: make([]uint64, len(terms)), idf: make([]float64, len(terms))}
	for _, s := range r.shards {
		if _, dead := errs[s.ID]; dead {
			continue
		}
		s.mu.Lock()
		gq.total += s.total
		for i, t := range terms {
			gq.df[i] += s.stats[t].df
		}
		s.mu.Unlock()
	}
	for i := range terms {
		if gq.df[i] > 0 {
			gq.idf[i] = math.Log(1 + float64(gq.total)/float64(1+gq.df[i]))
		}
	}
	return gq
}

// queryWeight is the docstore's query-side term weight: (1+ln qn)·idf.
func queryWeight(qn int, idf float64) float64 {
	if idf == 0 {
		return 0
	}
	return (1 + math.Log(float64(qn))) * idf
}

// plan computes each live shard's score upper bound and returns the
// shards that can contribute at all, best bound first. A shard where no
// query term has a posting bounds to zero — provably hitless — and is
// pruned without a round-trip.
func (r *Router) plan(terms []string, qns []int, gs globalQuery, res *Result) []plannedShard {
	var plan []plannedShard
	for _, s := range r.shards {
		if _, dead := res.Errors[s.ID]; dead {
			continue
		}
		ub := 0.0
		s.mu.Lock()
		for i, t := range terms {
			st := s.stats[t]
			if st.df == 0 {
				continue
			}
			ub += queryWeight(qns[i], gs.idf[i]) * gs.idf[i] * st.maxRatio
		}
		s.mu.Unlock()
		if ub <= 0 {
			continue
		}
		plan = append(plan, plannedShard{rs: s, ub: ub})
	}
	// Best bound first: descending ub, shard ID tiebreak for determinism.
	for i := 1; i < len(plan); i++ {
		for j := i; j > 0 && (plan[j].ub > plan[j-1].ub ||
			(plan[j].ub == plan[j-1].ub && plan[j].rs.ID < plan[j-1].rs.ID)); j-- {
			plan[j], plan[j-1] = plan[j-1], plan[j]
		}
	}
	return plan
}

// mergeState accumulates per-shard answers and the running threshold θ
// (the k-th best score seen so far — a monotone lower bound on the final
// k-th best, which is what makes pre-dispatch pruning safe).
type mergeState struct {
	mu      sync.Mutex
	k       int
	lists   [][]wire.ResultItem
	top     []float64 // min-heap of the best ≤k scores
	errors  map[string]error
	partial bool
	fanout  int
	pruned  int
	hedges  int
}

func (ms *mergeState) addList(items []wire.ResultItem) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.lists = append(ms.lists, items)
	for _, it := range items {
		if len(ms.top) < ms.k {
			ms.top = append(ms.top, it.Score)
			for i := len(ms.top) - 1; i > 0 && ms.top[i] < ms.top[(i-1)/2]; i = (i - 1) / 2 {
				ms.top[i], ms.top[(i-1)/2] = ms.top[(i-1)/2], ms.top[i]
			}
		} else if it.Score > ms.top[0] {
			ms.top[0] = it.Score
			i := 0
			for {
				l, r := 2*i+1, 2*i+2
				small := i
				if l < len(ms.top) && ms.top[l] < ms.top[small] {
					small = l
				}
				if r < len(ms.top) && ms.top[r] < ms.top[small] {
					small = r
				}
				if small == i {
					break
				}
				ms.top[i], ms.top[small] = ms.top[small], ms.top[i]
			}
		}
	}
}

// theta returns the pruning threshold: the k-th best score seen, valid
// only once k scores have arrived.
func (ms *mergeState) theta() (float64, bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if len(ms.top) < ms.k {
		return 0, false
	}
	return ms.top[0], true
}

func (ms *mergeState) fail(id string, err error) {
	ms.mu.Lock()
	ms.errors[id] = err
	ms.partial = true
	ms.mu.Unlock()
}

// dispatch runs the probe-then-scatter loop over the planned shards.
func (r *Router) dispatch(plan []plannedShard, query string, k int, gs globalQuery, ms *mergeState, tr *telemetry.Trace) {
	next := 0
	if r.dominance > 0 && len(plan) >= 2 && plan[0].ub >= r.dominance*plan[1].ub {
		// Probe: the best-bounded shard dominates — ask it alone first so
		// its answers set θ before anything else is dispatched. On the
		// topical asks the workload skews toward, this one round-trip
		// often prunes every other shard.
		r.runShard(plan[0], query, k, gs, ms, tr)
		next = 1
	}
	var wg sync.WaitGroup
	var idx sync.Mutex
	workers := min(r.workers, len(plan)-next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx.Lock()
				if next >= len(plan) {
					idx.Unlock()
					return
				}
				ps := plan[next]
				next++
				idx.Unlock()
				if theta, ok := ms.theta(); ok && ps.ub*boundSlack < theta {
					// Even this shard's most optimistic document loses to
					// the current k-th best — and θ only grows.
					ms.mu.Lock()
					ms.pruned++
					ms.mu.Unlock()
					continue
				}
				r.runShard(ps, query, k, gs, ms, tr)
			}
		}()
	}
	wg.Wait()
}

// runShard performs one shard's (possibly hedged) RPC and folds the
// outcome into ms.
func (r *Router) runShard(ps plannedShard, query string, k int, gs globalQuery, ms *mergeState, tr *telemetry.Trace) {
	s := ps.rs
	sp := tr.Span("shard", s.ID)
	res, hedged, err := r.attempt(s, query, k, gs, sp.Context())
	if hedged {
		ms.mu.Lock()
		ms.hedges++
		ms.mu.Unlock()
	}
	if err != nil {
		sp.Fail(err)
		sp.End()
		ms.fail(s.ID, err)
		return
	}
	sp.End()
	ms.mu.Lock()
	ms.fanout++
	ms.mu.Unlock()
	s.mu.Lock()
	if res.Epoch != 0 && res.Epoch != s.epoch {
		// The shard answered from a newer snapshot than the cached stats:
		// flush so the next ask re-collects (its ensureStats round stages
		// every missing shard's request on one coalesced batch). This
		// ask's figures are a consistent global view of the older epoch.
		// No speculative background refresh: under sustained ingest every
		// answer drifts and consecutive asks rarely share terms, so a
		// drift-triggered refetch is an extra stats RPC per ask that the
		// next ask cannot usually use — pure overhead on a busy host.
		clear(s.stats)
		r.tel.drift.Inc()
	}
	s.mu.Unlock()
	ms.addList(res.Items)
}

// attempt sends the query to the shard's primary, hedging one backup to a
// replica when the primary is slow (or retrying immediately when it fails
// fast and a replica exists). Attempt goroutines are tracked in r.wg —
// Close joins them — and both attempts are bounded by the per-attempt RPC
// timeout.
func (r *Router) attempt(s *routerShard, query string, k int, gs globalQuery, tc telemetry.TraceContext) (wire.QueryResult, bool, error) {
	ask := func(c *transport.Client) (wire.QueryResult, error) {
		return c.QueryGlobal(query, k, r.timeout, tc, gs.total, gs.terms, gs.df)
	}
	if len(s.clients) < 2 || r.hedgeDelay < 0 {
		res, err := ask(s.clients[0])
		return res, false, err
	}
	type out struct {
		res wire.QueryResult
		err error
	}
	ch := make(chan out, 2)
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		res, err := ask(s.clients[0])
		ch <- out{res, err}
	}()
	select {
	case first := <-ch:
		if first.err == nil {
			return first.res, false, nil
		}
		// Fast failure: retry once on the replica (not a hedge — the
		// primary already answered with an error).
		res, err := ask(s.clients[1])
		return res, true, err
	case <-after(r.hedgeDelay):
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			res, err := ask(s.clients[1])
			ch <- out{res, err}
		}()
		first := <-ch
		if first.err != nil {
			first = <-ch // loser may still win; bounded by the RPC timeout
		}
		return first.res, true, first.err
	}
}
