package collab

import (
	"errors"
	"sort"
	"sync"

	"repro/internal/feature"
	"repro/internal/profile"
	"repro/internal/query"
)

// Session is a live collaborative exploration: members, their action
// threads, and a fused shared workspace every member sees.
type Session struct {
	mu        sync.RWMutex
	id        string
	members   map[string]*profile.Profile
	workspace *ORSet
	threads   map[string]*Thread
}

// WorkspaceEntry is the payload stored per fused result.
type WorkspaceEntry struct {
	DocID   string
	Score   float64
	Source  string
	AddedBy string
	Concept feature.Vector
}

// Thread is one member's sequence of exploration steps.
type Thread struct {
	Owner string
	Steps []Step
}

// Step is one action in a thread: the query asked and what it found.
type Step struct {
	Query   *query.Query
	Concept feature.Vector
	Found   []string // doc ids
}

// Session errors.
var (
	ErrNotMember = errors.New("collab: user is not a session member")
	ErrNoThread  = errors.New("collab: user has no thread")
)

// NewSession opens a session with the given id.
func NewSession(id string) *Session {
	return &Session{
		id:        id,
		members:   make(map[string]*profile.Profile),
		workspace: NewORSet(id),
		threads:   make(map[string]*Thread),
	}
}

// Join adds a member with their profile.
func (s *Session) Join(p *profile.Profile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.members[p.UserID] = p.Clone()
	if _, ok := s.threads[p.UserID]; !ok {
		s.threads[p.UserID] = &Thread{Owner: p.UserID}
	}
}

// Members returns member ids, sorted.
func (s *Session) Members() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.members))
	for m := range s.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Profile returns a member's profile copy, or nil.
func (s *Session) Profile(user string) *profile.Profile {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if p, ok := s.members[user]; ok {
		return p.Clone()
	}
	return nil
}

// RecordStep appends a step to a member's thread and fuses its results into
// the workspace. Everyone "sees everyone's results at the same time".
func (s *Session) RecordStep(user string, st Step, results []query.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.members[user]; !ok {
		return ErrNotMember
	}
	th := s.threads[user]
	for _, r := range results {
		st.Found = append(st.Found, r.Doc.ID)
		s.workspace.Add(r.Doc.ID, WorkspaceEntry{
			DocID:   r.Doc.ID,
			Score:   r.Score,
			Source:  r.Source,
			AddedBy: user,
			Concept: r.Doc.Concept.Clone(),
		})
	}
	th.Steps = append(th.Steps, st)
	return nil
}

// Discard removes an item from the shared workspace (any member may prune).
func (s *Session) Discard(user, docID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.members[user]; !ok {
		return ErrNotMember
	}
	s.workspace.Remove(docID)
	return nil
}

// Workspace returns the fused entries, best score first.
func (s *Session) Workspace() []WorkspaceEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	items := s.workspace.Items()
	out := make([]WorkspaceEntry, 0, len(items))
	for _, id := range items {
		if p, ok := s.workspace.Get(id); ok {
			out = append(out, p.(WorkspaceEntry))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].DocID < out[j].DocID
	})
	return out
}

// Thread returns a copy of a member's thread.
func (s *Session) Thread(user string) (*Thread, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	th, ok := s.threads[user]
	if !ok {
		return nil, ErrNoThread
	}
	cp := &Thread{Owner: th.Owner, Steps: append([]Step(nil), th.Steps...)}
	return cp, nil
}

// TakeOver lets `user` continue `from`'s thread with their own profile: it
// returns the last step of the source thread re-personalized — same query,
// but the concept vector blended toward the new user's interests. The
// caller executes it and records the result under `user`.
func (s *Session) TakeOver(user, from string) (Step, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	me, ok := s.members[user]
	if !ok {
		return Step{}, ErrNotMember
	}
	th, ok := s.threads[from]
	if !ok || len(th.Steps) == 0 {
		return Step{}, ErrNoThread
	}
	last := th.Steps[len(th.Steps)-1]
	cp := *last.Query
	st := Step{Query: &cp}
	if len(last.Concept) > 0 {
		st.Concept = feature.Blend(last.Concept, me.Interests, 0.5)
	} else {
		st.Concept = me.Interests.Clone()
	}
	return st, nil
}

// MergeWorkspace folds another session replica's workspace in (for
// cross-institution sessions syncing over the network).
func (s *Session) MergeWorkspace(other *Session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workspace.Merge(other.workspace)
}
