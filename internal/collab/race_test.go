package collab

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/docstore"
	"repro/internal/feature"
	"repro/internal/profile"
	"repro/internal/query"
)

// The collaboration layer had never run under -race before this suite:
// sessions are documented as safe for concurrent member activity ("see
// everyone's results at the same time"), so exercise every public entry
// point from racing goroutines. Run with `make race`.

func raceProfile(user string) *profile.Profile {
	return &profile.Profile{
		UserID:    user,
		Interests: feature.Vector{1, 0, 0},
	}
}

func raceResult(id string, score float64) query.Result {
	return query.Result{
		Doc:    &docstore.Document{ID: id, Concept: feature.Vector{0, 1, 0}},
		Score:  score,
		Source: "race-src",
	}
}

func TestSessionConcurrentMembers(t *testing.T) {
	s := NewSession("race")
	const members = 8
	const steps = 50
	for m := 0; m < members; m++ {
		s.Join(raceProfile(fmt.Sprintf("u%d", m)))
	}
	var wg sync.WaitGroup
	for m := 0; m < members; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", m)
			for i := 0; i < steps; i++ {
				st := Step{Query: &query.Query{Text: "q"}, Concept: feature.Vector{1, 0, 0}}
				res := []query.Result{raceResult(fmt.Sprintf("d%d-%d", m, i), float64(i))}
				if err := s.RecordStep(user, st, res); err != nil {
					t.Errorf("RecordStep(%s): %v", user, err)
					return
				}
				// Interleave every read path with the writes.
				s.Workspace()
				s.Members()
				s.Profile(user)
				if _, err := s.Thread(user); err != nil {
					t.Errorf("Thread(%s): %v", user, err)
					return
				}
				if i%7 == 0 {
					_ = s.Discard(user, fmt.Sprintf("d%d-%d", m, i))
				}
				if m > 0 {
					if _, err := s.TakeOver(user, fmt.Sprintf("u%d", m-1)); err != nil && err != ErrNoThread {
						t.Errorf("TakeOver(%s): %v", user, err)
						return
					}
				}
			}
		}(m)
	}
	wg.Wait()
	if got := len(s.Members()); got != members {
		t.Fatalf("Members() = %d, want %d", got, members)
	}
}

// TestSessionConcurrentMerge races two replica sessions recording steps
// while merging each other's workspaces both ways — the cross-institution
// sync path.
func TestSessionConcurrentMerge(t *testing.T) {
	a := NewSession("replica-a")
	b := NewSession("replica-b")
	a.Join(raceProfile("alice"))
	b.Join(raceProfile("bob"))
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			st := Step{Query: &query.Query{Text: "a"}}
			_ = a.RecordStep("alice", st, []query.Result{raceResult(fmt.Sprintf("a%d", i), 1)})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			st := Step{Query: &query.Query{Text: "b"}}
			_ = b.RecordStep("bob", st, []query.Result{raceResult(fmt.Sprintf("b%d", i), 1)})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			a.MergeWorkspace(b)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			b.MergeWorkspace(a)
		}
	}()
	wg.Wait()
	// After a final two-way sync both replicas converge (CRDT join).
	a.MergeWorkspace(b)
	b.MergeWorkspace(a)
	wa, wb := a.Workspace(), b.Workspace()
	if len(wa) != len(wb) {
		t.Fatalf("replicas diverged after sync: %d vs %d entries", len(wa), len(wb))
	}
}

func TestORSetConcurrentOps(t *testing.T) {
	x := NewORSet("x")
	y := NewORSet("y")
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			x.Add(fmt.Sprintf("i%d", i%17), i)
			if i%5 == 0 {
				x.Remove(fmt.Sprintf("i%d", i%17))
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			y.Add(fmt.Sprintf("i%d", i%13), i)
			y.Merge(x)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			x.Items()
			x.Contains("i3")
			x.Get("i5")
			_ = x.Len()
		}
	}()
	wg.Wait()
	// Idempotence under a final converge.
	y.Merge(x)
	before := y.Len()
	y.Merge(x)
	if y.Len() != before {
		t.Fatalf("Merge is not idempotent under concurrency: %d -> %d", before, y.Len())
	}
}
