// Package collab implements the paper's Collaboration pillar: small groups
// of users with a common goal explore the agora concurrently, "see
// everyone's results at the same time, potentially fusing some of them into
// richer collections, and one may pick up on someone else's thread of
// actions and continue exploration based on one's own profile". It also
// provides the multiple-query optimization the paper says collaboration
// raises: shared subexpressions across members' concurrent queries execute
// once.
package collab

import (
	"fmt"
	"sort"
	"sync"
)

// ORSet is an observed-remove set CRDT keyed by item id: concurrent add and
// remove of the same item resolves to add-wins unless the remove observed
// the add's tag. It is the shared workspace's replication primitive — each
// collaborator holds a replica and merges freely.
type ORSet struct {
	mu sync.RWMutex
	// adds: item -> tag -> payload; tombstones: observed-removed tags.
	adds       map[string]map[string]any
	tombstones map[string]map[string]bool
	replica    string
	counter    uint64
}

// NewORSet creates a replica with the given id (must be unique among
// collaborators for tag uniqueness).
func NewORSet(replica string) *ORSet {
	return &ORSet{
		adds:       make(map[string]map[string]any),
		tombstones: make(map[string]map[string]bool),
		replica:    replica,
	}
}

// Add inserts (or refreshes) an item with a payload; returns the new tag.
func (s *ORSet) Add(item string, payload any) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counter++
	tag := fmt.Sprintf("%s#%d", s.replica, s.counter)
	m, ok := s.adds[item]
	if !ok {
		m = make(map[string]any)
		s.adds[item] = m
	}
	m[tag] = payload
	return tag
}

// Remove deletes the item as currently observed: all live tags are
// tombstoned. Concurrent adds elsewhere (tags unseen here) survive a later
// merge — the add-wins guarantee.
func (s *ORSet) Remove(item string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tags, ok := s.adds[item]
	if !ok {
		return
	}
	tomb, ok := s.tombstones[item]
	if !ok {
		tomb = make(map[string]bool)
		s.tombstones[item] = tomb
	}
	for tag := range tags {
		tomb[tag] = true
	}
}

// Contains reports whether item is live (has at least one untombstoned tag).
func (s *ORSet) Contains(item string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.liveTag(item) != ""
}

// liveTag returns any live tag for item ("" if none). Caller holds lock.
func (s *ORSet) liveTag(item string) string {
	tomb := s.tombstones[item]
	// Deterministic: pick smallest live tag.
	var tags []string
	for tag := range s.adds[item] {
		if !tomb[tag] {
			tags = append(tags, tag)
		}
	}
	if len(tags) == 0 {
		return ""
	}
	sort.Strings(tags)
	return tags[0]
}

// Get returns the payload of a live tag for item (the smallest tag for
// determinism), with ok=false if the item is absent.
func (s *ORSet) Get(item string) (any, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tag := s.liveTag(item)
	if tag == "" {
		return nil, false
	}
	return s.adds[item][tag], true
}

// Items returns the live item ids, sorted.
func (s *ORSet) Items() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for item := range s.adds {
		if s.liveTag(item) != "" {
			out = append(out, item)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live items.
func (s *ORSet) Len() int { return len(s.Items()) }

// Merge folds another replica's state into this one (idempotent,
// commutative, associative — the CRDT laws the property tests check).
func (s *ORSet) Merge(o *ORSet) {
	// Take a consistent snapshot of o first to avoid lock-order issues.
	o.mu.RLock()
	oAdds := make(map[string]map[string]any, len(o.adds))
	for item, tags := range o.adds {
		m := make(map[string]any, len(tags))
		for tag, p := range tags {
			m[tag] = p
		}
		oAdds[item] = m
	}
	oTombs := make(map[string]map[string]bool, len(o.tombstones))
	for item, tags := range o.tombstones {
		m := make(map[string]bool, len(tags))
		for tag := range tags {
			m[tag] = true
		}
		oTombs[item] = m
	}
	o.mu.RUnlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	for item, tags := range oAdds {
		m, ok := s.adds[item]
		if !ok {
			m = make(map[string]any, len(tags))
			s.adds[item] = m
		}
		for tag, p := range tags {
			if _, exists := m[tag]; !exists {
				m[tag] = p
			}
		}
	}
	for item, tags := range oTombs {
		m, ok := s.tombstones[item]
		if !ok {
			m = make(map[string]bool, len(tags))
			s.tombstones[item] = m
		}
		for tag := range tags {
			m[tag] = true
		}
	}
}

// Clone returns an independent copy of the replica under a new replica id.
func (s *ORSet) Clone(replica string) *ORSet {
	out := NewORSet(replica)
	out.Merge(s)
	return out
}
