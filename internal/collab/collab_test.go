package collab

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/docstore"
	"repro/internal/feature"
	"repro/internal/profile"
	"repro/internal/query"
)

func TestORSetAddRemoveContains(t *testing.T) {
	s := NewORSet("a")
	s.Add("x", 1)
	if !s.Contains("x") || s.Len() != 1 {
		t.Fatal("add failed")
	}
	s.Remove("x")
	if s.Contains("x") || s.Len() != 0 {
		t.Fatal("remove failed")
	}
	// Re-add after remove works (new tag).
	s.Add("x", 2)
	if !s.Contains("x") {
		t.Fatal("re-add failed")
	}
	if v, ok := s.Get("x"); !ok || v.(int) != 2 {
		t.Fatalf("get = %v %v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing item found")
	}
}

func TestORSetAddWins(t *testing.T) {
	// a and b both know x; a removes x while b concurrently re-adds it.
	a := NewORSet("a")
	a.Add("x", "orig")
	b := a.Clone("b")
	a.Remove("x")
	b.Add("x", "fresh")
	a.Merge(b)
	b.Merge(a)
	if !a.Contains("x") || !b.Contains("x") {
		t.Fatal("concurrent add must win over observed-remove")
	}
	// But a remove that observed all adds sticks after merge.
	b.Remove("x")
	a.Merge(b)
	if a.Contains("x") {
		t.Fatal("observed remove must propagate")
	}
}

func TestORSetMergeCommutesAndIdempotent(t *testing.T) {
	f := func(ops []uint8) bool {
		a, b := NewORSet("a"), NewORSet("b")
		for i, op := range ops {
			item := fmt.Sprintf("i%d", op%8)
			switch {
			case op%3 == 0:
				a.Add(item, i)
			case op%3 == 1:
				b.Add(item, i)
			default:
				if op%2 == 0 {
					a.Remove(item)
				} else {
					b.Remove(item)
				}
			}
		}
		ab := a.Clone("ab")
		ab.Merge(b)
		ba := b.Clone("ba")
		ba.Merge(a)
		if !reflect.DeepEqual(ab.Items(), ba.Items()) {
			return false
		}
		// Idempotence.
		again := ab.Clone("again")
		again.Merge(b)
		again.Merge(a)
		return reflect.DeepEqual(again.Items(), ab.Items())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestORSetMergeAssociative(t *testing.T) {
	a, b, c := NewORSet("a"), NewORSet("b"), NewORSet("c")
	a.Add("x", 1)
	b.Add("y", 2)
	b.Remove("y")
	c.Add("y", 3)
	c.Add("z", 4)
	// (a ∪ b) ∪ c
	ab := a.Clone("t1")
	ab.Merge(b)
	ab.Merge(c)
	// a ∪ (b ∪ c)
	bc := b.Clone("t2")
	bc.Merge(c)
	a2 := a.Clone("t3")
	a2.Merge(bc)
	if !reflect.DeepEqual(ab.Items(), a2.Items()) {
		t.Fatalf("associativity: %v vs %v", ab.Items(), a2.Items())
	}
}

func mkProfile(user string, hot int) *profile.Profile {
	p := profile.New(user, 8)
	p.Interests[hot] = 1
	return p
}

func res(id string, score float64, hot int) query.Result {
	v := make(feature.Vector, 8)
	if hot >= 0 {
		v[hot] = 1
	}
	return query.Result{Doc: &docstore.Document{ID: id, Concept: v}, Score: score, Source: "s"}
}

func TestSessionWorkspaceFusion(t *testing.T) {
	s := NewSession("proj")
	s.Join(mkProfile("iris", 1))
	s.Join(mkProfile("jason", 3))
	if got := s.Members(); !reflect.DeepEqual(got, []string{"iris", "jason"}) {
		t.Fatalf("members = %v", got)
	}
	q := query.MustParse(`FIND documents WHERE text ~ "folk"`)
	err := s.RecordStep("iris", Step{Query: q}, []query.Result{res("d1", 0.9, 1), res("d2", 0.5, 1)})
	if err != nil {
		t.Fatal(err)
	}
	err = s.RecordStep("jason", Step{Query: q}, []query.Result{res("d2", 0.7, 3), res("d3", 0.6, 3)})
	if err != nil {
		t.Fatal(err)
	}
	ws := s.Workspace()
	if len(ws) != 3 {
		t.Fatalf("workspace = %d items", len(ws))
	}
	if ws[0].DocID != "d1" || ws[0].AddedBy != "iris" {
		t.Fatalf("best = %+v", ws[0])
	}
	// Discard prunes for everyone.
	if err := s.Discard("jason", "d1"); err != nil {
		t.Fatal(err)
	}
	if len(s.Workspace()) != 2 {
		t.Fatal("discard failed")
	}
	// Non-members rejected.
	if err := s.RecordStep("zoe", Step{Query: q}, nil); !errors.Is(err, ErrNotMember) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Discard("zoe", "d2"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("err = %v", err)
	}
}

func TestThreadsAndTakeOver(t *testing.T) {
	s := NewSession("proj")
	s.Join(mkProfile("iris", 1))
	s.Join(mkProfile("jason", 3))
	q := query.MustParse(`FIND documents WHERE text ~ "jewelry"`)
	irisConcept := make(feature.Vector, 8)
	irisConcept[1] = 1
	_ = s.RecordStep("iris", Step{Query: q, Concept: irisConcept}, []query.Result{res("d1", 0.9, 1)})

	th, err := s.Thread("iris")
	if err != nil || len(th.Steps) != 1 || th.Steps[0].Found[0] != "d1" {
		t.Fatalf("thread = %+v err %v", th, err)
	}

	st, err := s.TakeOver("jason", "iris")
	if err != nil {
		t.Fatal(err)
	}
	if st.Query.Text != "jewelry" {
		t.Fatalf("takeover query = %+v", st.Query)
	}
	// Blended concept should mix iris's dimension 1 with jason's 3.
	if st.Concept[1] <= 0 || st.Concept[3] <= 0 {
		t.Fatalf("takeover concept = %v", st.Concept)
	}
	// Mutating the taken-over query must not affect iris's thread.
	st.Query.Text = "mutated"
	th2, _ := s.Thread("iris")
	if th2.Steps[0].Query.Text != "jewelry" {
		t.Fatal("takeover aliased the original query")
	}
	if _, err := s.TakeOver("zoe", "iris"); !errors.Is(err, ErrNotMember) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.TakeOver("iris", "jason"); !errors.Is(err, ErrNoThread) {
		t.Fatalf("empty-thread takeover err = %v", err)
	}
}

func TestMergeWorkspaceAcrossReplicas(t *testing.T) {
	a := NewSession("a")
	b := NewSession("b")
	a.Join(mkProfile("iris", 1))
	b.Join(mkProfile("jason", 3))
	q := query.MustParse(`FIND documents`)
	_ = a.RecordStep("iris", Step{Query: q}, []query.Result{res("d1", 0.9, 1)})
	_ = b.RecordStep("jason", Step{Query: q}, []query.Result{res("d2", 0.8, 3)})
	a.MergeWorkspace(b)
	if len(a.Workspace()) != 2 {
		t.Fatalf("merged workspace = %d", len(a.Workspace()))
	}
}

func TestRunSharedDedupes(t *testing.T) {
	q1 := query.MustParse(`FIND documents WHERE text ~ "folk jewelry" TOP 5`)
	q2 := query.MustParse(`FIND documents WHERE text ~ "folk jewelry" TOP 5`)
	q3 := query.MustParse(`FIND documents WHERE text ~ "something else" TOP 5`)
	execCount := 0
	exec := func(q *query.Query, _ feature.Vector) []query.Result {
		execCount++
		return []query.Result{res("d1", 0.9, 1), res("d2", 0.8, 3), res("d3", 0.7, 5)}
	}
	queries := []MemberQuery{
		{User: "iris", Q: q1, Gamma: 0.5},
		{User: "jason", Q: q2, Gamma: 0.5},
		{User: "zoe", Q: q3, Gamma: 0},
	}
	profiles := map[string]*profile.Profile{
		"iris":  mkProfile("iris", 1),
		"jason": mkProfile("jason", 3),
		"zoe":   mkProfile("zoe", 5),
	}
	personalize := func(user string, gamma float64, r query.Result) float64 {
		return profiles[user].PersonalScore(r.Score, r.Doc.Concept, gamma)
	}
	out, stats := RunShared(queries, exec, personalize)
	if execCount != 2 {
		t.Fatalf("source executions = %d, want 2", execCount)
	}
	if stats.Total != 3 || stats.Distinct != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if ws := stats.WorkSaved(); ws < 0.3 || ws > 0.34 {
		t.Fatalf("work saved = %v", ws)
	}
	// Personalization must differentiate iris and jason on the same raw set.
	if out[0][0].Doc.ID != "d1" {
		t.Fatalf("iris top = %v", out[0][0].Doc.ID)
	}
	if out[1][0].Doc.ID != "d2" {
		t.Fatalf("jason top = %v (should prefer concept 3)", out[1][0].Doc.ID)
	}
}

func TestRunSharedDistinctConcepts(t *testing.T) {
	q := query.MustParse(`FIND documents WHERE similar > 0.5 TOP 3`)
	c1 := make(feature.Vector, 4)
	c1[0] = 1
	c2 := make(feature.Vector, 4)
	c2[2] = 1
	execCount := 0
	exec := func(*query.Query, feature.Vector) []query.Result {
		execCount++
		return nil
	}
	_, stats := RunShared([]MemberQuery{
		{User: "a", Q: q, Concept: c1},
		{User: "b", Q: q, Concept: c2},
	}, exec, nil)
	if execCount != 2 || stats.Distinct != 2 {
		t.Fatalf("different concepts must not share: %d %+v", execCount, stats)
	}
}

func TestRunSharedEmpty(t *testing.T) {
	out, stats := RunShared(nil, func(*query.Query, feature.Vector) []query.Result { return nil }, nil)
	if len(out) != 0 || stats.Total != 0 || stats.WorkSaved() != 0 {
		t.Fatalf("empty shared run: %v %+v", out, stats)
	}
}
