package collab

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/feature"
	"repro/internal/query"
)

// Multiple-query optimization across collaborators. "Collaboration also
// brings up several variations of the multiple query optimization problem
// where different user profiles are used for different queries" (§7): the
// expensive source-side part of members' queries is often shared, while the
// personalized part (per-profile re-scoring) differs. SharedExecutor
// deduplicates the shared part and applies per-member personalization to the
// fanned-out results.

// MemberQuery pairs a member with their (personalized) query.
type MemberQuery struct {
	User    string
	Q       *query.Query
	Concept feature.Vector
	// Gamma is the member's personalization strength for re-scoring.
	Gamma float64
}

// ShareStats reports work saved by shared execution.
type ShareStats struct {
	Total    int // member queries
	Distinct int // distinct source executions
}

// WorkSaved is the fraction of source executions avoided.
func (s ShareStats) WorkSaved() float64 {
	if s.Total == 0 {
		return 0
	}
	return 1 - float64(s.Distinct)/float64(s.Total)
}

// canonicalKey identifies the shared (source-side) part of a query: kind,
// text, topics, sources, freshness, and a bucketed concept signature. Two
// member queries with equal keys hit sources identically.
func canonicalKey(mq MemberQuery) string {
	var sb strings.Builder
	q := mq.Q
	if q.Kind != nil {
		fmt.Fprintf(&sb, "k%d|", int(*q.Kind))
	}
	sb.WriteString(q.Text)
	sb.WriteByte('|')
	topics := append([]string(nil), q.Topics...)
	sort.Strings(topics)
	sb.WriteString(strings.Join(topics, ","))
	sb.WriteByte('|')
	srcs := append([]string(nil), q.Sources...)
	sort.Strings(srcs)
	sb.WriteString(strings.Join(srcs, ","))
	fmt.Fprintf(&sb, "|s%.2f|f%d|t%d|", q.SimThreshold, int64(q.MaxAge), q.TopK)
	// Concept signature: sign pattern bucketed; close-enough concepts share.
	for _, v := range mq.Concept {
		switch {
		case v > 0.25:
			sb.WriteByte('+')
		case v < -0.25:
			sb.WriteByte('-')
		default:
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// SourceExec executes the shared part of a query against the sources and
// returns raw results. Implementations are provided by the core package (or
// tests).
type SourceExec func(q *query.Query, concept feature.Vector) []query.Result

// PersonalScore re-scores a raw result for one member. Implementations
// typically wrap profile.PersonalScore.
type PersonalScore func(user string, gamma float64, r query.Result) float64

// RunShared executes the member queries with common-subexpression sharing:
// one source execution per distinct canonical key, then per-member
// personalized re-ranking of the shared raw results. The returned slice is
// aligned with the input (one result list per member query).
func RunShared(queries []MemberQuery, exec SourceExec, personalize PersonalScore) ([][]query.Result, ShareStats) {
	type group struct {
		raw     []query.Result
		members []int
	}
	groups := make(map[string]*group)
	order := make([]string, 0, len(queries))
	for i, mq := range queries {
		key := canonicalKey(mq)
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		g.members = append(g.members, i)
	}
	stats := ShareStats{Total: len(queries), Distinct: len(groups)}
	out := make([][]query.Result, len(queries))
	for _, key := range order {
		g := groups[key]
		rep := queries[g.members[0]]
		g.raw = exec(rep.Q, rep.Concept)
		for _, idx := range g.members {
			mq := queries[idx]
			rs := make([]query.Result, len(g.raw))
			copy(rs, g.raw)
			if personalize != nil {
				for i := range rs {
					rs[i].Score = personalize(mq.User, mq.Gamma, rs[i])
				}
				sort.Slice(rs, func(a, b int) bool {
					if rs[a].Score != rs[b].Score {
						return rs[a].Score > rs[b].Score
					}
					return rs[a].Doc.ID < rs[b].Doc.ID
				})
			}
			if len(rs) > mq.Q.TopK && mq.Q.TopK > 0 {
				rs = rs[:mq.Q.TopK]
			}
			out[idx] = rs
		}
	}
	return out, stats
}
