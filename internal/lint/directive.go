package lint

import (
	"go/token"
	"strings"
)

// allowPrefix is the suppression directive comment prefix. Full form:
//
//	//lint:allow <analyzer> <reason>
const allowPrefix = "//lint:allow"

// collectDirectives scans a parsed file's comments for //lint:allow
// directives and fills in the file's allow table. A directive covers its
// own line and the following line, so both placements work:
//
//	time.Sleep(d) //lint:allow wallclock LatencyScale real-sleep path
//
//	//lint:allow wallclock LatencyScale real-sleep path
//	time.Sleep(d)
//
// A directive naming an analyzer that does not exist suppresses nothing
// and is recorded separately: a typo like //lint:allow lockfre would
// otherwise silently leave the author believing the finding is covered.
func collectDirectives(fset *token.FileSet, f *File) {
	f.allows = map[int][]string{}
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, allowPrefix)
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				// Analyzer name or reason missing: every exemption must
				// say why it exists.
				f.malformed = append(f.malformed, c.Pos())
				continue
			}
			name := fields[0]
			if !knownAnalyzer(name) {
				f.unknown = append(f.unknown, unknownDirective{pos: c.Pos(), name: name})
				continue
			}
			line := fset.Position(c.Pos()).Line
			f.allows[line] = append(f.allows[line], name)
			f.allows[line+1] = append(f.allows[line+1], name)
		}
	}
}

// allowableAnalyzers are the names a directive may suppress. Kept as an
// explicit list (rather than derived from Analyzers) to avoid an
// initialization cycle; TestAnalyzerNameList pins it to the suite.
var allowableAnalyzers = []string{
	"wallclock", "nilguard", "goroutine", "checkederr",
	"lockfree", "postings", "atomics", "hotalloc", "snapfreeze",
	"wirealloc",
}

func knownAnalyzer(name string) bool {
	for _, a := range allowableAnalyzers {
		if a == name {
			return true
		}
	}
	return false
}

// directiveAnalyzer reports defective //lint:allow directives: one
// missing the analyzer name or the reason, and one naming an analyzer
// that does not exist (which would silently suppress nothing). Either
// way the allowlist stays auditable.
var directiveAnalyzer = &Analyzer{
	Name:         "directive",
	Doc:          "//lint:allow directives must name a known analyzer and give a reason",
	IncludeTests: true,
	Run: func(p *Package, f *File, report ReportFunc) {
		for _, pos := range f.malformed {
			report(pos, "malformed directive: want `%s <analyzer> <reason>` with analyzer one of %s",
				allowPrefix, analyzerNames())
		}
		for _, u := range f.unknown {
			report(u.pos, "unknown analyzer %q in directive: it suppresses nothing; analyzer must be one of %s",
				u.name, analyzerNames())
		}
	},
}

func analyzerNames() string {
	return strings.Join(allowableAnalyzers, "|")
}
