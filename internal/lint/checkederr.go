package lint

import "go/ast"

// durabilityPackages carry the write paths whose errors must never be
// dropped: the docstore WAL (a swallowed append/flush/sync error means
// acknowledged-but-lost writes) and the transport framing layer (a
// swallowed write or deadline error strands the peer).
var durabilityPackages = []string{
	"internal/docstore",
	"internal/transport",
}

// watchedMethods are method names (selector calls only, matched
// case-sensitively) whose error result must be consumed. Lowercase
// entries are the docstore wal internals; they cannot collide with the
// builtins of the same spelling because builtins are plain ident calls.
var watchedMethods = map[string]bool{
	// docstore WAL / compaction
	"append": true, "flush": true, "sync": true, "close": true,
	"Compact": true,
	// transport write path
	"send": true, "WriteFrame": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

// watchedFuncs are package-level function names (ident calls) with the
// same contract.
var watchedFuncs = map[string]bool{
	"truncateWAL": true,
}

// checkederrAnalyzer enforces contract (4), error hygiene: on the
// durability and write paths above, calls to the watched functions must
// not discard their error — neither as a bare statement, nor deferred,
// nor assigned entirely to blanks.
var checkederrAnalyzer = &Analyzer{
	Name: "checkederr",
	Doc:  "no discarded errors on docstore WAL/compact and transport write paths",
	Run: func(p *Package, f *File, report ReportFunc) {
		if !underAny(p.Path, durabilityPackages) {
			return
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = st.Call
			case *ast.GoStmt:
				call = st.Call
			case *ast.AssignStmt:
				if len(st.Rhs) == 1 && allBlank(st.Lhs) {
					call, _ = st.Rhs[0].(*ast.CallExpr)
				}
			default:
				return true
			}
			if call == nil || !watchedCall(call) {
				return true
			}
			report(call.Pos(), "error result of %s is discarded on a durability/write path; check it, return it, or restructure so the failure is visible", callDisplay(call))
			return true
		})
	},
}

func watchedCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return watchedMethods[fun.Sel.Name]
	case *ast.Ident:
		return watchedFuncs[fun.Name]
	}
	return false
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		if !isIdentNamed(e, "_") {
			return false
		}
	}
	return len(exprs) > 0
}

// callDisplay renders a short name for the call as written at the site,
// e.g. "s.log.append" or "truncateWAL".
func callDisplay(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if base := exprDisplay(fun.X); base != "" {
			return base + "." + fun.Sel.Name
		}
		return "(...)." + fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "call"
}

// exprDisplay renders plain ident/selector chains ("" for anything else).
func exprDisplay(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := exprDisplay(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	}
	return ""
}
