// Fixture for the checkederr analyzer: loaded with the package path
// forced to "internal/docstore". Type-checked like the real tree.
package checkederr

type wal struct{}

func (l *wal) append(op uint8, p []byte) error { return nil }
func (l *wal) flush() error                    { return nil }
func (l *wal) sync() error                     { return nil }
func (l *wal) close() error                    { return nil }

func truncateWAL(path string, size int64) error { return nil }

type store struct{ log *wal }

func (s *store) Compact() error { return nil }

func bad(s *store) {
	s.log.append(1, nil) // want "error result of s.log.append is discarded"
	_ = s.log.flush()    // want "error result of s.log.flush is discarded"
	defer s.log.close()  // want "error result of s.log.close is discarded"
	truncateWAL("w", 0)  // want "error result of truncateWAL is discarded"
	go s.Compact()       // want "error result of s.Compact is discarded"
}

func good(s *store) error {
	if err := s.log.append(1, nil); err != nil {
		return err
	}
	if err := truncateWAL("w", 0); err != nil {
		return err
	}
	err := s.log.sync()
	return err
}

func goodReturn(s *store) error {
	return s.log.flush()
}

func allowed(s *store) {
	_ = s.log.flush() //lint:allow checkederr fixture: flush error surfaced by the following sync
}

func unwatched(ch chan int, buf []byte) {
	close(ch)            // builtin close: ident call, not the wal method
	buf = append(buf, 1) // builtin append
	_ = buf
}
