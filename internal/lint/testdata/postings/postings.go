// Fixture for the postings analyzer. Loaded as package path
// internal/docstore and type-checked like the real tree.
package docstore

import "sync"

type ovPost struct {
	id string
	tf int
}

type invIndex struct {
	postings map[string]map[string]int
}

type overlay struct {
	termPost map[string][]ovPost
}

type Store struct {
	inv *invIndex
	ov  *overlay
}

type Hit struct{}

var scratchPool sync.Pool

// SearchText is a root: everything it (transitively) calls is on the
// query path and must stay off the postings maps. It releases its
// scratch through sync.Pool.Put — under the old name-based call graph
// that resolved to Store.Put and needed a hard-coded barrier list to
// keep the write side out; the typed graph tells the two methods apart
// with no special casing.
func (s *Store) SearchText(q string, k int) []Hit {
	s.rank(q)
	scratchPool.Put(&q)
	return nil
}

// rank is reachable from SearchText only through the call graph — the
// analyzer must chase the resolved method, not just the Search* decls
// themselves.
func (s *Store) rank(q string) float64 {
	total := 0.0
	for id, tf := range s.inv.postings[q] { // want "Store.rank (reachable from Store.SearchText) ranges over postings"
		_ = id
		total += float64(tf)
	}
	for t, p := range s.inv.postings { // want "ranges over postings"
		_, _ = t, p
	}
	for _, e := range s.ov.termPost[q] { // want "ranges over termPost"
		total += float64(e.tf)
	}
	return total
}

// A local variable that happens to be named postings is fine: matching
// is by resolved field object, not by name.
func (s *Store) SearchLocal(q string) int {
	postings := map[string]int{q: 1}
	n := 0
	for k := range postings {
		n += len(k)
	}
	return n
}

// overlayPostings is the sanctioned accessor shape: ranging over a call
// result is fine — the accessor returns a sorted COW slice, not a map.
func (s *Store) overlayPostings(t string) []int { return nil }

func (s *Store) SearchHybrid(q string) []Hit {
	for _, tf := range s.overlayPostings(q) {
		_ = tf
	}
	return nil
}

// Put is a write entry point ranging the postings map legally — and the
// regression proof that the barrier list stays gone: SearchText's
// scratch release is spelled .Put, yet nothing reachable from Search*
// lands here.
func (s *Store) Put(d *Hit) error {
	for t, p := range s.inv.postings {
		_, _ = t, p
	}
	return nil
}

// removeDoc is a writer: it is not reachable from any Search* root, so
// its map iteration is legal (freeze and compaction rebuild these maps).
func (s *Store) removeDoc(id string) {
	for t, p := range s.inv.postings {
		delete(p, id)
		_ = t
	}
	for t := range s.ov.termPost {
		_ = t
	}
}
