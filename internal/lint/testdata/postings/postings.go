// Fixture for the postings analyzer. Parsed as package path
// internal/docstore; syntax only, never compiled.
package docstore

type invIndex struct {
	postings map[string]map[string]int
}

type overlay struct {
	termPost map[string][]struct {
		id string
		tf int
	}
}

type Store struct {
	inv *invIndex
	ov  *overlay
}

type Hit struct{}

// SearchText is a root: everything it (transitively) calls is on the query
// path and must stay off the postings maps. The scratch release at the end
// calls sync.Pool.Put — by bare name that is also Store.Put, and the
// analyzer must stop there rather than drag the write side into the
// closure.
func (s *Store) SearchText(q string, k int) []Hit {
	s.rank(q)
	scratchPool.Put(q)
	return nil
}

// rank is reachable from SearchText only through the call graph — the
// analyzer must chase the name, not just the Search* decls themselves.
func (s *Store) rank(q string) float64 {
	total := 0.0
	for id, tf := range s.inv.postings[q] { // want "rank (reachable from Search*) ranges over postings"
		_ = id
		total += float64(tf)
	}
	for t, p := range s.inv.postings { // want "ranges over postings"
		_, _ = t, p
	}
	for _, e := range s.ov.termPost[q] { // want "ranges over termPost"
		total += float64(e.tf)
	}
	return total
}

// overlayPostings is the sanctioned accessor shape: ranging over a call
// result is fine — the accessor returns a sorted COW slice, not a map.
func (s *Store) overlayPostings(t string) []int { return nil }

func (s *Store) SearchHybrid(q string) []Hit {
	for _, tf := range s.overlayPostings(q) {
		_ = tf
	}
	return nil
}

// Put is a write entry point: a barrier for the closure, so its postings
// iteration is legal even though SearchText contains a call spelled .Put.
func (s *Store) Put(d *Hit) error {
	for t, p := range s.inv.postings {
		_, _ = t, p
	}
	return nil
}

// removeDoc is a writer: it is not reachable from any Search* root, so its
// map iteration is legal (freeze and compaction rebuild these maps).
func (s *Store) removeDoc(id string) {
	for t, p := range s.inv.postings {
		delete(p, id)
		_ = t
	}
	for t := range s.ov.termPost {
		_ = t
	}
}
