// Fixture for the atomics analyzer. The analyzer is module-wide (no
// package scoping); the fixture is type-checked like the real tree.
package atomics

import "sync/atomic"

// Rule 1: a plain field that is accessed through sync/atomic anywhere is
// an atomic field everywhere.

type counter struct {
	n    int64
	hits [4]uint64
	name string
}

// incr holds the sanctioning uses: these classify n and hits as atomic.
func (c *counter) incr() {
	atomic.AddInt64(&c.n, 1)
	atomic.AddUint64(&c.hits[0], 1)
}

func (c *counter) loadOK() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) racyRead() int64 {
	return c.n // want "counter.n is read plainly"
}

func (c *counter) racyWrite() {
	c.n = 0       // want "counter.n is written plainly"
	c.n++         // want "counter.n is written plainly"
	c.hits[1] = 2 // want "counter.hits is written plainly"
}

// Fields never touched by sync/atomic stay free.
func (c *counter) fine() string {
	return c.name
}

// A reasoned allow covers a deliberate single-owner initialization.
func newCounter() *counter {
	c := &counter{}
	c.n = 7 //lint:allow atomics fixture: not yet published, single-owner init
	return c
}

// Rule 2: atomic.X-typed fields must only be used through their methods
// (or have their address taken); copying or reassigning the value drops
// the synchronization.

type gauge struct {
	v     atomic.Int64
	cells [3]atomic.Uint64
	ptr   *atomic.Int64
}

func (g *gauge) ok() uint64 {
	g.v.Add(1)
	g.cells[2].Store(5)
	p := &g.v
	p.Add(1)
	_ = g.ptr // a *pointer* to an atomic may be copied freely
	return g.cells[0].Load()
}

func (g *gauge) copyOut() int64 {
	v := g.v // want "gauge.v has atomic type"
	return v.Load()
}

func (g *gauge) overwrite() {
	g.v = atomic.Int64{} // want "gauge.v has atomic type"
}

func (g *gauge) rangeCopy() uint64 {
	var total uint64
	for _, cell := range g.cells { // want "gauge.cells has atomic type"
		total += cell.Load()
	}
	for i := range g.cells { // key-only iteration copies nothing: fine
		_ = i
	}
	return total
}
