// Fixture for the hotalloc analyzer. Loaded as package path
// internal/docstore and type-checked like the real tree.
package docstore

import "sync"

type Hit struct{ id string }

// searchScratch mirrors the pooled scratch: append may grow its slices
// freely, the growth is amortized into the pool.
type searchScratch struct {
	heap   []Hit
	keyBuf []byte
}

var scratchPool = sync.Pool{New: func() any { return &searchScratch{} }}

type Store struct {
	cache map[string][]Hit
}

// SearchText is a root: everything reachable from it is hot.
func (s *Store) SearchText(q string, k int) []Hit {
	sc := scratchPool.Get().(*searchScratch)
	sc.keyBuf = appendKey(sc.keyBuf[:0], q)
	if hits, ok := s.cache[string(sc.keyBuf)]; ok { // compiler-elided map-read key: fine
		return hits
	}
	hits := s.scoreAll(q, sc)
	scratchPool.Put(sc)
	return hits
}

// appendKey appends to its parameter: the caller owns the backing array
// (pooled), so growth is amortized — allowed.
func appendKey(dst []byte, q string) []byte {
	return append(dst, q...)
}

// scoreAll is reachable from SearchText only through the call graph:
// every allocating construct below is a finding.
func (s *Store) scoreAll(q string, sc *searchScratch) []Hit {
	ids := make([]string, 0, 8) // want "allocates with make"
	_ = ids
	extra := new(Hit) // want "allocates with new"
	_ = extra
	seed := []Hit{{id: q}} // want "allocates a slice literal"
	_ = seed
	idx := map[string]int{} // want "allocates a map literal"
	_ = idx
	h := &Hit{id: q} // want "allocates with &composite"
	_ = h
	key := string(sc.keyBuf) // want "converts"
	_ = key
	raw := []byte(q) // want "converts"
	_ = raw
	var out []Hit
	out = append(out, Hit{id: q})         // want "appends to a slice"
	sc.heap = append(sc.heap, Hit{id: q}) // pooled scratch: allowed
	cur := cursor{pos: 1}                 // value composite literal: frame-allocated, fine
	_ = cur
	return out
}

type cursor struct{ pos int }

// The documented cold-path allocation carries a reasoned allow.
func (s *Store) SearchTextExhaustive(q string) []Hit {
	hits := make([]Hit, 0, 4) //lint:allow hotalloc fixture: the one documented cold-query allocation
	return hits
}

// Writers may allocate freely: Put is not reachable from the Search
// roots, so none of this fires.
func (s *Store) Put(h Hit) {
	if s.cache == nil {
		s.cache = make(map[string][]Hit)
	}
	s.cache[h.id] = append(s.cache[h.id], h)
}
