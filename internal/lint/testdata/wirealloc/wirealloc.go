// Fixture for the wirealloc analyzer. Loaded as package path
// internal/wire and type-checked like the real tree.
package wire

type Kind uint8

// Msg mirrors a hot wire message: AppendTo is a root, everything it
// reaches is held to the zero-alloc bar.
type Msg struct {
	ID   string
	Tags []string
}

// AppendTo appends into the caller-owned buffer: the canonical clean
// shape nothing below may regress from.
func (m *Msg) AppendTo(dst []byte) []byte {
	dst = appendString(dst, m.ID)
	return m.encodeTags(dst)
}

// appendString appends to its parameter: the caller owns the backing
// array, so growth is the caller's budget — allowed.
func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// encodeTags is reachable from Msg.AppendTo only through the call graph:
// every allocating construct below is a finding.
func (m *Msg) encodeTags(dst []byte) []byte {
	scratch := make([]byte, 0, 8) // want "allocates with make"
	_ = scratch
	hdr := new(Msg) // want "allocates with new"
	_ = hdr
	parts := []string{m.ID} // want "allocates a slice literal"
	_ = parts
	seen := map[string]bool{} // want "allocates a map literal"
	_ = seen
	p := &Msg{ID: m.ID} // want "allocates with &composite"
	_ = p
	key := []byte(m.ID) // want "converts"
	_ = key
	var out []byte
	out = append(out, m.ID...) // want "appends to a slice"
	_ = out
	for _, t := range m.Tags {
		dst = appendString(dst, t)
	}
	return dst
}

// BeginFrame is a free-function root: header bytes append into the
// caller's staging buffer, clean.
func BeginFrame(dst []byte, kind Kind) ([]byte, int) {
	off := len(dst)
	dst = append(dst, 0xA6, 0x0A, 1, byte(kind))
	return dst, off
}

// FrameReader mirrors the pooled streaming reader: Next is a root whose
// one documented pool-miss growth carries a reasoned allow.
type FrameReader struct {
	payload []byte
}

func (fr *FrameReader) Next(length int) []byte {
	if cap(fr.payload) < length {
		fr.payload = make([]byte, length) //lint:allow wirealloc fixture: documented pool miss, amortized to the high-water frame size
	}
	return fr.payload[:length]
}

// Marshal is the legacy allocating wrapper: it calls into a root but is
// not itself reachable from one, so its make never fires.
func (m *Msg) Marshal() []byte {
	return m.AppendTo(make([]byte, 0, 64))
}
