// Fixture for the goroutine analyzer: loaded with the package path
// forced to "internal/transport" and type-checked like the real tree.
package goroutine

import "sync"

func leaked(work func()) {
	go work() // want "go statement is not join-tracked"
}

func leakedClosure(work func()) {
	go func() { // want "go statement is not join-tracked"
		work()
	}()
}

func waitGroupTracked(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func waiterElsewhereInFunc(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go work() // the enclosing function Waits below: tracked
	wg.Wait()
}

func channelJoined(work func() int) int {
	ch := make(chan int)
	go func() { ch <- work() }()
	return <-ch
}

func closeJoined(work func()) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done
}

// nested checks that a go inside a non-spawned closure is charged to that
// closure, not to the outer function.
func nested(work func()) func() {
	return func() {
		go work() // want "go statement is not join-tracked"
	}
}

func allowed(loop func()) {
	go loop() //lint:allow goroutine fixture: joined through struct state elsewhere
}

// notAJoin has a method that merely spells Wait: under the old
// name-based matcher this counted as join evidence; the typed analyzer
// resolves it and sees it is not (*sync.WaitGroup).Wait.
type notAJoin struct{}

func (notAJoin) Wait() {}

func fakeWait(work func()) {
	var j notAJoin
	go work() // want "go statement is not join-tracked"
	j.Wait()
}
