// Fixture for the lockfree analyzer. Loaded as package path
// internal/docstore and type-checked like the real tree.
package docstore

import "sync"

type Store struct {
	mu sync.Mutex
}

type Hit struct{}

// Read methods must not touch the store mutex.

func (s *Store) SearchText(q string, k int) []Hit {
	s.mu.Lock()         // want "Store.SearchText references Store.mu"
	defer s.mu.Unlock() // want "Store.SearchText references Store.mu"
	return nil
}

func (s *Store) Stats() int {
	s.mu.Lock()   // want "Store.Stats references Store.mu"
	s.mu.Unlock() // want "Store.Stats references Store.mu"
	return 0
}

func (st *Store) Get(id string) *Hit {
	defer st.mu.Unlock() // want "Store.Get references Store.mu"
	st.mu.Lock()         // want "Store.Get references Store.mu"
	return nil
}

// The lock may not hide in a helper either: the call graph chases the
// read path into it.

func (s *Store) SearchCount(q string) int {
	return s.lockedCount()
}

func (s *Store) lockedCount() int {
	s.mu.Lock()         // want "Store.lockedCount (reachable from read method Store.SearchCount) references Store.mu"
	defer s.mu.Unlock() // want "Store.lockedCount (reachable from read method Store.SearchCount) references Store.mu"
	return 0
}

// Writers may lock freely — and helpers only they reach may too.

func (s *Store) Put(d *Hit) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return nil
}

// A read method locking something that is not the receiver's mutex is
// fine: the contract is about the store lock specifically — matched as
// the Store.mu field object, not anything named mu.

func (s *Store) SearchHybrid(q string, k int) []Hit {
	var local sync.Mutex
	local.Lock()
	defer local.Unlock()
	return nil
}

// Methods on other types are out of scope even with the same names.

type sidecar struct {
	mu sync.Mutex
}

func (c *sidecar) SearchText(q string) []Hit {
	c.mu.Lock()
	defer c.mu.Unlock()
	return nil
}

// A reasoned directive can suppress a deliberate exception.

func (s *Store) SearchLegacy(q string) []Hit {
	s.mu.Lock() //lint:allow lockfree fixture: documented legacy path
	s.mu.Unlock()
	return nil
}
