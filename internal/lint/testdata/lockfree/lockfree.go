// Fixture for the lockfree analyzer. Parsed as package path
// internal/docstore; syntax only, never compiled.
package docstore

import "sync"

type Store struct {
	mu sync.Mutex
}

type Hit struct{}

// Read methods must not touch the store mutex.

func (s *Store) SearchText(q string, k int) []Hit {
	s.mu.Lock()         // want "SearchText references s.mu"
	defer s.mu.Unlock() // want "SearchText references s.mu"
	return nil
}

func (s *Store) Stats() int {
	s.mu.Lock()   // want "Stats references s.mu"
	s.mu.Unlock() // want "Stats references s.mu"
	return 0
}

func (st *Store) Get(id string) *Hit {
	defer st.mu.Unlock() // want "Get references st.mu"
	st.mu.Lock()         // want "Get references st.mu"
	return nil
}

// Writers may lock freely.

func (s *Store) Put(d *Hit) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return nil
}

// A read method locking something that is not the receiver's mutex is
// fine: the contract is about the store lock specifically.

func (s *Store) SearchHybrid(q string, k int) []Hit {
	var local sync.Mutex
	local.Lock()
	defer local.Unlock()
	return nil
}

// Methods on other types are out of scope even with the same names.

type sidecar struct {
	mu sync.Mutex
}

func (c *sidecar) SearchText(q string) []Hit {
	c.mu.Lock()
	defer c.mu.Unlock()
	return nil
}

// A reasoned directive can suppress a deliberate exception.

func (s *Store) SearchLegacy(q string) []Hit {
	s.mu.Lock() //lint:allow lockfree fixture: documented legacy path
	s.mu.Unlock()
	return nil
}
