// Fixture for the nilguard analyzer: loaded with the package path forced
// to "internal/telemetry". Type-checked like the real tree.
package nilguard

type Counter struct{ n uint64 }

func (c *Counter) Inc() { // want "(*Counter).Inc uses its receiver before a nil guard"
	c.n++
}

func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.n += d
}

func (c *Counter) Wrapped() {
	if c != nil {
		c.n++
	}
}

func (c *Counter) Fused(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.n++
}

func (c *Counter) Enabled() bool {
	return c != nil && c.n > 0
}

// LateGuard computes receiver-free state first; the guard may follow as
// long as no earlier statement touches the receiver.
func (c *Counter) LateGuard() uint64 {
	base := uint64(1)
	if c == nil {
		return base
	}
	return base + c.n
}

func (c *Counter) reset() { c.n = 0 } // unexported method: exempt

func (c Counter) Value() uint64 { return c.n } // value receiver: exempt

func (c *Counter) Allowed() uint64 { //lint:allow nilguard fixture: caller guarantees non-nil
	return c.n
}

type hidden struct{ n int }

func (h *hidden) Bump() { h.n++ } // unexported type: exempt
