// Fixture for the directive analyzer: defective //lint:allow comments
// are themselves findings.
package directive

func missingReason() {
	// want "malformed directive"
	//lint:allow wallclock
	_ = 1
}

func missingEverything() {
	// want "malformed directive"
	//lint:allow
	_ = 1
}

// A directive naming a nonexistent analyzer suppresses nothing; a typo
// must not silently convince the author the finding is covered.
func unknownAnalyzer() {
	// want "unknown analyzer"
	//lint:allow frobnicate because reasons
	_ = 1
}

func misspelled() {
	// want "suppresses nothing"
	//lint:allow lockfre dropped a letter from lockfree
	_ = 1
}

func wellFormed() {
	//lint:allow wallclock a correct directive is not a finding even where nothing fires
	_ = 1
}
