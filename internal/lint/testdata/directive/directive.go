// Fixture for the directive analyzer: malformed //lint:allow comments
// are themselves findings. Never compiled — syntax only.
package directive

func missingReason() {
	// want "malformed directive"
	//lint:allow wallclock
	_ = 1
}

func missingEverything() {
	// want "malformed directive"
	//lint:allow
	_ = 1
}

func unknownAnalyzer() {
	// want "malformed directive"
	//lint:allow frobnicate because reasons
	_ = 1
}

func wellFormed() {
	//lint:allow wallclock a correct directive is not a finding even where nothing fires
	_ = 1
}
