// Fixture for the wallclock analyzer: loaded by the lint self-tests with
// the package path forced to "internal/sim" (a kernel-governed package).
// Type-checked like the real tree.
package wallclock

import (
	"math/rand"
	"time"
	stdtime "time"
)

func bad() time.Duration {
	start := time.Now()                // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)       // want "time.Sleep reads the wall clock"
	_ = rand.Intn(4)                   // want "rand.Intn draws from the process-global source"
	rand.Shuffle(2, func(i, j int) {}) // want "rand.Shuffle draws from the process-global source"
	return time.Since(start)           // want "time.Since reads the wall clock"
}

func aliased() {
	_ = stdtime.Now() // want "time.Now reads the wall clock"
}

func good(r *rand.Rand) {
	r.Intn(4) // method on a seeded stream: fine
	_ = rand.New(rand.NewSource(1))
	_ = time.Millisecond
	_ = time.Duration(3).Round(time.Second)
}

func allowedTrailing() {
	time.Sleep(time.Millisecond) //lint:allow wallclock fixture exercises the same-line allow path
}

func allowedPreceding() {
	//lint:allow wallclock fixture exercises the line-above allow path
	time.Sleep(time.Millisecond)
}
