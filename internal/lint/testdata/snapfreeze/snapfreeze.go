// Fixture for the snapfreeze analyzer. Loaded as package path
// internal/docstore and type-checked like the real tree; the type and
// constructor names mirror the real snapshot machinery because the
// frozen-type table is keyed on them.
package docstore

type state struct {
	docs map[string]int
}

type compiledIndex struct {
	terms []string
	norms []float64
}

type overlay struct {
	termPost map[string][]int
}

type snapshot struct {
	epoch    uint64
	base     state
	cx       *compiledIndex
	ov       *overlay
	docCount int
}

type Store struct {
	current *snapshot
}

// compileIndex is the compiledIndex constructor: assignments are legal
// while the value is still private to the builder.
func compileIndex(terms []string) *compiledIndex {
	cx := &compiledIndex{}
	cx.terms = terms
	cx.norms = make([]float64, len(terms))
	return cx
}

// installLocked builds and publishes the next snapshot: legal, including
// writes that land behind its inner state value.
func (s *Store) installLocked(next state) {
	sn := &snapshot{}
	sn.base = next
	sn.cx = compileIndex(nil)
	sn.docCount = len(next.docs)
	sn.epoch++
	s.current = sn // Store is not frozen: republishing the pointer is the design
}

// cloneNext is overlay's fold-family constructor: legal.
func (ov *overlay) cloneNext() *overlay {
	next := &overlay{termPost: map[string][]int{}}
	next.termPost["x"] = nil
	return next
}

// mutateAfterPublish is the violation class: writes through a published
// snapshot, each reported against the innermost frozen owner on the
// target path.
func (s *Store) mutateAfterPublish(id string) {
	s.current.docCount++             // want "snapshot.docCount assigned in mutateAfterPublish"
	s.current.base.docs[id] = 1      // want "snapshot.base assigned in mutateAfterPublish"
	s.current.cx.terms = nil         // want "compiledIndex.terms assigned in mutateAfterPublish"
	s.current.cx.norms[0] = 0        // want "compiledIndex.norms assigned in mutateAfterPublish"
	s.current.ov.termPost["t"] = nil // want "overlay.termPost assigned in mutateAfterPublish"
}

// Reads are always fine.
func (s *Store) read(id string) int {
	return s.current.base.docs[id] + s.current.docCount
}

// A reasoned allow covers a deliberate exception.
func (s *Store) patchEpoch(e uint64) {
	s.current.epoch = e //lint:allow snapfreeze fixture: documented single-writer epoch bump
}
